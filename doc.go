// Package repro is a Go implementation of self-stabilizing maximal
// independent set (MIS) computation in the full-duplex beeping model,
// reproducing "Brief Announcement: Self-Stabilizing MIS Computation in
// the Beeping Model" (Giakkoupis, Turau, Ziccardi, PODC 2024).
//
// The package exposes the paper's two algorithms behind a small facade:
//
//   - Algorithm 1 with the knowledge variants of Theorem 2.1 (a shared
//     upper bound on the maximum degree; O(log n) stabilization w.h.p.)
//     and Theorem 2.2 (each vertex knows its own degree;
//     O(log n · log log n)).
//   - Algorithm 2 for the two-channel beeping model with 1-hop
//     neighborhood degree knowledge (Corollary 2.3; O(log n)).
//
// A Graph is built from an edge list, Solve runs an algorithm to
// stabilization from any initial configuration, and Instance gives
// round-level control with transient-fault injection for
// self-stabilization studies:
//
//	g, _ := repro.NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
//	res, _ := repro.Solve(g, repro.WithSeed(42))
//	fmt.Println(res.MIS, res.Rounds)
//
// The underlying simulator, graph generators, baselines and the full
// experiment suite live in internal packages and are driven by the
// binaries under cmd/ (see README.md and EXPERIMENTS.md).
package repro
