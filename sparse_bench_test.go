package repro

import (
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Whole-run benchmarks: the BENCH_sparse.json provenance. The per-round
// benches in bench_test.go measure a convergence-phase round, where the
// dense and sparse paths cost about the same; the sparse path's payoff
// is the whole execution, where activity decays geometrically after the
// first rounds and the frontier collapses to the few still-contending
// neighborhoods. Each benchmark times a complete fixed-length run — the
// instance's own stabilization-round count, discovered once at setup
// with the legality probe (untimed; the stop check is identical on both
// paths and orthogonal to the engine work measured here) — under
// SparseOff and the default SparseAuto. The two runs share the seed and
// are bit-identical (TestSparseEquivalence* in internal/core), so the
// ratio is pure round-path wall-clock.

// stabilizationRounds discovers the instance's stabilization round on
// the (fast) sparse path; the result is seed-determined and identical
// for every mode.
func stabilizationRounds(b *testing.B, t graph.Topology, seed uint64) int {
	b.Helper()
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(t, proto, seed, beep.WithEngine(beep.Flat))
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	var probe core.State
	r, ok := net.Run(10_000_000, func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	})
	if !ok {
		b.Fatal("no stabilization")
	}
	return r
}

func benchWholeRun(b *testing.B, t graph.Topology, seed uint64, rounds int, mode beep.SparseMode) {
	b.Helper()
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, err := beep.NewNetwork(t, proto, seed, beep.WithEngine(beep.Flat), beep.WithSparse(mode))
		if err != nil {
			b.Fatal(err)
		}
		net.RandomizeAll()
		b.StartTimer()
		for r := 0; r < rounds; r++ {
			net.Step()
		}
		b.StopTimer()
		net.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func benchWholeRunModes(b *testing.B, t graph.Topology, seed uint64) {
	b.Helper()
	rounds := stabilizationRounds(b, t, seed)
	b.Run("dense", func(b *testing.B) { benchWholeRun(b, t, seed, rounds, beep.SparseOff) })
	b.Run("sparse", func(b *testing.B) { benchWholeRun(b, t, seed, rounds, beep.SparseAuto) })
}

// BenchmarkWholeRunFlat4k: complete run on the 4k G(n,p) instance the
// per-round benches use — the CI smoke size.
func BenchmarkWholeRunFlat4k(b *testing.B) {
	benchWholeRunModes(b, graph.GNPAvgDegree(4096, 8, rng.New(2)), 3)
}

// BenchmarkWholeRunFlat1M: complete run at n = 10⁶ on the implicit
// torus (zero-storage graph, so the measurement is pure simulator
// cost). The BENCH_sparse.json headline row.
func BenchmarkWholeRunFlat1M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^6 whole-run benchmark skipped in -short mode")
	}
	benchWholeRunModes(b, graph.ImplicitTorus(1000, 1000), 3)
}

// BenchmarkWholeRunFlat10M: complete run at n = 10⁷, the scale where a
// dense whole run costs a minute and the sparse path's activity gating
// decides whether scaling experiments are practical.
func BenchmarkWholeRunFlat10M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^7 whole-run benchmark skipped in -short mode")
	}
	benchWholeRunModes(b, graph.ImplicitTorus(2500, 4000), 3)
}

// BenchmarkRecoveryFlat1M times the self-stabilization scenario itself:
// from a stabilized n = 10⁶ configuration, corrupt 64 random vertex
// states and run until the legality probe accepts again. The
// perturbation is local, so the sparse frontier stays proportional to
// the corrupted neighborhoods while the dense path re-pays O(n) every
// recovery round — this regime, not cold-start convergence, is where
// activity gating changes the complexity class of a round. Each
// iteration is one whole corrupt → re-stabilize run (probe included,
// as in every experiment); corruption vertices are redrawn per
// iteration from a fixed stream, identically across modes.
func BenchmarkRecoveryFlat1M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^6 recovery benchmark skipped in -short mode")
	}
	t := graph.ImplicitTorus(1000, 1000)
	proto := func() beep.Protocol { return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)) }
	for _, mode := range []struct {
		name string
		m    beep.SparseMode
	}{{"dense", beep.SparseOff}, {"sparse", beep.SparseAuto}} {
		b.Run(mode.name, func(b *testing.B) {
			net, err := beep.NewNetwork(t, proto(), 3, beep.WithEngine(beep.Flat), beep.WithSparse(mode.m))
			if err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			net.RandomizeAll()
			var probe core.State
			stop := func() bool { return probe.Refresh(net) == nil && probe.Stabilized() }
			if _, ok := net.Run(10_000_000, stop); !ok {
				b.Fatal("no initial stabilization")
			}
			faults := rng.New(17)
			totalRounds := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				perm := faults.Perm(t.N())
				b.StartTimer()
				if err := net.Corrupt(perm[:64]); err != nil {
					b.Fatal(err)
				}
				before := net.Round()
				if _, ok := net.Run(1_000_000, stop); !ok {
					b.Fatal("no recovery")
				}
				totalRounds += net.Round() - before
			}
			b.StopTimer()
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
		})
	}
}

// BenchmarkSparseRound benches the steady-state round — the regime a
// perpetually-running self-stabilizing protocol spends its life in.
// The network is stabilized before the timed loop, so the dense path
// pays its quiescence check (an O(n) slab compare per round; see
// FlatQuiescer) while the sparse path's dirty-word tracking elides the
// round in O(1). Sub-benchmarks at the CI smoke size and at n = 10⁷,
// where the O(n) compare is milliseconds per round.
func BenchmarkSparseRound(b *testing.B) {
	cases := []struct {
		name string
		t    graph.Topology
	}{
		{"4k", graph.GNPAvgDegree(4096, 8, rng.New(2))},
	}
	if !testing.Short() {
		cases = append(cases, struct {
			name string
			t    graph.Topology
		}{"10M", graph.ImplicitTorus(2500, 4000)})
	}
	proto := func() beep.Protocol { return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)) }
	for _, c := range cases {
		for _, mode := range []struct {
			name string
			m    beep.SparseMode
		}{{"dense", beep.SparseOff}, {"sparse", beep.SparseAuto}} {
			b.Run(c.name+"/"+mode.name, func(b *testing.B) {
				net, err := beep.NewNetwork(c.t, proto(), 3, beep.WithEngine(beep.Flat), beep.WithSparse(mode.m))
				if err != nil {
					b.Fatal(err)
				}
				defer net.Close()
				net.RandomizeAll()
				var probe core.State
				if _, ok := net.Run(10_000_000, func() bool {
					return probe.Refresh(net) == nil && probe.Stabilized()
				}); !ok {
					b.Fatal("no stabilization")
				}
				net.Step() // settle into the quiescent fast path
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					net.Step()
				}
			})
		}
	}
}
