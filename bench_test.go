package repro

import (
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stab"
)

// The Benchmark*Experiment benches regenerate every table/figure of the
// reproduction (one per experiment, at reduced trial counts): run
// `go test -bench=Experiment` for the full pipeline timings, or use
// cmd/benchtab to print the actual tables.

func benchExperiment(b *testing.B, run func(exp.Config) error) {
	b.Helper()
	cfg := exp.Config{Seed: 1, Trials: 1, Out: io.Discard}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1ActivationFunctionExperiment(b *testing.B) { benchExperiment(b, exp.RunF1) }
func BenchmarkE1KnownDeltaExperiment(b *testing.B)         { benchExperiment(b, exp.RunE1) }
func BenchmarkE2OwnDegreeExperiment(b *testing.B)          { benchExperiment(b, exp.RunE2) }
func BenchmarkE3TwoChannelExperiment(b *testing.B)         { benchExperiment(b, exp.RunE3) }
func BenchmarkE4VsJeavonsExperiment(b *testing.B)          { benchExperiment(b, exp.RunE4) }
func BenchmarkE5VsAfekExperiment(b *testing.B)             { benchExperiment(b, exp.RunE5) }
func BenchmarkE6FaultRecoveryExperiment(b *testing.B)      { benchExperiment(b, exp.RunE6) }
func BenchmarkE7LemmaTailsExperiment(b *testing.B)         { benchExperiment(b, exp.RunE7) }
func BenchmarkE8AblationsExperiment(b *testing.B)          { benchExperiment(b, exp.RunE8) }
func BenchmarkE9NoiseExperiment(b *testing.B)              { benchExperiment(b, exp.RunE9) }
func BenchmarkE10AdaptiveExperiment(b *testing.B)          { benchExperiment(b, exp.RunE10) }
func BenchmarkE11DynamicsExperiment(b *testing.B)          { benchExperiment(b, exp.RunE11) }
func BenchmarkE12SleepExperiment(b *testing.B)             { benchExperiment(b, exp.RunE12) }
func BenchmarkE13EnergyExperiment(b *testing.B)            { benchExperiment(b, exp.RunE13) }
func BenchmarkE14AvailabilityExperiment(b *testing.B)      { benchExperiment(b, exp.RunE14) }

// Single-instance stabilization benchmarks: the cost of one end-to-end
// run per algorithm variant on a representative topology.

func benchStabilize(b *testing.B, proto func() beep.Protocol, g *graph.Graph) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.RunConfig{
			Graph:    g,
			Protocol: proto(),
			Seed:     uint64(i),
			Init:     core.InitRandom,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkStabilizeAlg1KnownDelta1k(b *testing.B) {
	g := graph.GNPAvgDegree(1024, 8, rng.New(1))
	benchStabilize(b, func() beep.Protocol {
		return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	}, g)
}

func BenchmarkStabilizeAlg1OwnDegree1k(b *testing.B) {
	g := graph.GNPAvgDegree(1024, 8, rng.New(1))
	benchStabilize(b, func() beep.Protocol {
		return core.NewAlg1(core.OwnDegree(core.DefaultC1OwnDegree))
	}, g)
}

func BenchmarkStabilizeAlg2TwoChannel1k(b *testing.B) {
	g := graph.GNPAvgDegree(1024, 8, rng.New(1))
	benchStabilize(b, func() beep.Protocol {
		return core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop))
	}, g)
}

// Engine benchmarks: cost of one simulated round under the four
// execution engines, isolating simulator overhead from algorithm work.

func benchEngine(b *testing.B, engine beep.Engine, n int, opts ...beep.Option) {
	b.Helper()
	g := graph.GNPAvgDegree(n, 8, rng.New(2))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 3, append([]beep.Option{beep.WithEngine(engine)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

func BenchmarkRoundSequential4k(b *testing.B) { benchEngine(b, beep.Sequential, 4096) }
func BenchmarkRoundParallel4k(b *testing.B)   { benchEngine(b, beep.Parallel, 4096) }
func BenchmarkRoundPerVertex4k(b *testing.B)  { benchEngine(b, beep.PerVertex, 4096) }
func BenchmarkRoundFlat4k(b *testing.B)       { benchEngine(b, beep.Flat, 4096) }

// BenchmarkRoundFlatParallel4k runs the sharded flat engine with its
// default worker count (GOMAXPROCS); the W-suffixed variants pin
// explicit counts for the scaling table in BENCH_parflat.json. W1 is
// the sharding-overhead floor: the same stripe kernels and merge
// phases on a single worker, so (W1 − Flat) is the price of the
// machinery and (W1 − Wk) is the parallel payoff.
func BenchmarkRoundFlatParallel4k(b *testing.B) { benchEngine(b, beep.FlatParallel, 4096) }
func BenchmarkRoundFlatParallel4kW1(b *testing.B) {
	benchEngine(b, beep.FlatParallel, 4096, beep.WithWorkers(1))
}
func BenchmarkRoundFlatParallel4kW2(b *testing.B) {
	benchEngine(b, beep.FlatParallel, 4096, beep.WithWorkers(2))
}
func BenchmarkRoundFlatParallel4kW4(b *testing.B) {
	benchEngine(b, beep.FlatParallel, 4096, beep.WithWorkers(4))
}
func BenchmarkRoundFlatParallel4kW8(b *testing.B) {
	benchEngine(b, beep.FlatParallel, 4096, beep.WithWorkers(8))
}

// BenchmarkRoundFlatRelabeled4k isolates the cache-locality effect of
// graph.Relabel: the same G(n,p) instance as the other 4k round
// benches, BFS-relabeled before network construction, run on the
// sequential flat engine. The delta against BenchmarkRoundFlat4k is
// pure memory-layout effect — the relabeled graph is isomorphic and
// every kernel does identical arithmetic.
func BenchmarkRoundFlatRelabeled4k(b *testing.B) {
	g := graph.Relabel(graph.GNPAvgDegree(4096, 8, rng.New(2)), graph.OrderBFS).Graph
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 3, beep.WithEngine(beep.Flat))
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkRoundSequentialRef4k pins the pre-flat reference loop
// (per-vertex interface dispatch) so the flat-kernel speedup stays
// measurable after Sequential's transparent upgrade.
func BenchmarkRoundSequentialRef4k(b *testing.B) {
	benchEngine(b, beep.Sequential, 4096, beep.WithFlatKernels(false))
}

// BenchmarkRoundFlat1M measures one flat-engine round at n = 10⁶ on a
// random geometric graph (the paper's wireless-network motivation),
// from a randomized configuration: the convergence-phase rounds that
// dominate experiment cost at scale. Skipped under -short (graph
// generation alone takes seconds).
func BenchmarkRoundFlat1M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^6 round benchmark skipped in -short mode")
	}
	const n = 1_000_000
	r := math.Sqrt(8 / (math.Pi * float64(n)))
	g := graph.UnitDisk(n, r, rng.New(9))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 3, beep.WithEngine(beep.Flat))
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkRoundFlatParallel1M is BenchmarkRoundFlat1M through the
// sharded engine, with sub-benchmarks per worker count: the scaling
// measurement behind BENCH_parflat.json. Skipped under -short for the
// same reason (UnitDisk generation at n = 10⁶ takes seconds). Combine
// with -cpu to also scale GOMAXPROCS; with a single allotted CPU the
// worker counts measure sharding overhead, not speedup.
func BenchmarkRoundFlatParallel1M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^6 round benchmark skipped in -short mode")
	}
	const n = 1_000_000
	r := math.Sqrt(8 / (math.Pi * float64(n)))
	g := graph.UnitDisk(n, r, rng.New(9))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			net, err := beep.NewNetwork(g, proto, 3,
				beep.WithEngine(beep.FlatParallel), beep.WithWorkers(w))
			if err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			net.RandomizeAll()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
		})
	}
}

// Substrate benchmarks.

func BenchmarkLegalityCheck4k(b *testing.B) {
	g := graph.GNPAvgDegree(4096, 8, rng.New(4))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	b.ReportAllocs()
	b.ResetTimer()
	var st core.State
	for i := 0; i < b.N; i++ {
		if err := st.Refresh(net); err != nil {
			b.Fatal(err)
		}
		_ = st.Stabilized()
	}
}

func BenchmarkFaultRecoveryCycle1k(b *testing.B) {
	g := graph.Cycle(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := stab.MeasureRecovery(stab.RecoveryConfig{
			Graph:    g,
			Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
			Seed:     uint64(i),
			Fault:    stab.RandomFault{K: 32},
			Repeats:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineJeavons1k(b *testing.B) {
	g := graph.GNPAvgDegree(1024, 8, rng.New(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RunBeeping(g, baseline.Jeavons{}, uint64(i), 100000, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineLuby1k(b *testing.B) {
	g := graph.GNPAvgDegree(1024, 8, rng.New(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RunLuby(g, uint64(i), 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphGNP64k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = graph.GNPAvgDegree(65536, 8, rng.New(uint64(i)))
	}
}

func BenchmarkPublicSolveCycle256(b *testing.B) {
	g, err := NewGraph(256, cycleEdges(256))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g, WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// Detector micro-benchmarks: the per-round cost of the stabilization
// stop check — Refresh (level capture) and Stabilized (legality
// detection) — across sizes and graph families. These are the
// benchmarks tracked in BENCH_baseline.json; the stop check runs once
// per simulated round in every experiment, so its cost bounds the
// sweep sizes the harness can reach.

func detectorBenchGraph(family string, n int) *graph.Graph {
	switch family {
	case "path":
		return graph.Path(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.Grid(side, side)
	case "rgg":
		// Radius chosen for expected average degree ≈ 8.
		r := math.Sqrt(8 / (math.Pi * float64(n)))
		return graph.UnitDisk(n, r, rng.New(uint64(n)))
	}
	panic("unknown detector bench family " + family)
}

func benchDetectorCases(b *testing.B, fn func(b *testing.B, net *beep.Network)) {
	b.Helper()
	for _, family := range []string{"path", "grid", "rgg"} {
		for _, n := range []int{256, 4096, 16384} {
			b.Run(fmt.Sprintf("%s/n=%d", family, n), func(b *testing.B) {
				g := detectorBenchGraph(family, n)
				proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
				net, err := beep.NewNetwork(g, proto, 11)
				if err != nil {
					b.Fatal(err)
				}
				defer net.Close()
				net.RandomizeAll()
				// A few rounds toward (but not at) stabilization: the
				// state a mid-run stop check actually sees.
				for i := 0; i < 8; i++ {
					net.Step()
				}
				fn(b, net)
			})
		}
	}
}

// BenchmarkRefresh measures capturing the network's levels into a
// reused State (the first half of the per-round stop closure).
func BenchmarkRefresh(b *testing.B) {
	benchDetectorCases(b, func(b *testing.B, net *beep.Network) {
		var st core.State
		if err := st.Refresh(net); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Refresh(net); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStabilizedDetector measures the full per-round stop check:
// Refresh followed by Stabilized, exactly what core.Run evaluates after
// every round. Levels do not change between iterations, so this is the
// steady-state ("nothing changed this round") cost that dominates long
// executions.
func BenchmarkStabilizedDetector(b *testing.B) {
	benchDetectorCases(b, func(b *testing.B, net *beep.Network) {
		var st core.State
		if err := st.Refresh(net); err != nil {
			b.Fatal(err)
		}
		_ = st.Stabilized()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Refresh(net); err != nil {
				b.Fatal(err)
			}
			_ = st.Stabilized()
		}
	})
}

// BenchmarkRoundDenseK2k measures one round on a complete graph, the
// topology where the early-exit delivery scan matters most.
func BenchmarkRoundDenseK2k(b *testing.B) {
	g := graph.Complete(2048)
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 3)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	// Zero levels: everyone beeps, the early exit triggers immediately.
	for v := 0; v < net.N(); v++ {
		net.Machine(v).(core.Leveled).SetLevel(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}
