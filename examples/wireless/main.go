// Wireless sensor network scenario: the paper's motivating application.
//
// Sensors are scattered uniformly over a field and can only exchange
// carrier pulses (beeps) with nodes in radio range — a unit-disk graph.
// Electing an MIS yields a cluster-head set: every sensor is either a
// head or in range of one, and no two heads interfere. Because sensors
// suffer resets and memory corruption, the election must be
// self-stabilizing: here we elect heads from a completely arbitrary
// boot state, then knock out a random 10% of the nodes' memories and
// watch the network repair itself.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

const (
	sensors = 400
	radius  = 0.08 // radio range in field units (unit square field)
)

func main() {
	rnd := rand.New(rand.NewSource(7))

	// Scatter sensors and connect those in radio range.
	xs := make([]float64, sensors)
	ys := make([]float64, sensors)
	for i := range xs {
		xs[i] = rnd.Float64()
		ys[i] = rnd.Float64()
	}
	var edges [][2]int
	for u := 0; u < sensors; u++ {
		for v := u + 1; v < sensors; v++ {
			if math.Hypot(xs[u]-xs[v], ys[u]-ys[v]) <= radius {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	g, err := repro.NewGraph(sensors, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d sensors, %d radio links, max neighborhood %d\n",
		g.N(), g.M(), g.MaxDegree())

	// Each sensor knows only its own neighbor count (Theorem 2.2's
	// knowledge model — realistic for radios that can count associations
	// but know nothing global).
	inst, err := repro.NewInstance(g,
		repro.WithAlgorithm(repro.Alg1OwnDegree),
		repro.WithInitialState(repro.StateArbitrary),
		repro.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	rounds, err := inst.RunUntilStabilized(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	heads, err := inst.MIS()
	if err != nil {
		log.Fatal(err)
	}
	if err := g.VerifyMIS(heads); err != nil {
		log.Fatal("cluster heads invalid: ", err)
	}
	fmt.Printf("election: %d cluster heads after %d beeping rounds (verified)\n",
		len(heads), rounds)

	// Transient fault: 10% of the sensors lose their RAM.
	faulty := sensors / 10
	if err := inst.InjectFault(faulty); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault: corrupted the state of %d sensors\n", faulty)

	recovery, err := inst.RunUntilStabilized(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	headsAfter, err := inst.MIS()
	if err != nil {
		log.Fatal(err)
	}
	if err := g.VerifyMIS(headsAfter); err != nil {
		log.Fatal("post-recovery heads invalid: ", err)
	}

	// How local was the repair?
	before := map[int]bool{}
	for _, h := range heads {
		before[h] = true
	}
	changed := 0
	for _, h := range headsAfter {
		if !before[h] {
			changed++
		}
	}
	fmt.Printf("recovery: re-stabilized in %d rounds; %d/%d heads are new\n",
		recovery, changed, len(headsAfter))
	fmt.Println("the cluster-head set is again a verified maximal independent set")
}
