// Quickstart: build a small graph, run the self-stabilizing beeping MIS
// algorithm from an arbitrary initial configuration, and verify the
// result.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The Petersen graph: 10 vertices, 15 edges, 3-regular.
	edges := [][2]int{
		// outer 5-cycle
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
		// spokes
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
		// inner pentagram
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
	}
	g, err := repro.NewGraph(10, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Solve with Algorithm 1 (every vertex knows an upper bound on the
	// maximum degree) starting from a uniformly random configuration —
	// the self-stabilization setting.
	res, err := repro.Solve(g,
		repro.WithAlgorithm(repro.Alg1KnownDelta),
		repro.WithInitialState(repro.StateArbitrary),
		repro.WithSeed(2024),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Petersen graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("stabilized after %d beeping rounds\n", res.Rounds)
	fmt.Printf("maximal independent set (%d vertices): %v\n", len(res.MIS), res.MIS)

	if err := g.VerifyMIS(res.MIS); err != nil {
		log.Fatal("invalid MIS: ", err)
	}
	fmt.Println("verified: independent and maximal")

	// The same instance under the two-channel algorithm of Corollary 2.3.
	res2, err := repro.Solve(g,
		repro.WithAlgorithm(repro.Alg2TwoChannel),
		repro.WithSeed(2024),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-channel variant: %d rounds, MIS %v\n", res2.Rounds, res2.MIS)
}
