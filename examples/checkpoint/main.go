// Checkpoint/resume walkthrough: long simulation campaigns can be
// snapshotted to disk and resumed exactly — the resumed execution is
// bit-identical to an uninterrupted one, because the checkpoint carries
// every vertex's algorithm state and random stream.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 16×16 torus-like grid with diagonals: 256 vertices.
	const side = 16
	id := func(r, c int) int { return r*side + c }
	var edges [][2]int
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			edges = append(edges,
				[2]int{id(r, c), id(r, (c+1)%side)},
				[2]int{id(r, c), id((r+1)%side, c)},
			)
		}
	}
	g, err := repro.NewGraph(side*side, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Reference execution: run straight to stabilization.
	ref, err := repro.NewInstance(g, repro.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	refRounds, err := ref.RunUntilStabilized(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	refMIS, _ := ref.MIS()
	fmt.Printf("reference: stabilized in %d rounds, |MIS| = %d\n", refRounds, len(refMIS))

	// Interrupted execution: run 10 rounds, checkpoint, "crash".
	first, err := repro.NewInstance(g, repro.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		first.Step()
	}
	var snapshot bytes.Buffer
	if err := first.Save(&snapshot); err != nil {
		log.Fatal(err)
	}
	first.Close()
	fmt.Printf("checkpoint: %d bytes after %d rounds\n", snapshot.Len(), 10)

	// Resume in a brand-new process (simulated by a new instance with a
	// different seed — the checkpoint overrides everything).
	resumed, err := repro.NewInstance(g, repro.WithSeed(999))
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Load(&snapshot); err != nil {
		log.Fatal(err)
	}
	more, err := resumed.RunUntilStabilized(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	resMIS, _ := resumed.MIS()

	fmt.Printf("resumed:   %d + %d rounds, |MIS| = %d\n", 10, more, len(resMIS))
	same := len(resMIS) == len(refMIS)
	if same {
		for i := range resMIS {
			if resMIS[i] != refMIS[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("identical to the uninterrupted run: %v (total rounds %d vs %d)\n",
		same && 10+more == refRounds, 10+more, refRounds)
	if err := g.VerifyMIS(resMIS); err != nil {
		log.Fatal(err)
	}
	fmt.Println("resumed MIS verified: independent and maximal")
}
