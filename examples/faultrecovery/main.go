// Fault-recovery walkthrough: watch the convergence measure |S_t| (the
// number of stabilized vertices) round by round, through an arbitrary
// boot, repeated transient faults of growing severity, and recovery —
// the behavior Theorems 2.1's O(log n) bound governs.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const n = 200

func main() {
	// Ring-of-cliques topology: 20 cliques of 10, bridged in a cycle.
	const cliques, size = 20, 10
	var edges [][2]int
	for c := 0; c < cliques; c++ {
		base := c * size
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				edges = append(edges, [2]int{base + u, base + v})
			}
		}
		next := ((c + 1) % cliques) * size
		edges = append(edges, [2]int{base + size - 1, next})
	}
	g, err := repro.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	inst, err := repro.NewInstance(g,
		repro.WithAlgorithm(repro.Alg1KnownDelta),
		repro.WithInitialState(repro.StateArbitrary),
		repro.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	fmt.Printf("topology: %d cliques of %d, n=%d m=%d\n\n", cliques, size, g.N(), g.M())
	fmt.Println("phase 1: stabilization from an arbitrary configuration")
	watch(inst, g.N())

	for _, k := range []int{5, 40, 200} {
		fmt.Printf("\nphase: transient fault corrupting %d of %d states\n", k, n)
		if err := inst.InjectFault(k); err != nil {
			log.Fatal(err)
		}
		watch(inst, g.N())
	}

	mis, err := inst.MIS()
	if err != nil {
		log.Fatal(err)
	}
	if err := g.VerifyMIS(mis); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal MIS has %d vertices — verified after %d total rounds\n",
		len(mis), inst.Rounds())
}

// watch steps until stabilization, printing a progress bar of |S_t|
// every few rounds.
func watch(inst *repro.Instance, n int) {
	start := inst.Rounds()
	for {
		stable, err := inst.StableVertices()
		if err != nil {
			log.Fatal(err)
		}
		r := inst.Rounds() - start
		if r%5 == 0 || stable == n {
			bar := strings.Repeat("█", stable*40/n)
			fmt.Printf("  round %4d  stable %4d/%d  %s\n", r, stable, n, bar)
		}
		if stable == n {
			ok, err := inst.Stabilized()
			if err != nil || !ok {
				log.Fatalf("inconsistent stability: ok=%v err=%v", ok, err)
			}
			fmt.Printf("  stabilized in %d rounds\n", r)
			return
		}
		if r > 200000 {
			log.Fatal("no stabilization within 200000 rounds")
		}
		inst.Step()
	}
}
