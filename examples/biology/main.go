// Biological scenario: sensory-organ-precursor (SOP) selection in the
// fly's nervous system, the process that motivated beeping-model MIS
// (Afek et al., Science 2011, cited in the paper's introduction).
//
// Proneural cells sit in an epithelial sheet; each can inhibit its
// immediate neighbors through Delta-Notch signaling (a broadcast
// "beep"). Exactly the cells selected as SOPs must form a maximal
// independent set: no two adjacent SOPs (lateral inhibition), and every
// non-SOP adjacent to an SOP. Cells have no identities, no global
// clock phases, and can only detect "some neighbor signaled" — the
// beeping model. Self-stabilization matters because signaling state is
// chemical and noisy.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	rows = 24
	cols = 24
)

func main() {
	// Epithelial sheet as a hex-like lattice: each cell touches its
	// horizontal, vertical and one pair of diagonal neighbors.
	id := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
				if c+1 < cols {
					edges = append(edges, [2]int{id(r, c), id(r+1, c+1)})
				}
			}
		}
	}
	g, err := repro.NewGraph(rows*cols, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epithelium: %d cells, %d contact pairs, max contacts %d\n",
		g.N(), g.M(), g.MaxDegree())

	// The two-channel variant mirrors the biology: the commitment signal
	// (channel 2, sustained Delta expression) is distinguishable from
	// the competition signal (channel 1).
	res, err := repro.Solve(g,
		repro.WithAlgorithm(repro.Alg2TwoChannel),
		repro.WithInitialState(repro.StateArbitrary),
		repro.WithSeed(1871), // Ramón y Cajal
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.VerifyMIS(res.MIS); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOP selection: %d precursors after %d signaling rounds (verified MIS)\n",
		len(res.MIS), res.Rounds)

	// Render the sheet: '#' SOP, '.' inhibited neighbor.
	sop := make(map[int]bool, len(res.MIS))
	for _, v := range res.MIS {
		sop[v] = true
	}
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			if sop[id(r, c)] {
				line[c] = '#'
			} else {
				line[c] = '.'
			}
		}
		fmt.Println(string(line))
	}
	fmt.Println("every '.' touches a '#', and no two '#' touch: lateral inhibition established")
}
