package repro

import (
	"errors"
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
)

// Algorithm selects which of the paper's algorithms and knowledge
// variants to run.
type Algorithm int

const (
	// Alg1KnownDelta is Algorithm 1 where every vertex knows an upper
	// bound on the maximum degree Δ (Theorem 2.1, O(log n) w.h.p.).
	Alg1KnownDelta Algorithm = iota + 1
	// Alg1OwnDegree is Algorithm 1 where each vertex knows only an
	// upper bound on its own degree (Theorem 2.2,
	// O(log n · log log n) w.h.p.).
	Alg1OwnDegree
	// Alg2TwoChannel is Algorithm 2 on two beeping channels, where each
	// vertex knows an upper bound on the maximum degree of its 1-hop
	// neighborhood (Corollary 2.3, O(log n) w.h.p.).
	Alg2TwoChannel
	// Alg1Adaptive is the repository's heuristic for the paper's open
	// question: Algorithm 1 with NO topology knowledge, growing the
	// level cap by collision-triggered doubling. It carries no w.h.p.
	// guarantee (see internal/core/adaptive.go and experiment E10).
	Alg1Adaptive
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Alg1KnownDelta:
		return "alg1-known-delta"
	case Alg1OwnDegree:
		return "alg1-own-degree"
	case Alg2TwoChannel:
		return "alg2-two-channel"
	case Alg1Adaptive:
		return "alg1-adaptive"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// InitialState selects the configuration the network starts from.
type InitialState int

const (
	// StateFresh starts every vertex in the neutral silent state.
	StateFresh InitialState = iota + 1
	// StateArbitrary draws every vertex state uniformly at random: the
	// self-stabilization model's "arbitrary initial configuration".
	StateArbitrary
	// StateAdversarial starts every vertex claiming MIS membership,
	// the maximally inconsistent configuration.
	StateAdversarial
)

// ErrNotStabilized reports that an execution hit its round budget. It
// wraps the internal sentinel so callers can match with errors.Is.
var ErrNotStabilized = core.ErrNotStabilized

// Graph is an immutable simple undirected graph for the solver.
type Graph struct {
	g *graph.Graph
}

// NewGraph builds a graph on n vertices (numbered 0..n-1) from an edge
// list. Self-loops and out-of-range endpoints are rejected; parallel
// edges are deduplicated.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{U: e[0], V: e[1]}
	}
	g, err := graph.New(n, es)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// MaxDegree returns Δ(G).
func (g *Graph) MaxDegree() int { return g.g.MaxDegree() }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.g.Degree(v) }

// VerifyMIS reports whether the given vertex set is a maximal
// independent set of g, with a descriptive error when it is not.
func (g *Graph) VerifyMIS(vertices []int) error {
	mask := make([]bool, g.N())
	for _, v := range vertices {
		if v < 0 || v >= g.N() {
			return fmt.Errorf("repro: vertex %d out of range", v)
		}
		mask[v] = true
	}
	return g.g.VerifyMIS(mask)
}

// options collects the Solve/NewInstance configuration.
type options struct {
	algorithm Algorithm
	seed      uint64
	init      InitialState
	maxRounds int
	c1        int
	parallel  bool
	noise     beep.Noise
	sleep     beep.Sleep
}

// Option configures Solve and NewInstance.
type Option func(*options)

// WithAlgorithm selects the algorithm variant (default Alg1KnownDelta).
func WithAlgorithm(a Algorithm) Option {
	return func(o *options) { o.algorithm = a }
}

// WithSeed sets the random seed; executions are deterministic per seed.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithInitialState selects the starting configuration (default
// StateArbitrary — the self-stabilization setting).
func WithInitialState(s InitialState) Option {
	return func(o *options) { o.init = s }
}

// WithMaxRounds bounds the execution; 0 keeps a generous default far
// above the w.h.p. bounds.
func WithMaxRounds(r int) Option {
	return func(o *options) { o.maxRounds = r }
}

// WithSlack overrides the slack constant c1 added to the logarithmic
// level cap. The theorems require 15 (Theorems 2.1, Corollary 2.3) or
// 30 (Theorem 2.2); smaller values void the w.h.p. guarantee.
func WithSlack(c1 int) Option {
	return func(o *options) { o.c1 = c1 }
}

// WithParallelEngine runs vertices on the sharded parallel engine
// instead of the sequential one. Traces are identical; only wall-clock
// differs.
func WithParallelEngine() Option {
	return func(o *options) { o.parallel = true }
}

// WithListeningNoise makes reception unreliable: per vertex, round and
// channel, a heard beep is dropped with probability pLoss and a silent
// channel is spuriously heard with probability pFalse. This extends
// the paper's (reliable) model; under noise the strict stabilization
// condition may only hold intermittently — see experiment E9.
func WithListeningNoise(pLoss, pFalse float64) Option {
	return func(o *options) { o.noise = beep.Noise{PLoss: pLoss, PFalse: pFalse} }
}

// WithSleepProbability makes vertices duty-cycle: each round, each
// vertex independently misses the whole round (no beep, no listening,
// no state update) with probability p ∈ [0, 1). This extends the
// paper's always-awake model — see experiment E12.
func WithSleepProbability(p float64) Option {
	return func(o *options) { o.sleep = beep.Sleep{P: p} }
}

// build resolves options into an internal run configuration.
func (o options) protocol() (beep.Protocol, error) {
	switch o.algorithm {
	case Alg1KnownDelta, 0:
		c1 := o.c1
		if c1 == 0 {
			c1 = core.DefaultC1KnownDelta
		}
		return core.NewAlg1(core.KnownMaxDegreeExact(c1)), nil
	case Alg1OwnDegree:
		c1 := o.c1
		if c1 == 0 {
			c1 = core.DefaultC1OwnDegree
		}
		return core.NewAlg1(core.OwnDegree(c1)), nil
	case Alg2TwoChannel:
		c1 := o.c1
		if c1 == 0 {
			c1 = core.DefaultC1TwoHop
		}
		return core.NewAlg2(core.NeighborhoodMaxDegree(c1)), nil
	case Alg1Adaptive:
		return core.NewAdaptiveAlg1(), nil
	default:
		return nil, fmt.Errorf("repro: unknown algorithm %v", o.algorithm)
	}
}

func (o options) initMode() (core.InitMode, error) {
	switch o.init {
	case StateArbitrary, 0:
		return core.InitRandom, nil
	case StateFresh:
		return core.InitFresh, nil
	case StateAdversarial:
		return core.InitAdversarial, nil
	default:
		return 0, fmt.Errorf("repro: unknown initial state %v", o.init)
	}
}

// Result reports a stabilized execution.
type Result struct {
	// MIS lists the vertices of the computed maximal independent set in
	// ascending order.
	MIS []int
	// Rounds is the number of synchronous beeping rounds until the
	// network stabilized.
	Rounds int
}

// Solve runs the selected algorithm on g until the network reaches a
// legal configuration (a verified MIS with every vertex stable), and
// returns the set and the round count. It returns an error wrapping
// ErrNotStabilized if the round budget is exhausted — with the default
// budget this indicates a misconfiguration (e.g. WithSlack far below
// the theorems' requirement).
func Solve(g *Graph, opts ...Option) (*Result, error) {
	if g == nil {
		return nil, errors.New("repro: nil graph")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	proto, err := o.protocol()
	if err != nil {
		return nil, err
	}
	init, err := o.initMode()
	if err != nil {
		return nil, err
	}
	engine := beep.Sequential
	if o.parallel {
		engine = beep.Parallel
	}
	res, err := core.Run(core.RunConfig{
		Graph:     g.g,
		Protocol:  proto,
		Seed:      o.seed,
		Init:      init,
		MaxRounds: o.maxRounds,
		Engine:    engine,
		Noise:     o.noise,
		Sleep:     o.sleep,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Rounds: res.Rounds}
	for v, in := range res.MIS {
		if in {
			out.MIS = append(out.MIS, v)
		}
	}
	return out, nil
}
