package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Build a 6-cycle once for the examples.
func ring(n int) *repro.Graph {
	edges := make([][2]int, n)
	for v := 0; v < n; v++ {
		edges[v] = [2]int{v, (v + 1) % n}
	}
	g, err := repro.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// Solve runs Algorithm 1 from an arbitrary configuration and returns a
// verified maximal independent set together with the number of beeping
// rounds to stabilization.
func ExampleSolve() {
	g := ring(6)
	res, err := repro.Solve(g,
		repro.WithAlgorithm(repro.Alg1KnownDelta),
		repro.WithInitialState(repro.StateArbitrary),
		repro.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MIS:", res.MIS)
	fmt.Println("valid:", g.VerifyMIS(res.MIS) == nil)
	// Output:
	// MIS: [2 5]
	// valid: true
}

// The two-channel variant (Corollary 2.3) announces membership on a
// dedicated channel and typically stabilizes in fewer rounds.
func ExampleSolve_twoChannel() {
	g := ring(8)
	res, err := repro.Solve(g,
		repro.WithAlgorithm(repro.Alg2TwoChannel),
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("size:", len(res.MIS), "valid:", g.VerifyMIS(res.MIS) == nil)
	// Output:
	// size: 4 valid: true
}

// Instance gives round-level control: step, inspect convergence, inject
// transient faults, and watch the system self-stabilize again.
func ExampleNewInstance() {
	g := ring(12)
	inst, err := repro.NewInstance(g, repro.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	if _, err := inst.RunUntilStabilized(100000); err != nil {
		log.Fatal(err)
	}
	before, _ := inst.MIS()

	// A transient fault corrupts three vertex states…
	if err := inst.InjectFault(3); err != nil {
		log.Fatal(err)
	}
	// …and the algorithm recovers on its own.
	if _, err := inst.RunUntilStabilized(100000); err != nil {
		log.Fatal(err)
	}
	after, _ := inst.MIS()

	fmt.Println("recovered:", g.VerifyMIS(after) == nil)
	fmt.Println("sizes:", len(before), "->", len(after))
	// Output:
	// recovered: true
	// sizes: 5 -> 5
}
