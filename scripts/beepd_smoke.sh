#!/usr/bin/env bash
# Kill–restart–resume smoke of the real beepd binary over its HTTP API.
#
# Proves, at the process level with nothing but curl:
#   1. a SIGKILL mid-job leaves the store in a recoverable state
#      (job.json still atomically intact, claiming "running");
#   2. a restarted daemon recovers the job and resumes it to done;
#   3. SIGTERM drains gracefully with exit status 0.
#
# The Go test suite (cmd/beepd) covers the same ground with 20
# randomized kill points and bit-exact trace comparison; this script is
# the cheap end-to-end check that the SHIPPED binary, flags and all,
# behaves the same way.
set -euo pipefail

BIN=$(mktemp -d)
BEEPD=$BIN/beepd
DATA=$(mktemp -d)
go build -o "$BEEPD" ./cmd/beepd
go build -o "$BIN/beepmis" ./cmd/beepmis # for -inspect-checkpoint

json_field() { # json_field FIELD  (reads object on stdin)
    python3 -c 'import json,sys; print(json.load(sys.stdin)[sys.argv[1]])' "$1"
}

wait_addr() {
    for _ in $(seq 150); do
        [ -s "$DATA/beepd.addr" ] && { cat "$DATA/beepd.addr"; return 0; }
        sleep 0.1
    done
    echo "beepd never published its address" >&2
    return 1
}

echo "== first life: submit and get killed =="
"$BEEPD" -data "$DATA" &
PID=$!
ADDR=$(wait_addr)

JOB=$(curl -sf -X POST "http://$ADDR/v1/jobs" \
    -d '{"family":"gnp:48:0.1","seed":7,"rounds":900,"checkpointEvery":16,"roundDelayMs":2}' \
    | json_field id)
echo "submitted $JOB"

sleep 1 # mid-run: ~900 paced rounds take ~2s

# Round-trip-validate the job's checkpoint through the chain reader
# while the run is still alive, before the kill: the file the recovery
# will read must already be a loadable chain. (Writes are atomic
# renames, so reading beside the running daemon is safe.)
CKPT=$DATA/jobs/$JOB/checkpoint.ck
for _ in $(seq 100); do
    [ -s "$CKPT" ] && break
    sleep 0.05
done
"$BIN/beepmis" -inspect-checkpoint "$CKPT"
echo "checkpoint chain validates pre-kill"

kill -9 "$PID"
wait "$PID" || true

STATE=$(json_field state < "$DATA/jobs/$JOB/job.json")
echo "state on disk after SIGKILL: $STATE"
[ "$STATE" = running ] # the crash left no orderly transition

echo "== second life: recover and resume =="
rm -f "$DATA/beepd.addr" # don't race the poll against the stale file
"$BEEPD" -data "$DATA" &
PID=$!
ADDR=$(wait_addr)

STATE=""
for _ in $(seq 300); do
    STATE=$(curl -sf "http://$ADDR/v1/jobs/$JOB" | json_field state)
    [ "$STATE" = done ] && break
    case "$STATE" in failed|canceled) break ;; esac
    sleep 0.2
done
echo "state after resume: $STATE"
[ "$STATE" = done ]

curl -sf "http://$ADDR/v1/jobs/$JOB/events" | tail -1 | grep -q '"type":"done"'
echo "event stream ends with done event"

echo "== drain =="
kill -TERM "$PID"
wait "$PID" # graceful shutdown must exit 0
echo "beepd smoke OK"
