#!/usr/bin/env bash
# End-to-end smoke of the distributed engine with the SHIPPED binaries:
# beepmis as coordinator, real beepworker processes as partitions.
#
# Proves, at the process level with nothing but the shell:
#   1. a distributed run produces the exact same "stabilized:" line
#      (rounds and |MIS|) as the single-process run;
#   2. SIGKILLing a live beepworker mid-run is survived — the
#      coordinator respawns it, rewinds to the last synchronized
#      checkpoint, and still finishes with the identical result line.
#
# The Go test suites (internal/dist, cmd/beepworker) cover the same
# ground with partition matrices, fault injection, and bit-exact
# per-round trace comparison; this script is the cheap check that the
# shipped binaries, flags and all, behave the same way.
set -euo pipefail

BIN=$(mktemp -d)
go build -o "$BIN/beepmis" ./cmd/beepmis
go build -o "$BIN/beepworker" ./cmd/beepworker

FAMILY=gnp:64:0.095
ALG=alg1-known-delta
SEED=7

result_line() { grep '^stabilized:' "$1"; }

echo "== single-process reference =="
"$BIN/beepmis" -family "$FAMILY" -alg "$ALG" -seed "$SEED" | tee "$BIN/ref.out"
REF=$(result_line "$BIN/ref.out" | sed 's/ (verified).*//')

echo "== distributed, 3 worker processes =="
"$BIN/beepmis" -family "$FAMILY" -alg "$ALG" -seed "$SEED" \
    -distributed -partitions 3 -worker-bin "$BIN/beepworker" \
    -checkpoint "$BIN/match.ckpt" -checkpoint-every 8 | tee "$BIN/dist.out"
DIST=$(result_line "$BIN/dist.out" | sed 's/ (verified).*//')
[ "$DIST" = "$REF" ] || { echo "distributed result diverged: '$DIST' != '$REF'" >&2; exit 1; }
echo "distributed result matches single-process reference"

# Round-trip the persisted checkpoint through the chain reader (base
# integrity hash plus every delta link) before trusting the format for
# the kill drill below.
"$BIN/beepmis" -inspect-checkpoint "$BIN/match.ckpt"
echo "persisted checkpoint chain validates"

echo "== chaos: SIGKILL a worker mid-run =="
# Paced rounds keep the run alive long enough to land the kill; the
# checkpoint cadence gives the coordinator something to rewind to.
"$BIN/beepmis" -family "$FAMILY" -alg "$ALG" -seed "$SEED" \
    -distributed -partitions 3 -worker-bin "$BIN/beepworker" \
    -checkpoint "$BIN/chaos.ckpt" -checkpoint-every 4 \
    -dist-round-delay 50ms > "$BIN/chaos.out" &
COORD=$!

# Match the worker's argv shape, not just the path: the coordinator's
# own command line contains the -worker-bin path too.
VICTIM=""
for _ in $(seq 100); do
    VICTIM=$(pgrep -f "$BIN/beepworker -connect" | head -1 || true)
    [ -n "$VICTIM" ] && break
    sleep 0.05
done
[ -n "$VICTIM" ] || { echo "no beepworker process appeared" >&2; exit 1; }
sleep 0.5 # let the run get a few rounds (and a checkpoint) in
kill -9 "$VICTIM"
echo "killed beepworker pid $VICTIM"

wait "$COORD" # the coordinator must still exit 0
cat "$BIN/chaos.out"
CHAOS=$(result_line "$BIN/chaos.out" | sed 's/ (verified).*//')
[ "$CHAOS" = "$REF" ] || { echo "post-crash result diverged: '$CHAOS' != '$REF'" >&2; exit 1; }
grep -q 'respawns=[1-9]' "$BIN/chaos.out" || { echo "kill landed but no respawn was recorded" >&2; exit 1; }
echo "worker crash recovered, result identical"

# The chain the chaos run left behind must still load cleanly: every
# link hash-checked, torn tails tolerated, breaks fatal.
"$BIN/beepmis" -inspect-checkpoint "$BIN/chaos.ckpt"
echo "post-crash checkpoint chain validates"
echo "dist smoke OK"
