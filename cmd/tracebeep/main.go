// Command tracebeep runs a small instance of Algorithm 1 or 2 and
// prints a per-round trace: each vertex's level, beep, and stability,
// making the paper's dynamics visible at a glance.
//
// Usage:
//
//	tracebeep -family cycle:12 -rounds 40
//	tracebeep -family complete:6 -alg alg2-two-channel -init adversarial
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/famspec"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracebeep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracebeep", flag.ContinueOnError)
	family := fs.String("family", "cycle:12", "graph family spec (keep it small; one line per round)")
	alg := fs.String("alg", "alg1-known-delta", "alg1-known-delta | alg1-own-degree | alg2-two-channel")
	init := fs.String("init", "random", "fresh | random | adversarial | zero")
	seed := fs.Uint64("seed", 1, "random seed")
	rounds := fs.Int("rounds", 60, "maximum rounds to trace")
	svgPath := fs.String("svg", "", "write a level-heatmap SVG of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := famspec.Parse(*family, rng.New(*seed^0x9e37))
	if err != nil {
		return err
	}
	if g.N() > 64 {
		return fmt.Errorf("trace output is per-vertex; use a graph with at most 64 vertices (got %d)", g.N())
	}

	var proto beep.Protocol
	switch *alg {
	case "alg1-known-delta":
		proto = core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	case "alg1-own-degree":
		proto = core.NewAlg1(core.OwnDegree(core.DefaultC1OwnDegree))
	case "alg2-two-channel":
		proto = core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop))
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	var initMode core.InitMode
	switch *init {
	case "fresh":
		initMode = core.InitFresh
	case "random":
		initMode = core.InitRandom
	case "adversarial":
		initMode = core.InitAdversarial
	case "zero":
		initMode = core.InitZero
	default:
		return fmt.Errorf("unknown init %q", *init)
	}

	var lastSent []beep.Signal
	var rec *trace.Recorder
	net, err := beep.NewNetwork(g, proto, *seed, beep.WithObserver(func(round int, sent, heard []beep.Signal) {
		lastSent = append(lastSent[:0], sent...)
		if rec != nil {
			rec.Observer()(round, sent, heard)
		}
	}))
	if err != nil {
		return err
	}
	defer net.Close()
	if *svgPath != "" {
		rec = trace.NewRecorder(net)
		rec.KeepLevels = true
	}

	switch initMode {
	case core.InitRandom:
		net.RandomizeAll()
	case core.InitAdversarial:
		for v := 0; v < net.N(); v++ {
			if m, ok := net.Machine(v).(core.Leveled); ok {
				m.SetLevel(-m.Cap())
			}
		}
	case core.InitZero:
		for v := 0; v < net.N(); v++ {
			if m, ok := net.Machine(v).(core.Leveled); ok {
				m.SetLevel(0)
			}
		}
	}

	fmt.Printf("graph %s  n=%d m=%d  alg=%s init=%s seed=%d\n", g.Name(), g.N(), g.M(), *alg, *init, *seed)
	fmt.Println("per round: level[beep-marker]; * = in MIS, . = stable non-MIS")

	var st core.State
	stable := make([]bool, g.N())
	for r := 0; r <= *rounds; r++ {
		if err := st.Refresh(net); err != nil {
			return err
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "r%-4d", net.Round())
		st.FillStableMask(stable)
		for v := 0; v < g.N(); v++ {
			mark := " "
			if r > 0 && v < len(lastSent) && lastSent[v] != beep.Silent {
				mark = "!"
			}
			tag := ""
			switch {
			case st.InMIS(v):
				tag = "*"
			case stable[v]:
				tag = "."
			}
			fmt.Fprintf(&sb, " %4d%s%s", st.Level(v), mark, tag)
		}
		fmt.Println(sb.String())
		if st.Stabilized() {
			fmt.Printf("stabilized after %d rounds; MIS verified: %v\n", net.Round(), st.VerifyMIS() == nil)
			return writeSVG(rec, net, *svgPath)
		}
		net.Step()
	}
	fmt.Printf("not stabilized within %d rounds (increase -rounds)\n", *rounds)
	return writeSVG(rec, net, *svgPath)
}

// writeSVG emits the level heatmap when requested.
func writeSVG(rec *trace.Recorder, net *beep.Network, path string) error {
	if rec == nil || path == "" {
		return nil
	}
	caps := make([]int, net.N())
	for v := range caps {
		m, ok := net.Machine(v).(core.Leveled)
		if !ok {
			return fmt.Errorf("machine %T has no levels", net.Machine(v))
		}
		caps[v] = m.Cap()
	}
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		return rec.WriteLevelHeatmapSVG(w, caps, 6)
	}); err != nil {
		return err
	}
	fmt.Printf("heatmap written to %s\n", path)
	return nil
}
