package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTraceAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"alg1-known-delta", "alg1-own-degree", "alg2-two-channel"} {
		if err := run([]string{"-family", "cycle:8", "-alg", alg, "-rounds", "500"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunTraceInits(t *testing.T) {
	for _, init := range []string{"fresh", "random", "adversarial", "zero"} {
		if err := run([]string{"-family", "path:6", "-init", init, "-rounds", "500"}); err != nil {
			t.Fatalf("%s: %v", init, err)
		}
	}
}

func TestRunTraceBudgetExhaustion(t *testing.T) {
	// One round is never enough on a clique; run reports, not errors.
	if err := run([]string{"-family", "complete:8", "-rounds", "0", "-init", "zero"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-family", "nosuch:8"},
		{"-family", "cycle:8", "-alg", "bad"},
		{"-family", "cycle:8", "-init", "bad"},
		{"-family", "cycle:100"}, // too large to trace
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunTraceSVG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "levels.svg")
	if err := run([]string{"-family", "cycle:10", "-rounds", "500", "-svg", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("no svg written")
	}
}
