package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The chaos matrix needs real worker processes to SIGKILL. Instead of
// building the binary, the test binary re-executes itself as a worker
// when this env var is set (the same trick as cmd/beepd's chaos tests).
const workerEnv = "BEEPWORKER_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		runTestWorker()
		return
	}
	os.Exit(m.Run())
}

// runTestWorker is the child-process entry: the same serve loop as the
// real binary, flags parsed from the ProcSpawner command line.
func runTestWorker() {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	connect := fs.String("connect", "", "")
	part := fs.Int("part", -1, "")
	token := fs.String("token", "", "")
	fs.Parse(os.Args[1:])
	if err := dist.RunWorker(context.Background(), dist.WorkerConfig{
		Addr: *connect, Part: *part, Token: *token,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "test worker:", err)
		os.Exit(1)
	}
}

func maskHash(mask []bool) uint64 {
	h := fnv.New64a()
	for _, in := range mask {
		if in {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

func goldenConfig(g *graph.Graph, parts int, spawner dist.Spawner) dist.Config {
	return dist.Config{
		Graph:      g,
		Protocol:   "alg1-known-delta",
		Seed:       7,
		Init:       core.InitRandom,
		Partitions: parts,
		Spawner:    spawner,
	}
}

// TestProcessChaosMatrix is the process-level crash-recovery matrix: at
// ≥10 randomized kill points a live worker process is SIGKILLed mid-run
// and the coordinator must respawn it, rewind to the last synchronized
// checkpoint, and finish hash-for-hash identical to the uninterrupted
// reference — stabilization round, MIS mask, and every per-round trace
// digest.
func TestProcessChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos matrix is not -short")
	}
	g := graph.GNPAvgDegree(64, 6, rng.New(42))
	const parts = 2

	// Uninterrupted reference, in-process (proven bit-identical to the
	// Flat engine by the internal/dist equivalence matrix).
	ref, err := dist.Run(context.Background(), goldenConfig(g, parts, dist.InProcessSpawner(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Stabilized || ref.StabilizedRound != 39 || ref.MISSize != 20 || maskHash(ref.MIS) != 0xc3308e69f7440ccb {
		t.Fatalf("reference run is not the golden execution: %+v", ref)
	}

	// Randomized but reproducible kill schedule: (round, partition)
	// pairs spread across the whole execution.
	sched := rng.New(2024)
	type kill struct{ round, part int }
	var kills []kill
	for i := 0; i < 10; i++ {
		kills = append(kills, kill{round: 1 + sched.Intn(ref.Rounds-2), part: sched.Intn(parts)})
	}

	t.Setenv(workerEnv, "1") // inherited by the spawned processes

	for i, k := range kills {
		spawner := &dist.ProcSpawner{Binary: os.Args[0], Stderr: os.Stderr}
		cfg := goldenConfig(g, parts, spawner)
		cfg.CheckpointEvery = 4
		// Pace rounds so the SIGKILL lands while the victim is alive
		// mid-run, not after everything already finished.
		cfg.RoundDelay = 2 * time.Millisecond
		killed := false
		cfg.Observer = func(round int, hash uint64) {
			if !killed && round >= k.round {
				killed = true
				if pid := spawner.Pid(k.part); pid > 0 {
					syscall.Kill(pid, syscall.SIGKILL)
				}
			}
		}
		res, err := dist.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("kill %d (round %d, part %d): %v", i, k.round, k.part, err)
		}
		if !killed {
			t.Fatalf("kill %d: schedule round %d never fired (run took %d rounds)", i, k.round, res.Rounds)
		}
		if res.Respawns < 1 {
			t.Fatalf("kill %d: SIGKILL at round %d caused no respawn", i, k.round)
		}
		if res.StabilizedRound != ref.StabilizedRound || res.MISSize != ref.MISSize || maskHash(res.MIS) != maskHash(ref.MIS) {
			t.Fatalf("kill %d (round %d, part %d): diverged: round=%d |MIS|=%d hash=%#x, want %d/%d/%#x",
				i, k.round, k.part, res.StabilizedRound, res.MISSize, maskHash(res.MIS),
				ref.StabilizedRound, ref.MISSize, maskHash(ref.MIS))
		}
		if len(res.RoundHashes) != len(ref.RoundHashes) {
			t.Fatalf("kill %d: %d round hashes, reference %d", i, len(res.RoundHashes), len(ref.RoundHashes))
		}
		for r := range ref.RoundHashes {
			if res.RoundHashes[r] != ref.RoundHashes[r] {
				t.Fatalf("kill %d: round %d hash %#x, reference %#x", i, r+1, res.RoundHashes[r], ref.RoundHashes[r])
			}
		}
	}
}

// TestProcessOrderlyShutdown pins the clean path: a full run over real
// worker processes, no faults, golden result, zero respawns.
func TestProcessOrderlyShutdown(t *testing.T) {
	t.Setenv(workerEnv, "1")
	g := graph.GNPAvgDegree(64, 6, rng.New(42))
	spawner := &dist.ProcSpawner{Binary: os.Args[0], Stderr: os.Stderr}
	res, err := dist.Run(context.Background(), goldenConfig(g, 3, spawner))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized || res.StabilizedRound != 39 || res.Respawns != 0 || maskHash(res.MIS) != 0xc3308e69f7440ccb {
		t.Fatalf("process run diverged: %+v", res)
	}
}
