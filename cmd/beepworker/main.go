// Command beepworker is the partition worker process of the distributed
// engine: it dials a coordinator (beepmis -distributed -worker-bin, or
// a test harness), joins with its partition index and run token, and
// serves its vertex range until the coordinator shuts the run down or
// the connection drops.
//
//	beepworker -connect 127.0.0.1:7421 -part 0 -token run-abc
//
// Exit status 0 means an orderly shutdown frame was received; a lost
// connection (including a coordinator crash) exits 1 so supervisors can
// tell the difference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dist"
)

func main() {
	connect := flag.String("connect", "", "coordinator address to dial (required)")
	part := flag.Int("part", -1, "partition index assigned by the coordinator (required)")
	token := flag.String("token", "", "run token issued by the coordinator (required)")
	verbose := flag.Bool("v", false, "log worker progress to stderr")
	flag.Parse()

	if *connect == "" || *part < 0 || *token == "" {
		fmt.Fprintln(os.Stderr, "beepworker: -connect, -part and -token are required")
		flag.Usage()
		os.Exit(2)
	}
	var logf func(string, ...any)
	if *verbose {
		logf = log.New(os.Stderr, fmt.Sprintf("beepworker[%d]: ", *part), log.Lmicroseconds).Printf
	}
	if err := dist.RunWorker(context.Background(), dist.WorkerConfig{
		Addr:  *connect,
		Part:  *part,
		Token: *token,
		Logf:  logf,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "beepworker:", err)
		os.Exit(1)
	}
}
