package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestRunFamilyAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"alg1-known-delta", "alg1-own-degree", "alg2-two-channel", "alg1-adaptive"} {
		if err := run([]string{"-family", "cycle:24", "-alg", alg, "-seed", "3"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	for _, alg := range []string{"jeavons", "afek", "luby"} {
		if err := run([]string{"-family", "cycle:16", "-alg", alg, "-init", "fresh", "-seed", "3"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunInitModes(t *testing.T) {
	for _, init := range []string{"fresh", "random", "adversarial", "zero"} {
		if err := run([]string{"-family", "path:12", "-init", init}); err != nil {
			t.Fatalf("%s: %v", init, err)
		}
	}
}

func TestRunGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-print-mis"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGraphFileBGR(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bgr")
	if err := graph.WriteBGR(path, graph.Torus(5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-print-mis"}); err != nil {
		t.Fatal(err)
	}
	// A tampered image must be rejected before any simulation starts.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path}); err == nil {
		t.Fatal("tampered .bgr accepted")
	}
}

func TestRunGraphFileGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte("n 4\n0 1\n1 2\n2 3\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-print-mis"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultsAndNoise(t *testing.T) {
	if err := run([]string{"-family", "cycle:20", "-faults", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "cycle:20", "-noise", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-family", "cycle:16", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,beeping,") {
		t.Fatalf("csv header missing:\n%s", string(data[:60]))
	}
	if strings.Count(string(data), "\n") < 3 {
		t.Fatal("csv too short")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no graph
		{"-family", "cycle:8", "-graph", "x"},  // both sources
		{"-family", "nosuch:8"},                // unknown family
		{"-family", "cycle:8", "-alg", "bad"},  // unknown algorithm
		{"-family", "cycle:8", "-init", "bad"}, // unknown init
		{"-graph", "/nonexistent/file"},        // unreadable file
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestHelpFamilies(t *testing.T) {
	if err := run([]string{"-help-families"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnStorms(t *testing.T) {
	for _, spec := range []string{"flap:2:3", "growth:2:2:2", "crash:2:2", "partition:1"} {
		if err := run([]string{"-family", "gnp:24:0.2", "-churn", spec, "-seed", "5"}); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestRunChurnWithMuteAdversaries(t *testing.T) {
	if err := run([]string{"-family", "gnp:30:0.15", "-churn", "flap:2:3",
		"-adversaries", "0,7", "-adversary-policy", "mute", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdversaries(t *testing.T) {
	// Mute adversaries: the correct subgraph stabilizes and verifies.
	if err := run([]string{"-family", "gnp:30:0.15", "-adversaries", "2,11",
		"-adversary-policy", "mute", "-seed", "4", "-print-mis"}); err != nil {
		t.Fatal(err)
	}
	// A jammer at a star's center denies every leaf its silent rounds, so
	// the correct subgraph can never stabilize; the run must still
	// complete gracefully with a stable-fraction report.
	if err := run([]string{"-family", "star:12", "-adversaries", "0",
		"-adversary-policy", "jammer", "-max-rounds", "300"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnAndAdversaryErrors(t *testing.T) {
	cases := [][]string{
		{"-family", "cycle:8", "-churn", "bogus:1"},                            // unknown kind
		{"-family", "cycle:8", "-churn", "flap:0:2"},                           // non-positive events
		{"-family", "cycle:8", "-churn", "flap:2"},                             // wrong arity
		{"-family", "cycle:8", "-churn", "flap:x:2"},                           // non-integer
		{"-family", "cycle:8", "-adversaries", "99"},                           // out of range
		{"-family", "cycle:8", "-adversaries", "-1"},                           // negative id
		{"-family", "cycle:8", "-adversaries", "1,x"},                          // not an id
		{"-family", "cycle:8", "-adversaries", ","},                            // empty list
		{"-family", "cycle:8", "-adversary-policy", "mute"},                    // policy without set
		{"-family", "cycle:8", "-adversaries", "1", "-adversary-policy", "ba"}, // unknown policy
		{"-family", "cycle:8", "-churn", "flap:1:2", "-faults", "2"},           // churn + faults
		{"-family", "cycle:8", "-adversaries", "1", "-csv", "x.csv"},           // adversaries + csv
		{"-family", "cycle:8", "-alg", "luby", "-churn", "flap:1:2"},           // baseline + churn
		{"-family", "cycle:8", "-alg", "afek", "-adversaries", "1"},            // baseline + adversaries
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunGraph6File(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.g6")
	// "Ch" is P4.
	if err := os.WriteFile(path, []byte("Ch\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path}); err != nil {
		t.Fatal(err)
	}
}

// TestRunEngines exercises the -engine flag across all five engines and
// the error path for unknown names and baseline combinations.
func TestRunEngines(t *testing.T) {
	for _, engine := range []string{"sequential", "parallel", "pervertex", "flat", "flatparallel"} {
		if err := run([]string{"-family", "cycle:24", "-engine", engine, "-seed", "3"}); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	if err := run([]string{"-family", "cycle:24", "-engine", "warp"}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("want unknown-engine error, got %v", err)
	}
	if err := run([]string{"-family", "cycle:16", "-alg", "luby", "-engine", "flat"}); err == nil {
		t.Fatal("want error for -engine with a baseline algorithm")
	}
}

// TestRunWorkersFlag covers -workers: explicit counts on the parallel
// engines (including counts above the vertex count, which the network
// clamps), acceptance on the churn and adversary paths, rejection of
// negative values, and rejection for baseline algorithms.
func TestRunWorkersFlag(t *testing.T) {
	for _, engine := range []string{"flatparallel", "parallel"} {
		for _, w := range []string{"1", "2", "999"} {
			if err := run([]string{"-family", "cycle:24", "-engine", engine, "-workers", w, "-seed", "3"}); err != nil {
				t.Fatalf("%s/-workers=%s: %v", engine, w, err)
			}
		}
	}
	if err := run([]string{"-family", "cycle:24", "-engine", "flatparallel", "-workers", "2",
		"-churn", "flap:2:2", "-seed", "3"}); err != nil {
		t.Fatalf("churn with -workers: %v", err)
	}
	if err := run([]string{"-family", "cycle:24", "-engine", "flatparallel", "-workers", "2",
		"-adversaries", "0", "-adversary-policy", "mute", "-seed", "3"}); err != nil {
		t.Fatalf("adversaries with -workers: %v", err)
	}
	if err := run([]string{"-family", "cycle:24", "-workers", "-1"}); err == nil ||
		!strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("want non-negative validation error, got %v", err)
	}
	if err := run([]string{"-family", "cycle:16", "-alg", "luby", "-init", "fresh", "-workers", "2"}); err == nil {
		t.Fatal("want error for -workers with a baseline algorithm")
	}
}

// TestRunSparseFlag covers -sparse: the three mode names on every
// engine that supports them (sequential carries flat kernels, so
// forced-on works there too), the distributed path, and the rejection
// matrix — unknown mode names, forced-on with kernel-less engines, and
// baseline algorithms.
func TestRunSparseFlag(t *testing.T) {
	for _, engine := range []string{"sequential", "flat", "flatparallel"} {
		for _, mode := range []string{"auto", "on", "off"} {
			if err := run([]string{"-family", "cycle:24", "-engine", engine, "-sparse", mode, "-seed", "3"}); err != nil {
				t.Fatalf("%s/-sparse=%s: %v", engine, mode, err)
			}
		}
	}
	// The delta path must survive the churn and fault-drill drivers
	// (faults corrupt state mid-run; churn rewires live).
	if err := run([]string{"-family", "gnp:24:0.2", "-engine", "flat", "-sparse", "on",
		"-churn", "flap:2:2", "-seed", "5"}); err != nil {
		t.Fatalf("churn with -sparse on: %v", err)
	}
	if err := run([]string{"-family", "cycle:20", "-engine", "flat", "-sparse", "on",
		"-faults", "4", "-seed", "3"}); err != nil {
		t.Fatalf("faults with -sparse on: %v", err)
	}
	if err := run([]string{"-family", "cycle:24", "-distributed", "-partitions", "2",
		"-sparse", "on", "-seed", "3"}); err != nil {
		t.Fatalf("distributed with -sparse on: %v", err)
	}
	if err := run([]string{"-family", "cycle:24", "-distributed", "-partitions", "2",
		"-sparse", "off", "-seed", "3"}); err != nil {
		t.Fatalf("distributed with -sparse off: %v", err)
	}
	if err := run([]string{"-family", "cycle:24", "-sparse", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "sparse") {
		t.Fatalf("want unknown-mode error, got %v", err)
	}
	for _, engine := range []string{"parallel", "pervertex"} {
		if err := run([]string{"-family", "cycle:24", "-engine", engine, "-sparse", "on"}); err == nil ||
			!strings.Contains(err.Error(), "flat-kernel") {
			t.Fatalf("%s: want flat-kernel rejection, got %v", engine, err)
		}
	}
	if err := run([]string{"-family", "cycle:16", "-alg", "luby", "-init", "fresh", "-sparse", "on"}); err == nil {
		t.Fatal("want error for -sparse with a baseline algorithm")
	}
}

// TestRunProfiles checks -cpuprofile/-memprofile leave non-empty pprof
// files behind after a successful run.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-family", "gnp:128:0.05", "-engine", "flat",
		"-cpuprofile", cpu, "-memprofile", mem, "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunCheckpointInspectResume drives the checkpoint lifecycle
// through the CLI: a supervised run persists a chain, -inspect-checkpoint
// validates it, -resume continues from it, and a tampered file is
// rejected with a nonzero-exit error.
func TestRunCheckpointInspectResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := run([]string{"-family", "gnp:96:0.07", "-seed", "4",
		"-checkpoint", path, "-checkpoint-every", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-inspect-checkpoint", path}); err != nil {
		t.Fatalf("inspect of a freshly written checkpoint failed: %v", err)
	}
	if err := run([]string{"-family", "gnp:96:0.07", "-seed", "4",
		"-resume", path}); err != nil {
		t.Fatalf("resume from inspected checkpoint failed: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-inspect-checkpoint", bad}); err == nil {
		t.Fatal("inspect accepted a tampered checkpoint")
	}
}
