package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFamilyAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"alg1-known-delta", "alg1-own-degree", "alg2-two-channel", "alg1-adaptive"} {
		if err := run([]string{"-family", "cycle:24", "-alg", alg, "-seed", "3"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	for _, alg := range []string{"jeavons", "afek", "luby"} {
		if err := run([]string{"-family", "cycle:16", "-alg", alg, "-init", "fresh", "-seed", "3"}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunInitModes(t *testing.T) {
	for _, init := range []string{"fresh", "random", "adversarial", "zero"} {
		if err := run([]string{"-family", "path:12", "-init", init}); err != nil {
			t.Fatalf("%s: %v", init, err)
		}
	}
}

func TestRunGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-print-mis"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultsAndNoise(t *testing.T) {
	if err := run([]string{"-family", "cycle:20", "-faults", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "cycle:20", "-noise", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-family", "cycle:16", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,beeping,") {
		t.Fatalf("csv header missing:\n%s", string(data[:60]))
	}
	if strings.Count(string(data), "\n") < 3 {
		t.Fatal("csv too short")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no graph
		{"-family", "cycle:8", "-graph", "x"},  // both sources
		{"-family", "nosuch:8"},                // unknown family
		{"-family", "cycle:8", "-alg", "bad"},  // unknown algorithm
		{"-family", "cycle:8", "-init", "bad"}, // unknown init
		{"-graph", "/nonexistent/file"},        // unreadable file
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestHelpFamilies(t *testing.T) {
	if err := run([]string{"-help-families"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGraph6File(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.g6")
	// "Ch" is P4.
	if err := os.WriteFile(path, []byte("Ch\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path}); err != nil {
		t.Fatal(err)
	}
}
