// Command beepmis runs one of the paper's self-stabilizing MIS
// algorithms on a graph and reports the stabilization round count and
// the computed set.
//
// Usage:
//
//	beepmis -family cycle:64 -alg alg1-known-delta -init random
//	beepmis -graph topology.edges -alg alg2-two-channel -seed 7
//	beepmis -family gnp:256:0.05 -faults 20        # inject and recover
//	beepmis -family gnp:128:0.1 -churn flap:3:8    # live-rewiring storm
//	beepmis -family star:16 -adversaries 0 -adversary-policy jammer
//	beepmis -family gnp:4096:0.002 -engine flat -cpuprofile cpu.pprof
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/baseline"
	"repro/internal/beep"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/famspec"
	"repro/internal/graph"
	"repro/internal/prof"
	"repro/internal/rng"
	"repro/internal/stab"
	"repro/internal/trace"
)

// applyInitCLI mirrors core's initial-configuration handling for the
// directly built network used by the -csv path.
func applyInitCLI(net *beep.Network, mode core.InitMode) error {
	switch mode {
	case core.InitRandom:
		net.RandomizeAll()
	case core.InitAdversarial:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(core.Leveled)
			if !ok {
				return fmt.Errorf("machine %T has no levels", net.Machine(v))
			}
			m.SetLevel(-m.Cap())
		}
	case core.InitZero:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(core.Leveled)
			if !ok {
				return fmt.Errorf("machine %T has no levels", net.Machine(v))
			}
			m.SetLevel(0)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "beepmis:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("beepmis", flag.ContinueOnError)
	family := fs.String("family", "", "graph family spec (see -help-families)")
	graphFile := fs.String("graph", "", "graph file: .edges, .edges.gz, .g6 or .bgr (alternative to -family)")
	alg := fs.String("alg", "alg1-known-delta", "algorithm: alg1-known-delta | alg1-own-degree | alg2-two-channel | alg1-adaptive | jeavons | afek | luby")
	init := fs.String("init", "random", "initial configuration: fresh | random | adversarial | zero")
	seed := fs.Uint64("seed", 1, "random seed")
	maxRounds := fs.Int("max-rounds", 0, "round budget (0 = generous default)")
	faults := fs.Int("faults", 0, "after stabilizing, corrupt this many vertex states and re-stabilize")
	noise := fs.Float64("noise", 0, "listening-noise probability ε (applied as both loss and false-positive rate)")
	csvPath := fs.String("csv", "", "write per-round aggregate statistics (CSV) to this file")
	printMIS := fs.Bool("print-mis", false, "print the MIS vertex list")
	churnSpec := fs.String("churn", "", "run a topology-churn storm: flap:EVENTS:TOGGLES | growth:EVENTS:JOINS:ATTACH | crash:EVENTS:CRASHES | partition:CYCLES")
	advList := fs.String("adversaries", "", "comma-separated non-cooperating vertex ids (e.g. \"0,5,9\")")
	advPolicy := fs.String("adversary-policy", "jammer", "adversary behavior: jammer | babbler | mute (requires -adversaries)")
	ckPath := fs.String("checkpoint", "", "auto-checkpoint the run to this file (written atomically, integrity-hashed)")
	ckEvery := fs.Int("checkpoint-every", 0, "auto-checkpoint every K rounds (default 100 when -checkpoint is set)")
	resumePath := fs.String("resume", "", "resume from a checkpoint file instead of starting fresh (same -family/-seed/-alg)")
	inspectCkpt := fs.String("inspect-checkpoint", "", "validate a checkpoint file (base snapshot plus any delta chain) and print its summary, then exit; a broken chain exits nonzero")
	deadline := fs.Duration("deadline", 0, "wall-clock deadline per attempt, e.g. 30s (0 = none)")
	maxRetries := fs.Int("max-retries", 0, "budget escalations after the first attempt (the run is extended, not restarted)")
	engineName := fs.String("engine", "sequential", "round engine: sequential | parallel | pervertex | flat | flatparallel")
	workers := fs.Int("workers", 0, "worker count for the parallel engines (0 = GOMAXPROCS; ignored by sequential engines)")
	sparseName := fs.String("sparse", "auto", "flat-kernel round path: auto | on | off (on forces the sparse delta path; rejects engines without flat kernels)")
	distributed := fs.Bool("distributed", false, "run over partitioned workers (coordinator + N beepworkers)")
	partitions := fs.Int("partitions", 2, "worker partition count for -distributed")
	workerBin := fs.String("worker-bin", "", "beepworker binary for -distributed (empty = in-process workers)")
	distRoundDelay := fs.Duration("dist-round-delay", 0, "pace between distributed rounds (widens the crash window for drills)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (written atomically)")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file (written atomically)")
	helpFams := fs.Bool("help-families", false, "list graph family specs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *helpFams {
		fmt.Println(famspec.Help)
		return nil
	}
	if *inspectCkpt != "" {
		return inspectCheckpoint(*inspectCkpt)
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !*distributed && (explicit["partitions"] || explicit["worker-bin"] || explicit["dist-round-delay"]) {
		return fmt.Errorf("-partitions, -worker-bin and -dist-round-delay require -distributed")
	}
	engine, err := beep.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d: worker count must be non-negative (0 = GOMAXPROCS)", *workers)
	}
	sparseMode, err := beep.ParseSparseMode(*sparseName)
	if err != nil {
		return err
	}
	if sparseMode == beep.SparseOn && (engine == beep.Parallel || engine == beep.PerVertex) {
		return fmt.Errorf("-sparse on requires a flat-kernel engine (sequential, flat, flatparallel) or -distributed; -engine %s has none", *engineName)
	}
	// engineOpts builds the engine configuration (engine choice plus the
	// optional explicit worker count) shared by every network this
	// invocation constructs; each call returns a fresh slice, so the
	// per-path appends never alias.
	engineOpts := func(extra ...beep.Option) []beep.Option {
		opts := []beep.Option{beep.WithEngine(engine), beep.WithSparse(sparseMode)}
		if *workers > 0 {
			opts = append(opts, beep.WithWorkers(*workers))
		}
		return append(opts, extra...)
	}
	finishProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finishProf(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()

	if *ckEvery > 0 && *ckPath == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint")
	}
	if *ckPath != "" && *ckEvery == 0 {
		*ckEvery = 100
	}
	sup := supervision{
		ckPath: *ckPath, ckEvery: *ckEvery, resumePath: *resumePath,
		deadline: *deadline, maxRetries: *maxRetries,
	}
	supervised := sup.ckPath != "" || sup.resumePath != "" || sup.deadline != 0 || sup.maxRetries > 0

	g, err := loadGraph(*family, *graphFile, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s  n=%d m=%d Δ=%d\n", g.Name(), g.N(), g.M(), g.MaxDegree())

	switch *alg {
	case "jeavons", "afek", "luby":
		if *churnSpec != "" || *advList != "" {
			return fmt.Errorf("-churn and -adversaries apply to the self-stabilizing algorithms only, not %q", *alg)
		}
		if *distributed {
			return fmt.Errorf("-distributed applies to the self-stabilizing algorithms only, not %q", *alg)
		}
		if engine != beep.Sequential {
			return fmt.Errorf("-engine applies to the self-stabilizing algorithms only, not %q", *alg)
		}
		if *workers > 0 {
			return fmt.Errorf("-workers applies to the self-stabilizing algorithms only, not %q", *alg)
		}
		if explicit["sparse"] {
			return fmt.Errorf("-sparse applies to the self-stabilizing algorithms only, not %q", *alg)
		}
		if supervised {
			return fmt.Errorf("-checkpoint/-resume/-deadline/-max-retries apply to the self-stabilizing algorithms only, not %q", *alg)
		}
		return runBaseline(g, *alg, *seed, *maxRounds, *init, *printMIS)
	}

	proto, err := protocolFor(*alg)
	if err != nil {
		return err
	}
	initMode, err := initFor(*init)
	if err != nil {
		return err
	}
	if *distributed {
		// The distributed engine proves bit-exactness against the Flat
		// engine under deterministic per-vertex streams; the features
		// below either perturb determinism (noise, adversaries, churn)
		// or are single-process drivers (-csv recorder, fault drill,
		// supervisor retries) and stay with the local engines.
		switch {
		case *churnSpec != "" || *advList != "":
			return fmt.Errorf("-distributed cannot be combined with -churn or -adversaries")
		case *noise > 0:
			return fmt.Errorf("-distributed cannot be combined with -noise")
		case *csvPath != "" || *faults > 0:
			return fmt.Errorf("-distributed cannot be combined with -csv or -faults")
		case *deadline != 0 || *maxRetries > 0:
			return fmt.Errorf("-distributed cannot be combined with -deadline or -max-retries")
		case explicit["engine"] || *workers > 0:
			return fmt.Errorf("-engine/-workers select a local engine; -distributed always runs flat kernels over -partitions workers")
		}
		return runDistributed(g, *alg, *seed, initMode, *maxRounds, *partitions,
			*workerBin, *distRoundDelay, sparseMode, sup, *printMIS)
	}
	if *advList == "" && *advPolicy != "jammer" {
		return fmt.Errorf("-adversary-policy %q requires -adversaries", *advPolicy)
	}
	advVerts, advPol, err := parseAdversarySpec(*advList, *advPolicy, g.N())
	if err != nil {
		return err
	}
	if *churnSpec != "" {
		if *csvPath != "" || *faults > 0 {
			return fmt.Errorf("-churn cannot be combined with -csv or -faults")
		}
		if supervised {
			return fmt.Errorf("-churn cannot be combined with -checkpoint/-resume/-deadline/-max-retries")
		}
		opts := engineOpts()
		if len(advVerts) > 0 {
			opts = append(opts, beep.WithAdversaries(advPol, advVerts))
		}
		return runChurn(g, proto, *seed, *churnSpec, *maxRounds, opts)
	}
	if supervised && (*csvPath != "" || *faults > 0) {
		return fmt.Errorf("-checkpoint/-resume/-deadline/-max-retries cannot be combined with -csv or -faults")
	}
	if len(advVerts) > 0 {
		if *csvPath != "" || *faults > 0 {
			return fmt.Errorf("-adversaries cannot be combined with -csv or -faults")
		}
		if supervised {
			// The supervisor masks adversaries out of the legality probe
			// itself, so the supervised path covers adversarial runs too.
			return runSupervised(g, proto, *seed, initMode, *maxRounds, sup,
				engineOpts(beep.WithAdversaries(advPol, advVerts)), *printMIS)
		}
		return runAdversarial(g, proto, *seed, engineOpts(), advPol, advVerts, *maxRounds, initMode, *printMIS)
	}
	runCfg := core.RunConfig{
		Graph:     g,
		Protocol:  proto,
		Seed:      *seed,
		Init:      initMode,
		MaxRounds: *maxRounds,
		Engine:    engine,
		Noise:     beep.Noise{PLoss: *noise, PFalse: *noise},
	}
	var rec *trace.Recorder
	if *csvPath != "" {
		// The recorder needs the network; route through an observer set
		// after construction via a small indirection.
		obs := func(round int, sent, heard []beep.Signal) {
			if rec != nil {
				rec.Observer()(round, sent, heard)
			}
		}
		net, err := beep.NewNetwork(g, proto, *seed, engineOpts(beep.WithObserver(obs), beep.WithNoise(runCfg.Noise))...)
		if err != nil {
			return err
		}
		defer net.Close()
		rec = trace.NewRecorder(net)
		if err := applyInitCLI(net, initMode); err != nil {
			return err
		}
		var probe core.State
		stop := func() bool {
			return probe.Refresh(net) == nil && probe.Stabilized()
		}
		budget := *maxRounds
		if budget <= 0 {
			budget = 1000000
		}
		rounds, ok := net.Run(budget, stop)
		if !ok {
			return fmt.Errorf("did not stabilize within %d rounds", budget)
		}
		st, err := core.Snapshot(net)
		if err != nil {
			return err
		}
		if err := st.VerifyMIS(); err != nil {
			return err
		}
		if err := atomicio.WriteFile(*csvPath, rec.WriteCSV); err != nil {
			return err
		}
		mis := st.MISMask()
		fmt.Printf("stabilized: rounds=%d |MIS|=%d (verified); trace written to %s\n", rounds, graph.CountTrue(mis), *csvPath)
		if *printMIS {
			printMask(mis)
		}
		return nil
	}
	if err := runSupervised(g, proto, *seed, initMode, *maxRounds, sup,
		engineOpts(beep.WithNoise(runCfg.Noise)), *printMIS); err != nil {
		return err
	}
	if *faults > 0 {
		return recoverFromFaults(g, proto, *seed, engineOpts(), *faults, *maxRounds)
	}
	return nil
}

// runDistributed drives a coordinator + N partition workers run. The
// result line keeps the same parseable "stabilized:" prefix as the
// single-process paths — by design the distributed execution is
// bit-identical to them, so the rounds/|MIS| fields must match too.
func runDistributed(g *graph.Graph, alg string, seed uint64, initMode core.InitMode,
	maxRounds, partitions int, workerBin string, roundDelay time.Duration,
	sparse beep.SparseMode, sup supervision, printMIS bool) error {
	cfg := dist.Config{
		Graph:           g,
		Protocol:        alg,
		Seed:            seed,
		Init:            initMode,
		Partitions:      partitions,
		MaxRounds:       maxRounds,
		CheckpointEvery: sup.ckEvery,
		CheckpointPath:  sup.ckPath,
		RoundDelay:      roundDelay,
		Sparse:          sparse,
	}
	if workerBin != "" {
		cfg.Spawner = &dist.ProcSpawner{Binary: workerBin, Stderr: os.Stderr}
	} else {
		cfg.Spawner = dist.InProcessSpawner(nil)
	}
	if sup.resumePath != "" {
		cp, err := stab.ReadCheckpointFile(sup.resumePath)
		if err != nil {
			return err
		}
		cfg.Resume = cp
		fmt.Printf("resuming from %s (round %d)\n", sup.resumePath, cp.Round)
	}
	res, err := dist.Run(context.Background(), cfg)
	if err != nil {
		if sup.ckPath != "" {
			return fmt.Errorf("%w (the last synchronized checkpoint, if any, is at %s; re-run with -resume %s)",
				err, sup.ckPath, sup.ckPath)
		}
		return err
	}
	exchange := "dense"
	if res.Sparse {
		exchange = "delta"
	}
	fmt.Printf("stabilized: rounds=%d |MIS|=%d (verified) distributed partitions=%d respawns=%d exchange=%s wire-bytes=%d\n",
		res.StabilizedRound, res.MISSize, partitions, res.Respawns, exchange, res.WireBytes)
	if printMIS {
		printMask(res.MIS)
	}
	return nil
}

// inspectCheckpoint round-trip-validates a checkpoint file through the
// chain reader — base integrity hash, every delta link's hash and
// parentage — and prints the assembled summary. Smoke scripts call it
// before trusting a file for kill–resume drills.
func inspectCheckpoint(path string) error {
	cp, info, err := ckpt.Load(path)
	if err != nil {
		return fmt.Errorf("inspect %s: %w", path, err)
	}
	torn := ""
	if info.TornTail {
		torn = " (torn tail discarded)"
	}
	fmt.Printf("checkpoint %s: valid\n", path)
	fmt.Printf("  base:   %d bytes (%s)\n", info.BaseBytes, info.BaseFormat)
	fmt.Printf("  deltas: %d links, %d bytes%s\n", info.Deltas, info.DeltaBytes, torn)
	fmt.Printf("  state:  round=%d n=%d protocol=%s hash=%#016x\n",
		cp.Round, cp.GraphN, cp.Protocol, cp.Hash)
	return nil
}

// supervision carries the crash-safety CLI flags.
type supervision struct {
	ckPath     string
	ckEvery    int
	resumePath string
	deadline   time.Duration
	maxRetries int
}

// runSupervised is the supervised driver shared by the plain and
// adversarial paths: one stab.Supervisor run with optional deadline,
// budget escalation, auto-checkpointing and resume.
func runSupervised(g *graph.Graph, proto beep.Protocol, seed uint64, initMode core.InitMode,
	maxRounds int, sup supervision, opts []beep.Option, printMIS bool) error {
	cfg := stab.SupervisorConfig{
		Graph: g, Protocol: proto, Seed: seed, Init: initMode,
		MaxRounds: maxRounds, MaxRetries: sup.maxRetries, Deadline: sup.deadline,
		CheckpointEvery: sup.ckEvery, CheckpointPath: sup.ckPath,
		Options: opts,
	}
	if sup.resumePath != "" {
		cp, err := stab.ReadCheckpointFile(sup.resumePath)
		if err != nil {
			return err
		}
		cfg.Resume = cp
		fmt.Printf("resuming from %s (round %d)\n", sup.resumePath, cp.Round)
	}
	s, err := stab.NewSupervisor(cfg)
	if err != nil {
		return err
	}
	res, err := s.Run()
	if err != nil {
		if sup.ckPath != "" {
			return fmt.Errorf("%w (the last auto-checkpoint, if any, is at %s; re-run with -resume %s)",
				err, sup.ckPath, sup.ckPath)
		}
		return err
	}
	extra := ""
	if res.Resumed {
		extra += " resumed"
	}
	if res.Attempts > 1 {
		extra += fmt.Sprintf(" attempts=%d", res.Attempts)
	}
	if res.Checkpoints > 0 {
		extra += fmt.Sprintf(" checkpoints=%d", res.Checkpoints)
	}
	fmt.Printf("stabilized: rounds=%d |MIS|=%d (verified)%s\n", res.Rounds, res.MISSize, extra)
	if printMIS {
		printMask(res.MIS)
	}
	return nil
}

func loadGraph(family, file string, seed uint64) (*graph.Graph, error) {
	switch {
	case family != "" && file != "":
		return nil, fmt.Errorf("use either -family or -graph, not both")
	case family != "":
		return famspec.Parse(family, rng.New(seed^0x9e37))
	case file != "":
		if strings.HasSuffix(file, ".bgr") {
			// Binary graphs decode to the compact backend; beepmis's
			// churn/baseline paths want the materialized CSR, and the
			// fingerprint (hence every trace) is backend-invariant.
			c, err := graph.ReadBGR(file)
			if err != nil {
				return nil, err
			}
			g := graph.Materialize(c)
			// The compact image is a scratch source here; release its
			// mapping instead of keeping it for the process lifetime.
			if err := c.Close(); err != nil {
				return nil, err
			}
			return g, nil
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(file, ".gz") {
			zr, err := gzip.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", file, err)
			}
			if data, err = io.ReadAll(zr); err != nil {
				return nil, fmt.Errorf("%s: %w", file, err)
			}
			if err := zr.Close(); err != nil {
				return nil, fmt.Errorf("%s: %w", file, err)
			}
			file = strings.TrimSuffix(file, ".gz")
		}
		if strings.HasSuffix(file, ".g6") {
			return graph.DecodeGraph6(strings.TrimSpace(string(data)))
		}
		return graph.ReadEdgeList(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("need -family or -graph (try -help-families)")
	}
}

// protocolFor and initFor resolve through the shared core registry, so
// the CLI and the beepd job API accept exactly the same names.
func protocolFor(alg string) (beep.Protocol, error) {
	return core.ProtocolByName(alg)
}

func initFor(s string) (core.InitMode, error) {
	if s == "" {
		return 0, fmt.Errorf("unknown init mode %q", s)
	}
	return core.InitByName(s)
}

func runBaseline(g *graph.Graph, alg string, seed uint64, maxRounds int, init string, printMIS bool) error {
	if maxRounds <= 0 {
		maxRounds = 2000000
	}
	randomize := init == "random" || init == "adversarial" || init == "zero"
	var res *baseline.Result
	var err error
	switch alg {
	case "jeavons":
		res, err = baseline.RunBeeping(g, baseline.Jeavons{}, seed, maxRounds, randomize, false)
	case "afek":
		res, err = baseline.RunBeeping(g, baseline.NewAfekStyle(g.N()+1), seed, maxRounds, randomize, true)
	case "luby":
		res, err = baseline.RunLuby(g, seed, maxRounds)
	}
	if err != nil {
		return err
	}
	fmt.Printf("completed: rounds=%d |MIS|=%d valid=%v\n", res.Rounds, graph.CountTrue(res.MIS), res.Valid)
	if printMIS {
		printMask(res.MIS)
	}
	return nil
}

func recoverFromFaults(g *graph.Graph, proto beep.Protocol, seed uint64, opts []beep.Option, k, maxRounds int) error {
	net, err := beep.NewNetwork(g, proto, seed, opts...)
	if err != nil {
		return err
	}
	defer net.Close()
	net.RandomizeAll()
	if maxRounds <= 0 {
		maxRounds = 1000000
	}
	var probe core.State
	stop := func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}
	if _, ok := net.Run(maxRounds, stop); !ok {
		return fmt.Errorf("no stabilization before fault injection")
	}
	src := rng.New(seed ^ 0xfa17)
	perm := src.Perm(g.N())
	if k > g.N() {
		k = g.N()
	}
	if err := net.Corrupt(perm[:k]); err != nil {
		return err
	}
	before := net.Round()
	if _, ok := net.Run(maxRounds, stop); !ok {
		return fmt.Errorf("no recovery after corrupting %d states", k)
	}
	st, err := core.Snapshot(net)
	if err != nil {
		return err
	}
	if err := st.VerifyMIS(); err != nil {
		return err
	}
	fmt.Printf("fault recovery: corrupted=%d recovery-rounds=%d (verified)\n", k, net.Round()-before)
	return nil
}

// parseAdversarySpec validates the -adversaries / -adversary-policy
// pair against the loaded graph. An empty list means no adversaries.
func parseAdversarySpec(list, policy string, n int) ([]int, beep.AdversaryPolicy, error) {
	if list == "" {
		return nil, 0, nil
	}
	pol, err := beep.ParseAdversaryPolicy(policy)
	if err != nil {
		return nil, 0, err
	}
	verts, err := parseVertexList(list, n)
	if err != nil {
		return nil, 0, err
	}
	return verts, pol, nil
}

// parseVertexList parses a comma-separated list of vertex ids and
// range-checks each against [0, n).
func parseVertexList(s string, n int) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("adversary list: %q is not a vertex id", tok)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("adversary vertex %d out of range [0,%d)", v, n)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("adversary list %q names no vertices", s)
	}
	return out, nil
}

// parseChurnSpec builds the churn schedule named by a
// "kind:arg:arg" spec against the loaded graph.
func parseChurnSpec(spec string, g *graph.Graph, src *rng.Source) ([]graph.ChurnEvent, error) {
	parts := strings.Split(spec, ":")
	ints := func(want int) ([]int, error) {
		if len(parts)-1 != want {
			return nil, fmt.Errorf("churn spec %q: %s takes %d integer argument(s), got %d", spec, parts[0], want, len(parts)-1)
		}
		out := make([]int, want)
		for i, p := range parts[1:] {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("churn spec %q: %q is not an integer", spec, p)
			}
			out[i] = v
		}
		return out, nil
	}
	switch parts[0] {
	case "flap":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return graph.FlapSchedule(g, a[0], a[1], src)
	case "growth":
		a, err := ints(3)
		if err != nil {
			return nil, err
		}
		return graph.GrowthSchedule(g, a[0], a[1], a[2], src)
	case "crash":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return graph.CrashSchedule(g, a[0], a[1], src)
	case "partition":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return graph.PartitionHealSchedule(g, a[0], src)
	default:
		return nil, fmt.Errorf("churn spec %q: unknown kind %q (want flap | growth | crash | partition)", spec, parts[0])
	}
}

// runChurn stabilizes the network, replays the scheduled storm through
// live rewiring, and reports per-event recovery, the superstabilization
// adjustment measure, and overall availability.
func runChurn(g *graph.Graph, proto beep.Protocol, seed uint64, spec string, maxRounds int, opts []beep.Option) error {
	sched, err := parseChurnSpec(spec, g, rng.New(seed^0xc4a91))
	if err != nil {
		return err
	}
	res, err := stab.MeasureChurn(stab.ChurnConfig{
		Graph:          g,
		Protocol:       proto,
		Seed:           seed,
		Schedule:       sched,
		RecoveryBudget: maxRounds,
		Dwell:          20,
		Options:        opts,
	})
	if err != nil {
		return err
	}
	fmt.Printf("churn storm %q: warmup=%d rounds, %d events\n", spec, res.InitialRounds, len(res.Events))
	for _, ev := range res.Events {
		status := fmt.Sprintf("recovered in %d rounds", ev.RecoveryRounds)
		if !ev.Recovered {
			status = fmt.Sprintf("NOT recovered within %d rounds", ev.RecoveryRounds)
		}
		fmt.Printf("  %-14s survivors=%-4d joiners=%-3d %-26s adjust=%d\n",
			ev.Label, ev.Survivors, ev.Joiners, status, ev.Adjustment)
	}
	fmt.Printf("churn summary: recovered=%d/%d availability=%.3f final-n=%d\n",
		res.Recovered, len(res.Events), res.Availability, res.FinalN)
	return nil
}

// runAdversarial runs the protocol with non-cooperating vertices and
// reports the behavior of the correct induced subgraph: a verified
// masked MIS when it stabilizes, or the stable fraction of correct
// vertices at the horizon when it cannot (the expected outcome around
// jammers, which deny their neighbors every silent round).
func runAdversarial(g *graph.Graph, proto beep.Protocol, seed uint64, opts []beep.Option, policy beep.AdversaryPolicy, verts []int, maxRounds int, init core.InitMode, printMIS bool) error {
	net, err := beep.NewNetwork(g, proto, seed, append(opts, beep.WithAdversaries(policy, verts))...)
	if err != nil {
		return err
	}
	defer net.Close()
	if err := applyInitCLI(net, init); err != nil {
		return err
	}
	mask := make([]bool, net.N())
	net.FillAdversaryMask(mask)
	var probe core.State
	probe.SetExcluded(mask)

	budget := maxRounds
	if budget <= 0 {
		budget = 400 * (log2ceil(g.N()) + 2)
	}
	for r := 0; r < budget; r++ {
		net.Step()
		if err := probe.Refresh(net); err != nil {
			return err
		}
		if probe.Stabilized() {
			if err := probe.VerifyMIS(); err != nil {
				return err
			}
			mis := probe.MISMask()
			fmt.Printf("stabilized (correct subgraph): rounds=%d |MIS|=%d adversaries=%d policy=%s (verified)\n",
				net.Round(), graph.CountTrue(mis), net.AdversaryCount(), policy)
			if printMIS {
				printMask(mis)
			}
			return nil
		}
	}
	correct := net.N() - net.AdversaryCount()
	frac := 0.0
	if correct > 0 {
		frac = float64(probe.StableCount()-net.AdversaryCount()) / float64(correct)
	}
	fmt.Printf("no stabilization within %d rounds (expected around jammers): stable correct fraction=%.3f adversaries=%d policy=%s\n",
		budget, frac, net.AdversaryCount(), policy)
	return nil
}

// log2ceil returns ⌈log2 n⌉ for n ≥ 1.
func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

func printMask(mask []bool) {
	fmt.Print("MIS:")
	for v, in := range mask {
		if in {
			fmt.Printf(" %d", v)
		}
	}
	fmt.Println()
}
