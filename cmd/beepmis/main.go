// Command beepmis runs one of the paper's self-stabilizing MIS
// algorithms on a graph and reports the stabilization round count and
// the computed set.
//
// Usage:
//
//	beepmis -family cycle:64 -alg alg1-known-delta -init random
//	beepmis -graph topology.edges -alg alg2-two-channel -seed 7
//	beepmis -family gnp:256:0.05 -faults 20        # inject and recover
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/famspec"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/trace"
)

// applyInitCLI mirrors core's initial-configuration handling for the
// directly built network used by the -csv path.
func applyInitCLI(net *beep.Network, mode core.InitMode) error {
	switch mode {
	case core.InitRandom:
		net.RandomizeAll()
	case core.InitAdversarial:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(core.Leveled)
			if !ok {
				return fmt.Errorf("machine %T has no levels", net.Machine(v))
			}
			m.SetLevel(-m.Cap())
		}
	case core.InitZero:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(core.Leveled)
			if !ok {
				return fmt.Errorf("machine %T has no levels", net.Machine(v))
			}
			m.SetLevel(0)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "beepmis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("beepmis", flag.ContinueOnError)
	family := fs.String("family", "", "graph family spec (see -help-families)")
	graphFile := fs.String("graph", "", "edge-list file (alternative to -family)")
	alg := fs.String("alg", "alg1-known-delta", "algorithm: alg1-known-delta | alg1-own-degree | alg2-two-channel | alg1-adaptive | jeavons | afek | luby")
	init := fs.String("init", "random", "initial configuration: fresh | random | adversarial | zero")
	seed := fs.Uint64("seed", 1, "random seed")
	maxRounds := fs.Int("max-rounds", 0, "round budget (0 = generous default)")
	faults := fs.Int("faults", 0, "after stabilizing, corrupt this many vertex states and re-stabilize")
	noise := fs.Float64("noise", 0, "listening-noise probability ε (applied as both loss and false-positive rate)")
	csvPath := fs.String("csv", "", "write per-round aggregate statistics (CSV) to this file")
	printMIS := fs.Bool("print-mis", false, "print the MIS vertex list")
	helpFams := fs.Bool("help-families", false, "list graph family specs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *helpFams {
		fmt.Println(famspec.Help)
		return nil
	}

	g, err := loadGraph(*family, *graphFile, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s  n=%d m=%d Δ=%d\n", g.Name(), g.N(), g.M(), g.MaxDegree())

	switch *alg {
	case "jeavons", "afek", "luby":
		return runBaseline(g, *alg, *seed, *maxRounds, *init, *printMIS)
	}

	proto, err := protocolFor(*alg)
	if err != nil {
		return err
	}
	initMode, err := initFor(*init)
	if err != nil {
		return err
	}
	runCfg := core.RunConfig{
		Graph:     g,
		Protocol:  proto,
		Seed:      *seed,
		Init:      initMode,
		MaxRounds: *maxRounds,
		Noise:     beep.Noise{PLoss: *noise, PFalse: *noise},
	}
	var rec *trace.Recorder
	if *csvPath != "" {
		// The recorder needs the network; route through an observer set
		// after construction via a small indirection.
		obs := func(round int, sent, heard []beep.Signal) {
			if rec != nil {
				rec.Observer()(round, sent, heard)
			}
		}
		net, err := beep.NewNetwork(g, proto, *seed, beep.WithObserver(obs), beep.WithNoise(runCfg.Noise))
		if err != nil {
			return err
		}
		defer net.Close()
		rec = trace.NewRecorder(net)
		if err := applyInitCLI(net, initMode); err != nil {
			return err
		}
		var probe core.State
		stop := func() bool {
			return probe.Refresh(net) == nil && probe.Stabilized()
		}
		budget := *maxRounds
		if budget <= 0 {
			budget = 1000000
		}
		rounds, ok := net.Run(budget, stop)
		if !ok {
			return fmt.Errorf("did not stabilize within %d rounds", budget)
		}
		st, err := core.Snapshot(net)
		if err != nil {
			return err
		}
		if err := st.VerifyMIS(); err != nil {
			return err
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		mis := st.MISMask()
		fmt.Printf("stabilized: rounds=%d |MIS|=%d (verified); trace written to %s\n", rounds, graph.CountTrue(mis), *csvPath)
		if *printMIS {
			printMask(mis)
		}
		return nil
	}
	res, err := core.Run(runCfg)
	if err != nil {
		return err
	}
	fmt.Printf("stabilized: rounds=%d |MIS|=%d (verified)\n", res.Rounds, res.MISSize)
	if *printMIS {
		printMask(res.MIS)
	}
	if *faults > 0 {
		return recoverFromFaults(g, proto, *seed, *faults, *maxRounds)
	}
	return nil
}

func loadGraph(family, file string, seed uint64) (*graph.Graph, error) {
	switch {
	case family != "" && file != "":
		return nil, fmt.Errorf("use either -family or -graph, not both")
	case family != "":
		return famspec.Parse(family, rng.New(seed^0x9e37))
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(file, ".g6") {
			return graph.DecodeGraph6(string(data))
		}
		return graph.ReadEdgeList(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("need -family or -graph (try -help-families)")
	}
}

func protocolFor(alg string) (beep.Protocol, error) {
	switch alg {
	case "alg1-known-delta":
		return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)), nil
	case "alg1-own-degree":
		return core.NewAlg1(core.OwnDegree(core.DefaultC1OwnDegree)), nil
	case "alg2-two-channel":
		return core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop)), nil
	case "alg1-adaptive":
		return core.NewAdaptiveAlg1(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

func initFor(s string) (core.InitMode, error) {
	switch s {
	case "fresh":
		return core.InitFresh, nil
	case "random":
		return core.InitRandom, nil
	case "adversarial":
		return core.InitAdversarial, nil
	case "zero":
		return core.InitZero, nil
	default:
		return 0, fmt.Errorf("unknown init mode %q", s)
	}
}

func runBaseline(g *graph.Graph, alg string, seed uint64, maxRounds int, init string, printMIS bool) error {
	if maxRounds <= 0 {
		maxRounds = 2000000
	}
	randomize := init == "random" || init == "adversarial" || init == "zero"
	var res *baseline.Result
	var err error
	switch alg {
	case "jeavons":
		res, err = baseline.RunBeeping(g, baseline.Jeavons{}, seed, maxRounds, randomize, false)
	case "afek":
		res, err = baseline.RunBeeping(g, baseline.NewAfekStyle(g.N()+1), seed, maxRounds, randomize, true)
	case "luby":
		res, err = baseline.RunLuby(g, seed, maxRounds)
	}
	if err != nil {
		return err
	}
	fmt.Printf("completed: rounds=%d |MIS|=%d valid=%v\n", res.Rounds, graph.CountTrue(res.MIS), res.Valid)
	if printMIS {
		printMask(res.MIS)
	}
	return nil
}

func recoverFromFaults(g *graph.Graph, proto beep.Protocol, seed uint64, k, maxRounds int) error {
	net, err := beep.NewNetwork(g, proto, seed)
	if err != nil {
		return err
	}
	defer net.Close()
	net.RandomizeAll()
	if maxRounds <= 0 {
		maxRounds = 1000000
	}
	var probe core.State
	stop := func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}
	if _, ok := net.Run(maxRounds, stop); !ok {
		return fmt.Errorf("no stabilization before fault injection")
	}
	src := rng.New(seed ^ 0xfa17)
	perm := src.Perm(g.N())
	if k > g.N() {
		k = g.N()
	}
	if err := net.Corrupt(perm[:k]); err != nil {
		return err
	}
	before := net.Round()
	if _, ok := net.Run(maxRounds, stop); !ok {
		return fmt.Errorf("no recovery after corrupting %d states", k)
	}
	st, err := core.Snapshot(net)
	if err != nil {
		return err
	}
	if err := st.VerifyMIS(); err != nil {
		return err
	}
	fmt.Printf("fault recovery: corrupted=%d recovery-rounds=%d (verified)\n", k, net.Round()-before)
	return nil
}

func printMask(mask []bool) {
	fmt.Print("MIS:")
	for v, in := range mask {
		if in {
			fmt.Printf(" %d", v)
		}
	}
	fmt.Println()
}
