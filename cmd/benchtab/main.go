// Command benchtab regenerates the experiment tables and series of the
// reproduction (see DESIGN.md and EXPERIMENTS.md): one experiment per
// table/figure-level claim of the paper.
//
// Usage:
//
//	benchtab -exp all             # quick laptop-scale sweep of F1,E1..E8
//	benchtab -exp E1 -full        # paper-scale sweep of one experiment
//	benchtab -exp E6 -trials 10 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id ("+strings.Join(exp.IDs(), ", ")+") or 'all'")
	full := fs.Bool("full", false, "run the paper-scale sweeps (larger n, more trials)")
	seed := fs.Uint64("seed", 1, "root random seed")
	trials := fs.Int("trials", 0, "override per-cell trial count (0 = default)")
	jsonOut := fs.Bool("json", false, "emit one JSON document per table/series instead of aligned text")
	workers := fs.Int("workers", 0, "trial-level worker bound for replication pools, e.g. E18 (0 = GOMAXPROCS)")
	resume := fs.String("resume", "", "manifest file making the sweeps resumable: finished cells are logged (fsynced) as they complete and reused on the next run")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (written atomically)")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file (written atomically)")
	list := fs.Bool("list", false, "list the experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	finishProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finishProf(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	if *list {
		for _, id := range exp.IDs() {
			e, err := exp.Lookup(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Description)
		}
		return nil
	}

	if *workers < 0 {
		return fmt.Errorf("-workers %d: worker count must be non-negative (0 = GOMAXPROCS)", *workers)
	}
	cfg := exp.Config{
		Full:    *full,
		Seed:    *seed,
		Trials:  *trials,
		Out:     os.Stdout,
		JSON:    *jsonOut,
		Workers: *workers,
	}
	if *resume != "" {
		m, err := exp.OpenManifest(*resume)
		if err != nil {
			return err
		}
		defer m.Close()
		cfg.Manifest = m
	}
	if *expID == "all" {
		return exp.RunAll(cfg)
	}
	e, err := exp.Lookup(*expID)
	if err != nil {
		return err
	}
	if !cfg.JSON {
		fmt.Printf("=== %s — %s ===\n%s\n\n", e.ID, e.Title, e.Description)
	}
	return e.Run(cfg)
}
