package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "F1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrials(t *testing.T) {
	if err := run([]string{"-exp", "E8", "-trials", "1", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWorkersFlag covers -workers on the replication-pool experiment
// (E18 routes it into exp.RunReplicated) and the validation of negative
// counts.
func TestRunWorkersFlag(t *testing.T) {
	if err := run([]string{"-exp", "E18", "-trials", "2", "-workers", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "F1", "-workers", "-3"}); err == nil {
		t.Fatal("negative -workers accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithProfiles checks the -cpuprofile/-memprofile flags produce
// non-empty pprof files around a real (tiny) experiment run.
func TestRunWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-exp", "F1", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
