package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "F1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrials(t *testing.T) {
	if err := run([]string{"-exp", "E8", "-trials", "1", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}
