package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/stab"
)

// The chaos tests need a real process to SIGKILL. Instead of building
// the binary, the test binary re-executes itself as the daemon when
// this env var is set — TestMain diverts into daemon mode before any
// test runs.
const daemonEnv = "BEEPD_TEST_DAEMON"

func TestMain(m *testing.M) {
	if os.Getenv(daemonEnv) == "1" {
		runTestDaemon()
		return
	}
	os.Exit(m.Run())
}

// runTestDaemon is the child-process entry: the same lifecycle as the
// real binary (serve → SIGTERM → drain), configured from env vars.
func runTestDaemon() {
	d, err := service.New(service.Config{
		DataDir:         os.Getenv("BEEPD_DATA"),
		Addr:            "127.0.0.1:0",
		Workers:         2,
		CheckpointEvery: 16,
		DrainTimeout:    30 * time.Second,
		Logf:            log.New(os.Stderr, "", 0).Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		os.Exit(1)
	}
	if err := d.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	if err := d.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemon launches the daemon over dir and waits until its address
// file appears (i.e. it is accepting connections).
func startDaemon(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	// A stale address file from a previous life must not race the poll.
	addrFile := filepath.Join(dir, "beepd.addr")
	os.Remove(addrFile)

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), daemonEnv+"=1", "BEEPD_DATA="+dir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(data)) > 0 {
			addr := strings.TrimSpace(string(data))
			// Confirm liveness, not just the file write.
			resp, err := http.Get("http://" + addr + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				return cmd, "http://" + addr
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("daemon never came up; stderr:\n%s", stderr.String())
	return nil, ""
}

func stopDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(40 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not drain within 40s of SIGTERM")
	}
}

func postJob(t *testing.T, base string, spec map[string]any) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var j struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return j.ID
}

func jobState(t *testing.T, base, id string) (state string, errMsg string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	defer resp.Body.Close()
	var j struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return j.State, j.Error
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		state, _ := jobState(t, base, id)
		switch state {
		case "done", "failed", "canceled":
			return state
		}
		time.Sleep(10 * time.Millisecond)
	}
	state, errMsg := jobState(t, base, id)
	t.Fatalf("job %s stuck in %s (error %q)", id, state, errMsg)
	return ""
}

type traceEvent struct {
	ID    int    `json:"id"`
	Type  string `json:"type"`
	Round int    `json:"round"`
	Hash  string `json:"hash"`
	State string `json:"state"`
}

// jobTrace fetches the full event stream: the (round → hash) map plus
// the terminal state reported by the done event.
func jobTrace(t *testing.T, base, id string) (map[int]string, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("get events: %v", err)
	}
	defer resp.Body.Close()
	hashes := make(map[int]string)
	doneState := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e traceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		switch e.Type {
		case "round":
			hashes[e.Round] = e.Hash
		case "done":
			doneState = e.State
		}
	}
	return hashes, doneState
}

// chaosSpecs are the two jobs each chaos iteration runs: long enough
// (~1s paced) that a kill 10–700ms in lands mid-run, checkpointed
// frequently enough that resume exercises real checkpoints.
func chaosSpecs() []map[string]any {
	return []map[string]any{
		{"family": "gnp:48:0.1", "seed": 41, "rounds": 900, "checkpointEvery": 16, "roundDelayMs": 1},
		{"family": "grid:8:8", "seed": 42, "rounds": 900, "checkpointEvery": 16, "roundDelayMs": 1, "alg": "alg2-two-channel"},
	}
}

// referenceTraces runs the workload once, uninterrupted, and returns
// the per-job (round → hash) traces every chaos iteration must
// reproduce bit-exactly.
func referenceTraces(t *testing.T) []map[int]string {
	t.Helper()
	dir := t.TempDir()
	cmd, base := startDaemon(t, dir)
	defer stopDaemon(t, cmd)
	var traces []map[int]string
	for _, spec := range chaosSpecs() {
		id := postJob(t, base, spec)
		if state := waitTerminal(t, base, id, 60*time.Second); state != "done" {
			t.Fatalf("reference job %s ended %s", id, state)
		}
		hashes, doneState := jobTrace(t, base, id)
		if doneState != "done" || len(hashes) != 900 {
			t.Fatalf("reference job %s: done=%q rounds=%d", id, doneState, len(hashes))
		}
		traces = append(traces, hashes)
	}
	return traces
}

// TestChaosKillRestartResume is the headline robustness proof: the
// daemon is SIGKILLed at ≥20 randomized points mid-workload; after each
// kill a fresh daemon over the same directory must recover, resume, and
// finish every job with a per-round trace hash sequence bit-identical
// to the uninterrupted reference.
func TestChaosKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is long; skipped in -short")
	}
	ref := referenceTraces(t)

	iterations := 20 // with 2 jobs in flight per kill: 20 kill points, 40 interrupted executions
	rnd := rand.New(rand.NewSource(0xbeeb))
	for iter := 0; iter < iterations; iter++ {
		dir := t.TempDir()
		cmd, base := startDaemon(t, dir)

		ids := make([]string, 0, 2)
		for _, spec := range chaosSpecs() {
			ids = append(ids, postJob(t, base, spec))
		}
		// Both jobs running (2 workers), then the axe falls at a
		// randomized point: early enough to precede the first
		// checkpoint sometimes, late enough to be mid-stride others.
		for _, id := range ids {
			deadline := time.Now().Add(10 * time.Second)
			for {
				state, _ := jobState(t, base, id)
				if state == "running" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("iter %d: job %s never started", iter, id)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		delay := time.Duration(10+rnd.Intn(690)) * time.Millisecond
		time.Sleep(delay)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("iter %d: SIGKILL: %v", iter, err)
		}
		cmd.Wait()

		// The store must witness the crash: job records still say
		// "running" — no orderly transition happened.
		for _, id := range ids {
			data, err := os.ReadFile(filepath.Join(dir, "jobs", id, "job.json"))
			if err != nil {
				t.Fatalf("iter %d: read %s job.json after kill: %v", iter, id, err)
			}
			var j struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal(data, &j); err != nil {
				t.Fatalf("iter %d: job.json torn despite atomic writes: %v", iter, err)
			}
			if j.State != "running" {
				t.Fatalf("iter %d (kill after %v): job %s on disk is %q, want running", iter, delay, id, j.State)
			}
		}

		// Second life: recover, resume, finish, and match the reference
		// trace hash-for-hash.
		cmd2, base2 := startDaemon(t, dir)
		for k, id := range ids {
			if state := waitTerminal(t, base2, id, 90*time.Second); state != "done" {
				_, errMsg := jobState(t, base2, id)
				t.Fatalf("iter %d (kill after %v): job %s resumed to %s (error %q)", iter, delay, id, state, errMsg)
			}
			hashes, doneState := jobTrace(t, base2, id)
			if doneState != "done" {
				t.Fatalf("iter %d: job %s stream lacks done event", iter, id)
			}
			if len(hashes) != len(ref[k]) {
				t.Fatalf("iter %d (kill after %v): job %s trace has %d rounds, reference %d",
					iter, delay, id, len(hashes), len(ref[k]))
			}
			for r, h := range ref[k] {
				if hashes[r] != h {
					t.Fatalf("iter %d (kill after %v): job %s round %d hash %s, reference %s — resume is not bit-exact",
						iter, delay, id, r, hashes[r], h)
				}
			}
		}
		stopDaemon(t, cmd2)
	}
}

// TestDaemonSIGTERMDrain verifies graceful shutdown end to end at the
// process level: SIGTERM with jobs in flight exits 0 after
// checkpointing them as interrupted, and the next start resumes to the
// reference trace.
func TestDaemonSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test is long; skipped in -short")
	}
	ref := referenceTraces(t)

	dir := t.TempDir()
	cmd, base := startDaemon(t, dir)
	ids := make([]string, 0, 2)
	for _, spec := range chaosSpecs() {
		ids = append(ids, postJob(t, base, spec))
	}
	for _, id := range ids {
		deadline := time.Now().Add(10 * time.Second)
		for {
			state, _ := jobState(t, base, id)
			if state == "running" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never started", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	time.Sleep(150 * time.Millisecond)
	stopDaemon(t, cmd) // SIGTERM; fails the test unless exit status 0

	// Drained state on disk: interrupted, with a checkpoint that passes
	// the integrity check.
	for _, id := range ids {
		data, err := os.ReadFile(filepath.Join(dir, "jobs", id, "job.json"))
		if err != nil {
			t.Fatalf("read job.json: %v", err)
		}
		var j struct {
			State  string `json:"state"`
			Rounds int    `json:"rounds"`
		}
		if err := json.Unmarshal(data, &j); err != nil {
			t.Fatalf("decode job.json: %v", err)
		}
		if j.State != "interrupted" {
			t.Fatalf("drained job %s is %q, want interrupted", id, j.State)
		}
		cp, err := stab.ReadCheckpointFile(filepath.Join(dir, "jobs", id, "checkpoint.ck"))
		if err != nil {
			t.Fatalf("drained job %s checkpoint invalid: %v", id, err)
		}
		if cp.Round == 0 || cp.Round >= 900 {
			t.Fatalf("drained job %s checkpoint at round %d, want mid-run", id, cp.Round)
		}
	}

	cmd2, base2 := startDaemon(t, dir)
	defer stopDaemon(t, cmd2)
	for k, id := range ids {
		if state := waitTerminal(t, base2, id, 90*time.Second); state != "done" {
			t.Fatalf("job %s resumed to %s", id, state)
		}
		hashes, doneState := jobTrace(t, base2, id)
		if doneState != "done" || len(hashes) != len(ref[k]) {
			t.Fatalf("job %s: done=%q rounds=%d (reference %d)", id, doneState, len(hashes), len(ref[k]))
		}
		for r, h := range ref[k] {
			if hashes[r] != h {
				t.Fatalf("job %s round %d hash %s, reference %s", id, r, hashes[r], h)
			}
		}
	}
}
