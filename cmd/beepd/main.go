// Command beepd is the simulation job daemon: it serves the HTTP/JSON
// job API (submit, list, inspect, cancel, stream) backed by a bounded
// worker queue, checkpoints running jobs into its data directory, and
// recovers interrupted work on startup — a SIGKILL at any instant loses
// at most the rounds since the last checkpoint, and the resumed
// execution is bit-exact.
//
// Usage:
//
//	beepd -data /var/lib/beepd [-addr 127.0.0.1:8377] [-workers 2]
//
// SIGTERM or SIGINT drains gracefully: submissions are rejected with
// 503, running jobs checkpoint and park as "interrupted", and the next
// start resumes them. The actual listen address is published to
// <data>/beepd.addr for tooling.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beepd:", err)
		os.Exit(1)
	}
}

func run() error {
	var cfg service.Config
	flag.StringVar(&cfg.DataDir, "data", "", "state directory (required)")
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:0", "listen address (port 0 picks one; see <data>/beepd.addr)")
	flag.IntVar(&cfg.Workers, "workers", 2, "concurrent job runners")
	flag.IntVar(&cfg.QueueDepth, "queue", 16, "max jobs admitted but not yet running")
	flag.IntVar(&cfg.TenantQueueDepth, "tenant-queue", 0, "per-tenant queue bound (0 = same as -queue)")
	flag.IntVar(&cfg.CheckpointEvery, "checkpoint-every", 64, "default auto-checkpoint cadence in rounds")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", 20*time.Second, "graceful shutdown bound")
	flag.Parse()

	if cfg.DataDir == "" {
		return fmt.Errorf("-data is required")
	}

	d, err := service.New(cfg)
	if err != nil {
		return err
	}
	if err := d.Start(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Fprintf(os.Stderr, "beepd: %v: draining\n", s)
	return d.Shutdown(context.Background())
}
