package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEdgesToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.edges")
	if err := run([]string{"-family", "cycle:10", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "n 10") || strings.Count(s, "\n") < 10 {
		t.Fatalf("edge list malformed:\n%s", s)
	}
}

func TestRunDOT(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dot")
	if err := run([]string{"-family", "path:4", "-format", "dot", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph") || !strings.Contains(string(data), "--") {
		t.Fatalf("dot malformed:\n%s", string(data))
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                      // missing family
		{"-family", "nosuch:4"},                 // unknown family
		{"-family", "path:4", "-format", "bad"}, // unknown format
		{"-family", "path:4", "-o", "/nonexistent/dir/file"}, // unwritable
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestHelpFamilies(t *testing.T) {
	if err := run([]string{"-help-families"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGraph6Format(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.g6")
	if err := run([]string{"-family", "complete:3", "-format", "g6", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "Bw" {
		t.Fatalf("K3 graph6 = %q, want Bw", string(data))
	}
}
