package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEdgesToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.edges")
	if err := run([]string{"-family", "cycle:10", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "n 10") || strings.Count(s, "\n") < 10 {
		t.Fatalf("edge list malformed:\n%s", s)
	}
}

func TestRunDOT(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dot")
	if err := run([]string{"-family", "path:4", "-format", "dot", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph") || !strings.Contains(string(data), "--") {
		t.Fatalf("dot malformed:\n%s", string(data))
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                      // missing family and input
		{"-family", "nosuch:4"},                 // unknown family
		{"-family", "path:4", "-format", "bad"}, // unknown format
		{"-family", "path:4", "-o", "/nonexistent/dir/file"}, // unwritable
		{"-family", "path:4", "-in", "x.edges"},              // both sources
		{"-in", "/nonexistent/input.edges"},                  // unreadable input
		{"-in", "/nonexistent/input.bgr"},                    // unreadable binary input
		{"-in", "/nonexistent/input.edges.gz"},               // unreadable gzip input
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunBGRRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bgr := filepath.Join(dir, "g.bgr")
	if err := run([]string{"-family", "torus:6:7", "-format", "bgr", "-o", bgr}); err != nil {
		t.Fatal(err)
	}
	// Convert the binary image back to an edge list and compare with a
	// directly generated one: the .bgr round trip must be lossless.
	edges := filepath.Join(dir, "g.edges")
	if err := run([]string{"-in", bgr, "-o", edges}); err != nil {
		t.Fatal(err)
	}
	direct := filepath.Join(dir, "direct.edges")
	if err := run([]string{"-family", "torus:6:7", "-o", direct}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(edges)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("bgr round trip changed the edge list:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunGzipInput(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "g.edges")
	if err := run([]string{"-family", "grid:4:5", "-o", plain}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "g.edges.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "roundtrip.edges")
	if err := run([]string{"-in", gzPath, "-o", out}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("gzip input round trip changed the edge list")
	}
	// A corrupt gzip stream must be a clean error.
	bad := filepath.Join(dir, "bad.edges.gz")
	if err := os.WriteFile(bad, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}); err == nil {
		t.Fatal("corrupt gzip input accepted")
	}
}

func TestRunTamperedBGRInputRejected(t *testing.T) {
	dir := t.TempDir()
	bgr := filepath.Join(dir, "g.bgr")
	if err := run([]string{"-family", "cycle:9", "-format", "bgr", "-o", bgr}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bgr)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(bgr, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bgr}); err == nil {
		t.Fatal("tampered .bgr input accepted")
	}
}

func TestHelpFamilies(t *testing.T) {
	if err := run([]string{"-help-families"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGraph6Format(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.g6")
	if err := run([]string{"-family", "complete:3", "-format", "g6", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "Bw" {
		t.Fatalf("K3 graph6 = %q, want Bw", string(data))
	}
}
