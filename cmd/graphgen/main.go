// Command graphgen generates graphs from family specifications — or
// converts existing graph files — and writes them in the edge-list text
// format consumed by beepmis and tracebeep, in Graphviz DOT, in graph6,
// or in the mmap-loadable binary .bgr format of the scale experiments.
//
// Usage:
//
//	graphgen -family gnp:200:0.05 -seed 3 > g.edges
//	graphgen -family grid:8:8 -format dot -o grid.dot
//	graphgen -family torus:1000:1000 -format bgr -o torus.bgr
//	graphgen -in huge.edges.gz -format bgr -o huge.bgr
package main

import (
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/famspec"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "", "graph family spec")
	inPath := fs.String("in", "", "input graph file to convert (.edges, .edges.gz, .g6, .bgr) — alternative to -family")
	seed := fs.Uint64("seed", 1, "random seed for random families")
	format := fs.String("format", "edges", "output format: edges | dot | g6 | bgr")
	outPath := fs.String("o", "", "output file (default stdout)")
	helpFams := fs.Bool("help-families", false, "list graph family specs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *helpFams {
		fmt.Println(famspec.Help)
		return nil
	}
	var g graph.Topology
	switch {
	case *family != "" && *inPath != "":
		return fmt.Errorf("use either -family or -in, not both")
	case *family != "":
		parsed, err := famspec.Parse(*family, rng.New(*seed))
		if err != nil {
			return err
		}
		g = parsed
	case *inPath != "":
		loaded, err := readInput(*inPath)
		if err != nil {
			return err
		}
		g = loaded
		// .bgr inputs are mmap-backed; release the mapping once the
		// conversion has been written.
		if c, ok := loaded.(*graph.Compact); ok {
			defer c.Close()
		}
	default:
		return fmt.Errorf("need -family or -in (try -help-families)")
	}

	write := func(w io.Writer) error {
		switch *format {
		case "edges":
			return graph.WriteEdgeList(w, g)
		case "dot":
			return graph.WriteDOT(w, graph.Materialize(g), nil)
		case "g6":
			enc, err := graph.EncodeGraph6(graph.Materialize(g))
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, enc)
			return err
		case "bgr":
			c, ok := g.(*graph.Compact)
			if !ok {
				c = graph.Compress(g)
			}
			return graph.EncodeBGR(w, c, graph.FingerprintOf(g))
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *outPath != "" {
		// Atomic replace: a killed graphgen never leaves a torn file for
		// a downstream beepmis -graph to trip over.
		return atomicio.WriteFile(*outPath, write)
	}
	return write(os.Stdout)
}

// readInput loads a graph file by extension: .bgr images are decoded
// (and verified) directly, everything else is read as graph6 or
// edge-list text, transparently gunzipped when the name ends in .gz.
func readInput(path string) (graph.Topology, error) {
	if strings.HasSuffix(path, ".bgr") {
		return graph.ReadBGR(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := path
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		base = strings.TrimSuffix(path, ".gz")
	}
	if strings.HasSuffix(base, ".g6") {
		return graph.DecodeGraph6(strings.TrimSpace(string(data)))
	}
	return graph.ReadEdgeList(bytes.NewReader(data))
}
