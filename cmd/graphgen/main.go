// Command graphgen generates graphs from family specifications and
// writes them in the edge-list text format consumed by beepmis and
// tracebeep, or in Graphviz DOT.
//
// Usage:
//
//	graphgen -family gnp:200:0.05 -seed 3 > g.edges
//	graphgen -family grid:8:8 -format dot -o grid.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/famspec"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "", "graph family spec")
	seed := fs.Uint64("seed", 1, "random seed for random families")
	format := fs.String("format", "edges", "output format: edges | dot | g6")
	outPath := fs.String("o", "", "output file (default stdout)")
	helpFams := fs.Bool("help-families", false, "list graph family specs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *helpFams {
		fmt.Println(famspec.Help)
		return nil
	}
	if *family == "" {
		return fmt.Errorf("need -family (try -help-families)")
	}
	g, err := famspec.Parse(*family, rng.New(*seed))
	if err != nil {
		return err
	}

	write := func(w io.Writer) error {
		switch *format {
		case "edges":
			return graph.WriteEdgeList(w, g)
		case "dot":
			return graph.WriteDOT(w, g, nil)
		case "g6":
			enc, err := graph.EncodeGraph6(g)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, enc)
			return err
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *outPath != "" {
		// Atomic replace: a killed graphgen never leaves a torn file for
		// a downstream beepmis -graph to trip over.
		return atomicio.WriteFile(*outPath, write)
	}
	return write(os.Stdout)
}
