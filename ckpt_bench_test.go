package repro

import (
	"io"
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Checkpoint-path benchmarks: the BENCH_ckpt.json provenance. Each
// sub-benchmark times one complete checkpoint capture — state walk
// plus serialization — of the same stabilized network, across the
// three codecs a durability consumer can pick (DESIGN §12):
//
//   - json-full:   the v2 JSON snapshot (Checkpoint + WriteCheckpoint),
//     the only format before this PR — O(n) text encode per tick.
//   - binary-full: the v3 binary snapshot (Checkpoint + EncodeSnapshot),
//     same O(n) walk, constant-factor cheaper encode.
//   - delta:       an incremental v3 delta (CheckpointDelta +
//     EncodeDelta) after a localized perturbation — cost proportional
//     to the dirty words, not n. The perturbation (corrupt 64 random
//     states, run back to quiescence) happens off-timer each
//     iteration, exactly the steady-state regime a perpetually-running
//     self-stabilizing network checkpoints in.
//
// All three capture bit-equivalent information (the chain replay
// equals the full snapshot; pinned by internal/ckpt and the chaos
// matrices); only wall-clock and bytes differ, which is what the
// recorded ratios isolate.

// countWriter counts bytes; the JSON bench writes into it so the
// encode cost is measured without any file-system noise.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)

// stableCkptNet builds a stabilized flat/sparse network with an armed
// dirty-word baseline (the first Checkpoint call arms tracking).
func stableCkptNet(b *testing.B, t graph.Topology, seed uint64) *beep.Network {
	b.Helper()
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(t, proto, seed, beep.WithEngine(beep.Flat), beep.WithSparse(beep.SparseAuto))
	if err != nil {
		b.Fatal(err)
	}
	net.RandomizeAll()
	var probe core.State
	if _, ok := net.Run(10_000_000, func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}); !ok {
		net.Close()
		b.Fatal("no stabilization")
	}
	if _, err := net.Checkpoint(); err != nil {
		net.Close()
		b.Fatal(err)
	}
	return net
}

func benchCheckpointWrite(b *testing.B, t graph.Topology, seed uint64) {
	b.Helper()
	b.Run("json-full", func(b *testing.B) {
		net := stableCkptNet(b, t, seed)
		defer net.Close()
		var bytes int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp, err := net.Checkpoint()
			if err != nil {
				b.Fatal(err)
			}
			var w countWriter
			if err := beep.WriteCheckpoint(&w, cp); err != nil {
				b.Fatal(err)
			}
			bytes = w.n
		}
		b.ReportMetric(float64(bytes), "bytes/op")
	})
	b.Run("binary-full", func(b *testing.B) {
		net := stableCkptNet(b, t, seed)
		defer net.Close()
		var bytes int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp, err := net.Checkpoint()
			if err != nil {
				b.Fatal(err)
			}
			enc, err := beep.EncodeSnapshot(cp)
			if err != nil {
				b.Fatal(err)
			}
			bytes = int64(len(enc))
		}
		b.ReportMetric(float64(bytes), "bytes/op")
	})
	b.Run("delta", func(b *testing.B) {
		net := stableCkptNet(b, t, seed)
		defer net.Close()
		var probe core.State
		stop := func() bool { return probe.Refresh(net) == nil && probe.Stabilized() }
		faults := rng.New(23)
		parent := uint64(1) // any chain position; only the cost is measured
		var bytes, dirtySum int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			perm := faults.Perm(t.N())
			if err := net.Corrupt(perm[:64]); err != nil {
				b.Fatal(err)
			}
			if _, ok := net.Run(1_000_000, stop); !ok {
				b.Fatal("no recovery")
			}
			dirtySum += int64(net.DirtyWords())
			b.StartTimer()
			d, err := net.CheckpointDelta(parent)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := beep.EncodeDelta(d)
			if err != nil {
				b.Fatal(err)
			}
			bytes = int64(len(enc))
		}
		b.ReportMetric(float64(bytes), "bytes/op")
		b.ReportMetric(float64(dirtySum)/float64(b.N), "dirty-words")
	})
}

// BenchmarkCheckpointWrite4k: the CI smoke size — fast enough for a
// per-push timing check of all three codecs.
func BenchmarkCheckpointWrite4k(b *testing.B) {
	benchCheckpointWrite(b, graph.GNPAvgDegree(4096, 8, rng.New(2)), 3)
}

// BenchmarkCheckpointWrite1M: the BENCH_ckpt.json headline — at n=10⁶
// the full-snapshot walk plus JSON encode is the cost that made
// frequent durability unaffordable, and the delta's dirty-word
// proportionality is the tentpole claim under measurement.
func BenchmarkCheckpointWrite1M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^6 checkpoint benchmark skipped in -short mode")
	}
	benchCheckpointWrite(b, graph.ImplicitTorus(1000, 1000), 3)
}
