package repro

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func pathEdges(n int) [][2]int {
	var es [][2]int
	for v := 0; v+1 < n; v++ {
		es = append(es, [2]int{v, v + 1})
	}
	return es
}

func cycleEdges(n int) [][2]int {
	es := pathEdges(n)
	return append(es, [2]int{n - 1, 0})
}

func completeEdges(n int) [][2]int {
	var es [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			es = append(es, [2]int{u, v})
		}
	}
	return es
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(3, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := NewGraph(3, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	g, err := NewGraph(4, [][2]int{{0, 1}, {1, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("shape %d/%d", g.N(), g.M())
	}
	if g.MaxDegree() != 1 || g.Degree(1) != 1 {
		t.Fatal("degree queries wrong")
	}
}

func TestSolveDefaults(t *testing.T) {
	g, err := NewGraph(10, cycleEdges(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(res.MIS); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatalf("rounds %d", res.Rounds)
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	g, err := NewGraph(12, completeEdges(12))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Alg1KnownDelta, Alg1OwnDegree, Alg2TwoChannel} {
		for _, st := range []InitialState{StateFresh, StateArbitrary, StateAdversarial} {
			res, err := Solve(g, WithAlgorithm(alg), WithInitialState(st), WithSeed(7))
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, st, err)
			}
			if err := g.VerifyMIS(res.MIS); err != nil {
				t.Fatalf("%v/%v: %v", alg, st, err)
			}
			if len(res.MIS) != 1 {
				t.Fatalf("%v/%v: complete graph MIS size %d", alg, st, len(res.MIS))
			}
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	g, _ := NewGraph(20, cycleEdges(20))
	a, err := Solve(g, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || len(a.MIS) != len(b.MIS) {
		t.Fatal("same seed diverged")
	}
	for i := range a.MIS {
		if a.MIS[i] != b.MIS[i] {
			t.Fatal("MIS differs")
		}
	}
}

func TestSolveParallelEngineMatchesSequential(t *testing.T) {
	g, _ := NewGraph(30, cycleEdges(30))
	seq, err := Solve(g, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(g, WithSeed(3), WithParallelEngine())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != par.Rounds || len(seq.MIS) != len(par.MIS) {
		t.Fatalf("engines diverged: %d/%d vs %d/%d", seq.Rounds, len(seq.MIS), par.Rounds, len(par.MIS))
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := NewGraph(3, pathEdges(3))
	if _, err := Solve(g, WithAlgorithm(Algorithm(77))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Solve(g, WithInitialState(InitialState(77))); err == nil {
		t.Fatal("unknown init accepted")
	}
	// Tiny budget on a contentious graph.
	k, _ := NewGraph(20, completeEdges(20))
	_, err := Solve(k, WithMaxRounds(1), WithInitialState(StateAdversarial))
	if !errors.Is(err, ErrNotStabilized) {
		t.Fatalf("err=%v want ErrNotStabilized", err)
	}
}

func TestSolveWithSlack(t *testing.T) {
	g, _ := NewGraph(16, cycleEdges(16))
	res, err := Solve(g, WithSlack(8), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(res.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMISRejects(t *testing.T) {
	g, _ := NewGraph(4, pathEdges(4))
	if err := g.VerifyMIS([]int{0, 1}); err == nil {
		t.Fatal("adjacent pair accepted")
	}
	if err := g.VerifyMIS([]int{0}); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	if err := g.VerifyMIS([]int{9}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if err := g.VerifyMIS([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if Alg1KnownDelta.String() != "alg1-known-delta" ||
		Alg1OwnDegree.String() != "alg1-own-degree" ||
		Alg2TwoChannel.String() != "alg2-two-channel" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() != "algorithm(9)" {
		t.Fatal("unknown algorithm name wrong")
	}
}

func TestInstanceLifecycle(t *testing.T) {
	g, _ := NewGraph(24, cycleEdges(24))
	inst, err := NewInstance(g, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	if inst.Rounds() != 0 {
		t.Fatal("fresh instance has rounds")
	}
	consumed, err := inst.RunUntilStabilized(100000)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != inst.Rounds() {
		t.Fatalf("consumed %d != rounds %d", consumed, inst.Rounds())
	}
	ok, err := inst.Stabilized()
	if err != nil || !ok {
		t.Fatalf("stabilized=%v err=%v", ok, err)
	}
	mis, err := inst.MIS()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(mis); err != nil {
		t.Fatal(err)
	}
	sc, err := inst.StableVertices()
	if err != nil || sc != g.N() {
		t.Fatalf("stable %d err=%v", sc, err)
	}
	if _, err := inst.Level(0); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Level(-1); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestInstanceFaultRecovery(t *testing.T) {
	g, _ := NewGraph(36, cycleEdges(36))
	inst, err := NewInstance(g, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.RunUntilStabilized(100000); err != nil {
		t.Fatal(err)
	}
	if err := inst.InjectFault(10); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.RunUntilStabilized(100000); err != nil {
		t.Fatalf("no recovery: %v", err)
	}
	mis, err := inst.MIS()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(mis); err != nil {
		t.Fatal(err)
	}
	// k <= 0 and k > n are clamped, not errors.
	if err := inst.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	if err := inst.InjectFault(1000); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceAdversarialInit(t *testing.T) {
	g, _ := NewGraph(8, completeEdges(8))
	inst, err := NewInstance(g, WithInitialState(StateAdversarial), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	// Every vertex claims membership: not legal on a clique.
	ok, err := inst.Stabilized()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("all-claiming clique reported stable")
	}
	if _, err := inst.RunUntilStabilized(100000); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceBudgetError(t *testing.T) {
	g, _ := NewGraph(16, completeEdges(16))
	inst, err := NewInstance(g, WithInitialState(StateAdversarial), WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.RunUntilStabilized(1); !errors.Is(err, ErrNotStabilized) {
		t.Fatalf("err=%v", err)
	}
}

func TestNewInstanceErrors(t *testing.T) {
	if _, err := NewInstance(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := NewGraph(3, pathEdges(3))
	if _, err := NewInstance(g, WithAlgorithm(Algorithm(50))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// Property: Solve on random graphs always yields a verified MIS for all
// three algorithm variants.
func TestSolveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, algRaw uint8) bool {
		n := int(nRaw%30) + 1
		// Random edges from the seed.
		var edges [][2]int
		s := seed
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s>>62 == 0 { // ~1/4 density
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			return false
		}
		alg := []Algorithm{Alg1KnownDelta, Alg1OwnDegree, Alg2TwoChannel}[algRaw%3]
		res, err := Solve(g, WithAlgorithm(alg), WithSeed(seed))
		if err != nil {
			return false
		}
		return g.VerifyMIS(res.MIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAdaptiveNoKnowledge(t *testing.T) {
	g, _ := NewGraph(20, completeEdges(20))
	res, err := Solve(g, WithAlgorithm(Alg1Adaptive), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(res.MIS); err != nil {
		t.Fatal(err)
	}
	if len(res.MIS) != 1 {
		t.Fatalf("clique MIS size %d", len(res.MIS))
	}
	if Alg1Adaptive.String() != "alg1-adaptive" {
		t.Fatal("name wrong")
	}
}

func TestSolveWithListeningNoise(t *testing.T) {
	g, _ := NewGraph(30, cycleEdges(30))
	// Mild noise: the run should still reach a legal snapshot.
	res, err := Solve(g, WithSeed(3), WithListeningNoise(0.01, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMIS(res.MIS); err != nil {
		t.Fatal(err)
	}
	// Invalid noise probabilities are rejected at construction.
	if _, err := Solve(g, WithListeningNoise(-1, 0)); err == nil {
		t.Fatal("negative noise accepted")
	}
	if _, err := NewInstance(g, WithListeningNoise(2, 0)); err == nil {
		t.Fatal("noise > 1 accepted on instance")
	}
}

func TestInstanceWithNoiseSteps(t *testing.T) {
	g, _ := NewGraph(16, cycleEdges(16))
	inst, err := NewInstance(g, WithSeed(5), WithListeningNoise(0.05, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.RunUntilStabilized(200000); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceSaveLoadResume(t *testing.T) {
	g, _ := NewGraph(30, cycleEdges(30))
	build := func() *Instance {
		inst, err := NewInstance(g, WithSeed(77))
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}

	// Reference: run 40 rounds straight through.
	ref := build()
	defer ref.Close()
	for i := 0; i < 40; i++ {
		ref.Step()
	}
	refMIS, err := ref.MIS()
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointed: 20 rounds, save, load into a fresh instance with a
	// DIFFERENT seed, 20 more rounds — must match the reference exactly.
	a := build()
	defer a.Close()
	for i := 0; i < 20; i++ {
		a.Step()
	}
	var sb strings.Builder
	if err := a.Save(&sb); err != nil {
		t.Fatal(err)
	}
	b, err := NewInstance(g, WithSeed(123456))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if b.Rounds() != 20 {
		t.Fatalf("restored rounds %d", b.Rounds())
	}
	for i := 0; i < 20; i++ {
		b.Step()
	}
	gotMIS, err := b.MIS()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMIS) != len(refMIS) {
		t.Fatalf("resumed MIS size %d != %d", len(gotMIS), len(refMIS))
	}
	for i := range gotMIS {
		if gotMIS[i] != refMIS[i] {
			t.Fatalf("resumed execution diverged at MIS entry %d", i)
		}
	}
	// Levels must match too.
	for v := 0; v < g.N(); v++ {
		la, _ := ref.Level(v)
		lb, _ := b.Level(v)
		if la != lb {
			t.Fatalf("level of %d diverged: %d vs %d", v, la, lb)
		}
	}
}

func TestInstanceLoadErrors(t *testing.T) {
	g, _ := NewGraph(4, pathEdges(4))
	inst, err := NewInstance(g)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if err := inst.Load(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// Checkpoint from a differently-sized instance is rejected.
	g2, _ := NewGraph(6, pathEdges(6))
	other, err := NewInstance(g2)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	var sb strings.Builder
	if err := other.Save(&sb); err != nil {
		t.Fatal(err)
	}
	if err := inst.Load(strings.NewReader(sb.String())); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}
