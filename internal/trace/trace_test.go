package trace

import (
	"strings"
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func buildRecorded(t *testing.T, keepLevels bool) (*beep.Network, *Recorder) {
	t.Helper()
	g := graph.Cycle(12)
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	var rec *Recorder
	net, err := beep.NewNetwork(g, proto, 5, beep.WithObserver(func(round int, sent, heard []beep.Signal) {
		rec.Observer()(round, sent, heard)
	}))
	if err != nil {
		t.Fatal(err)
	}
	rec = NewRecorder(net)
	rec.KeepLevels = keepLevels
	net.RandomizeAll()
	return net, rec
}

func TestRecorderCapturesEveryRound(t *testing.T) {
	net, rec := buildRecorded(t, false)
	defer net.Close()
	const rounds = 25
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	stats := rec.Stats()
	if len(stats) != rounds {
		t.Fatalf("recorded %d rounds, want %d", len(stats), rounds)
	}
	for i, s := range stats {
		if s.Round != i+1 {
			t.Fatalf("row %d has round %d", i, s.Round)
		}
		if s.Stable < 0 || s.Stable > net.N() || s.Beeping < 0 || s.Beeping > net.N() {
			t.Fatalf("row %d out of range: %+v", i, s)
		}
		if s.MinLevel > s.MaxLevel {
			t.Fatalf("row %d: min %d > max %d", i, s.MinLevel, s.MaxLevel)
		}
		if float64(s.MinLevel) > s.MeanLevel || s.MeanLevel > float64(s.MaxLevel) {
			t.Fatalf("row %d: mean outside min/max: %+v", i, s)
		}
	}
}

func TestRecorderStableMonotoneAfterStabilization(t *testing.T) {
	net, rec := buildRecorded(t, false)
	defer net.Close()
	stop := func() bool {
		st, err := core.Snapshot(net)
		return err == nil && st.Stabilized()
	}
	if _, ok := net.Run(100000, stop); !ok {
		t.Fatal("did not stabilize")
	}
	stats := rec.Stats()
	last := stats[len(stats)-1]
	if last.Stable != net.N() {
		t.Fatalf("final stable count %d, want %d", last.Stable, net.N())
	}
	if last.InMIS == 0 {
		t.Fatal("no MIS members at stabilization")
	}
}

func TestRecorderLevelHistory(t *testing.T) {
	net, rec := buildRecorded(t, true)
	defer net.Close()
	for i := 0; i < 10; i++ {
		net.Step()
	}
	levels := rec.Levels()
	if len(levels) != 10 {
		t.Fatalf("history rows %d", len(levels))
	}
	for _, row := range levels {
		if len(row) != net.N() {
			t.Fatalf("history row width %d", len(row))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	net, rec := buildRecorded(t, true)
	defer net.Close()
	for i := 0; i < 5; i++ {
		net.Step()
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv lines %d, want header + 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "round,beeping,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Fatalf("first data row %q", lines[1])
	}

	sb.Reset()
	if err := rec.WriteLevelsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(rows) != 5 {
		t.Fatalf("level rows %d", len(rows))
	}
	if cols := strings.Count(rows[0], ","); cols != net.N() {
		t.Fatalf("level columns %d, want %d", cols, net.N())
	}
}

func TestWriteLevelsCSVRequiresKeep(t *testing.T) {
	net, rec := buildRecorded(t, false)
	defer net.Close()
	net.Step()
	var sb strings.Builder
	if err := rec.WriteLevelsCSV(&sb); err == nil {
		t.Fatal("WriteLevelsCSV without KeepLevels accepted")
	}
}

// levelLessProto exercises the non-core fallback path.
type levelLessProto struct{}

func (levelLessProto) Channels() int { return 1 }
func (levelLessProto) NewMachine(int, graph.Topology) beep.Machine {
	return &levelLessMachine{}
}

type levelLessMachine struct{}

func (*levelLessMachine) Emit(*rng.Source) beep.Signal { return beep.Chan1 }
func (*levelLessMachine) Update(_, _ beep.Signal)      {}
func (*levelLessMachine) Randomize(*rng.Source)        {}

func TestRecorderWithoutLevels(t *testing.T) {
	g := graph.Path(4)
	var rec *Recorder
	net, err := beep.NewNetwork(g, levelLessProto{}, 1, beep.WithObserver(func(round int, sent, heard []beep.Signal) {
		rec.Observer()(round, sent, heard)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	rec = NewRecorder(net)
	net.Step()
	stats := rec.Stats()
	if len(stats) != 1 || stats[0].Beeping != 4 {
		t.Fatalf("fallback stats %+v", stats)
	}
}

func TestWriteLevelHeatmapSVG(t *testing.T) {
	net, rec := buildRecorded(t, true)
	defer net.Close()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	caps := make([]int, net.N())
	for v := range caps {
		caps[v] = net.Machine(v).(core.Leveled).Cap()
	}
	var sb strings.Builder
	if err := rec.WriteLevelHeatmapSVG(&sb, caps, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not well-formed SVG")
	}
	// One background rect plus rounds×n cells.
	if got, want := strings.Count(out, "<rect "), 1+rounds*net.N(); got != want {
		t.Fatalf("rect count %d, want %d", got, want)
	}
}

func TestWriteLevelHeatmapSVGErrors(t *testing.T) {
	net, rec := buildRecorded(t, false)
	defer net.Close()
	net.Step()
	var sb strings.Builder
	if err := rec.WriteLevelHeatmapSVG(&sb, make([]int, net.N()), 4); err == nil {
		t.Fatal("missing KeepLevels accepted")
	}
	net2, rec2 := buildRecorded(t, true)
	defer net2.Close()
	if err := rec2.WriteLevelHeatmapSVG(&sb, nil, 4); err == nil {
		t.Fatal("empty history accepted")
	}
	net2.Step()
	if err := rec2.WriteLevelHeatmapSVG(&sb, []int{1}, 4); err == nil {
		t.Fatal("caps length mismatch accepted")
	}
}

func TestLevelColorEndpoints(t *testing.T) {
	if levelColor(-8, 8) != "#004cff" && levelColor(-8, 8) != "#004dff" {
		t.Fatalf("committed color %s", levelColor(-8, 8))
	}
	if got := levelColor(0, 8); got != "#ffffff" {
		t.Fatalf("neutral color %s", got)
	}
	if got := levelColor(8, 8); got != "#ff4c00" && got != "#ff4d00" {
		t.Fatalf("cap color %s", got)
	}
	// Degenerate cap does not divide by zero.
	_ = levelColor(0, 0)
}
