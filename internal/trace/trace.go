// Package trace records the round-by-round evolution of a beeping
// execution for analysis and export: per-round aggregate metrics
// (beeping vertices, prominent vertices, stabilized vertices, level
// statistics) and optional full per-vertex level histories, with CSV
// output consumed by the CLI tools.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/beep"
	"repro/internal/core"
)

// RoundStats are the aggregate metrics of one round.
type RoundStats struct {
	Round int
	// Beeping is the number of vertices that transmitted on any channel.
	Beeping int
	// Chan2 is the number of vertices that transmitted on channel 2
	// (Algorithm 2's MIS announcements); 0 for single-channel runs.
	Chan2 int
	// Prominent is |PM_t| (vertices with ℓ <= 0, Definition 3.3).
	Prominent int
	// Stable is |S_t| (vertices whose output has stabilized).
	Stable int
	// InMIS is |I_t|.
	InMIS int
	// MeanLevel and MinLevel/MaxLevel summarize the level field.
	MeanLevel float64
	MinLevel  int
	MaxLevel  int
}

// Recorder observes a network and accumulates per-round statistics.
// Attach with Observer() at network construction and call Capture after
// each round (or use Observe's automatic capture).
type Recorder struct {
	net   *beep.Network
	stats []RoundStats
	// KeepLevels enables full per-vertex level histories (memory grows
	// as rounds × n).
	KeepLevels bool
	levels     [][]int

	lastSent []beep.Signal
	// probe is the reused snapshot buffer: Refresh per round instead of
	// a fresh Snapshot allocation, and its incremental detector makes
	// StableCount cheap on quiet rounds.
	probe core.State
}

// NewRecorder creates a recorder for net. The recorder snapshots levels
// through the core.Leveled interface, so it works with Algorithm 1 and
// Algorithm 2 machines.
func NewRecorder(net *beep.Network) *Recorder {
	return &Recorder{net: net}
}

// Observer returns the beep.WithObserver callback that feeds the
// recorder; install it when building the network.
func (r *Recorder) Observer() func(round int, sent, heard []beep.Signal) {
	return func(_ int, sent, _ []beep.Signal) {
		r.lastSent = append(r.lastSent[:0], sent...)
		r.capture()
	}
}

// capture computes this round's statistics from the network state.
func (r *Recorder) capture() {
	st := &r.probe
	if err := st.Refresh(r.net); err != nil {
		// Non-core protocols have no levels; record signal stats only.
		s := RoundStats{Round: r.net.Round()}
		for _, sig := range r.lastSent {
			if sig != beep.Silent {
				s.Beeping++
			}
			if sig.Has(beep.Chan2) {
				s.Chan2++
			}
		}
		r.stats = append(r.stats, s)
		return
	}
	n := r.net.N()
	s := RoundStats{
		Round:    r.net.Round(),
		Stable:   st.StableCount(),
		MinLevel: 1 << 30,
		MaxLevel: -(1 << 30),
	}
	sum := 0
	var levelRow []int
	if r.KeepLevels {
		levelRow = make([]int, n)
	}
	for v := 0; v < n; v++ {
		l := st.Level(v)
		sum += l
		if l < s.MinLevel {
			s.MinLevel = l
		}
		if l > s.MaxLevel {
			s.MaxLevel = l
		}
		if st.Prominent(v) {
			s.Prominent++
		}
		if st.InMIS(v) {
			s.InMIS++
		}
		if levelRow != nil {
			levelRow[v] = l
		}
	}
	for _, sig := range r.lastSent {
		if sig != beep.Silent {
			s.Beeping++
		}
		if sig.Has(beep.Chan2) {
			s.Chan2++
		}
	}
	if n > 0 {
		s.MeanLevel = float64(sum) / float64(n)
	} else {
		s.MinLevel, s.MaxLevel = 0, 0
	}
	r.stats = append(r.stats, s)
	if levelRow != nil {
		r.levels = append(r.levels, levelRow)
	}
}

// Stats returns the recorded per-round statistics.
func (r *Recorder) Stats() []RoundStats { return r.stats }

// Levels returns the per-vertex level history (only populated with
// KeepLevels).
func (r *Recorder) Levels() [][]int { return r.levels }

// WriteCSV writes the aggregate statistics as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "round,beeping,chan2,prominent,stable,inmis,mean_level,min_level,max_level"); err != nil {
		return fmt.Errorf("trace csv: %w", err)
	}
	for _, s := range r.stats {
		_, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%s,%d,%d\n",
			s.Round, s.Beeping, s.Chan2, s.Prominent, s.Stable, s.InMIS,
			strconv.FormatFloat(s.MeanLevel, 'g', 6, 64), s.MinLevel, s.MaxLevel)
		if err != nil {
			return fmt.Errorf("trace csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace csv: %w", err)
	}
	return nil
}

// WriteLevelsCSV writes the per-vertex level history as CSV (one row
// per round, one column per vertex). Requires KeepLevels.
func (r *Recorder) WriteLevelsCSV(w io.Writer) error {
	if !r.KeepLevels {
		return fmt.Errorf("trace: level history not recorded (set KeepLevels before running)")
	}
	bw := bufio.NewWriter(w)
	for i, row := range r.levels {
		fmt.Fprintf(bw, "%d", r.stats[i].Round)
		for _, l := range row {
			fmt.Fprintf(bw, ",%d", l)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace levels csv: %w", err)
	}
	return nil
}
