package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteLevelHeatmapSVG renders the recorded per-vertex level history as
// an SVG heatmap: one column per vertex, one row per round. Cell color
// encodes the level relative to the vertex's cap:
//
//	deep blue  ℓ = -ℓmax  (committed MIS member)
//	white      ℓ ≈ 0      (actively beeping band)
//	deep red   ℓ = +ℓmax  (silent / stabilized non-member)
//
// The characteristic pattern of a stabilizing run is vertical blue and
// red stripes emerging out of noise. Requires KeepLevels; caps supplies
// ℓmax(v) per vertex (from the snapshot that produced the history).
func (r *Recorder) WriteLevelHeatmapSVG(w io.Writer, caps []int, cell int) error {
	if !r.KeepLevels {
		return fmt.Errorf("trace: level history not recorded (set KeepLevels before running)")
	}
	if len(r.levels) == 0 {
		return fmt.Errorf("trace: empty level history")
	}
	n := len(r.levels[0])
	if len(caps) != n {
		return fmt.Errorf("trace: caps length %d, want %d", len(caps), n)
	}
	if cell <= 0 {
		cell = 4
	}
	rounds := len(r.levels)
	width := n * cell
	height := rounds * cell

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	for t, row := range r.levels {
		for v, l := range row {
			fill := levelColor(l, caps[v])
			fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				v*cell, t*cell, cell, cell, fill)
		}
	}
	fmt.Fprintln(bw, `</svg>`)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace svg: %w", err)
	}
	return nil
}

// levelColor maps a level in [-cap, cap] to a blue-white-red ramp.
func levelColor(level, cap int) string {
	if cap < 1 {
		cap = 1
	}
	// ratio in [-1, 1].
	ratio := float64(level) / float64(cap)
	if ratio < -1 {
		ratio = -1
	}
	if ratio > 1 {
		ratio = 1
	}
	var rC, gC, bC int
	if ratio < 0 {
		// White → blue as ratio goes 0 → -1.
		f := -ratio
		rC = int(255 * (1 - f))
		gC = int(255 * (1 - f*0.7))
		bC = 255
	} else {
		// White → red as ratio goes 0 → 1.
		f := ratio
		rC = 255
		gC = int(255 * (1 - f*0.7))
		bC = int(255 * (1 - f))
	}
	return fmt.Sprintf("#%02x%02x%02x", rC, gC, bC)
}
