package core

import (
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
)

// In a legal configuration every vertex's beeping probability is 0 or 1,
// so the dynamics are deterministic. That makes closure exhaustively
// checkable: enumerate EVERY level assignment of a tiny system, find the
// legal ones, and verify each is a fixpoint of one synchronous round.
// This is a model-checking-style complement to the randomized tests.

// enumerateAssignments calls fn with every assignment of levels[v] in
// [-caps[v], caps[v]].
func enumerateAssignments(caps []int, fn func(levels []int)) {
	levels := make([]int, len(caps))
	var rec func(i int)
	rec = func(i int) {
		if i == len(caps) {
			fn(levels)
			return
		}
		for l := -caps[i]; l <= caps[i]; l++ {
			levels[i] = l
			rec(i + 1)
		}
	}
	rec(0)
}

// installLevels forces the given levels onto an Algorithm 1 network.
func installLevels(t *testing.T, net *beep.Network, levels []int) {
	t.Helper()
	for v, l := range levels {
		m, ok := net.Machine(v).(Leveled)
		if !ok {
			t.Fatalf("machine %T has no levels", net.Machine(v))
		}
		m.SetLevel(l)
		if m.Level() != l {
			t.Fatalf("level %d rejected for vertex %d", l, v)
		}
	}
}

func TestExhaustiveClosureAlg1(t *testing.T) {
	// Small graphs and a tiny constant cap keep the state space
	// enumerable: (2·cap+1)^n assignments.
	const cap = 2
	graphs := []*graph.Graph{
		graph.Empty(2),
		graph.Path(3),
		graph.Cycle(4),
		graph.Complete(3),
		graph.Star(4),
	}
	for _, g := range graphs {
		proto := NewAlg1(ConstantCap(cap))
		net, err := beep.NewNetwork(g, proto, 1)
		if err != nil {
			t.Fatal(err)
		}
		caps := make([]int, g.N())
		for v := range caps {
			caps[v] = cap
		}
		legalCount, checked := 0, 0
		enumerateAssignments(caps, func(levels []int) {
			checked++
			installLevels(t, net, levels)
			st, err := Snapshot(net)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Stabilized() {
				return
			}
			legalCount++
			if err := st.VerifyMIS(); err != nil {
				t.Fatalf("%s: legal state %v is not an MIS: %v", g.Name(), levels, err)
			}
			// One round must leave the configuration unchanged.
			net.Step()
			after, err := Snapshot(net)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.N(); v++ {
				if after.Level(v) != levels[v] {
					t.Fatalf("%s: legal state %v not a fixpoint: vertex %d moved to %d",
						g.Name(), levels, v, after.Level(v))
				}
			}
		})
		if legalCount == 0 {
			t.Fatalf("%s: no legal states among %d assignments — enumeration or legality broken", g.Name(), checked)
		}
		net.Close()
	}
}

func TestExhaustiveLegalStatesMatchMISes(t *testing.T) {
	// On P3 with cap 2, the legal configurations must correspond exactly
	// to the two MISes {1} and {0,2} (levels -2/2 patterns).
	g := graph.Path(3)
	const cap = 2
	proto := NewAlg1(ConstantCap(cap))
	net, err := beep.NewNetwork(g, proto, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	caps := []int{cap, cap, cap}
	var legals [][]int
	enumerateAssignments(caps, func(levels []int) {
		installLevels(t, net, levels)
		st, err := Snapshot(net)
		if err != nil {
			t.Fatal(err)
		}
		if st.Stabilized() {
			legals = append(legals, append([]int(nil), levels...))
		}
	})
	want := map[[3]int]bool{
		{2, -2, 2}:  true, // MIS {1}
		{-2, 2, -2}: true, // MIS {0,2}
	}
	if len(legals) != len(want) {
		t.Fatalf("legal states %v, want exactly %v", legals, want)
	}
	for _, l := range legals {
		key := [3]int{l[0], l[1], l[2]}
		if !want[key] {
			t.Fatalf("unexpected legal state %v", l)
		}
	}
}

// Exhaustive reachability on a tiny instance: from EVERY initial
// assignment of P2 (cap 2), the system stabilizes within a modest
// budget for several seeds — brute-force coverage of the entire initial
// state space, complementing the sampled InitRandom tests.
func TestExhaustiveReachabilityP2(t *testing.T) {
	g := graph.Path(2)
	const cap = 2
	caps := []int{cap, cap}
	enumerateAssignments(caps, func(levels []int) {
		for seed := uint64(0); seed < 3; seed++ {
			proto := NewAlg1(ConstantCap(cap)).WithInitialLevels(func(v int) int { return levels[v] })
			res, err := Run(RunConfig{
				Graph:     g,
				Protocol:  proto,
				Seed:      seed,
				Init:      InitFresh, // keep the WithInitialLevels values
				MaxRounds: 5000,
			})
			if err != nil {
				t.Fatalf("initial %v seed %d: %v", levels, seed, err)
			}
			if err := g.VerifyMIS(res.MIS); err != nil {
				t.Fatalf("initial %v seed %d: %v", levels, seed, err)
			}
		}
	})
}

// The two-channel algorithm's legal states on P3 (cap 2) are exactly
// its MIS encodings: members at 0, others at cap.
func TestExhaustiveLegalStatesAlg2(t *testing.T) {
	g := graph.Path(3)
	const cap = 2
	proto := NewAlg2(ConstantCap(cap))
	net, err := beep.NewNetwork(g, proto, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	var legals [][]int
	levels := []int{0, 0, 0}
	var rec func(i int)
	rec = func(i int) {
		if i == 3 {
			for v, l := range levels {
				net.Machine(v).(Leveled).SetLevel(l)
			}
			st, err := Snapshot(net)
			if err != nil {
				t.Fatal(err)
			}
			if st.Stabilized() {
				if err := st.VerifyMIS(); err != nil {
					t.Fatalf("legal alg2 state %v invalid: %v", levels, err)
				}
				legals = append(legals, append([]int(nil), levels...))
			}
			return
		}
		for l := 0; l <= cap; l++ {
			levels[i] = l
			rec(i + 1)
		}
	}
	rec(0)

	want := map[[3]int]bool{
		{2, 0, 2}: true, // MIS {1}
		{0, 2, 0}: true, // MIS {0,2}
	}
	if len(legals) != len(want) {
		t.Fatalf("alg2 legal states %v, want %v", legals, want)
	}
	for _, l := range legals {
		if !want[[3]int{l[0], l[1], l[2]}] {
			t.Fatalf("unexpected alg2 legal state %v", l)
		}
	}
}
