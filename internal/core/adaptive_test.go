package core

import (
	"testing"
	"testing/quick"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestAdaptiveDefaults(t *testing.T) {
	m := AdaptiveAlg1{}.NewMachine(0, graph.Path(2)).(*adaptiveMachine)
	if m.lmax != 4 || m.maxCap < 4 || m.threshold != 8 {
		t.Fatalf("defaults %+v", m)
	}
	m2 := NewAdaptiveAlg1().NewMachine(0, graph.Path(2)).(*adaptiveMachine)
	if m2.lmax != 4 || m2.maxCap != 64 || m2.threshold != 8 {
		t.Fatalf("NewAdaptiveAlg1 defaults %+v", m2)
	}
}

func TestAdaptiveCapDoublesOnCollisions(t *testing.T) {
	m := NewAdaptiveAlg1().NewMachine(0, graph.Path(2)).(*adaptiveMachine)
	start := m.Cap()
	// threshold collisions (beeped and heard) trigger one doubling.
	for i := 0; i < m.threshold; i++ {
		if m.Cap() != start {
			t.Fatalf("cap grew early at collision %d", i)
		}
		m.Update(beep.Chan1, beep.Chan1)
	}
	if m.Cap() != 2*start {
		t.Fatalf("cap %d after %d collisions, want %d", m.Cap(), m.threshold, 2*start)
	}
	// Non-collision rounds do not advance the counter.
	for i := 0; i < 100; i++ {
		m.Update(beep.Silent, beep.Chan1)
		m.Update(beep.Chan1, beep.Silent)
	}
	if m.Cap() != 2*start {
		t.Fatalf("cap %d changed without collisions", m.Cap())
	}
}

func TestAdaptiveCapBounded(t *testing.T) {
	p := AdaptiveAlg1{InitialCap: 4, MaxCap: 16, CollisionThreshold: 1}
	m := p.NewMachine(0, graph.Path(2)).(*adaptiveMachine)
	for i := 0; i < 100; i++ {
		m.Update(beep.Chan1, beep.Chan1)
	}
	if m.Cap() != 16 {
		t.Fatalf("cap %d, want clamp at 16", m.Cap())
	}
}

func TestAdaptiveRandomizeConsistent(t *testing.T) {
	src := rng.New(3)
	m := NewAdaptiveAlg1().NewMachine(0, graph.Path(2)).(*adaptiveMachine)
	for i := 0; i < 500; i++ {
		m.Randomize(src)
		if m.Level() < -m.Cap() || m.Level() > m.Cap() {
			t.Fatalf("inconsistent state: level %d cap %d", m.Level(), m.Cap())
		}
		if m.Cap() < 4 || m.Cap() > 64 {
			t.Fatalf("cap %d out of range", m.Cap())
		}
	}
}

func TestAdaptiveStabilizesWithoutTopologyKnowledge(t *testing.T) {
	src := rng.New(400)
	graphs := []*graph.Graph{
		graph.Empty(6),
		graph.Path(30),
		graph.Cycle(30),
		graph.Complete(24), // needs several doublings
		graph.Star(30),
		graph.GNP(80, 0.1, src),
	}
	for _, g := range graphs {
		for _, init := range []InitMode{InitFresh, InitRandom} {
			res, err := Run(RunConfig{
				Graph:    g,
				Protocol: NewAdaptiveAlg1(),
				Seed:     21,
				Init:     init,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), init, err)
			}
			if err := g.VerifyMIS(res.MIS); err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), init, err)
			}
		}
	}
}

func TestAdaptiveClosure(t *testing.T) {
	g := graph.GNP(50, 0.12, rng.New(401))
	net, err := beep.NewNetwork(g, NewAdaptiveAlg1(), 77)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	stop := func() bool {
		st, serr := Snapshot(net)
		return serr == nil && st.Stabilized()
	}
	if _, ok := net.Run(defaultMaxRounds(g.N()), stop); !ok {
		t.Fatal("did not stabilize")
	}
	st0, err := Snapshot(net)
	if err != nil {
		t.Fatal(err)
	}
	mis0 := st0.MISMask()
	for r := 0; r < 150; r++ {
		net.Step()
		st, err := Snapshot(net)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Stabilized() {
			t.Fatalf("stability lost %d rounds later (caps moved?)", r+1)
		}
		for v, in := range st.MISMask() {
			if in != mis0[v] {
				t.Fatalf("membership of %d changed post-stabilization", v)
			}
		}
	}
}

// Property: the adaptive variant stabilizes to valid MISs on small
// random graphs from arbitrary states.
func TestAdaptiveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		g := graph.GNP(n, 0.2, rng.New(seed))
		res, err := Run(RunConfig{
			Graph:    g,
			Protocol: NewAdaptiveAlg1(),
			Seed:     seed,
			Init:     InitRandom,
		})
		return err == nil && g.VerifyMIS(res.MIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
