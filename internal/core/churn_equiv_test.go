package core

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestMaskedLegalityStarJammer pins the correct-subgraph legality
// semantics on the sharpest example: a star whose center is a jammer.
// No leaf can ever commit under a jammer center (it never hears a silent
// round), so without masking the configuration below would be illegal —
// but on the correct induced subgraph (the n-1 isolated leaves) the
// all-leaves set is exactly the unique MIS.
func TestMaskedLegalityStarJammer(t *testing.T) {
	const n = 8
	g := graph.Star(n)
	levels := make([]int, n)
	caps := make([]int, n)
	for v := 0; v < n; v++ {
		caps[v] = 10
		levels[v] = -10 // every vertex at the membership level
	}
	levels[0] = 3 // the center is mid-range: not at cap, not at -cap
	s := NewState(g, levels, caps)

	// Unmasked, the center blocks every leaf's membership (it is not at
	// cap) and is itself unstable.
	if s.Stabilized() {
		t.Fatal("unmasked star with mid-level center reported stabilized")
	}

	mask := make([]bool, n)
	mask[0] = true
	s.SetExcluded(mask)
	if s.InMIS(0) {
		t.Fatal("excluded center reported in MIS")
	}
	for v := 1; v < n; v++ {
		if !s.InMIS(v) {
			t.Fatalf("leaf %d not in MIS under masked center", v)
		}
	}
	if !s.Stabilized() {
		t.Fatal("masked star not stabilized")
	}
	if got := s.StableCount(); got != n {
		t.Fatalf("StableCount = %d, want %d (excluded vertices are vacuously stable)", got, n)
	}
	if err := s.VerifyMIS(); err != nil {
		t.Fatalf("masked VerifyMIS: %v", err)
	}
	mis := s.MISMask()
	if mis[0] || graph.CountTrue(mis) != n-1 {
		t.Fatalf("masked MIS mask = %v", mis)
	}

	// Clearing the mask must re-seed the detector and restore the
	// unmasked verdict.
	s.SetExcluded(nil)
	if s.Stabilized() {
		t.Fatal("verdict did not change after clearing the exclusion mask")
	}
}

// TestVerifyMISOn exercises the induced-subgraph verifier directly.
func TestVerifyMISOn(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	active := []bool{true, false, true, true}
	// With vertex 1 inactive, {0, 2} is an MIS of the induced subgraph
	// (0 is isolated there).
	if err := g.VerifyMISOn(active, []bool{true, false, true, false}); err != nil {
		t.Fatalf("valid masked MIS rejected: %v", err)
	}
	// {2} leaves the now-isolated 0 undominated.
	if err := g.VerifyMISOn(active, []bool{false, false, true, false}); err == nil {
		t.Fatal("maximality violation through an inactive cut vertex not caught")
	}
	// Inactive vertices cannot be members.
	if err := g.VerifyMISOn(active, []bool{true, true, true, false}); err == nil {
		t.Fatal("inactive member not caught")
	}
	// Active adjacent members are still a violation.
	if err := g.VerifyMISOn(active, []bool{true, false, true, true}); err == nil {
		t.Fatal("independence violation between active vertices not caught")
	}
	// Mask length is validated.
	if err := g.VerifyMISOn([]bool{true}, make([]bool, 4)); err == nil {
		t.Fatal("short active mask accepted")
	}
	// nil active mask falls back to the plain verifier.
	if err := g.VerifyMISOn(nil, []bool{true, false, true, false}); err != nil {
		t.Fatalf("nil-mask fallback: %v", err)
	}
}

// TestDetectorAcrossChurnAndAdversaries is the acceptance check for the
// incremental detector under the full fault model: an Alg1 execution
// with babbler and jammer adversaries is driven through a multi-event
// churn schedule via live Rewire, and on every single round the
// incremental probe is cross-validated against an independent
// from-scratch Snapshot (which always rebuilds its masks). The exclusion
// mask is re-captured whenever the network's adversary epoch moves.
func TestDetectorAcrossChurnAndAdversaries(t *testing.T) {
	g := graph.GNPAvgDegree(36, 5, rng.New(21))
	sched, err := graph.FlapSchedule(g, 4, 8, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	net, err := beep.NewNetwork(g, NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), 777,
		beep.WithAdversaries(beep.AdvJammer, []int{3}),
		beep.WithAdversaries(beep.AdvBabbler, []int{10, 17}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()

	var inc State
	var mask []bool
	epoch := ^uint64(0)
	capture := func() {
		if e := net.AdversaryEpoch(); e != epoch {
			mask = make([]bool, net.N())
			net.FillAdversaryMask(mask)
			inc.SetExcluded(mask)
			epoch = e
		}
	}
	check := func(tag string, r int) {
		t.Helper()
		if err := inc.Refresh(net); err != nil {
			t.Fatal(err)
		}
		full, err := Snapshot(net)
		if err != nil {
			t.Fatal(err)
		}
		full.SetExcluded(mask)
		if got, want := inc.Stabilized(), full.Stabilized(); got != want {
			t.Fatalf("%s round %d: incremental Stabilized=%v, full=%v", tag, r, got, want)
		}
		if got, want := inc.StableCount(), full.StableCount(); got != want {
			t.Fatalf("%s round %d: incremental StableCount=%d, full=%d", tag, r, got, want)
		}
		gotMIS, wantMIS := inc.MISMask(), full.MISMask()
		for v := range wantMIS {
			if gotMIS[v] != wantMIS[v] {
				t.Fatalf("%s round %d: MIS mask diverged at vertex %d", tag, r, v)
			}
		}
	}

	capture()
	cur := g
	for ei, ev := range sched {
		tag := fmt.Sprintf("pre-%s", ev.Label)
		for r := 0; r < 30; r++ {
			net.Step()
			capture() // no-op between rewires, re-captures after them
			check(tag, r)
		}
		g2, mapping, err := graph.ApplyEdits(cur, ev.Edits)
		if err != nil {
			t.Fatalf("event %d (%s): %v", ei, ev.Label, err)
		}
		if err := net.Rewire(g2, mapping[:cur.N()]); err != nil {
			t.Fatalf("event %d (%s): rewire: %v", ei, ev.Label, err)
		}
		cur = g2
		capture()
		check(fmt.Sprintf("post-%s", ev.Label), 0)
	}
	for r := 0; r < 60; r++ {
		net.Step()
		check("tail", r)
	}
}

// TestEngineEquivalenceThroughChurn extends the engine contract to the
// new fault model on the paper's own protocol: all five engines must
// produce bit-identical signal traces through a scripted crash-and-grow
// Rewire with adversaries installed, exercising the BatchProtocol slab
// path of the survivor state transfer (and, for the flat kernels, the
// post-rewire kernel re-bind). The reference is the plain interface
// loop with flat kernels disabled.
func TestEngineEquivalenceThroughChurn(t *testing.T) {
	g1 := graph.GNPAvgDegree(30, 5, rng.New(31))
	g2, mapping, err := graph.ApplyEdits(g1, []graph.Edit{
		{Kind: graph.EditDelVertex, U: 4},
		{Kind: graph.EditDelVertex, U: 12},
		{Kind: graph.EditAddVertex},
		{Kind: graph.EditAddEdge, U: 30, V: 0},
		{Kind: graph.EditAddEdge, U: 30, V: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	const seed, pre, post = 606, 15, 25
	run := func(engine beep.Engine, extra ...beep.Option) [][]beep.Signal {
		var trace [][]beep.Signal
		opts := append([]beep.Option{
			beep.WithEngine(engine),
			beep.WithAdversaries(beep.AdvJammer, []int{7}),
			beep.WithAdversaries(beep.AdvBabbler, []int{2, 20}),
			beep.WithObserver(func(_ int, sent, heard []beep.Signal) {
				row := make([]beep.Signal, 0, 2*len(sent))
				row = append(row, sent...)
				row = append(row, heard...)
				trace = append(trace, row)
			})}, extra...)
		net, err := beep.NewNetwork(g1, NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), seed, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		net.RandomizeAll()
		for r := 0; r < pre; r++ {
			net.Step()
		}
		if err := net.Rewire(g2, mapping[:g1.N()]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < post; r++ {
			net.Step()
		}
		return trace
	}
	ref := run(beep.Sequential, beep.WithFlatKernels(false))
	engines := []struct {
		name   string
		engine beep.Engine
		opts   []beep.Option
	}{
		{"sequential", beep.Sequential, nil},
		{"parallel", beep.Parallel, nil},
		{"pervertex", beep.PerVertex, nil},
		{"flat", beep.Flat, nil},
		{"flatparallel", beep.FlatParallel, nil},
		// Forced-sparse pins: with adversaries installed every round
		// falls back to the dense kernels through the sparse gate, and
		// the Rewire invalidation must keep the trace exact on both
		// sides of the churn event.
		{"flat-sparse-on", beep.Flat, []beep.Option{beep.WithSparse(beep.SparseOn)}},
		{"flatparallel-sparse-on", beep.FlatParallel, []beep.Option{beep.WithSparse(beep.SparseOn)}},
	}
	for _, e := range engines {
		got := run(e.engine, e.opts...)
		if len(got) != len(ref) {
			t.Fatalf("engine %v recorded %d rounds, reference %d", e.name, len(got), len(ref))
		}
		for r := range ref {
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("engine %v diverged at round %d slot %d", e.name, r, i)
				}
			}
		}
	}
}

// TestRewireSurvivorKnowledge pins the deployed-radio semantics of the
// Rewire state transfer on the real protocol: a survivor keeps the ℓmax
// it was constructed with on the old topology, while a joiner's cap
// reflects the new graph.
func TestRewireSurvivorKnowledge(t *testing.T) {
	g1 := graph.Star(9) // Δ = 8
	net, err := beep.NewNetwork(g1, NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	capBefore := net.Machine(1).(Leveled).Cap()
	// Survivors 1..8 move to a path (Δ = 2) plus one joiner.
	g2, mapping, err := graph.ApplyEdits(g1, []graph.Edit{
		{Kind: graph.EditDelVertex, U: 0},
		{Kind: graph.EditAddVertex},
		{Kind: graph.EditAddEdge, U: 9, V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Rewire(g2, mapping[:g1.N()]); err != nil {
		t.Fatal(err)
	}
	survivor := mapping[1]
	joiner := mapping[9]
	if got := net.Machine(survivor).(Leveled).Cap(); got != capBefore {
		t.Fatalf("survivor cap %d, want the pre-churn knowledge %d", got, capBefore)
	}
	fresh, err := beep.NewNetwork(g2, NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got, want := net.Machine(joiner).(Leveled).Cap(), fresh.Machine(joiner).(Leveled).Cap(); got != want {
		t.Fatalf("joiner cap %d, want the fresh-knowledge cap %d", got, want)
	}
}
