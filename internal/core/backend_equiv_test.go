package core

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
)

// TestEngineTraceEquivalenceBackends asserts that the graph backend is
// invisible to executions: for each family, every Topology backend —
// materialized CSR, implicit generator, and compact varint (default and
// stride-1 sampling) — produces bit-identical (sent, heard) traces and
// the same stabilization round on all five engines, against the
// materialized sequential interface-loop reference. This is the
// contract that lets the scale experiments swap in zero-storage
// backends without re-validating any protocol result: the backends
// present the same canonical neighbor rows, so the executed trace is a
// function of (topology, protocol, seed) only.
func TestEngineTraceEquivalenceBackends(t *testing.T) {
	udgtImp, err := graph.ImplicitUnitDiskGridTorus(7, 9, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	families := []struct {
		name     string
		implicit graph.Topology
	}{
		{"grid", graph.ImplicitGrid(6, 6)},
		{"torus", graph.ImplicitTorus(6, 6)},
		{"hypercube", graph.ImplicitHypercube(5)},
		{"udgt", udgtImp},
	}
	protos := []struct {
		name  string
		proto beep.Protocol
	}{
		{"alg1", NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))},
		// alg2's NeighborhoodMaxDegree derives per-vertex knowledge via
		// Degree2Of, so this also pins the knowledge-derivation path on
		// synthesizing backends.
		{"alg2", NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop))},
	}
	engines := []struct {
		name   string
		engine beep.Engine
	}{
		{"sequential+kernels", beep.Sequential},
		{"parallel", beep.Parallel},
		{"pervertex", beep.PerVertex},
		{"flat", beep.Flat},
		{"flatparallel", beep.FlatParallel},
	}
	const seed, maxRounds = 90210, 20000
	for _, fam := range families {
		mat := graph.Materialize(fam.implicit)
		backends := []struct {
			name string
			g    graph.Topology
		}{
			{"materialized", mat},
			{"implicit", fam.implicit},
			{"compact", graph.Compress(mat)},
			{"compact-s1", graph.CompressStride(fam.implicit, 1)},
		}
		for _, p := range protos {
			t.Run(fmt.Sprintf("%s/%s", fam.name, p.name), func(t *testing.T) {
				ref := runEngineTrace(t, mat, p.proto, seed, beep.Sequential, maxRounds, beep.WithFlatKernels(false))
				if ref.stabilized < 0 {
					t.Fatalf("reference run did not stabilize within %d rounds", maxRounds)
				}
				for _, b := range backends {
					for _, e := range engines {
						got := runEngineTrace(t, b.g, p.proto, seed, e.engine, maxRounds)
						if got.stabilized != ref.stabilized {
							t.Fatalf("%s/%s stabilized at round %d, reference at %d",
								b.name, e.name, got.stabilized, ref.stabilized)
						}
						for r := range ref.sent {
							for v := range ref.sent[r] {
								if got.sent[r][v] != ref.sent[r][v] || got.heard[r][v] != ref.heard[r][v] {
									t.Fatalf("%s/%s: trace diverged at round %d vertex %d",
										b.name, e.name, r+1, v)
								}
							}
						}
					}
				}
			})
		}
	}
}
