package core

import (
	"hash/fnv"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestGoldenExecution pins the exact end-to-end behavior of the stack
// (PRNG, graph generation, Algorithm 1, legality detection) for one
// fixed seed. It exists as a regression tripwire: any change to the
// random stream layout, the generator, or the algorithm's semantics
// flips these constants. If you change one of those INTENTIONALLY,
// re-derive the constants (run the test, copy the reported values) and
// say so in the commit; an unexpected failure here means an accidental
// semantic change.
func TestGoldenExecution(t *testing.T) {
	const (
		wantN       = 64
		wantM       = 189
		wantRounds  = 39
		wantMISSize = 20
		wantHash    = uint64(0xc3308e69f7440ccb)
	)
	g := graph.GNPAvgDegree(64, 6, rng.New(42))
	if g.N() != wantN || g.M() != wantM {
		t.Fatalf("generator changed: n=%d m=%d, want %d/%d", g.N(), g.M(), wantN, wantM)
	}
	res, err := Run(RunConfig{
		Graph:    g,
		Protocol: NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)),
		Seed:     7,
		Init:     InitRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, in := range res.MIS {
		if in {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	if res.Rounds != wantRounds || res.MISSize != wantMISSize || h.Sum64() != wantHash {
		t.Fatalf("execution changed: rounds=%d misSize=%d hash=%#x, want %d/%d/%#x",
			res.Rounds, res.MISSize, h.Sum64(), wantRounds, wantMISSize, wantHash)
	}
}
