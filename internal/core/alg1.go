package core

import (
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Leveled is implemented by the machines of both algorithms and exposes
// the level state to the harness (legality checks, traces, instrumented
// experiments). The harness is the analyst's eye view; vertices
// themselves never see each other's levels.
type Leveled interface {
	// Level returns the current level ℓ_t(v).
	Level() int
	// Cap returns ℓmax(v).
	Cap() int
	// SetLevel overwrites the level, clamping into the machine's valid
	// state space. It models a targeted (rather than random) transient
	// fault and is used by adversarial initializers.
	SetLevel(l int)
}

// Alg1 is Algorithm 1 of the paper: the single-channel self-stabilizing
// MIS protocol. The zero value is not usable; construct with NewAlg1.
type Alg1 struct {
	cap LevelCap
	// initLevel, when non-nil, provides the starting level for each
	// vertex (clamped); otherwise machines start from level ℓmax(v),
	// a neutral "silent" state. Self-stabilization experiments override
	// initial states through the harness anyway.
	initLevel func(v int) int
}

var (
	_ beep.Protocol      = (*Alg1)(nil)
	_ beep.BatchProtocol = (*Alg1)(nil)
)

// NewAlg1 returns the protocol with the given knowledge variant.
func NewAlg1(cap LevelCap) *Alg1 {
	return &Alg1{cap: cap}
}

// WithInitialLevels sets a deterministic initial level per vertex,
// clamped to the state space. It returns the receiver for chaining.
func (p *Alg1) WithInitialLevels(fn func(v int) int) *Alg1 {
	p.initLevel = fn
	return p
}

// Channels reports that Algorithm 1 uses a single beeping channel.
func (p *Alg1) Channels() int { return 1 }

// NewMachine builds the vertex machine with ℓmax(v) from the knowledge
// variant.
func (p *Alg1) NewMachine(v int, g graph.Topology) beep.Machine {
	m := &alg1Machine{}
	p.initMachine(m, v, g)
	return m
}

// initMachine installs ℓmax(v) and the initial level, shared by the
// per-vertex and batch construction paths.
func (p *Alg1) initMachine(m *alg1Machine, v int, g graph.Topology) {
	m.lmax = int32(p.cap(v, g))
	if m.lmax < 1 {
		m.lmax = 1
	}
	if p.initLevel != nil {
		m.SetLevel(p.initLevel(v))
	} else {
		m.level = m.lmax
	}
}

// NewMachines builds the whole cohort at once (beep.BatchProtocol): the
// machines live in one contiguous slab, and the slab doubles as the
// network's bulk-state handle implementing LevelExporter, so the
// stabilization detector captures all levels in one linear pass instead
// of n interface dispatches.
func (p *Alg1) NewMachines(g graph.Topology) ([]beep.Machine, any) {
	n := g.N()
	slab := &alg1Slab{p: p, ms: make([]alg1Machine, n)}
	ms := make([]beep.Machine, n)
	for v := 0; v < n; v++ {
		m := &slab.ms[v]
		p.initMachine(m, v, g)
		ms[v] = m
	}
	return ms, slab
}

// alg1Slab is the contiguous machine storage of one Algorithm 1 network
// and its bulk level accessor. It keeps the protocol it was built by so
// the cohort can be re-initialized in place (beep.FlatReiniter).
type alg1Slab struct {
	p  *Alg1
	ms []alg1Machine
	// shadow is the quiescence snapshot buffer (see flat.go).
	shadow []alg1Machine
}

var _ LevelExporter = (*alg1Slab)(nil)

// ExportLevels copies every machine's (ℓ, ℓmax) into the destination
// slices in one pass over the contiguous slab.
// A nil caps skips the ℓmax export (the caller has already captured the
// immutable caps).
func (s *alg1Slab) ExportLevels(levels, caps []int32) {
	if caps == nil {
		for i := range s.ms {
			levels[i] = s.ms[i].level
		}
		return
	}
	for i := range s.ms {
		levels[i] = s.ms[i].level
		caps[i] = s.ms[i].lmax
	}
}

// MutableCaps reports that Algorithm 1 caps are fixed at construction:
// ℓmax is a pure function of (vertex, graph, knowledge variant) and no
// transition, fault injector, or checkpoint restore (which requires the
// same graph and protocol) changes it.
func (s *alg1Slab) MutableCaps() bool { return false }

// TwoChannel reports single-channel (Algorithm 1) semantics.
func (s *alg1Slab) TwoChannel() bool { return false }

// alg1Machine is the per-vertex state of Algorithm 1: a single integer
// level in {-ℓmax, …, ℓmax}. The fields are int32 so a slab of machines
// packs 8 bytes per vertex, which halves the memory traffic of both the
// simulation loop and the bulk level export (levels are O(log n), so
// int32 is never a restriction).
type alg1Machine struct {
	level int32
	lmax  int32
}

var _ Leveled = (*alg1Machine)(nil)

// Emit beeps with probability min{2^-ℓ, 1} while ℓ < ℓmax, exactly the
// first branch of Algorithm 1.
func (m *alg1Machine) Emit(src *rng.Source) beep.Signal {
	if m.level < m.lmax && src.Bernoulli2Pow(int(m.level)) {
		return beep.Chan1
	}
	return beep.Silent
}

// Update applies the level transition of Algorithm 1:
//
//	heard a beep        → ℓ ← min{ℓ+1, ℓmax}
//	beeped, heard none  → ℓ ← -ℓmax       (commit to joining the MIS)
//	silent round        → ℓ ← max{ℓ-1, 1} (decay toward active beeping)
func (m *alg1Machine) Update(sent, heard beep.Signal) {
	switch {
	case heard.Has(beep.Chan1):
		if m.level+1 < m.lmax {
			m.level++
		} else {
			m.level = m.lmax
		}
	case sent.Has(beep.Chan1):
		m.level = -m.lmax
	default:
		if m.level-1 > 1 {
			m.level--
		} else {
			m.level = 1
		}
	}
}

// Randomize draws a uniform level from {-ℓmax, …, ℓmax}: an arbitrary
// RAM state after a transient fault.
func (m *alg1Machine) Randomize(src *rng.Source) {
	m.level = int32(src.Intn(int(2*m.lmax+1))) - m.lmax
}

// Level returns ℓ_t(v).
func (m *alg1Machine) Level() int { return int(m.level) }

// Cap returns ℓmax(v).
func (m *alg1Machine) Cap() int { return int(m.lmax) }

// SetLevel clamps l into {-ℓmax, …, ℓmax} and installs it.
func (m *alg1Machine) SetLevel(l int) {
	if l < int(-m.lmax) {
		l = int(-m.lmax)
	}
	if l > int(m.lmax) {
		l = int(m.lmax)
	}
	m.level = int32(l)
}
