package core

import (
	"testing"
	"testing/quick"

	"repro/internal/beep"
	"repro/internal/rng"
)

// Property: under ANY sequence of (sent, heard) signal pairs, the
// Algorithm 1 level stays in {-ℓmax, …, ℓmax} and only a solo beep can
// take it below 1.
func TestAlg1TransitionInvariantProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8, steps []byte) bool {
		cap := int(capRaw%30) + 1
		m := &alg1Machine{lmax: int32(cap)}
		m.Randomize(rng.New(seed))
		for _, b := range steps {
			sent := beep.Signal(b & 1)
			heard := beep.Signal((b >> 1) & 1)
			before := m.level
			m.Update(sent, heard)
			if int(m.level) < -cap || int(m.level) > cap {
				return false
			}
			// Only the solo-beep branch may move the level below 1
			// from a positive value.
			if before >= 1 && m.level < 1 && !(sent.Has(beep.Chan1) && !heard.Has(beep.Chan1)) {
				return false
			}
			// Hearing a beep never lowers the level.
			if heard.Has(beep.Chan1) && m.level < before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Algorithm 2 levels stay in {0, …, ℓmax}; ℓ reaches 0 only
// via a solo beep₁ and ℓmax instantly on hearing beep₂.
func TestAlg2TransitionInvariantProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8, steps []byte) bool {
		cap := int(capRaw%30) + 1
		m := &alg2Machine{lmax: int32(cap)}
		m.Randomize(rng.New(seed))
		for _, b := range steps {
			var sent beep.Signal
			switch b & 3 {
			case 1:
				sent = beep.Chan1
			case 2:
				sent = beep.Chan2
			}
			heard := beep.Signal((b >> 2) & 3)
			before := m.level
			m.Update(sent, heard)
			if m.level < 0 || int(m.level) > cap {
				return false
			}
			if heard.Has(beep.Chan2) && int(m.level) != cap {
				return false
			}
			if before > 0 && m.level == 0 && !(sent.Has(beep.Chan1) && heard == beep.Silent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the adaptive machine's cap is monotone non-decreasing and
// level always stays within the current cap under arbitrary signals.
func TestAdaptiveTransitionInvariantProperty(t *testing.T) {
	f := func(seed uint64, steps []byte) bool {
		m := NewAdaptiveAlg1().NewMachine(0, nil).(*adaptiveMachine)
		m.Randomize(rng.New(seed))
		prevCap := m.Cap()
		for _, b := range steps {
			sent := beep.Signal(b & 1)
			heard := beep.Signal((b >> 1) & 1)
			m.Update(sent, heard)
			if m.Cap() < prevCap {
				return false
			}
			prevCap = m.Cap()
			if m.Level() < -m.Cap() || m.Level() > m.Cap() || m.Cap() > m.maxCap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Emit never returns a channel the protocol does not own, for
// arbitrary machine states.
func TestEmitChannelDisciplineProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		cap := int(capRaw%20) + 1
		src := rng.New(seed)
		m1 := &alg1Machine{lmax: int32(cap)}
		m1.Randomize(src)
		for i := 0; i < 50; i++ {
			if m1.Emit(src).Has(beep.Chan2) {
				return false
			}
		}
		m2 := &alg2Machine{lmax: int32(cap)}
		m2.Randomize(src)
		for i := 0; i < 50; i++ {
			s := m2.Emit(src)
			if s.Has(beep.Chan1) && s.Has(beep.Chan2) {
				return false // channels are mutually exclusive in Alg2
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
