package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBeepProbActivationShape(t *testing.T) {
	const cap = 8
	// Figure 1: p = 1 for ℓ <= 0, halving for 0 < ℓ < ℓmax, 0 at ℓmax.
	for l := -cap; l <= 0; l++ {
		if p := BeepProb(l, cap); p != 1 {
			t.Fatalf("BeepProb(%d)=%v, want 1", l, p)
		}
	}
	for l := 1; l < cap; l++ {
		want := math.Pow(2, -float64(l))
		if p := BeepProb(l, cap); math.Abs(p-want) > 1e-12 {
			t.Fatalf("BeepProb(%d)=%v, want %v", l, p, want)
		}
	}
	if p := BeepProb(cap, cap); p != 0 {
		t.Fatalf("BeepProb(cap)=%v, want 0", p)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := log2Ceil(x); got != want {
			t.Errorf("log2Ceil(%d)=%d want %d", x, got, want)
		}
	}
}

func TestLevelCapVariants(t *testing.T) {
	g := graph.Star(17) // center degree 16, leaves degree 1
	kd := KnownMaxDegree(16, 15)
	if got := kd(0, g); got != 4+15 {
		t.Fatalf("KnownMaxDegree cap %d, want 19", got)
	}
	if kd(1, g) != kd(0, g) {
		t.Fatal("KnownMaxDegree must be uniform")
	}
	kde := KnownMaxDegreeExact(15)
	if got := kde(5, g); got != 4+15 {
		t.Fatalf("KnownMaxDegreeExact cap %d, want 19", got)
	}
	od := OwnDegree(30)
	if got := od(0, g); got != 2*4+30 {
		t.Fatalf("OwnDegree(center) = %d, want 38", got)
	}
	if got := od(3, g); got != 30 {
		t.Fatalf("OwnDegree(leaf) = %d, want 30", got)
	}
	nd := NeighborhoodMaxDegree(15)
	if got := nd(3, g); got != 2*4+15 {
		t.Fatalf("NeighborhoodMaxDegree(leaf) = %d, want 23", got)
	}
	cc := ConstantCap(7)
	if cc(0, g) != 7 || cc(3, g) != 7 {
		t.Fatal("ConstantCap wrong")
	}
}

func TestValidateCaps(t *testing.T) {
	g := graph.Complete(32)
	if err := ValidateCaps(g, KnownMaxDegreeExact(15), 40); err != nil {
		t.Fatalf("valid caps rejected: %v", err)
	}
	if err := ValidateCaps(g, ConstantCap(2), 40); err == nil {
		t.Fatal("cap below log2(deg)+4 accepted")
	}
	if err := ValidateCaps(g, ConstantCap(100000), 1); err == nil {
		t.Fatal("cap above c2 log n accepted")
	}
	if err := ValidateCaps(graph.Path(4), func(int, graph.Topology) int { return 0 }, 40); err == nil {
		t.Fatal("non-positive cap accepted")
	}
}

func TestAlg1MachineTransitions(t *testing.T) {
	m := &alg1Machine{level: 3, lmax: 5}

	// Hearing a beep raises the level.
	m.Update(beep.Silent, beep.Chan1)
	if m.level != 4 {
		t.Fatalf("heard: level %d, want 4", m.level)
	}
	// ... capped at ℓmax.
	m.Update(beep.Silent, beep.Chan1)
	m.Update(beep.Silent, beep.Chan1)
	if m.level != 5 {
		t.Fatalf("heard twice more: level %d, want cap 5", m.level)
	}
	// Beeping alone commits: ℓ ← -ℓmax.
	m.level = 1
	m.Update(beep.Chan1, beep.Silent)
	if m.level != -5 {
		t.Fatalf("beeped alone: level %d, want -5", m.level)
	}
	// Beeping while hearing raises (hear branch has priority).
	m.level = 2
	m.Update(beep.Chan1, beep.Chan1)
	if m.level != 3 {
		t.Fatalf("beeped and heard: level %d, want 3", m.level)
	}
	// Silence decays toward 1, never below.
	m.level = 3
	m.Update(beep.Silent, beep.Silent)
	if m.level != 2 {
		t.Fatalf("silent: level %d, want 2", m.level)
	}
	m.level = 1
	m.Update(beep.Silent, beep.Silent)
	if m.level != 1 {
		t.Fatalf("silent at 1: level %d, want 1", m.level)
	}
}

func TestAlg1EmitRespectsCap(t *testing.T) {
	src := rng.New(1)
	m := &alg1Machine{level: 5, lmax: 5}
	for i := 0; i < 200; i++ {
		if m.Emit(src) != beep.Silent {
			t.Fatal("vertex at ℓmax must be silent")
		}
	}
	m.level = -5
	for i := 0; i < 200; i++ {
		if m.Emit(src) != beep.Chan1 {
			t.Fatal("vertex at negative level must beep with probability 1")
		}
	}
}

func TestAlg1SetLevelClamps(t *testing.T) {
	m := &alg1Machine{lmax: 4}
	m.SetLevel(99)
	if m.level != 4 {
		t.Fatalf("clamp high: %d", m.level)
	}
	m.SetLevel(-99)
	if m.level != -4 {
		t.Fatalf("clamp low: %d", m.level)
	}
}

func TestAlg1RandomizeStaysInRange(t *testing.T) {
	src := rng.New(2)
	m := &alg1Machine{lmax: 6}
	seenNeg, seenPos := false, false
	for i := 0; i < 2000; i++ {
		m.Randomize(src)
		if m.level < -6 || m.level > 6 {
			t.Fatalf("Randomize out of range: %d", m.level)
		}
		if m.level < 0 {
			seenNeg = true
		}
		if m.level > 0 {
			seenPos = true
		}
	}
	if !seenNeg || !seenPos {
		t.Fatal("Randomize never produced both signs")
	}
}

func TestAlg2MachineTransitions(t *testing.T) {
	m := &alg2Machine{level: 3, lmax: 5}

	// beep₂ heard dominates: straight to cap.
	m.Update(beep.Silent, beep.Chan2)
	if m.level != 5 {
		t.Fatalf("heard beep2: level %d, want 5", m.level)
	}
	// beep₁ heard raises.
	m.level = 2
	m.Update(beep.Silent, beep.Chan1)
	if m.level != 3 {
		t.Fatalf("heard beep1: level %d, want 3", m.level)
	}
	// Beeped beep₁ alone: join the MIS (ℓ = 0).
	m.level = 1
	m.Update(beep.Chan1, beep.Silent)
	if m.level != 0 {
		t.Fatalf("beeped alone: level %d, want 0", m.level)
	}
	// MIS vertex beeping beep₂ with silence: unchanged.
	m.Update(beep.Chan2, beep.Silent)
	if m.level != 0 {
		t.Fatalf("MIS steady state: level %d, want 0", m.level)
	}
	// MIS vertex hearing beep₂ (conflict): evicted to cap.
	m.Update(beep.Chan2, beep.Chan2)
	if m.level != 5 {
		t.Fatalf("MIS conflict: level %d, want 5", m.level)
	}
	// Silent decay toward 1.
	m.level = 3
	m.Update(beep.Silent, beep.Silent)
	if m.level != 2 {
		t.Fatalf("silent decay: level %d, want 2", m.level)
	}
}

func TestAlg2EmitChannels(t *testing.T) {
	src := rng.New(3)
	m := &alg2Machine{level: 0, lmax: 5}
	for i := 0; i < 100; i++ {
		if m.Emit(src) != beep.Chan2 {
			t.Fatal("MIS vertex must announce on channel 2")
		}
	}
	m.level = 5
	for i := 0; i < 100; i++ {
		if m.Emit(src) != beep.Silent {
			t.Fatal("vertex at cap must be silent")
		}
	}
	m.level = 1
	sawBeep, sawSilent := false, false
	for i := 0; i < 200; i++ {
		switch m.Emit(src) {
		case beep.Chan1:
			sawBeep = true
		case beep.Silent:
			sawSilent = true
		default:
			t.Fatal("interior level may only use channel 1")
		}
	}
	if !sawBeep || !sawSilent {
		t.Fatal("level 1 should beep about half the time")
	}
}

func stabilize(t *testing.T, g *graph.Graph, proto beep.Protocol, init InitMode, seed uint64) *RunResult {
	t.Helper()
	res, err := Run(RunConfig{Graph: g, Protocol: proto, Seed: seed, Init: init})
	if err != nil {
		t.Fatalf("%s/%v: %v", g.Name(), init, err)
	}
	return res
}

func TestAlg1StabilizesAcrossFamiliesAndInits(t *testing.T) {
	src := rng.New(100)
	graphs := []*graph.Graph{
		graph.Empty(8),
		graph.Path(33),
		graph.Cycle(32),
		graph.Complete(16),
		graph.Star(24),
		graph.Grid(6, 6),
		graph.BinaryTree(31),
		graph.GNP(80, 0.08, src),
		graph.PreferentialAttachment(70, 2, src),
	}
	inits := []InitMode{InitFresh, InitRandom, InitAdversarial, InitZero}
	for _, g := range graphs {
		for _, init := range inits {
			res := stabilize(t, g, NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), init, 7)
			if err := g.VerifyMIS(res.MIS); err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), init, err)
			}
			// Zero rounds is legitimate when the initial configuration
			// is already legal (e.g. adversarial init on an empty
			// graph); negative is never.
			if res.Rounds < 0 {
				t.Fatalf("%s/%v: negative round count %d", g.Name(), init, res.Rounds)
			}
		}
	}
}

func TestAlg1OwnDegreeStabilizes(t *testing.T) {
	src := rng.New(101)
	graphs := []*graph.Graph{
		graph.Star(40),                           // extreme heterogeneity
		graph.Caterpillar(40),                    // mild heterogeneity
		graph.PreferentialAttachment(60, 2, src), // heavy tail
		graph.Lollipop(40, 10),
	}
	for _, g := range graphs {
		for _, init := range []InitMode{InitRandom, InitAdversarial} {
			res := stabilize(t, g, NewAlg1(OwnDegree(DefaultC1OwnDegree)), init, 11)
			if err := g.VerifyMIS(res.MIS); err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), init, err)
			}
		}
	}
}

func TestAlg2StabilizesAcrossFamiliesAndInits(t *testing.T) {
	src := rng.New(102)
	graphs := []*graph.Graph{
		graph.Empty(5),
		graph.Path(20),
		graph.Cycle(24),
		graph.Complete(12),
		graph.Star(20),
		graph.GNP(60, 0.1, src),
	}
	for _, g := range graphs {
		for _, init := range []InitMode{InitFresh, InitRandom, InitAdversarial, InitZero} {
			res := stabilize(t, g, NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop)), init, 13)
			if err := g.VerifyMIS(res.MIS); err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), init, err)
			}
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	g := graph.GNP(50, 0.1, rng.New(200))
	run := func() *RunResult {
		res, err := Run(RunConfig{
			Graph:    g,
			Protocol: NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)),
			Seed:     42,
			Init:     InitRandom,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.MISSize != b.MISSize {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", a.Rounds, a.MISSize, b.Rounds, b.MISSize)
	}
	for v := range a.MIS {
		if a.MIS[v] != b.MIS[v] {
			t.Fatalf("same seed produced different MIS at vertex %d", v)
		}
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// A complete graph with a 2-round budget cannot stabilize.
	g := graph.Complete(30)
	_, err := Run(RunConfig{
		Graph:     g,
		Protocol:  NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)),
		Seed:      1,
		Init:      InitZero,
		MaxRounds: 2,
	})
	if !errors.Is(err, ErrNotStabilized) {
		t.Fatalf("err = %v, want ErrNotStabilized", err)
	}
}

func TestRunValidatesInputs(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(RunConfig{Graph: graph.Path(3)}); err == nil {
		t.Fatal("nil protocol accepted")
	}
}

func TestSnapshotStateQueries(t *testing.T) {
	// Hand-built legal state on a path 0-1-2: vertex 1 in the MIS.
	g := graph.Path(3)
	caps := []int{5, 5, 5}
	levels := []int{5, -5, 5}
	st := NewState(g, levels, caps)

	if !st.InMIS(1) || st.InMIS(0) || st.InMIS(2) {
		t.Fatal("InMIS wrong")
	}
	if !st.Stabilized() {
		t.Fatal("legal state not recognized")
	}
	if st.StableCount() != 3 {
		t.Fatalf("StableCount %d", st.StableCount())
	}
	if err := st.VerifyMIS(); err != nil {
		t.Fatal(err)
	}
	if mu := st.Mu(1); mu != 1 {
		t.Fatalf("Mu(1)=%v, want 1", mu)
	}
	if mu := st.Mu(0); mu != -1 {
		t.Fatalf("Mu(0)=%v, want -1 (neighbor at -cap)", mu)
	}
	if !st.Prominent(1) || st.Prominent(0) {
		t.Fatal("Prominent wrong")
	}
	if !st.PlatinumFor(0) || !st.PlatinumFor(1) {
		t.Fatal("PlatinumFor should hold next to a prominent vertex")
	}
	if p := st.BeepProbOf(1); p != 1 {
		t.Fatalf("BeepProbOf(MIS vertex)=%v", p)
	}
	if d := st.ExpectedBeepingNeighbors(0); d != 1 {
		t.Fatalf("d_t(0)=%v, want 1 (one committed neighbor)", d)
	}
	// η with everything stable is 0.
	if e := st.Eta(0, nil); e != 0 {
		t.Fatalf("Eta in stable state = %v", e)
	}
}

func TestStateEtaCountsUnstableNeighbors(t *testing.T) {
	g := graph.Path(3)
	caps := []int{3, 3, 3}
	levels := []int{1, 2, 3} // nobody stable
	st := NewState(g, levels, caps)
	if st.Stabilized() {
		t.Fatal("unstable state reported stable")
	}
	want := math.Pow(2, -3)
	if e := st.Eta(0, nil); math.Abs(e-want) > 1e-12 {
		t.Fatalf("Eta(0)=%v, want %v", e, want)
	}
	if e := st.Eta(1, nil); math.Abs(e-2*want) > 1e-12 {
		t.Fatalf("Eta(1)=%v, want %v", e, 2*want)
	}
}

func TestMuIsolatedVertex(t *testing.T) {
	g := graph.Empty(1)
	st := NewState(g, []int{-4}, []int{4})
	if st.Mu(0) != 1 {
		t.Fatalf("Mu on isolated vertex = %v, want vacuous 1", st.Mu(0))
	}
	if !st.InMIS(0) {
		t.Fatal("committed isolated vertex should be in the MIS")
	}
}

func TestSnapshotRejectsForeignMachines(t *testing.T) {
	g := graph.Path(2)
	net, err := beep.NewNetwork(g, silentProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := Snapshot(net); err == nil {
		t.Fatal("Snapshot accepted a protocol without levels")
	}
}

// silentProtocol is a trivial non-core protocol used to exercise error
// paths.
type silentProtocol struct{}

func (silentProtocol) Channels() int { return 1 }
func (silentProtocol) NewMachine(int, graph.Topology) beep.Machine {
	return &silentMachine{}
}

type silentMachine struct{}

func (*silentMachine) Emit(*rng.Source) beep.Signal { return beep.Silent }
func (*silentMachine) Update(_, _ beep.Signal)      {}
func (*silentMachine) Randomize(*rng.Source)        {}

// Property (Lemma 3.1 empirical form): after more than max ℓmax(w)
// rounds, every vertex has ℓ > 0 or a neighbor with positive level ratio
// (μ > 0).
func TestLemma31Property(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		p := 0.05 + float64(pRaw%100)/200
		g := graph.GNP(n, p, rng.New(seed))
		proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
		net, err := beep.NewNetwork(g, proto, seed)
		if err != nil {
			return false
		}
		defer net.Close()
		net.RandomizeAll()
		maxCap := 0
		for v := 0; v < n; v++ {
			if c := net.Machine(v).(Leveled).Cap(); c > maxCap {
				maxCap = c
			}
		}
		for r := 0; r <= maxCap+1; r++ {
			net.Step()
		}
		st, err := Snapshot(net)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if st.Level(v) <= 0 && st.Mu(v) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every stabilized run of Algorithm 1 yields a valid MIS, on
// random graphs, seeds and init modes.
func TestAlg1AlwaysValidMISProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, initRaw uint8) bool {
		n := int(nRaw%40) + 1
		g := graph.GNP(n, 0.15, rng.New(seed))
		init := []InitMode{InitFresh, InitRandom, InitAdversarial, InitZero}[initRaw%4]
		res, err := Run(RunConfig{
			Graph:    g,
			Protocol: NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)),
			Seed:     seed ^ 0xabcdef,
			Init:     init,
		})
		if err != nil {
			return false
		}
		return g.VerifyMIS(res.MIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: same for Algorithm 2.
func TestAlg2AlwaysValidMISProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, initRaw uint8) bool {
		n := int(nRaw%30) + 1
		g := graph.GNP(n, 0.15, rng.New(seed))
		init := []InitMode{InitFresh, InitRandom, InitAdversarial, InitZero}[initRaw%4]
		res, err := Run(RunConfig{
			Graph:    g,
			Protocol: NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop)),
			Seed:     seed ^ 0x123456,
			Init:     init,
		})
		if err != nil {
			return false
		}
		return g.VerifyMIS(res.MIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Closure: once stabilized, further rounds never change the MIS (absent
// faults). This is the "maintaining stability as long as faults are
// absent" half of self-stabilization.
func TestClosureAfterStabilization(t *testing.T) {
	g := graph.GNP(60, 0.1, rng.New(300))
	proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	stab := func() bool {
		st, err := Snapshot(net)
		return err == nil && st.Stabilized()
	}
	if _, ok := net.Run(defaultMaxRounds(g.N()), stab); !ok {
		t.Fatal("did not stabilize")
	}
	st0, err := Snapshot(net)
	if err != nil {
		t.Fatal(err)
	}
	mis0 := st0.MISMask()
	for r := 0; r < 200; r++ {
		net.Step()
		st, err := Snapshot(net)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Stabilized() {
			t.Fatalf("stability lost at +%d rounds", r+1)
		}
		mis := st.MISMask()
		for v := range mis {
			if mis[v] != mis0[v] {
				t.Fatalf("MIS changed at vertex %d after stabilization", v)
			}
		}
	}
}

func TestInitModeString(t *testing.T) {
	for mode, want := range map[InitMode]string{
		InitFresh: "fresh", InitRandom: "random",
		InitAdversarial: "adversarial", InitZero: "zero",
		InitMode(99): "init(99)",
	} {
		if got := mode.String(); got != want {
			t.Errorf("%d.String()=%q want %q", mode, got, want)
		}
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if defaultMaxRounds(1) < 1000 {
		t.Fatal("budget too small for n=1")
	}
	if defaultMaxRounds(1<<16) <= defaultMaxRounds(4) {
		t.Fatal("budget must grow with n")
	}
}
