package core

import (
	"fmt"

	"repro/internal/beep"
)

// This file is the canonical name registry for the self-stabilizing
// protocols and initial configurations, shared by every surface that
// accepts them as strings: the beepmis CLI flags and the beepd job API
// resolve through the same functions, so a job spec and a command line
// always mean the same run.

// ProtocolNames lists the accepted protocol names, in display order.
var ProtocolNames = []string{
	"alg1-known-delta", "alg1-own-degree", "alg2-two-channel", "alg1-adaptive",
}

// ProtocolByName constructs the protocol named by the CLI/API string.
// Each call returns a fresh protocol value.
func ProtocolByName(name string) (beep.Protocol, error) {
	switch name {
	case "alg1-known-delta":
		return NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), nil
	case "alg1-own-degree":
		return NewAlg1(OwnDegree(DefaultC1OwnDegree)), nil
	case "alg2-two-channel":
		return NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop)), nil
	case "alg1-adaptive":
		return NewAdaptiveAlg1(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want one of %v)", name, ProtocolNames)
	}
}

// InitByName parses an initial-configuration name.
func InitByName(name string) (InitMode, error) {
	switch name {
	case "fresh":
		return InitFresh, nil
	case "random", "":
		return InitRandom, nil
	case "adversarial":
		return InitAdversarial, nil
	case "zero":
		return InitZero, nil
	default:
		return 0, fmt.Errorf("unknown init mode %q (want fresh | random | adversarial | zero)", name)
	}
}
