package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// LevelCap computes ℓmax(v), the per-vertex level cap, from the
// *knowledge* available to vertex v. The three variants below realize the
// knowledge assumptions of Theorem 2.1 (global Δ), Theorem 2.2 (own
// degree) and Corollary 2.3 (1-hop neighborhood maximum degree).
//
// The function may inspect the graph only to model the granted knowledge;
// the resulting integer is the only topology information the vertex's
// machine ever holds.
type LevelCap func(v int, g graph.Topology) int

// Default slack constants from the theorem statements: Theorem 2.1 and
// Corollary 2.3 require c1 >= 15, Theorem 2.2 requires c1 >= 30.
const (
	DefaultC1KnownDelta = 15
	DefaultC1OwnDegree  = 30
	DefaultC1TwoHop     = 15
)

// log2Ceil returns ceil(log2(x)) for x >= 1, and 0 for x <= 1.
func log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

// KnownMaxDegree returns the Theorem 2.1 cap: every vertex uses the same
// ℓmax = log2(Δupper) + c1, where Δupper is a (possibly loose) upper
// bound on the maximum degree known to all vertices.
func KnownMaxDegree(deltaUpper, c1 int) LevelCap {
	return func(int, graph.Topology) int {
		return log2Ceil(deltaUpper) + c1
	}
}

// KnownMaxDegreeExact is KnownMaxDegree with the true Δ(G) of the
// instance, the tightest admissible knowledge under Theorem 2.1.
func KnownMaxDegreeExact(c1 int) LevelCap {
	return func(_ int, g graph.Topology) int {
		return log2Ceil(g.MaxDegree()) + c1
	}
}

// OwnDegree returns the Theorem 2.2 cap: ℓmax(v) = 2·log2(deg(v)) + c1,
// using only the vertex's own degree.
func OwnDegree(c1 int) LevelCap {
	return func(v int, g graph.Topology) int {
		return 2*log2Ceil(g.Degree(v)) + c1
	}
}

// NeighborhoodMaxDegree returns the Corollary 2.3 cap for the
// two-channel algorithm: ℓmax(v) = 2·log2(deg₂(v)) + c1, where deg₂ is
// the maximum degree in the closed 1-hop neighborhood.
func NeighborhoodMaxDegree(c1 int) LevelCap {
	return func(v int, g graph.Topology) int {
		return 2*log2Ceil(graph.Degree2Of(g, v)) + c1
	}
}

// ConstantCap returns ℓmax(v) = L for every vertex, used by ablations
// that probe what happens below the theorems' thresholds.
func ConstantCap(L int) LevelCap {
	return func(int, graph.Topology) int { return L }
}

// ValidateCaps checks the preconditions the theorems put on ℓmax:
// positivity, ℓmax(v) >= log2(deg(v)) + 4 (the standing assumption of
// Lemmas 3.5/3.6), and ℓmax(v) = O(log n) via the given c2 multiplier
// (ℓmax(v) <= c2·log2(n) with a small additive allowance for tiny
// graphs). It returns a descriptive error naming the first offending
// vertex.
func ValidateCaps(g graph.Topology, cap LevelCap, c2 float64) error {
	n := g.N()
	limit := c2*math.Log2(float64(n)+1) + float64(DefaultC1OwnDegree) + 4
	for v := 0; v < n; v++ {
		lm := cap(v, g)
		if lm < 1 {
			return fmt.Errorf("core: ℓmax(%d) = %d < 1", v, lm)
		}
		if lm < log2Ceil(g.Degree(v))+4 {
			return fmt.Errorf("core: ℓmax(%d) = %d below log2(deg)+4 = %d (lemma precondition)", v, lm, log2Ceil(g.Degree(v))+4)
		}
		if float64(lm) > limit {
			return fmt.Errorf("core: ℓmax(%d) = %d exceeds c2·log n allowance %.1f", v, lm, limit)
		}
	}
	return nil
}

// BeepProb returns the beeping probability p_t(v) implied by a level and
// cap, the activation function of Figure 1:
//
//	p = 1      if ℓ <= 0
//	p = 2^-ℓ   if 0 < ℓ < ℓmax
//	p = 0      if ℓ = ℓmax
func BeepProb(level, cap int) float64 {
	switch {
	case level <= 0:
		return 1
	case level >= cap:
		return 0
	default:
		return math.Pow(2, -float64(level))
	}
}
