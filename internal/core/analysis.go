package core

// Section 6 analysis machinery: light vertices and golden rounds, the
// intermediate notions of the proof of Lemma 3.5. They are exposed on
// State so the experiment suite (and curious readers) can watch the
// proof's quantities evolve on real executions.

// lightDegreeBound is the constant of Definition 6.1: a vertex with
// μ > 0 is light when its expected number of beeping neighbors is at
// most 10 (or its level is non-positive).
const lightDegreeBound = 10

// goldenQuietBound and goldenLightMass are the constants of Definition
// 6.2: a round is golden for v when (a) ℓ(v) <= 1 and d(v) <= 0.02, or
// (b) the light-neighbor beeping mass exceeds 0.001.
const (
	goldenQuietBound = 0.02
	goldenLightMass  = 0.001
)

// Light reports whether v is light in this snapshot (Definition 6.1):
// μ_t(v) > 0 and (d_t(v) <= 10 or ℓ_t(v) <= 0). Light vertices have a
// constant probability of hearing silence, the stepping stone toward a
// platinum round.
func (s *State) Light(v int) bool {
	if s.Mu(v) <= 0 {
		return false
	}
	if s.levels[v] <= 0 {
		return true
	}
	return s.ExpectedBeepingNeighbors(v) <= lightDegreeBound
}

// LightBeepingMass returns d_t^L(v): the expected number of beeping
// *light* neighbors of v (Section 6.1).
func (s *State) LightBeepingMass(v int) float64 {
	mass := 0.0
	for _, u := range s.neighborsNested(v) {
		if s.Light(int(u)) {
			mass += s.BeepProbOf(int(u))
		}
	}
	return mass
}

// GoldenFor reports whether this snapshot is a golden round of v
// (Definition 6.2): either v sits at level <= 1 with expected beeping
// neighborhood at most 0.02, or the light-neighbor beeping mass exceeds
// 0.001. Golden rounds become platinum with constant probability
// (Lemma 6.7), which is how Lemma 3.5's waiting-time bound is proved.
func (s *State) GoldenFor(v int) bool {
	if s.levels[v] <= 1 && s.ExpectedBeepingNeighbors(v) <= goldenQuietBound {
		return true
	}
	return s.LightBeepingMass(v) > goldenLightMass
}

// CountClassified returns, in one pass, the sizes of the snapshot's
// vertex classes: prominent (|PM_t|), light, and the number of
// not-yet-stable vertices currently in a golden or platinum round —
// the proof's progress measures.
func (s *State) CountClassified() (prominent, light, golden, platinum int) {
	stable := s.StableMask()
	for v := 0; v < len(s.levels); v++ {
		if s.Prominent(v) {
			prominent++
		}
		if s.Light(v) {
			light++
		}
		if stable[v] {
			continue
		}
		if s.GoldenFor(v) {
			golden++
		}
		if s.PlatinumFor(v) {
			platinum++
		}
	}
	return prominent, light, golden, platinum
}
