package core

import (
	"fmt"

	"repro/internal/beep"
)

// StateCodec implementations for the core machines, enabling exact
// checkpoint/restore of executions (beep.Network.Checkpoint).

var (
	_ beep.StateCodec = (*alg1Machine)(nil)
	_ beep.StateCodec = (*alg2Machine)(nil)
	_ beep.StateCodec = (*adaptiveMachine)(nil)
)

// EncodeState serializes (level, ℓmax).
func (m *alg1Machine) EncodeState() []int64 {
	return []int64{int64(m.level), int64(m.lmax)}
}

// DecodeState restores (level, ℓmax), validating the range invariant.
func (m *alg1Machine) DecodeState(state []int64) error {
	if len(state) != 2 {
		return fmt.Errorf("core: alg1 state length %d, want 2", len(state))
	}
	level, lmax := int(state[0]), int(state[1])
	if lmax < 1 || level < -lmax || level > lmax {
		return fmt.Errorf("core: alg1 state (level=%d, ℓmax=%d) out of range", level, lmax)
	}
	m.level, m.lmax = int32(level), int32(lmax)
	return nil
}

// EncodeState serializes (level, ℓmax).
func (m *alg2Machine) EncodeState() []int64 {
	return []int64{int64(m.level), int64(m.lmax)}
}

// DecodeState restores (level, ℓmax), validating the range invariant.
func (m *alg2Machine) DecodeState(state []int64) error {
	if len(state) != 2 {
		return fmt.Errorf("core: alg2 state length %d, want 2", len(state))
	}
	level, lmax := int(state[0]), int(state[1])
	if lmax < 1 || level < 0 || level > lmax {
		return fmt.Errorf("core: alg2 state (level=%d, ℓmax=%d) out of range", level, lmax)
	}
	m.level, m.lmax = int32(level), int32(lmax)
	return nil
}

// EncodeState serializes (level, ℓmax, collisions, maxCap, threshold).
func (m *adaptiveMachine) EncodeState() []int64 {
	return []int64{int64(m.level), int64(m.lmax), int64(m.collisions), int64(m.maxCap), int64(m.threshold)}
}

// DecodeState restores the adaptive machine's full state.
func (m *adaptiveMachine) DecodeState(state []int64) error {
	if len(state) != 5 {
		return fmt.Errorf("core: adaptive state length %d, want 5", len(state))
	}
	level, lmax := int(state[0]), int(state[1])
	collisions, maxCap, threshold := int(state[2]), int(state[3]), int(state[4])
	if lmax < 1 || level < -lmax || level > lmax || maxCap < lmax || threshold < 1 || collisions < 0 {
		return fmt.Errorf("core: adaptive state %v inconsistent", state)
	}
	m.level, m.lmax = int32(level), int32(lmax)
	m.collisions, m.maxCap, m.threshold = collisions, maxCap, threshold
	return nil
}
