package core

import (
	"math/bits"

	"repro/internal/beep"
)

// This file implements the activity-gated kernel forms
// (beep.SparseFlatProtocol) for the three machine slabs. Each sparse
// kernel is the corresponding range kernel restricted to the slab
// words whose bit is set in an activity mask: word wi of the slab
// (vertices [wi*64, wi*64+64)) is visited iff bit wi of the mask is
// set, and the kernel reports back a same-shaped output mask of the
// words where it consumed randomness (emit) or moved state (update).
//
// Skipping an unmarked word is exact, not approximate: the engine only
// clears a word's activity bit when every vertex in it emitted
// deterministically (no draw) and kept its state last round, in which
// case this round's emit is the same deterministic function of the
// same state — Sent is already correct and no stream advances. The
// same argument makes update skipping an identity: an unmarked update
// word saw the identical (state, sent, heard) triple as the previous
// round, where the transition changed nothing. Because the vertices
// that draw are always a subset of the active words and both loops
// walk words and vertices in ascending order, the amortized batch
// sampler consumes trials in exactly the dense order too.
//
// The sparse forms run only on the fault-free path: the engine falls
// back to the dense kernels whenever a skip mask (sleepers,
// adversaries) or noise is in play, so env.Skip is nil here by
// contract.

var (
	_ beep.SparseFlatProtocol = (*alg1Slab)(nil)
	_ beep.SparseFlatProtocol = (*alg2Slab)(nil)
	_ beep.SparseFlatProtocol = (*adaptiveSlab)(nil)
)

// maskBits returns act[mi] clamped so that only bits naming slab words
// inside [wlo, whi] (inclusive word bounds) survive.
func maskBits(act []uint64, mi, wlo, whi int) uint64 {
	m := act[mi]
	if mi == wlo>>6 {
		m &= ^uint64(0) << uint(wlo&63)
	}
	if mi == whi>>6 {
		if r := whi & 63; r != 63 {
			m &= uint64(1)<<uint(r+1) - 1
		}
	}
	return m
}

// alg1EmitSparse is the Algorithm 1 emit rule over the active words of
// [lo, hi), shared with the adaptive heuristic via the state accessor.
func alg1EmitSparse[M any](env *beep.FlatEnv, ms []M, act, drewW []uint64, lo, hi int, state func(*M) *alg1Machine) {
	if hi <= lo {
		return
	}
	sent, srcs, sampler := env.Sent, env.Srcs, env.Sampler
	drew := false
	wlo, whi := lo>>6, (hi-1)>>6
	for mi := wlo >> 6; mi <= whi>>6; mi++ {
		m := maskBits(act, mi, wlo, whi)
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			wi := mi<<6 + b
			start, end := wi<<6, wi<<6+64
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			wordDrew := false
			for v := start; v < end; v++ {
				mm := state(&ms[v])
				lv := mm.level
				switch {
				case lv >= mm.lmax:
					sent[v] = beep.Silent
				case lv <= 0:
					sent[v] = beep.Chan1
				default:
					wordDrew = true
					var hit bool
					if sampler != nil {
						hit = sampler.Bernoulli2Pow(int(lv))
					} else {
						hit = srcs[v].Bernoulli2Pow(int(lv))
					}
					if hit {
						sent[v] = beep.Chan1
					} else {
						sent[v] = beep.Silent
					}
				}
			}
			if wordDrew {
				drewW[mi] |= uint64(1) << uint(b)
				drew = true
			}
		}
	}
	if drew {
		env.Drew = true
	}
}

// sparseUpdate applies a slab transition over the marked words of
// [lo, hi), recording per-word change bits.
func sparseUpdate[M any](env *beep.FlatEnv, ms []M, upd, changedW []uint64, lo, hi int, step func(*M, beep.Signal, beep.Signal) bool) {
	if hi <= lo {
		return
	}
	sent, heard := env.Sent, env.Heard
	changed := false
	wlo, whi := lo>>6, (hi-1)>>6
	for mi := wlo >> 6; mi <= whi>>6; mi++ {
		m := maskBits(upd, mi, wlo, whi)
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			wi := mi<<6 + b
			start, end := wi<<6, wi<<6+64
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			wordChanged := false
			for v := start; v < end; v++ {
				if step(&ms[v], sent[v], heard[v]) {
					wordChanged = true
				}
			}
			if wordChanged {
				changedW[mi] |= uint64(1) << uint(b)
				changed = true
			}
		}
	}
	if changed {
		env.Changed = true
	}
}

// EmitSparse implements beep.SparseFlatProtocol.
func (s *alg1Slab) EmitSparse(env *beep.FlatEnv, act, drewW []uint64, lo, hi int) {
	alg1EmitSparse(env, s.ms, act, drewW, lo, hi, func(m *alg1Machine) *alg1Machine { return m })
}

// UpdateSparse implements beep.SparseFlatProtocol.
func (s *alg1Slab) UpdateSparse(env *beep.FlatEnv, upd, changedW []uint64, lo, hi int) {
	sparseUpdate(env, s.ms, upd, changedW, lo, hi, alg1Step)
}

// EmitSparse implements beep.SparseFlatProtocol: beep₂ at ℓ = 0 (no
// randomness), beep₁ with probability 2^-ℓ while 0 < ℓ < ℓmax.
func (s *alg2Slab) EmitSparse(env *beep.FlatEnv, act, drewW []uint64, lo, hi int) {
	if hi <= lo {
		return
	}
	ms := s.ms
	sent, srcs, sampler := env.Sent, env.Srcs, env.Sampler
	drew := false
	wlo, whi := lo>>6, (hi-1)>>6
	for mi := wlo >> 6; mi <= whi>>6; mi++ {
		m := maskBits(act, mi, wlo, whi)
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			wi := mi<<6 + b
			start, end := wi<<6, wi<<6+64
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			wordDrew := false
			for v := start; v < end; v++ {
				lv := ms[v].level
				switch {
				case lv == 0:
					sent[v] = beep.Chan2
				case lv >= ms[v].lmax:
					sent[v] = beep.Silent
				default:
					wordDrew = true
					var hit bool
					if sampler != nil {
						hit = sampler.Bernoulli2Pow(int(lv))
					} else {
						hit = srcs[v].Bernoulli2Pow(int(lv))
					}
					if hit {
						sent[v] = beep.Chan1
					} else {
						sent[v] = beep.Silent
					}
				}
			}
			if wordDrew {
				drewW[mi] |= uint64(1) << uint(b)
				drew = true
			}
		}
	}
	if drew {
		env.Drew = true
	}
}

// UpdateSparse implements beep.SparseFlatProtocol.
func (s *alg2Slab) UpdateSparse(env *beep.FlatEnv, upd, changedW []uint64, lo, hi int) {
	sparseUpdate(env, s.ms, upd, changedW, lo, hi, alg2Step)
}

// EmitSparse implements beep.SparseFlatProtocol (Algorithm 1 emit rule,
// promoted unchanged by the adaptive heuristic).
func (s *adaptiveSlab) EmitSparse(env *beep.FlatEnv, act, drewW []uint64, lo, hi int) {
	alg1EmitSparse(env, s.ms, act, drewW, lo, hi, func(m *adaptiveMachine) *alg1Machine { return &m.alg1Machine })
}

// UpdateSparse implements beep.SparseFlatProtocol (the cap-doubling
// collision rule rides along in adaptiveStep, so a collision marks the
// word changed even when the level is pinned).
func (s *adaptiveSlab) UpdateSparse(env *beep.FlatEnv, upd, changedW []uint64, lo, hi int) {
	sparseUpdate(env, s.ms, upd, changedW, lo, hi, adaptiveStep)
}
