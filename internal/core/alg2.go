package core

import (
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Alg2 is Algorithm 2 of the paper: the variant for the beeping model
// with two distinguishable channels. Levels live in {0, …, ℓmax(v)};
// ℓ = 0 means "in the MIS" and is announced every round on channel 2,
// ℓ = ℓmax means "not in the MIS". Construct with NewAlg2.
type Alg2 struct {
	cap       LevelCap
	initLevel func(v int) int
}

var (
	_ beep.Protocol      = (*Alg2)(nil)
	_ beep.BatchProtocol = (*Alg2)(nil)
)

// NewAlg2 returns the two-channel protocol with the given knowledge
// variant (Corollary 2.3 uses NeighborhoodMaxDegree).
func NewAlg2(cap LevelCap) *Alg2 {
	return &Alg2{cap: cap}
}

// WithInitialLevels sets a deterministic initial level per vertex,
// clamped to {0, …, ℓmax(v)}. It returns the receiver for chaining.
func (p *Alg2) WithInitialLevels(fn func(v int) int) *Alg2 {
	p.initLevel = fn
	return p
}

// Channels reports that Algorithm 2 uses two beeping channels.
func (p *Alg2) Channels() int { return 2 }

// NewMachine builds the vertex machine with ℓmax(v) from the knowledge
// variant.
func (p *Alg2) NewMachine(v int, g graph.Topology) beep.Machine {
	m := &alg2Machine{}
	p.initMachine(m, v, g)
	return m
}

// initMachine installs ℓmax(v) and the initial level, shared by the
// per-vertex and batch construction paths.
func (p *Alg2) initMachine(m *alg2Machine, v int, g graph.Topology) {
	m.lmax = int32(p.cap(v, g))
	if m.lmax < 1 {
		m.lmax = 1
	}
	if p.initLevel != nil {
		m.SetLevel(p.initLevel(v))
	} else {
		m.level = m.lmax
	}
}

// NewMachines builds the whole cohort at once (beep.BatchProtocol); see
// Alg1.NewMachines. The slab is the bulk-state handle implementing
// LevelExporter with Algorithm 2 (two-channel) semantics.
func (p *Alg2) NewMachines(g graph.Topology) ([]beep.Machine, any) {
	n := g.N()
	slab := &alg2Slab{p: p, ms: make([]alg2Machine, n)}
	ms := make([]beep.Machine, n)
	for v := 0; v < n; v++ {
		m := &slab.ms[v]
		p.initMachine(m, v, g)
		ms[v] = m
	}
	return ms, slab
}

// alg2Slab is the contiguous machine storage of one Algorithm 2 network
// and its bulk level accessor. It keeps the protocol it was built by so
// the cohort can be re-initialized in place (beep.FlatReiniter).
type alg2Slab struct {
	p  *Alg2
	ms []alg2Machine
	// shadow is the quiescence snapshot buffer (see flat.go).
	shadow []alg2Machine
}

var _ LevelExporter = (*alg2Slab)(nil)

// ExportLevels copies every machine's (ℓ, ℓmax) into the destination
// slices in one pass over the contiguous slab.
// A nil caps skips the ℓmax export (the caller has already captured the
// immutable caps).
func (s *alg2Slab) ExportLevels(levels, caps []int32) {
	if caps == nil {
		for i := range s.ms {
			levels[i] = s.ms[i].level
		}
		return
	}
	for i := range s.ms {
		levels[i] = s.ms[i].level
		caps[i] = s.ms[i].lmax
	}
}

// MutableCaps reports that Algorithm 2 caps are fixed at construction.
func (s *alg2Slab) MutableCaps() bool { return false }

// TwoChannel reports two-channel (Algorithm 2) semantics.
func (s *alg2Slab) TwoChannel() bool { return true }

// alg2Machine is the per-vertex state of Algorithm 2: a level in
// {0, …, ℓmax}. As for Algorithm 1, int32 fields pack a slab of
// machines 8 bytes per vertex.
type alg2Machine struct {
	level int32
	lmax  int32
}

var _ Leveled = (*alg2Machine)(nil)

// Emit transmits beep₁ with probability 2^-ℓ while 0 < ℓ < ℓmax, and
// beep₂ (the MIS announcement) whenever ℓ = 0. The two conditions are
// disjoint, so at most one channel is used per round.
func (m *alg2Machine) Emit(src *rng.Source) beep.Signal {
	if m.level == 0 {
		return beep.Chan2
	}
	if m.level < m.lmax && src.Bernoulli2Pow(int(m.level)) {
		return beep.Chan1
	}
	return beep.Silent
}

// Update applies the transition of Algorithm 2, in priority order:
//
//	heard beep₂            → ℓ ← ℓmax      (an MIS neighbor exists)
//	heard beep₁            → ℓ ← min{ℓ+1, ℓmax}
//	sent beep₁, heard none → ℓ ← 0          (join the MIS)
//	silent, not in MIS     → ℓ ← max{ℓ-1, 1}
//
// A vertex that sent beep₂ and heard nothing keeps ℓ = 0.
func (m *alg2Machine) Update(sent, heard beep.Signal) {
	switch {
	case heard.Has(beep.Chan2):
		m.level = m.lmax
	case heard.Has(beep.Chan1):
		if m.level+1 < m.lmax {
			m.level++
		} else {
			m.level = m.lmax
		}
	case sent.Has(beep.Chan1):
		m.level = 0
	case !sent.Has(beep.Chan2):
		if m.level-1 > 1 {
			m.level--
		} else {
			m.level = 1
		}
	}
}

// Randomize draws a uniform level from {0, …, ℓmax}.
func (m *alg2Machine) Randomize(src *rng.Source) {
	m.level = int32(src.Intn(int(m.lmax + 1)))
}

// Level returns ℓ_t(v).
func (m *alg2Machine) Level() int { return int(m.level) }

// Cap returns ℓmax(v).
func (m *alg2Machine) Cap() int { return int(m.lmax) }

// SetLevel clamps l into {0, …, ℓmax} and installs it.
func (m *alg2Machine) SetLevel(l int) {
	if l < 0 {
		l = 0
	}
	if l > int(m.lmax) {
		l = int(m.lmax)
	}
	m.level = int32(l)
}
