package core

import (
	"repro/internal/beep"
	"repro/internal/graph"
)

// This file implements the flat-engine kernels (beep.FlatProtocol),
// in-place re-initialization (beep.FlatReiniter) and quiescence
// snapshots (beep.FlatQuiescer) for the three machine slabs. Each
// kernel is the loop body of the corresponding Machine.Emit/Update
// inlined over the contiguous slab, with the per-vertex interface
// dispatch and pointer chase removed; on the exact path (env.Sampler ==
// nil) every vertex consumes precisely the draws its machine would
// have, so flat executions are bit-identical to the reference engines
// (pinned by TestEngineTraceEquivalence and
// FuzzFlatEmitDrawEquivalence).
//
// Each kernel has two loop variants: a fast one for the common case of
// no skip mask and no batch sampler (no per-vertex mask probe, direct
// stream access), and a general one handling sleeping/adversarial
// vertices (whose Sent entries the engine pre-filled and whose state
// must not move) and the amortized sampler. Both maintain the
// env.Drew / env.Changed fixed-point flags that drive the engine's
// quiescence elision.

var (
	_ beep.FlatProtocol = (*alg1Slab)(nil)
	_ beep.FlatReiniter = (*alg1Slab)(nil)
	_ beep.FlatQuiescer = (*alg1Slab)(nil)
	_ beep.FlatProtocol = (*alg2Slab)(nil)
	_ beep.FlatReiniter = (*alg2Slab)(nil)
	_ beep.FlatQuiescer = (*alg2Slab)(nil)
	_ beep.FlatProtocol = (*adaptiveSlab)(nil)
	_ beep.FlatReiniter = (*adaptiveSlab)(nil)
	_ beep.FlatQuiescer = (*adaptiveSlab)(nil)
)

// flatBern draws one Bernoulli(2^-l) trial for vertex v from whichever
// source the environment configured: the amortized batch sampler when
// present, the vertex's private stream otherwise. l <= 0 succeeds
// without consuming randomness on either path (and therefore without
// setting env.Drew).
func flatBern(env *beep.FlatEnv, v int, l int32) bool {
	if l <= 0 {
		return true
	}
	env.Drew = true
	if env.Sampler != nil {
		return env.Sampler.Bernoulli2Pow(int(l))
	}
	return env.Srcs[v].Bernoulli2Pow(int(l))
}

// --- Algorithm 1 ---

// alg1EmitRange is alg1Machine.Emit over the [lo, hi) stripe of a slab
// of Algorithm 1 states (shared verbatim by the adaptive heuristic,
// which promotes the emit rule unchanged): beep with probability
// min{2^-ℓ, 1} while ℓ < ℓmax. Vertices at ℓ ≤ 0 beep surely and, like
// the per-machine path, consume no randomness — in a stabilized
// configuration (MIS members at -ℓmax, the rest at ℓmax) the whole loop
// makes zero generator calls. The stripe touches only Sent[lo:hi) and
// the streams of vertices in [lo, hi), the write-disjointness contract
// of beep.FlatProtocol's range forms.
func alg1EmitRange[M any](env *beep.FlatEnv, ms []M, lo, hi int, state func(*M) *alg1Machine) {
	sent := env.Sent
	if env.Skip == nil && env.Sampler == nil {
		srcs := env.Srcs
		drew := false
		for v := lo; v < hi; v++ {
			m := state(&ms[v])
			lv := m.level
			switch {
			case lv >= m.lmax:
				sent[v] = beep.Silent
			case lv <= 0:
				sent[v] = beep.Chan1
			default:
				drew = true
				if srcs[v].Bernoulli2Pow(int(lv)) {
					sent[v] = beep.Chan1
				} else {
					sent[v] = beep.Silent
				}
			}
		}
		if drew {
			env.Drew = true
		}
		return
	}
	for v := lo; v < hi; v++ {
		if env.Skipped(v) {
			continue
		}
		m := state(&ms[v])
		if m.level < m.lmax && flatBern(env, v, m.level) {
			sent[v] = beep.Chan1
		} else {
			sent[v] = beep.Silent
		}
	}
}

// EmitAll implements beep.FlatProtocol.
func (s *alg1Slab) EmitAll(env *beep.FlatEnv) { s.EmitRange(env, 0, len(s.ms)) }

// EmitRange implements beep.FlatProtocol ([lo, hi) stripe of EmitAll).
func (s *alg1Slab) EmitRange(env *beep.FlatEnv, lo, hi int) {
	alg1EmitRange(env, s.ms, lo, hi, func(m *alg1Machine) *alg1Machine { return m })
}

// alg1Step is the Algorithm 1 level transition (alg1Machine.Update) on
// a slab entry, reporting whether the level moved.
func alg1Step(m *alg1Machine, sent, heard beep.Signal) bool {
	lv := m.level
	var nl int32
	switch {
	case heard&beep.Chan1 != 0:
		nl = lv + 1
		if nl > m.lmax {
			nl = m.lmax
		}
	case sent&beep.Chan1 != 0:
		nl = -m.lmax
	default:
		nl = lv - 1
		if nl < 1 {
			nl = 1
		}
	}
	m.level = nl
	return nl != lv
}

// UpdateAll is alg1Machine.Update over the slab.
func (s *alg1Slab) UpdateAll(env *beep.FlatEnv) { s.UpdateRange(env, 0, len(s.ms)) }

// UpdateRange is the [lo, hi) stripe of UpdateAll (beep.FlatProtocol).
func (s *alg1Slab) UpdateRange(env *beep.FlatEnv, lo, hi int) {
	ms := s.ms
	sent, heard := env.Sent, env.Heard
	changed := false
	if env.Skip == nil {
		for v := lo; v < hi; v++ {
			if alg1Step(&ms[v], sent[v], heard[v]) {
				changed = true
			}
		}
	} else {
		for v := lo; v < hi; v++ {
			if env.Skipped(v) {
				continue
			}
			if alg1Step(&ms[v], sent[v], heard[v]) {
				changed = true
			}
		}
	}
	if changed {
		env.Changed = true
	}
}

// ReinitAll restores every machine to its construction-time state for
// g, exactly as NewMachines would have built it (beep.FlatReiniter).
func (s *alg1Slab) ReinitAll(g graph.Topology) {
	for v := range s.ms {
		s.p.initMachine(&s.ms[v], v, g)
	}
}

// SnapshotState records the full machine state for quiescence elision
// (beep.FlatQuiescer).
func (s *alg1Slab) SnapshotState() { s.shadow = snapshotSlab(s.shadow, s.ms) }

// StateUnchanged reports whether the state matches the last snapshot.
func (s *alg1Slab) StateUnchanged() bool { return slabEqual(s.shadow, s.ms) }

// --- Algorithm 2 ---

// EmitAll is alg2Machine.Emit over the slab: beep₂ at ℓ = 0 (the MIS
// announcement, no randomness), beep₁ with probability 2^-ℓ while
// 0 < ℓ < ℓmax.
func (s *alg2Slab) EmitAll(env *beep.FlatEnv) { s.EmitRange(env, 0, len(s.ms)) }

// EmitRange is the [lo, hi) stripe of EmitAll (beep.FlatProtocol).
func (s *alg2Slab) EmitRange(env *beep.FlatEnv, lo, hi int) {
	ms := s.ms
	sent := env.Sent
	if env.Skip == nil && env.Sampler == nil {
		srcs := env.Srcs
		drew := false
		for v := lo; v < hi; v++ {
			lv := ms[v].level
			switch {
			case lv == 0:
				sent[v] = beep.Chan2
			case lv >= ms[v].lmax:
				sent[v] = beep.Silent
			default:
				drew = true
				if srcs[v].Bernoulli2Pow(int(lv)) {
					sent[v] = beep.Chan1
				} else {
					sent[v] = beep.Silent
				}
			}
		}
		if drew {
			env.Drew = true
		}
		return
	}
	for v := lo; v < hi; v++ {
		if env.Skipped(v) {
			continue
		}
		lv, lmax := ms[v].level, ms[v].lmax
		switch {
		case lv == 0:
			sent[v] = beep.Chan2
		case lv < lmax && flatBern(env, v, lv):
			sent[v] = beep.Chan1
		default:
			sent[v] = beep.Silent
		}
	}
}

// alg2Step is the Algorithm 2 level transition (alg2Machine.Update) on
// a slab entry, reporting whether the level moved.
func alg2Step(m *alg2Machine, sent, heard beep.Signal) bool {
	lv := m.level
	nl := lv
	switch {
	case heard&beep.Chan2 != 0:
		nl = m.lmax
	case heard&beep.Chan1 != 0:
		nl = lv + 1
		if nl > m.lmax {
			nl = m.lmax
		}
	case sent&beep.Chan1 != 0:
		nl = 0
	case sent&beep.Chan2 == 0:
		nl = lv - 1
		if nl < 1 {
			nl = 1
		}
	}
	m.level = nl
	return nl != lv
}

// UpdateAll is alg2Machine.Update over the slab.
func (s *alg2Slab) UpdateAll(env *beep.FlatEnv) { s.UpdateRange(env, 0, len(s.ms)) }

// UpdateRange is the [lo, hi) stripe of UpdateAll (beep.FlatProtocol).
func (s *alg2Slab) UpdateRange(env *beep.FlatEnv, lo, hi int) {
	ms := s.ms
	sent, heard := env.Sent, env.Heard
	changed := false
	if env.Skip == nil {
		for v := lo; v < hi; v++ {
			if alg2Step(&ms[v], sent[v], heard[v]) {
				changed = true
			}
		}
	} else {
		for v := lo; v < hi; v++ {
			if env.Skipped(v) {
				continue
			}
			if alg2Step(&ms[v], sent[v], heard[v]) {
				changed = true
			}
		}
	}
	if changed {
		env.Changed = true
	}
}

// ReinitAll restores every machine to its construction-time state for
// g (beep.FlatReiniter).
func (s *alg2Slab) ReinitAll(g graph.Topology) {
	for v := range s.ms {
		s.p.initMachine(&s.ms[v], v, g)
	}
}

// SnapshotState records the full machine state for quiescence elision
// (beep.FlatQuiescer).
func (s *alg2Slab) SnapshotState() { s.shadow = snapshotSlab(s.shadow, s.ms) }

// StateUnchanged reports whether the state matches the last snapshot.
func (s *alg2Slab) StateUnchanged() bool { return slabEqual(s.shadow, s.ms) }

// --- Adaptive heuristic ---

// EmitAll is the Algorithm 1 emit rule over the adaptive slab
// (adaptiveMachine promotes alg1Machine.Emit unchanged).
func (s *adaptiveSlab) EmitAll(env *beep.FlatEnv) { s.EmitRange(env, 0, len(s.ms)) }

// EmitRange is the [lo, hi) stripe of EmitAll (beep.FlatProtocol).
func (s *adaptiveSlab) EmitRange(env *beep.FlatEnv, lo, hi int) {
	alg1EmitRange(env, s.ms, lo, hi, func(m *adaptiveMachine) *alg1Machine { return &m.alg1Machine })
}

// adaptiveStep is adaptiveMachine.Update on a slab entry: the Algorithm
// 1 transition followed by the collision-driven cap doubling. It
// reports whether any state (level, cap, or collision counter) moved —
// a collision always moves the counter or the cap.
func adaptiveStep(m *adaptiveMachine, sent, heard beep.Signal) bool {
	collided := sent&beep.Chan1 != 0 && heard&beep.Chan1 != 0
	changed := alg1Step(&m.alg1Machine, sent, heard)
	if !collided {
		return changed
	}
	m.collisions++
	if m.collisions >= m.threshold {
		m.collisions = 0
		newCap := 2 * int(m.lmax)
		if newCap > m.maxCap {
			newCap = m.maxCap
		}
		m.lmax = int32(newCap)
	}
	return true
}

// UpdateAll is adaptiveMachine.Update over the slab.
func (s *adaptiveSlab) UpdateAll(env *beep.FlatEnv) { s.UpdateRange(env, 0, len(s.ms)) }

// UpdateRange is the [lo, hi) stripe of UpdateAll (beep.FlatProtocol).
func (s *adaptiveSlab) UpdateRange(env *beep.FlatEnv, lo, hi int) {
	ms := s.ms
	sent, heard := env.Sent, env.Heard
	changed := false
	if env.Skip == nil {
		for v := lo; v < hi; v++ {
			if adaptiveStep(&ms[v], sent[v], heard[v]) {
				changed = true
			}
		}
	} else {
		for v := lo; v < hi; v++ {
			if env.Skipped(v) {
				continue
			}
			if adaptiveStep(&ms[v], sent[v], heard[v]) {
				changed = true
			}
		}
	}
	if changed {
		env.Changed = true
	}
}

// ReinitAll restores every machine to its construction-time state
// (beep.FlatReiniter; the adaptive machines carry no per-vertex
// topology knowledge, so g is unused beyond the interface contract).
func (s *adaptiveSlab) ReinitAll(graph.Topology) {
	for v := range s.ms {
		s.p.initMachine(&s.ms[v])
	}
}

// SnapshotState records the full machine state — including the mutable
// caps and collision counters — for quiescence elision
// (beep.FlatQuiescer).
func (s *adaptiveSlab) SnapshotState() { s.shadow = snapshotSlab(s.shadow, s.ms) }

// StateUnchanged reports whether the state matches the last snapshot.
func (s *adaptiveSlab) StateUnchanged() bool { return slabEqual(s.shadow, s.ms) }

// snapshotSlab copies src into the reusable shadow buffer.
func snapshotSlab[M any](shadow, src []M) []M {
	if cap(shadow) < len(src) {
		shadow = make([]M, len(src))
	}
	shadow = shadow[:len(src)]
	copy(shadow, src)
	return shadow
}

// slabEqual reports element-wise equality; a shadow of the wrong length
// (never snapshotted, or the cohort was resized by Rewire) never
// matches. Machine structs are comparable by design — all fields are
// plain integers — so this compares the complete mutable state.
func slabEqual[M comparable](shadow, ms []M) bool {
	if len(shadow) != len(ms) {
		return false
	}
	for i := range ms {
		if ms[i] != shadow[i] {
			return false
		}
	}
	return true
}
