package core

import (
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// AdaptiveAlg1 is an experimental heuristic for the paper's open
// question (Section 8): can the topology knowledge be removed entirely?
// Vertices start with a small level cap and grow it by doubling when
// they observe evidence that their cap is too small, instead of being
// told ℓmax(v).
//
// The evidence signal is a *collision*: the vertex beeped and heard a
// beep in the same round. When ℓmax(v) is below ~log₂(deg(v)), the
// beeping-probability floor 2^-ℓmax keeps the expected number of
// beeping neighbors above a constant, so collisions recur persistently;
// above the threshold they become rare. After collisionThreshold
// collisions a vertex doubles its cap (clamping its level), up to
// MaxCap.
//
// Two properties make the heuristic compatible with self-stabilization:
//
//   - Legal configurations see no collisions (MIS members beep alone;
//     everyone else is silent), so caps freeze and closure is preserved.
//   - Caps only grow, so once every vertex's cap clears the
//     log₂(deg)+4 threshold of the lemmas, the standard analysis
//     applies to the remaining execution.
//
// This is NOT one of the paper's algorithms and carries no w.h.p.
// guarantee: it is the repository's empirical contribution to the open
// problem, evaluated in experiment E10. Its stabilization detection
// must use the same Leveled interface, which it implements.
type AdaptiveAlg1 struct {
	// InitialCap is the starting ℓmax (default 4, the smallest value
	// satisfying the lemma precondition for isolated vertices).
	InitialCap int
	// MaxCap bounds the doubling (default 64, enough for any graph a
	// simulator can hold).
	MaxCap int
	// CollisionThreshold is the number of collisions that triggers a
	// doubling (default 8).
	CollisionThreshold int
}

var (
	_ beep.Protocol      = AdaptiveAlg1{}
	_ beep.BatchProtocol = AdaptiveAlg1{}
)

// NewAdaptiveAlg1 returns the heuristic with default parameters.
func NewAdaptiveAlg1() AdaptiveAlg1 {
	return AdaptiveAlg1{InitialCap: 4, MaxCap: 64, CollisionThreshold: 8}
}

// Channels reports the single beeping channel.
func (AdaptiveAlg1) Channels() int { return 1 }

// NewMachine builds a machine with no topology knowledge at all.
func (p AdaptiveAlg1) NewMachine(int, graph.Topology) beep.Machine {
	m := &adaptiveMachine{}
	p.initMachine(m)
	return m
}

// initMachine applies the defaulted parameters, shared by the
// per-vertex and batch construction paths.
func (p AdaptiveAlg1) initMachine(m *adaptiveMachine) {
	initial := p.InitialCap
	if initial < 1 {
		initial = 4
	}
	maxCap := p.MaxCap
	if maxCap < initial {
		maxCap = initial
	}
	threshold := p.CollisionThreshold
	if threshold < 1 {
		threshold = 8
	}
	*m = adaptiveMachine{
		alg1Machine: alg1Machine{level: int32(initial), lmax: int32(initial)},
		maxCap:      maxCap,
		threshold:   threshold,
	}
}

// NewMachines builds the whole cohort at once (beep.BatchProtocol) with
// a contiguous slab exposing the bulk level accessor, so experiment E10
// rides the same fast detector path as the paper's algorithms. Note the
// adaptive caps are mutable state, which is why ExportLevels re-reads
// both ℓ and ℓmax every call.
func (p AdaptiveAlg1) NewMachines(g graph.Topology) ([]beep.Machine, any) {
	n := g.N()
	slab := &adaptiveSlab{p: p, ms: make([]adaptiveMachine, n)}
	ms := make([]beep.Machine, n)
	for v := 0; v < n; v++ {
		m := &slab.ms[v]
		p.initMachine(m)
		ms[v] = m
	}
	return ms, slab
}

// adaptiveSlab is the contiguous machine storage of one adaptive
// network and its bulk level accessor. It keeps the protocol it was
// built by so the cohort can be re-initialized in place
// (beep.FlatReiniter).
type adaptiveSlab struct {
	p  AdaptiveAlg1
	ms []adaptiveMachine
	// shadow is the quiescence snapshot buffer (see flat.go).
	shadow []adaptiveMachine
}

var _ LevelExporter = (*adaptiveSlab)(nil)

// ExportLevels copies every machine's (ℓ, ℓmax) into the destination
// slices in one pass over the contiguous slab.
// caps is never nil here: MutableCaps is true, so callers must always
// re-export the caps.
func (s *adaptiveSlab) ExportLevels(levels, caps []int32) {
	for i := range s.ms {
		levels[i] = s.ms[i].level
		caps[i] = s.ms[i].lmax
	}
}

// MutableCaps reports that the adaptive heuristic grows ℓmax during the
// execution, so caps must be re-exported and re-diffed every round.
func (s *adaptiveSlab) MutableCaps() bool { return true }

// TwoChannel reports single-channel (Algorithm 1) semantics.
func (s *adaptiveSlab) TwoChannel() bool { return false }

// adaptiveMachine extends the Algorithm 1 state with the cap-growth
// counter. It reuses the level dynamics verbatim and adds only the
// collision rule.
type adaptiveMachine struct {
	alg1Machine
	collisions int
	maxCap     int
	threshold  int
}

var _ Leveled = (*adaptiveMachine)(nil)

// Update applies the Algorithm 1 transition, then the cap-growth rule.
func (m *adaptiveMachine) Update(sent, heard beep.Signal) {
	collided := sent.Has(beep.Chan1) && heard.Has(beep.Chan1)
	m.alg1Machine.Update(sent, heard)
	if !collided {
		return
	}
	m.collisions++
	if m.collisions < m.threshold {
		return
	}
	m.collisions = 0
	newCap := 2 * int(m.lmax)
	if newCap > m.maxCap {
		newCap = m.maxCap
	}
	m.lmax = int32(newCap)
	// Levels stay valid under a growing cap; nothing to clamp.
}

// Randomize draws an arbitrary state of the extended space: cap,
// level, and collision counter are all corruptible RAM.
func (m *adaptiveMachine) Randomize(src *rng.Source) {
	// A uniform cap among the reachable doublings.
	caps := []int{}
	for c := 4; c <= m.maxCap; c *= 2 {
		caps = append(caps, c)
	}
	if len(caps) == 0 {
		caps = []int{m.maxCap}
	}
	m.lmax = int32(caps[src.Intn(len(caps))])
	m.level = int32(src.Intn(int(2*m.lmax+1))) - m.lmax
	m.collisions = src.Intn(m.threshold)
}
