package core

import (
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// FuzzFlatEmitDrawEquivalence fuzzes the contract that makes the flat
// kernels trace-exact: for an arbitrary level configuration, EmitAll on
// the exact path (no batched sampler) must produce the same signals AND
// consume each vertex's private stream exactly as the per-machine Emit
// would — the same number of draws in the same order. The draw-sequence
// part is checked by comparing the next word of every stream after the
// pass: a kernel that short-circuits a draw (or adds one) desynchronizes
// the stream and fails here even when this round's signals happen to
// match.
func FuzzFlatEmitDrawEquivalence(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 250, 7, 130})
	f.Add(uint64(99), []byte{128, 128, 128})
	f.Add(uint64(7), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) < 3 {
			return
		}
		if len(data) > 128 {
			data = data[:128]
		}
		n := len(data)
		g := graph.Cycle(n)
		protos := []beep.Protocol{
			NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)),
			NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop)),
			NewAdaptiveAlg1(),
		}
		for pi, proto := range protos {
			bp := proto.(beep.BatchProtocol)
			kernelMs, bulk := bp.NewMachines(g)
			refMs, _ := bp.NewMachines(g)
			ops, ok := bulk.(beep.FlatProtocol)
			if !ok {
				t.Fatalf("proto %d: bulk %T has no flat kernels", pi, bulk)
			}
			// Install the fuzzed levels on both cohorts (SetLevel clamps
			// into each machine's valid space).
			for v := 0; v < n; v++ {
				l := int(int8(data[v]))
				kernelMs[v].(Leveled).SetLevel(l)
				refMs[v].(Leveled).SetLevel(l)
			}
			// Two identically derived stream families.
			rootK, rootR := rng.New(seed), rng.New(seed)
			srcsK := make([]*rng.Source, n)
			srcsR := make([]*rng.Source, n)
			for v := 0; v < n; v++ {
				srcsK[v] = rootK.Split(uint64(v))
				srcsR[v] = rootR.Split(uint64(v))
			}
			env := &beep.FlatEnv{
				Sent:  make([]beep.Signal, n),
				Heard: make([]beep.Signal, n),
				Srcs:  srcsK,
			}
			ops.EmitAll(env)
			drew := false
			for v := 0; v < n; v++ {
				want := refMs[v].Emit(srcsR[v])
				if env.Sent[v] != want {
					t.Fatalf("proto %d vertex %d: kernel emitted %v, machine %v (level %d)",
						pi, v, env.Sent[v], want, int(int8(data[v])))
				}
			}
			// Draw-sequence equivalence: every stream must sit at the
			// same position after the pass.
			for v := 0; v < n; v++ {
				k, r := srcsK[v].Uint64(), srcsR[v].Uint64()
				if k != r {
					t.Fatalf("proto %d vertex %d: stream desynchronized after emit (kernel next=%#x, machine next=%#x)",
						pi, v, k, r)
				}
				if k != rng.New(seed).Split(uint64(v)).Uint64() {
					drew = true // at least this stream advanced
				}
			}
			if drew && !env.Drew {
				t.Fatalf("proto %d: kernel consumed randomness but left env.Drew unset (breaks quiescence elision)", pi)
			}

			// Update equivalence on a fuzzed heard pattern: the kernels
			// must apply the same transitions the machines do.
			heard := make([]beep.Signal, n)
			for v := 0; v < n; v++ {
				heard[v] = beep.Signal(data[(v+1)%n] & 3)
			}
			copy(env.Heard, heard)
			ops.UpdateAll(env)
			for v := 0; v < n; v++ {
				refMs[v].Update(env.Sent[v], heard[v])
				got := kernelMs[v].(Leveled).Level()
				want := refMs[v].(Leveled).Level()
				if got != want {
					t.Fatalf("proto %d vertex %d: kernel level %d, machine level %d after update", pi, v, got, want)
				}
			}
		}
	})
}
