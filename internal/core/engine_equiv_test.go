package core

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// engineEquivTrace is one engine's observable execution record: the
// (sent, heard) signal pair of every vertex in every round, plus the
// round at which the incremental detector first reported stabilization.
type engineEquivTrace struct {
	sent       [][]beep.Signal
	heard      [][]beep.Signal
	stabilized int // -1: never within the budget
}

// runEngineTrace executes proto on g under the given engine from the
// randomized initial configuration determined by seed, recording the
// full signal trace until stabilization (or maxRounds).
func runEngineTrace(t *testing.T, g graph.Topology, proto beep.Protocol, seed uint64, engine beep.Engine, maxRounds int, opts ...beep.Option) engineEquivTrace {
	t.Helper()
	tr := engineEquivTrace{stabilized: -1}
	opts = append([]beep.Option{
		beep.WithEngine(engine),
		beep.WithObserver(func(_ int, sent, heard []beep.Signal) {
			s := make([]beep.Signal, len(sent))
			h := make([]beep.Signal, len(heard))
			copy(s, sent)
			copy(h, heard)
			tr.sent = append(tr.sent, s)
			tr.heard = append(tr.heard, h)
		})}, opts...)
	net, err := beep.NewNetwork(g, proto, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	var probe State
	for r := 0; r < maxRounds; r++ {
		net.Step()
		if err := probe.Refresh(net); err != nil {
			t.Fatal(err)
		}
		if probe.Stabilized() {
			tr.stabilized = net.Round()
			return tr
		}
	}
	return tr
}

// TestEngineTraceEquivalence asserts the engine contract end to end on
// the paper's protocols: all five engines — Sequential (which silently
// upgrades to the flat kernels), Parallel, PerVertex, Flat and
// FlatParallel (at several explicit worker counts) — produce
// bit-identical (sent, heard) traces and the same stabilization round
// for a fixed seed, across graph families with distinct degree
// profiles. The reference is Sequential with the flat kernels forced
// OFF (the plain per-machine interface loop), so the comparison also
// certifies the kernels against the reference semantics. Run with -race
// this exercises the worker-pool barrier under the sharded, the
// goroutine-per-vertex and the sharded-kernel engines.
func TestEngineTraceEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(33)},
		{"cycle", graph.Cycle(32)},
		{"complete", graph.Complete(12)},
		{"grid", graph.Grid(6, 6)},
		{"gnp", graph.GNPAvgDegree(48, 5, rng.New(404))},
		{"star", graph.Star(21)},
	}
	protos := []struct {
		name  string
		proto beep.Protocol
	}{
		{"alg1", NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))},
		{"alg2", NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop))},
		{"adaptive", NewAdaptiveAlg1()},
	}
	engines := []struct {
		name   string
		engine beep.Engine
		opts   []beep.Option
	}{
		{"sequential+kernels", beep.Sequential, nil},
		{"parallel", beep.Parallel, nil},
		{"pervertex", beep.PerVertex, nil},
		{"flat", beep.Flat, nil},
		{"flatparallel", beep.FlatParallel, nil},
		// Explicit worker counts: the trace must be invariant in the
		// stripe partition, including the degenerate single-worker pool
		// and a count that exceeds some of the family sizes.
		{"flatparallel-w1", beep.FlatParallel, []beep.Option{beep.WithWorkers(1)}},
		{"flatparallel-w3", beep.FlatParallel, []beep.Option{beep.WithWorkers(3)}},
		{"flatparallel-w8", beep.FlatParallel, []beep.Option{beep.WithWorkers(8)}},
		// Sparse-path pins: forced delta delivery (SparseOn) and the
		// legacy dense path (SparseOff) must both match the reference
		// bit for bit — the default engines above already run
		// SparseAuto, so together the three modes are covered.
		{"flat-sparse-on", beep.Flat, []beep.Option{beep.WithSparse(beep.SparseOn)}},
		{"flat-sparse-off", beep.Flat, []beep.Option{beep.WithSparse(beep.SparseOff)}},
		{"flatparallel-sparse-on", beep.FlatParallel, []beep.Option{beep.WithSparse(beep.SparseOn)}},
		{"flatparallel-w3-sparse-on", beep.FlatParallel, []beep.Option{beep.WithWorkers(3), beep.WithSparse(beep.SparseOn)}},
	}
	const seed, maxRounds = 90210, 20000
	for _, fam := range families {
		for _, p := range protos {
			t.Run(fmt.Sprintf("%s/%s", fam.name, p.name), func(t *testing.T) {
				// Reference: the plain interface loop, kernels disabled.
				ref := runEngineTrace(t, fam.g, p.proto, seed, beep.Sequential, maxRounds, beep.WithFlatKernels(false))
				if ref.stabilized < 0 {
					t.Fatalf("reference run did not stabilize within %d rounds", maxRounds)
				}
				for _, e := range engines {
					got := runEngineTrace(t, fam.g, p.proto, seed, e.engine, maxRounds, e.opts...)
					if got.stabilized != ref.stabilized {
						t.Fatalf("engine %s stabilized at round %d, reference at %d", e.name, got.stabilized, ref.stabilized)
					}
					if len(got.sent) != len(ref.sent) {
						t.Fatalf("engine %s recorded %d rounds, reference %d", e.name, len(got.sent), len(ref.sent))
					}
					for r := range ref.sent {
						for v := range ref.sent[r] {
							if got.sent[r][v] != ref.sent[r][v] {
								t.Fatalf("engine %s: sent diverged at round %d vertex %d: %v vs %v",
									e.name, r+1, v, got.sent[r][v], ref.sent[r][v])
							}
							if got.heard[r][v] != ref.heard[r][v] {
								t.Fatalf("engine %s: heard diverged at round %d vertex %d: %v vs %v",
									e.name, r+1, v, got.heard[r][v], ref.heard[r][v])
							}
						}
					}
				}
			})
		}
	}
}

// TestIncrementalDetectorMatchesFullRecompute cross-validates the
// dirty-set detector against an independent from-scratch recompute on
// every round of a full execution, including rounds with injected
// faults (which produce large dirty sets) and the quiet rounds after
// stabilization (empty dirty sets).
func TestIncrementalDetectorMatchesFullRecompute(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(40)},
		{"grid", graph.Grid(7, 7)},
		{"gnp", graph.GNPAvgDegree(64, 6, rng.New(7))},
		{"complete", graph.Complete(10)},
	}
	protos := []struct {
		name  string
		proto beep.Protocol
	}{
		{"alg1", NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))},
		{"alg2", NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop))},
		{"adaptive", NewAdaptiveAlg1()},
	}
	for _, fam := range families {
		for _, p := range protos {
			t.Run(fmt.Sprintf("%s/%s", fam.name, p.name), func(t *testing.T) {
				net, err := beep.NewNetwork(fam.g, p.proto, 5150)
				if err != nil {
					t.Fatal(err)
				}
				defer net.Close()
				net.RandomizeAll()
				faultSrc := rng.New(99)
				var inc State // incremental: one probe reused every round
				quiet := 0
				for r := 0; r < 3000 && quiet < 25; r++ {
					net.Step()
					if err := inc.Refresh(net); err != nil {
						t.Fatal(err)
					}
					// Independent full recompute from the same levels.
					levels := make([]int, net.N())
					caps := make([]int, net.N())
					for v := 0; v < net.N(); v++ {
						m := net.Machine(v).(Leveled)
						levels[v], caps[v] = m.Level(), m.Cap()
					}
					full := NewState(fam.g, levels, caps)
					if p.name == "alg2" {
						// NewState assumes single-channel semantics;
						// re-snapshot through the network instead.
						full, err = Snapshot(net)
						if err != nil {
							t.Fatal(err)
						}
					}
					if got, want := inc.Stabilized(), full.Stabilized(); got != want {
						t.Fatalf("round %d: incremental Stabilized=%v, full=%v", r, got, want)
					}
					if got, want := inc.StableCount(), full.StableCount(); got != want {
						t.Fatalf("round %d: incremental StableCount=%d, full=%d", r, got, want)
					}
					gotMIS, wantMIS := inc.MISMask(), full.MISMask()
					for v := range wantMIS {
						if gotMIS[v] != wantMIS[v] {
							t.Fatalf("round %d: MIS mask diverged at vertex %d", r, v)
						}
					}
					if inc.Stabilized() {
						quiet++
						if quiet == 10 {
							// Inject a mid-run fault so the detector
							// must handle a burst of dirty vertices.
							if err := net.Corrupt(faultSrc.Perm(net.N())[:net.N()/3]); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
				if quiet < 25 {
					t.Fatalf("execution never reached the quiet-round quota (got %d)", quiet)
				}
			})
		}
	}
}
