package core

import (
	"fmt"
	"math"

	"repro/internal/beep"
	"repro/internal/bitset"
	"repro/internal/graph"
)

// LevelExporter is the bulk level accessor implemented by the machine
// slabs of the core protocols (Alg1, Alg2, AdaptiveAlg1). A network
// built from a beep.BatchProtocol exposes it through Network.BulkState,
// and State.Refresh uses it to capture all (ℓ, ℓmax) pairs in one
// linear pass over contiguous storage — replacing one interface
// assertion plus two virtual calls per vertex per round in the
// stabilization stop check.
type LevelExporter interface {
	// ExportLevels writes ℓ(v) and ℓmax(v) of every vertex v into the
	// destination slices, which must have length n. When MutableCaps
	// reports false, callers that have already captured the caps may
	// pass a nil caps slice to export levels only.
	ExportLevels(levels, caps []int32)
	// TwoChannel reports Algorithm 2 (two-channel) semantics, under
	// which MIS membership is ℓ = 0 rather than ℓ = -ℓmax.
	TwoChannel() bool
	// MutableCaps reports whether ℓmax values can change during an
	// execution (true only for the adaptive heuristic). When false,
	// ℓmax must be a pure function of (vertex, graph, protocol), so
	// callers may capture caps once and skip re-exporting and
	// re-diffing them on every round.
	MutableCaps() bool
}

// State is an analyst's snapshot of one execution instant: the levels
// and caps of all vertices. It supports the Section 3 machinery (I_t,
// S_t, μ_t, η_t, prominent vertices) used for stabilization detection
// and the lemma-level experiments.
//
// A State that is Refreshed every round doubles as an *incremental*
// stabilization detector: Stabilized diffs the flat level array against
// the previous snapshot and re-derives I_t/S_t only around the vertices
// that changed, so the common "nothing changed" round costs O(n) cheap
// integer compares instead of a full O(n+m) mask recompute. The
// detector is purely observational — its answers are bit-identical to
// the full recompute for every snapshot.
type State struct {
	g graph.Topology
	// csr is the materialized fast path (non-nil iff g is a
	// *graph.Graph); synthesizing backends decode neighbor rows into
	// rowBuf instead. One scratch row suffices: every neighbor iteration
	// below either nests no other row scan or walks a previously
	// materialized candidate list (dirty/cand/flips).
	csr    *graph.Graph
	rowBuf []int32
	// rowBuf2 is the outer-row scratch of the one genuinely nested scan
	// (LightBeepingMass walks a row while Mu decodes neighbor rows);
	// allocated lazily since only the Section 6 analysis needs it.
	rowBuf2 []int32
	levels  []int32
	caps    []int32
	// twoChannel marks Algorithm 2 semantics: MIS membership is ℓ = 0
	// with no ℓ = 0 neighbor, rather than ℓ = -ℓmax with all-cap
	// neighbors.
	twoChannel bool
	// capsValid remembers the exporter whose (immutable) caps are
	// already in s.caps, so steady-state Refreshes export levels only —
	// half the memory traffic of the per-round snapshot.
	capsValid LevelExporter
	// capsMutable records whether the caps of the current source can
	// change between Refreshes; when false the detector skips the caps
	// half of its per-round diff as well.
	capsMutable bool
	// excluded masks the non-cooperating (adversarial) vertices out of
	// the legality machinery: an excluded vertex is never in I_t, counts
	// as vacuously stable, and is invisible to its neighbors' membership
	// and stability scans — so Stabilized() and VerifyMIS() speak about
	// the correct induced subgraph, the only set the self-stabilization
	// guarantee covers. nil means every vertex cooperates.
	excluded []bool
	// exGen counts SetExcluded calls so the detector knows to rebuild
	// when the mask changes (mirroring beep.Network.AdversaryEpoch).
	exGen uint64

	det detector
}

// detector is the incremental I_t/S_t maintenance state. The masks are
// uint64 bitsets (one bit per vertex, word-at-a-time scans); unstable
// counts |V \ S_t| so the stabilization predicate is a single integer
// comparison once the masks are synchronized.
type detector struct {
	g   graph.Topology
	two bool
	n   int
	// capsMut mirrors State.capsMutable at rebuild time; when false the
	// per-round diff compares levels only.
	capsMut bool
	// exGen mirrors State.exGen at rebuild time; a mismatch forces a
	// full re-seed so exclusion-mask changes are never applied
	// incrementally against stale masks.
	exGen uint64
	// prevLevels/prevCaps are the levels the masks were last derived
	// from; the per-round diff against them yields the dirty set.
	prevLevels []int32
	prevCaps   []int32

	mis      bitset.Set // I_t membership
	stable   bitset.Set // S_t = I_t ∪ N(I_t)
	unstable int        // |V| - |S_t|

	// Scratch for the incremental update: dirty vertices, dedup'd
	// candidate lists, and epoch marks (mark[v] == epoch ⇔ v already
	// queued this pass).
	dirty []int32
	cand  []int32
	flips []int32
	mark  []uint32
	epoch uint32
}

// Snapshot captures the current levels of a network running Algorithm 1
// or Algorithm 2. It returns an error if any machine does not expose
// levels (i.e. is not one of the core protocols).
func Snapshot(net *beep.Network) (*State, error) {
	st := &State{}
	if err := st.Refresh(net); err != nil {
		return nil, err
	}
	return st, nil
}

// Refresh re-captures the network's current levels into the receiver,
// reusing its buffers. It is the allocation-free path for callers that
// snapshot every round (the stabilization detector); a zero State is a
// valid receiver. Networks built from a BatchProtocol (all core
// protocols) take the bulk-export fast path: one linear pass over the
// machine slab, no per-vertex interface dispatch.
func (s *State) Refresh(net *beep.Network) error {
	n := net.N()
	if g := net.Graph(); g != s.g {
		s.setGraph(g)
	}
	if cap(s.levels) < n {
		s.levels = make([]int32, n)
		s.caps = make([]int32, n)
		s.capsValid = nil
	}
	s.levels = s.levels[:n]
	s.caps = s.caps[:n]
	if le, ok := net.BulkState().(LevelExporter); ok {
		mut := le.MutableCaps()
		if !mut && s.capsValid == le {
			le.ExportLevels(s.levels, nil)
		} else {
			le.ExportLevels(s.levels, s.caps)
			if mut {
				s.capsValid = nil
			} else {
				s.capsValid = le
			}
		}
		s.capsMutable = mut
		s.twoChannel = le.TwoChannel()
		return nil
	}
	s.capsValid = nil
	s.capsMutable = true
	s.twoChannel = false
	for v := 0; v < n; v++ {
		m, ok := net.Machine(v).(Leveled)
		if !ok {
			return fmt.Errorf("core: machine of vertex %d (%T) does not expose levels", v, net.Machine(v))
		}
		s.levels[v] = int32(m.Level())
		s.caps[v] = int32(m.Cap())
		if _, is2 := net.Machine(v).(*alg2Machine); is2 {
			s.twoChannel = true
		}
	}
	return nil
}

// setGraph installs the snapshot's topology, deriving the materialized
// fast path or the decode scratch as appropriate.
func (s *State) setGraph(g graph.Topology) {
	s.g = g
	s.csr, _ = g.(*graph.Graph)
	if s.csr == nil {
		if d := g.MaxDegree(); cap(s.rowBuf) < d {
			s.rowBuf = make([]int32, d)
		}
	}
}

// neighbors returns the canonical neighbor row of v: an aliased CSR
// slice on the materialized fast path, a decode into the scratch row
// otherwise. The result is valid until the next neighbors call.
func (s *State) neighbors(v int) []int32 {
	if s.csr != nil {
		return s.csr.Neighbors(v)
	}
	return s.g.NeighborsInto(v, s.rowBuf)
}

// neighborsNested is the second-scratch sibling of neighbors, for the
// outer row of a scan whose body decodes further rows.
func (s *State) neighborsNested(v int) []int32 {
	if s.csr != nil {
		return s.csr.Neighbors(v)
	}
	if s.rowBuf2 == nil {
		s.rowBuf2 = make([]int32, s.g.MaxDegree())
	}
	return s.g.NeighborsInto(v, s.rowBuf2)
}

// NewState builds a snapshot directly from level and cap slices
// (single-channel semantics), for tests and analytical tooling. The
// slices are copied.
func NewState(g graph.Topology, levels, caps []int) *State {
	s := &State{levels: make([]int32, len(levels)), caps: make([]int32, len(caps)), capsMutable: true}
	s.setGraph(g)
	for i, l := range levels {
		s.levels[i] = int32(l)
	}
	for i, c := range caps {
		s.caps[i] = int32(c)
	}
	return s
}

// NewStateWith builds a snapshot from exported int32 level and cap
// slices with an explicit channel discipline — the form distributed
// coordinators assemble from per-partition level exports (see
// LevelExporter). The slices are copied; twoChannel selects Algorithm 2
// membership semantics (ℓ = 0) over Algorithm 1 (ℓ = -cap).
func NewStateWith(g graph.Topology, levels, caps []int32, twoChannel bool) *State {
	s := &State{
		levels:      append([]int32(nil), levels...),
		caps:        append([]int32(nil), caps...),
		capsMutable: true,
		twoChannel:  twoChannel,
	}
	s.setGraph(g)
	return s
}

// SetExcluded installs the mask of non-cooperating vertices (length n,
// true = excluded from the legality machinery), typically captured from
// beep.Network.FillAdversaryMask. The mask is copied; nil clears it.
// Callers that track a live network should re-capture whenever
// Network.AdversaryEpoch changes — Rewire both renumbers the adversary
// set and resizes the vertex space.
func (s *State) SetExcluded(mask []bool) {
	if mask == nil {
		if s.excluded != nil {
			s.excluded = nil
			s.exGen++
		}
		return
	}
	s.excluded = append(s.excluded[:0], mask...)
	s.exGen++
}

// Excluded reports whether v is masked out of the legality machinery.
func (s *State) Excluded(v int) bool {
	return s.excluded != nil && v < len(s.excluded) && s.excluded[v]
}

// Level returns ℓ(v) in this snapshot.
func (s *State) Level(v int) int { return int(s.levels[v]) }

// Cap returns ℓmax(v).
func (s *State) Cap(v int) int { return int(s.caps[v]) }

// InMIS reports whether v is in the stabilized-MIS set I_t of the
// snapshot: ℓ(v) at the algorithm's membership value (-ℓmax(v) for
// Algorithm 1, 0 for Algorithm 2) and every neighbor u at ℓmax(u)
// (equivalently μ_t(v) = 1). Under Algorithm 2 an all-cap neighborhood
// in particular contains no ℓ = 0 neighbor, so the membership arms
// share one all-neighbors-at-cap scan.
//
// Excluded vertices are never members, and are invisible to their
// neighbors' scans: a correct vertex's membership depends only on the
// levels of its correct neighbors.
func (s *State) InMIS(v int) bool {
	if s.Excluded(v) {
		return false
	}
	want := -s.caps[v]
	if s.twoChannel {
		want = 0
	}
	if s.levels[v] != want {
		return false
	}
	for _, u := range s.neighbors(v) {
		if s.Excluded(int(u)) {
			continue
		}
		if s.levels[u] != s.caps[u] {
			return false
		}
	}
	return true
}

// MISMask returns the membership mask of I_t. The returned slice is
// freshly allocated and safe to retain.
func (s *State) MISMask() []bool {
	s.sync()
	mask := make([]bool, len(s.levels))
	s.det.mis.FillBools(mask)
	return mask
}

// FillMISMask writes the membership mask of I_t into dst (length ≥ n),
// the allocation-free sibling of MISMask for per-round callers.
func (s *State) FillMISMask(dst []bool) {
	s.sync()
	s.det.mis.FillBools(dst)
}

// StableMask returns the mask of S_t = I_t ∪ N(I_t), the vertices whose
// output has stabilized. The returned slice is freshly allocated and
// safe to retain.
func (s *State) StableMask() []bool {
	s.sync()
	mask := make([]bool, len(s.levels))
	s.det.stable.FillBools(mask)
	return mask
}

// FillStableMask writes the mask of S_t into dst (length ≥ n), the
// allocation-free sibling of StableMask for per-round callers.
func (s *State) FillStableMask(dst []bool) {
	s.sync()
	s.det.stable.FillBools(dst)
}

// Stabilized reports whether every vertex is stable (S_t = V), the
// paper's stabilization condition. In that case MISMask is a maximal
// independent set. After the first call on a given State it is
// incremental: the cost is proportional to the number of vertices whose
// level changed since the last call (plus one cheap linear diff), not
// to n+m, and it performs no allocations in the steady state.
func (s *State) Stabilized() bool {
	s.sync()
	return s.det.unstable == 0
}

// StableCount returns |S_t|, useful for convergence progress curves.
func (s *State) StableCount() int {
	s.sync()
	return len(s.levels) - s.det.unstable
}

// sync brings the detector masks in line with the current levels: a
// full O(n+m) rebuild the first time (or when the snapshot switched
// graph or semantics), an O(dirty · deg²) incremental update afterward.
func (s *State) sync() {
	d := &s.det
	if d.g != s.g || d.n != len(s.levels) || d.two != s.twoChannel || d.capsMut != s.capsMutable || d.exGen != s.exGen {
		s.rebuildDetector()
		return
	}
	s.updateDetector()
}

// rebuildDetector recomputes I_t and S_t from scratch and records the
// level snapshot the masks correspond to.
func (s *State) rebuildDetector() {
	d := &s.det
	n := len(s.levels)
	d.g, d.n, d.two, d.capsMut, d.exGen = s.g, n, s.twoChannel, s.capsMutable, s.exGen
	d.mis.Resize(n)
	d.stable.Resize(n)
	for v := 0; v < n; v++ {
		if s.InMIS(v) {
			d.mis.Set1(v)
		}
	}
	for v := 0; v < n; v++ {
		// Excluded vertices are vacuously stable: the legality predicate
		// speaks only about the correct induced subgraph.
		if s.Excluded(v) || d.mis.Get(v) {
			d.stable.Set1(v)
			continue
		}
		for _, u := range s.neighbors(v) {
			if d.mis.Get(int(u)) {
				d.stable.Set1(v)
				break
			}
		}
	}
	if d.stable.All() { // word-at-a-time scan against ^0
		d.unstable = 0
	} else {
		d.unstable = n - d.stable.OnesCount()
	}
	d.prevLevels = append(d.prevLevels[:0], s.levels...)
	d.prevCaps = append(d.prevCaps[:0], s.caps...)
	if cap(d.mark) < n {
		d.mark = make([]uint32, n)
	} else {
		d.mark = d.mark[:n]
		for i := range d.mark {
			d.mark[i] = 0
		}
	}
	d.epoch = 0
}

// bumpEpoch starts a new dedup pass; on the (rare) wraparound it clears
// the marks so stale epochs can never alias.
func (d *detector) bumpEpoch() {
	d.epoch++
	if d.epoch == 0 {
		for i := range d.mark {
			d.mark[i] = 0
		}
		d.epoch = 1
	}
}

// push appends v to the candidate list unless it was already queued in
// this epoch.
func (d *detector) push(v int32) {
	if d.mark[v] != d.epoch {
		d.mark[v] = d.epoch
		d.cand = append(d.cand, v)
	}
}

// updateDetector is the dirty-set incremental step. Correctness rests
// on two locality facts: InMIS(v) reads only the levels of N⁺(v), so it
// can change only for v in N⁺(dirty); and Stable(v) reads only the
// I_t bits of N⁺(v), so it can change only for v in N⁺(flipped). The
// amortized cost is O(Σ_{v dirty} deg(v) + Σ_{v flipped} Σ_{u∈N⁺(v)}
// deg(u)); a round in which no level changed costs one linear int32
// compare over the level array and nothing else.
func (s *State) updateDetector() {
	d := &s.det
	// Phase 0: diff against the snapshot the masks were derived from.
	// With immutable caps (Alg1/Alg2) the scan touches levels only; the
	// adaptive protocol mutates caps too, so those are diffed as well.
	d.dirty = d.dirty[:0]
	if d.capsMut {
		cur, prev := s.levels[:d.n], d.prevLevels[:d.n]
		curC, prevC := s.caps[:d.n], d.prevCaps[:d.n]
		for v := range cur {
			if cur[v] != prev[v] || curC[v] != prevC[v] {
				d.dirty = append(d.dirty, int32(v))
				prev[v] = cur[v]
				prevC[v] = curC[v]
			}
		}
	} else {
		cur, prev := s.levels[:d.n], d.prevLevels[:d.n]
		for v := range cur {
			if cur[v] != prev[v] {
				d.dirty = append(d.dirty, int32(v))
				prev[v] = cur[v]
			}
		}
	}
	if len(d.dirty) == 0 {
		return
	}
	// Phase 1: re-evaluate I_t membership on N⁺(dirty), collecting the
	// vertices whose membership flipped.
	d.bumpEpoch()
	d.cand = d.cand[:0]
	for _, vi := range d.dirty {
		d.push(vi)
		for _, u := range s.neighbors(int(vi)) {
			d.push(u)
		}
	}
	d.flips = d.flips[:0]
	for _, vi := range d.cand {
		if d.mis.SetTo(int(vi), s.InMIS(int(vi))) {
			d.flips = append(d.flips, vi)
		}
	}
	if len(d.flips) == 0 {
		return
	}
	// Phase 2: re-evaluate stability on N⁺(flipped), maintaining the
	// global unstable count.
	d.bumpEpoch()
	d.cand = d.cand[:0]
	for _, vi := range d.flips {
		d.push(vi)
		for _, u := range s.neighbors(int(vi)) {
			d.push(u)
		}
	}
	for _, vi := range d.cand {
		v := int(vi)
		now := d.mis.Get(v) || s.Excluded(v)
		if !now {
			for _, u := range s.neighbors(v) {
				if d.mis.Get(int(u)) {
					now = true
					break
				}
			}
		}
		if d.stable.SetTo(v, now) {
			if now {
				d.unstable--
			} else {
				d.unstable++
			}
		}
	}
}

// Mu returns μ_t(v) = min over u ∈ N(v) of ℓ(u)/ℓmax(u), in [-1, 1];
// for an isolated vertex it returns 1 (the vacuous minimum, consistent
// with the stabilization predicate).
func (s *State) Mu(v int) float64 {
	nb := s.neighbors(v)
	if len(nb) == 0 {
		return 1
	}
	min := 2.0
	for _, u := range nb {
		r := float64(s.levels[u]) / float64(s.caps[u])
		if r < min {
			min = r
		}
	}
	return min
}

// Prominent reports whether v is prominent (Definition 3.3): ℓ(v) <= 0.
// Under Algorithm 2 semantics the analogous notion is ℓ(v) = 0.
func (s *State) Prominent(v int) bool {
	if s.twoChannel {
		return s.levels[v] == 0
	}
	return s.levels[v] <= 0
}

// PlatinumFor reports whether the snapshot is a platinum round of v:
// some vertex of N⁺(v) is prominent.
func (s *State) PlatinumFor(v int) bool {
	if s.Prominent(v) {
		return true
	}
	for _, u := range s.neighbors(v) {
		if s.Prominent(int(u)) {
			return true
		}
	}
	return false
}

// BeepProbOf returns p_t(v), the beeping probability implied by the
// level of v (Figure 1). For Algorithm 2 it is the channel-1 probability
// (0 at both ℓ = 0 and ℓ = ℓmax).
func (s *State) BeepProbOf(v int) float64 {
	if s.twoChannel && s.levels[v] == 0 {
		return 0
	}
	return BeepProb(int(s.levels[v]), int(s.caps[v]))
}

// ExpectedBeepingNeighbors returns d_t(v) = Σ_{u ∈ N(v)} p_t(u), the
// quantity driving the golden-round analysis (Section 6.1).
func (s *State) ExpectedBeepingNeighbors(v int) float64 {
	d := 0.0
	for _, u := range s.neighbors(v) {
		d += s.BeepProbOf(int(u))
	}
	return d
}

// Eta returns η_t(v) = Σ_{u ∈ N(v) \ S_t} 2^-ℓmax(u), the residual mass
// of unstabilized neighbors (Section 3). stable must be a StableMask of
// the same snapshot; pass nil to compute it.
func (s *State) Eta(v int, stable []bool) float64 {
	if stable == nil {
		stable = s.StableMask()
	}
	sum := 0.0
	for _, u := range s.neighbors(v) {
		if !stable[u] {
			sum += math.Pow(2, -float64(s.caps[u]))
		}
	}
	return sum
}

// VerifyMIS checks that the snapshot's I_t is a maximal independent set
// of the graph — or, when an exclusion mask is installed, of the correct
// induced subgraph — returning a descriptive error otherwise. It is the
// safety check applied after every stabilized run.
func (s *State) VerifyMIS() error {
	if s.excluded == nil {
		return graph.VerifyMISOf(s.g, s.MISMask())
	}
	active := make([]bool, len(s.levels))
	for v := range active {
		active[v] = !s.Excluded(v)
	}
	return graph.VerifyMISOnOf(s.g, active, s.MISMask())
}
