package core

import (
	"fmt"
	"math"

	"repro/internal/beep"
	"repro/internal/graph"
)

// State is an analyst's snapshot of one execution instant: the levels and
// caps of all vertices. It supports the Section 3 machinery (I_t, S_t,
// μ_t, η_t, prominent vertices) used for stabilization detection and the
// lemma-level experiments.
type State struct {
	g      *graph.Graph
	levels []int
	caps   []int
	// twoChannel marks Algorithm 2 semantics: MIS membership is ℓ = 0
	// with no ℓ = 0 neighbor, rather than ℓ = -ℓmax with all-cap
	// neighbors.
	twoChannel bool

	// misBuf and stableBuf are scratch masks reused by the per-round
	// legality check so snapshot-every-round loops stay allocation-free.
	misBuf    []bool
	stableBuf []bool
}

// Snapshot captures the current levels of a network running Algorithm 1
// or Algorithm 2. It returns an error if any machine does not expose
// levels (i.e. is not one of the core protocols).
func Snapshot(net *beep.Network) (*State, error) {
	st := &State{}
	if err := st.Refresh(net); err != nil {
		return nil, err
	}
	return st, nil
}

// Refresh re-captures the network's current levels into the receiver,
// reusing its buffers. It is the allocation-free path for callers that
// snapshot every round (the stabilization detector); a zero State is a
// valid receiver.
func (s *State) Refresh(net *beep.Network) error {
	n := net.N()
	s.g = net.Graph()
	if cap(s.levels) < n {
		s.levels = make([]int, n)
		s.caps = make([]int, n)
	}
	s.levels = s.levels[:n]
	s.caps = s.caps[:n]
	s.twoChannel = false
	for v := 0; v < n; v++ {
		m, ok := net.Machine(v).(Leveled)
		if !ok {
			return fmt.Errorf("core: machine of vertex %d (%T) does not expose levels", v, net.Machine(v))
		}
		s.levels[v] = m.Level()
		s.caps[v] = m.Cap()
		if _, is2 := net.Machine(v).(*alg2Machine); is2 {
			s.twoChannel = true
		}
	}
	return nil
}

// NewState builds a snapshot directly from level and cap slices
// (single-channel semantics), for tests and analytical tooling.
func NewState(g *graph.Graph, levels, caps []int) *State {
	return &State{g: g, levels: levels, caps: caps}
}

// Level returns ℓ(v) in this snapshot.
func (s *State) Level(v int) int { return s.levels[v] }

// Cap returns ℓmax(v).
func (s *State) Cap(v int) int { return s.caps[v] }

// InMIS reports whether v is in the stabilized-MIS set I_t of the
// snapshot: for Algorithm 1, ℓ(v) = -ℓmax(v) and every neighbor u is at
// ℓmax(u) (equivalently μ_t(v) = 1); for Algorithm 2, ℓ(v) = 0 and no
// neighbor has ℓ = 0 while all neighbors are at cap.
func (s *State) InMIS(v int) bool {
	if s.twoChannel {
		if s.levels[v] != 0 {
			return false
		}
		for _, u := range s.g.Neighbors(v) {
			if s.levels[u] != s.caps[u] {
				return false
			}
		}
		return true
	}
	if s.levels[v] != -s.caps[v] {
		return false
	}
	for _, u := range s.g.Neighbors(v) {
		if s.levels[u] != s.caps[u] {
			return false
		}
	}
	return true
}

// MISMask returns the membership mask of I_t. The returned slice is
// freshly allocated and safe to retain.
func (s *State) MISMask() []bool {
	mask := make([]bool, len(s.levels))
	s.misMaskInto(mask)
	return mask
}

// misMaskInto fills mask (length n) with I_t membership.
func (s *State) misMaskInto(mask []bool) {
	for v := range mask {
		mask[v] = s.InMIS(v)
	}
}

// StableMask returns the mask of S_t = I_t ∪ N(I_t), the vertices whose
// output has stabilized. The returned slice is freshly allocated and
// safe to retain.
func (s *State) StableMask() []bool {
	stable := make([]bool, len(s.levels))
	s.stableMaskInto(stable, make([]bool, len(s.levels)))
	return stable
}

// stableMaskInto fills stable with S_t, using misScratch as the I_t
// working mask; both must have length n.
func (s *State) stableMaskInto(stable, misScratch []bool) {
	s.misMaskInto(misScratch)
	copy(stable, misScratch)
	for v, in := range misScratch {
		if !in {
			continue
		}
		for _, u := range s.g.Neighbors(v) {
			stable[u] = true
		}
	}
}

// scratchMasks returns the reusable mis/stable scratch buffers sized n.
func (s *State) scratchMasks() (mis, stable []bool) {
	n := len(s.levels)
	if cap(s.misBuf) < n {
		s.misBuf = make([]bool, n)
		s.stableBuf = make([]bool, n)
	}
	return s.misBuf[:n], s.stableBuf[:n]
}

// Stabilized reports whether every vertex is stable (S_t = V), the
// paper's stabilization condition. In that case MISMask is a maximal
// independent set. It reuses internal scratch buffers, so it performs
// no allocations after the first call on a given State.
func (s *State) Stabilized() bool {
	mis, stable := s.scratchMasks()
	s.stableMaskInto(stable, mis)
	for _, ok := range stable {
		if !ok {
			return false
		}
	}
	return true
}

// StableCount returns |S_t|, useful for convergence progress curves.
func (s *State) StableCount() int {
	mis, stable := s.scratchMasks()
	s.stableMaskInto(stable, mis)
	return graph.CountTrue(stable)
}

// Mu returns μ_t(v) = min over u ∈ N(v) of ℓ(u)/ℓmax(u), in [-1, 1];
// for an isolated vertex it returns 1 (the vacuous minimum, consistent
// with the stabilization predicate).
func (s *State) Mu(v int) float64 {
	nb := s.g.Neighbors(v)
	if len(nb) == 0 {
		return 1
	}
	min := 2.0
	for _, u := range nb {
		r := float64(s.levels[u]) / float64(s.caps[u])
		if r < min {
			min = r
		}
	}
	return min
}

// Prominent reports whether v is prominent (Definition 3.3): ℓ(v) <= 0.
// Under Algorithm 2 semantics the analogous notion is ℓ(v) = 0.
func (s *State) Prominent(v int) bool {
	if s.twoChannel {
		return s.levels[v] == 0
	}
	return s.levels[v] <= 0
}

// PlatinumFor reports whether the snapshot is a platinum round of v:
// some vertex of N⁺(v) is prominent.
func (s *State) PlatinumFor(v int) bool {
	if s.Prominent(v) {
		return true
	}
	for _, u := range s.g.Neighbors(v) {
		if s.Prominent(int(u)) {
			return true
		}
	}
	return false
}

// BeepProbOf returns p_t(v), the beeping probability implied by the
// level of v (Figure 1). For Algorithm 2 it is the channel-1 probability
// (0 at both ℓ = 0 and ℓ = ℓmax).
func (s *State) BeepProbOf(v int) float64 {
	if s.twoChannel && s.levels[v] == 0 {
		return 0
	}
	return BeepProb(s.levels[v], s.caps[v])
}

// ExpectedBeepingNeighbors returns d_t(v) = Σ_{u ∈ N(v)} p_t(u), the
// quantity driving the golden-round analysis (Section 6.1).
func (s *State) ExpectedBeepingNeighbors(v int) float64 {
	d := 0.0
	for _, u := range s.g.Neighbors(v) {
		d += s.BeepProbOf(int(u))
	}
	return d
}

// Eta returns η_t(v) = Σ_{u ∈ N(v) \ S_t} 2^-ℓmax(u), the residual mass
// of unstabilized neighbors (Section 3). stable must be a StableMask of
// the same snapshot; pass nil to compute it.
func (s *State) Eta(v int, stable []bool) float64 {
	if stable == nil {
		stable = s.StableMask()
	}
	sum := 0.0
	for _, u := range s.g.Neighbors(v) {
		if !stable[u] {
			sum += math.Pow(2, -float64(s.caps[u]))
		}
	}
	return sum
}

// VerifyMIS checks that the snapshot's I_t is a maximal independent set
// of the graph, returning a descriptive error otherwise. It is the
// safety check applied after every stabilized run.
func (s *State) VerifyMIS() error {
	return s.g.VerifyMIS(s.MISMask())
}
