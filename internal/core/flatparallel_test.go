package core

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// collectTrace runs rounds steps of proto on g under opts, returning
// the concatenated (sent, heard) rows. body, when non-nil, is invoked
// mid-run to mutate the network (rewire, reseed, …) at the scripted
// points; it receives the network and must return an error to abort.
func collectTrace(t *testing.T, g *graph.Graph, seed uint64, body func(net *beep.Network) error, opts ...beep.Option) [][]beep.Signal {
	t.Helper()
	var trace [][]beep.Signal
	all := append([]beep.Option{
		beep.WithObserver(func(_ int, sent, heard []beep.Signal) {
			row := make([]beep.Signal, 0, 2*len(sent))
			row = append(row, sent...)
			row = append(row, heard...)
			trace = append(trace, row)
		}),
	}, opts...)
	net, err := beep.NewNetwork(g, NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta)), seed, all...)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := body(net); err != nil {
		t.Fatal(err)
	}
	return trace
}

// compareTraces asserts two signal traces are identical.
func compareTraces(t *testing.T, name string, got, ref [][]beep.Signal) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: recorded %d rounds, reference %d", name, len(got), len(ref))
	}
	for r := range ref {
		if len(got[r]) != len(ref[r]) {
			t.Fatalf("%s: round %d has %d slots, reference %d", name, r, len(got[r]), len(ref[r]))
		}
		for i := range ref[r] {
			if got[r][i] != ref[r][i] {
				t.Fatalf("%s: diverged at round %d slot %d: %v vs %v", name, r, i, got[r][i], ref[r][i])
			}
		}
	}
}

// TestFlatParallelWorkerCountInvariance pins the determinism contract
// of the sharded flat engine at a size where every worker count from 1
// to 8 produces a different stripe partition (n = 500 spans eight
// 64-vertex words): the trace must be bit-identical to the sequential
// flat engine's for every partition, because each vertex only ever
// consumes randomness from its own private stream.
func TestFlatParallelWorkerCountInvariance(t *testing.T) {
	g := graph.GNPAvgDegree(500, 7, rng.New(88))
	const seed, rounds = 1213, 40
	body := func(net *beep.Network) error {
		net.RandomizeAll()
		for r := 0; r < rounds; r++ {
			net.Step()
		}
		return nil
	}
	ref := collectTrace(t, g, seed, body, beep.WithEngine(beep.Flat))
	for w := 1; w <= 8; w++ {
		got := collectTrace(t, g, seed, body,
			beep.WithEngine(beep.FlatParallel), beep.WithWorkers(w))
		compareTraces(t, fmt.Sprintf("flatparallel-w%d", w), got, ref)
	}
}

// TestFlatParallelRewireReseedBitExact is the regression test for the
// stale-stripe bug class: a churn Rewire changes the vertex count (and
// with it every stripe boundary, scatter mask length and pack word
// range), and a Reseed afterwards starts a new execution on the same
// pool. If either operation left any pre-churn stripe state alive —
// old shard boundaries, stale pack counters, a scratch mask sized for
// the old N — the sharded engine would diverge from the sequential
// flat engine after the rewire or after the reseed. The full scripted
// sequence (run → Rewire → run → Reseed → run) must stay bit-exact at
// several worker counts.
func TestFlatParallelRewireReseedBitExact(t *testing.T) {
	g1 := graph.GNPAvgDegree(200, 6, rng.New(41))
	// Shrink AND grow across word boundaries: drop three vertices, add
	// two with fresh attachments.
	g2, mapping, err := graph.ApplyEdits(g1, []graph.Edit{
		{Kind: graph.EditDelVertex, U: 5},
		{Kind: graph.EditDelVertex, U: 77},
		{Kind: graph.EditDelVertex, U: 130},
		{Kind: graph.EditAddVertex}, // builder id 200
		{Kind: graph.EditAddVertex}, // builder id 201
		{Kind: graph.EditAddEdge, U: 200, V: 0},
		{Kind: graph.EditAddEdge, U: 200, V: 44},
		{Kind: graph.EditAddEdge, U: 201, V: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	const seed, reseed = 2024, 4242
	body := func(net *beep.Network) error {
		net.RandomizeAll()
		for r := 0; r < 12; r++ {
			net.Step()
		}
		if err := net.Rewire(g2, mapping[:g1.N()]); err != nil {
			return err
		}
		for r := 0; r < 8; r++ {
			net.Step()
		}
		if err := net.Reseed(reseed); err != nil {
			return err
		}
		net.RandomizeAll()
		for r := 0; r < 15; r++ {
			net.Step()
		}
		return nil
	}
	ref := collectTrace(t, g1, seed, body, beep.WithEngine(beep.Flat))
	for _, w := range []int{1, 2, 3, 5} {
		got := collectTrace(t, g1, seed, body,
			beep.WithEngine(beep.FlatParallel), beep.WithWorkers(w))
		compareTraces(t, fmt.Sprintf("rewire-reseed-w%d", w), got, ref)
	}
}
