package core

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestReseedMatchesFreshNetwork is the property promised by
// beep.Network.Reseed: after polluting a network with a full execution
// under a different seed, Reseed(s) must make the subsequent execution
// bit-identical to a freshly constructed network with seed s — signal
// traces and final levels alike. The property is checked on every
// protocol, on both the reference loop and the flat engine, and with
// every auxiliary random stream active (noise, sleep, adversaries), so
// a stream that Reseed forgot to re-derive fails loudly.
func TestReseedMatchesFreshNetwork(t *testing.T) {
	g := graph.GNPAvgDegree(60, 5, rng.New(21))
	protos := []struct {
		name  string
		proto beep.Protocol
	}{
		{"alg1", NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))},
		{"alg2", NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop))},
		{"adaptive", NewAdaptiveAlg1()},
	}
	variants := []struct {
		name   string
		engine beep.Engine
		opts   []beep.Option
	}{
		{"sequential", beep.Sequential, nil},
		{"sequential-ref", beep.Sequential, []beep.Option{beep.WithFlatKernels(false)}},
		{"flat", beep.Flat, nil},
		{"flat-faulty", beep.Flat, []beep.Option{
			beep.WithNoise(beep.Noise{PLoss: 0.05, PFalse: 0.02}),
			beep.WithSleep(beep.Sleep{P: 0.1}),
			beep.WithAdversaries(beep.AdvBabbler, []int{3, 17}),
		}},
	}
	const pollute, rounds = 37, 80
	const seedA, seedB = 1001, 2002

	type record struct {
		trace  [][2][]beep.Signal
		levels []int
	}
	// build returns a network whose observer appends into *trace, so the
	// recording buffer can be swapped between the pollution phase and the
	// measured phase.
	build := func(t *testing.T, proto beep.Protocol, seed uint64, engine beep.Engine, extra []beep.Option, trace *[][2][]beep.Signal) *beep.Network {
		t.Helper()
		opts := append([]beep.Option{
			beep.WithEngine(engine),
			beep.WithObserver(func(_ int, sent, heard []beep.Signal) {
				s := append([]beep.Signal(nil), sent...)
				h := append([]beep.Signal(nil), heard...)
				*trace = append(*trace, [2][]beep.Signal{s, h})
			})}, extra...)
		net, err := beep.NewNetwork(g, proto, seed, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	collect := func(t *testing.T, net *beep.Network, rounds int, trace *[][2][]beep.Signal) record {
		t.Helper()
		*trace = nil
		net.RandomizeAll()
		for r := 0; r < rounds; r++ {
			net.Step()
		}
		rec := record{trace: *trace}
		for v := 0; v < net.N(); v++ {
			rec.levels = append(rec.levels, net.Machine(v).(Leveled).Level())
		}
		return rec
	}

	for _, p := range protos {
		for _, vr := range variants {
			t.Run(fmt.Sprintf("%s/%s", p.name, vr.name), func(t *testing.T) {
				var reTrace [][2][]beep.Signal
				reused := build(t, p.proto, seedA, vr.engine, vr.opts, &reTrace)
				defer reused.Close()
				collect(t, reused, pollute, &reTrace) // pollute every stream and slab
				if err := reused.Reseed(seedB); err != nil {
					t.Fatal(err)
				}
				got := collect(t, reused, rounds, &reTrace)

				var frTrace [][2][]beep.Signal
				fresh := build(t, p.proto, seedB, vr.engine, vr.opts, &frTrace)
				defer fresh.Close()
				want := collect(t, fresh, rounds, &frTrace)

				for r := range want.trace {
					for v := range want.trace[r][0] {
						if got.trace[r][0][v] != want.trace[r][0][v] || got.trace[r][1][v] != want.trace[r][1][v] {
							t.Fatalf("round %d vertex %d diverged: reused (sent=%v heard=%v) vs fresh (sent=%v heard=%v)",
								r+1, v, got.trace[r][0][v], got.trace[r][1][v], want.trace[r][0][v], want.trace[r][1][v])
						}
					}
				}
				for v := range want.levels {
					if got.levels[v] != want.levels[v] {
						t.Fatalf("final level of vertex %d diverged: reused %d vs fresh %d", v, got.levels[v], want.levels[v])
					}
				}
			})
		}
	}
}
