package core

import (
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestLightDefinition(t *testing.T) {
	// Path 0-1-2 with caps 8.
	g := graph.Path(3)
	caps := []int{8, 8, 8}

	// Vertex 1 with a committed (always-beeping) neighbor at level -8:
	// μ(1) = -1 <= 0, so 1 is NOT light no matter its own level.
	st := NewState(g, []int{-8, 1, 8}, caps)
	if st.Light(1) {
		t.Fatal("vertex with a negative-level neighbor cannot be light (μ <= 0)")
	}
	// Vertex 0 itself is prominent (ℓ <= 0) with μ(0) = 1/8 > 0 → light.
	if !st.Light(0) {
		t.Fatal("prominent vertex with positive-μ neighborhood should be light")
	}

	// All levels high: everyone has μ > 0 and tiny expected beeping
	// neighborhoods → all light.
	st = NewState(g, []int{5, 5, 5}, caps)
	for v := 0; v < 3; v++ {
		if !st.Light(v) {
			t.Fatalf("vertex %d should be light", v)
		}
	}
}

func TestLightHeavyOnDenseHighProbability(t *testing.T) {
	// Star center with 40 leaves all at level 1 (p = 1/2 each):
	// d(center) = 20 > 10 and ℓ(center) = 2 > 0 → heavy.
	g := graph.Star(41)
	levels := make([]int, 41)
	caps := make([]int, 41)
	for v := range levels {
		levels[v] = 1
		caps[v] = 12
	}
	levels[0] = 2
	st := NewState(g, levels, caps)
	if st.Light(0) {
		t.Fatalf("center with d=%v should be heavy", st.ExpectedBeepingNeighbors(0))
	}
	// The leaves see only the center (d = 1/4) → light.
	if !st.Light(1) {
		t.Fatal("leaf should be light")
	}
}

func TestGoldenForQuietCase(t *testing.T) {
	// Definition 6.2(a): ℓ(v) <= 1 and d(v) <= 0.02.
	g := graph.Path(2)
	st := NewState(g, []int{1, 10}, []int{12, 12})
	// d(0) = 2^-10 ≈ 0.00098 <= 0.02, ℓ(0) = 1 → golden.
	if !st.GoldenFor(0) {
		t.Fatal("quiet low-level vertex should be golden")
	}
	// Vertex 1 at ℓ = 10: d(1) = 1/2 > 0.02 and light mass 1/2 > 0.001
	// → golden via case (b) (its neighbor is light).
	if !st.GoldenFor(1) {
		t.Fatal("vertex with beeping light neighbor should be golden (case b)")
	}
}

func TestGoldenForNegativeCase(t *testing.T) {
	// Star center at high level with all leaves at cap (silent): no
	// light beeping mass, level > 1 → not golden.
	g := graph.Star(5)
	levels := []int{5, 8, 8, 8, 8}
	caps := []int{8, 8, 8, 8, 8}
	st := NewState(g, levels, caps)
	if st.GoldenFor(0) {
		t.Fatal("silent neighborhood at high level should not be golden")
	}
}

func TestLightBeepingMass(t *testing.T) {
	g := graph.Star(3) // center 0, leaves 1,2
	st := NewState(g, []int{8, 1, 2}, []int{8, 8, 8})
	// Leaves are light (their only neighbor is at positive level, d small).
	want := 0.5 + 0.25
	if got := st.LightBeepingMass(0); got != want {
		t.Fatalf("light mass %v, want %v", got, want)
	}
}

func TestCountClassifiedOnExecution(t *testing.T) {
	g := graph.GNPAvgDegree(80, 6, rng.New(5))
	proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()

	sawGolden := false
	for r := 0; r < 500; r++ {
		st, err := Snapshot(net)
		if err != nil {
			t.Fatal(err)
		}
		prominent, light, golden, platinum := st.CountClassified()
		if prominent < 0 || light < 0 || golden < 0 || platinum < 0 {
			t.Fatal("negative class count")
		}
		if light > g.N() || prominent > g.N() {
			t.Fatal("class count exceeds n")
		}
		if golden > 0 {
			sawGolden = true
		}
		if st.Stabilized() {
			// In a legal state every unstable count is zero.
			if golden != 0 || platinum != 0 {
				t.Fatalf("stabilized snapshot has golden=%d platinum=%d", golden, platinum)
			}
			if !sawGolden {
				t.Fatal("no golden rounds observed on the way to stabilization")
			}
			return
		}
		net.Step()
	}
	t.Fatal("no stabilization in 500 rounds")
}
