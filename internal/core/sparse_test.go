package core

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestSparseModeParse pins the flag spellings of the sparse modes.
func TestSparseModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want beep.SparseMode
	}{
		{"auto", beep.SparseAuto},
		{"on", beep.SparseOn},
		{"off", beep.SparseOff},
	} {
		got, err := beep.ParseSparseMode(tc.in)
		if err != nil {
			t.Fatalf("ParseSparseMode(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSparseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("SparseMode(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := beep.ParseSparseMode("maybe"); err == nil {
		t.Fatal("ParseSparseMode accepted an unknown mode")
	}
}

// TestSparseOnRequiresKernels pins the construction-time validation of
// the forced-sparse mode: interface-loop engines and kernel-less
// configurations must be rejected, kernel engines accepted.
func TestSparseOnRequiresKernels(t *testing.T) {
	g := graph.Cycle(64)
	proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
	for _, e := range []beep.Engine{beep.Parallel, beep.PerVertex} {
		if _, err := beep.NewNetwork(g, proto, 1, beep.WithEngine(e), beep.WithSparse(beep.SparseOn)); err == nil {
			t.Fatalf("WithSparse(on) accepted on %v", e)
		}
	}
	if _, err := beep.NewNetwork(g, proto, 1, beep.WithFlatKernels(false), beep.WithSparse(beep.SparseOn)); err == nil {
		t.Fatal("WithSparse(on) accepted with kernels disabled")
	}
	for _, e := range []beep.Engine{beep.Sequential, beep.Flat, beep.FlatParallel} {
		net, err := beep.NewNetwork(g, proto, 1, beep.WithEngine(e), beep.WithSparse(beep.SparseOn))
		if err != nil {
			t.Fatalf("WithSparse(on) rejected on %v: %v", e, err)
		}
		net.Close()
	}
}

// TestSparseFrontierDecay asserts the whole point of the sparse path:
// on a fault-free run the frontier reported by WithStatsObserver
// shrinks to zero and stays there (O(1) elided rounds), while the
// execution stays bit-identical to the dense path round by round.
func TestSparseFrontierDecay(t *testing.T) {
	g := graph.GNPAvgDegree(4096, 8, rng.New(99))
	proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
	const seed, rounds = 7, 150
	for _, eng := range []struct {
		name   string
		engine beep.Engine
	}{{"flat", beep.Flat}, {"flatparallel", beep.FlatParallel}} {
		t.Run(eng.name, func(t *testing.T) {
			ref := runEngineTrace(t, g, proto, seed, beep.Sequential, rounds, beep.WithFlatKernels(false))

			tr := runEngineTrace(t, g, proto, seed, eng.engine, rounds)
			for r := range ref.sent {
				if r >= len(tr.sent) {
					break
				}
				for v := range ref.sent[r] {
					if tr.sent[r][v] != ref.sent[r][v] || tr.heard[r][v] != ref.heard[r][v] {
						t.Fatalf("sparse trace diverged at round %d vertex %d", r+1, v)
					}
				}
			}
			if tr.stabilized != ref.stabilized {
				t.Fatalf("sparse stabilized at %d, reference at %d", tr.stabilized, ref.stabilized)
			}

			// The detector fires before the level dynamics fully drain,
			// so measure frontier decay on a fixed-length run that
			// continues past stabilization.
			var frontiers, actives []int
			net, err := beep.NewNetwork(g, proto, seed, beep.WithEngine(eng.engine),
				beep.WithStatsObserver(func(_, active, fw int) {
					actives = append(actives, active)
					frontiers = append(frontiers, fw)
				}))
			if err != nil {
				t.Fatal(err)
			}
			defer net.Close()
			net.RandomizeAll()
			for r := 0; r < 2*rounds; r++ {
				net.Step()
			}
			words := (g.N() + 63) / 64
			if frontiers[0] != words {
				t.Fatalf("round 1 frontier = %d words, want all %d", frontiers[0], words)
			}
			if actives[0] != g.N() {
				t.Fatalf("round 1 active = %d, want %d", actives[0], g.N())
			}
			// After stabilization the frontier must be empty: the
			// detector fires at tr.stabilized, and the observer kept
			// running until the harness stopped.
			last := frontiers[len(frontiers)-1]
			if last != 0 {
				t.Fatalf("final frontier = %d words, want 0 (frontiers tail: %v)", last, frontiers[max(0, len(frontiers)-8):])
			}
			// And it must actually have decayed strictly below full
			// width on the way, or the gating never engaged.
			sawSparse := false
			for _, f := range frontiers {
				if f > 0 && f < words/4 {
					sawSparse = true
					break
				}
			}
			if !sawSparse {
				t.Fatalf("frontier never dropped below %d/4 words: %v", words, frontiers)
			}
		})
	}
}

// TestSparseExternalMutationExact pins the invalidation hooks: state
// mutated between rounds through the public surface (Corrupt, retained
// Machine handles / SetLevel) must re-activate exactly enough of the
// frontier that sparse executions stay bit-identical to dense ones.
func TestSparseExternalMutationExact(t *testing.T) {
	g := graph.GNPAvgDegree(512, 6, rng.New(5))
	proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
	const seed = 31337

	type mutation struct {
		round int
		apply func(t *testing.T, net *beep.Network, src *rng.Source)
	}
	muts := []mutation{
		{30, func(t *testing.T, net *beep.Network, src *rng.Source) {
			if err := net.Corrupt(src.Perm(net.N())[:13]); err != nil {
				t.Fatal(err)
			}
		}},
		{55, func(t *testing.T, net *beep.Network, _ *rng.Source) {
			net.Machine(17).(Leveled).SetLevel(1)
			net.Machine(403).(Leveled).SetLevel(2)
		}},
		{80, func(t *testing.T, net *beep.Network, _ *rng.Source) {
			net.RandomizeAll()
		}},
	}

	run := func(mode beep.SparseMode, engine beep.Engine) [][]beep.Signal {
		var trace [][]beep.Signal
		net, err := beep.NewNetwork(g, proto, seed,
			beep.WithEngine(engine), beep.WithSparse(mode),
			beep.WithObserver(func(_ int, sent, heard []beep.Signal) {
				row := make([]beep.Signal, 0, 2*len(sent))
				row = append(row, sent...)
				row = append(row, heard...)
				trace = append(trace, row)
			}))
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		net.RandomizeAll()
		src := rng.New(777)
		for r := 1; r <= 120; r++ {
			for _, m := range muts {
				if m.round == r {
					m.apply(t, net, src)
				}
			}
			net.Step()
		}
		return trace
	}

	ref := run(beep.SparseOff, beep.Flat)
	for _, cfg := range []struct {
		name   string
		mode   beep.SparseMode
		engine beep.Engine
	}{
		{"flat-auto", beep.SparseAuto, beep.Flat},
		{"flat-on", beep.SparseOn, beep.Flat},
		{"flatparallel-auto", beep.SparseAuto, beep.FlatParallel},
		{"flatparallel-on", beep.SparseOn, beep.FlatParallel},
	} {
		got := run(cfg.mode, cfg.engine)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d rounds, want %d", cfg.name, len(got), len(ref))
		}
		for r := range ref {
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("%s: trace diverged at round %d slot %d", cfg.name, r+1, i)
				}
			}
		}
	}
}

// FuzzSparseFrontierEquivalence pins the frontier propagation rule
// against the dense reference on fuzz-chosen graphs, seeds and fault
// injections: the sparse execution must be bit-identical every round,
// and any round whose reported frontier is empty must be a literal
// fixed point (signals identical to the previous round).
func FuzzSparseFrontierEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(20), uint8(3))
	f.Add(uint64(42), uint8(1), uint8(5), uint8(0))
	f.Add(uint64(1234), uint8(2), uint8(60), uint8(17))
	f.Fuzz(func(t *testing.T, seed uint64, famSel, corruptRound, corruptVertex uint8) {
		var g *graph.Graph
		switch famSel % 4 {
		case 0:
			g = graph.GNPAvgDegree(192, 5, rng.New(seed|1))
		case 1:
			g = graph.Cycle(130)
		case 2:
			g = graph.Grid(11, 12)
		default:
			g = graph.Star(97)
		}
		proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
		const rounds = 90

		run := func(mode beep.SparseMode) ([][]beep.Signal, []int) {
			var trace [][]beep.Signal
			var frontiers []int
			net, err := beep.NewNetwork(g, proto, seed,
				beep.WithEngine(beep.Flat), beep.WithSparse(mode),
				beep.WithObserver(func(_ int, sent, heard []beep.Signal) {
					row := make([]beep.Signal, 0, 2*len(sent))
					row = append(row, sent...)
					row = append(row, heard...)
					trace = append(trace, row)
				}),
				beep.WithStatsObserver(func(_, _, fw int) {
					frontiers = append(frontiers, fw)
				}))
			if err != nil {
				t.Fatal(err)
			}
			defer net.Close()
			net.RandomizeAll()
			for r := 1; r <= rounds; r++ {
				if r == int(corruptRound) {
					if err := net.Corrupt([]int{int(corruptVertex) % g.N()}); err != nil {
						t.Fatal(err)
					}
				}
				net.Step()
			}
			return trace, frontiers
		}

		ref, _ := run(beep.SparseOff)
		for _, mode := range []beep.SparseMode{beep.SparseAuto, beep.SparseOn} {
			got, frontiers := run(mode)
			for r := range ref {
				for i := range ref[r] {
					if got[r][i] != ref[r][i] {
						t.Fatalf("mode %v: diverged at round %d slot %d (fam %d seed %d)", mode, r+1, i, famSel%4, seed)
					}
				}
				if r > 0 && frontiers[r] == 0 {
					for i := range got[r] {
						if got[r][i] != got[r-1][i] {
							t.Fatalf("mode %v: empty frontier at round %d but signals moved at slot %d", mode, r+1, i)
						}
					}
				}
			}
		}
	})
}

// TestSparseReseedExact pins Reseed on the sparse path: a reseeded
// network must replay the fresh-network execution bit for bit even
// though the sender bitsets still hold the previous trial's bits
// (Reseed invalidates them via markAll/forceDense).
func TestSparseReseedExact(t *testing.T) {
	g := graph.GNPAvgDegree(256, 6, rng.New(3))
	proto := NewAlg1(KnownMaxDegreeExact(DefaultC1KnownDelta))
	for _, mode := range []beep.SparseMode{beep.SparseAuto, beep.SparseOn} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(net *beep.Network, rounds int) string {
				h := ""
				for r := 0; r < rounds; r++ {
					net.Step()
				}
				probe, err := Snapshot(net)
				if err != nil {
					t.Fatal(err)
				}
				h = fmt.Sprintf("%v/%d", probe.Stabilized(), probe.StableCount())
				return h
			}
			fresh, err := beep.NewNetwork(g, proto, 4242, beep.WithEngine(beep.Flat), beep.WithSparse(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			want := run(fresh, 60)

			pool, err := beep.NewNetwork(g, proto, 1, beep.WithEngine(beep.Flat), beep.WithSparse(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			run(pool, 37) // dirty the sender bitsets and frontier state
			if err := pool.Reseed(4242); err != nil {
				t.Fatal(err)
			}
			if got := run(pool, 60); got != want {
				t.Fatalf("reseeded run %q != fresh run %q", got, want)
			}
		})
	}
}
