// Package core implements the paper's contribution: self-stabilizing
// maximal-independent-set computation in the full-duplex beeping model
// (Giakkoupis, Turau, Ziccardi, PODC 2024).
//
// It provides:
//
//   - Algorithm 1: the self-stabilizing version of the Jeavons–Scott–Xu
//     beeping MIS algorithm. Each vertex maintains a level
//     ℓ ∈ {-ℓmax(v), …, ℓmax(v)} and beeps with probability
//     min{2^-ℓ, 1}; hearing a beep raises the level, beeping alone drops
//     it to -ℓmax (a committed MIS attempt), silence decays it toward 1.
//   - Algorithm 2: the two-beeping-channel variant with levels in
//     {0, …, ℓmax(v)}, where MIS membership is announced on the second
//     channel.
//   - The knowledge variants of Theorems 2.1 and 2.2 and Corollary 2.3 as
//     LevelCap functions: global maximum degree, own degree, and 1-hop
//     neighborhood maximum degree.
//   - The legality machinery of Section 3 (I_t, S_t, μ_t, η_t, prominent
//     vertices, platinum rounds) used for stabilization detection and the
//     lemma-level experiments.
//   - A Runner that executes an instance to stabilization from arbitrary
//     initial configurations and verifies the resulting MIS.
package core
