package core

import (
	"errors"
	"fmt"

	"repro/internal/beep"
	"repro/internal/graph"
)

// ErrNotStabilized reports that an execution hit its round budget before
// reaching a legal configuration.
var ErrNotStabilized = errors.New("core: execution did not stabilize within the round budget")

// InitMode selects the initial configuration of a run.
type InitMode int

const (
	// InitFresh starts every vertex at ℓmax(v), the neutral silent state
	// (comparable to a clean boot).
	InitFresh InitMode = iota + 1
	// InitRandom draws every level uniformly from the vertex's state
	// space: the "arbitrary initial configuration" of self-stabilization.
	InitRandom
	// InitAdversarial uses a crafted worst-case configuration: every
	// vertex claims MIS membership simultaneously (ℓ = -ℓmax for
	// Algorithm 1, ℓ = 0 for Algorithm 2), the maximal mutual
	// inconsistency a fault can produce.
	InitAdversarial
	// InitZero starts every vertex at level 0 (all vertices beeping with
	// probability 1), another synchronized pathological configuration.
	InitZero
)

// String names the init mode for experiment tables.
func (m InitMode) String() string {
	switch m {
	case InitFresh:
		return "fresh"
	case InitRandom:
		return "random"
	case InitAdversarial:
		return "adversarial"
	case InitZero:
		return "zero"
	default:
		return fmt.Sprintf("init(%d)", int(m))
	}
}

// RunConfig describes one execution of a core algorithm to stabilization.
type RunConfig struct {
	Graph *graph.Graph
	// Protocol must be *Alg1 or *Alg2 (anything whose machines implement
	// Leveled).
	Protocol beep.Protocol
	Seed     uint64
	Init     InitMode
	// MaxRounds bounds the execution; 0 selects a generous default of
	// 1000·(log2 n + 1) + 1000 rounds, far above the w.h.p. bounds.
	MaxRounds int
	Engine    beep.Engine
	// CheckEvery sets how often (in rounds) stabilization is tested;
	// 0 means every round, giving exact stabilization times.
	CheckEvery int
	// Observer, when non-nil, receives each round's signals.
	Observer func(round int, sent, heard []beep.Signal)
	// Noise, when non-zero, makes listening unreliable (see beep.Noise).
	// Under noise, stabilization may hold only intermittently; Run still
	// stops at the first legal snapshot.
	Noise beep.Noise
	// Sleep, when non-zero, makes vertices miss rounds (see beep.Sleep).
	Sleep beep.Sleep
}

// RunResult reports a stabilized execution.
type RunResult struct {
	// Rounds is the number of rounds until S_t = V was first observed
	// (at CheckEvery granularity).
	Rounds int
	// MIS is the stabilized maximal independent set.
	MIS []bool
	// MISSize is the number of MIS vertices.
	MISSize int
}

// defaultMaxRounds returns the default round budget for n vertices.
func defaultMaxRounds(n int) int {
	log := 0
	for x := n; x > 1; x >>= 1 {
		log++
	}
	return 1000*(log+1) + 1000
}

// Run executes the configured instance until the paper's stabilization
// condition holds, then verifies the resulting MIS against the graph.
// It returns ErrNotStabilized (wrapped) if the budget is exhausted.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: nil protocol")
	}
	engine := cfg.Engine
	if engine == 0 {
		engine = beep.Sequential
	}
	opts := []beep.Option{beep.WithEngine(engine), beep.WithNoise(cfg.Noise), beep.WithSleep(cfg.Sleep)}
	if cfg.Observer != nil {
		opts = append(opts, beep.WithObserver(cfg.Observer))
	}
	net, err := beep.NewNetwork(cfg.Graph, cfg.Protocol, cfg.Seed, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: build network: %w", err)
	}
	defer net.Close()

	if err := ApplyInit(net, cfg.Init); err != nil {
		return nil, err
	}
	return runToStabilization(net, cfg.MaxRounds, cfg.CheckEvery)
}

// ApplyInit installs the initial configuration on a freshly built
// network whose machines implement Leveled. It is exported for the
// drivers (stab.Supervisor, cmd/beepmis) that build networks directly
// but must match core.Run's initial-configuration semantics exactly.
func ApplyInit(net *beep.Network, mode InitMode) error {
	switch mode {
	case InitFresh, 0:
		// Machines already start at ℓmax.
		return nil
	case InitRandom:
		net.RandomizeAll()
		return nil
	case InitAdversarial:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(Leveled)
			if !ok {
				return fmt.Errorf("core: init %v: machine %T has no levels", mode, net.Machine(v))
			}
			// SetLevel clamps: -cap for Algorithm 1, 0 for Algorithm 2 —
			// in both cases the "I am in the MIS" extreme.
			m.SetLevel(-m.Cap())
		}
		return nil
	case InitZero:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(Leveled)
			if !ok {
				return fmt.Errorf("core: init %v: machine %T has no levels", mode, net.Machine(v))
			}
			m.SetLevel(0)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown init mode %v", mode)
	}
}

// runToStabilization steps net until Stabilized, the budget runs out, or
// a safety violation is detected, and verifies the final MIS.
func runToStabilization(net *beep.Network, maxRounds, checkEvery int) (*RunResult, error) {
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(net.N())
	}
	if checkEvery <= 0 {
		checkEvery = 1
	}
	var probe State
	stabilized := func() bool {
		if net.Round()%checkEvery != 0 {
			return false
		}
		if err := probe.Refresh(net); err != nil {
			// Surfaced below via the final snapshot; cannot stabilize.
			return false
		}
		return probe.Stabilized()
	}
	rounds, ok := net.Run(maxRounds, stabilized)
	st, err := Snapshot(net)
	if err != nil {
		return nil, err
	}
	if !ok || !st.Stabilized() {
		return nil, fmt.Errorf("%w: %d rounds on %s (n=%d, stable %d/%d)",
			ErrNotStabilized, rounds, net.Graph().Name(), net.N(), st.StableCount(), net.N())
	}
	if err := st.VerifyMIS(); err != nil {
		return nil, fmt.Errorf("core: stabilized to an illegal state: %w", err)
	}
	mis := st.MISMask()
	return &RunResult{
		Rounds:  rounds,
		MIS:     mis,
		MISSize: graph.CountTrue(mis),
	}, nil
}
