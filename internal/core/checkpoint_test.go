package core

import (
	"strings"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestAlg1StateCodecRoundTrip(t *testing.T) {
	m := &alg1Machine{level: -7, lmax: 9}
	state := m.EncodeState()
	m2 := &alg1Machine{}
	if err := m2.DecodeState(state); err != nil {
		t.Fatal(err)
	}
	if m2.level != -7 || m2.lmax != 9 {
		t.Fatalf("decoded %+v", m2)
	}
}

func TestAlg1StateCodecRejects(t *testing.T) {
	m := &alg1Machine{}
	for _, bad := range [][]int64{
		nil,
		{1},
		{1, 2, 3},
		{5, 4},  // level above cap
		{-5, 4}, // level below -cap
		{0, 0},  // cap < 1
		{0, -3}, // negative cap
	} {
		if err := m.DecodeState(bad); err == nil {
			t.Errorf("alg1 state %v accepted", bad)
		}
	}
}

func TestAlg2StateCodecRoundTrip(t *testing.T) {
	m := &alg2Machine{level: 3, lmax: 5}
	m2 := &alg2Machine{}
	if err := m2.DecodeState(m.EncodeState()); err != nil {
		t.Fatal(err)
	}
	if m2.level != 3 || m2.lmax != 5 {
		t.Fatalf("decoded %+v", m2)
	}
	for _, bad := range [][]int64{{-1, 5}, {6, 5}, {0, 0}, {1}} {
		if err := m2.DecodeState(bad); err == nil {
			t.Errorf("alg2 state %v accepted", bad)
		}
	}
}

func TestAdaptiveStateCodecRoundTrip(t *testing.T) {
	m := &adaptiveMachine{
		alg1Machine: alg1Machine{level: -4, lmax: 8},
		collisions:  3, maxCap: 64, threshold: 8,
	}
	m2 := &adaptiveMachine{}
	if err := m2.DecodeState(m.EncodeState()); err != nil {
		t.Fatal(err)
	}
	if m2.level != -4 || m2.lmax != 8 || m2.collisions != 3 || m2.maxCap != 64 || m2.threshold != 8 {
		t.Fatalf("decoded %+v", m2)
	}
	for _, bad := range [][]int64{
		{0, 4, 0, 2, 8},  // maxCap < lmax
		{0, 4, 0, 64, 0}, // threshold < 1
		{0, 4, -1, 64, 8},
		{9, 4, 0, 64, 8},
		{0, 4, 0, 64},
	} {
		if err := m2.DecodeState(bad); err == nil {
			t.Errorf("adaptive state %v accepted", bad)
		}
	}
}

// End-to-end: checkpoint an Algorithm 2 run mid-flight, restore into a
// fresh network, and verify the resumed execution matches the straight
// run exactly (levels and rounds).
func TestAlg2CheckpointResume(t *testing.T) {
	g := graph.GNP(30, 0.15, nilSrc(5))
	proto := NewAlg2(NeighborhoodMaxDegree(DefaultC1TwoHop))
	mk := func(seed uint64) *beep.Network {
		net, err := beep.NewNetwork(g, proto, seed)
		if err != nil {
			t.Fatal(err)
		}
		net.RandomizeAll()
		return net
	}

	ref := mk(9)
	defer ref.Close()
	for i := 0; i < 50; i++ {
		ref.Step()
	}

	a := mk(9)
	defer a.Close()
	for i := 0; i < 25; i++ {
		a.Step()
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := beep.WriteCheckpoint(&sb, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := beep.ReadCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	b, err := beep.NewNetwork(g, proto, 424242)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		b.Step()
	}
	stRef, err := Snapshot(ref)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := Snapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if stRef.Level(v) != stB.Level(v) {
			t.Fatalf("level of %d diverged after resume: %d vs %d", v, stRef.Level(v), stB.Level(v))
		}
	}
}

func TestAlg2WithInitialLevels(t *testing.T) {
	g := graph.Path(3)
	proto := NewAlg2(ConstantCap(4)).WithInitialLevels(func(v int) int { return v * 10 }) // clamped
	net, err := beep.NewNetwork(g, proto, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	st, err := Snapshot(net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Level(0) != 0 || st.Level(1) != 4 || st.Level(2) != 4 {
		t.Fatalf("levels %d %d %d", st.Level(0), st.Level(1), st.Level(2))
	}
	if st.Cap(1) != 4 {
		t.Fatalf("cap %d", st.Cap(1))
	}
	// Two-channel snapshot semantics: level 0 is prominent, its beep
	// probability on channel 1 is 0 (it announces on channel 2).
	if !st.Prominent(0) || st.Prominent(1) {
		t.Fatal("alg2 prominence wrong")
	}
	if st.BeepProbOf(0) != 0 {
		t.Fatalf("alg2 member channel-1 probability %v", st.BeepProbOf(0))
	}
}

// nilSrc builds a graph-generation source.
func nilSrc(seed uint64) *rng.Source { return rng.New(seed) }
