package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests inject write-path failures and assert the two properties
// the checkpoint/manifest stack leans on: a failed WriteFile leaves no
// temporary-file litter in the destination directory, and it never
// truncates or corrupts a pre-existing destination file.

var errInjected = errors.New("injected write failure")

// listDir returns the directory's entries, for litter assertions.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// assertIntact asserts path still holds exactly want.
func assertIntact(t *testing.T, path string, want []byte) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination unreadable after failed write: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("destination corrupted after failed write: got %q, want %q", got, want)
	}
}

func TestWriteFileFailureLeavesNoLitterAndDestinationIntact(t *testing.T) {
	old := []byte("the complete old file")
	cases := []struct {
		name  string
		write func(w io.Writer) error
	}{
		{"fail-immediately", func(w io.Writer) error {
			return errInjected
		}},
		{"fail-after-partial-write", func(w io.Writer) error {
			if _, err := io.WriteString(w, "torn new conten"); err != nil {
				return err
			}
			return errInjected
		}},
		{"enospc-style-short-write", func(w io.Writer) error {
			// An ENOSPC-shaped writer: reports fewer bytes than asked,
			// the way a full disk surfaces through buffered writers.
			if _, err := io.WriteString(w, "partial"); err != nil {
				return err
			}
			return fmt.Errorf("write payload: %w", io.ErrShortWrite)
		}},
		{"panic-in-writer", func(w io.Writer) error {
			panic("writer panicked mid-payload")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			dst := filepath.Join(dir, "state.json")
			if err := os.WriteFile(dst, old, 0o644); err != nil {
				t.Fatal(err)
			}
			func() {
				if tc.name == "panic-in-writer" {
					// A panicking payload writer unwinds through
					// WriteFile; the deferred cleanup must still run.
					defer func() { _ = recover() }()
				}
				if err := WriteFile(dst, tc.write); err == nil && tc.name != "panic-in-writer" {
					t.Fatal("injected failure did not surface")
				}
			}()
			assertIntact(t, dst, old)
			for _, name := range listDir(t, dir) {
				if name != "state.json" {
					t.Fatalf("temp-file litter left behind: %q", name)
				}
			}
		})
	}
}

func TestWriteFileFailureWithoutPreexistingDestination(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "fresh.json")
	if err := WriteFile(dst, func(w io.Writer) error { return errInjected }); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed write materialized a destination: %v", err)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("temp-file litter left behind: %v", names)
	}
}

func TestWriteFileReportsInjectedCause(t *testing.T) {
	dir := t.TempDir()
	err := WriteFile(filepath.Join(dir, "x"), func(w io.Writer) error { return errInjected })
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v does not wrap the writer's error", err)
	}
	if !strings.Contains(err.Error(), "atomicio") {
		t.Fatalf("err = %v does not identify the layer", err)
	}
}
