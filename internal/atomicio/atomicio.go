// Package atomicio provides crash-safe file writes for the experiment
// layer: results, manifests and checkpoints are written to a temporary
// file in the destination directory, fsynced, and renamed over the
// target, so a kill at any instant leaves either the complete old file
// or the complete new file — never a torn one. This is the property the
// run supervisor's auto-checkpointing and the resumable sweeps rely on:
// a checkpoint file that exists is always restorable.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The sequence is: create a temporary file next to path (same
// filesystem, so the rename is atomic), stream the payload into it,
// fsync the file, close it, rename it over path, and fsync the
// directory so the rename itself is durable. On any error the
// temporary file is removed and the target is untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		// Clean up on error AND on a panicking payload writer: the
		// panic unwinds with the named return still nil, and litter
		// from unwound writes would otherwise accumulate in the
		// destination directory.
		if r := recover(); r != nil {
			tmp.Close()
			os.Remove(tmpName)
			panic(r)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	err = syncDir(dir)
	return err
}

// WriteFileBytes is WriteFile for a ready-made payload.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Filesystems that refuse to sync directories (some network mounts) are
// tolerated: the rename is still atomic, only its durability window is
// wider.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
