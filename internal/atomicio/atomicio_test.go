package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new contents")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("read %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestWriteFileFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half a payl") // partial bytes must not surface
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want wrapped mid-write crash", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("target corrupted: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
