// Package bitset provides a minimal dense bitset used by the legality
// detector: membership masks (I_t, S_t) stored one bit per vertex in
// uint64 words, so whole-graph predicates ("is every vertex stable?")
// become word-at-a-time scans instead of per-vertex boolean loops, and
// mask storage shrinks 8×.
package bitset

import "math/bits"

// Set is a dense bitset. The zero value is an empty set of capacity 0;
// grow it with Resize. Bits beyond the logical length must be kept zero
// by all mutating operations (Resize and Reset guarantee it).
type Set struct {
	words []uint64
	n     int
}

const wordBits = 64

// Resize sets the logical length to n bits, reusing storage when
// possible. Newly exposed bits are zero; shrinking clears the tail so
// a later re-grow also sees zeros.
func (s *Set) Resize(n int) {
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Len returns the logical length in bits.
func (s *Set) Len() int { return s.n }

// Words exposes the backing word slice for word-at-a-time kernels (the
// flat engine's beep-delivery scatter/gather). Callers own the aliasing
// hazard and must keep bits beyond Len zero, the standing invariant of
// the package.
func (s *Set) Words() []uint64 { return s.words }

// Reset clears all bits without changing the length.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set1 sets bit i.
func (s *Set) Set1(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to v and reports whether the bit changed.
func (s *Set) SetTo(i int, v bool) bool {
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := s.words[w]&m != 0
	if old == v {
		return false
	}
	if v {
		s.words[w] |= m
	} else {
		s.words[w] &^= m
	}
	return true
}

// OnesCount returns the number of set bits.
func (s *Set) OnesCount() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// All reports whether every bit in [0, Len) is set, scanning a word at
// a time: full words compare against ^0, the tail against its mask.
func (s *Set) All() bool {
	full := s.n / wordBits
	for i := 0; i < full; i++ {
		if s.words[i] != ^uint64(0) {
			return false
		}
	}
	if tail := s.n % wordBits; tail != 0 {
		if s.words[full] != (uint64(1)<<uint(tail))-1 {
			return false
		}
	}
	return true
}

// AppendBools appends the bits of [0, Len) as booleans to dst and
// returns the extended slice (pass dst[:0] to fill a reused buffer).
func (s *Set) AppendBools(dst []bool) []bool {
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.Get(i))
	}
	return dst
}

// FillBools writes the bits of [0, Len) into dst, which must have
// length at least Len.
func (s *Set) FillBools(dst []bool) {
	if s.n == 0 {
		return
	}
	_ = dst[s.n-1]
	for i := 0; i < s.n; i++ {
		dst[i] = s.Get(i)
	}
}
