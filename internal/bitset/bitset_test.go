package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	var s Set
	s.Resize(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.OnesCount() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Set1(0)
	s.Set1(63)
	s.Set1(64)
	s.Set1(129)
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Get(1) || s.Get(65) || s.Get(128) {
		t.Fatal("unexpected bit set")
	}
	if s.OnesCount() != 4 {
		t.Fatalf("OnesCount = %d, want 4", s.OnesCount())
	}
	s.Clear(63)
	if s.Get(63) || s.OnesCount() != 3 {
		t.Fatal("Clear failed")
	}
}

func TestSetToReportsChange(t *testing.T) {
	var s Set
	s.Resize(70)
	if !s.SetTo(69, true) {
		t.Fatal("0→1 should report change")
	}
	if s.SetTo(69, true) {
		t.Fatal("1→1 should not report change")
	}
	if !s.SetTo(69, false) {
		t.Fatal("1→0 should report change")
	}
	if s.SetTo(69, false) {
		t.Fatal("0→0 should not report change")
	}
}

func TestAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		var s Set
		s.Resize(n)
		for i := 0; i < n; i++ {
			s.Set1(i)
		}
		if !s.All() {
			t.Fatalf("n=%d: All false on full set", n)
		}
		s.Clear(n - 1)
		if s.All() {
			t.Fatalf("n=%d: All true with a cleared bit", n)
		}
		s.Set1(n - 1)
		s.Clear(0)
		if s.All() {
			t.Fatalf("n=%d: All true with bit 0 cleared", n)
		}
	}
	var empty Set
	empty.Resize(0)
	if !empty.All() {
		t.Fatal("empty set should be vacuously full")
	}
}

func TestResizeReuseClearsTail(t *testing.T) {
	var s Set
	s.Resize(128)
	for i := 0; i < 128; i++ {
		s.Set1(i)
	}
	s.Resize(64) // shrink within capacity: must clear
	if s.OnesCount() != 0 {
		t.Fatal("Resize reuse left stale bits")
	}
	s.Resize(128)
	if s.OnesCount() != 0 {
		t.Fatal("re-grow exposed stale bits")
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, n := range []int{5, 64, 100} {
		ref := make([]bool, n)
		var s Set
		s.Resize(n)
		for i := range ref {
			ref[i] = rnd.Intn(2) == 1
			if ref[i] {
				s.Set1(i)
			}
		}
		got := s.AppendBools(nil)
		if len(got) != n {
			t.Fatalf("AppendBools length %d, want %d", len(got), n)
		}
		fill := make([]bool, n)
		s.FillBools(fill)
		for i := range ref {
			if got[i] != ref[i] || fill[i] != ref[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
		if s.OnesCount() != countTrue(ref) {
			t.Fatal("OnesCount mismatch")
		}
	}
}

func countTrue(b []bool) int {
	c := 0
	for _, v := range b {
		if v {
			c++
		}
	}
	return c
}
