package graph

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	graphs := []*Graph{
		Empty(3),
		Path(6),
		Cycle(8),
		GNP(60, 0.1, rng.New(1)),
	}
	for _, g := range graphs {
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name(), err)
		}
		g2, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name(), err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("%s: round trip changed shape: %d/%d vs %d/%d", g.Name(), g2.N(), g2.M(), g.N(), g.M())
		}
		for _, e := range g.Edges() {
			if !g2.HasEdge(e.U, e.V) {
				t.Fatalf("%s: lost edge %v", g.Name(), e)
			}
		}
		if g2.Name() != g.Name() {
			t.Fatalf("%s: name became %q", g.Name(), g2.Name())
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"edge before header": "0 1\n",
		"missing header":     "# just a comment\n",
		"malformed header":   "n\n",
		"bad endpoint count": "n 3\n0 1 2\n",
		"non-numeric":        "n 3\n0 x\n",
		"self loop":          "n 3\n1 1\n",
		"out of range":       "n 3\n0 5\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: no error for %q", name, input)
		}
	}
}

func TestReadEdgeListSkipsBlanksAndComments(t *testing.T) {
	input := "# my graph\n\nn 3\n# edge below\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed shape %d/%d", g.N(), g.M())
	}
	if g.Name() != "my graph" {
		t.Fatalf("name %q", g.Name())
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph", "0 -- 1", "1 -- 2", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// nil mask also works.
	sb.Reset()
	if err := WriteDOT(&sb, g.WithName(""), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `graph "G"`) {
		t.Fatalf("default name missing:\n%s", sb.String())
	}
}

func TestReadEdgeListRejectsHugeHeader(t *testing.T) {
	// Untrusted headers must not trigger giant allocations (fuzz find).
	if _, err := ReadEdgeList(strings.NewReader("n 200000000\n")); err == nil {
		t.Fatal("oversized vertex count accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("n -5\n")); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}
