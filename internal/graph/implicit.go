package graph

import (
	"fmt"
	"math"
)

// Implicit topologies: generator-backed Topology implementations whose
// neighborhoods are synthesized on the fly from closed-form rules, with
// zero adjacency storage. They are the backend that makes n = 10⁸
// simulable in one process: per-vertex state still costs O(1) words,
// but the graph itself costs O(1) total.
//
// Each implicit family is bit-identical to its materialized
// counterpart: Materialize(ImplicitTorus(r, c)) has exactly the CSR of
// Torus(r, c), same FingerprintOf, same traces under every engine. The
// cross-backend equivalence tests pin this.
//
// NeighborsInto on these backends fills the caller's buffer (which must
// hold MaxDegree() entries); ForEachNeighbor uses a small stack buffer
// and is safe for concurrent use.

// sortSmallInt32 insertion-sorts xs in place. Rows here have at most a
// few dozen entries (4 for grid/torus, d ≤ 30 for hypercubes, the
// stencil size for lattice disk graphs), where insertion sort beats the
// sort package and never allocates.
func sortSmallInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// implicitGrid is the rows×cols 4-neighbor grid, structurally identical
// to Grid(rows, cols).
type implicitGrid struct {
	rows, cols int
	maxDeg, m  int
	name       string
}

// ImplicitGrid returns the rows×cols grid as an implicit Topology,
// bit-identical to Grid(rows, cols) with zero adjacency storage.
func ImplicitGrid(rows, cols int) Topology {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	t := &implicitGrid{rows: rows, cols: cols, name: fmt.Sprintf("grid-%dx%d", rows, cols)}
	if rows > 0 && cols > 0 {
		t.m = rows*(cols-1) + cols*(rows-1)
		t.maxDeg = minInt(2, rows-1) + minInt(2, cols-1)
	}
	return t
}

func (t *implicitGrid) N() int         { return t.rows * t.cols }
func (t *implicitGrid) M() int         { return t.m }
func (t *implicitGrid) MaxDegree() int { return t.maxDeg }
func (t *implicitGrid) Name() string   { return t.name }

func (t *implicitGrid) Degree(v int) int {
	r, c := v/t.cols, v%t.cols
	d := 0
	if r > 0 {
		d++
	}
	if r+1 < t.rows {
		d++
	}
	if c > 0 {
		d++
	}
	if c+1 < t.cols {
		d++
	}
	return d
}

func (t *implicitGrid) NeighborsInto(v int, buf []int32) []int32 {
	r, c := v/t.cols, v%t.cols
	k := 0
	// Emitted in ascending id order by construction:
	// v-cols < v-1 < v+1 < v+cols.
	if r > 0 {
		buf[k] = int32(v - t.cols)
		k++
	}
	if c > 0 {
		buf[k] = int32(v - 1)
		k++
	}
	if c+1 < t.cols {
		buf[k] = int32(v + 1)
		k++
	}
	if r+1 < t.rows {
		buf[k] = int32(v + t.cols)
		k++
	}
	return buf[:k]
}

func (t *implicitGrid) ForEachNeighbor(v int, fn func(u int32) bool) {
	var a [4]int32
	for _, u := range t.NeighborsInto(v, a[:]) {
		if !fn(u) {
			return
		}
	}
}

// implicitTorus is the rows×cols wraparound grid, structurally
// identical to Torus(rows, cols). Dimensions of extent 2 contribute a
// single neighbor (wraparound coincides with adjacency and the
// materialized generator dedups the doubled edge); extent 1 contributes
// none.
type implicitTorus struct {
	rows, cols int
	deg, m     int
	name       string
}

// ImplicitTorus returns the rows×cols torus as an implicit Topology,
// bit-identical to Torus(rows, cols) with zero adjacency storage. The
// torus is vertex-transitive, so every vertex has the same degree.
func ImplicitTorus(rows, cols int) Topology {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	t := &implicitTorus{rows: rows, cols: cols, name: fmt.Sprintf("torus-%dx%d", rows, cols)}
	if rows > 0 && cols > 0 {
		t.deg = torusAxisDeg(rows) + torusAxisDeg(cols)
		t.m = rows * cols * t.deg / 2
	}
	return t
}

// torusAxisDeg is the per-axis neighbor count: extent 1 wraps to self
// (no edge), extent 2 has coinciding ±1 neighbors (one edge), extent
// ≥ 3 has two.
func torusAxisDeg(extent int) int {
	switch {
	case extent < 2:
		return 0
	case extent == 2:
		return 1
	default:
		return 2
	}
}

func (t *implicitTorus) N() int         { return t.rows * t.cols }
func (t *implicitTorus) M() int         { return t.m }
func (t *implicitTorus) MaxDegree() int { return t.deg }
func (t *implicitTorus) Degree(int) int { return t.deg }
func (t *implicitTorus) Name() string   { return t.name }

func (t *implicitTorus) NeighborsInto(v int, buf []int32) []int32 {
	r, c := v/t.cols, v%t.cols
	k := 0
	if t.rows >= 2 {
		buf[k] = int32(((r-1+t.rows)%t.rows)*t.cols + c)
		k++
		if t.rows >= 3 {
			buf[k] = int32(((r+1)%t.rows)*t.cols + c)
			k++
		}
	}
	if t.cols >= 2 {
		buf[k] = int32(r*t.cols + (c-1+t.cols)%t.cols)
		k++
		if t.cols >= 3 {
			buf[k] = int32(r*t.cols + (c+1)%t.cols)
			k++
		}
	}
	sortSmallInt32(buf[:k])
	return buf[:k]
}

func (t *implicitTorus) ForEachNeighbor(v int, fn func(u int32) bool) {
	var a [4]int32
	for _, u := range t.NeighborsInto(v, a[:]) {
		if !fn(u) {
			return
		}
	}
}

// implicitHypercube is the d-dimensional hypercube Q_d, structurally
// identical to Hypercube(d).
type implicitHypercube struct {
	d    int
	name string
}

// maxHypercubeDim bounds the dimension so 2^d vertex ids fit int32 (the
// CSR id type shared by every backend).
const maxHypercubeDim = 30

// ImplicitHypercube returns Q_d as an implicit Topology, bit-identical
// to Hypercube(d) with zero adjacency storage. d must be in
// [0, 30] so vertex ids fit int32.
func ImplicitHypercube(d int) Topology {
	if d < 0 || d > maxHypercubeDim {
		panic(fmt.Sprintf("graph: hypercube dimension %d outside [0, %d]", d, maxHypercubeDim))
	}
	return &implicitHypercube{d: d, name: fmt.Sprintf("hypercube-%d", d)}
}

func (t *implicitHypercube) N() int         { return 1 << uint(t.d) }
func (t *implicitHypercube) M() int         { return t.d * (1 << uint(t.d)) / 2 }
func (t *implicitHypercube) MaxDegree() int { return t.d }
func (t *implicitHypercube) Degree(int) int { return t.d }
func (t *implicitHypercube) Name() string   { return t.name }

func (t *implicitHypercube) NeighborsInto(v int, buf []int32) []int32 {
	// Ascending without sorting: flipping a set bit lowers the id (and
	// lower set bits lower it less), flipping a clear bit raises it (and
	// higher clear bits raise it more).
	k := 0
	for b := t.d - 1; b >= 0; b-- {
		if v&(1<<uint(b)) != 0 {
			buf[k] = int32(v ^ (1 << uint(b)))
			k++
		}
	}
	for b := 0; b < t.d; b++ {
		if v&(1<<uint(b)) == 0 {
			buf[k] = int32(v ^ (1 << uint(b)))
			k++
		}
	}
	return buf[:k]
}

func (t *implicitHypercube) ForEachNeighbor(v int, fn func(u int32) bool) {
	var a [maxHypercubeDim]int32
	for _, u := range t.NeighborsInto(v, a[:t.d]) {
		if !fn(u) {
			return
		}
	}
}

// implicitUDGT is a unit-disk graph over the integer lattice on a
// torus: vertices at lattice positions (r, c), edges between positions
// at toroidal Euclidean distance ≤ radius. It is the deterministic,
// vertex-transitive stand-in for the random unit-disk deployments of
// UnitDisk — the same local geometry (disk neighborhoods, degree
// ~πr²), but synthesizable in O(1) per row, which is what lets a
// "wireless sensor field" scale to 10⁸ devices.
type implicitUDGT struct {
	rows, cols int
	radius     float64
	reach      int     // floor(radius): max |dr|, |dc|
	stencil    []int32 // linear offsets dr·cols+dc, ascending (interior fast path)
	offs       [][2]int16
	name       string
}

// ImplicitUnitDiskGridTorus returns the lattice unit-disk torus as an
// implicit Topology. It requires 2·floor(radius)+1 ≤ min(rows, cols) so
// a disk never wraps onto itself (every stencil offset lands on a
// distinct vertex), which keeps rows duplicate-free by construction.
func ImplicitUnitDiskGridTorus(rows, cols int, radius float64) (Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: unit-disk grid torus needs positive dimensions, got %dx%d", rows, cols)
	}
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("graph: unit-disk grid torus radius %v invalid", radius)
	}
	reach := int(math.Floor(radius))
	if m := minInt(rows, cols); 2*reach+1 > m {
		return nil, fmt.Errorf("graph: unit-disk radius %g too large: need 2·floor(r)+1 = %d ≤ min(rows, cols) = %d", radius, 2*reach+1, m)
	}
	t := &implicitUDGT{
		rows: rows, cols: cols, radius: radius, reach: reach,
		name: fmt.Sprintf("udgt-%dx%d-r%.3g", rows, cols, radius),
	}
	r2 := radius * radius
	for dr := -reach; dr <= reach; dr++ {
		for dc := -reach; dc <= reach; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			if float64(dr*dr+dc*dc) <= r2 {
				// (dr, dc) lexicographic order makes the linear offsets
				// strictly ascending, so interior rows need no sort.
				t.stencil = append(t.stencil, int32(dr*cols+dc))
				t.offs = append(t.offs, [2]int16{int16(dr), int16(dc)})
			}
		}
	}
	return t, nil
}

func (t *implicitUDGT) N() int         { return t.rows * t.cols }
func (t *implicitUDGT) M() int         { return t.rows * t.cols * len(t.stencil) / 2 }
func (t *implicitUDGT) MaxDegree() int { return len(t.stencil) }
func (t *implicitUDGT) Degree(int) int { return len(t.stencil) }
func (t *implicitUDGT) Name() string   { return t.name }

func (t *implicitUDGT) NeighborsInto(v int, buf []int32) []int32 {
	r, c := v/t.cols, v%t.cols
	R := t.reach
	if r >= R && r+R < t.rows && c >= R && c+R < t.cols {
		// Interior: no wraparound, offsets apply directly and are
		// already ascending.
		for i, off := range t.stencil {
			buf[i] = int32(v) + off
		}
		return buf[:len(t.stencil)]
	}
	for i, o := range t.offs {
		rr := r + int(o[0])
		if rr < 0 {
			rr += t.rows
		} else if rr >= t.rows {
			rr -= t.rows
		}
		cc := c + int(o[1])
		if cc < 0 {
			cc += t.cols
		} else if cc >= t.cols {
			cc -= t.cols
		}
		buf[i] = int32(rr*t.cols + cc)
	}
	out := buf[:len(t.offs)]
	sortSmallInt32(out)
	return out
}

func (t *implicitUDGT) ForEachNeighbor(v int, fn func(u int32) bool) {
	var a [64]int32
	buf := a[:]
	if len(t.stencil) > len(buf) {
		buf = make([]int32, len(t.stencil))
	}
	for _, u := range t.NeighborsInto(v, buf) {
		if !fn(u) {
			return
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
