package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Fatalf("dist[%d]=%d want %d", v, dist[v], want)
		}
	}
	// Out-of-range source yields all -1.
	for _, d := range g.BFS(-1) {
		if d != -1 {
			t.Fatal("invalid source produced distances")
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}})
	dist := g.BFS(0)
	if dist[1] != 1 || dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("dist %v", dist)
	}
}

func TestDiameterKnownGraphs(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(10), 9},
		{Cycle(10), 5},
		{Complete(7), 1},
		{Star(9), 2},
		{Empty(4), 0},
		{Hypercube(4), 4},
		{Grid(3, 5), 6},
	}
	for _, tc := range cases {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s: diameter %d want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestDiameterApproxBounds(t *testing.T) {
	src := rng.New(11)
	graphs := []*Graph{Path(30), Cycle(31), GNP(100, 0.08, src), BinaryTree(63)}
	for _, g := range graphs {
		exact := g.Diameter()
		approx := g.DiameterApprox()
		if approx > exact {
			t.Errorf("%s: approx %d exceeds exact %d", g.Name(), approx, exact)
		}
		if 2*approx < exact {
			t.Errorf("%s: approx %d below half of exact %d", g.Name(), approx, exact)
		}
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5)
	if g.Eccentricity(0) != 4 || g.Eccentricity(2) != 2 {
		t.Fatal("eccentricity wrong")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // center degree 4, four leaves degree 1
	h := g.DegreeHistogram()
	if len(h) != 5 || h[1] != 4 || h[4] != 1 || h[0] != 0 {
		t.Fatalf("histogram %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.N() {
		t.Fatalf("histogram total %d", total)
	}
}

func TestDensity(t *testing.T) {
	if d := Complete(6).Density(); d != 1 {
		t.Fatalf("K6 density %v", d)
	}
	if d := Empty(6).Density(); d != 0 {
		t.Fatalf("empty density %v", d)
	}
	if d := Empty(1).Density(); d != 0 {
		t.Fatalf("singleton density %v", d)
	}
}

func TestIsConnected(t *testing.T) {
	if !Cycle(5).IsConnected() || !Empty(0).IsConnected() {
		t.Fatal("connected graphs misreported")
	}
	if Empty(2).IsConnected() {
		t.Fatal("disconnected graph misreported")
	}
}

func TestTriangleCountKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Complete(4), 4},
		{Complete(5), 10},
		{Cycle(3), 1},
		{Cycle(5), 0},
		{Path(10), 0},
		{CompleteBipartite(3, 3), 0},
		{Empty(5), 0},
	}
	for _, tc := range cases {
		if got := tc.g.TriangleCount(); got != tc.want {
			t.Errorf("%s: triangles %d want %d", tc.g.Name(), got, tc.want)
		}
	}
}

// Property: BFS distances satisfy the triangle property along edges
// (|d(u) - d(v)| <= 1 for every edge within the reachable set).
func TestBFSEdgeConsistencyProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		g := GNP(n, 0.15, rng.New(seed))
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if (du < 0) != (dv < 0) {
				return false // one endpoint reachable, the other not
			}
			if du >= 0 && abs(du-dv) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: triangle count of G(n,p) matches a brute-force count.
func TestTriangleCountMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(18, 0.3, rng.New(seed))
		brute := 0
		n := g.N()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !g.HasEdge(a, b) {
					continue
				}
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, c) && g.HasEdge(b, c) {
						brute++
					}
				}
			}
		}
		return g.TriangleCount() == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
