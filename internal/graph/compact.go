package graph

import "fmt"

// Compact is the delta-varint materialized graph backend: adjacency
// rows are stored as unsigned varints of consecutive-neighbor gaps, so
// a sorted row of small-degree, locality-heavy graphs (grids, meshes,
// geometric/RGG deployments) costs ~1–2 bytes per endpoint instead of
// the 4 of the int32 CSR. Row starts are found through fixed-stride
// byte-offset samples: vertex v's row is reached by jumping to the
// sample at v/stride and skipping at most stride-1 rows, an O(1) seek
// for constant stride.
//
// Row encoding (per vertex, in vertex order):
//
//	uvarint(deg)
//	uvarint(row[0] + 1)              // gap from the sentinel -1
//	uvarint(row[i] - row[i-1])       // i ≥ 1; strictly ascending ⇒ ≥ 1
//
// Decoding runs acc = -1; acc += gap, a single uniform loop. Every gap
// must be ≥ 1 and every decoded id in [0, n): DecodeBGR validates the
// whole payload once at load time, so row access never re-checks and
// never panics on graphs that passed validation.
//
// A Compact is immutable after construction and safe for concurrent
// readers, like *Graph.
type Compact struct {
	name    string
	n, m    int
	maxDeg  int
	stride  int
	samples []uint64 // byte offset of row start for vertices 0, stride, 2·stride, …
	payload []byte   // concatenated varint rows

	// unmap releases a memory mapping backing payload (set by ReadBGR
	// on unix, nil for in-memory graphs); closed marks a graph whose
	// backing store has been released.
	unmap  func() error
	closed bool
}

// DefaultCompactStride is the sampling stride used by Compress: row
// seeks skip at most this many rows, and samples cost 8/stride bytes
// per vertex (0.25 B/vertex at 32).
const DefaultCompactStride = 32

var _ Topology = (*Compact)(nil)

// Compress encodes any Topology into the delta-varint backend with the
// default stride. The result presents the identical canonical view:
// same rows, same FingerprintOf, interchangeable with the source in
// every engine.
func Compress(t Topology) *Compact {
	return CompressStride(t, DefaultCompactStride)
}

// CompressStride is Compress with an explicit sampling stride ≥ 1.
func CompressStride(t Topology, stride int) *Compact {
	if stride < 1 {
		stride = 1
	}
	n := t.N()
	c := &Compact{
		name:   t.Name(),
		n:      n,
		m:      t.M(),
		maxDeg: t.MaxDegree(),
		stride: stride,
	}
	c.samples = make([]uint64, (n+stride-1)/stride+1)
	// Guess ~1.5 bytes per endpoint plus one length byte per row.
	c.payload = make([]byte, 0, n+3*c.m)
	buf := make([]int32, c.maxDeg)
	var tmp [10]byte
	putUvarint := func(x uint64) {
		k := 0
		for x >= 0x80 {
			tmp[k] = byte(x) | 0x80
			x >>= 7
			k++
		}
		tmp[k] = byte(x)
		c.payload = append(c.payload, tmp[:k+1]...)
	}
	si := 0
	for v := 0; v < n; v++ {
		if v%stride == 0 {
			c.samples[si] = uint64(len(c.payload))
			si++
		}
		row := t.NeighborsInto(v, buf)
		putUvarint(uint64(len(row)))
		prev := int32(-1)
		for _, u := range row {
			putUvarint(uint64(u - prev))
			prev = u
		}
	}
	c.samples[si] = uint64(len(c.payload))
	return c
}

func (c *Compact) N() int         { return c.n }
func (c *Compact) M() int         { return c.m }
func (c *Compact) MaxDegree() int { return c.maxDeg }
func (c *Compact) Name() string   { return c.name }

// Stride returns the row-sampling stride.
func (c *Compact) Stride() int { return c.stride }

// Bytes returns the encoded size in bytes (payload plus samples), the
// number the bytes/vertex memory-model figures quote.
func (c *Compact) Bytes() int { return len(c.payload) + 8*len(c.samples) }

// Close releases the graph's backing store: for a graph loaded by
// ReadBGR on unix this unmaps the file; for in-memory graphs it only
// drops the payload for the collector. Close is idempotent and must
// not race with readers. Any row access after Close panics with a
// descriptive message instead of faulting on unmapped memory — a
// closed graph must not be used.
func (c *Compact) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.samples, c.payload = nil, nil
	if u := c.unmap; u != nil {
		c.unmap = nil
		return u()
	}
	return nil
}

// rowStart returns the byte offset of vertex v's row: jump to the
// nearest preceding sample, then skip whole rows. Skipping scans
// continuation bits only — no decoding. Every row accessor funnels
// through here, so the use-after-Close check guards them all.
func (c *Compact) rowStart(v int) int {
	if c.closed {
		panic(fmt.Sprintf("graph: use of closed compact graph %q", c.name))
	}
	p := int(c.samples[v/c.stride])
	for skip := v % c.stride; skip > 0; skip-- {
		deg, q := decodeUvarint(c.payload, p)
		p = q
		for i := uint64(0); i < deg; i++ {
			for c.payload[p]&0x80 != 0 {
				p++
			}
			p++
		}
	}
	return p
}

// decodeUvarint decodes the uvarint at payload[p:], returning the value
// and the offset just past it. Payloads are validated at construction
// (Compress output is well-formed by construction; DecodeBGR validates
// untrusted bytes), so this hot-path form skips bounds re-checks beyond
// the slice's own.
func decodeUvarint(payload []byte, p int) (uint64, int) {
	var x uint64
	var s uint
	for {
		b := payload[p]
		p++
		if b < 0x80 {
			return x | uint64(b)<<s, p
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Degree implements Topology.
func (c *Compact) Degree(v int) int {
	deg, _ := decodeUvarint(c.payload, c.rowStart(v))
	return int(deg)
}

// NeighborsInto implements Topology: decodes row v into buf (which must
// hold MaxDegree() entries) and returns buf[:deg].
func (c *Compact) NeighborsInto(v int, buf []int32) []int32 {
	p := c.rowStart(v)
	deg, p := decodeUvarint(c.payload, p)
	acc := int32(-1)
	for i := uint64(0); i < deg; i++ {
		gap, q := decodeUvarint(c.payload, p)
		p = q
		acc += int32(gap)
		buf[i] = acc
	}
	return buf[:deg]
}

// ForEachNeighbor implements Topology, decoding the row in place with
// no buffer.
func (c *Compact) ForEachNeighbor(v int, fn func(u int32) bool) {
	p := c.rowStart(v)
	deg, p := decodeUvarint(c.payload, p)
	acc := int32(-1)
	for i := uint64(0); i < deg; i++ {
		gap, q := decodeUvarint(c.payload, p)
		p = q
		acc += int32(gap)
		if !fn(acc) {
			return
		}
	}
}
