package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// The generators below produce the graph families used across the
// experiment suite. Deterministic families take only sizes; random
// families take an *rng.Source so experiments are reproducible.

// Empty returns the graph with n vertices and no edges. Every vertex is
// in the unique MIS, a useful degenerate case for algorithm tests.
func Empty(n int) *Graph {
	return MustNew(n, nil).WithName(fmt.Sprintf("empty-%d", n))
}

// Path returns the path P_n: 0-1-2-…-(n-1).
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{U: v, V: v + 1})
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("path-%d", n))
}

// Cycle returns the cycle C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n).WithName(fmt.Sprintf("cycle-%d", n))
	}
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{U: v, V: (v + 1) % n})
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("cycle-%d", n))
}

// Complete returns the complete graph K_n. Its MIS is a single vertex;
// it maximizes contention among beeping vertices.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("complete-%d", n))
}

// Star returns the star K_{1,n-1} with center 0. It is the extreme
// degree-heterogeneous case for the own-degree knowledge variant.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: 0, V: v})
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("star-%d", n))
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	edges := make([]Edge, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, Edge{U: u, V: a + v})
		}
	}
	return MustNew(a+b, edges).WithName(fmt.Sprintf("bipartite-%dx%d", a, b))
}

// Grid returns the rows×cols king-free (4-neighbor) grid graph, a proxy
// for planar sensor deployments.
func Grid(rows, cols int) *Graph {
	id := func(r, c int) int { return r*cols + c }
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return MustNew(rows*cols, edges).WithName(fmt.Sprintf("grid-%dx%d", rows, cols))
}

// Torus returns the rows×cols grid with wraparound edges (4-regular when
// rows, cols >= 3).
func Torus(rows, cols int) *Graph {
	id := func(r, c int) int { return r*cols + c }
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				edges = append(edges, Edge{U: id(r, c), V: id(r, (c+1)%cols)})
			}
			if rows > 1 {
				edges = append(edges, Edge{U: id(r, c), V: id((r+1)%rows, c)})
			}
		}
	}
	return MustNew(rows*cols, edges).WithName(fmt.Sprintf("torus-%dx%d", rows, cols))
}

// BinaryTree returns the complete binary tree on n vertices (heap
// numbering: children of v are 2v+1 and 2v+2).
func BinaryTree(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: (v - 1) / 2, V: v})
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("bintree-%d", n))
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	edges := make([]Edge, 0, d*n/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if u > v {
				edges = append(edges, Edge{U: v, V: u})
			}
		}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("hypercube-%d", d))
}

// Caterpillar returns a caterpillar: a spine path of length n/2 with one
// leg attached to every spine vertex. Spine vertices are 0..spine-1.
// It mixes degree-1 and degree-3 vertices, a mildly heterogeneous family.
func Caterpillar(n int) *Graph {
	spine := (n + 1) / 2
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < spine; v++ {
		edges = append(edges, Edge{U: v, V: v + 1})
	}
	for leg := spine; leg < n; leg++ {
		edges = append(edges, Edge{U: leg - spine, V: leg})
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("caterpillar-%d", n))
}

// Lollipop returns a clique of size k joined by a path of length n-k:
// a classic worst case mixing dense and sparse regions.
func Lollipop(n, k int) *Graph {
	if k > n {
		k = n
	}
	edges := make([]Edge, 0, k*(k-1)/2+n-k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	for v := k; v < n; v++ {
		edges = append(edges, Edge{U: v - 1, V: v})
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("lollipop-%d-%d", n, k))
}

// GNP returns an Erdős–Rényi G(n, p) sample.
func GNP(n int, p float64, src *rng.Source) *Graph {
	var edges []Edge
	if p >= 1 {
		return Complete(n).WithName(fmt.Sprintf("gnp-%d-1.0", n))
	}
	if p > 0 {
		// Geometric skipping: iterate over the implicit edge enumeration
		// jumping Geom(p) positions at a time, O(pn²) expected work.
		logq := math.Log1p(-p)
		total := int64(n) * int64(n-1) / 2
		pos := int64(-1)
		for {
			u := src.Float64()
			if u == 0 {
				u = math.SmallestNonzeroFloat64
			}
			skip := int64(math.Floor(math.Log(u) / logq))
			pos += 1 + skip
			if pos >= total {
				break
			}
			a, b := edgeFromIndex(pos)
			edges = append(edges, Edge{U: a, V: b})
		}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("gnp-%d-%.3g", n, p))
}

// edgeFromIndex maps a linear index in [0, n(n-1)/2) to the pair (a, b)
// with a < b under the enumeration (0,1),(0,2),…,(1,2),… row by row of
// the strict upper triangle, computed by inverting the triangular count.
func edgeFromIndex(pos int64) (int, int) {
	// b is the smallest integer with b(b+1)/2 > pos under the column-major
	// enumeration (0,1),(0,2),(1,2),(0,3),… — pairs ordered by larger
	// endpoint. This avoids needing n.
	b := int64(math.Floor((1 + math.Sqrt(1+8*float64(pos))) / 2))
	for b*(b-1)/2 > pos {
		b--
	}
	for (b+1)*b/2 <= pos {
		b++
	}
	a := pos - b*(b-1)/2
	return int(a), int(b)
}

// GNPAvgDegree returns G(n, p) with p chosen so the expected average
// degree is d.
func GNPAvgDegree(n int, d float64, src *rng.Source) *Graph {
	if n <= 1 {
		return Empty(n)
	}
	p := d / float64(n-1)
	if p > 1 {
		p = 1
	}
	return GNP(n, p, src).WithName(fmt.Sprintf("gnp-%d-avg%.3g", n, d))
}

// RandomRegular returns a d-regular graph via the pairing
// (configuration) model with edge-swap repair: d·n must be even and
// d < n. Pairs producing self-loops or duplicate edges are repaired by
// swapping endpoints with uniformly chosen good edges — the standard
// technique that preserves near-uniformity while guaranteeing a simple
// d-regular result for the d ≪ n regimes the experiments use.
func RandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: random regular degree %d out of range for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular requires even n*d, got %d*%d", n, d)
	}
	if d == 0 {
		return Empty(n).WithName(fmt.Sprintf("regular-%d-d0", n)), nil
	}

	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type pair = [2]int32
	norm := func(a, b int32) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	seen := make(map[pair]bool, n*d/2)
	good := make([]pair, 0, n*d/2)
	var bad []pair
	for i := 0; i+1 < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		p := norm(a, b)
		if a == b || seen[p] {
			bad = append(bad, pair{a, b})
			continue
		}
		seen[p] = true
		good = append(good, p)
	}

	// Repair: swap each bad pair's endpoints with a random good edge
	// such that both replacement edges are new and loop-free.
	maxTries := 200 * (len(bad) + 1)
	for tries := 0; len(bad) > 0 && tries < maxTries; tries++ {
		last := bad[len(bad)-1]
		u, v := last[0], last[1]
		j := src.Intn(len(good))
		a, b := good[j][0], good[j][1]
		e1, e2 := norm(u, a), norm(v, b)
		if u == a || v == b || seen[e1] || seen[e2] || (e1 == e2) {
			// Try the crossed pairing too.
			e1, e2 = norm(u, b), norm(v, a)
			if u == b || v == a || seen[e1] || seen[e2] || (e1 == e2) {
				continue
			}
		}
		delete(seen, good[j])
		seen[e1] = true
		seen[e2] = true
		good[j] = e1
		good = append(good, e2)
		bad = bad[:len(bad)-1]
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("graph: could not repair %d conflicting pairs for a %d-regular graph on %d vertices", len(bad), d, n)
	}

	edges := make([]Edge, len(good))
	for i, p := range good {
		edges[i] = Edge{U: int(p[0]), V: int(p[1])}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("regular-%d-d%d", n, d)), nil
}

// PreferentialAttachment returns a Barabási–Albert-style graph: vertices
// arrive one at a time and attach m edges to existing vertices chosen
// proportionally to degree (realized by sampling uniform endpoints of the
// running edge list). It produces the heavy-tailed degree distributions
// that stress the own-degree knowledge variant.
func PreferentialAttachment(n, m int, src *rng.Source) *Graph {
	if n <= 0 {
		return Empty(0)
	}
	if m < 1 {
		m = 1
	}
	// Seed with a small clique of m+1 vertices.
	seed := m + 1
	if seed > n {
		seed = n
	}
	var edges []Edge
	// targets holds every edge endpoint; sampling a uniform element is
	// degree-proportional sampling.
	var targets []int32
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			edges = append(edges, Edge{U: u, V: v})
			targets = append(targets, int32(u), int32(v))
		}
	}
	for v := seed; v < n; v++ {
		// Collect m distinct attachment targets in draw order; a map
		// would do, but its iteration order is randomized by the
		// runtime and the order feeds back into the sampling pool, so
		// determinism requires the slice.
		chosen := make([]int32, 0, m)
		for len(chosen) < m {
			var t int32
			if len(targets) == 0 {
				t = int32(src.Intn(v))
			} else {
				t = targets[src.Intn(len(targets))]
			}
			if int(t) == v || containsInt32(chosen, t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			edges = append(edges, Edge{U: v, V: int(t)})
			targets = append(targets, int32(v), t)
		}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("ba-%d-m%d", n, m))
}

// UnitDisk returns a random unit-disk graph: n points uniform in the unit
// square, edges between pairs at Euclidean distance <= radius. This is
// the standard abstraction of a wireless sensor deployment, the paper's
// motivating scenario.
func UnitDisk(n int, radius float64, src *rng.Source) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	// Grid-bucket the points so neighbor search is near-linear.
	cell := radius
	if cell <= 0 {
		cell = 1
	}
	buckets := make(map[[2]int][]int32)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		buckets[k] = append(buckets[k], int32(i))
	}
	r2 := radius * radius
	var edges []Edge
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if int(j) <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, Edge{U: i, V: int(j)})
					}
				}
			}
		}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("udg-%d-r%.3g", n, radius))
}

// CliqueChain returns k cliques of size s connected in a chain by single
// bridge edges, a family with uniform high degree but long diameter.
func CliqueChain(k, s int) *Graph {
	n := k * s
	var edges []Edge
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				edges = append(edges, Edge{U: base + u, V: base + v})
			}
		}
		if c+1 < k {
			edges = append(edges, Edge{U: base + s - 1, V: base + s})
		}
	}
	return MustNew(n, edges).WithName(fmt.Sprintf("cliquechain-%dx%d", k, s))
}

// containsInt32 reports whether xs contains x (m is tiny, linear scan).
func containsInt32(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
