//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile returns the file's contents as a read-only memory mapping.
// The mapping is never unmapped: .bgr graphs live for the process (they
// back long-running simulations), and the pages are clean and
// reclaimable by the kernel at any time. Empty files map to an empty
// slice (mmap of length 0 is an error on most unixes).
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts): fall
		// back to reading.
		return os.ReadFile(path)
	}
	return data, nil
}
