//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile returns the file's contents as a read-only memory mapping
// plus the closer that releases it. A long-running daemon loads many
// graphs over its lifetime, so mappings must be releasable: the caller
// (ReadBGR) hands the closer to the Compact's Close method. The pages
// are clean and reclaimable by the kernel at any time while mapped.
// Empty files map to an empty slice with no closer (mmap of length 0
// is an error on most unixes).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts): fall
		// back to reading.
		buf, rerr := os.ReadFile(path)
		return buf, nil, rerr
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
