package graph

import (
	"testing"

	"repro/internal/rng"
)

// relabelFamilies builds a spread of topologies with distinct degree
// profiles (including a disconnected one, which exercises the BFS
// component sweep, and the empty/singleton corners).
func relabelFamilies() map[string]*Graph {
	disconnected := MustNew(9, []Edge{{0, 1}, {1, 2}, {4, 5}, {7, 8}, {5, 6}})
	return map[string]*Graph{
		"empty":        MustNew(0, nil),
		"singleton":    MustNew(1, nil),
		"edgeless":     MustNew(7, nil),
		"path":         Path(17),
		"cycle":        Cycle(16),
		"star":         Star(12),
		"complete":     Complete(9),
		"grid":         Grid(5, 4),
		"gnp":          GNPAvgDegree(64, 6, rng.New(99)),
		"disconnected": disconnected,
	}
}

// TestRelabelRoundTrip is the permutation property test: for every
// ordering and family, NewID and OldID are mutually inverse
// permutations, the relabeled graph is a valid CSR, and mapping each
// edge through the permutation is an isomorphism (adjacency is exactly
// preserved, degrees and Δ included).
func TestRelabelRoundTrip(t *testing.T) {
	for name, g := range relabelFamilies() {
		for _, ord := range []Ordering{OrderNone, OrderBFS, OrderDegree} {
			r := Relabel(g, ord)
			n := g.N()
			if r.Graph.N() != n || r.Graph.M() != g.M() {
				t.Fatalf("%s/%v: size changed: n %d→%d, m %d→%d", name, ord, n, r.Graph.N(), g.M(), r.Graph.M())
			}
			if len(r.NewID) != n || len(r.OldID) != n {
				t.Fatalf("%s/%v: permutation length mismatch", name, ord)
			}
			for v := 0; v < n; v++ {
				if int(r.OldID[r.NewID[v]]) != v {
					t.Fatalf("%s/%v: OldID[NewID[%d]] = %d", name, ord, v, r.OldID[r.NewID[v]])
				}
				if int(r.NewID[r.OldID[v]]) != v {
					t.Fatalf("%s/%v: NewID[OldID[%d]] = %d", name, ord, v, r.NewID[r.OldID[v]])
				}
			}
			if err := r.Graph.Validate(); err != nil {
				t.Fatalf("%s/%v: relabeled CSR invalid: %v", name, ord, err)
			}
			// Isomorphism both directions: u~v in g iff NewID[u]~NewID[v]
			// in r.Graph. Degrees and the cached Δ follow.
			for v := 0; v < n; v++ {
				if g.Degree(v) != r.Graph.Degree(int(r.NewID[v])) {
					t.Fatalf("%s/%v: degree of %d changed", name, ord, v)
				}
				for _, u := range g.Neighbors(v) {
					if !r.Graph.HasEdge(int(r.NewID[v]), int(r.NewID[u])) {
						t.Fatalf("%s/%v: edge (%d,%d) lost", name, ord, v, u)
					}
				}
			}
			if r.Graph.MaxDegree() != g.MaxDegree() {
				t.Fatalf("%s/%v: Δ changed %d→%d", name, ord, g.MaxDegree(), r.Graph.MaxDegree())
			}
			if ord == OrderNone {
				for v := 0; v < n; v++ {
					if int(r.NewID[v]) != v {
						t.Fatalf("%s: OrderNone is not the identity at %d", name, v)
					}
				}
			}
		}
	}
}

// TestRelabelOrderings pins the strategy-specific guarantees: degree
// ordering is sorted by descending degree with ascending-ID
// tie-breaks, and BFS ordering assigns consecutive ranges per
// connected component.
func TestRelabelOrderings(t *testing.T) {
	g := GNPAvgDegree(80, 5, rng.New(7))

	rd := Relabel(g, OrderDegree)
	for nw := 1; nw < g.N(); nw++ {
		dPrev := rd.Graph.Degree(nw - 1)
		dCur := rd.Graph.Degree(nw)
		if dPrev < dCur {
			t.Fatalf("degree order violated at %d: %d < %d", nw, dPrev, dCur)
		}
		if dPrev == dCur && rd.OldID[nw-1] >= rd.OldID[nw] {
			t.Fatalf("degree tie-break violated at %d", nw)
		}
	}

	// BFS: within the relabeled graph, each component occupies a
	// contiguous ID range (a BFS order can never interleave two
	// components).
	disc := MustNew(10, []Edge{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}, {7, 8}})
	rb := Relabel(disc, OrderBFS)
	comp := make([]int, disc.N())
	for i := range comp {
		comp[i] = -1
	}
	label := 0
	for v := 0; v < rb.Graph.N(); v++ {
		if comp[v] != -1 {
			continue
		}
		stack := []int{v}
		comp[v] = label
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range rb.Graph.Neighbors(x) {
				if comp[u] == -1 {
					comp[u] = label
					stack = append(stack, int(u))
				}
			}
		}
		label++
	}
	for v := 1; v < len(comp); v++ {
		if comp[v] < comp[v-1] {
			t.Fatalf("BFS interleaved components: comp[%d]=%d after comp[%d]=%d", v, comp[v], v-1, comp[v-1])
		}
	}
}

// TestRelabelMapBack checks both MapBack variants against hand
// permutation, and that an MIS computed on the relabeled graph maps
// back to a verified MIS on the original (VerifyMIS of the original
// topology accepts the pulled-back mask — the end-to-end contract
// experiment harnesses rely on).
func TestRelabelMapBack(t *testing.T) {
	for name, g := range relabelFamilies() {
		for _, ord := range []Ordering{OrderBFS, OrderDegree} {
			r := Relabel(g, ord)
			mis := r.Graph.GreedyMIS()
			back := r.MapBack(mis)
			if err := g.VerifyMIS(back); err != nil {
				t.Fatalf("%s/%v: mapped-back MIS invalid on original graph: %v", name, ord, err)
			}
			for old := 0; old < g.N(); old++ {
				if back[old] != mis[r.NewID[old]] {
					t.Fatalf("%s/%v: MapBack mismatch at %d", name, ord, old)
				}
			}
			vals := make([]int32, g.N())
			for nw := range vals {
				vals[nw] = int32(3*nw + 1)
			}
			bi := r.MapBackInt32(vals)
			for old := 0; old < g.N(); old++ {
				if bi[old] != vals[r.NewID[old]] {
					t.Fatalf("%s/%v: MapBackInt32 mismatch at %d", name, ord, old)
				}
			}
		}
	}
}
