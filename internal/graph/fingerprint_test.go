package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestFingerprintIdentity(t *testing.T) {
	a := MustNew(5, []Edge{{0, 1}, {1, 2}, {3, 4}})
	b := MustNew(5, []Edge{{3, 4}, {1, 2}, {0, 1}, {1, 2}}) // same set, different order + dup
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical graphs fingerprint differently: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
	if got := a.WithName("renamed").Fingerprint(); got != a.Fingerprint() {
		t.Fatalf("renaming changed the fingerprint: %#x vs %#x", got, a.Fingerprint())
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	a := MustNew(5, []Edge{{0, 1}, {1, 2}, {3, 4}})
	cases := []*Graph{
		MustNew(5, []Edge{{0, 1}, {1, 2}}),         // missing edge
		MustNew(5, []Edge{{0, 1}, {1, 3}, {3, 4}}), // different edge, same count
		MustNew(6, []Edge{{0, 1}, {1, 2}, {3, 4}}), // extra isolated vertex
		MustNew(5, nil), // empty
	}
	for i, g := range cases {
		if g.Fingerprint() == a.Fingerprint() {
			t.Fatalf("case %d: structurally different graph collides with reference", i)
		}
	}
}

func TestFingerprintStableAcrossGenerators(t *testing.T) {
	// The same random graph generated twice from the same seed must
	// fingerprint identically — this is what makes resume-by-rebuilding
	// the topology (cmd/beepmis -resume) sound.
	g1 := GNPAvgDegree(64, 6, rng.New(42))
	g2 := GNPAvgDegree(64, 6, rng.New(42))
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("deterministic generator produced differing fingerprints")
	}
	g3 := GNPAvgDegree(64, 6, rng.New(43))
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Fatal("different seeds collide (astronomically unlikely)")
	}
}
