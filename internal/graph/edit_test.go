package graph

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestBuilderEditCycle(t *testing.T) {
	g := Cycle(6)
	b := NewBuilder(g)
	if b.Live() != 6 || b.Edges() != 6 {
		t.Fatalf("builder seeded with %d/%d, want 6/6", b.Live(), b.Edges())
	}
	if err := b.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	id := b.AddVertex()
	if id != 6 {
		t.Fatalf("new vertex id %d, want 6", id)
	}
	if err := b.AddEdge(id, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveVertex(5); err != nil {
		t.Fatal(err)
	}
	g2, mapping, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 6 {
		t.Fatalf("edited graph has %d vertices, want 6", g2.N())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, -1, 5}
	for i, m := range mapping {
		if m != want[i] {
			t.Fatalf("mapping[%d] = %d, want %d (full %v)", i, m, want[i], mapping)
		}
	}
	// Edge {0,3} added, {1,2} removed, {4,5}/{5,0} dropped with vertex 5,
	// {6,4} added: 6 - 1 + 1 - 2 + 1 = 5.
	if g2.M() != 5 {
		t.Fatalf("edited graph has %d edges, want 5", g2.M())
	}
	if !g2.HasEdge(0, 3) || g2.HasEdge(1, 2) || !g2.HasEdge(5, 4) {
		t.Fatalf("edited adjacency wrong: %v", g2.Edges())
	}
}

func TestBuilderRejections(t *testing.T) {
	b := NewBuilder(Path(4))
	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"self-loop", func() error { return b.AddEdge(2, 2) }, ErrSelfLoop},
		{"dup-edge", func() error { return b.AddEdge(0, 1) }, ErrEdgeExists},
		{"missing-edge", func() error { return b.RemoveEdge(0, 2) }, ErrEdgeMissing},
		{"range-add", func() error { return b.AddEdge(0, 9) }, ErrVertexRange},
		{"range-del-vertex", func() error { return b.RemoveVertex(-1) }, ErrVertexRange},
	}
	for _, c := range cases {
		if err := c.run(); !errors.Is(err, c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	if err := b.RemoveVertex(3); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveVertex(3); !errors.Is(err, ErrVertexRemoved) {
		t.Fatalf("double remove: got %v, want ErrVertexRemoved", err)
	}
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrVertexRemoved) {
		t.Fatalf("edge to removed vertex: got %v, want ErrVertexRemoved", err)
	}
}

func TestApplyEditsAtomicAndNonMutating(t *testing.T) {
	g := Cycle(5)
	edges := len(g.Edges())
	_, _, err := ApplyEdits(g, []Edit{
		{Kind: EditDelEdge, U: 0, V: 1},
		{Kind: EditAddEdge, U: 0, V: 9}, // invalid: aborts the batch
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if g.M() != edges || !g.HasEdge(0, 1) {
		t.Fatal("ApplyEdits mutated the input graph")
	}
}

func TestApplyEditsMappingCoversJoiners(t *testing.T) {
	g := Path(3)
	g2, mapping, err := ApplyEdits(g, []Edit{
		{Kind: EditAddVertex},
		{Kind: EditAddVertex},
		{Kind: EditAddEdge, U: 3, V: 0},
		{Kind: EditDelVertex, U: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != 5 {
		t.Fatalf("mapping over %d ids, want 5 (3 base + 2 joiners)", len(mapping))
	}
	if g2.N() != 4 {
		t.Fatalf("n = %d, want 4", g2.N())
	}
	if mapping[1] != -1 {
		t.Fatalf("removed vertex mapped to %d, want -1", mapping[1])
	}
	if mapping[0] != 0 || mapping[2] != 1 || mapping[3] != 2 || mapping[4] != 3 {
		t.Fatalf("compaction order wrong: %v", mapping)
	}
	if !g2.HasEdge(mapping[3], mapping[0]) {
		t.Fatal("joiner edge lost in compaction")
	}
}

// TestChurnSchedulesValidAndDeterministic replays every generator's
// schedule through ApplyEdits (each event against the evolved graph) and
// checks that an identical seed reproduces the identical schedule.
func TestChurnSchedulesValidAndDeterministic(t *testing.T) {
	base := GNPAvgDegree(40, 4, rng.New(11))
	gens := []struct {
		name string
		gen  func(src *rng.Source) ([]ChurnEvent, error)
	}{
		{"flap", func(src *rng.Source) ([]ChurnEvent, error) { return FlapSchedule(base, 5, 3, src) }},
		{"growth", func(src *rng.Source) ([]ChurnEvent, error) { return GrowthSchedule(base, 5, 2, 3, src) }},
		{"crash", func(src *rng.Source) ([]ChurnEvent, error) { return CrashSchedule(base, 5, 2, src) }},
		{"partition-heal", func(src *rng.Source) ([]ChurnEvent, error) { return PartitionHealSchedule(base, 3, src) }},
	}
	for _, gc := range gens {
		t.Run(gc.name, func(t *testing.T) {
			evs, err := gc.gen(rng.New(42))
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) == 0 {
				t.Fatal("empty schedule")
			}
			cur := base
			for i, ev := range evs {
				if len(ev.Edits) == 0 {
					t.Fatalf("event %d (%s) has no edits", i, ev.Label)
				}
				g2, mapping, err := ApplyEdits(cur, ev.Edits)
				if err != nil {
					t.Fatalf("event %d (%s) invalid: %v", i, ev.Label, err)
				}
				if err := g2.Validate(); err != nil {
					t.Fatalf("event %d (%s) produced invalid graph: %v", i, ev.Label, err)
				}
				if len(mapping) < cur.N() {
					t.Fatalf("event %d mapping covers %d ids, base graph has %d", i, len(mapping), cur.N())
				}
				cur = g2
			}
			evs2, err := gc.gen(rng.New(42))
			if err != nil {
				t.Fatal(err)
			}
			if len(evs2) != len(evs) {
				t.Fatalf("rerun produced %d events, want %d", len(evs2), len(evs))
			}
			for i := range evs {
				if evs[i].Label != evs2[i].Label || len(evs[i].Edits) != len(evs2[i].Edits) {
					t.Fatalf("rerun diverged at event %d", i)
				}
				for j := range evs[i].Edits {
					if evs[i].Edits[j] != evs2[i].Edits[j] {
						t.Fatalf("rerun diverged at event %d edit %d: %+v vs %+v",
							i, j, evs[i].Edits[j], evs2[i].Edits[j])
					}
				}
			}
		})
	}
}

func TestScheduleGeneratorRejections(t *testing.T) {
	g := Path(4)
	if _, err := FlapSchedule(Path(1), 1, 1, rng.New(1)); err == nil {
		t.Fatal("flap on 1 vertex accepted")
	}
	if _, err := FlapSchedule(g, 0, 1, rng.New(1)); err == nil {
		t.Fatal("flap with 0 events accepted")
	}
	if _, err := GrowthSchedule(g, 1, 0, 1, rng.New(1)); err == nil {
		t.Fatal("growth with 0 joins accepted")
	}
	if _, err := CrashSchedule(g, 2, 2, rng.New(1)); err == nil {
		t.Fatal("crash schedule emptying the graph accepted")
	}
	if _, err := PartitionHealSchedule(MustNew(3, nil), 1, rng.New(1)); err == nil {
		t.Fatal("partition-heal on edgeless graph accepted")
	}
}

func TestPartitionHealRestoresGraph(t *testing.T) {
	g := GNPAvgDegree(30, 5, rng.New(3))
	evs, err := PartitionHealSchedule(g, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cur := g
	for _, ev := range evs {
		g2, _, err := ApplyEdits(cur, ev.Edits)
		if err != nil {
			t.Fatal(err)
		}
		cur = g2
	}
	if cur.N() != g.N() || cur.M() != g.M() {
		t.Fatalf("heal did not restore shape: %d/%d vs %d/%d", cur.N(), cur.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !cur.HasEdge(e.U, e.V) {
			t.Fatalf("edge (%d,%d) not restored", e.U, e.V)
		}
	}
}
