package graph

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// FuzzReadBGR pins the hard constraint of the .bgr loader, mirroring
// FuzzReadCheckpoint: whatever bytes arrive — truncated headers, wild
// counts, corrupt varints, inconsistent sample tables — DecodeBGR
// returns an error or a graph whose every row decodes cleanly. It must
// never panic. The corpus seeds genuine encodings plus targeted
// corruptions of them.
func FuzzReadBGR(f *testing.F) {
	seed := func(g Topology) []byte {
		c, ok := g.(*Compact)
		if !ok {
			c = Compress(g)
		}
		var buf bytes.Buffer
		if err := EncodeBGR(&buf, c, FingerprintOf(g)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(GNP(30, 0.2, rng.New(11)))
	f.Add(valid)
	f.Add(seed(Empty(0)))
	f.Add(seed(Torus(4, 4)))
	f.Add(seed(CompressStride(Grid(5, 5), 1)))
	f.Add(valid[:len(valid)/2])           // truncated
	f.Add(valid[:bgrFixedHeader])         // header only
	f.Add([]byte("BGRF"))                 // bare magic
	f.Add([]byte{})                       // empty
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // varint continuation bombs
	mut := bytes.Clone(valid)
	mut[20] ^= 0xff // absurd n
	f.Add(mut)
	mut2 := bytes.Clone(valid)
	mut2[len(mut2)-4] ^= 1 // broken trailer
	f.Add(mut2)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeBGR(data)
		if err != nil {
			return // rejection is always fine; panics are not
		}
		// Anything the decoder accepts must support full row access
		// without faulting, and re-encode to a loadable image.
		buf := make([]int32, c.MaxDegree())
		sum := 0
		for v := 0; v < c.N(); v++ {
			row := c.NeighborsInto(v, buf)
			if len(row) != c.Degree(v) {
				t.Fatalf("row %d length %d, degree %d", v, len(row), c.Degree(v))
			}
			sum += len(row)
		}
		if sum != 2*c.M() {
			t.Fatalf("degree sum %d, want 2m = %d", sum, 2*c.M())
		}
		var out bytes.Buffer
		if err := EncodeBGR(&out, c, FingerprintOf(c)); err != nil {
			t.Fatalf("re-encode of accepted image failed: %v", err)
		}
		if _, err := DecodeBGR(out.Bytes()); err != nil {
			t.Fatalf("re-encoded image rejected: %v", err)
		}
	})
}
