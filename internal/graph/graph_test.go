package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewBasic(t *testing.T) {
	g, err := New(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d, want 4 and 4", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDeduplicatesParallelEdges(t *testing.T) {
	g, err := New(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M=%d after dedup, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees %d,%d, want 1,2", g.Degree(0), g.Degree(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsSelfLoop(t *testing.T) {
	_, err := New(2, []Edge{{1, 1}})
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	_, err := New(2, []Edge{{0, 2}})
	if !errors.Is(err, ErrVertexRange) {
		t.Fatalf("err = %v, want ErrVertexRange", err)
	}
	_, err = New(2, []Edge{{-1, 0}})
	if !errors.Is(err, ErrVertexRange) {
		t.Fatalf("err = %v, want ErrVertexRange", err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Empty(5)
	if g.N() != 5 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph wrong shape")
	}
	if g.ConnectedComponents() != 5 {
		t.Fatalf("components = %d, want 5", g.ConnectedComponents())
	}
}

func TestDegreeQueries(t *testing.T) {
	g := Star(6) // center 0 with 5 leaves
	if g.Degree(0) != 5 {
		t.Fatalf("center degree %d", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Fatalf("leaf degree %d", g.Degree(3))
	}
	if g.MaxDegree() != 5 {
		t.Fatalf("max degree %d", g.MaxDegree())
	}
	// deg2 of a leaf is the center's degree.
	if g.Degree2(3) != 5 {
		t.Fatalf("deg2(leaf) = %d, want 5", g.Degree2(3))
	}
	if g.Degree2(0) != 5 {
		t.Fatalf("deg2(center) = %d, want 5", g.Degree2(0))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := Cycle(7)
	edges := g.Edges()
	g2, err := New(7, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("edge list round trip lost edges: %d != %d", g2.M(), g.M())
	}
	for _, e := range edges {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	src := rng.New(1)
	cases := []struct {
		g       *Graph
		n, m    int
		maxDeg  int
		conn    int
		skipDeg bool
	}{
		{g: Path(10), n: 10, m: 9, maxDeg: 2, conn: 1},
		{g: Cycle(10), n: 10, m: 10, maxDeg: 2, conn: 1},
		{g: Complete(6), n: 6, m: 15, maxDeg: 5, conn: 1},
		{g: Star(8), n: 8, m: 7, maxDeg: 7, conn: 1},
		{g: CompleteBipartite(3, 4), n: 7, m: 12, maxDeg: 4, conn: 1},
		{g: Grid(3, 4), n: 12, m: 17, maxDeg: 4, conn: 1},
		{g: Torus(3, 4), n: 12, m: 24, maxDeg: 4, conn: 1},
		{g: BinaryTree(15), n: 15, m: 14, maxDeg: 3, conn: 1},
		{g: Hypercube(4), n: 16, m: 32, maxDeg: 4, conn: 1},
		{g: Caterpillar(12), n: 12, m: 11, maxDeg: 3, conn: 1},
		{g: Lollipop(12, 5), n: 12, m: 17, maxDeg: 5, conn: 1},
		{g: CliqueChain(3, 4), n: 12, m: 20, maxDeg: 4, conn: 1},
		{g: UnitDisk(50, 0.3, src), n: 50, m: -1, conn: -1, skipDeg: true},
	}
	for _, tc := range cases {
		name := tc.g.Name()
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tc.g.N() != tc.n {
			t.Errorf("%s: N=%d want %d", name, tc.g.N(), tc.n)
		}
		if tc.m >= 0 && tc.g.M() != tc.m {
			t.Errorf("%s: M=%d want %d", name, tc.g.M(), tc.m)
		}
		if !tc.skipDeg && tc.g.MaxDegree() != tc.maxDeg {
			t.Errorf("%s: Δ=%d want %d", name, tc.g.MaxDegree(), tc.maxDeg)
		}
		if tc.conn >= 0 && tc.g.ConnectedComponents() != tc.conn {
			t.Errorf("%s: components=%d want %d", name, tc.g.ConnectedComponents(), tc.conn)
		}
	}
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus(5, 7)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d has degree %d", v, g.Degree(v))
		}
	}
}

func TestGNPEdgeCases(t *testing.T) {
	src := rng.New(2)
	if g := GNP(20, 0, src); g.M() != 0 {
		t.Fatalf("GNP(p=0) has %d edges", g.M())
	}
	if g := GNP(10, 1, src); g.M() != 45 {
		t.Fatalf("GNP(p=1) has %d edges, want 45", g.M())
	}
}

func TestGNPEdgeCountConcentrates(t *testing.T) {
	src := rng.New(3)
	const n = 400
	p := 0.05
	g := GNP(n, p, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := p * float64(n) * float64(n-1) / 2
	if f := float64(g.M()); f < 0.8*expected || f > 1.2*expected {
		t.Fatalf("GNP edges %v, expected about %v", f, expected)
	}
}

func TestGNPAvgDegree(t *testing.T) {
	src := rng.New(4)
	g := GNPAvgDegree(500, 8, src)
	if d := g.AverageDegree(); d < 6 || d > 10 {
		t.Fatalf("average degree %v, want about 8", d)
	}
}

func TestEdgeFromIndexEnumeratesAllPairs(t *testing.T) {
	seen := map[[2]int]bool{}
	const n = 8
	total := int64(n * (n - 1) / 2)
	for pos := int64(0); pos < total; pos++ {
		a, b := edgeFromIndex(pos)
		if a < 0 || b <= a || b >= n {
			t.Fatalf("index %d gave invalid pair (%d,%d)", pos, a, b)
		}
		key := [2]int{a, b}
		if seen[key] {
			t.Fatalf("index %d repeated pair (%d,%d)", pos, a, b)
		}
		seen[key] = true
	}
	if len(seen) != int(total) {
		t.Fatalf("enumerated %d pairs, want %d", len(seen), total)
	}
}

func TestRandomRegular(t *testing.T) {
	src := rng.New(5)
	g, err := RandomRegular(100, 4, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestRandomRegularRejectsOddProduct(t *testing.T) {
	if _, err := RandomRegular(5, 3, rng.New(6)); err == nil {
		t.Fatal("odd n*d accepted")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	src := rng.New(7)
	g := PreferentialAttachment(300, 2, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 {
		t.Fatalf("N=%d", g.N())
	}
	if g.ConnectedComponents() != 1 {
		t.Fatalf("BA graph disconnected: %d components", g.ConnectedComponents())
	}
	// Degree distribution should be heterogeneous: max well above the
	// attachment parameter.
	if g.MaxDegree() < 8 {
		t.Fatalf("BA max degree %d suspiciously low", g.MaxDegree())
	}
}

func TestUnitDiskMatchesBruteForce(t *testing.T) {
	src := rng.New(8)
	// Re-derive points with the same stream the generator uses so we can
	// brute-force check edges: instead, just verify symmetry+validate and
	// check the triangle inequality property indirectly via Validate.
	g := UnitDisk(120, 0.2, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 120 {
		t.Fatalf("N=%d", g.N())
	}
}

func TestGreedyMISIsMIS(t *testing.T) {
	src := rng.New(9)
	graphs := []*Graph{
		Empty(10), Path(17), Cycle(16), Complete(9), Star(12),
		Grid(5, 5), BinaryTree(31), Hypercube(5),
		GNP(200, 0.05, src), PreferentialAttachment(150, 3, src),
	}
	for _, g := range graphs {
		mis := g.GreedyMIS()
		if err := g.VerifyMIS(mis); err != nil {
			t.Errorf("%s: greedy MIS invalid: %v", g.Name(), err)
		}
	}
}

func TestVerifyMISDetectsViolations(t *testing.T) {
	g := Path(4) // 0-1-2-3
	// Adjacent pair: not independent.
	if err := g.VerifyMIS([]bool{true, true, false, true}); err == nil {
		t.Fatal("independence violation not detected")
	}
	// Not maximal: {0} leaves 2,3 undominated.
	if err := g.VerifyMIS([]bool{true, false, false, false}); err == nil {
		t.Fatal("maximality violation not detected")
	}
	// Valid MIS {0, 2}.
	if err := g.VerifyMIS([]bool{true, false, true, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	// Wrong mask length.
	if err := g.VerifyMIS([]bool{true}); err == nil {
		t.Fatal("mask length mismatch not detected")
	}
}

func TestIsIndependentEmptySetIsIndependentNotMaximal(t *testing.T) {
	g := Path(3)
	none := make([]bool, 3)
	if !g.IsIndependent(none) {
		t.Fatal("empty set should be independent")
	}
	if g.IsMaximalIndependent(none) {
		t.Fatal("empty set should not be maximal on a nonempty graph")
	}
}

// Property: greedy MIS on random graphs is always a valid MIS.
func TestGreedyMISProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%60) + 1
		p := float64(pRaw) / 255
		g := GNP(n, p, rng.New(seed))
		return g.VerifyMIS(g.GreedyMIS()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: New never produces a graph failing Validate.
func TestNewValidatesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%40) + 2
		src := rng.New(seed)
		m := int(mRaw % 300)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
		g, err := New(n, edges)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountTrue(t *testing.T) {
	if CountTrue([]bool{true, false, true, true}) != 3 {
		t.Fatal("CountTrue wrong")
	}
	if CountTrue(nil) != 0 {
		t.Fatal("CountTrue(nil) wrong")
	}
}

func TestWithNameDoesNotMutate(t *testing.T) {
	g := Path(3)
	g2 := g.WithName("renamed")
	if g2.Name() != "renamed" {
		t.Fatal("name not set")
	}
	if g.Name() != "path-3" {
		t.Fatalf("original name mutated to %q", g.Name())
	}
	if g2.M() != g.M() {
		t.Fatal("topology not shared")
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a := PreferentialAttachment(200, 2, rng.New(5))
	b := PreferentialAttachment(200, 2, rng.New(5))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestUnitDiskDeterministic(t *testing.T) {
	a := UnitDisk(150, 0.15, rng.New(7))
	b := UnitDisk(150, 0.15, rng.New(7))
	if a.M() != b.M() {
		t.Fatalf("edge counts %d vs %d", a.M(), b.M())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
