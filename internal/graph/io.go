package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The interchange format is a minimal whitespace edge-list text format:
//
//	# comment
//	n <vertex-count>
//	<u> <v>
//	...
//
// It round-trips through WriteEdgeList / ReadEdgeList and is what
// cmd/graphgen emits and cmd/beepmis consumes.

// WriteEdgeList writes g in the edge-list text format. It accepts any
// Topology and streams edges via ForEachEdgeOf, so writing never
// materializes an O(m) []Edge slice — the property that lets graphgen
// convert compact and implicit backends of any size.
func WriteEdgeList(w io.Writer, g Topology) error {
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", g.Name()); err != nil {
			return fmt.Errorf("write edge list: %w", err)
		}
	}
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return fmt.Errorf("write edge list: %w", err)
	}
	var werr error
	ForEachEdgeOf(g, func(u, v int32) bool {
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return fmt.Errorf("write edge list: %w", werr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write edge list: %w", err)
	}
	return nil
}

// maxParsedVertices bounds the vertex count the text parsers accept.
// The header is untrusted input; without a bound a single short line
// ("n 200000000", found by the fuzzer) forces multi-gigabyte
// allocations before any edge is read. Graphs above this size can
// still be built programmatically via New.
const maxParsedVertices = 1 << 24

// ReadEdgeList parses the edge-list text format. The "n" header is
// required and must precede all edges, and is limited to 2^24 vertices
// (see maxParsedVertices).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := -1
	name := ""
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if name == "" {
				name = strings.TrimSpace(strings.TrimPrefix(text, "#"))
			}
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("read edge list: line %d: malformed header %q", line, text)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("read edge list: line %d: %w", line, err)
			}
			if v < 0 || v > maxParsedVertices {
				return nil, fmt.Errorf("read edge list: line %d: vertex count %d outside [0, %d]", line, v, maxParsedVertices)
			}
			n = v
			continue
		}
		if n < 0 {
			return nil, fmt.Errorf("read edge list: line %d: edge before n header", line)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("read edge list: line %d: want two endpoints, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("read edge list: line %d: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("read edge list: line %d: %w", line, err)
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read edge list: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("read edge list: missing n header")
	}
	g, err := New(n, edges)
	if err != nil {
		return nil, fmt.Errorf("read edge list: %w", err)
	}
	if name != "" {
		g = g.WithName(name)
	}
	return g, nil
}

// WriteDOT writes g in Graphviz DOT format, optionally highlighting an
// MIS membership mask (members drawn as filled boxes). mis may be nil.
func WriteDOT(w io.Writer, g *Graph, mis []bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", dotName(g))
	if mis != nil {
		for v := 0; v < g.N(); v++ {
			if v < len(mis) && mis[v] {
				fmt.Fprintf(bw, "  %d [shape=box style=filled fillcolor=gray];\n", v)
			}
		}
	}
	g.ForEachEdge(func(u, v int32) bool {
		fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
		return true
	})
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write dot: %w", err)
	}
	return nil
}

func dotName(g *Graph) string {
	if g.Name() != "" {
		return g.Name()
	}
	return "G"
}
