package graph

// BFS returns the breadth-first distances from src; unreachable
// vertices get -1.
func (g *Graph) BFS(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum BFS distance from v within its
// component.
func (g *Graph) Eccentricity(v int) int {
	max := 0
	for _, d := range g.BFS(v) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the largest eccentricity over all vertices within
// connected components (unreachable pairs are ignored), computed by
// all-sources BFS — O(n·(n+m)), intended for experiment metadata on
// moderate sizes. It returns 0 for graphs with no edges.
func (g *Graph) Diameter() int {
	diameter := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > diameter {
			diameter = e
		}
	}
	return diameter
}

// DiameterApprox returns a 2-approximation lower bound of the diameter
// via double-sweep BFS from vertex 0 (standard heuristic, O(n+m)),
// suitable for large instances where the exact O(n·m) is too slow.
func (g *Graph) DiameterApprox() int {
	if g.N() == 0 {
		return 0
	}
	// Sweep 1: farthest vertex from 0 inside its component.
	far, best := 0, -1
	for v, d := range g.BFS(0) {
		if d > best {
			best, far = d, v
		}
	}
	// Sweep 2: eccentricity of that vertex.
	return g.Eccentricity(far)
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// for d in [0, Δ].
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// Density returns 2M / (N(N-1)), in [0, 1]; 0 when N < 2.
func (g *Graph) Density() float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	return 2 * float64(g.M()) / (float64(n) * float64(n-1))
}

// IsConnected reports whether the graph has exactly one connected
// component (the empty graph is considered connected).
func (g *Graph) IsConnected() bool {
	return g.N() == 0 || g.ConnectedComponents() == 1
}

// TriangleCount returns the number of triangles, counted once each, by
// intersecting sorted adjacency lists of ordered edges. O(Σ deg²) worst
// case, fine for the experiment sizes.
func (g *Graph) TriangleCount() int {
	count := 0
	for v := 0; v < g.N(); v++ {
		nv := g.Neighbors(v)
		for _, u := range nv {
			if int(u) <= v {
				continue
			}
			// Count common neighbors w with w > u > v.
			count += countCommonAbove(nv, g.Neighbors(int(u)), u)
		}
	}
	return count
}

// countCommonAbove counts values present in both sorted slices that are
// strictly greater than floor.
func countCommonAbove(a, b []int32, floor int32) int {
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor {
				count++
			}
			i++
			j++
		}
	}
	return count
}
