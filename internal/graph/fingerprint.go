package graph

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns a 64-bit FNV-1a digest of the graph's structure:
// the vertex count followed by the full CSR adjacency (offsets and
// neighbor lists). Two graphs have the same fingerprint iff they have
// identical vertex numbering and edge sets, which is exactly the
// condition under which a checkpoint taken on one can be restored onto
// the other (machine states and heard-signal semantics are positional).
//
// The digest deliberately ignores the graph's display name: renaming a
// topology does not invalidate checkpoints taken on it.
//
// Graphs are immutable after construction, so the fingerprint is a pure
// function of the receiver and can be cached by callers if needed; at
// ~1 ns/edge it is cheap enough to recompute per checkpoint.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	for _, o := range g.off {
		put(uint64(o))
	}
	for _, v := range g.adj {
		put(uint64(v))
	}
	return h.Sum64()
}

// FingerprintOf computes the exact same digest as (*Graph).Fingerprint
// for any Topology: the vertex count, the running CSR offsets implied
// by the degree sequence, and the sorted neighbor lists. A topology and
// its Materialize (or Compress) image therefore fingerprint
// identically, which is what lets checkpoints and .bgr headers move
// between backends.
func FingerprintOf(t Topology) uint64 {
	if g, ok := t.(*Graph); ok {
		return g.Fingerprint()
	}
	if c, ok := t.(*Compact); ok {
		// Sequential two-pass decode; the generic per-vertex walk below
		// would pay an O(stride) row seek per Degree call.
		return c.fingerprintSeq()
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	n := t.N()
	put(uint64(n))
	run := uint64(0)
	put(run)
	for v := 0; v < n; v++ {
		run += uint64(t.Degree(v))
		put(run)
	}
	for v := 0; v < n; v++ {
		t.ForEachNeighbor(v, func(u int32) bool {
			put(uint64(u))
			return true
		})
	}
	return h.Sum64()
}
