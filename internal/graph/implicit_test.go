package graph

import (
	"math"
	"testing"
)

// gridCases spans the degenerate extents (1, 2) where wraparound
// coincides with adjacency and the dedup rules bite, plus ordinary
// sizes.
var gridCases = [][2]int{
	{1, 1}, {1, 2}, {1, 5}, {2, 1}, {2, 2}, {2, 3}, {2, 5},
	{3, 2}, {3, 3}, {4, 7}, {5, 4}, {6, 6},
}

// requireSameGraph asserts that t (an implicit topology) presents the
// exact canonical view of want: same counts, same rows, same
// fingerprint, via both access forms.
func requireSameGraph(t *testing.T, top Topology, want *Graph) {
	t.Helper()
	if top.N() != want.N() || top.M() != want.M() || top.MaxDegree() != want.MaxDegree() {
		t.Fatalf("%s: n/m/maxdeg = %d/%d/%d, want %d/%d/%d",
			top.Name(), top.N(), top.M(), top.MaxDegree(), want.N(), want.M(), want.MaxDegree())
	}
	buf := make([]int32, top.MaxDegree())
	for v := 0; v < want.N(); v++ {
		if top.Degree(v) != want.Degree(v) {
			t.Fatalf("%s: degree(%d) = %d, want %d", top.Name(), v, top.Degree(v), want.Degree(v))
		}
		got := top.NeighborsInto(v, buf)
		exp := want.Neighbors(v)
		if len(got) != len(exp) {
			t.Fatalf("%s: row %d has %d entries, want %d", top.Name(), v, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("%s: row %d = %v, want %v", top.Name(), v, got, exp)
			}
		}
		i := 0
		top.ForEachNeighbor(v, func(u int32) bool {
			if i >= len(exp) || u != exp[i] {
				t.Fatalf("%s: ForEachNeighbor(%d) entry %d = %d, want row %v", top.Name(), v, i, u, exp)
			}
			i++
			return true
		})
		if i != len(exp) {
			t.Fatalf("%s: ForEachNeighbor(%d) visited %d entries, want %d", top.Name(), v, i, len(exp))
		}
	}
	if got, exp := FingerprintOf(top), want.Fingerprint(); got != exp {
		t.Fatalf("%s: FingerprintOf = %#x, want %#x", top.Name(), got, exp)
	}
	mat := Materialize(top)
	if err := mat.Validate(); err != nil {
		t.Fatalf("%s: materialized image invalid: %v", top.Name(), err)
	}
	if got, exp := mat.Fingerprint(), want.Fingerprint(); got != exp {
		t.Fatalf("%s: Materialize fingerprint = %#x, want %#x", top.Name(), got, exp)
	}
}

func TestImplicitGridMatchesMaterialized(t *testing.T) {
	for _, rc := range gridCases {
		requireSameGraph(t, ImplicitGrid(rc[0], rc[1]), Grid(rc[0], rc[1]))
	}
}

func TestImplicitTorusMatchesMaterialized(t *testing.T) {
	for _, rc := range gridCases {
		requireSameGraph(t, ImplicitTorus(rc[0], rc[1]), Torus(rc[0], rc[1]))
	}
}

func TestImplicitHypercubeMatchesMaterialized(t *testing.T) {
	for d := 0; d <= 7; d++ {
		requireSameGraph(t, ImplicitHypercube(d), Hypercube(d))
	}
}

// TestImplicitUDGTCanonical checks the lattice disk torus against a
// brute-force reference: all lattice pairs within toroidal Euclidean
// distance radius.
func TestImplicitUDGTCanonical(t *testing.T) {
	for _, tc := range []struct {
		rows, cols int
		radius     float64
	}{
		{5, 5, 1}, {5, 7, 2}, {7, 7, 2.5}, {9, 6, 1.5}, {4, 4, 0.5}, {3, 3, 1},
	} {
		top, err := ImplicitUnitDiskGridTorus(tc.rows, tc.cols, tc.radius)
		if err != nil {
			t.Fatalf("udgt %dx%d r=%g: %v", tc.rows, tc.cols, tc.radius, err)
		}
		want := bruteForceUDGT(tc.rows, tc.cols, tc.radius)
		requireSameGraph(t, top, want)
	}
}

func bruteForceUDGT(rows, cols int, radius float64) *Graph {
	n := rows * cols
	torDist2 := func(a, b, extent int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if extent-d < d {
			d = extent - d
		}
		return d * d
	}
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dr2 := torDist2(u/cols, v/cols, rows)
			dc2 := torDist2(u%cols, v%cols, cols)
			if float64(dr2+dc2) <= radius*radius {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	return MustNew(n, edges)
}

func TestImplicitUDGTValidation(t *testing.T) {
	// 2·floor(2.5)+1 = 5 ≤ min extent 5: legal.
	if _, err := ImplicitUnitDiskGridTorus(5, 5, 2.5); err != nil {
		t.Fatalf("legal radius rejected: %v", err)
	}
	for _, tc := range []struct {
		rows, cols int
		radius     float64
	}{
		{5, 5, 3},           // 2·3+1 = 7 > 5: disk wraps onto itself
		{3, 9, 2},           // limited by the smaller extent
		{0, 5, 1},           // empty dimension
		{5, -1, 1},          // negative dimension
		{5, 5, -0.5},        // negative radius
		{5, 5, math.NaN()},  // NaN radius
		{5, 5, math.Inf(1)}, // infinite radius
	} {
		if _, err := ImplicitUnitDiskGridTorus(tc.rows, tc.cols, tc.radius); err == nil {
			t.Fatalf("udgt %dx%d r=%v: want error, got nil", tc.rows, tc.cols, tc.radius)
		}
	}
}

func TestImplicitNames(t *testing.T) {
	for _, tc := range []struct {
		top  Topology
		want string
	}{
		{ImplicitGrid(3, 4), "grid-3x4"},
		{ImplicitTorus(5, 6), "torus-5x6"},
		{ImplicitHypercube(8), "hypercube-8"},
	} {
		if tc.top.Name() != tc.want {
			t.Fatalf("name = %q, want %q", tc.top.Name(), tc.want)
		}
	}
	u, err := ImplicitUnitDiskGridTorus(10, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := "udgt-10x10-r2"; u.Name() != want {
		t.Fatalf("name = %q, want %q", u.Name(), want)
	}
}

func TestForEachEdgeOfMatchesEdges(t *testing.T) {
	g := Torus(4, 5)
	var got []Edge
	ForEachEdgeOf(g, func(u, v int32) bool {
		got = append(got, Edge{U: int(u), V: int(v)})
		return true
	})
	want := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("streamed %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Early exit stops the stream.
	count := 0
	ForEachEdgeOf(g, func(u, v int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early exit visited %d edges, want 3", count)
	}
	// The generic path (non-*Graph) streams the same edges.
	var gen []Edge
	ForEachEdgeOf(ImplicitTorus(4, 5), func(u, v int32) bool {
		gen = append(gen, Edge{U: int(u), V: int(v)})
		return true
	})
	if len(gen) != len(want) {
		t.Fatalf("generic path streamed %d edges, want %d", len(gen), len(want))
	}
	for i := range gen {
		if gen[i] != want[i] {
			t.Fatalf("generic edge %d = %v, want %v", i, gen[i], want[i])
		}
	}
}

func TestDegree2OfMatchesDegree2(t *testing.T) {
	g := Grid(4, 6)
	top := ImplicitGrid(4, 6)
	for v := 0; v < g.N(); v++ {
		if got, want := Degree2Of(top, v), g.Degree2(v); got != want {
			t.Fatalf("Degree2Of(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestVerifyMISOnOfMatchesGraph(t *testing.T) {
	g := Torus(4, 4)
	top := ImplicitTorus(4, 4)
	n := g.N()
	// Exhaustively compare the generic and *Graph verdicts over random
	// masks plus a few structured ones.
	masks := [][]bool{
		make([]bool, n),
	}
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	masks = append(masks, full)
	diag := make([]bool, n)
	for v := 0; v < n; v++ {
		if (v/4+v%4)%2 == 0 && (v/4)%2 == 0 {
			diag[v] = true
		}
	}
	masks = append(masks, diag)
	for seed := 0; seed < 32; seed++ {
		m := make([]bool, n)
		x := uint64(seed)*2654435761 + 12345
		for v := range m {
			x = x*6364136223846793005 + 1442695040888963407
			m[v] = x>>63 == 1
		}
		masks = append(masks, m)
	}
	for i, m := range masks {
		want := g.VerifyMIS(m)
		got := VerifyMISOf(top, m)
		if (want == nil) != (got == nil) {
			t.Fatalf("mask %d: generic verdict %v, *Graph verdict %v", i, got, want)
		}
	}
	// Active-subset form.
	active := make([]bool, n)
	for v := 0; v < n; v += 2 {
		active[v] = true
	}
	for i, m := range masks {
		mm := make([]bool, n)
		for v := range mm {
			mm[v] = m[v] && active[v]
		}
		want := g.VerifyMISOn(active, mm)
		got := VerifyMISOnOf(top, active, mm)
		if (want == nil) != (got == nil) {
			t.Fatalf("active mask %d: generic verdict %v, *Graph verdict %v", i, got, want)
		}
	}
}
