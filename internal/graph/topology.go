package graph

import "fmt"

// Topology is the read-only graph abstraction the simulation engines
// consume. It exists so the engine stack can run on backends other than
// the materialized int32 CSR of *Graph:
//
//   - *Graph — the materialized CSR, zero-copy row access, the default
//     for irregular graphs that fit in memory.
//   - *Compact — delta-varint encoded adjacency with fixed-stride
//     offset samples (see compact.go), ~2–4 bytes per edge endpoint
//     instead of 4, loadable from an mmap'd .bgr file.
//   - implicit generator-backed families (see implicit.go) — grids,
//     tori, hypercubes and lattice unit-disk graphs whose neighborhoods
//     are synthesized on the fly from closed-form rules, with zero
//     adjacency storage; the backend that makes n = 10⁸ simulable.
//
// Every backend must present the same canonical view: for each vertex,
// a strictly ascending, duplicate-free neighbor list over [0, N), no
// self-loops, symmetric. Two topologies with identical canonical views
// are interchangeable everywhere (same traces, same checkpoints, same
// FingerprintOf), which is what the cross-backend engine-equivalence
// tests pin.
type Topology interface {
	// N returns the number of vertices.
	N() int
	// M returns the number of undirected edges.
	M() int
	// Degree returns deg(v).
	Degree(v int) int
	// MaxDegree returns Δ(G); it must be O(1) (cached or closed-form):
	// per-vertex knowledge variants query it for every vertex.
	MaxDegree() int
	// NeighborsInto returns the sorted neighbor list of v. Backends
	// with materialized rows return an aliased slice and ignore buf;
	// synthesizing backends fill buf (which the caller must size to at
	// least MaxDegree()) and return buf[:deg]. The result is only valid
	// until the next call with the same buf, and must not be modified.
	NeighborsInto(v int, buf []int32) []int32
	// ForEachNeighbor calls fn on each neighbor of v in ascending
	// order, stopping early if fn returns false. It requires no buffer,
	// the form analysts use when no scratch is available.
	ForEachNeighbor(v int, fn func(u int32) bool)
	// Name returns the topology's descriptive name (may be "").
	Name() string
}

var (
	_ Topology = (*Graph)(nil)
)

// NeighborsInto implements Topology for the materialized CSR: the
// aliased row, zero copies, buf ignored.
func (g *Graph) NeighborsInto(v int, _ []int32) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// ForEachNeighbor implements Topology.
func (g *Graph) ForEachNeighbor(v int, fn func(u int32) bool) {
	for _, u := range g.adj[g.off[v]:g.off[v+1]] {
		if !fn(u) {
			return
		}
	}
}

// Bytes returns the resident size in bytes of the CSR arrays (offsets
// plus adjacency), the number the bytes/vertex memory-model figures
// quote for the materialized backend.
func (g *Graph) Bytes() int { return 4 * (len(g.off) + len(g.adj)) }

// BytesOf reports the adjacency-storage footprint in bytes of any
// Topology. Materialized backends report their array/payload sizes
// ((*Graph).Bytes, (*Compact).Bytes); synthesizing backends report 0 —
// their neighborhoods are closed-form rules with O(1) state, which is
// the whole point of the implicit families at n = 10⁸.
func BytesOf(t Topology) int {
	if b, ok := t.(interface{ Bytes() int }); ok {
		return b.Bytes()
	}
	return 0
}

// ForEachEdge streams the edge list with U < V in each edge, in sorted
// order, stopping early if fn returns false. It is the streaming
// replacement for Edges() on paths that must not materialize an O(m)
// []Edge slice (fingerprinting, interchange writers, churn planning at
// n = 10⁸).
func (g *Graph) ForEachEdge(fn func(u, v int32) bool) {
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if u > int32(v) {
				if !fn(int32(v), u) {
					return
				}
			}
		}
	}
}

// ForEachEdgeOf streams the U < V edge list of any Topology in sorted
// order, stopping early if fn returns false.
func ForEachEdgeOf(t Topology, fn func(u, v int32) bool) {
	if g, ok := t.(*Graph); ok {
		g.ForEachEdge(fn)
		return
	}
	n := t.N()
	for v := 0; v < n; v++ {
		stop := false
		t.ForEachNeighbor(v, func(u int32) bool {
			if u > int32(v) && !fn(int32(v), u) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Degree2Of returns deg₂(v) = max over u in N(v) ∪ {v} of deg(u) for
// any Topology, the closed-1-hop maximum degree of Section 3. *Graph
// retains its Degree2 method; this is the backend-generic form the
// knowledge variants use.
func Degree2Of(t Topology, v int) int {
	if g, ok := t.(*Graph); ok {
		return g.Degree2(v)
	}
	max := t.Degree(v)
	t.ForEachNeighbor(v, func(u int32) bool {
		if d := t.Degree(int(u)); d > max {
			max = d
		}
		return true
	})
	return max
}

// Materialize builds the int32-CSR *Graph with the exact canonical view
// of t: identical vertex numbering, identical sorted rows, and therefore
// an identical FingerprintOf. Materializing a *Graph returns it
// unchanged. It is the bridge from the implicit and compact backends to
// the APIs that require a materialized graph (churn edits, relabeling,
// DOT output).
func Materialize(t Topology) *Graph {
	if g, ok := t.(*Graph); ok {
		return g
	}
	n := t.N()
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(t.Degree(v))
	}
	adj := make([]int32, off[n])
	buf := make([]int32, t.MaxDegree())
	for v := 0; v < n; v++ {
		copy(adj[off[v]:off[v+1]], t.NeighborsInto(v, buf))
	}
	g := &Graph{name: t.Name(), off: off, adj: adj, maxDeg: int32(t.MaxDegree())}
	return g
}

// VerifyMISOf checks that the membership mask is a maximal independent
// set of t, the Topology-generic form of (*Graph).VerifyMIS.
func VerifyMISOf(t Topology, in []bool) error {
	return VerifyMISOnOf(t, nil, in)
}

// VerifyMISOnOf is the Topology-generic form of (*Graph).VerifyMISOn:
// the MIS legality predicate on the subgraph induced by the active
// vertices (nil active = all vertices active). See VerifyMISOn for the
// exact semantics; the two are behaviorally identical on *Graph.
func VerifyMISOnOf(t Topology, active, in []bool) error {
	if g, ok := t.(*Graph); ok {
		return g.VerifyMISOn(active, in)
	}
	n := t.N()
	if len(in) != n {
		return fmt.Errorf("graph: membership mask length %d, want %d", len(in), n)
	}
	if active != nil && len(active) != n {
		return fmt.Errorf("graph: active mask length %d, want %d", len(active), n)
	}
	act := func(v int) bool { return active == nil || active[v] }
	for v := 0; v < n; v++ {
		if !act(v) {
			if in[v] {
				return fmt.Errorf("graph: inactive vertex %d is in the set", v)
			}
			continue
		}
		if in[v] {
			conflict := false
			t.ForEachNeighbor(v, func(u int32) bool {
				if act(int(u)) && in[u] {
					conflict = true
					return false
				}
				return true
			})
			if conflict {
				return fmt.Errorf("graph: active vertex %d in the set has an active neighbor in the set (independence violated)", v)
			}
			continue
		}
		dominated := false
		t.ForEachNeighbor(v, func(u int32) bool {
			if act(int(u)) && in[u] {
				dominated = true
				return false
			}
			return true
		})
		if !dominated {
			return fmt.Errorf("graph: active vertex %d outside the set has no active neighbor in the set (maximality violated)", v)
		}
	}
	return nil
}
