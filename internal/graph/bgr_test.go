package graph

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rng"
)

func encodeToBytes(t *testing.T, g Topology) []byte {
	t.Helper()
	c, ok := g.(*Compact)
	if !ok {
		c = Compress(g)
	}
	var buf bytes.Buffer
	if err := EncodeBGR(&buf, c, FingerprintOf(g)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBGRRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, g := range compactCorpus(t) {
		path := filepath.Join(dir, "g.bgr")
		if err := WriteBGR(path, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name(), err)
		}
		c, err := ReadBGR(path)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name(), err)
		}
		requireSameGraph(t, c, g)
		if c.Name() != g.Name() {
			t.Fatalf("round-trip name = %q, want %q", c.Name(), g.Name())
		}
	}
}

func TestBGRRoundTripImplicit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bgr")
	if err := WriteBGR(path, ImplicitTorus(9, 11)); err != nil {
		t.Fatal(err)
	}
	c, err := ReadBGR(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, c, Torus(9, 11))
}

// TestBGRTamperRejection flips each byte of a valid image in turn and
// requires every corruption to be rejected: the trailer covers the
// whole file, so no single-byte flip can survive.
func TestBGRTamperRejection(t *testing.T) {
	data := encodeToBytes(t, GNP(40, 0.15, rng.New(7)))
	if _, err := DecodeBGR(data); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		if _, err := DecodeBGR(mut); err == nil {
			t.Fatalf("flip at byte %d/%d accepted", i, len(data))
		}
	}
	// Truncations at every length.
	for l := 0; l < len(data); l++ {
		if _, err := DecodeBGR(data[:l]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", l)
		}
	}
}

// TestBGRFingerprintBinding rebuilds the trailer after lying in the
// fingerprint header; the decode must still fail, because the header
// fingerprint is checked against the payload's actual structure.
func TestBGRFingerprintBinding(t *testing.T) {
	g := Grid(6, 7)
	c := Compress(g)
	var buf bytes.Buffer
	if err := EncodeBGR(&buf, c, FingerprintOf(g)^0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBGR(buf.Bytes()); err == nil {
		t.Fatal("wrong header fingerprint accepted despite valid trailer")
	}
}

func TestReadBGRMissingFile(t *testing.T) {
	if _, err := ReadBGR(filepath.Join(t.TempDir(), "nope.bgr")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteBGRIsAtomic(t *testing.T) {
	// Overwriting an existing .bgr leaves no temp droppings and the new
	// content in place.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bgr")
	if err := WriteBGR(path, Path(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBGR(path, Cycle(8)); err != nil {
		t.Fatal(err)
	}
	c, err := ReadBGR(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, c, Cycle(8))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after overwrite, want 1", len(ents))
	}
}

func TestCompactCloseReleasesAndRejectsUse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "close.bgr")
	g := Cycle(64)
	if err := WriteBGR(path, g); err != nil {
		t.Fatal(err)
	}
	c, err := ReadBGR(path)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: usable before Close.
	if got := c.Degree(3); got != 2 {
		t.Fatalf("degree %d, want 2", got)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Use after Close must fail cleanly — a descriptive panic, never a
	// fault on unmapped memory or silently wrong data.
	assertClosedPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on closed graph did not panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, "closed") {
				t.Fatalf("%s panic %q does not name the closed graph", name, msg)
			}
		}()
		fn()
	}
	buf := make([]int32, c.MaxDegree())
	assertClosedPanic("Degree", func() { c.Degree(0) })
	assertClosedPanic("NeighborsInto", func() { c.NeighborsInto(0, buf) })
	assertClosedPanic("ForEachNeighbor", func() { c.ForEachNeighbor(0, func(int32) bool { return true }) })
}

func TestCompactCloseNoopForInMemory(t *testing.T) {
	// Compress output has no mapping; Close must still invalidate it.
	c := Compress(Path(9))
	if err := c.Close(); err != nil {
		t.Fatalf("Close on in-memory compact: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("row access on closed in-memory compact did not panic")
		}
	}()
	c.Degree(0)
}
