// Package graph provides the graph substrate for the beeping-model
// simulator: a compact immutable adjacency representation, degree and
// neighborhood queries (deg, Δ, deg₂ as defined in the paper), generators
// for the graph families used in the experiments, maximal-independent-set
// verification, and simple interchange formats.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected,
// matching the model of the paper. Vertices are identified by integers
// 0..N-1; identifiers exist only for the simulator's bookkeeping — the
// algorithms themselves never observe them (the network is anonymous).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed sparse row
// (CSR) form: the neighbors of vertex v are adj[off[v]:off[v+1]], sorted
// ascending.
type Graph struct {
	name string
	off  []int32
	adj  []int32
	// maxDeg caches Δ(G), computed once at construction. Per-vertex
	// knowledge variants (e.g. core.KnownMaxDegreeExact) query Δ for
	// every vertex; without the cache that is an O(n²) trap at scale.
	maxDeg int32
}

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V int
}

var (
	// ErrSelfLoop reports an edge from a vertex to itself.
	ErrSelfLoop = errors.New("graph: self-loop")
	// ErrVertexRange reports an edge endpoint outside [0, n).
	ErrVertexRange = errors.New("graph: vertex out of range")
)

// New builds a graph with n vertices from an edge list. Parallel edges
// are deduplicated. It returns an error for self-loops, out-of-range
// endpoints, or negative n.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, e.U, e.V)
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, e.U, e.V, n)
		}
		deg[e.U]++
		deg[e.V]++
	}

	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, off[n])
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		adj[cursor[e.U]] = int32(e.V)
		cursor[e.U]++
		adj[cursor[e.V]] = int32(e.U)
		cursor[e.V]++
	}

	g := &Graph{off: off, adj: adj}
	g.sortAndDedup()
	for v := 0; v < n; v++ {
		if d := int32(g.Degree(v)); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	return g, nil
}

// MustNew is New but panics on error. It is intended for generators whose
// edge lists are correct by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAndDedup sorts each adjacency list and removes duplicate entries,
// compacting the CSR arrays in place.
func (g *Graph) sortAndDedup() {
	n := g.N()
	newOff := make([]int32, n+1)
	w := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		row := g.adj[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		newOff[v] = w
		var prev int32 = -1
		for _, u := range row {
			if u != prev {
				g.adj[w] = u
				w++
				prev = u
			}
		}
	}
	newOff[n] = w
	g.off = newOff
	g.adj = g.adj[:w]
}

// WithName returns g with its descriptive name set (used in experiment
// tables). The underlying topology is shared, not copied.
func (g *Graph) WithName(name string) *Graph {
	g2 := *g
	g2.name = name
	return &g2
}

// Name returns the descriptive name given via WithName, or "".
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns deg(v), the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// MaxDegree returns Δ(G), the maximum degree; 0 for the empty graph.
// The value is cached at construction, so calling it per vertex (as the
// knowledge variants do) costs O(1), not O(n).
func (g *Graph) MaxDegree() int {
	return int(g.maxDeg)
}

// Degree2 returns deg₂(v) = max over u in N(v) ∪ {v} of deg(u): the
// maximum degree in the closed 1-hop neighborhood, as defined in
// Section 3 of the paper.
func (g *Graph) Degree2(v int) int {
	max := g.Degree(v)
	for _, u := range g.Neighbors(v) {
		if d := g.Degree(int(u)); d > max {
			max = d
		}
	}
	return max
}

// Edges returns the edge list with U < V in each edge, sorted.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				edges = append(edges, Edge{U: v, V: int(u)})
			}
		}
	}
	return edges
}

// AverageDegree returns 2M/N, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// ConnectedComponents returns the number of connected components.
func (g *Graph) ConnectedComponents() int {
	n := g.N()
	seen := make([]bool, n)
	stack := make([]int32, 0, 64)
	components := 0
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		components++
		seen[v] = true
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(int(x)) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	return components
}

// Validate checks internal CSR invariants: offsets monotone, adjacency
// sorted, symmetric, no self-loops. It exists to guard hand-built graphs
// in tests and decoded interchange files.
func (g *Graph) Validate() error {
	n := g.N()
	if g.off[0] != 0 || int(g.off[n]) != len(g.adj) {
		return errors.New("graph: offset bounds corrupt")
	}
	for v := 0; v < n; v++ {
		if g.off[v] > g.off[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		row := g.Neighbors(v)
		for i, u := range row {
			if int(u) == v {
				return fmt.Errorf("%w at vertex %d", ErrSelfLoop, v)
			}
			if u < 0 || int(u) >= n {
				return fmt.Errorf("%w: neighbor %d of vertex %d", ErrVertexRange, u, v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}
