package graph

import (
	"testing"

	"repro/internal/rng"
)

// compactCorpus spans regular, degenerate, random and geometric
// structure — the shapes the varint gaps must survive.
func compactCorpus(t *testing.T) []*Graph {
	t.Helper()
	gs := []*Graph{
		Empty(0),
		Empty(7),
		Path(1),
		Path(9),
		Cycle(12),
		Star(17),
		Complete(9),
		Grid(5, 8),
		Torus(6, 6),
		Hypercube(6),
		GNP(60, 0.1, rng.New(4)),
		UnitDisk(300, 0.12, rng.New(5)),
		Caterpillar(21),
	}
	return gs
}

func TestCompressMatchesSource(t *testing.T) {
	for _, g := range compactCorpus(t) {
		for _, stride := range []int{1, 3, DefaultCompactStride, 1 << 20} {
			c := CompressStride(g, stride)
			requireSameGraph(t, c, g)
			if c.Stride() != stride {
				t.Fatalf("%s: stride = %d, want %d", g.Name(), c.Stride(), stride)
			}
			if c.Name() != g.Name() {
				t.Fatalf("compact name = %q, want %q", c.Name(), g.Name())
			}
		}
	}
}

func TestCompressImplicitSource(t *testing.T) {
	// Compressing an implicit topology must land on the same canonical
	// view as compressing its materialized twin.
	c := Compress(ImplicitTorus(7, 9))
	requireSameGraph(t, c, Torus(7, 9))
}

func TestCompactBytesBeatCSR(t *testing.T) {
	// The point of the backend: low-degree geometric graphs encode in
	// well under the 4 bytes/endpoint + 4 bytes/vertex of the int32 CSR.
	g := UnitDisk(2000, 0.04, rng.New(6))
	c := Compress(g)
	csr := 4*(g.N()+1) + 4*2*g.M()
	if c.Bytes() >= csr {
		t.Fatalf("compact %d bytes, CSR %d bytes: no saving", c.Bytes(), csr)
	}
}
