package graph

import (
	"errors"
	"fmt"
	"sort"
)

// This file is the mutable edit layer over the immutable CSR Graph: a
// Builder accumulates vertex joins/leaves and edge adds/removes, then
// re-compacts to a fresh validated CSR together with a vertex mapping.
// It is the substrate of the churn experiments: a live beep.Network is
// rewired onto the compacted graph using the mapping, so surviving
// vertices keep their machine state while the topology changes under
// them.

// EditKind enumerates the four topology edits.
type EditKind int

const (
	// EditAddEdge inserts the undirected edge {U, V}.
	EditAddEdge EditKind = iota + 1
	// EditDelEdge removes the undirected edge {U, V}.
	EditDelEdge
	// EditAddVertex creates a new isolated vertex; it receives the next
	// free builder id (U and V are ignored).
	EditAddVertex
	// EditDelVertex removes vertex U together with all incident edges.
	EditDelVertex
)

// String names the edit kind for error messages and traces.
func (k EditKind) String() string {
	switch k {
	case EditAddEdge:
		return "add-edge"
	case EditDelEdge:
		return "del-edge"
	case EditAddVertex:
		return "add-vertex"
	case EditDelVertex:
		return "del-vertex"
	default:
		return fmt.Sprintf("edit(%d)", int(k))
	}
}

// Edit is one topology change, expressed in the id space of the Builder
// it is applied to: ids [0, n) are the vertices of the base graph, and
// each EditAddVertex extends the id space by one (n, n+1, …).
type Edit struct {
	Kind EditKind
	U, V int
}

// Errors of the edit layer, distinguishable with errors.Is.
var (
	// ErrEdgeExists reports an EditAddEdge whose edge is already present.
	ErrEdgeExists = errors.New("graph: edge already present")
	// ErrEdgeMissing reports an EditDelEdge whose edge is absent.
	ErrEdgeMissing = errors.New("graph: edge not present")
	// ErrVertexRemoved reports an edit touching an already-removed vertex.
	ErrVertexRemoved = errors.New("graph: vertex already removed")
)

// Builder is a mutable graph under construction: the adjacency is held
// as per-vertex hash sets so adds and removes are O(1) expected, and
// removed vertices are tombstoned until Build compacts the id space.
// A Builder is not safe for concurrent use.
type Builder struct {
	adj     []map[int32]struct{}
	removed []bool
	live    int
	edges   int
}

// NewBuilder returns a Builder seeded with the topology of g (which is
// left untouched), or an empty builder for nil.
func NewBuilder(g *Graph) *Builder {
	b := &Builder{}
	if g == nil {
		return b
	}
	n := g.N()
	b.adj = make([]map[int32]struct{}, n)
	b.removed = make([]bool, n)
	b.live = n
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		set := make(map[int32]struct{}, len(row))
		for _, u := range row {
			set[u] = struct{}{}
		}
		b.adj[v] = set
	}
	b.edges = g.M()
	return b
}

// IDs returns the size of the builder id space: base vertices plus
// vertices added so far, including tombstoned ones.
func (b *Builder) IDs() int { return len(b.adj) }

// Live returns the number of non-removed vertices, the N of the graph
// Build will produce.
func (b *Builder) Live() int { return b.live }

// Edges returns the current number of undirected edges.
func (b *Builder) Edges() int { return b.edges }

// Removed reports whether id v has been tombstoned. It panics for ids
// outside the builder id space, like the other accessors.
func (b *Builder) Removed(v int) bool { return b.removed[v] }

// HasEdge reports whether the (live) edge {u, v} is present.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= len(b.adj) || v < 0 || v >= len(b.adj) {
		return false
	}
	_, ok := b.adj[u][int32(v)]
	return ok
}

// checkVertex validates that v is a live vertex of the builder.
func (b *Builder) checkVertex(v int) error {
	if v < 0 || v >= len(b.adj) {
		return fmt.Errorf("%w: %d with id space [0,%d)", ErrVertexRange, v, len(b.adj))
	}
	if b.removed[v] {
		return fmt.Errorf("%w: %d", ErrVertexRemoved, v)
	}
	return nil
}

// AddVertex creates a new isolated vertex and returns its builder id.
func (b *Builder) AddVertex() int {
	b.adj = append(b.adj, make(map[int32]struct{}))
	b.removed = append(b.removed, false)
	b.live++
	return len(b.adj) - 1
}

// RemoveVertex tombstones v and removes all incident edges.
func (b *Builder) RemoveVertex(v int) error {
	if err := b.checkVertex(v); err != nil {
		return fmt.Errorf("graph: remove vertex: %w", err)
	}
	for u := range b.adj[v] {
		delete(b.adj[u], int32(v))
		b.edges--
	}
	b.adj[v] = nil
	b.removed[v] = true
	b.live--
	return nil
}

// AddEdge inserts the undirected edge {u, v}. It rejects self-loops,
// out-of-range or removed endpoints, and duplicate edges.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: add edge: %w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if err := b.checkVertex(u); err != nil {
		return fmt.Errorf("graph: add edge: %w", err)
	}
	if err := b.checkVertex(v); err != nil {
		return fmt.Errorf("graph: add edge: %w", err)
	}
	if _, ok := b.adj[u][int32(v)]; ok {
		return fmt.Errorf("graph: add edge: %w: (%d,%d)", ErrEdgeExists, u, v)
	}
	b.adj[u][int32(v)] = struct{}{}
	b.adj[v][int32(u)] = struct{}{}
	b.edges++
	return nil
}

// RemoveEdge deletes the undirected edge {u, v}, rejecting absent edges
// and invalid endpoints.
func (b *Builder) RemoveEdge(u, v int) error {
	if err := b.checkVertex(u); err != nil {
		return fmt.Errorf("graph: remove edge: %w", err)
	}
	if err := b.checkVertex(v); err != nil {
		return fmt.Errorf("graph: remove edge: %w", err)
	}
	if _, ok := b.adj[u][int32(v)]; !ok {
		return fmt.Errorf("graph: remove edge: %w: (%d,%d)", ErrEdgeMissing, u, v)
	}
	delete(b.adj[u], int32(v))
	delete(b.adj[v], int32(u))
	b.edges--
	return nil
}

// Apply performs one edit.
func (b *Builder) Apply(e Edit) error {
	switch e.Kind {
	case EditAddEdge:
		return b.AddEdge(e.U, e.V)
	case EditDelEdge:
		return b.RemoveEdge(e.U, e.V)
	case EditAddVertex:
		b.AddVertex()
		return nil
	case EditDelVertex:
		return b.RemoveVertex(e.U)
	default:
		return fmt.Errorf("graph: unknown edit kind %v", e.Kind)
	}
}

// Build compacts the live vertices into a fresh validated CSR graph and
// returns the vertex mapping: mapping has one entry per builder id, the
// new compacted id of that vertex or -1 if it was removed. Live ids are
// compacted in ascending order, so ids of the base graph that survive
// keep their relative order. The Builder remains usable afterwards.
func (b *Builder) Build() (*Graph, []int, error) {
	ids := len(b.adj)
	mapping := make([]int, ids)
	next := 0
	for v := 0; v < ids; v++ {
		if b.removed[v] {
			mapping[v] = -1
			continue
		}
		mapping[v] = next
		next++
	}
	edges := make([]Edge, 0, b.edges)
	for v := 0; v < ids; v++ {
		if b.removed[v] {
			continue
		}
		for u := range b.adj[v] {
			if int(u) > v {
				edges = append(edges, Edge{U: mapping[v], V: mapping[int(u)]})
			}
		}
	}
	// Map iteration order is random; sort for a deterministic edge list
	// (New sorts adjacency anyway, but determinism here keeps Build
	// outputs bit-identical across runs for hashing and golden tests).
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	g, err := New(next, edges)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: build edited graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: edited graph invalid: %w", err)
	}
	return g, mapping, nil
}

// ApplyEdits applies a batch of edits to g and re-compacts: it returns
// the new graph and the mapping from the builder id space (the N(g)
// base ids followed by one id per EditAddVertex, in order) to the new
// compacted ids, -1 for removed vertices. The batch is atomic: any
// invalid edit aborts with an error before a graph is produced, and g
// itself is never modified.
func ApplyEdits(g *Graph, edits []Edit) (*Graph, []int, error) {
	b := NewBuilder(g)
	for i, e := range edits {
		if err := b.Apply(e); err != nil {
			return nil, nil, fmt.Errorf("graph: edit %d (%v): %w", i, e.Kind, err)
		}
	}
	return b.Build()
}
