package graph

import (
	"testing"
)

// editRef is a naive reference model of the edit layer: vertex
// tombstones plus an edge set keyed by builder-id pairs. It exists so
// the fuzzer can cross-validate Builder/ApplyEdits against independent,
// obviously-correct bookkeeping.
type editRef struct {
	removed []bool
	edges   map[[2]int]bool
}

func newEditRef(g *Graph) *editRef {
	r := &editRef{removed: make([]bool, g.N()), edges: map[[2]int]bool{}}
	for _, e := range g.Edges() {
		r.edges[[2]int{e.U, e.V}] = true
	}
	return r
}

func (r *editRef) key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (r *editRef) liveVertex(v int) bool {
	return v >= 0 && v < len(r.removed) && !r.removed[v]
}

// apply mirrors Builder.Apply and reports whether the edit is valid.
func (r *editRef) apply(e Edit) bool {
	switch e.Kind {
	case EditAddEdge:
		if e.U == e.V || !r.liveVertex(e.U) || !r.liveVertex(e.V) || r.edges[r.key(e.U, e.V)] {
			return false
		}
		r.edges[r.key(e.U, e.V)] = true
	case EditDelEdge:
		if !r.liveVertex(e.U) || !r.liveVertex(e.V) || !r.edges[r.key(e.U, e.V)] {
			return false
		}
		delete(r.edges, r.key(e.U, e.V))
	case EditAddVertex:
		r.removed = append(r.removed, false)
	case EditDelVertex:
		if !r.liveVertex(e.U) {
			return false
		}
		r.removed[e.U] = true
		for k := range r.edges {
			if k[0] == e.U || k[1] == e.U {
				delete(r.edges, k)
			}
		}
	default:
		return false
	}
	return true
}

// FuzzApplyEdits decodes an arbitrary byte string into a batch of edits
// on a small seed graph, applies it through the production edit layer,
// and cross-validates the accept/reject decision and the resulting
// graph against the naive reference model. It asserts that accepted
// batches yield validated CSR graphs whose edge set, vertex count, and
// mapping agree with the reference.
func FuzzApplyEdits(f *testing.F) {
	f.Add(uint8(6), []byte{0, 0, 1})          // add edge 0-1 on a 6-cycle? (already present → reject path)
	f.Add(uint8(6), []byte{0, 0, 3})          // add chord
	f.Add(uint8(8), []byte{2, 0, 0, 0, 8, 0}) // add vertex, connect it
	f.Add(uint8(5), []byte{3, 2, 0, 1, 0, 1}) // remove vertex then touch it
	f.Add(uint8(4), []byte{1, 0, 1, 1, 0, 1}) // remove edge twice
	f.Add(uint8(3), []byte{2, 0, 0, 2, 0, 0, 3, 0, 0, 3, 1, 0})
	f.Fuzz(func(t *testing.T, nByte uint8, data []byte) {
		n := 2 + int(nByte)%30
		base := Cycle(n)
		ref := newEditRef(base)

		var edits []Edit
		valid := true
		for i := 0; i+2 < len(data) && len(edits) < 64; i += 3 {
			kind := EditKind(int(data[i])%4) + 1
			// Endpoints may range one past the current id space to
			// exercise the range checks.
			span := len(ref.removed) + 2
			e := Edit{Kind: kind, U: int(data[i+1]) % span, V: int(data[i+2]) % span}
			edits = append(edits, e)
			if valid {
				valid = ref.apply(e)
			}
		}

		g2, mapping, err := ApplyEdits(base, edits)
		if valid && err != nil {
			t.Fatalf("reference accepts batch, ApplyEdits rejects: %v (edits %v)", err, edits)
		}
		if !valid {
			if err == nil {
				t.Fatalf("reference rejects batch, ApplyEdits accepts (edits %v)", edits)
			}
			return
		}

		if err := g2.Validate(); err != nil {
			t.Fatalf("accepted batch produced invalid graph: %v", err)
		}
		if len(mapping) != len(ref.removed) {
			t.Fatalf("mapping covers %d ids, reference id space %d", len(mapping), len(ref.removed))
		}
		live := 0
		for id, rm := range ref.removed {
			if rm {
				if mapping[id] != -1 {
					t.Fatalf("removed id %d mapped to %d", id, mapping[id])
				}
				continue
			}
			if mapping[id] != live {
				t.Fatalf("live id %d mapped to %d, want %d", id, mapping[id], live)
			}
			live++
		}
		if g2.N() != live {
			t.Fatalf("compacted graph has %d vertices, reference %d", g2.N(), live)
		}
		if g2.M() != len(ref.edges) {
			t.Fatalf("compacted graph has %d edges, reference %d", g2.M(), len(ref.edges))
		}
		for k := range ref.edges {
			if !g2.HasEdge(mapping[k[0]], mapping[k[1]]) {
				t.Fatalf("reference edge (%d,%d) missing after compaction", k[0], k[1])
			}
		}
	})
}
