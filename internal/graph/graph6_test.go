package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGraph6KnownVectors(t *testing.T) {
	// Reference encodings from the nauty documentation.
	cases := []struct {
		g    *Graph
		want string
	}{
		{Complete(3), "Bw"},
		{Path(4), "Ch"},
		{Empty(0), "?"},
		{Empty(1), "@"},
		{Empty(5), "D??"},
		{Complete(5), "D~{"},
	}
	for _, tc := range cases {
		got, err := EncodeGraph6(tc.g)
		if err != nil {
			t.Fatalf("%s: %v", tc.g.Name(), err)
		}
		if got != tc.want {
			t.Errorf("%s: encoded %q, want %q", tc.g.Name(), got, tc.want)
		}
	}
}

func TestGraph6RoundTrip(t *testing.T) {
	src := rng.New(3)
	graphs := []*Graph{
		Empty(0), Empty(1), Empty(7),
		Path(10), Cycle(13), Complete(8), Star(20),
		Grid(4, 5), Hypercube(4),
		GNP(63, 0.2, src),  // crosses the 1-byte size boundary
		GNP(100, 0.1, src), // 4-byte size header
	}
	for _, g := range graphs {
		enc, err := EncodeGraph6(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		dec, err := DecodeGraph6(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", g.Name(), err)
		}
		if dec.N() != g.N() || dec.M() != g.M() {
			t.Fatalf("%s: round trip shape %d/%d vs %d/%d", g.Name(), dec.N(), dec.M(), g.N(), g.M())
		}
		for _, e := range g.Edges() {
			if !dec.HasEdge(e.U, e.V) {
				t.Fatalf("%s: lost edge %v", g.Name(), e)
			}
		}
	}
}

func TestGraph6LargeSizeHeader(t *testing.T) {
	g := Cycle(100)
	enc, err := EncodeGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != 126 {
		t.Fatalf("n=100 should use the 4-byte header, got leading byte %d", enc[0])
	}
	dec, err := DecodeGraph6(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N() != 100 || dec.M() != 100 {
		t.Fatalf("decoded %d/%d", dec.N(), dec.M())
	}
}

func TestDecodeGraph6Errors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"truncated head": "~B",
		"truncated body": "D",
		"bad size byte":  "\x1f",
		"8-byte header":  "~~AAAAAAA",
		"bad body byte":  "B\x1f",
	}
	for name, in := range cases {
		if _, err := DecodeGraph6(in); err == nil {
			t.Errorf("%s: %q accepted", name, in)
		}
	}
}

// Property: encode→decode is the identity on random graphs.
func TestGraph6RoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw % 70)
		p := float64(pRaw) / 255
		g := GNP(n, p, rng.New(seed))
		enc, err := EncodeGraph6(g)
		if err != nil {
			return false
		}
		dec, err := DecodeGraph6(enc)
		if err != nil {
			return false
		}
		if dec.N() != g.N() || dec.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !dec.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
