//go:build !unix

package graph

import "os"

// mapFile reads the whole file on platforms without mmap support; the
// semantics of ReadBGR are unchanged, only the loading cost. There is
// no mapping to release, so the closer is nil.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
