//go:build !unix

package graph

import "os"

// mapFile reads the whole file on platforms without mmap support; the
// semantics of ReadBGR are unchanged, only the loading cost.
func mapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
