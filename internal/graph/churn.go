package graph

import (
	"fmt"

	"repro/internal/rng"
)

// ChurnEvent is one atomic batch of topology edits in a churn schedule.
// The edits of event i are expressed in the id space of the graph
// obtained by applying (and re-compacting) events 0..i-1, which is
// exactly how stab.MeasureChurn replays them.
type ChurnEvent struct {
	// Label names the event in reports ("flap-3", "grow-2", …).
	Label string
	// Edits are applied atomically via ApplyEdits.
	Edits []Edit
}

// advance applies one event to the evolving graph, so generators can
// express the next event against the correct (compacted) id space.
func advance(g *Graph, ev ChurnEvent) (*Graph, error) {
	g2, _, err := ApplyEdits(g, ev.Edits)
	if err != nil {
		return nil, fmt.Errorf("graph: churn schedule self-check: %w", err)
	}
	return g2, nil
}

// FlapSchedule generates a deterministic link-flapping schedule: each of
// the events toggles `toggles` uniformly chosen vertex pairs (an absent
// pair is added, a present edge removed), the classic model of unstable
// radio links. The schedule is a pure function of (g, events, toggles,
// src) and every event is valid against the graph evolved through its
// predecessors.
func FlapSchedule(g *Graph, events, toggles int, src *rng.Source) ([]ChurnEvent, error) {
	if g == nil || g.N() < 2 {
		return nil, fmt.Errorf("graph: flap schedule needs at least 2 vertices")
	}
	if events <= 0 || toggles <= 0 {
		return nil, fmt.Errorf("graph: flap schedule needs positive events (%d) and toggles (%d)", events, toggles)
	}
	cur := g
	out := make([]ChurnEvent, 0, events)
	for e := 0; e < events; e++ {
		n := cur.N()
		seen := make(map[[2]int]bool, toggles)
		ev := ChurnEvent{Label: fmt.Sprintf("flap-%d", e)}
		for len(seen) < toggles {
			u := src.Intn(n)
			v := src.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			kind := EditAddEdge
			if cur.HasEdge(u, v) {
				kind = EditDelEdge
			}
			ev.Edits = append(ev.Edits, Edit{Kind: kind, U: u, V: v})
		}
		g2, err := advance(cur, ev)
		if err != nil {
			return nil, err
		}
		cur = g2
		out = append(out, ev)
	}
	return out, nil
}

// GrowthSchedule generates a join-heavy schedule: each event adds
// `joins` fresh vertices, each attaching to min(attach, N) distinct
// uniformly chosen existing vertices — the radio-deployment regime in
// which nodes keep arriving.
func GrowthSchedule(g *Graph, events, joins, attach int, src *rng.Source) ([]ChurnEvent, error) {
	if g == nil || g.N() < 1 {
		return nil, fmt.Errorf("graph: growth schedule needs a non-empty base graph")
	}
	if events <= 0 || joins <= 0 || attach <= 0 {
		return nil, fmt.Errorf("graph: growth schedule needs positive events (%d), joins (%d) and attach (%d)", events, joins, attach)
	}
	cur := g
	out := make([]ChurnEvent, 0, events)
	for e := 0; e < events; e++ {
		n := cur.N()
		ev := ChurnEvent{Label: fmt.Sprintf("grow-%d", e)}
		for j := 0; j < joins; j++ {
			id := n + j // builder id of the joiner within this event
			ev.Edits = append(ev.Edits, Edit{Kind: EditAddVertex})
			k := attach
			if k > n {
				k = n
			}
			targets := make(map[int]bool, k)
			for len(targets) < k {
				t := src.Intn(n) // attach to pre-event vertices only
				if targets[t] {
					continue
				}
				targets[t] = true
				ev.Edits = append(ev.Edits, Edit{Kind: EditAddEdge, U: id, V: t})
			}
		}
		g2, err := advance(cur, ev)
		if err != nil {
			return nil, err
		}
		cur = g2
		out = append(out, ev)
	}
	return out, nil
}

// CrashSchedule generates a leave-heavy schedule: each event removes
// `crashes` uniformly chosen vertices with all their edges, exercising
// vertex departure and id re-compaction. It refuses schedules that
// would empty the graph.
func CrashSchedule(g *Graph, events, crashes int, src *rng.Source) ([]ChurnEvent, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: crash schedule needs a base graph")
	}
	if events <= 0 || crashes <= 0 {
		return nil, fmt.Errorf("graph: crash schedule needs positive events (%d) and crashes (%d)", events, crashes)
	}
	if g.N() <= events*crashes {
		return nil, fmt.Errorf("graph: crash schedule would remove %d of %d vertices", events*crashes, g.N())
	}
	cur := g
	out := make([]ChurnEvent, 0, events)
	for e := 0; e < events; e++ {
		n := cur.N()
		ev := ChurnEvent{Label: fmt.Sprintf("crash-%d", e)}
		victims := make(map[int]bool, crashes)
		for len(victims) < crashes {
			v := src.Intn(n)
			if victims[v] {
				continue
			}
			victims[v] = true
			ev.Edits = append(ev.Edits, Edit{Kind: EditDelVertex, U: v})
		}
		g2, err := advance(cur, ev)
		if err != nil {
			return nil, err
		}
		cur = g2
		out = append(out, ev)
	}
	return out, nil
}

// PartitionHealSchedule generates `cycles` pairs of events: a partition
// event removes every edge crossing a uniformly random bipartition (the
// network splits into two islands), and the matching heal event re-adds
// exactly those edges. Bipartitions with an empty cut are re-drawn (up
// to a bounded number of attempts), so every partition event changes
// the topology.
func PartitionHealSchedule(g *Graph, cycles int, src *rng.Source) ([]ChurnEvent, error) {
	if g == nil || g.M() < 1 {
		return nil, fmt.Errorf("graph: partition-heal schedule needs at least one edge")
	}
	if cycles <= 0 {
		return nil, fmt.Errorf("graph: partition-heal schedule needs positive cycles, got %d", cycles)
	}
	n := g.N()
	out := make([]ChurnEvent, 0, 2*cycles)
	side := make([]bool, n)
	for c := 0; c < cycles; c++ {
		var cut []Edge
		for attempt := 0; attempt < 64; attempt++ {
			for v := range side {
				side[v] = src.Coin()
			}
			cut = cut[:0]
			g.ForEachEdge(func(u, v int32) bool {
				if side[u] != side[v] {
					cut = append(cut, Edge{U: int(u), V: int(v)})
				}
				return true
			})
			if len(cut) > 0 {
				break
			}
		}
		if len(cut) == 0 {
			return nil, fmt.Errorf("graph: partition-heal: no non-empty cut found")
		}
		part := ChurnEvent{Label: fmt.Sprintf("partition-%d", c)}
		heal := ChurnEvent{Label: fmt.Sprintf("heal-%d", c)}
		for _, e := range cut {
			part.Edits = append(part.Edits, Edit{Kind: EditDelEdge, U: e.U, V: e.V})
			heal.Edits = append(heal.Edits, Edit{Kind: EditAddEdge, U: e.U, V: e.V})
		}
		out = append(out, part, heal)
	}
	// Self-check the whole schedule against the evolving graph.
	cur := g
	for _, ev := range out {
		g2, err := advance(cur, ev)
		if err != nil {
			return nil, err
		}
		cur = g2
	}
	return out, nil
}
