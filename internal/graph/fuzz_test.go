package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the edge-list parser never panics and that
// anything it accepts is a valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# name\nn 0\n")
	f.Add("n 5\n")
	f.Add("0 1\n")
	f.Add("n x\n")
	f.Add("n 3\n0 0\n")
	f.Add("n 3\n0 99\n")
	f.Add("n 2\n\n# c\n0 1")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph from %q: %v", input, err)
		}
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
		}
	})
}

// FuzzDecodeGraph6 asserts the graph6 decoder never panics and that
// accepted inputs decode to valid graphs that re-encode losslessly.
func FuzzDecodeGraph6(f *testing.F) {
	f.Add("Bw")
	f.Add("Ch")
	f.Add("?")
	f.Add("~??B")
	f.Add("~~A")
	f.Add("D~{")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := DecodeGraph6(input)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph from %q: %v", input, err)
		}
		enc, err := EncodeGraph6(g)
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		g2, err := DecodeGraph6(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("graph6 round trip changed shape")
		}
	})
}
