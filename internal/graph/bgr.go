package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/atomicio"
)

// The .bgr binary graph format: an mmap-loadable container for the
// delta-varint Compact backend, so irregular graphs load in O(file)
// with the page cache doing the work instead of re-parsing text edge
// lists. Layout (all integers little-endian):
//
//	[0:4]   magic "BGRF"
//	[4:8]   version uint32 = 1
//	[8:16]  structural fingerprint uint64 (graph.FingerprintOf — the
//	        checkpoint-compatibility digest of PR 3)
//	[16:24] n uint64
//	[24:32] m uint64
//	[32:36] maxDeg uint32
//	[36:40] stride uint32
//	[40:44] nameLen uint32, then name bytes
//	        sampleCount uint64, then sampleCount × uint64 byte offsets
//	        payloadLen uint64, then the varint-CSR payload (compact.go)
//	[-8:]   trailer: FNV-1a 64 over every preceding byte
//
// Files are written via internal/atomicio (tmp + fsync + rename), so a
// crash never leaves a torn .bgr. DecodeBGR validates everything — the
// trailer, every header bound, every varint, strict row ascent, sample
// consistency, edge/degree totals, and that the header fingerprint
// matches the payload's actual structure — so a *Compact returned by
// ReadBGR can never panic later, and its fingerprint can be trusted for
// checkpoint compatibility. Corrupt or adversarial inputs produce
// errors, never panics (FuzzReadBGR pins this).

const (
	bgrMagic   = "BGRF"
	bgrVersion = 1

	// bgrMaxName bounds the embedded display name.
	bgrMaxName = 1 << 16
	// bgrFixedHeader is the byte length of the fixed fields through
	// nameLen.
	bgrFixedHeader = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 4
)

// WriteBGR atomically writes t to path in .bgr format, compressing to
// the delta-varint backend first unless t already is one.
func WriteBGR(path string, t Topology) error {
	c, ok := t.(*Compact)
	if !ok {
		c = Compress(t)
	}
	fp := FingerprintOf(t)
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return EncodeBGR(w, c, fp)
	})
}

// EncodeBGR streams c to w in .bgr format with the given structural
// fingerprint in the header. Callers outside tests should prefer
// WriteBGR, which computes the fingerprint and writes atomically.
func EncodeBGR(w io.Writer, c *Compact, fingerprint uint64) error {
	if len(c.name) > bgrMaxName {
		return fmt.Errorf("graph: bgr: name length %d exceeds %d", len(c.name), bgrMaxName)
	}
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)
	var b8 [8]byte
	put32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(b8[:4], x)
		_, err := mw.Write(b8[:4])
		return err
	}
	put64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(b8[:], x)
		_, err := mw.Write(b8[:])
		return err
	}
	if _, err := io.WriteString(mw, bgrMagic); err != nil {
		return err
	}
	if err := put32(bgrVersion); err != nil {
		return err
	}
	if err := put64(fingerprint); err != nil {
		return err
	}
	if err := put64(uint64(c.n)); err != nil {
		return err
	}
	if err := put64(uint64(c.m)); err != nil {
		return err
	}
	if err := put32(uint32(c.maxDeg)); err != nil {
		return err
	}
	if err := put32(uint32(c.stride)); err != nil {
		return err
	}
	if err := put32(uint32(len(c.name))); err != nil {
		return err
	}
	if _, err := io.WriteString(mw, c.name); err != nil {
		return err
	}
	if err := put64(uint64(len(c.samples))); err != nil {
		return err
	}
	for _, s := range c.samples {
		if err := put64(s); err != nil {
			return err
		}
	}
	if err := put64(uint64(len(c.payload))); err != nil {
		return err
	}
	if _, err := mw.Write(c.payload); err != nil {
		return err
	}
	// Trailer: digest of everything written so far, to w only.
	binary.LittleEndian.PutUint64(b8[:], h.Sum64())
	_, err := w.Write(b8[:])
	return err
}

// ReadBGR loads a .bgr file. On unix the payload is memory-mapped
// read-only and stays mapped until the returned graph's Close is
// called (the validation pass touches every page once; steady-state
// access is backed by the page cache). Elsewhere the file is read into
// memory and Close is a no-op. Callers that load graphs repeatedly —
// a long-running daemon serving many jobs — must Close each graph once
// done with it, or the process accumulates mappings.
func ReadBGR(path string) (*Compact, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: bgr: %w", err)
	}
	c, err := DecodeBGR(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("graph: bgr: %s: %w", path, err)
	}
	c.unmap = unmap
	return c, nil
}

// DecodeBGR parses and fully validates a .bgr image. The returned
// Compact aliases data's payload bytes (zero copy); data must stay
// valid (and unmodified) for the life of the graph. Any malformed,
// truncated or tampered input yields an error — never a panic and
// never a graph that could fault later.
func DecodeBGR(data []byte) (*Compact, error) {
	if len(data) < bgrFixedHeader+8+8+8+8 {
		return nil, fmt.Errorf("bgr: short file (%d bytes)", len(data))
	}
	if string(data[0:4]) != bgrMagic {
		return nil, fmt.Errorf("bgr: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != bgrVersion {
		return nil, fmt.Errorf("bgr: unsupported version %d", v)
	}
	// Integrity first: the trailer covers every other check's inputs.
	body := data[:len(data)-8]
	trailer := binary.LittleEndian.Uint64(data[len(data)-8:])
	th := fnv.New64a()
	th.Write(body)
	if got := th.Sum64(); got != trailer {
		return nil, fmt.Errorf("bgr: trailer mismatch: file digest %#016x, stored %#016x (truncated or corrupted)", got, trailer)
	}
	fp := binary.LittleEndian.Uint64(data[8:16])
	n64 := binary.LittleEndian.Uint64(data[16:24])
	m64 := binary.LittleEndian.Uint64(data[24:32])
	maxDeg64 := uint64(binary.LittleEndian.Uint32(data[32:36]))
	stride64 := uint64(binary.LittleEndian.Uint32(data[36:40]))
	nameLen := uint64(binary.LittleEndian.Uint32(data[40:44]))
	if n64 > math.MaxInt32 {
		return nil, fmt.Errorf("bgr: vertex count %d exceeds int32 id space", n64)
	}
	n := int(n64)
	if m64 > n64*maxDeg64/2 {
		return nil, fmt.Errorf("bgr: edge count %d exceeds n·maxDeg/2 = %d", m64, n64*maxDeg64/2)
	}
	if maxDeg64 >= n64 && !(n64 == 0 && maxDeg64 == 0) {
		return nil, fmt.Errorf("bgr: max degree %d out of range for n=%d", maxDeg64, n64)
	}
	if stride64 < 1 || stride64 > math.MaxInt32 {
		return nil, fmt.Errorf("bgr: stride %d out of range", stride64)
	}
	stride := int(stride64)
	if nameLen > bgrMaxName {
		return nil, fmt.Errorf("bgr: name length %d exceeds %d", nameLen, bgrMaxName)
	}
	p := uint64(bgrFixedHeader)
	rest := uint64(len(body))
	if p+nameLen+8 > rest {
		return nil, fmt.Errorf("bgr: truncated name")
	}
	name := string(body[p : p+nameLen])
	p += nameLen
	sampleCount := binary.LittleEndian.Uint64(body[p : p+8])
	p += 8
	wantSamples := uint64((n+stride-1)/stride + 1)
	if sampleCount != wantSamples {
		return nil, fmt.Errorf("bgr: %d offset samples, want %d for n=%d stride=%d", sampleCount, wantSamples, n, stride)
	}
	if p+8*sampleCount+8 > rest {
		return nil, fmt.Errorf("bgr: truncated sample table")
	}
	samples := make([]uint64, sampleCount)
	for i := range samples {
		samples[i] = binary.LittleEndian.Uint64(body[p : p+8])
		p += 8
	}
	payloadLen := binary.LittleEndian.Uint64(body[p : p+8])
	p += 8
	if rest-p != payloadLen {
		return nil, fmt.Errorf("bgr: payload length %d, file has %d bytes", payloadLen, rest-p)
	}
	payload := body[p:]

	// Structural walk: decode every row once, checking the varint
	// stream, strict ascent, id range, degree bounds, sample table and
	// totals. After this pass the hot-path decoders can omit checks.
	pos := 0
	sumDeg := uint64(0)
	actualMax := uint64(0)
	for v := 0; v < n; v++ {
		if v%stride == 0 {
			if samples[v/stride] != uint64(pos) {
				return nil, fmt.Errorf("bgr: sample %d = %d, want row offset %d", v/stride, samples[v/stride], pos)
			}
		}
		deg, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("bgr: bad degree varint at vertex %d", v)
		}
		pos += k
		if deg > maxDeg64 {
			return nil, fmt.Errorf("bgr: vertex %d degree %d exceeds header max %d", v, deg, maxDeg64)
		}
		sumDeg += deg
		if deg > actualMax {
			actualMax = deg
		}
		acc := int64(-1)
		for i := uint64(0); i < deg; i++ {
			gap, k := binary.Uvarint(payload[pos:])
			if k <= 0 {
				return nil, fmt.Errorf("bgr: bad gap varint in row %d", v)
			}
			pos += k
			if gap < 1 {
				return nil, fmt.Errorf("bgr: row %d not strictly ascending", v)
			}
			acc += int64(gap)
			if acc >= int64(n) {
				return nil, fmt.Errorf("bgr: row %d neighbor %d out of range [0, %d)", v, acc, n)
			}
			if acc == int64(v) {
				return nil, fmt.Errorf("bgr: row %d contains a self-loop", v)
			}
		}
	}
	if uint64(pos) != payloadLen {
		return nil, fmt.Errorf("bgr: %d trailing payload bytes", payloadLen-uint64(pos))
	}
	if samples[len(samples)-1] != payloadLen {
		return nil, fmt.Errorf("bgr: final sample %d, want payload length %d", samples[len(samples)-1], payloadLen)
	}
	if sumDeg != 2*m64 {
		return nil, fmt.Errorf("bgr: degree sum %d, want 2m = %d", sumDeg, 2*m64)
	}
	if actualMax != maxDeg64 {
		return nil, fmt.Errorf("bgr: actual max degree %d, header says %d", actualMax, maxDeg64)
	}
	c := &Compact{
		name:    name,
		n:       n,
		m:       int(m64),
		maxDeg:  int(maxDeg64),
		stride:  stride,
		samples: samples,
		payload: payload,
	}
	// Note the structural walk above cannot check symmetry cheaply, but
	// the fingerprint can: it is a digest of the full canonical view, so
	// a header fingerprint computed by WriteBGR over a valid graph only
	// matches payloads with that exact (symmetric, validated-at-encode)
	// structure.
	if got := c.fingerprintSeq(); got != fp {
		return nil, fmt.Errorf("bgr: structural fingerprint %#016x does not match header %#016x", got, fp)
	}
	return c, nil
}

// fingerprintSeq computes FingerprintOf in two sequential payload
// passes (offsets, then neighbors), avoiding the O(n·stride) row seeks
// a naive per-vertex walk would pay. FingerprintOf dispatches here for
// *Compact.
func (c *Compact) fingerprintSeq() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(c.n))
	run := uint64(0)
	put(run)
	p := 0
	for v := 0; v < c.n; v++ {
		deg, q := decodeUvarint(c.payload, p)
		p = q
		run += deg
		put(run)
		for i := uint64(0); i < deg; i++ {
			for c.payload[p]&0x80 != 0 {
				p++
			}
			p++
		}
	}
	p = 0
	for v := 0; v < c.n; v++ {
		deg, q := decodeUvarint(c.payload, p)
		p = q
		acc := int64(-1)
		for i := uint64(0); i < deg; i++ {
			gap, q := decodeUvarint(c.payload, p)
			p = q
			acc += int64(gap)
			put(uint64(acc))
		}
	}
	return h.Sum64()
}
