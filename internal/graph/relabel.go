package graph

import "sort"

// This file implements cache-aware vertex relabeling: permutations of
// the vertex identifiers chosen so that vertices that interact (CSR
// rows that are read together during signal delivery) sit near each
// other in memory. The protocols themselves are anonymous — they never
// observe identifiers — so relabeling cannot change the distribution of
// executions; for a *fixed seed* it does change which private stream a
// given original vertex draws from, which is why experiment harnesses
// treat it as a measured, opt-in transform rather than a default (see
// exp.ReplicatedConfig.Relabel).
//
// The payoff is locality in the flat engines' delivery phase: the
// scatter path walks the CSR rows of the senders, and the gather path
// streams every row in vertex order. With a BFS ordering the row of
// vertex v and the rows of its neighbors land in nearby cache lines;
// with a degree-sort ordering the hubs (rows touched by the most
// senders) pack into a contiguous hot region.

// Ordering selects the permutation strategy of Relabel.
type Ordering int

const (
	// OrderNone is the identity: no relabeling. It is the zero value,
	// so configuration structs default to the untransformed graph.
	OrderNone Ordering = iota
	// OrderBFS renumbers vertices in breadth-first order from the
	// lowest-numbered vertex of each component (components in ascending
	// order of their original minimum vertex; within a frontier,
	// neighbors are visited in ascending original order, so the
	// permutation is deterministic). Neighbors receive nearby new IDs —
	// the classic bandwidth-reducing layout for sparse delivery.
	OrderBFS
	// OrderDegree renumbers vertices by descending degree (ties broken
	// by ascending original ID, so the permutation is deterministic).
	// High-degree hubs — the CSR rows most frequently ORed during
	// scatter delivery — become the lowest IDs and share a compact
	// prefix of the adjacency slab.
	OrderDegree
)

// String returns the flag-friendly name of the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderNone:
		return "none"
	case OrderBFS:
		return "bfs"
	case OrderDegree:
		return "degree"
	}
	return "unknown"
}

// Relabeling is the result of Relabel: the permuted graph together with
// both directions of the permutation, so per-vertex results computed on
// the relabeled topology can be mapped back to the original IDs.
type Relabeling struct {
	// Graph is the relabeled topology: vertex NewID[v] of Graph is the
	// original vertex v.
	Graph *Graph
	// NewID[old] is the identifier of original vertex old in Graph.
	NewID []int32
	// OldID[new] is the original identifier of vertex new of Graph
	// (the inverse permutation: OldID[NewID[v]] == v).
	OldID []int32
}

// Relabel permutes the vertex identifiers of g according to the chosen
// ordering and rebuilds the CSR in the new order. The result is a new
// graph (g is immutable and untouched) whose adjacency is sorted and
// validated by construction; the name is carried over.
func Relabel(g *Graph, ord Ordering) *Relabeling {
	n := g.N()
	oldID := make([]int32, n) // oldID[new] = old
	switch ord {
	case OrderNone:
		for v := range oldID {
			oldID[v] = int32(v)
		}
	case OrderDegree:
		for v := range oldID {
			oldID[v] = int32(v)
		}
		sort.SliceStable(oldID, func(i, j int) bool {
			di, dj := g.Degree(int(oldID[i])), g.Degree(int(oldID[j]))
			if di != dj {
				return di > dj
			}
			return oldID[i] < oldID[j]
		})
	default: // OrderBFS
		next := 0
		queue := make([]int32, 0, n)
		seen := make([]bool, n)
		for s := 0; s < n; s++ {
			if seen[s] {
				continue
			}
			seen[s] = true
			queue = append(queue[:0], int32(s))
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				oldID[next] = v
				next++
				for _, u := range g.Neighbors(int(v)) {
					if !seen[u] {
						seen[u] = true
						queue = append(queue, u)
					}
				}
			}
		}
	}

	newID := make([]int32, n) // newID[old] = new
	for nw, old := range oldID {
		newID[old] = int32(nw)
	}

	// Rebuild the CSR directly under the permutation: row nw of the new
	// graph is the row oldID[nw] of g with every entry mapped through
	// newID, then sorted. Degrees are preserved, so the offsets come
	// straight from the old degrees — no edge-list round trip, no
	// dedup pass (g is already simple).
	off := make([]int32, n+1)
	for nw := 0; nw < n; nw++ {
		off[nw+1] = off[nw] + int32(g.Degree(int(oldID[nw])))
	}
	adj := make([]int32, off[n])
	for nw := 0; nw < n; nw++ {
		row := adj[off[nw]:off[nw+1]]
		for i, u := range g.Neighbors(int(oldID[nw])) {
			row[i] = newID[u]
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}

	g2 := &Graph{name: g.name, off: off, adj: adj, maxDeg: g.maxDeg}
	return &Relabeling{Graph: g2, NewID: newID, OldID: oldID}
}

// MapBack translates a per-vertex mask computed on the relabeled graph
// into original vertex order: result[old] = mask[NewID[old]].
func (r *Relabeling) MapBack(mask []bool) []bool {
	out := make([]bool, len(mask))
	for old, nw := range r.NewID {
		out[old] = mask[nw]
	}
	return out
}

// MapBackInt32 translates a per-vertex int32 slice (e.g. exported
// levels) computed on the relabeled graph into original vertex order.
func (r *Relabeling) MapBackInt32(vals []int32) []int32 {
	out := make([]int32, len(vals))
	for old, nw := range r.NewID {
		out[old] = vals[nw]
	}
	return out
}

// ParseOrdering parses a flag-style ordering name ("none", "bfs" or
// "degree"); the empty string parses as OrderNone.
func ParseOrdering(s string) (Ordering, bool) {
	switch s {
	case "", "none":
		return OrderNone, true
	case "bfs":
		return OrderBFS, true
	case "degree":
		return OrderDegree, true
	}
	return 0, false
}
