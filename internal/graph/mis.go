package graph

import "fmt"

// IsIndependent reports whether the vertex set (given as a membership
// mask of length N) contains no adjacent pair.
func (g *Graph) IsIndependent(in []bool) bool {
	return g.firstViolation(in, false) < 0
}

// IsMaximalIndependent reports whether the set is an MIS: independent and
// inclusion-maximal (every vertex outside the set has a neighbor inside).
func (g *Graph) IsMaximalIndependent(in []bool) bool {
	return g.firstViolation(in, true) < 0
}

// VerifyMIS returns nil if the set is an MIS, otherwise an error naming
// the first violating vertex, for use in tests and the experiment harness.
func (g *Graph) VerifyMIS(in []bool) error {
	if len(in) != g.N() {
		return fmt.Errorf("graph: membership mask length %d, want %d", len(in), g.N())
	}
	v := g.firstViolation(in, true)
	if v < 0 {
		return nil
	}
	if in[v] {
		return fmt.Errorf("graph: vertex %d in the set has a neighbor in the set (independence violated)", v)
	}
	return fmt.Errorf("graph: vertex %d outside the set has no neighbor in the set (maximality violated)", v)
}

// VerifyMISOn checks that the set is a maximal independent set of the
// subgraph induced by the active vertices: no two active set members are
// adjacent, every active non-member has an active neighbor in the set,
// and no inactive vertex is in the set at all. Edges with an inactive
// endpoint are invisible to both conditions. A nil active mask means all
// vertices are active (plain VerifyMIS).
//
// This is the legality predicate of the fault-model harness: adversarial
// (non-cooperating) vertices are marked inactive, and the
// self-stabilization guarantee is asserted on the correct induced
// subgraph around them.
func (g *Graph) VerifyMISOn(active, in []bool) error {
	if active == nil {
		return g.VerifyMIS(in)
	}
	if len(in) != g.N() {
		return fmt.Errorf("graph: membership mask length %d, want %d", len(in), g.N())
	}
	if len(active) != g.N() {
		return fmt.Errorf("graph: active mask length %d, want %d", len(active), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if !active[v] {
			if in[v] {
				return fmt.Errorf("graph: inactive vertex %d is in the set", v)
			}
			continue
		}
		if in[v] {
			for _, u := range g.Neighbors(v) {
				if active[u] && in[u] {
					return fmt.Errorf("graph: active vertex %d in the set has an active neighbor in the set (independence violated)", v)
				}
			}
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if active[u] && in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("graph: active vertex %d outside the set has no active neighbor in the set (maximality violated)", v)
		}
	}
	return nil
}

// firstViolation returns the lowest-numbered vertex violating
// independence, or — when checkMaximal is set — maximality; -1 if none.
func (g *Graph) firstViolation(in []bool, checkMaximal bool) int {
	for v := 0; v < g.N(); v++ {
		if in[v] {
			for _, u := range g.Neighbors(v) {
				if in[u] {
					return v
				}
			}
			continue
		}
		if !checkMaximal {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return v
		}
	}
	return -1
}

// GreedyMIS returns the lexicographically-first maximal independent set:
// scan vertices in order, adding each vertex not adjacent to an already
// chosen one. It is the sequential ground truth used by tests.
func (g *Graph) GreedyMIS() []bool {
	in := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		ok := true
		for _, u := range g.Neighbors(v) {
			if in[u] {
				ok = false
				break
			}
		}
		in[v] = ok
	}
	return in
}

// CountTrue returns the number of set entries in a membership mask.
func CountTrue(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}
