package graph

import (
	"fmt"
	"strings"
)

// graph6 is the compact ASCII graph format of McKay's nauty suite,
// widely used to exchange graph collections. This implementation
// supports graphs up to 258047 vertices (the 1- and 4-byte size
// headers; the 8-byte form for larger graphs is beyond simulation
// scale).

const graph6MaxN = 258047

// EncodeGraph6 returns the graph6 encoding of g.
func EncodeGraph6(g *Graph) (string, error) {
	n := g.N()
	if n > graph6MaxN {
		return "", fmt.Errorf("graph: graph6 supports at most %d vertices, got %d", graph6MaxN, n)
	}
	var sb strings.Builder
	// Size header.
	if n <= 62 {
		sb.WriteByte(byte(n + 63))
	} else {
		sb.WriteByte(126)
		sb.WriteByte(byte((n>>12)&63) + 63)
		sb.WriteByte(byte((n>>6)&63) + 63)
		sb.WriteByte(byte(n&63) + 63)
	}
	// Upper-triangle bits in column-major order: for each j, bits
	// x(0,j) … x(j-1,j), packed 6 per byte, zero-padded.
	var acc, bits int
	flush := func(force bool) {
		for bits >= 6 || (force && bits > 0) {
			if bits < 6 {
				acc <<= uint(6 - bits)
				bits = 6
			}
			sb.WriteByte(byte((acc>>uint(bits-6))&63) + 63)
			bits -= 6
			acc &= (1 << uint(bits)) - 1
		}
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			acc <<= 1
			if g.HasEdge(i, j) {
				acc |= 1
			}
			bits++
			flush(false)
		}
	}
	flush(true)
	return sb.String(), nil
}

// DecodeGraph6 parses a graph6 string (one graph, no trailing newline
// required).
func DecodeGraph6(s string) (*Graph, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("graph: empty graph6 string")
	}
	data := []byte(s)
	var n, pos int
	switch {
	case data[0] == 126:
		if len(data) >= 2 && data[1] == 126 {
			return nil, fmt.Errorf("graph: 8-byte graph6 size header not supported")
		}
		if len(data) < 4 {
			return nil, fmt.Errorf("graph: truncated graph6 size header")
		}
		for k := 1; k <= 3; k++ {
			if data[k] < 63 || data[k] > 126 {
				return nil, fmt.Errorf("graph: invalid graph6 byte %d at position %d", data[k], k)
			}
			n = n<<6 | int(data[k]-63)
		}
		pos = 4
	default:
		if data[0] < 63 || data[0] > 125 {
			return nil, fmt.Errorf("graph: invalid graph6 size byte %d", data[0])
		}
		n = int(data[0] - 63)
		pos = 1
	}

	needBits := n * (n - 1) / 2
	needBytes := (needBits + 5) / 6
	if len(data)-pos < needBytes {
		return nil, fmt.Errorf("graph: graph6 body has %d bytes, need %d for n=%d", len(data)-pos, needBytes, n)
	}
	var edges []Edge
	bitIdx := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			b := data[pos+bitIdx/6]
			if b < 63 || b > 126 {
				return nil, fmt.Errorf("graph: invalid graph6 body byte %d", b)
			}
			if (b-63)>>(5-uint(bitIdx%6))&1 == 1 {
				edges = append(edges, Edge{U: i, V: j})
			}
			bitIdx++
		}
	}
	g, err := New(n, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: decode graph6: %w", err)
	}
	return g, nil
}
