package stab

import (
	"reflect"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMeasureChurnFlapStorm(t *testing.T) {
	g := graph.GNPAvgDegree(48, 5, rng.New(41))
	sched, err := graph.FlapSchedule(g, 5, 10, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChurnConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     17,
		Schedule: sched,
		Dwell:    50,
	}
	res, err := MeasureChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 5 {
		t.Fatalf("recorded %d events, want 5", len(res.Events))
	}
	if res.Recovered != 5 {
		t.Fatalf("recovered %d/5 flap events", res.Recovered)
	}
	if res.InitialRounds <= 0 {
		t.Fatalf("InitialRounds = %d", res.InitialRounds)
	}
	for i, ev := range res.Events {
		if !ev.Recovered || ev.RecoveryRounds <= 0 {
			t.Fatalf("event %d (%s): recovered=%v rounds=%d", i, ev.Label, ev.Recovered, ev.RecoveryRounds)
		}
		// Flapping edges never changes the vertex set.
		if ev.Survivors != g.N() || ev.Joiners != 0 {
			t.Fatalf("event %d: survivors=%d joiners=%d on an edge-only storm", i, ev.Survivors, ev.Joiners)
		}
		if ev.Adjustment < 0 || ev.Adjustment > g.N() {
			t.Fatalf("event %d: adjustment %d out of range", i, ev.Adjustment)
		}
	}
	if res.Availability <= 0 || res.Availability > 1 {
		t.Fatalf("availability %v out of (0,1]", res.Availability)
	}
	if res.FinalN != g.N() {
		t.Fatalf("FinalN = %d, want %d", res.FinalN, g.N())
	}
	if res.ObservedRounds <= 0 {
		t.Fatalf("ObservedRounds = %d", res.ObservedRounds)
	}

	// The storm is a deterministic function of its configuration.
	res2, err := MeasureChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("same configuration produced different storms:\n%+v\n%+v", res, res2)
	}
}

func TestMeasureChurnGrowth(t *testing.T) {
	g := graph.Cycle(24)
	sched, err := graph.GrowthSchedule(g, 3, 4, 2, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureChurn(ChurnConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     23,
		Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 3 {
		t.Fatalf("recovered %d/3 growth events", res.Recovered)
	}
	n := 24
	for i, ev := range res.Events {
		if ev.Survivors != n || ev.Joiners != 4 {
			t.Fatalf("event %d: survivors=%d joiners=%d, want %d survivors and 4 joiners", i, ev.Survivors, ev.Joiners, n)
		}
		n += 4
	}
	if res.FinalN != 24+3*4 {
		t.Fatalf("FinalN = %d, want %d", res.FinalN, 24+3*4)
	}
}

func TestMeasureChurnCrash(t *testing.T) {
	g := graph.GNPAvgDegree(40, 6, rng.New(61))
	sched, err := graph.CrashSchedule(g, 3, 5, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureChurn(ChurnConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     29,
		Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 3 {
		t.Fatalf("recovered %d/3 crash events", res.Recovered)
	}
	if res.FinalN != 40-3*5 {
		t.Fatalf("FinalN = %d, want %d", res.FinalN, 40-3*5)
	}
	for i, ev := range res.Events {
		if ev.Joiners != 0 {
			t.Fatalf("event %d: %d joiners in a pure-crash storm", i, ev.Joiners)
		}
	}
}

// TestMeasureChurnWithMuteAdversaries runs a flap storm with two mute
// (crashed-silent) vertices installed: the correct induced subgraph must
// still re-stabilize after every event, since a mute vertex is
// observationally identical to an absent one, and the adjustment measure
// must never count the excluded vertices.
func TestMeasureChurnWithMuteAdversaries(t *testing.T) {
	g := graph.GNPAvgDegree(36, 5, rng.New(71))
	sched, err := graph.FlapSchedule(g, 3, 6, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureChurn(ChurnConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     31,
		Schedule: sched,
		Options:  []beep.Option{beep.WithAdversaries(beep.AdvMute, []int{0, 7})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 3 {
		t.Fatalf("recovered %d/3 events with mute adversaries", res.Recovered)
	}
}

func TestMeasureChurnValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := MeasureChurn(ChurnConfig{Protocol: alg1(), Schedule: []graph.ChurnEvent{{}}}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := MeasureChurn(ChurnConfig{Graph: g, Schedule: []graph.ChurnEvent{{}}}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := MeasureChurn(ChurnConfig{Graph: g, Protocol: alg1()}); err == nil {
		t.Fatal("empty schedule accepted")
	}
	// An event whose edits don't fit the evolved graph must surface.
	bad := []graph.ChurnEvent{{Label: "bad", Edits: []graph.Edit{{Kind: graph.EditDelVertex, U: 99}}}}
	if _, err := MeasureChurn(ChurnConfig{Graph: g, Protocol: alg1(), Seed: 1, Schedule: bad}); err == nil {
		t.Fatal("invalid event accepted")
	}
}

// TestClosureNoiselessAfterChurn is the closure half of the churn story:
// once the network has re-stabilized after a partition-and-heal cycle,
// the fault-free execution must hold the same legal configuration
// forever.
func TestClosureNoiselessAfterChurn(t *testing.T) {
	g := graph.GNPAvgDegree(32, 5, rng.New(81))
	sched, err := graph.PartitionHealSchedule(g, 1, rng.New(82))
	if err != nil {
		t.Fatal(err)
	}
	net, err := beep.NewNetwork(g, alg1(), 37)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	if _, err := stabilizeWithin(net, defaultBudget(g.N())); err != nil {
		t.Fatal(err)
	}
	cur := g
	for _, ev := range sched {
		g2, mapping, err := graph.ApplyEdits(cur, ev.Edits)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Rewire(g2, mapping[:cur.N()]); err != nil {
			t.Fatal(err)
		}
		if _, err := stabilizeWithin(net, defaultBudget(g2.N())); err != nil {
			t.Fatalf("no recovery after %s: %v", ev.Label, err)
		}
		cur = g2
	}
	if err := CheckClosure(net, 300); err != nil {
		t.Fatalf("closure lost after churn: %v", err)
	}
}
