package stab

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
)

// ChurnConfig describes a topology-churn storm: the network stabilizes,
// then each scheduled event is applied through a live Rewire and the
// harness measures how the protocol re-stabilizes from the surviving
// state — the "from any configuration" regime of Theorem 2.1 with the
// configuration produced by churn instead of an adversary's pen.
type ChurnConfig struct {
	Graph    *graph.Graph
	Protocol beep.Protocol
	Seed     uint64
	// Schedule is the event sequence, each expressed against the graph
	// as evolved by the preceding events (as the generators in package
	// graph produce them).
	Schedule []graph.ChurnEvent
	// RecoveryBudget bounds re-stabilization after each event (and the
	// initial warmup); 0 uses the core default budget for the graph.
	RecoveryBudget int
	// Dwell is the number of extra rounds to run after each recovery
	// before the next event hits (default 0): a storm with Dwell 0 is
	// back-to-back churn.
	Dwell int
	// Options are extra network options — engine, noise, sleep,
	// adversaries. Adversarial vertices are masked out of the legality
	// predicate and tracked through renumbering by the network itself.
	Options []beep.Option
}

// ChurnEventResult reports one churn event.
type ChurnEventResult struct {
	// Label is the generator's tag for the event.
	Label string
	// Survivors and Joiners count the vertices carried over and freshly
	// powered on by the event.
	Survivors int
	Joiners   int
	// Recovered reports whether the network re-stabilized within the
	// budget; RecoveryRounds is the rounds it took (or the whole budget
	// when it did not).
	Recovered      bool
	RecoveryRounds int
	// Adjustment is the superstabilization-style adjustment measure:
	// the number of surviving correct vertices *not* incident to the
	// topology change whose MIS membership nevertheless differs between
	// the pre-event and post-recovery legal configurations. A perfectly
	// local protocol would keep it at 0; it is only meaningful (and only
	// computed) when the event recovered.
	Adjustment int
}

// ChurnResult reports a full storm.
type ChurnResult struct {
	// InitialRounds is the warmup stabilization time from the random
	// initial configuration.
	InitialRounds int
	// Events has one entry per scheduled event, in order.
	Events []ChurnEventResult
	// Recovered counts the events that re-stabilized within budget.
	Recovered int
	// ObservedRounds and Availability summarize the post-warmup run:
	// the fraction of stepped rounds spent in a legal configuration.
	ObservedRounds int
	Availability   float64
	// FinalN is the vertex count after the last event.
	FinalN int
}

// MeasureChurn runs the storm. Every recovery is verified (the masked
// MIS must be legal on the correct induced subgraph); an event whose
// budget expires is recorded as unrecovered and the storm continues
// from whatever state the network is in — exactly what a deployment
// would do.
func MeasureChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Graph == nil || cfg.Protocol == nil {
		return nil, fmt.Errorf("stab: nil graph or protocol")
	}
	if len(cfg.Schedule) == 0 {
		return nil, fmt.Errorf("stab: empty churn schedule")
	}
	budget := cfg.RecoveryBudget
	if budget <= 0 {
		budget = defaultBudget(cfg.Graph.N())
	}

	net, err := beep.NewNetwork(cfg.Graph, cfg.Protocol, cfg.Seed, cfg.Options...)
	if err != nil {
		return nil, fmt.Errorf("stab: %w", err)
	}
	defer net.Close()
	net.RandomizeAll()

	var probe core.State
	epoch := ^uint64(0)
	recapture := func() {
		if e := net.AdversaryEpoch(); e != epoch {
			if net.AdversaryCount() > 0 {
				mask := make([]bool, net.N())
				net.FillAdversaryMask(mask)
				probe.SetExcluded(mask)
			} else {
				probe.SetExcluded(nil)
			}
			epoch = e
		}
	}

	res := &ChurnResult{}
	legal := 0
	// stabilize steps until legality (counting legal rounds), verifying
	// the masked MIS on success.
	stabilize := func() (int, bool, error) {
		for r := 1; r <= budget; r++ {
			net.Step()
			res.ObservedRounds++
			if err := probe.Refresh(net); err != nil {
				return r, false, err
			}
			if probe.Stabilized() {
				legal++
				if err := probe.VerifyMIS(); err != nil {
					return r, false, fmt.Errorf("stab: stabilized illegally after churn: %w", err)
				}
				return r, true, nil
			}
		}
		return budget, false, nil
	}

	recapture()
	warm, ok, err := stabilize()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: warmup, %d rounds on %s", ErrNoRecovery, warm, cfg.Graph.Name())
	}
	res.InitialRounds = warm
	// Warmup rounds are not part of the observed window.
	res.ObservedRounds, legal = 0, 0

	cur := cfg.Graph
	for ei, ev := range cfg.Schedule {
		// Pre-event legal configuration (masked).
		preMIS := probe.MISMask()

		g2, mapping, err := graph.ApplyEdits(cur, ev.Edits)
		if err != nil {
			return nil, fmt.Errorf("stab: event %d (%s): %w", ei, ev.Label, err)
		}
		affOld := affectedByEdits(cur, ev.Edits)
		if err := net.Rewire(g2, mapping[:cur.N()]); err != nil {
			return nil, fmt.Errorf("stab: event %d (%s): %w", ei, ev.Label, err)
		}
		recapture()

		er := ChurnEventResult{Label: ev.Label}
		affNew := make([]bool, g2.N())
		survivor := make([]bool, g2.N())
		for old, w := range mapping[:cur.N()] {
			if w < 0 {
				continue
			}
			survivor[w] = true
			er.Survivors++
			if affOld[old] {
				affNew[w] = true
			}
		}
		for v := 0; v < g2.N(); v++ {
			if survivor[v] {
				continue
			}
			er.Joiners++
			affNew[v] = true
			for _, u := range g2.Neighbors(v) {
				affNew[u] = true
			}
		}

		rounds, ok, err := stabilize()
		if err != nil {
			return nil, fmt.Errorf("stab: event %d (%s): %w", ei, ev.Label, err)
		}
		er.RecoveryRounds, er.Recovered = rounds, ok
		if ok {
			res.Recovered++
			postMIS := probe.MISMask()
			for old, w := range mapping[:cur.N()] {
				if w < 0 || affNew[w] || probe.Excluded(w) {
					continue
				}
				if preMIS[old] != postMIS[w] {
					er.Adjustment++
				}
			}
			for r := 0; r < cfg.Dwell; r++ {
				net.Step()
				res.ObservedRounds++
				if err := probe.Refresh(net); err != nil {
					return nil, err
				}
				if probe.Stabilized() {
					legal++
				}
			}
		}
		res.Events = append(res.Events, er)
		cur = g2
	}
	if res.ObservedRounds > 0 {
		res.Availability = float64(legal) / float64(res.ObservedRounds)
	}
	res.FinalN = cur.N()
	return res, nil
}

// affectedByEdits marks the pre-event vertices incident to a batch of
// edits: endpoints of added/removed edges and the closed neighborhood of
// removed vertices. Edit endpoints referring to in-batch joiners (ids ≥
// g.N()) are outside the pre-event id space and are handled by the
// joiner-side marking in MeasureChurn.
func affectedByEdits(g *graph.Graph, edits []graph.Edit) []bool {
	aff := make([]bool, g.N())
	mark := func(v int) {
		if v >= 0 && v < g.N() {
			aff[v] = true
		}
	}
	for _, e := range edits {
		switch e.Kind {
		case graph.EditAddEdge, graph.EditDelEdge:
			mark(e.U)
			mark(e.V)
		case graph.EditDelVertex:
			mark(e.U)
			if e.U >= 0 && e.U < g.N() {
				for _, u := range g.Neighbors(e.U) {
					mark(int(u))
				}
			}
		}
	}
	return aff
}
