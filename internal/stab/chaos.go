package stab

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"path/filepath"

	"repro/internal/beep"
	"repro/internal/ckpt"
	"repro/internal/graph"
	"repro/internal/rng"
)

// This file is the chaos kill–resume harness: it executes one scenario
// (optionally noisy, adversarial and churning) to completion recording a
// per-round trace hash, then repeatedly "kills" the same execution at
// randomized rounds, resumes each kill from the last auto-checkpoint
// (after a serialize/deserialize roundtrip, exactly what a crashed
// process would read back from disk), and asserts that every resumed
// round reproduces the reference trace hash bit-exactly. Any divergence
// — a field missing from the checkpoint, an RNG stream restored out of
// phase, an adversary forgotten — shows up as a hash mismatch at a
// specific round.

// ChaosChurn schedules one live-rewire event inside a chaos scenario:
// the event is applied immediately after round AfterRound completes,
// expressed against the graph as evolved by the preceding events.
type ChaosChurn struct {
	AfterRound int
	Event      graph.ChurnEvent
}

// ChaosScenario describes one execution to subject to kill–resume.
type ChaosScenario struct {
	Name     string
	Graph    *graph.Graph
	Protocol beep.Protocol
	Seed     uint64
	Engine   beep.Engine
	// Sparse selects the flat engines' round path (the zero value is
	// SparseAuto). SparseOn forces the delta path on every fault-free
	// round and is only constructible on engines with flat kernels.
	Sparse beep.SparseMode
	Noise  beep.Noise
	Sleep  beep.Sleep
	// AdvPolicy/AdvVertices install adversaries at construction time
	// (resumed passes rely on Restore to reinstall them — deliberately,
	// so the harness catches checkpoints that forget adversary state).
	AdvPolicy   beep.AdversaryPolicy
	AdvVertices []int
	// Churn is the (possibly empty) schedule of live rewires.
	Churn []ChaosChurn
	// Rounds is the fixed execution length; stabilization is irrelevant
	// here, trace equivalence is the property under test.
	Rounds int
	// ChainDir, when set, routes every crash pass's checkpoints through
	// an on-disk base + delta chain (internal/ckpt) in this directory,
	// and resumes from ckpt.Load instead of an in-memory JSON roundtrip
	// — the v3 incremental format under the exact kill–resume pressure
	// the JSON path has always faced. Empty keeps the classic v2 wire
	// roundtrip.
	ChainDir string
}

// ChaosReport summarizes a kill–resume campaign over one scenario.
type ChaosReport struct {
	Scenario string
	// Kills is the number of kill points exercised; Resumes counts the
	// ones that resumed with bit-exact trace equivalence (a passing
	// campaign has Resumes == Kills).
	Kills   int
	Resumes int
	// MinKillRound/MaxKillRound bound the sampled kill rounds.
	MinKillRound int
	MaxKillRound int
	// ZeroCheckpointResumes counts kills that resumed from the round-0
	// checkpoint (kill before the first cadence multiple).
	ZeroCheckpointResumes int
	// DeltaResumes counts resumes whose loaded chain carried at least
	// one delta link (only in ChainDir mode) — proof the campaign
	// actually exercised incremental restore, not just bases.
	DeltaResumes int
}

// chaosPass parameterizes one execution of the scenario.
type chaosPass struct {
	// resume, when non-nil, restores this checkpoint instead of
	// initializing fresh.
	resume *beep.Checkpoint
	// stopAfter kills the run after this round completes (0: run all
	// Rounds).
	stopAfter int
	// ckEvery auto-checkpoints every K rounds, plus once at round 0
	// (0 disables).
	ckEvery int
	// chainPath, when set, persists the checkpoints as an on-disk
	// base + delta chain at this path instead of only in memory.
	chainPath string
}

// chaosTrace is the outcome of one pass: per-round hashes (index r holds
// round r's hash; rounds before a resumed pass's start are zero) and the
// last checkpoint taken (nil if none).
type chaosTrace struct {
	hashes []uint64
	lastCP *beep.Checkpoint
}

// TraceHash folds one round's signals into a 64-bit FNV-1a digest. The
// round number and vertex count are mixed in so a silent round is not
// confused with a skipped one, nor a pre-churn round with a post-churn
// one. It is the per-round fingerprint both the chaos harness and the
// beepd service layer use to prove bit-exact resume.
func TraceHash(round int, sent, heard []beep.Signal) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(round))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(len(sent)))
	h.Write(b[:])
	for i := range sent {
		h.Write([]byte{byte(sent[i]), byte(heard[i])})
	}
	return h.Sum64()
}

// replayGraph re-derives the scenario's graph as of the end of round
// upTo by replaying the churn schedule, mirroring exactly what the live
// pass does. It returns the graph and the index of the first unapplied
// event.
func replayGraph(s *ChaosScenario, upTo int) (*graph.Graph, int, error) {
	cur := s.Graph
	next := 0
	for next < len(s.Churn) && s.Churn[next].AfterRound <= upTo {
		g2, _, err := graph.ApplyEdits(cur, s.Churn[next].Event.Edits)
		if err != nil {
			return nil, 0, fmt.Errorf("stab: chaos replay event %d (%s): %w",
				next, s.Churn[next].Event.Label, err)
		}
		cur = g2
		next++
	}
	return cur, next, nil
}

// runPass executes the scenario once under the pass parameters.
func runPass(s *ChaosScenario, p chaosPass) (*chaosTrace, error) {
	if s.Rounds <= 0 {
		return nil, fmt.Errorf("stab: chaos scenario %q has no rounds", s.Name)
	}
	tr := &chaosTrace{hashes: make([]uint64, s.Rounds+1)}

	start := 0
	cur := s.Graph
	nextChurn := 0
	if p.resume != nil {
		start = p.resume.Round
		var err error
		if cur, nextChurn, err = replayGraph(s, start); err != nil {
			return nil, err
		}
	}

	opts := []beep.Option{
		beep.WithEngine(engineOrDefault(s.Engine)),
		beep.WithSparse(s.Sparse),
		beep.WithNoise(s.Noise),
		beep.WithSleep(s.Sleep),
		beep.WithObserver(func(round int, sent, heard []beep.Signal) {
			if round >= 0 && round < len(tr.hashes) {
				tr.hashes[round] = TraceHash(round, sent, heard)
			}
		}),
	}
	// A fresh pass installs adversaries explicitly; a resumed pass must
	// get them back from the checkpoint alone.
	if p.resume == nil && len(s.AdvVertices) > 0 {
		opts = append(opts, beep.WithAdversaries(s.AdvPolicy, s.AdvVertices))
	}

	net, err := beep.NewNetwork(cur, s.Protocol, s.Seed, opts...)
	if err != nil {
		return nil, fmt.Errorf("stab: chaos %q: %w", s.Name, err)
	}
	defer net.Close()

	if p.resume != nil {
		if err := net.Restore(p.resume); err != nil {
			return nil, fmt.Errorf("stab: chaos %q resume: %w", s.Name, err)
		}
	} else {
		net.RandomizeAll()
	}

	var chain *ckpt.Writer
	if p.chainPath != "" {
		chain = ckpt.NewWriter(p.chainPath)
		defer chain.Close()
	}
	totalWords := (net.N() + 63) / 64
	checkpoint := func() error {
		if chain == nil || chain.NeedsBase(net.DirtyAll(), net.DirtyWords(), totalWords) {
			cp, err := net.Checkpoint()
			if err != nil {
				return fmt.Errorf("stab: chaos %q checkpoint: %w", s.Name, err)
			}
			if chain != nil {
				if _, err := chain.WriteBase(cp); err != nil {
					return fmt.Errorf("stab: chaos %q checkpoint: %w", s.Name, err)
				}
			}
			tr.lastCP = cp
			return nil
		}
		d, err := net.CheckpointDelta(chain.ParentHash())
		if err != nil {
			return fmt.Errorf("stab: chaos %q checkpoint: %w", s.Name, err)
		}
		if _, err := chain.AppendDelta(d); err != nil {
			return fmt.Errorf("stab: chaos %q checkpoint: %w", s.Name, err)
		}
		// Keep the in-memory tip honest (unsealed is fine: chain-mode
		// resume loads from disk, lastCP only marks that one was taken).
		if err := beep.ApplyDelta(tr.lastCP, d); err != nil {
			return fmt.Errorf("stab: chaos %q checkpoint: %w", s.Name, err)
		}
		return nil
	}
	// Round-0 checkpoint: a kill before the first cadence multiple must
	// still be resumable without re-randomizing (which would diverge).
	if p.ckEvery > 0 && p.resume == nil {
		if err := checkpoint(); err != nil {
			return nil, err
		}
	}

	stop := s.Rounds
	if p.stopAfter > 0 && p.stopAfter < stop {
		stop = p.stopAfter
	}
	for r := start + 1; r <= stop; r++ {
		if err := net.TryStep(); err != nil {
			return nil, fmt.Errorf("stab: chaos %q round %d: %w", s.Name, r, err)
		}
		// Churn strikes after the round completes, then the checkpoint
		// (if due) captures the post-churn state so resume rebuilds the
		// same topology.
		for nextChurn < len(s.Churn) && s.Churn[nextChurn].AfterRound == r {
			ev := s.Churn[nextChurn]
			g2, mapping, err := graph.ApplyEdits(cur, ev.Event.Edits)
			if err != nil {
				return nil, fmt.Errorf("stab: chaos %q event %d (%s): %w",
					s.Name, nextChurn, ev.Event.Label, err)
			}
			if err := net.Rewire(g2, mapping[:cur.N()]); err != nil {
				return nil, fmt.Errorf("stab: chaos %q event %d (%s): %w",
					s.Name, nextChurn, ev.Event.Label, err)
			}
			cur = g2
			nextChurn++
		}
		if p.ckEvery > 0 && r%p.ckEvery == 0 {
			if err := checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}

// RunChaos runs a full kill–resume campaign: one uninterrupted reference
// pass, then kills kill points sampled by src (uniform over the run,
// with churn-adjacent rounds double-weighted — the rounds where resume
// is most likely to go wrong). Each kill uses a fresh random checkpoint
// cadence in [1,8], serializes the last checkpoint through the wire
// format, restores it into a brand-new network, finishes the run, and
// compares every resumed round's trace hash against the reference. The
// first divergence aborts the campaign with an error naming the round.
func RunChaos(s ChaosScenario, kills int, src *rng.Source) (*ChaosReport, error) {
	if kills <= 0 {
		return nil, fmt.Errorf("stab: chaos campaign needs kills > 0")
	}
	if src == nil {
		return nil, fmt.Errorf("stab: chaos campaign needs a random source")
	}
	ref, err := runPass(&s, chaosPass{})
	if err != nil {
		return nil, err
	}

	// Kill-round candidates: every interior round once, churn-adjacent
	// rounds (the event round and its two neighbors) once more.
	var candidates []int
	for r := 1; r < s.Rounds; r++ {
		candidates = append(candidates, r)
	}
	for _, c := range s.Churn {
		for _, r := range []int{c.AfterRound - 1, c.AfterRound, c.AfterRound + 1} {
			if r >= 1 && r < s.Rounds {
				candidates = append(candidates, r)
			}
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("stab: chaos scenario %q too short to kill", s.Name)
	}

	rep := &ChaosReport{Scenario: s.Name, MinKillRound: s.Rounds}
	for k := 0; k < kills; k++ {
		kill := candidates[src.Intn(len(candidates))]
		ckEvery := 1 + src.Intn(8)
		if kill < rep.MinKillRound {
			rep.MinKillRound = kill
		}
		if kill > rep.MaxKillRound {
			rep.MaxKillRound = kill
		}
		rep.Kills++

		var chainPath string
		if s.ChainDir != "" {
			chainPath = filepath.Join(s.ChainDir, fmt.Sprintf("chain-k%d.ckpt", k))
		}
		crash, err := runPass(&s, chaosPass{stopAfter: kill, ckEvery: ckEvery, chainPath: chainPath})
		if err != nil {
			return rep, err
		}
		if crash.lastCP == nil {
			return rep, fmt.Errorf("stab: chaos %q kill@%d ck=%d: no checkpoint taken", s.Name, kill, ckEvery)
		}
		// The crash pass must itself match the reference up to the kill:
		// a checkpointing side effect on the execution would be a bug.
		for r := 1; r <= kill; r++ {
			if crash.hashes[r] != ref.hashes[r] {
				return rep, fmt.Errorf("stab: chaos %q kill@%d ck=%d: checkpointing perturbed round %d", s.Name, kill, ckEvery, r)
			}
		}

		// Serialize/deserialize roundtrip: resume from what a crashed
		// process would actually read back. Chain mode assembles base +
		// deltas from disk; classic mode round-trips the v2 JSON wire
		// format.
		var cp *beep.Checkpoint
		if chainPath != "" {
			loaded, info, err := ckpt.Load(chainPath)
			if err != nil {
				return rep, fmt.Errorf("stab: chaos %q kill@%d: %w", s.Name, kill, err)
			}
			if info.Deltas > 0 {
				rep.DeltaResumes++
			}
			cp = loaded
		} else {
			var buf bytes.Buffer
			if err := beep.WriteCheckpoint(&buf, crash.lastCP); err != nil {
				return rep, fmt.Errorf("stab: chaos %q kill@%d: %w", s.Name, kill, err)
			}
			cp, err = beep.ReadCheckpoint(&buf)
			if err != nil {
				return rep, fmt.Errorf("stab: chaos %q kill@%d: %w", s.Name, kill, err)
			}
		}
		if cp.Round == 0 {
			rep.ZeroCheckpointResumes++
		}

		resumed, err := runPass(&s, chaosPass{resume: cp})
		if err != nil {
			return rep, err
		}
		for r := cp.Round + 1; r <= s.Rounds; r++ {
			if resumed.hashes[r] != ref.hashes[r] {
				return rep, fmt.Errorf("stab: chaos %q kill@%d resume@%d (ck=%d, engine %v): trace diverged at round %d",
					s.Name, kill, cp.Round, ckEvery, s.Engine, r)
			}
		}
		rep.Resumes++
	}
	return rep, nil
}
