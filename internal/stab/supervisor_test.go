package stab

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.GNPAvgDegree(48, 5, rng.New(21))
}

func testProto() beep.Protocol {
	return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
}

func TestSupervisorPlainRunMatchesCoreRun(t *testing.T) {
	g := testGraph(t)
	ref, err := core.Run(core.RunConfig{Graph: g, Protocol: testProto(), Seed: 9, Init: core.InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{Graph: g, Protocol: testProto(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds || res.MISSize != ref.MISSize {
		t.Fatalf("supervised run (rounds=%d mis=%d) differs from core.Run (rounds=%d mis=%d)",
			res.Rounds, res.MISSize, ref.Rounds, ref.MISSize)
	}
	for v := range res.MIS {
		if res.MIS[v] != ref.MIS[v] {
			t.Fatalf("MIS differs at vertex %d", v)
		}
	}
	if res.Attempts != 1 || res.Resumed {
		t.Fatalf("attempts=%d resumed=%v, want 1/false", res.Attempts, res.Resumed)
	}
}

func TestSupervisorBudgetEscalation(t *testing.T) {
	g := testGraph(t)
	// A 2-round budget cannot stabilize; with enough doublings it must.
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		MaxRounds: 2, MaxRetries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < 2 {
		t.Fatalf("stabilized with %d attempts on a 2-round budget; escalation never ran", res.Attempts)
	}
	// The escalated run is the SAME execution extended, so the final
	// round count matches the uninterrupted one.
	ref, err := core.Run(core.RunConfig{Graph: g, Protocol: testProto(), Seed: 9, Init: core.InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds {
		t.Fatalf("escalated run stabilized at round %d, uninterrupted at %d", res.Rounds, ref.Rounds)
	}
}

func TestSupervisorBudgetExhaustion(t *testing.T) {
	g := testGraph(t)
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		MaxRounds: 1, MaxRetries: 1, // 1 + 2 rounds: hopeless
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(); !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

func TestSupervisorDeadline(t *testing.T) {
	g := testGraph(t)
	// A fake clock that jumps 1 hour per reading forces an immediate
	// deadline trip regardless of machine speed.
	tick := time.Now()
	cfg := SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		Deadline: time.Minute,
		now: func() time.Time {
			tick = tick.Add(time.Hour)
			return tick
		},
	}
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestSupervisorContainsPanicTyped(t *testing.T) {
	g := testGraph(t)
	for _, engine := range []beep.Engine{beep.Sequential, beep.Parallel, beep.PerVertex} {
		sup, err := NewSupervisor(SupervisorConfig{
			Graph: g, Protocol: panicAtProto{round: 3}, Seed: 9, Engine: engine,
			MaxRetries: 5, // retries must NOT mask a deterministic panic
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = sup.Run()
		var rerr *beep.RunError
		if !errors.As(err, &rerr) {
			t.Fatalf("%v: got %v, want wrapped *beep.RunError", engine, err)
		}
		if rerr.Round != 3 {
			t.Fatalf("%v: panic surfaced at round %d, want 3", engine, rerr.Round)
		}
	}
}

func TestSupervisorCheckpointResume(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// Reference: uninterrupted supervised run.
	sup, err := NewSupervisor(SupervisorConfig{Graph: g, Protocol: testProto(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sup.Run()
	if err != nil {
		t.Fatal(err)
	}

	// "Crashing" run: checkpoint every 5 rounds, but give it too small
	// a budget so it dies with the checkpoint file on disk.
	crash, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		MaxRounds: 10, CheckpointEvery: 5, CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crash.Run(); !errors.Is(err, ErrBudget) {
		t.Fatalf("crash run: %v, want ErrBudget", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint persisted: %v", err)
	}

	// Resume from the file and finish.
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Round != 10 {
		t.Fatalf("checkpoint at round %d, want 10", cp.Round)
	}
	resume, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, Resume: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resume.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("result not marked resumed")
	}
	if res.Rounds != ref.Rounds || res.MISSize != ref.MISSize {
		t.Fatalf("resumed run (rounds=%d mis=%d) differs from uninterrupted (rounds=%d mis=%d)",
			res.Rounds, res.MISSize, ref.Rounds, ref.MISSize)
	}
	for v := range res.MIS {
		if res.MIS[v] != ref.MIS[v] {
			t.Fatalf("resumed MIS differs at vertex %d", v)
		}
	}
}

func TestSupervisorRejectsCorruptedCheckpointFile(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		CheckpointEvery: 3, CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload: the integrity hash must catch it.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0x01
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil {
		t.Fatal("corrupted checkpoint file accepted")
	}
}

// panicAtProto wraps the real Algorithm 1 but makes vertex 0's machine
// panic in Update of a fixed round: a protocol the legality probe can
// read (levels forward to the wrapped machine) whose execution blows up
// mid-run.
type panicAtProto struct{ round int64 }

func (p panicAtProto) Channels() int { return 1 }
func (p panicAtProto) NewMachine(v int, g graph.Topology) beep.Machine {
	inner := testProto().NewMachine(v, g)
	return &panicAtMachine{inner: inner, round: p.round, vertex: v}
}

type panicAtMachine struct {
	inner  beep.Machine
	round  int64
	vertex int
	rounds int64
}

func (m *panicAtMachine) Emit(src *rng.Source) beep.Signal { return m.inner.Emit(src) }

func (m *panicAtMachine) Update(sent, heard beep.Signal) {
	m.rounds++
	if m.vertex == 0 && m.rounds == m.round {
		panic("supervised machine fault")
	}
	m.inner.Update(sent, heard)
}

func (m *panicAtMachine) Randomize(src *rng.Source) { m.inner.Randomize(src) }

// Leveled forwarding so core.State can probe the wrapped machine.
func (m *panicAtMachine) Level() int     { return m.inner.(core.Leveled).Level() }
func (m *panicAtMachine) Cap() int       { return m.inner.(core.Leveled).Cap() }
func (m *panicAtMachine) SetLevel(l int) { m.inner.(core.Leveled).SetLevel(l) }

func TestSupervisorCancelBeforeStart(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("operator abort"))
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		Ctx: ctx, CheckpointEvery: 5, CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled-before-start run: %v, want ErrCanceled", err)
	}

	// Cancel-on-start still checkpoints the round-zero state; resuming
	// from it reproduces the uninterrupted execution exactly.
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("no resumable checkpoint after cancel-before-start: %v", err)
	}
	if cp.Round != 0 {
		t.Fatalf("cancel-before-start checkpoint at round %d, want 0", cp.Round)
	}
	refSup, err := NewSupervisor(SupervisorConfig{Graph: g, Protocol: testProto(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refSup.Run()
	if err != nil {
		t.Fatal(err)
	}
	resume, err := NewSupervisor(SupervisorConfig{Graph: g, Protocol: testProto(), Seed: 9, Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resume.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds || res.MISSize != ref.MISSize {
		t.Fatalf("resumed-from-round-0 run (rounds=%d mis=%d) differs from uninterrupted (rounds=%d mis=%d)",
			res.Rounds, res.MISSize, ref.Rounds, ref.MISSize)
	}
}

func TestSupervisorCancelMidRun(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ctx, cancel := context.WithCancelCause(context.Background())
	const cancelAt = 7
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		Ctx: ctx, CheckpointPath: path,
		Options: []beep.Option{beep.WithObserver(func(round int, _, _ []beep.Signal) {
			if round == cancelAt {
				cancel(errors.New("mid-run cancel"))
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sup.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run cancel: %v, want ErrCanceled", err)
	}
	if want := "mid-run cancel"; !strings.Contains(err.Error(), want) {
		t.Fatalf("cancel error %q does not carry the cause %q", err, want)
	}

	// Checkpoint-on-cancel captured the state at the cancellation
	// point; resuming completes with the reference outcome.
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("no checkpoint after mid-run cancel: %v", err)
	}
	if cp.Round != cancelAt {
		t.Fatalf("cancel checkpoint at round %d, want %d", cp.Round, cancelAt)
	}
	refSup, err := NewSupervisor(SupervisorConfig{Graph: g, Protocol: testProto(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refSup.Run()
	if err != nil {
		t.Fatal(err)
	}
	resume, err := NewSupervisor(SupervisorConfig{Graph: g, Protocol: testProto(), Seed: 9, Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resume.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds || res.MISSize != ref.MISSize {
		t.Fatalf("resumed-after-cancel run (rounds=%d mis=%d) differs from uninterrupted (rounds=%d mis=%d)",
			res.Rounds, res.MISSize, ref.Rounds, ref.MISSize)
	}
}

func TestSupervisorCancelDuringRetry(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancelCause(context.Background())
	// A 3-round budget forces escalation; canceling at round 8 lands
	// inside a retry attempt, which must still honor the stop path.
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		MaxRounds: 3, MaxRetries: 10, Ctx: ctx,
		Options: []beep.Option{beep.WithObserver(func(round int, _, _ []beep.Signal) {
			if round == 8 {
				cancel(errors.New("cancel during retry"))
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sup.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel during retry: %v, want ErrCanceled", err)
	}
	if !strings.Contains(err.Error(), "round 8") {
		t.Fatalf("cancel error %q does not name the round", err)
	}
}

func TestSupervisorFixedRounds(t *testing.T) {
	g := testGraph(t)
	const rounds = 25
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, FixedRounds: rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != rounds {
		t.Fatalf("fixed run stopped at round %d, want %d", res.Rounds, rounds)
	}

	// Long enough to stabilize: the fixed run reports legality and the
	// same MIS as the stabilization run.
	ref, err := core.Run(core.RunConfig{Graph: g, Protocol: testProto(), Seed: 9, Init: core.InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, FixedRounds: ref.Rounds + 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !lres.Stabilized || lres.MISSize != ref.MISSize {
		t.Fatalf("long fixed run stabilized=%v mis=%d, want true/%d", lres.Stabilized, lres.MISSize, ref.MISSize)
	}

	// A resumed execution already past the target completes
	// immediately without stepping.
	net := mustNetwork(t, g, 9)
	defer net.Close()
	net.RandomizeAll()
	for i := 0; i < rounds+5; i++ {
		net.Step()
	}
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	past, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, FixedRounds: rounds, Resume: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := past.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pres.Rounds != rounds+5 || !pres.Resumed {
		t.Fatalf("past-target resume rounds=%d resumed=%v, want %d/true", pres.Rounds, pres.Resumed, rounds+5)
	}

	// FixedRounds is exclusive with the stabilization budget knobs.
	if _, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, FixedRounds: 5, MaxRounds: 10,
	}); err == nil {
		t.Fatal("FixedRounds+MaxRounds accepted")
	}
}

func mustNetwork(t *testing.T, g *graph.Graph, seed uint64) *beep.Network {
	t.Helper()
	net, err := beep.NewNetwork(g, testProto(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRetryBackoffSchedule pins the capped-exponential delay sequence:
// base, 2·base, 4·base, … clamped at the cap, one sleep before every
// escalated attempt, none before the first.
func TestRetryBackoffSchedule(t *testing.T) {
	base, cap := 100*time.Millisecond, 250*time.Millisecond
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		250 * time.Millisecond, 250 * time.Millisecond, 250 * time.Millisecond,
	}
	for i, w := range want {
		if got := retryBackoffDelay(base, cap, i); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", i, got, w)
		}
	}

	// End to end: a 1-round budget forces escalations; the injected
	// sleep hook must record exactly the pinned schedule until the run
	// stabilizes, and the execution must still match the uninterrupted
	// reference (backoff delays retries, it must not perturb them).
	g := testGraph(t)
	var slept []time.Duration
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9,
		MaxRounds: 1, MaxRetries: 20,
		RetryBackoff: base, MaxRetryBackoff: cap,
		sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(slept) != res.Attempts-1 {
		t.Fatalf("%d sleeps for %d attempts, want one per escalation", len(slept), res.Attempts)
	}
	if len(slept) < 3 {
		t.Fatalf("only %d escalations; the 1-round budget should force several", len(slept))
	}
	for i, d := range slept {
		if w := retryBackoffDelay(base, cap, i); d != w {
			t.Fatalf("escalation %d slept %v, want %v", i, d, w)
		}
	}
	ref, err := core.Run(core.RunConfig{Graph: g, Protocol: testProto(), Seed: 9, Init: core.InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds || res.MISSize != ref.MISSize {
		t.Fatalf("backoff perturbed the execution: rounds=%d mis=%d, want %d/%d",
			res.Rounds, res.MISSize, ref.Rounds, ref.MISSize)
	}
}

// TestRetryBackoffValidation pins the config rejections.
func TestRetryBackoffValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), RetryBackoff: -time.Second,
	}); err == nil {
		t.Fatal("negative RetryBackoff accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), MaxRetryBackoff: -time.Second,
	}); err == nil {
		t.Fatal("negative MaxRetryBackoff accepted")
	}
}

// TestSupervisorChainCheckpoints drives the file-backed base + delta
// chain end to end through the supervisor: the chain file must
// reproduce the in-memory tip bit-exactly, a stabilized resumed run
// must checkpoint via deltas (not fresh bases), and the chain-assembled
// state must equal an uninterrupted in-memory run's.
func TestSupervisorChainCheckpoints(t *testing.T) {
	g := graph.GNPAvgDegree(300, 6, rng.New(4))
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	var kinds []string
	obs := func(kind string, bytes int, d time.Duration) {
		kinds = append(kinds, kind)
		if kind != "full" && bytes <= 0 {
			t.Errorf("%s checkpoint reported %d bytes written", kind, bytes)
		}
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, Engine: beep.Flat,
		CheckpointEvery: 1, CheckpointPath: path, CheckpointObserver: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints == 0 || res.LastCheckpoint == nil {
		t.Fatal("no checkpoints taken")
	}
	if len(kinds) != res.Checkpoints || kinds[0] != "base" {
		t.Fatalf("observer saw %v for %d checkpoints", kinds, res.Checkpoints)
	}
	if err := res.LastCheckpoint.Validate(); err != nil {
		t.Fatalf("LastCheckpoint not sealed at finish: %v", err)
	}
	// The chain on disk must assemble to the exact in-memory tip.
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Hash != res.LastCheckpoint.Hash || cp.Round != res.Rounds {
		t.Fatalf("chain file (round %d hash %#x) != in-memory tip (round %d hash %#x)",
			cp.Round, cp.Hash, res.Rounds, res.LastCheckpoint.Hash)
	}

	// Resume the stabilized execution for 40 fixed rounds: after the
	// forced post-restore base, the quiescent rounds must checkpoint as
	// deltas.
	kinds = nil
	path2 := filepath.Join(dir, "resumed.ckpt")
	target := res.Rounds + 40
	sup2, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, Engine: beep.Flat,
		Resume: cp, FixedRounds: target,
		CheckpointEvery: 1, CheckpointPath: path2, CheckpointObserver: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sup2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != target || !res2.Resumed {
		t.Fatalf("resumed run ended at round %d (resumed=%v), want %d", res2.Rounds, res2.Resumed, target)
	}
	if kinds[0] != "base" {
		t.Fatalf("post-restore checkpoint kind %q, want base", kinds[0])
	}
	deltas := 0
	for _, k := range kinds[1:] {
		if k == "delta" {
			deltas++
		}
	}
	if deltas == 0 {
		t.Fatalf("stabilized resumed run wrote no delta checkpoints: %v", kinds)
	}
	if err := res2.LastCheckpoint.Validate(); err != nil {
		t.Fatalf("delta-patched tip not resealed: %v", err)
	}
	cp2, err := ReadCheckpointFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Hash != res2.LastCheckpoint.Hash {
		t.Fatalf("assembled chain hash %#x != in-memory tip %#x", cp2.Hash, res2.LastCheckpoint.Hash)
	}

	// Control: the same resumed run with in-memory (file-less) full
	// checkpoints must land on the identical state.
	kinds = nil
	sup3, err := NewSupervisor(SupervisorConfig{
		Graph: g, Protocol: testProto(), Seed: 9, Engine: beep.Flat,
		Resume: cp, FixedRounds: target,
		CheckpointEvery: 1, CheckpointObserver: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := sup3.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		if k != "full" {
			t.Fatalf("file-less run observed kind %q", k)
		}
	}
	if res3.LastCheckpoint.Hash != cp2.Hash {
		t.Fatalf("chain-assembled state %#x != uninterrupted in-memory state %#x",
			cp2.Hash, res3.LastCheckpoint.Hash)
	}
}
