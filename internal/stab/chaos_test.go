package stab

import (
	"fmt"
	"testing"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// chaosScenarios builds the three fault families of the kill–resume
// acceptance matrix: noisy+sleepy, adversarial, and churning (the churn
// one also carries an adversary so policy remapping through Rewire is
// exercised on the resume path).
func chaosScenarios(t *testing.T) []ChaosScenario {
	t.Helper()
	noise := ChaosScenario{
		Name:     "noise",
		Graph:    graph.GNPAvgDegree(32, 4, rng.New(31)),
		Protocol: testProto(),
		Seed:     101,
		Noise:    beep.Noise{PLoss: 0.05, PFalse: 0.02},
		Sleep:    beep.Sleep{P: 0.02},
		Rounds:   60,
	}
	adv := ChaosScenario{
		Name:        "adversaries",
		Graph:       graph.GNPAvgDegree(32, 4, rng.New(32)),
		Protocol:    testProto(),
		Seed:        102,
		AdvPolicy:   beep.AdvBabbler,
		AdvVertices: []int{1, 5, 9},
		Rounds:      60,
	}
	churn := ChaosScenario{
		Name:        "churn",
		Graph:       graph.Cycle(20),
		Protocol:    testProto(),
		Seed:        103,
		AdvPolicy:   beep.AdvBabbler,
		AdvVertices: []int{2},
		Rounds:      60,
		Churn: []ChaosChurn{
			{AfterRound: 15, Event: graph.ChurnEvent{Label: "grow", Edits: []graph.Edit{
				{Kind: graph.EditDelEdge, U: 0, V: 1},
				{Kind: graph.EditAddVertex},
				{Kind: graph.EditAddEdge, U: 20, V: 0},
				{Kind: graph.EditAddEdge, U: 20, V: 1},
			}}},
			{AfterRound: 30, Event: graph.ChurnEvent{Label: "crash", Edits: []graph.Edit{
				{Kind: graph.EditDelVertex, U: 5},
			}}},
			{AfterRound: 45, Event: graph.ChurnEvent{Label: "join", Edits: []graph.Edit{
				{Kind: graph.EditAddVertex},
				{Kind: graph.EditAddEdge, U: 20, V: 2},
				{Kind: graph.EditAddEdge, U: 20, V: 7},
			}}},
		},
	}
	// quiet is the only fault-free scenario: with no noise, sleep or
	// adversaries the flat engines take the sparse delta path between the
	// rewires, so kill–resume here certifies the activity masks and the
	// delta-delivery baselines across Restore (which must invalidate them
	// wholesale) rather than just the dense fallback.
	quiet := ChaosScenario{
		Name:     "quiet-churn",
		Graph:    graph.GNPAvgDegree(32, 4, rng.New(34)),
		Protocol: testProto(),
		Seed:     105,
		Rounds:   60,
		Churn: []ChaosChurn{
			{AfterRound: 20, Event: graph.ChurnEvent{Label: "crash", Edits: []graph.Edit{
				{Kind: graph.EditDelVertex, U: 3},
			}}},
			{AfterRound: 40, Event: graph.ChurnEvent{Label: "join", Edits: []graph.Edit{
				{Kind: graph.EditAddVertex},
				{Kind: graph.EditAddEdge, U: 31, V: 0},
				{Kind: graph.EditAddEdge, U: 31, V: 8},
			}}},
		},
	}
	return []ChaosScenario{noise, adv, churn, quiet}
}

// TestChaosKillResume is the acceptance gate of the crash-safety work:
// ≥ 200 randomized kill points across {noise, adversaries, churn} ×
// {sequential, parallel, per-vertex, flat, flatparallel} must all
// resume from their last auto-checkpoint with bit-exact trace
// equivalence against the uninterrupted execution. Including the flat
// engines here certifies the vectorized kernels (and their sharded
// variant's stripe state) against checkpoint v2 and the
// quiescence-elision fast path under kill/resume.
func TestChaosKillResume(t *testing.T) {
	const killsPerCombo = 23
	engines := []struct {
		name   string
		engine beep.Engine
		sparse beep.SparseMode
	}{
		{"sequential", beep.Sequential, beep.SparseAuto},
		{"parallel", beep.Parallel, beep.SparseAuto},
		{"pervertex", beep.PerVertex, beep.SparseAuto},
		{"flat", beep.Flat, beep.SparseAuto},
		{"flatparallel", beep.FlatParallel, beep.SparseAuto},
		// Forced-sparse combos: the delta path (and its dense fallback on
		// faulty rounds) must survive kill–resume bit-exactly too.
		{"flat-sparse-on", beep.Flat, beep.SparseOn},
		{"flatparallel-sparse-on", beep.FlatParallel, beep.SparseOn},
	}
	src := rng.New(4242)
	total, combo := 0, 0
	for _, base := range chaosScenarios(t) {
		for _, e := range engines {
			combo++
			s := base
			s.Engine = e.engine
			s.Sparse = e.sparse
			s.Name = fmt.Sprintf("%s/%s", base.Name, e.name)
			rep, err := RunChaos(s, killsPerCombo, src.Split(uint64(combo)))
			if err != nil {
				t.Fatalf("%s: %v (after %d/%d kills)", s.Name, err, rep.Resumes, rep.Kills)
			}
			if rep.Resumes != rep.Kills {
				t.Fatalf("%s: %d/%d kills resumed bit-exact", s.Name, rep.Resumes, rep.Kills)
			}
			if rep.MinKillRound < 1 || rep.MaxKillRound >= base.Rounds {
				t.Fatalf("%s: kill rounds [%d,%d] out of range", s.Name, rep.MinKillRound, rep.MaxKillRound)
			}
			total += rep.Kills
		}
	}
	if total < 200 {
		t.Fatalf("only %d kill points exercised, want >= 200", total)
	}
}

// TestChaosDetectsForgottenAdversaries is a self-test of the harness:
// resuming an adversarial execution into a network whose checkpoint has
// the adversary table stripped must NOT pass the bit-exact comparison —
// otherwise the 200-kill campaign proves nothing.
func TestChaosDetectsForgottenAdversaries(t *testing.T) {
	s := ChaosScenario{
		Name:        "self-test",
		Graph:       graph.GNPAvgDegree(24, 4, rng.New(33)),
		Protocol:    testProto(),
		Seed:        104,
		AdvPolicy:   beep.AdvBabbler,
		AdvVertices: []int{0, 3},
		Rounds:      40,
	}
	ref, err := runPass(&s, chaosPass{})
	if err != nil {
		t.Fatal(err)
	}
	crash, err := runPass(&s, chaosPass{stopAfter: 20, ckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	cp := crash.lastCP
	if cp == nil || cp.Round != 20 {
		t.Fatalf("no checkpoint at round 20: %+v", cp)
	}
	// Strip the adversaries and re-seal so only the forgotten-state
	// effect (not the integrity hash) is under test.
	cp.Adversaries = nil
	cp.Seal()
	resumed, err := runPass(&s, chaosPass{resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for r := cp.Round + 1; r <= s.Rounds; r++ {
		if resumed.hashes[r] != ref.hashes[r] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("stripping adversary state from the checkpoint went unnoticed; the harness is blind")
	}
}

// TestChaosChainKillResume re-runs the kill–resume matrix with every
// crash pass's checkpoints persisted as an on-disk v3 base + delta
// chain and every resume assembled by ckpt.Load — the incremental
// checkpoint format under the same bit-exactness gate as the classic
// JSON roundtrip. The quiet scenario must produce at least some resumes
// that actually replayed delta links.
func TestChaosChainKillResume(t *testing.T) {
	const killsPerCombo = 12
	engines := []struct {
		name   string
		engine beep.Engine
		sparse beep.SparseMode
	}{
		{"flat", beep.Flat, beep.SparseAuto},
		{"flatparallel", beep.FlatParallel, beep.SparseAuto},
		{"flat-sparse-on", beep.Flat, beep.SparseOn},
		{"sequential", beep.Sequential, beep.SparseAuto},
	}
	src := rng.New(7117)
	combo := 0
	deltaResumes := 0
	for _, base := range chaosScenarios(t) {
		for _, e := range engines {
			combo++
			s := base
			s.Engine = e.engine
			s.Sparse = e.sparse
			s.Name = fmt.Sprintf("%s/%s/chain", base.Name, e.name)
			s.ChainDir = t.TempDir()
			rep, err := RunChaos(s, killsPerCombo, src.Split(uint64(combo)))
			if err != nil {
				t.Fatalf("%s: %v (after %d/%d kills)", s.Name, err, rep.Resumes, rep.Kills)
			}
			if rep.Resumes != rep.Kills {
				t.Fatalf("%s: %d/%d kills resumed bit-exact", s.Name, rep.Resumes, rep.Kills)
			}
			deltaResumes += rep.DeltaResumes
		}
	}
	if deltaResumes == 0 {
		t.Fatal("no resume ever replayed a delta link; the chain matrix only exercised bases")
	}
}
