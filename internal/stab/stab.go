// Package stab is the self-stabilization harness: it implements the
// paper's fault model (Section 1.1) on top of the beeping simulator —
// transient faults corrupt per-vertex RAM between rounds, after which
// execution is fault-free — and measures recovery.
//
// It provides a catalog of fault injectors (uniform corruption, targeted
// corruption of MIS members, adversarial "everyone claims membership"
// flips), a recovery experiment that stabilizes, injects, and
// re-stabilizes repeatedly, and a closure checker asserting that legal
// configurations persist while no faults occur.
package stab

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ErrNoRecovery reports that the network failed to re-stabilize after a
// fault within the round budget.
var ErrNoRecovery = errors.New("stab: no recovery within the round budget")

// Fault mutates the states of some vertices between rounds.
type Fault interface {
	// Name labels the fault in experiment tables.
	Name() string
	// Apply injects the fault, drawing any randomness from src.
	Apply(net *beep.Network, src *rng.Source) error
}

// RandomFault randomizes the full state of K uniformly chosen vertices:
// the standard transient-fault model.
type RandomFault struct{ K int }

// Name labels the fault.
func (f RandomFault) Name() string { return fmt.Sprintf("random-%d", f.K) }

// Apply corrupts K distinct uniformly random vertices.
func (f RandomFault) Apply(net *beep.Network, src *rng.Source) error {
	return net.Corrupt(pickDistinct(net.N(), f.K, src))
}

// MISFault randomizes the state of up to K current MIS members — the
// most disruptive natural target, since every member anchors the
// stability of its whole neighborhood.
type MISFault struct{ K int }

// Name labels the fault.
func (f MISFault) Name() string { return fmt.Sprintf("mis-%d", f.K) }

// Apply corrupts up to K uniformly chosen current MIS members.
func (f MISFault) Apply(net *beep.Network, src *rng.Source) error {
	st, err := core.Snapshot(net)
	if err != nil {
		return fmt.Errorf("stab: %w", err)
	}
	var members []int
	for v := 0; v < net.N(); v++ {
		if st.InMIS(v) {
			members = append(members, v)
		}
	}
	if len(members) == 0 {
		return nil
	}
	src.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	k := f.K
	if k > len(members) {
		k = len(members)
	}
	return net.Corrupt(members[:k])
}

// ClaimAllFault sets K uniformly chosen vertices to the "I am in the
// MIS" extreme of their state space (-ℓmax for Algorithm 1, 0 for
// Algorithm 2), manufacturing the maximal mutual inconsistency.
type ClaimAllFault struct{ K int }

// Name labels the fault.
func (f ClaimAllFault) Name() string { return fmt.Sprintf("claim-%d", f.K) }

// Apply flips K distinct vertices to claimed membership.
func (f ClaimAllFault) Apply(net *beep.Network, src *rng.Source) error {
	for _, v := range pickDistinct(net.N(), f.K, src) {
		m, ok := net.Machine(v).(core.Leveled)
		if !ok {
			return fmt.Errorf("stab: machine %T has no levels", net.Machine(v))
		}
		m.SetLevel(-m.Cap())
	}
	return nil
}

// pickBuf pools the index buffers behind pickDistinct so repeated fault
// injections (every Period rounds in an availability storm) allocate
// only the k-sized result, not an n-sized permutation per call.
var pickBuf = sync.Pool{New: func() any { return new([]int) }}

// pickDistinct returns min(k, n) distinct vertices chosen uniformly, by
// a partial Fisher–Yates shuffle: k draws from the source instead of the
// n-1 a full permutation costs, over a pooled buffer. Negative k is
// rejected explicitly (it would previously have sliced a permutation it
// had already paid for).
func pickDistinct(n, k int, src *rng.Source) []int {
	if k < 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return nil
	}
	bufp := pickBuf.Get().(*[]int)
	buf := *bufp
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + src.Intn(n-i)
		buf[i], buf[j] = buf[j], buf[i]
		out[i] = buf[i]
	}
	*bufp = buf
	pickBuf.Put(bufp)
	return out
}

// RecoveryConfig describes a fault-recovery experiment on one instance.
type RecoveryConfig struct {
	Graph    *graph.Graph
	Protocol beep.Protocol
	Seed     uint64
	// Fault is injected after each stabilization.
	Fault Fault
	// Repeats is the number of inject-and-recover cycles (default 1).
	Repeats int
	// MaxRounds bounds each stabilization phase; 0 uses the core
	// default budget.
	MaxRounds int
}

// RecoveryResult reports a fault-recovery experiment.
type RecoveryResult struct {
	// InitialRounds is the stabilization time from the arbitrary
	// (randomized) initial configuration.
	InitialRounds int
	// RecoveryRounds has one entry per inject-and-recover cycle: the
	// rounds from fault injection back to a legal configuration.
	RecoveryRounds []int
	// Changed counts, per cycle, how many vertices' MIS membership
	// differs between the pre-fault and post-recovery configurations
	// (a locality-of-repair measure).
	Changed []int
}

// MeasureRecovery runs the experiment: stabilize from a random
// configuration, then Repeats times inject the fault and measure rounds
// to re-stabilization, verifying the MIS each time.
func MeasureRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	if cfg.Graph == nil || cfg.Protocol == nil {
		return nil, fmt.Errorf("stab: nil graph or protocol")
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultBudget(cfg.Graph.N())
	}
	net, err := beep.NewNetwork(cfg.Graph, cfg.Protocol, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("stab: %w", err)
	}
	defer net.Close()
	net.RandomizeAll()

	faultSrc := rng.New(cfg.Seed ^ 0x57ab0f4a17)
	res := &RecoveryResult{}

	rounds, err := stabilizeWithin(net, maxRounds)
	if err != nil {
		return nil, err
	}
	res.InitialRounds = rounds

	for cycle := 0; cycle < repeats; cycle++ {
		before, err := core.Snapshot(net)
		if err != nil {
			return nil, err
		}
		beforeMIS := before.MISMask()
		if cfg.Fault != nil {
			if err := cfg.Fault.Apply(net, faultSrc); err != nil {
				return nil, err
			}
		}
		rounds, err := stabilizeWithin(net, maxRounds)
		if err != nil {
			return nil, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		after, err := core.Snapshot(net)
		if err != nil {
			return nil, err
		}
		afterMIS := after.MISMask()
		changed := 0
		for v := range afterMIS {
			if afterMIS[v] != beforeMIS[v] {
				changed++
			}
		}
		res.RecoveryRounds = append(res.RecoveryRounds, rounds)
		res.Changed = append(res.Changed, changed)
	}
	return res, nil
}

// excludeAdversaries primes a State probe with the network's adversary
// mask, so legality is asserted on the correct induced subgraph (the
// only set the self-stabilization guarantee covers). It is a no-op for
// fully cooperating networks.
func excludeAdversaries(probe *core.State, net *beep.Network) {
	if net.AdversaryCount() == 0 {
		return
	}
	mask := make([]bool, net.N())
	net.FillAdversaryMask(mask)
	probe.SetExcluded(mask)
}

// stabilizeWithin steps net to a legal configuration, verifying the MIS.
// The stop check reuses one State probe across rounds, so the per-round
// cost is the incremental detector's, not a fresh snapshot's. Installed
// adversaries are masked out of the legality predicate.
func stabilizeWithin(net *beep.Network, maxRounds int) (int, error) {
	var probe core.State
	excludeAdversaries(&probe, net)
	stop := func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}
	rounds, ok := net.Run(maxRounds, stop)
	if !ok {
		return rounds, fmt.Errorf("%w: %d rounds on %s", ErrNoRecovery, rounds, net.Graph().Name())
	}
	if err := probe.Refresh(net); err != nil {
		return rounds, err
	}
	if err := probe.VerifyMIS(); err != nil {
		return rounds, fmt.Errorf("stab: stabilized illegally: %w", err)
	}
	return rounds, nil
}

// CheckClosure steps a stabilized network for extra rounds and returns
// an error if legality is ever lost or the MIS changes: the closure half
// of self-stabilization. Legality is asserted on the correct induced
// subgraph when adversaries are installed. Note that closure is only
// guaranteed in the fault-free regime — under listening noise a network
// can legitimately lose legality, which this check will report.
func CheckClosure(net *beep.Network, extraRounds int) error {
	st, err := core.Snapshot(net)
	if err != nil {
		return err
	}
	excludeAdversaries(st, net)
	if !st.Stabilized() {
		return fmt.Errorf("stab: closure check requires a stabilized network")
	}
	ref := st.MISMask()
	mis := make([]bool, len(ref))
	for r := 1; r <= extraRounds; r++ {
		net.Step()
		if err := st.Refresh(net); err != nil {
			return err
		}
		if !st.Stabilized() {
			return fmt.Errorf("stab: legality lost %d rounds after stabilization", r)
		}
		st.FillMISMask(mis)
		for v := range mis {
			if mis[v] != ref[v] {
				return fmt.Errorf("stab: MIS membership of vertex %d changed %d rounds after stabilization", v, r)
			}
		}
	}
	return nil
}

// defaultBudget mirrors the core default round budget.
func defaultBudget(n int) int {
	log := 0
	for x := n; x > 1; x >>= 1 {
		log++
	}
	return 1000*(log+1) + 1000
}
