package stab

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMeasureAvailabilityBasics(t *testing.T) {
	g := graph.GNPAvgDegree(80, 6, rng.New(3))
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     5,
		Fault:    RandomFault{K: 4},
		Period:   100,
		Window:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 10 {
		t.Fatalf("injections %d, want 10", res.Injections)
	}
	if res.Availability <= 0 || res.Availability > 1 {
		t.Fatalf("availability %v out of (0,1]", res.Availability)
	}
	// With sparse small faults and a long period, the system should be
	// legal most of the time.
	if res.Availability < 0.5 {
		t.Fatalf("availability %v suspiciously low", res.Availability)
	}
	if res.MeanRecovery <= 0 {
		t.Fatalf("mean recovery %v", res.MeanRecovery)
	}
	if res.LongestOutage <= 0 || res.LongestOutage >= 1000 {
		t.Fatalf("longest outage %d", res.LongestOutage)
	}
}

func TestMeasureAvailabilityHighPressure(t *testing.T) {
	// Faults every other round: availability should be visibly lower
	// than with a relaxed period on the same instance.
	g := graph.Cycle(60)
	relaxed, err := MeasureAvailability(AvailabilityConfig{
		Graph: g, Protocol: alg1(), Seed: 7,
		Fault: RandomFault{K: 6}, Period: 200, Window: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	pressured, err := MeasureAvailability(AvailabilityConfig{
		Graph: g, Protocol: alg1(), Seed: 7,
		Fault: RandomFault{K: 6}, Period: 5, Window: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pressured.Availability >= relaxed.Availability {
		t.Fatalf("pressure did not reduce availability: %v vs %v",
			pressured.Availability, relaxed.Availability)
	}
}

func TestMeasureAvailabilityValidation(t *testing.T) {
	if _, err := MeasureAvailability(AvailabilityConfig{}); err == nil {
		t.Fatal("nil config accepted")
	}
	g := graph.Path(5)
	if _, err := MeasureAvailability(AvailabilityConfig{Graph: g, Protocol: alg1(), Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestMeasureAvailabilityNoFaultIsPerfect(t *testing.T) {
	g := graph.Cycle(40)
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph: g, Protocol: alg1(), Seed: 9,
		Fault: nil, Period: 50, Window: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 {
		t.Fatalf("fault-free availability %v, want 1 (closure)", res.Availability)
	}
	if res.LongestOutage != 0 || res.Injections != 0 {
		t.Fatalf("fault-free outage %d injections %d", res.LongestOutage, res.Injections)
	}
}

func TestMeasureAvailabilityWithAlg2(t *testing.T) {
	g := graph.GNPAvgDegree(60, 6, rng.New(11))
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph:    g,
		Protocol: core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop)),
		Seed:     13,
		Fault:    MISFault{K: 2},
		Period:   80,
		Window:   800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability <= 0 {
		t.Fatalf("availability %v", res.Availability)
	}
}
