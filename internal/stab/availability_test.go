package stab

import (
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMeasureAvailabilityBasics(t *testing.T) {
	g := graph.GNPAvgDegree(80, 6, rng.New(3))
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     5,
		Fault:    RandomFault{K: 4},
		Period:   100,
		Window:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 10 {
		t.Fatalf("injections %d, want 10", res.Injections)
	}
	if res.Availability <= 0 || res.Availability > 1 {
		t.Fatalf("availability %v out of (0,1]", res.Availability)
	}
	// With sparse small faults and a long period, the system should be
	// legal most of the time.
	if res.Availability < 0.5 {
		t.Fatalf("availability %v suspiciously low", res.Availability)
	}
	if res.MeanRecovery <= 0 {
		t.Fatalf("mean recovery %v", res.MeanRecovery)
	}
	if res.LongestOutage <= 0 || res.LongestOutage >= 1000 {
		t.Fatalf("longest outage %d", res.LongestOutage)
	}
}

func TestMeasureAvailabilityHighPressure(t *testing.T) {
	// Faults every other round: availability should be visibly lower
	// than with a relaxed period on the same instance.
	g := graph.Cycle(60)
	relaxed, err := MeasureAvailability(AvailabilityConfig{
		Graph: g, Protocol: alg1(), Seed: 7,
		Fault: RandomFault{K: 6}, Period: 200, Window: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	pressured, err := MeasureAvailability(AvailabilityConfig{
		Graph: g, Protocol: alg1(), Seed: 7,
		Fault: RandomFault{K: 6}, Period: 5, Window: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pressured.Availability >= relaxed.Availability {
		t.Fatalf("pressure did not reduce availability: %v vs %v",
			pressured.Availability, relaxed.Availability)
	}
}

func TestMeasureAvailabilityValidation(t *testing.T) {
	if _, err := MeasureAvailability(AvailabilityConfig{}); err == nil {
		t.Fatal("nil config accepted")
	}
	g := graph.Path(5)
	if _, err := MeasureAvailability(AvailabilityConfig{Graph: g, Protocol: alg1(), Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestMeasureAvailabilityNoFaultIsPerfect(t *testing.T) {
	g := graph.Cycle(40)
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph: g, Protocol: alg1(), Seed: 9,
		Fault: nil, Period: 50, Window: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 {
		t.Fatalf("fault-free availability %v, want 1 (closure)", res.Availability)
	}
	if res.LongestOutage != 0 || res.Injections != 0 {
		t.Fatalf("fault-free outage %d injections %d", res.LongestOutage, res.Injections)
	}
}

// nopFault satisfies Fault without touching any state, for boundary
// accounting tests.
type nopFault struct{}

func (nopFault) Name() string                           { return "nop" }
func (nopFault) Apply(*beep.Network, *rng.Source) error { return nil }

// totalFault pins every vertex to claimed membership, guaranteeing an
// illegal configuration on any graph with at least one edge.
type totalFault struct{}

func (totalFault) Name() string { return "total" }
func (totalFault) Apply(net *beep.Network, _ *rng.Source) error {
	return ClaimAllFault{K: net.N()}.Apply(net, rng.New(1))
}

// TestMeasureAvailabilityBoundaryAccounting pins the outage bookkeeping
// at the window edges. A no-op "fault" every other round (including one
// on the final observed round) recovers in exactly one round each time:
// availability 1, zero outage, mean recovery 1.
func TestMeasureAvailabilityBoundaryAccounting(t *testing.T) {
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph: graph.Cycle(20), Protocol: alg1(), Seed: 3,
		Fault: nopFault{}, Period: 2, Window: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 3 {
		t.Fatalf("injections %d, want 3 (rounds 0, 2, 4)", res.Injections)
	}
	if res.Availability != 1 {
		t.Fatalf("availability %v, want 1 for a no-op fault", res.Availability)
	}
	if res.LongestOutage != 0 {
		t.Fatalf("longest outage %d, want 0", res.LongestOutage)
	}
	if res.MeanRecovery != 1 {
		t.Fatalf("mean recovery %v, want 1", res.MeanRecovery)
	}
}

// TestMeasureAvailabilityZeroRecoveries pins the other edge: a fault
// storm so dense the system is never legal inside the window. With zero
// completed recoveries MeanRecovery must stay 0 (not NaN), availability
// 0, and the single outage must span the whole window.
func TestMeasureAvailabilityZeroRecoveries(t *testing.T) {
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph: graph.Complete(10), Protocol: alg1(), Seed: 5,
		Fault: totalFault{}, Period: 1, Window: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 0 {
		t.Fatalf("availability %v, want 0", res.Availability)
	}
	if res.MeanRecovery != 0 {
		t.Fatalf("mean recovery %v, want 0 with no completed recoveries", res.MeanRecovery)
	}
	if res.LongestOutage != 6 {
		t.Fatalf("longest outage %d, want the whole window (6)", res.LongestOutage)
	}
	if res.Injections != 6 {
		t.Fatalf("injections %d, want 6", res.Injections)
	}
}

// TestMeasureAvailabilityUnderNoiseAndSleep combines transient state
// corruption with persistent channel faults: the storm must still run
// to completion and report sane numbers, with availability strictly
// below the fault-free ideal (false beeps alone keep knocking MIS
// members out).
func TestMeasureAvailabilityUnderNoiseAndSleep(t *testing.T) {
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph:    graph.GNPAvgDegree(40, 5, rng.New(15)),
		Protocol: alg1(),
		Seed:     17,
		Fault:    RandomFault{K: 3},
		Period:   150,
		Window:   1500,
		Noise:    beep.Noise{PLoss: 0.02, PFalse: 0.005},
		Sleep:    beep.Sleep{P: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Fatalf("noisy availability %v, want strictly inside (0,1)", res.Availability)
	}
	if res.MeanRecovery <= 0 {
		t.Fatalf("mean recovery %v", res.MeanRecovery)
	}
}

func TestMeasureAvailabilityWithAlg2(t *testing.T) {
	g := graph.GNPAvgDegree(60, 6, rng.New(11))
	res, err := MeasureAvailability(AvailabilityConfig{
		Graph:    g,
		Protocol: core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop)),
		Seed:     13,
		Fault:    MISFault{K: 2},
		Period:   80,
		Window:   800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability <= 0 {
		t.Fatalf("availability %v", res.Availability)
	}
}
