package stab

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/beep"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/graph"
)

// Supervision errors, distinguishable with errors.Is.
var (
	// ErrDeadline reports that an attempt exceeded its wall-clock
	// deadline.
	ErrDeadline = errors.New("stab: wall-clock deadline exceeded")
	// ErrBudget reports that the final attempt exhausted its round
	// budget without stabilizing.
	ErrBudget = errors.New("stab: round budget exhausted without stabilization")
	// ErrCanceled reports that the run's context was canceled between
	// rounds. When a checkpoint path is configured the execution state
	// at the cancellation point has been persisted first, so a canceled
	// run is always resumable.
	ErrCanceled = errors.New("stab: run canceled")
)

// SupervisorConfig describes a supervised run: one execution of a core
// protocol to stabilization, wrapped with the crash-safety machinery a
// long robustness campaign needs — wall-clock deadlines, round-budget
// watchdogs, contained machine panics, bounded retries with budget
// escalation, and integrity-checked auto-checkpointing.
type SupervisorConfig struct {
	Graph    *graph.Graph
	Protocol beep.Protocol
	Seed     uint64
	// Init selects the initial configuration (default InitRandom, the
	// self-stabilization regime). Ignored when Resume is set: a resumed
	// run continues from the checkpointed state.
	Init   core.InitMode
	Engine beep.Engine
	// Options are extra network options (noise, sleep, adversaries).
	Options []beep.Option

	// Ctx, when non-nil, allows cooperative cancellation: it is checked
	// between rounds (rounds are short; interrupting one would tear the
	// engine state). On cancellation the supervisor takes a final
	// checkpoint (when CheckpointPath is set) and returns ErrCanceled
	// carrying the context's cause, so callers can distinguish a user
	// cancel from, say, a shutdown drain.
	Ctx context.Context

	// FixedRounds, when > 0, runs the execution to exactly this round
	// number instead of to stabilization: the mode service jobs and
	// chaos scenarios use, where trace equivalence — not convergence —
	// is the property of interest. Mutually exclusive with MaxRounds
	// and MaxRetries; deadline, cancellation and auto-checkpointing
	// apply unchanged. A resumed execution already at or past the
	// target completes immediately.
	FixedRounds int

	// MaxRounds is the round budget of the FIRST attempt; 0 selects the
	// default budget for the graph. Attempts that exhaust it are
	// extended (not restarted) with an escalated budget — re-running
	// the same seed from the same configuration would deterministically
	// fail again, whereas more rounds can succeed.
	MaxRounds int
	// MaxRetries bounds the number of budget escalations after the
	// first attempt (default 0: one attempt).
	MaxRetries int
	// EscalateFactor multiplies the round budget (and the deadline) on
	// each retry; values < 1 (including 0) default to 2.
	EscalateFactor float64
	// RetryBackoff, when > 0, sleeps before each escalated attempt,
	// doubling per retry: backoff, 2·backoff, 4·backoff, … capped at
	// MaxRetryBackoff. On shared machines a failed attempt often means
	// contention, and hammering retries back-to-back makes it worse.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the doubling (0 defaults to 16·RetryBackoff).
	MaxRetryBackoff time.Duration
	// Deadline bounds each attempt's wall-clock time; 0 disables the
	// watchdog. The deadline is checked between rounds: rounds are
	// short, and interrupting a round would tear the engine state.
	Deadline time.Duration

	// CheckpointEvery auto-checkpoints the execution every K rounds
	// (0 disables). Checkpoints are sealed with the integrity hash and,
	// when CheckpointPath is set, persisted as a base + delta chain
	// (see internal/ckpt): full binary snapshots written atomically
	// (temp + fsync + rename), incremental dirty-word deltas appended
	// and fsynced in between, so a kill at any instant leaves a
	// restorable chain and steady-state durability costs O(dirty
	// words), not O(n).
	CheckpointEvery int
	// CheckpointPath is the file auto-checkpoints are written to (the
	// delta chain rides in the <path>.delta sidecar).
	CheckpointPath string
	// CheckpointObserver, when non-nil, is invoked after every
	// auto-checkpoint with its kind ("base" or "delta" for the
	// file-backed chain, "full" for the file-less in-memory path), the
	// bytes written to disk (0 for in-memory) and the capture + encode
	// + persist duration.
	CheckpointObserver func(kind string, bytes int, d time.Duration)

	// Resume, when non-nil, restores this checkpoint instead of
	// applying Init: the execution continues exactly where it stopped.
	Resume *beep.Checkpoint

	// now overrides the clock in tests; sleep overrides the retry
	// backoff sleep.
	now   func() time.Time
	sleep func(time.Duration)
}

// SupervisorResult reports a supervised run.
type SupervisorResult struct {
	// Rounds is the network's round counter at stabilization — for a
	// resumed run this includes the rounds executed before the
	// checkpoint, so it is comparable across interrupted and
	// uninterrupted executions.
	Rounds int
	// MIS and MISSize describe the verified stabilized set (masked to
	// the correct induced subgraph when adversaries are installed).
	MIS     []bool
	MISSize int
	// Attempts counts budget episodes (1 = no escalation was needed).
	Attempts int
	// Resumed reports whether the run started from a checkpoint.
	Resumed bool
	// Stabilized reports whether the final configuration is legal. A
	// stabilization run (FixedRounds == 0) only returns with
	// Stabilized == true; a fixed-length run reports whatever the
	// execution reached, and MIS/MISSize are populated only when it
	// happens to have stabilized.
	Stabilized bool
	// Checkpoints counts the auto-checkpoints taken.
	Checkpoints int
	// LastCheckpoint is the most recent auto-checkpoint (nil if none
	// was taken), so callers can chain supervision without re-reading
	// the file.
	LastCheckpoint *beep.Checkpoint
}

// Supervisor wraps one run with deadlines, watchdogs, panic containment
// and checkpointing. Build with NewSupervisor, execute with Run.
type Supervisor struct {
	cfg SupervisorConfig
}

// NewSupervisor validates the configuration.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Graph == nil || cfg.Protocol == nil {
		return nil, fmt.Errorf("stab: supervisor needs a graph and a protocol")
	}
	if cfg.MaxRounds < 0 || cfg.MaxRetries < 0 || cfg.CheckpointEvery < 0 || cfg.FixedRounds < 0 {
		return nil, fmt.Errorf("stab: negative supervisor budget (maxRounds=%d maxRetries=%d checkpointEvery=%d fixedRounds=%d)",
			cfg.MaxRounds, cfg.MaxRetries, cfg.CheckpointEvery, cfg.FixedRounds)
	}
	if cfg.FixedRounds > 0 && (cfg.MaxRounds > 0 || cfg.MaxRetries > 0) {
		return nil, fmt.Errorf("stab: FixedRounds is exclusive with MaxRounds/MaxRetries (fixedRounds=%d maxRounds=%d maxRetries=%d)",
			cfg.FixedRounds, cfg.MaxRounds, cfg.MaxRetries)
	}
	if cfg.Deadline < 0 {
		return nil, fmt.Errorf("stab: negative deadline %v", cfg.Deadline)
	}
	if cfg.RetryBackoff < 0 || cfg.MaxRetryBackoff < 0 {
		return nil, fmt.Errorf("stab: negative retry backoff (retryBackoff=%v maxRetryBackoff=%v)",
			cfg.RetryBackoff, cfg.MaxRetryBackoff)
	}
	if cfg.MaxRetryBackoff == 0 {
		cfg.MaxRetryBackoff = 16 * cfg.RetryBackoff
	}
	if cfg.EscalateFactor < 1 {
		cfg.EscalateFactor = 2
	}
	if cfg.Init == 0 {
		cfg.Init = core.InitRandom
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Supervisor{cfg: cfg}, nil
}

// ReadCheckpointFile loads and validates a checkpoint written by a
// supervised run (or WriteCheckpointFile): the base snapshot — v3
// binary or v2 JSON, auto-detected — plus any delta chain in the
// <path>.delta sidecar, every link hash-verified before use.
func ReadCheckpointFile(path string) (*beep.Checkpoint, error) {
	cp, _, err := ckpt.Load(path)
	if err != nil {
		return nil, fmt.Errorf("stab: read checkpoint: %w", err)
	}
	return cp, nil
}

// WriteCheckpointFile atomically persists a full checkpoint as a fresh
// chain base (v3 binary snapshot), truncating any delta sidecar so a
// stale chain can never pair with the new base.
func WriteCheckpointFile(path string, c *beep.Checkpoint) error {
	w := ckpt.NewWriter(path)
	defer w.Close()
	if _, err := w.WriteBase(c); err != nil {
		return fmt.Errorf("stab: write checkpoint: %w", err)
	}
	return nil
}

// Run executes the supervised run. The outcome is one of:
//
//   - success: the network stabilized (legality verified on the correct
//     induced subgraph) within some attempt's budget and deadline;
//   - *beep.RunError (wrapped): a machine panicked; the panic was
//     contained by the engine, the barrier survived, and the error
//     names the vertex, round and phase. Retries do not apply — the
//     same deterministic execution would panic again;
//   - ErrBudget / ErrDeadline (wrapped): every attempt, including
//     MaxRetries budget escalations, was exhausted. The last
//     auto-checkpoint (if any) has been persisted, so a later run can
//     resume instead of restarting.
func (s *Supervisor) Run() (*SupervisorResult, error) {
	cfg := s.cfg
	net, err := beep.NewNetwork(cfg.Graph, cfg.Protocol, cfg.Seed,
		append([]beep.Option{beep.WithEngine(engineOrDefault(cfg.Engine))}, cfg.Options...)...)
	if err != nil {
		return nil, fmt.Errorf("stab: %w", err)
	}
	defer net.Close()

	res := &SupervisorResult{}
	if cfg.Resume != nil {
		if err := net.Restore(cfg.Resume); err != nil {
			return nil, fmt.Errorf("stab: resume: %w", err)
		}
		res.Resumed = true
	} else if err := core.ApplyInit(net, cfg.Init); err != nil {
		return nil, fmt.Errorf("stab: %w", err)
	}

	var probe core.State
	excludeAdversaries(&probe, net)
	stabilized := func() (bool, error) {
		if err := probe.Refresh(net); err != nil {
			return false, err
		}
		return probe.Stabilized(), nil
	}

	budget := cfg.MaxRounds
	if budget <= 0 {
		budget = defaultBudget(cfg.Graph.N())
	}
	deadline := cfg.Deadline

	// The file-backed path persists a base + delta chain: a full binary
	// snapshot when the chain writer demands one (first tick, dirty-all,
	// compaction policy), an O(dirty words) delta frame otherwise. cur
	// mirrors the chain tip in memory; delta patches leave it unsealed
	// (its hash stale) and sealLast reseals it only when the result
	// escapes — resealing every tick would cost the O(n) hash pass the
	// delta path exists to avoid.
	var chain *ckpt.Writer
	if cfg.CheckpointPath != "" {
		chain = ckpt.NewWriter(cfg.CheckpointPath)
		defer chain.Close()
	}
	var cur *beep.Checkpoint
	curSealed := false
	sealLast := func() {
		if cur != nil && !curSealed {
			cur.Seal()
			curSealed = true
		}
	}
	observe := func(kind string, bytes int, d time.Duration) {
		if cfg.CheckpointObserver != nil {
			cfg.CheckpointObserver(kind, bytes, d)
		}
	}
	totalWords := (net.N() + 63) / 64

	checkpoint := func() error {
		start := cfg.now()
		if chain == nil || chain.NeedsBase(net.DirtyAll(), net.DirtyWords(), totalWords) {
			cp, err := net.Checkpoint()
			if err != nil {
				return fmt.Errorf("stab: auto-checkpoint: %w", err)
			}
			kind, nbytes := "full", 0
			if chain != nil {
				if nbytes, err = chain.WriteBase(cp); err != nil {
					return fmt.Errorf("stab: auto-checkpoint: %w", err)
				}
				kind = "base"
			}
			cur, curSealed = cp, true
			res.Checkpoints++
			res.LastCheckpoint = cp
			observe(kind, nbytes, cfg.now().Sub(start))
			return nil
		}
		d, err := net.CheckpointDelta(chain.ParentHash())
		if err != nil {
			return fmt.Errorf("stab: auto-checkpoint: %w", err)
		}
		nbytes, err := chain.AppendDelta(d)
		if err != nil {
			return fmt.Errorf("stab: auto-checkpoint: %w", err)
		}
		if err := beep.ApplyDelta(cur, d); err != nil {
			return fmt.Errorf("stab: auto-checkpoint: patch in-memory tip: %w", err)
		}
		curSealed = false
		res.Checkpoints++
		res.LastCheckpoint = cur
		observe("delta", nbytes, cfg.now().Sub(start))
		return nil
	}

	// canceled implements the cooperative stop path: between rounds, a
	// canceled context checkpoints the execution (when a path is
	// configured, so the run is resumable) and surfaces ErrCanceled with
	// the cancellation cause.
	canceled := func() error {
		if cfg.Ctx == nil || cfg.Ctx.Err() == nil {
			return nil
		}
		cause := context.Cause(cfg.Ctx)
		if cfg.CheckpointPath != "" {
			if cerr := checkpoint(); cerr != nil {
				return fmt.Errorf("%w at round %d on %s: %v (cancel checkpoint failed: %v)",
					ErrCanceled, net.Round(), net.Graph().Name(), cause, cerr)
			}
		}
		return fmt.Errorf("%w at round %d on %s: %v", ErrCanceled, net.Round(), net.Graph().Name(), cause)
	}

	finish := func() (*SupervisorResult, error) {
		sealLast()
		if err := probe.Refresh(net); err != nil {
			return nil, err
		}
		if err := probe.VerifyMIS(); err != nil {
			return nil, fmt.Errorf("stab: stabilized illegally: %w", err)
		}
		res.Rounds = net.Round()
		res.Stabilized = true
		res.MIS = probe.MISMask()
		res.MISSize = 0
		for _, in := range res.MIS {
			if in {
				res.MISSize++
			}
		}
		return res, nil
	}

	// Cancel-before-start still checkpoints the (initialized or
	// restored) round-zero state, so even a run that never stepped
	// resumes deterministically.
	if err := canceled(); err != nil {
		return nil, err
	}

	if cfg.FixedRounds > 0 {
		return s.runFixed(net, res, &probe, checkpoint, canceled, sealLast)
	}

	// A resumed or already-legal configuration costs zero rounds.
	if ok, err := stabilized(); err == nil && ok {
		res.Attempts = 1
		return finish()
	}

	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		start := cfg.now()
		for r := 0; r < budget; r++ {
			if err := canceled(); err != nil {
				return nil, err
			}
			if err := net.TryStep(); err != nil {
				var rerr *beep.RunError
				if errors.As(err, &rerr) {
					return nil, fmt.Errorf("stab: contained machine panic (attempt %d): %w", attempt+1, rerr)
				}
				return nil, fmt.Errorf("stab: %w", err)
			}
			if cfg.CheckpointEvery > 0 && net.Round()%cfg.CheckpointEvery == 0 {
				if err := checkpoint(); err != nil {
					return nil, err
				}
			}
			ok, err := stabilized()
			if err != nil {
				return nil, fmt.Errorf("stab: %w", err)
			}
			if ok {
				return finish()
			}
			if deadline > 0 && cfg.now().Sub(start) > deadline {
				if attempt >= cfg.MaxRetries {
					return nil, fmt.Errorf("%w: attempt %d ran %v (budget %v) at round %d on %s",
						ErrDeadline, attempt+1, cfg.now().Sub(start), deadline, net.Round(), net.Graph().Name())
				}
				break // escalate
			}
		}
		if attempt >= cfg.MaxRetries {
			return nil, fmt.Errorf("%w: %d attempt(s), final budget %d rounds, round %d on %s",
				ErrBudget, attempt+1, budget, net.Round(), net.Graph().Name())
		}
		// Back off before the escalated attempt (capped exponential),
		// then re-check cancellation: a cancel that landed during the
		// sleep must not start another attempt.
		if cfg.RetryBackoff > 0 {
			s.retrySleep(retryBackoffDelay(cfg.RetryBackoff, cfg.MaxRetryBackoff, attempt))
			if err := canceled(); err != nil {
				return nil, err
			}
		}
		// Escalate: extend the SAME execution with a larger budget (and
		// proportionally more wall-clock) — deterministic replay of a
		// failed attempt cannot succeed, continuation can.
		budget = int(float64(budget) * cfg.EscalateFactor)
		if budget < 1 {
			budget = 1
		}
		deadline = time.Duration(float64(deadline) * cfg.EscalateFactor)
	}
}

// runFixed executes a fixed-length run: exactly to round
// cfg.FixedRounds, with cancellation, deadline and auto-checkpointing
// but no stabilization stop and no budget escalation. The result
// reports whether the final configuration happens to be legal; MIS is
// populated only then.
func (s *Supervisor) runFixed(net *beep.Network, res *SupervisorResult, probe *core.State,
	checkpoint func() error, canceled func() error, sealLast func()) (*SupervisorResult, error) {
	cfg := s.cfg
	res.Attempts = 1
	start := cfg.now()
	for net.Round() < cfg.FixedRounds {
		if err := canceled(); err != nil {
			return nil, err
		}
		if err := net.TryStep(); err != nil {
			var rerr *beep.RunError
			if errors.As(err, &rerr) {
				return nil, fmt.Errorf("stab: contained machine panic (fixed run): %w", rerr)
			}
			return nil, fmt.Errorf("stab: %w", err)
		}
		if cfg.CheckpointEvery > 0 && net.Round()%cfg.CheckpointEvery == 0 {
			if err := checkpoint(); err != nil {
				return nil, err
			}
		}
		if cfg.Deadline > 0 && cfg.now().Sub(start) > cfg.Deadline {
			return nil, fmt.Errorf("%w: fixed run at round %d of %d on %s",
				ErrDeadline, net.Round(), cfg.FixedRounds, net.Graph().Name())
		}
	}
	sealLast()
	if err := probe.Refresh(net); err != nil {
		return nil, fmt.Errorf("stab: %w", err)
	}
	res.Rounds = net.Round()
	if probe.Stabilized() {
		if err := probe.VerifyMIS(); err != nil {
			return nil, fmt.Errorf("stab: stabilized illegally: %w", err)
		}
		res.Stabilized = true
		res.MIS = probe.MISMask()
		for _, in := range res.MIS {
			if in {
				res.MISSize++
			}
		}
	}
	return res, nil
}

// retryBackoffDelay is the capped-exponential schedule: base << attempt
// bounded by max (attempt counts completed attempts, so the first retry
// waits base).
func retryBackoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// retrySleep waits out a backoff delay, honoring the injected test hook
// and waking early on context cancellation.
func (s *Supervisor) retrySleep(d time.Duration) {
	if s.cfg.sleep != nil {
		s.cfg.sleep(d)
		return
	}
	if s.cfg.Ctx != nil {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.cfg.Ctx.Done():
		}
		return
	}
	time.Sleep(d)
}

// engineOrDefault maps the zero Engine to Sequential.
func engineOrDefault(e beep.Engine) beep.Engine {
	if e == 0 {
		return beep.Sequential
	}
	return e
}
