package stab

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func alg1() *core.Alg1 {
	return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
}

func TestFaultNames(t *testing.T) {
	if (RandomFault{K: 3}).Name() != "random-3" {
		t.Fatal("RandomFault name")
	}
	if (MISFault{K: 2}).Name() != "mis-2" {
		t.Fatal("MISFault name")
	}
	if (ClaimAllFault{K: 5}).Name() != "claim-5" {
		t.Fatal("ClaimAllFault name")
	}
}

func TestPickDistinct(t *testing.T) {
	src := rng.New(1)
	got := pickDistinct(10, 4, src)
	if len(got) != 4 {
		t.Fatalf("len %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad pick %v", got)
		}
		seen[v] = true
	}
	if len(pickDistinct(3, 10, src)) != 3 {
		t.Fatal("k > n not clamped")
	}
	if pickDistinct(5, 0, src) != nil {
		t.Fatal("k=0 should pick none")
	}
	if pickDistinct(5, -3, src) != nil {
		t.Fatal("negative k should pick none")
	}
	if pickDistinct(0, 4, src) != nil {
		t.Fatal("empty universe should pick none")
	}
	// Distribution sanity for the partial Fisher–Yates: over many draws
	// of 1-of-4, every vertex must appear (uniformity is exercised by the
	// seeded determinism of the experiments; this guards against an
	// off-by-one that pins the draw range).
	seen2 := map[int]bool{}
	for i := 0; i < 200; i++ {
		for _, v := range pickDistinct(4, 1, src) {
			seen2[v] = true
		}
	}
	if len(seen2) != 4 {
		t.Fatalf("1-of-4 draws covered only %d vertices", len(seen2))
	}
}

func TestMeasureRecoveryRandomFault(t *testing.T) {
	g := graph.GNP(60, 0.1, rng.New(9))
	res, err := MeasureRecovery(RecoveryConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     5,
		Fault:    RandomFault{K: 10},
		Repeats:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecoveryRounds) != 3 || len(res.Changed) != 3 {
		t.Fatalf("cycles: %+v", res)
	}
	for i, r := range res.RecoveryRounds {
		if r < 0 {
			t.Fatalf("cycle %d negative recovery %d", i, r)
		}
	}
}

func TestMeasureRecoveryMISFault(t *testing.T) {
	g := graph.Cycle(40)
	res, err := MeasureRecovery(RecoveryConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     7,
		Fault:    MISFault{K: 3},
		Repeats:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecoveryRounds) != 2 {
		t.Fatalf("cycles %d", len(res.RecoveryRounds))
	}
}

func TestMeasureRecoveryClaimAllFault(t *testing.T) {
	g := graph.Complete(12)
	res, err := MeasureRecovery(RecoveryConfig{
		Graph:    g,
		Protocol: alg1(),
		Seed:     11,
		Fault:    ClaimAllFault{K: 12},
		Repeats:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Claiming membership for the entire clique must take >0 rounds to
	// repair.
	for _, r := range res.RecoveryRounds {
		if r == 0 {
			t.Fatal("clique-wide claim fault repaired in zero rounds")
		}
	}
}

func TestMeasureRecoveryValidation(t *testing.T) {
	if _, err := MeasureRecovery(RecoveryConfig{}); err == nil {
		t.Fatal("nil config accepted")
	}
	// Budget too small to stabilize.
	_, err := MeasureRecovery(RecoveryConfig{
		Graph:     graph.Complete(20),
		Protocol:  alg1(),
		Seed:      1,
		Fault:     RandomFault{K: 1},
		MaxRounds: 1,
	})
	if !errors.Is(err, ErrNoRecovery) {
		t.Fatalf("err=%v want ErrNoRecovery", err)
	}
}

func TestCheckClosure(t *testing.T) {
	g := graph.Grid(5, 5)
	net, err := beep.NewNetwork(g, alg1(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	if _, err := stabilizeWithin(net, defaultBudget(g.N())); err != nil {
		t.Fatal(err)
	}
	if err := CheckClosure(net, 100); err != nil {
		t.Fatal(err)
	}
}

func TestCheckClosureRejectsUnstable(t *testing.T) {
	g := graph.Path(10)
	net, err := beep.NewNetwork(g, alg1(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	// Fresh network (everyone at cap) is not stabilized.
	if err := CheckClosure(net, 5); err == nil {
		t.Fatal("closure check on unstable network accepted")
	}
}

// TestCheckClosureUnderNoise documents that closure is a fault-free
// guarantee: under aggressive false-beep noise a stabilized network
// eventually loses legality (a false beep knocks an MIS member off its
// membership level), and CheckClosure must detect and report it.
func TestCheckClosureUnderNoise(t *testing.T) {
	g := graph.Cycle(16)
	net, err := beep.NewNetwork(g, alg1(), 19,
		beep.WithNoise(beep.Noise{PLoss: 0.1, PFalse: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	if _, err := stabilizeWithin(net, defaultBudget(g.N())); err != nil {
		t.Fatal(err)
	}
	if err := CheckClosure(net, 2000); err == nil {
		t.Fatal("closure survived 2000 rounds of 20% false-beep noise")
	}
}

// TestCheckClosureWithMuteAdversaries checks that closure holds on the
// correct induced subgraph when the excluded vertices are crashed-silent
// radios: a mute vertex is observationally identical to an absent one,
// so the fault-free closure guarantee carries over to the masked
// predicate. (Sleep, by contrast, breaks closure just like packet loss —
// a sleeping MIS member's beep goes missing and its neighbors fall off
// their caps — which TestMeasureAvailabilityUnderNoiseAndSleep covers.)
func TestCheckClosureWithMuteAdversaries(t *testing.T) {
	g := graph.GNPAvgDegree(30, 4, rng.New(23))
	net, err := beep.NewNetwork(g, alg1(), 21,
		beep.WithAdversaries(beep.AdvMute, []int{2, 11}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	if _, err := stabilizeWithin(net, defaultBudget(g.N())); err != nil {
		t.Fatal(err)
	}
	if err := CheckClosure(net, 500); err != nil {
		t.Fatalf("masked closure lost: %v", err)
	}
}

func TestClaimAllFaultRequiresLevels(t *testing.T) {
	net, err := beep.NewNetwork(graph.Path(3), noLevelProto{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := (ClaimAllFault{K: 1}).Apply(net, rng.New(1)); err == nil {
		t.Fatal("ClaimAllFault on level-less protocol accepted")
	}
}

type noLevelProto struct{}

func (noLevelProto) Channels() int { return 1 }
func (noLevelProto) NewMachine(int, graph.Topology) beep.Machine {
	return &noLevelMachine{}
}

type noLevelMachine struct{}

func (*noLevelMachine) Emit(*rng.Source) beep.Signal { return beep.Silent }
func (*noLevelMachine) Update(_, _ beep.Signal)      {}
func (*noLevelMachine) Randomize(*rng.Source)        {}

// Property: recovery always succeeds and re-verifies the MIS for random
// small instances, fault sizes and seeds (Algorithm 1 and 2).
func TestRecoveryProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8, useAlg2 bool) bool {
		n := int(nRaw%30) + 2
		k := int(kRaw)%n + 1
		g := graph.GNP(n, 0.2, rng.New(seed))
		var proto beep.Protocol
		if useAlg2 {
			proto = core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop))
		} else {
			proto = alg1()
		}
		res, err := MeasureRecovery(RecoveryConfig{
			Graph:    g,
			Protocol: proto,
			Seed:     seed,
			Fault:    RandomFault{K: k},
			Repeats:  2,
		})
		return err == nil && len(res.RecoveryRounds) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
