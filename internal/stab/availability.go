package stab

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// AvailabilityConfig describes a fault-storm experiment: faults recur
// every Period rounds for Window rounds, and availability is the
// fraction of rounds spent in a legal configuration.
type AvailabilityConfig struct {
	Graph    *graph.Graph
	Protocol beep.Protocol
	Seed     uint64
	// Fault is injected every Period rounds (after an initial
	// stabilization).
	Fault  Fault
	Period int
	// Window is the number of observed rounds (default 20·Period).
	Window int
	// WarmupBudget bounds the initial stabilization.
	WarmupBudget int
	// Noise and Sleep harshen the channel for the whole run (zero
	// values are no-ops): the storm then combines transient state
	// corruption with ongoing communication faults, the compound regime
	// a deployed system actually faces.
	Noise beep.Noise
	Sleep beep.Sleep
}

// AvailabilityResult reports a fault-storm experiment.
type AvailabilityResult struct {
	// Availability is the fraction of observed rounds in a legal
	// configuration.
	Availability float64
	// Injections is the number of faults injected during the window.
	Injections int
	// MeanRecovery is the mean number of rounds from an injection to
	// the next legal configuration (only completed recoveries count).
	MeanRecovery float64
	// LongestOutage is the longest run of consecutive illegal rounds.
	LongestOutage int
}

// MeasureAvailability runs the fault storm and reports availability.
// Unlike MeasureRecovery it does not pause for re-stabilization: faults
// arrive on schedule whether or not the system has recovered, the
// regime a deployed system actually faces.
func MeasureAvailability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if cfg.Graph == nil || cfg.Protocol == nil {
		return nil, fmt.Errorf("stab: nil graph or protocol")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("stab: fault period must be positive, got %d", cfg.Period)
	}
	window := cfg.Window
	if window <= 0 {
		window = 20 * cfg.Period
	}
	warmup := cfg.WarmupBudget
	if warmup <= 0 {
		warmup = defaultBudget(cfg.Graph.N())
	}

	net, err := beep.NewNetwork(cfg.Graph, cfg.Protocol, cfg.Seed,
		beep.WithNoise(cfg.Noise), beep.WithSleep(cfg.Sleep))
	if err != nil {
		return nil, fmt.Errorf("stab: %w", err)
	}
	defer net.Close()
	net.RandomizeAll()
	if _, err := stabilizeWithin(net, warmup); err != nil {
		return nil, err
	}

	faultSrc := rng.New(cfg.Seed ^ 0xa7a11ab111)
	res := &AvailabilityResult{}
	legalRounds := 0
	outage := 0
	pendingSince := -1 // round index of the oldest unrecovered injection
	recoverySum, recoveries := 0, 0

	var probe core.State // reused across rounds: incremental stop check
	for r := 0; r < window; r++ {
		if r%cfg.Period == 0 && cfg.Fault != nil {
			if err := cfg.Fault.Apply(net, faultSrc); err != nil {
				return nil, err
			}
			res.Injections++
			if pendingSince < 0 {
				pendingSince = r
			}
		}
		net.Step()
		if err := probe.Refresh(net); err != nil {
			return nil, err
		}
		if probe.Stabilized() {
			legalRounds++
			if outage > res.LongestOutage {
				res.LongestOutage = outage
			}
			outage = 0
			if pendingSince >= 0 {
				recoverySum += r - pendingSince + 1
				recoveries++
				pendingSince = -1
			}
		} else {
			outage++
		}
	}
	if outage > res.LongestOutage {
		res.LongestOutage = outage
	}
	res.Availability = float64(legalRounds) / float64(window)
	if recoveries > 0 {
		res.MeanRecovery = float64(recoverySum) / float64(recoveries)
	}
	return res, nil
}
