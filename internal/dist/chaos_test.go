package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// These tests pin the coordinator's failure paths: every scenario must
// end in a typed error or a bit-exact recovery within the go test
// timeout — never a hang. They run in-process; the process-level
// SIGKILL matrix lives in cmd/beepworker.

// TestDistSlowWorker runs a worker whose every reply is delayed beyond
// the initial reply window. The capped exponential ladder must widen
// past the delay and converge — with results still bit-identical to the
// golden run. Heartbeats are disabled: with every frame delayed, a
// short-window ping would misdiagnose slowness as death (that policy
// trade-off is exercised in TestDistPermanentLoss).
func TestDistSlowWorker(t *testing.T) {
	g := goldenGraph(t)
	cfg := distConfig(g, 2)
	cfg.PhaseTimeout = 20 * time.Millisecond
	cfg.MaxBackoff = 500 * time.Millisecond
	cfg.MaxAttempts = 6
	cfg.HeartbeatEvery = -1
	cfg.Spawner = SpawnerFunc(func(ctx context.Context, part int, addr, token string) error {
		wc := WorkerConfig{Addr: addr, Part: part, Token: token}
		if part == 1 {
			wc.Fault = FaultPlan{Seed: 4, Delay: 1.0, MaxDelay: 60 * time.Millisecond}
		}
		go func() { _ = RunWorker(ctx, wc) }()
		return nil
	})
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized || res.StabilizedRound != goldenStabRound || maskHash(res.MIS) != goldenMaskHash {
		t.Fatalf("slow-worker run diverged: stabilized=%v round=%d hash=%#x",
			res.Stabilized, res.StabilizedRound, maskHash(res.MIS))
	}
}

// TestDistDeadBeforeRound0 covers a worker that never comes up: the
// join wait must expire into ErrWorkerLost within JoinTimeout, not
// block the run forever.
func TestDistDeadBeforeRound0(t *testing.T) {
	g := goldenGraph(t)
	cfg := distConfig(g, 2)
	cfg.JoinTimeout = 300 * time.Millisecond
	cfg.Spawner = SpawnerFunc(func(ctx context.Context, part int, addr, token string) error {
		if part == 1 {
			return nil // launch "succeeds", nothing ever dials
		}
		go func() { _ = RunWorker(ctx, WorkerConfig{Addr: addr, Part: part, Token: token}) }()
		return nil
	})
	start := time.Now()
	_, err := Run(context.Background(), cfg)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("got %v, want ErrWorkerLost", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v to report the missing worker", elapsed)
	}
}

// killableSpawner runs in-process workers under per-spawn contexts so a
// test can kill a specific partition's current incarnation mid-run.
type killableSpawner struct {
	mu      sync.Mutex
	cancels map[int]context.CancelFunc
	spawns  map[int]int
	// failRespawn, when set, makes every spawn after the first for that
	// partition fail — modeling a worker that cannot be revived.
	failRespawn bool
}

func newKillableSpawner() *killableSpawner {
	return &killableSpawner{cancels: map[int]context.CancelFunc{}, spawns: map[int]int{}}
}

func (s *killableSpawner) Spawn(ctx context.Context, part int, addr, token string) error {
	s.mu.Lock()
	s.spawns[part]++
	if s.failRespawn && s.spawns[part] > 1 {
		s.mu.Unlock()
		return fmt.Errorf("partition %d cannot be revived", part)
	}
	wctx, cancel := context.WithCancel(ctx)
	s.cancels[part] = cancel
	s.mu.Unlock()
	go func() { _ = RunWorker(wctx, WorkerConfig{Addr: addr, Part: part, Token: token}) }()
	return nil
}

func (s *killableSpawner) kill(part int) {
	s.mu.Lock()
	cancel := s.cancels[part]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// TestDistWorkerDiesMidBarrier kills workers at several rounds mid-run.
// Each death must be detected (heartbeat or phase timeout), the worker
// respawned, everyone rewound to the last synchronized checkpoint, and
// the final execution must still be hash-for-hash the golden one.
func TestDistWorkerDiesMidBarrier(t *testing.T) {
	g := goldenGraph(t)
	spawner := newKillableSpawner()
	kills := map[int]int{5: 1, 17: 0, 30: 1} // round -> partition to kill
	cfg := distConfig(g, 2)
	cfg.Spawner = spawner
	cfg.CheckpointEvery = 4
	cfg.PhaseTimeout = 150 * time.Millisecond
	cfg.MaxAttempts = 3
	cfg.Observer = func(round int, hash uint64) {
		if p, ok := kills[round]; ok {
			delete(kills, round)
			spawner.kill(p)
		}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Respawns < 3 {
		t.Fatalf("expected ≥3 respawns (3 kills), got %d", res.Respawns)
	}
	if !res.Stabilized || res.StabilizedRound != goldenStabRound || res.MISSize != goldenMISSize || maskHash(res.MIS) != goldenMaskHash {
		t.Fatalf("post-recovery run diverged: stabilized=%v round=%d |MIS|=%d hash=%#x",
			res.Stabilized, res.StabilizedRound, res.MISSize, maskHash(res.MIS))
	}
	ranges := computeRanges(g.N(), 2)
	ref := flatReference(t, g, "alg1-known-delta", 7, ranges, res.Rounds)
	for i := range ref {
		if res.RoundHashes[i] != ref[i] {
			t.Fatalf("round %d hash %#x, reference %#x", i+1, res.RoundHashes[i], ref[i])
		}
	}
}

// TestDistPermanentLoss kills a worker whose respawn always fails: the
// run must end with ErrWorkerLost promptly instead of hanging in a
// spawn-die loop.
func TestDistPermanentLoss(t *testing.T) {
	g := goldenGraph(t)
	spawner := newKillableSpawner()
	spawner.failRespawn = true
	cfg := distConfig(g, 2)
	cfg.Spawner = spawner
	cfg.PhaseTimeout = 100 * time.Millisecond
	cfg.MaxAttempts = 2
	cfg.RoundDelay = time.Millisecond
	once := sync.Once{}
	cfg.Observer = func(round int, hash uint64) {
		if round >= 3 {
			once.Do(func() { spawner.kill(1) })
		}
	}
	_, err := Run(context.Background(), cfg)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("got %v, want ErrWorkerLost", err)
	}
}

// TestDistRespawnBudget drives a worker that dies on every round: the
// respawn budget must bound the spawn-die loop and surface
// ErrWorkerLost rather than looping forever.
func TestDistRespawnBudget(t *testing.T) {
	g := goldenGraph(t)
	spawner := newKillableSpawner()
	cfg := distConfig(g, 2)
	cfg.Spawner = spawner
	cfg.PhaseTimeout = 100 * time.Millisecond
	cfg.MaxAttempts = 2
	cfg.MaxRespawns = 3
	cfg.RoundDelay = time.Millisecond
	cfg.Observer = func(round int, hash uint64) { spawner.kill(1) }
	_, err := Run(context.Background(), cfg)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("got %v, want ErrWorkerLost", err)
	}
}

// TestDistCanceled pins the context path: canceling the run mid-flight
// returns ErrCanceled instead of deadlocking on worker RPCs.
func TestDistCanceled(t *testing.T) {
	g := goldenGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := distConfig(g, 2)
	cfg.RoundDelay = 5 * time.Millisecond
	cfg.Observer = func(round int, hash uint64) {
		if round == 3 {
			cancel()
		}
	}
	_, err := Run(ctx, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}
