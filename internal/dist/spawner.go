package dist

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"sync"
)

// Spawner launches (and re-launches, after a crash) the worker of one
// partition. The worker must dial addr and send a join carrying part
// and token. Spawn returns once the launch is initiated; the join
// itself is awaited by the coordinator under its JoinTimeout.
type Spawner interface {
	Spawn(ctx context.Context, part int, addr, token string) error
}

// SpawnerFunc adapts a function to the Spawner interface — the
// in-process spawner of tests and beepmis's single-binary mode runs
// RunWorker in a goroutine.
type SpawnerFunc func(ctx context.Context, part int, addr, token string) error

func (f SpawnerFunc) Spawn(ctx context.Context, part int, addr, token string) error {
	return f(ctx, part, addr, token)
}

// InProcessSpawner runs workers as goroutines inside the coordinator
// process: the zero-setup mode of beepmis -distributed. The goroutines
// exit when the coordinator closes their connections or cancels ctx.
func InProcessSpawner(logf func(string, ...any)) Spawner {
	return SpawnerFunc(func(ctx context.Context, part int, addr, token string) error {
		go func() {
			_ = RunWorker(ctx, WorkerConfig{Addr: addr, Part: part, Token: token, Logf: logf})
		}()
		return nil
	})
}

// ProcSpawner launches workers as OS processes running a beepworker
// binary: `Binary -connect ADDR -part P -token T [ExtraArgs...]`. It
// records the live process per partition so chaos harnesses can SIGKILL
// a specific worker (Pid) and the respawn replaces the record.
type ProcSpawner struct {
	Binary    string
	ExtraArgs []string
	// Stderr receives the workers' stderr (nil discards it).
	Stderr io.Writer

	mu    sync.Mutex
	procs map[int]*exec.Cmd
}

func (s *ProcSpawner) Spawn(ctx context.Context, part int, addr, token string) error {
	args := append([]string{"-connect", addr, "-part", fmt.Sprint(part), "-token", token}, s.ExtraArgs...)
	cmd := exec.Command(s.Binary, args...)
	cmd.Stderr = s.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dist: spawn worker %d: %w", part, err)
	}
	go cmd.Wait() // reap; workers exit when their connection drops
	s.mu.Lock()
	if s.procs == nil {
		s.procs = make(map[int]*exec.Cmd)
	}
	s.procs[part] = cmd
	s.mu.Unlock()
	return nil
}

// Pid returns the last-spawned process id for a partition (-1 if none),
// for chaos tests that kill specific workers.
func (s *ProcSpawner) Pid(part int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cmd, ok := s.procs[part]; ok && cmd.Process != nil {
		return cmd.Process.Pid
	}
	return -1
}
