package dist

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// TestFrameRoundTrip pins the frame encoding: every type survives the
// encode/decode round trip, including empty and large payloads.
func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	var want []frame
	for typ := fJoin; typ < frameTypeEnd; typ++ {
		f := frame{Type: typ, Seq: 1000 + uint32(typ), Payload: bytes.Repeat([]byte{byte(typ)}, int(typ)*7)}
		wire = appendFrame(wire, f)
		want = append(want, f)
	}
	want = append(want, frame{Type: fEmitOK, Seq: 7, Payload: make([]byte, 200_000)})
	wire = appendFrame(wire, want[len(want)-1])

	br := bufio.NewReader(bytes.NewReader(wire))
	for i, w := range want {
		got, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != w.Type || got.Seq != w.Seq || !bytes.Equal(got.Payload, w.Payload) {
			t.Fatalf("frame %d: got {%v %d %d bytes}, want {%v %d %d bytes}",
				i, got.Type, got.Seq, len(got.Payload), w.Type, w.Seq, len(w.Payload))
		}
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

// TestFrameResync pins the recovery property of the stream reader:
// garbage before a frame, a corrupted frame between two good ones, and
// a truncated tail are all survived — every intact frame that the
// corruption did not swallow is still delivered.
func TestFrameResync(t *testing.T) {
	a := frame{Type: fPing, Seq: 1, Payload: []byte("a")}
	b := frame{Type: fPong, Seq: 2, Payload: []byte("bb")}
	c := frame{Type: fState, Seq: 3, Payload: []byte("ccc")}

	t.Run("leading garbage", func(t *testing.T) {
		wire := append([]byte("noise BPW garbage \x00\xff"), appendFrame(nil, a)...)
		got, err := readFrame(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil || got.Seq != 1 {
			t.Fatalf("got %+v, %v", got, err)
		}
	})

	t.Run("corrupt middle frame", func(t *testing.T) {
		wire := appendFrame(nil, a)
		mid := appendFrame(nil, b)
		// Flip a payload bit: the CRC rejects the frame, the reader
		// rescans, and the following frame still arrives. The corrupted
		// frame's length field is intact, so nothing else is swallowed.
		mid[headerLen] ^= 0x40
		wire = append(wire, mid...)
		wire = appendFrame(wire, c)
		br := bufio.NewReader(bytes.NewReader(wire))
		got1, err := readFrame(br)
		if err != nil || got1.Seq != 1 {
			t.Fatalf("first: %+v, %v", got1, err)
		}
		got2, err := readFrame(br)
		if err != nil || got2.Seq != 3 {
			t.Fatalf("after corruption: %+v, %v (want seq 3)", got2, err)
		}
	})

	t.Run("truncated tail", func(t *testing.T) {
		wire := appendFrame(nil, a)
		wire = append(wire, appendFrame(nil, b)[:headerLen+1]...)
		br := bufio.NewReader(bytes.NewReader(wire))
		if got, err := readFrame(br); err != nil || got.Seq != 1 {
			t.Fatalf("first: %+v, %v", got, err)
		}
		if _, err := readFrame(br); err == nil {
			t.Fatal("truncated frame decoded")
		}
	})

	t.Run("bogus length", func(t *testing.T) {
		// A header claiming a payload beyond maxFrameLen must not
		// allocate or block; the scan skips it and finds the real frame.
		wire := appendFrame(nil, frame{Type: fPing, Seq: 9})
		wire[9] = 0xff
		wire[10] = 0xff
		wire[11] = 0xff
		wire[12] = 0x7f
		wire = appendFrame(wire, c)
		got, err := readFrame(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil || got.Seq != 3 {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
}

// FuzzFrame pins the never-panic contract of the stream reader on
// arbitrary bytes: any input yields frames and then an I/O error,
// never a panic, and every decoded frame is well-formed.
func FuzzFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(frameMagic))
	f.Add(appendFrame(nil, frame{Type: fEmit, Seq: 42, Payload: []byte("payload")}))
	long := appendFrame(nil, frame{Type: fDeliver, Seq: 1, Payload: make([]byte, 3000)})
	f.Add(long[:len(long)-5])
	f.Add(append([]byte("BPW1\xff\xff\xff\xff\xff\xff\xff\xff\xff"), frameMagic...))
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			fr, err := readFrame(br)
			if err != nil {
				return // EOF or ErrUnexpectedEOF: done
			}
			if fr.Type == 0 || fr.Type >= frameTypeEnd {
				t.Fatalf("decoded frame with invalid type %d", fr.Type)
			}
			if len(fr.Payload) > maxFrameLen {
				t.Fatalf("decoded frame with oversized payload %d", len(fr.Payload))
			}
		}
	})
}
