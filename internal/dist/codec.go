// Package dist implements the distributed multi-process engine: a
// coordinator that partitions a simulation across workers connected
// over TCP (stdlib net only), exchanging per round only the sender
// bitset words each partition's neighbors need. The wire layer is built
// robustness-first: length-prefixed CRC-checksummed frames with resync,
// deterministic fault injection (FaultConn), per-RPC timeouts with
// capped exponential backoff and bounded retransmission, heartbeats,
// and crash-exact recovery from coordinator-assembled checkpoints.
package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"
)

// Frame layout (little-endian):
//
//	magic   4 bytes  "BPW1"
//	type    1 byte
//	seq     4 bytes
//	len     4 bytes  payload length
//	payload len bytes
//	crc     4 bytes  CRC-32C over type..payload
//
// The CRC covers everything after the magic; a reader that fails the
// CRC (or sees a bogus length) resynchronizes by scanning forward for
// the next magic, so a corrupted frame can cost the frames its bogus
// length swallowed but never desynchronizes the stream permanently —
// the RPC layer retransmits whatever was lost.

const (
	frameMagic  = "BPW1"
	headerLen   = 4 + 1 + 4 + 4
	crcLen      = 4
	maxFrameLen = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type frameType uint8

const (
	fJoin frameType = iota + 1
	fConfig
	fConfigOK
	fRestore
	fRestoreOK
	fEmit
	fEmitOK
	fDeliver
	fDeliverOK
	fState
	fStateOK
	fPing
	fPong
	fShutdown
	fBye
	fErr
	fStateDelta
	fStateDeltaOK
	frameTypeEnd
)

// frame is one wire message.
type frame struct {
	Type    frameType
	Seq     uint32
	Payload []byte
}

// appendFrame encodes f onto dst.
func appendFrame(dst []byte, f frame) []byte {
	start := len(dst)
	dst = append(dst, frameMagic...)
	dst = append(dst, byte(f.Type))
	dst = binary.LittleEndian.AppendUint32(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc32.Checksum(dst[start+4:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// readFrame reads the next valid frame from br. Invalid bytes (no
// magic, bogus type or length, CRC mismatch) are skipped; the scan only
// stops on a valid frame or an I/O error. It never panics on arbitrary
// input (FuzzFrame pins this).
func readFrame(br *bufio.Reader) (frame, error) {
	for {
		hdr, err := br.Peek(headerLen)
		if err != nil {
			return frame{}, err
		}
		if string(hdr[:4]) != frameMagic {
			br.Discard(1)
			continue
		}
		typ := frameType(hdr[4])
		seq := binary.LittleEndian.Uint32(hdr[5:9])
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if typ == 0 || typ >= frameTypeEnd || plen > maxFrameLen {
			br.Discard(1)
			continue
		}
		// The header CRC must be folded in before any further read: hdr
		// aliases the bufio buffer, and refills slide or overwrite it.
		sum := crc32.Checksum(hdr[4:headerLen], crcTable)
		// Commit: consume the header and read payload+crc. A CRC failure
		// here has consumed the bytes (they may have swallowed a following
		// frame), which the retransmission layer absorbs.
		if _, err := br.Discard(headerLen); err != nil {
			return frame{}, err
		}
		body := make([]byte, int(plen)+crcLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return frame{}, err
		}
		sum = crc32.Update(sum, crcTable, body[:plen])
		if sum != binary.LittleEndian.Uint32(body[plen:]) {
			continue // corrupted: rescan
		}
		return frame{Type: typ, Seq: seq, Payload: body[:plen]}, nil
	}
}

// transport is the frame-level connection interface; faultConn wraps a
// frameConn to inject deterministic faults.
type transport interface {
	send(f frame) error
	recv(deadline time.Time) (frame, error)
	close() error
}

// frameConn is a frame transport over a net.Conn.
type frameConn struct {
	c    net.Conn
	br   *bufio.Reader
	wbuf []byte
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// writeTimeout bounds a single frame write; a peer that cannot accept a
// frame for this long is as good as dead.
const writeTimeout = 30 * time.Second

func (fc *frameConn) send(f frame) error {
	fc.wbuf = appendFrame(fc.wbuf[:0], f)
	return fc.sendRaw(fc.wbuf)
}

// sendRaw writes pre-encoded frame bytes (the fault injector's
// corruption path encodes and mutates its own copy).
func (fc *frameConn) sendRaw(b []byte) error {
	fc.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	_, err := fc.c.Write(b)
	return err
}

// recv reads the next valid frame, blocking until deadline (zero =
// block forever).
func (fc *frameConn) recv(deadline time.Time) (frame, error) {
	fc.c.SetReadDeadline(deadline)
	return readFrame(fc.br)
}

func (fc *frameConn) close() error { return fc.c.Close() }

// isTimeout reports whether err is a read-deadline expiry (retryable)
// rather than a dead connection.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// errFrame builds an fErr frame carrying a diagnostic string.
func errFrame(seq uint32, format string, args ...any) frame {
	return frame{Type: fErr, Seq: seq, Payload: []byte(fmt.Sprintf(format, args...))}
}
