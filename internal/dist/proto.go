package dist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/beep"
	"repro/internal/bitset"
	"repro/internal/graph"
)

// This file defines the RPC payloads and the partition table: which
// vertex range each worker owns, which sender-bitset words it must
// upload after emit (its own words that some partition's gather reads),
// and which merged words it must receive before update (every word
// containing a neighbor of its range). Both sets are computed once from
// the graph at setup, so the per-round exchange is position-implicit:
// word payloads carry no indices, just values in table order.

// joinMsg is the worker's hello (JSON payload of fJoin).
type joinMsg struct {
	Part  int    `json:"part"`
	Token string `json:"token"`
}

// configMsg bootstraps a worker (JSON payload of fConfig): the graph as
// an edge-list blob, the protocol/seed identity, and the worker's slice
// of the partition table.
type configMsg struct {
	Protocol string `json:"protocol"`
	Seed     uint64 `json:"seed"`
	Channels int    `json:"channels"`
	Graph    []byte `json:"graph"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	// Send and Need are the worker's word-index sets, in ascending
	// order: emit replies carry the Send words, deliver requests the
	// Need words, values only.
	Send []int32 `json:"send"`
	Need []int32 `json:"need"`
	// Sparse switches the round exchange to the delta protocol: emit
	// replies and deliver requests carry only CHANGED words as explicit
	// (index, value) pairs instead of the full position-implicit table
	// sets, and the worker runs the activity-gated Partition kernels.
	Sparse bool `json:"sparse,omitempty"`
}

// stateMsg is a worker's range state export (JSON payload of fStateOK):
// the checkpoint slice plus the level/cap export the coordinator's
// legality probe reads.
type stateMsg struct {
	Round    int         `json:"round"`
	Machines [][]int64   `json:"machines"`
	Streams  [][4]uint64 `json:"streams"`
	Levels   []int32     `json:"levels"`
	Caps     []int32     `json:"caps"`
}

// stateDeltaMsg is a worker's incremental range-state export (JSON
// payload of fStateDeltaOK): the machine and stream states of exactly
// the vertices whose slab word was dirtied since the worker's previous
// export (the whole range after a restore). Verts is ascending and
// bounded to the worker's range, so adjacent owners of a shared
// boundary word report disjoint vertex sets. The legality probe's
// levels/caps are not needed on checkpoint cadence and are omitted.
type stateDeltaMsg struct {
	Round    int         `json:"round"`
	Verts    []int32     `json:"verts"`
	Machines [][]int64   `json:"machines"`
	Streams  [][4]uint64 `json:"streams"`
}

// partTable is the static exchange plan for one partitioned run.
type partTable struct {
	n      int
	words  int
	ranges [][2]int
	// send[p] and need[p] are ascending word-index sets per partition;
	// neededAny is the union of the need sets (the words the coordinator
	// merges each round).
	send      [][]int32
	need      [][]int32
	neededAny []int32
}

// computeRanges splits [0, n) into parts contiguous ranges, 64-aligned
// when the per-partition share is at least a word (mirroring the
// FlatParallel shard padding); smaller shares split plainly and rely on
// the coordinator's OR-merge for shared edge words.
func computeRanges(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if parts > n && n > 0 {
		parts = n
	}
	per := (n + parts - 1) / parts
	if per > 64 {
		per = (per + 63) &^ 63
	}
	ranges := make([][2]int, 0, parts)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	if len(ranges) == 0 {
		ranges = [][2]int{{0, 0}}
	}
	return ranges
}

// buildPartTable computes the word sets: need[p] is every word
// containing a neighbor of p's range (what p's gather reads), send[p]
// is every word overlapping p's range that some partition needs (what p
// must upload so the coordinator can merge it).
func buildPartTable(g graph.Topology, ranges [][2]int) *partTable {
	n := g.N()
	t := &partTable{n: n, words: (n + 63) / 64, ranges: ranges}
	var needAny bitset.Set
	needAny.Resize(t.words)
	var buf []int32
	if _, ok := g.(*graph.Graph); !ok {
		buf = make([]int32, g.MaxDegree())
	}
	needSets := make([]bitset.Set, len(ranges))
	for p, r := range ranges {
		nb := &needSets[p]
		nb.Resize(t.words)
		for v := r[0]; v < r[1]; v++ {
			var row []int32
			if csr, ok := g.(*graph.Graph); ok {
				row = csr.Neighbors(v)
			} else {
				row = g.NeighborsInto(v, buf)
			}
			for _, u := range row {
				nb.Set1(int(u >> 6))
				needAny.Set1(int(u >> 6))
			}
		}
		t.need = append(t.need, setToList(nb))
	}
	t.neededAny = setToList(&needAny)
	for _, r := range ranges {
		var send []int32
		if r[0] < r[1] {
			for wi := r[0] >> 6; wi <= (r[1]-1)>>6; wi++ {
				if needAny.Get(wi) {
					send = append(send, int32(wi))
				}
			}
		}
		t.send = append(t.send, send)
	}
	return t
}

func setToList(s *bitset.Set) []int32 {
	var out []int32
	for i := 0; i < s.Len(); i++ {
		if s.Get(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// --- binary round payloads -------------------------------------------

// encodeRound is the emit/state request payload: just the round.
func encodeRound(r int) []byte {
	return binary.LittleEndian.AppendUint32(nil, uint32(r))
}

func decodeRound(b []byte) (int, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("dist: round payload is %d bytes, want 4", len(b))
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

// encodeEmitOK packs the emit reply: round, drew flag, then the
// partition's Send-set words per channel in table order.
func encodeEmitOK(round int, drew bool, send []int32, channels int, words func(c int) []uint64) []byte {
	b := make([]byte, 0, 5+8*len(send)*channels)
	b = binary.LittleEndian.AppendUint32(b, uint32(round))
	if drew {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	for c := 0; c < channels; c++ {
		w := words(c)
		for _, wi := range send {
			b = binary.LittleEndian.AppendUint64(b, w[wi])
		}
	}
	return b
}

// decodeEmitOK unpacks an emit reply, invoking set for every word.
func decodeEmitOK(b []byte, send []int32, channels int, set func(c, wi int, w uint64)) (round int, drew bool, err error) {
	want := 5 + 8*len(send)*channels
	if len(b) != want {
		return 0, false, fmt.Errorf("dist: emit reply is %d bytes, want %d", len(b), want)
	}
	round = int(binary.LittleEndian.Uint32(b))
	drew = b[4] != 0
	off := 5
	for c := 0; c < channels; c++ {
		for _, wi := range send {
			set(c, int(wi), binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return round, drew, nil
}

// encodeDeliver packs the deliver request: round, then the partition's
// Need-set merged words per channel in table order.
func encodeDeliver(round int, need []int32, channels int, merged func(c int) []uint64) []byte {
	b := make([]byte, 0, 4+8*len(need)*channels)
	b = binary.LittleEndian.AppendUint32(b, uint32(round))
	for c := 0; c < channels; c++ {
		w := merged(c)
		for _, wi := range need {
			b = binary.LittleEndian.AppendUint64(b, w[wi])
		}
	}
	return b
}

func decodeDeliver(b []byte, need []int32, channels int, set func(c, wi int, w uint64)) (round int, err error) {
	want := 4 + 8*len(need)*channels
	if len(b) != want {
		return 0, fmt.Errorf("dist: deliver request is %d bytes, want %d", len(b), want)
	}
	round = int(binary.LittleEndian.Uint32(b))
	off := 4
	for c := 0; c < channels; c++ {
		for _, wi := range need {
			set(c, int(wi), binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return round, nil
}

// encodeDeliverOK packs the deliver reply: round, changed flag, range
// trace digest.
func encodeDeliverOK(round int, changed bool, digest uint64) []byte {
	b := make([]byte, 0, 13)
	b = binary.LittleEndian.AppendUint32(b, uint32(round))
	if changed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return binary.LittleEndian.AppendUint64(b, digest)
}

func decodeDeliverOK(b []byte) (round int, changed bool, digest uint64, err error) {
	if len(b) != 13 {
		return 0, false, 0, fmt.Errorf("dist: deliver reply is %d bytes, want 13", len(b))
	}
	return int(binary.LittleEndian.Uint32(b)), b[4] != 0, binary.LittleEndian.Uint64(b[5:]), nil
}

// --- sparse (delta) round payloads ------------------------------------
//
// The delta exchange replaces the position-implicit word tables with
// explicit (index, value) pairs covering only the words that CHANGED
// since the previous round — after the transient phase, almost none.
// Both directions use the same per-channel block layout:
//
//	count   4 bytes   pair count for this channel
//	pairs   12 bytes  word index (4) + word value (8), ascending
//
// Baselines on both sides start zeroed and are re-zeroed together on
// every restore (coordinator resetExchange ↔ worker ResetSparse), so
// the first round after any rewind re-exchanges every nonzero word.

// appendWordPairs appends the per-channel (count, pairs...) blocks.
func appendWordPairs(b []byte, channels int, pairs func(c int) ([]int32, []uint64)) []byte {
	for c := 0; c < channels; c++ {
		wis, vals := pairs(c)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(wis)))
		for i, wi := range wis {
			b = binary.LittleEndian.AppendUint32(b, uint32(wi))
			b = binary.LittleEndian.AppendUint64(b, vals[i])
		}
	}
	return b
}

// readWordPairs decodes the per-channel blocks, bounds-checking every
// word index against the table's word count before invoking apply.
func readWordPairs(b []byte, channels, words int, apply func(c, wi int, w uint64)) error {
	off := 0
	for c := 0; c < channels; c++ {
		if len(b)-off < 4 {
			return fmt.Errorf("dist: delta payload truncated at channel %d", c)
		}
		cnt := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if cnt > (len(b)-off)/12 {
			return fmt.Errorf("dist: delta payload claims %d pairs, only %d bytes left", cnt, len(b)-off)
		}
		for i := 0; i < cnt; i++ {
			wi := int(binary.LittleEndian.Uint32(b[off:]))
			val := binary.LittleEndian.Uint64(b[off+4:])
			off += 12
			if wi >= words {
				return fmt.Errorf("dist: delta word %d out of range (%d words)", wi, words)
			}
			apply(c, wi, val)
		}
	}
	if off != len(b) {
		return fmt.Errorf("dist: delta payload has %d trailing bytes", len(b)-off)
	}
	return nil
}

// encodeEmitOKSparse packs a sparse emit reply: round, drew flag, then
// the upload delta blocks.
func encodeEmitOKSparse(round int, drew bool, channels int, pairs func(c int) ([]int32, []uint64)) []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint32(b, uint32(round))
	if drew {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return appendWordPairs(b, channels, pairs)
}

func decodeEmitOKSparse(b []byte, channels, words int, apply func(c, wi int, w uint64)) (round int, drew bool, err error) {
	if len(b) < 5 {
		return 0, false, fmt.Errorf("dist: sparse emit reply is %d bytes, want >= 5", len(b))
	}
	if err := readWordPairs(b[5:], channels, words, apply); err != nil {
		return 0, false, err
	}
	return int(binary.LittleEndian.Uint32(b)), b[4] != 0, nil
}

// encodeDeliverSparse packs a sparse deliver request: round, then the
// changed-merged-word delta blocks filtered to the partition's need
// set.
func encodeDeliverSparse(round, channels int, pairs func(c int) ([]int32, []uint64)) []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint32(b, uint32(round))
	return appendWordPairs(b, channels, pairs)
}

func decodeDeliverSparse(b []byte, channels, words int, apply func(c, wi int, w uint64)) (round int, err error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("dist: sparse deliver request is %d bytes, want >= 4", len(b))
	}
	if err := readWordPairs(b[4:], channels, words, apply); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

// --- trace digests ----------------------------------------------------

// RangeDigest is the FNV-1a digest of one partition's slice of a
// round's signals — the distributed analogue of stab.TraceHash, split
// at the partition boundaries so per-range digests can be compared
// against a single-process reference observing the same boundaries.
func RangeDigest(round, lo int, sent, heard []beep.Signal) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(round))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(lo))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(sent)))
	h.Write(buf[:])
	for i := range sent {
		h.Write([]byte{byte(sent[i]), byte(heard[i])})
	}
	return h.Sum64()
}

// CombineDigests folds the per-partition digests of one round (in
// partition order) into the round hash recorded in Result.RoundHashes.
func CombineDigests(round int, parts []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(round))
	h.Write(buf[:])
	for _, d := range parts {
		binary.LittleEndian.PutUint64(buf[:], d)
		h.Write(buf[:])
	}
	return h.Sum64()
}
