package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
)

// WorkerConfig configures one partition worker.
type WorkerConfig struct {
	// Addr is the coordinator's listen address to dial.
	Addr string
	// Part is the partition index the worker announces in its join.
	Part int
	// Token authenticates the join against the coordinator's run.
	Token string
	// Fault, when enabled, injects the plan on the worker's side of the
	// connection (tests use it to model slow or lossy workers).
	Fault FaultPlan
	// DialTimeout bounds the connect (default 10s).
	DialTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// workerState is the request-processing state machine: the worker only
// ever executes a phase once per round; duplicate requests (retransmits,
// wire duplicates) are answered from the cached reply, stale ones are
// dropped, and a request from a round the worker cannot reach is a
// protocol desync answered with a typed error frame — the coordinator
// resolves it by restoring everyone from the last checkpoint.
type workerState struct {
	net  *beep.Network
	part *beep.Partition
	lo   int
	hi   int
	cfg  configMsg
	// sparse mirrors cfg.Sparse after a successful EnableSparse; words
	// bounds delta word indices on decode.
	sparse bool
	words  int

	emittedRound int
	updatedRound int
	emitReply    []byte
	deliverReply []byte
	// stateDeltaRound/stateDeltaReply cache the incremental state
	// export: ExportStateDelta rebaselines (unlike the idempotent full
	// fState export), so a retransmitted fStateDelta must be answered
	// from the cache, never re-exported.
	stateDeltaRound int
	stateDeltaReply []byte

	levelBuf []int32
	capBuf   []int32
}

// RunWorker dials the coordinator, serves its partition until the
// connection closes (coordinator shutdown, recovery respawn, or ctx
// cancellation), and returns. A nil error means an orderly shutdown
// frame was received; connection loss is returned as an error so
// process wrappers can exit non-zero.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("dist: worker %d: dial %s: %w", cfg.Part, cfg.Addr, err)
	}
	// ctx cancellation force-closes the conn, unblocking any read; the
	// serve loop then returns.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	t := wrapFaults(newFrameConn(conn), cfg.Fault, uint64(cfg.Part)+0x77)
	defer t.close()

	join, _ := json.Marshal(joinMsg{Part: cfg.Part, Token: cfg.Token})
	if err := t.send(frame{Type: fJoin, Seq: 0, Payload: join}); err != nil {
		return fmt.Errorf("dist: worker %d: join: %w", cfg.Part, err)
	}

	var ws *workerState
	for {
		f, err := t.recv(time.Time{})
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("dist: worker %d: canceled: %w", cfg.Part, context.Cause(ctx))
			}
			return fmt.Errorf("dist: worker %d: connection lost: %w", cfg.Part, err)
		}
		reply, done := handleFrame(&ws, cfg.Part, f, logf)
		if reply != nil {
			if err := t.send(*reply); err != nil {
				return fmt.Errorf("dist: worker %d: reply: %w", cfg.Part, err)
			}
		}
		if done {
			logf("worker %d: shutdown", cfg.Part)
			return nil
		}
	}
}

// handleFrame processes one request and returns the reply frame (nil =
// stale duplicate, silently dropped) and whether to shut down.
func handleFrame(wsp **workerState, part int, f frame, logf func(string, ...any)) (*frame, bool) {
	ws := *wsp
	fail := func(format string, args ...any) (*frame, bool) {
		fr := errFrame(f.Seq, format, args...)
		return &fr, false
	}
	switch f.Type {
	case fConfig:
		st, err := newWorkerState(f.Payload)
		if err != nil {
			return fail("worker %d: config: %v", part, err)
		}
		*wsp = st
		logf("worker %d: configured range [%d, %d)", part, st.lo, st.hi)
		return &frame{Type: fConfigOK, Seq: f.Seq}, false
	case fPing:
		return &frame{Type: fPong, Seq: f.Seq, Payload: f.Payload}, false
	case fShutdown:
		return &frame{Type: fBye, Seq: f.Seq}, true
	}
	if ws == nil {
		return fail("worker %d: %v before config", part, f.Type)
	}
	switch f.Type {
	case fRestore:
		cp, err := beep.DecodeCheckpointAuto(f.Payload)
		if err != nil {
			return fail("worker %d: restore: %v", part, err)
		}
		if err := ws.net.Restore(cp); err != nil {
			return fail("worker %d: restore: %v", part, err)
		}
		if ws.sparse {
			// The restored state invalidates every delta baseline; the
			// coordinator zeroes its side in the same recovery.
			ws.part.ResetSparse()
		}
		// The restored state also invalidates the incremental state
		// export's baseline: the next fStateDelta covers the full range.
		ws.part.MarkAllStateDirty()
		ws.emittedRound, ws.updatedRound = cp.Round, cp.Round
		ws.emitReply, ws.deliverReply = nil, nil
		ws.stateDeltaRound, ws.stateDeltaReply = -1, nil
		logf("worker %d: restored at round %d", part, cp.Round)
		return &frame{Type: fRestoreOK, Seq: f.Seq, Payload: encodeRound(cp.Round)}, false

	case fEmit:
		r, err := decodeRound(f.Payload)
		if err != nil {
			return fail("worker %d: emit: %v", part, err)
		}
		switch {
		case r == ws.updatedRound+1 && r == ws.emittedRound:
			// Retransmit of the round we already emitted.
			return &frame{Type: fEmitOK, Seq: f.Seq, Payload: ws.emitReply}, false
		case r == ws.updatedRound+1:
			if ws.sparse {
				drew, err := ws.part.EmitLocalSparse()
				if err != nil {
					return fail("worker %d: emit round %d: %v", part, r, err)
				}
				ws.emitReply = encodeEmitOKSparse(r, drew, ws.cfg.Channels, ws.part.SparseUpload)
			} else {
				drew, err := ws.part.EmitLocal()
				if err != nil {
					return fail("worker %d: emit round %d: %v", part, r, err)
				}
				ws.emitReply = encodeEmitOK(r, drew, ws.cfg.Send, ws.cfg.Channels, ws.part.SenderWords)
			}
			ws.emittedRound = r
			return &frame{Type: fEmitOK, Seq: f.Seq, Payload: ws.emitReply}, false
		case r <= ws.updatedRound:
			return nil, false // stale duplicate
		default:
			return fail("worker %d: emit round %d out of sync (updated %d)", part, r, ws.updatedRound)
		}

	case fDeliver:
		if len(f.Payload) < 4 {
			return fail("worker %d: deliver: short payload", part)
		}
		round := int(binary.LittleEndian.Uint32(f.Payload))
		switch {
		case round == ws.updatedRound:
			// Retransmit of a completed round: reply from cache, leave
			// the partition's word state untouched.
			if ws.deliverReply == nil {
				return fail("worker %d: deliver round %d after restore, no cached reply", part, round)
			}
			return &frame{Type: fDeliverOK, Seq: f.Seq, Payload: ws.deliverReply}, false
		case round == ws.emittedRound && round == ws.updatedRound+1:
			var changed bool
			var err error
			if ws.sparse {
				if _, err = decodeDeliverSparse(f.Payload, ws.cfg.Channels, ws.words, ws.part.ApplyDeltaWord); err != nil {
					return fail("worker %d: deliver: %v", part, err)
				}
				changed, err = ws.part.UpdateLocalSparse()
			} else {
				if _, err = decodeDeliver(f.Payload, ws.cfg.Need, ws.cfg.Channels, func(c, wi int, w uint64) {
					ws.part.SetSenderWord(c, wi, w)
				}); err != nil {
					return fail("worker %d: deliver: %v", part, err)
				}
				changed, err = ws.part.UpdateLocal()
			}
			if err != nil {
				return fail("worker %d: update round %d: %v", part, round, err)
			}
			sent, heard := ws.part.Signals()
			digest := RangeDigest(round, ws.lo, sent[ws.lo:ws.hi], heard[ws.lo:ws.hi])
			ws.updatedRound = round
			ws.deliverReply = encodeDeliverOK(round, changed, digest)
			return &frame{Type: fDeliverOK, Seq: f.Seq, Payload: ws.deliverReply}, false
		case round < ws.updatedRound:
			return nil, false
		default:
			return fail("worker %d: deliver round %d out of sync (emitted %d, updated %d)",
				part, round, ws.emittedRound, ws.updatedRound)
		}

	case fState:
		r, err := decodeRound(f.Payload)
		if err != nil {
			return fail("worker %d: state: %v", part, err)
		}
		if r != ws.updatedRound {
			return fail("worker %d: state at round %d out of sync (updated %d)", part, r, ws.updatedRound)
		}
		msg, err := ws.exportState()
		if err != nil {
			return fail("worker %d: state: %v", part, err)
		}
		return &frame{Type: fStateOK, Seq: f.Seq, Payload: msg}, false

	case fStateDelta:
		r, err := decodeRound(f.Payload)
		if err != nil {
			return fail("worker %d: state delta: %v", part, err)
		}
		if r == ws.stateDeltaRound && ws.stateDeltaReply != nil {
			// Retransmit: the export already rebaselined; replay the
			// cached reply.
			return &frame{Type: fStateDeltaOK, Seq: f.Seq, Payload: ws.stateDeltaReply}, false
		}
		if r != ws.updatedRound {
			return fail("worker %d: state delta at round %d out of sync (updated %d)", part, r, ws.updatedRound)
		}
		verts, machines, streams, err := ws.part.ExportStateDelta()
		if err != nil {
			return fail("worker %d: state delta: %v", part, err)
		}
		msg, err := json.Marshal(stateDeltaMsg{Round: r, Verts: verts, Machines: machines, Streams: streams})
		if err != nil {
			return fail("worker %d: state delta: %v", part, err)
		}
		ws.stateDeltaRound, ws.stateDeltaReply = r, msg
		return &frame{Type: fStateDeltaOK, Seq: f.Seq, Payload: msg}, false
	}
	return nil, false // unknown frame type: ignore
}

// newWorkerState builds the worker's network and partition from a
// config payload.
func newWorkerState(payload []byte) (*workerState, error) {
	var cfg configMsg
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return nil, err
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(cfg.Graph))
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	proto, err := core.ProtocolByName(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if proto.Channels() != cfg.Channels {
		return nil, fmt.Errorf("protocol %s has %d channels, config says %d", cfg.Protocol, proto.Channels(), cfg.Channels)
	}
	net, err := beep.NewNetwork(g, proto, cfg.Seed, beep.WithEngine(beep.Flat))
	if err != nil {
		return nil, err
	}
	part, err := net.Partition(cfg.Lo, cfg.Hi)
	if err != nil {
		net.Close()
		return nil, err
	}
	ws := &workerState{
		net: net, part: part, lo: cfg.Lo, hi: cfg.Hi, cfg: cfg,
		words: (g.N() + 63) / 64, stateDeltaRound: -1,
	}
	if cfg.Sparse {
		if err := part.EnableSparse(); err != nil {
			net.Close()
			return nil, err
		}
		ws.sparse = true
	}
	return ws, nil
}

// exportState serializes the worker's range state: the checkpoint slice
// plus the level export the coordinator's legality probe reads.
func (ws *workerState) exportState() ([]byte, error) {
	machines, streams, err := ws.net.ExportRangeState(ws.lo, ws.hi)
	if err != nil {
		return nil, err
	}
	le, ok := ws.net.BulkState().(core.LevelExporter)
	if !ok {
		return nil, fmt.Errorf("bulk state %T does not export levels", ws.net.BulkState())
	}
	n := ws.net.N()
	if cap(ws.levelBuf) < n {
		ws.levelBuf = make([]int32, n)
		ws.capBuf = make([]int32, n)
	}
	ws.levelBuf, ws.capBuf = ws.levelBuf[:n], ws.capBuf[:n]
	le.ExportLevels(ws.levelBuf, ws.capBuf)
	msg := stateMsg{
		Round:    ws.updatedRound,
		Machines: machines,
		Streams:  streams,
		Levels:   append([]int32(nil), ws.levelBuf[ws.lo:ws.hi]...),
		Caps:     append([]int32(nil), ws.capBuf[ws.lo:ws.hi]...),
	}
	return json.Marshal(msg)
}
