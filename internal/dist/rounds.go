package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"repro/internal/beep"
	"repro/internal/ckpt"
	"repro/internal/core"
)

// defaultBudget mirrors the stab supervisor's round budget: generous
// multiples of the O(log n) expected stabilization time.
func defaultBudget(n int) int {
	log := 0
	for x := n; x > 1; x >>= 1 {
		log++
	}
	return 1000*(log+1) + 1000
}

// loop drives the per-round exchange until stabilization (or the fixed
// round target), recovering from worker deaths by rewinding everyone to
// the last synchronized checkpoint.
func (co *coordinator) loop(ctx context.Context) error {
	cfg := &co.cfg
	startRound := co.lastCP.Round
	r := startRound
	budget := cfg.MaxRounds
	if budget == 0 {
		budget = defaultBudget(co.g.N())
	}
	digests := make([]uint64, len(co.clients))

	// rewind routes a dead-worker signal through recovery and resets
	// the round cursor to the restored checkpoint.
	rewind := func(err error) (bool, error) {
		if !errors.Is(err, errNeedRecovery) {
			return false, err
		}
		if rerr := co.recoverWorkers(ctx); rerr != nil {
			return false, rerr
		}
		r = co.lastCP.Round
		return true, nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ctx))
		}
		if cfg.FixedRounds > 0 && r >= cfg.FixedRounds {
			break
		}
		if cfg.FixedRounds == 0 && r-startRound >= budget {
			return fmt.Errorf("%w after %d rounds", ErrBudget, r-startRound)
		}
		if cfg.RoundDelay > 0 {
			select {
			case <-time.After(cfg.RoundDelay):
			case <-ctx.Done():
				return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ctx))
			}
		}
		round := r + 1

		// EMIT: every worker runs its range's emit kernel and uploads
		// its send-set words plus the drew flag.
		errs := co.broadcast(nil, fEmit, fEmitOK, func(int) []byte { return encodeRound(round) })
		if err := co.classify(errs); err != nil {
			if retried, rerr := rewind(err); rerr != nil {
				return rerr
			} else if retried {
				continue
			}
			return err
		}
		anyDrew := false
		if co.sparse {
			// Delta merge: a changed per-partition word re-merges by OR
			// over the word's owners; only words whose MERGED value moved
			// enter the dirty set (a boundary flip shadowed by the
			// adjacent owner travels no further).
			for p := range co.clients {
				gotRound, drew, err := decodeEmitOKSparse(co.replies[p], co.channels, co.table.words, func(c, wi int, w uint64) {
					cw := co.cur[p][c]
					if cw[wi] == w {
						return
					}
					cw[wi] = w
					var m uint64
					for _, q := range co.owners[wi] {
						m |= co.cur[q][c][wi]
					}
					if co.merged[c][wi] != m {
						co.merged[c][wi] = m
						co.dirty[c][wi>>6] |= 1 << uint(wi&63)
					}
				})
				if err != nil {
					return &WorkerError{Part: p, Msg: err.Error()}
				}
				if gotRound != round {
					return &WorkerError{Part: p, Msg: fmt.Sprintf("emit reply for round %d, want %d", gotRound, round)}
				}
				anyDrew = anyDrew || drew
				co.res.WireBytes += int64(len(co.replies[p]))
			}
		} else {
			for c := 0; c < co.channels; c++ {
				for _, wi := range co.table.neededAny {
					co.merged[c][wi] = 0
				}
			}
			for p := range co.clients {
				gotRound, drew, err := decodeEmitOK(co.replies[p], co.table.send[p], co.channels, func(c, wi int, w uint64) {
					co.merged[c][wi] |= w
				})
				if err != nil {
					return &WorkerError{Part: p, Msg: err.Error()}
				}
				if gotRound != round {
					return &WorkerError{Part: p, Msg: fmt.Sprintf("emit reply for round %d, want %d", gotRound, round)}
				}
				anyDrew = anyDrew || drew
				co.res.WireBytes += int64(len(co.replies[p]))
			}
		}

		// DELIVER: every worker receives the merged words covering its
		// neighborhoods — all of its need set in dense mode, the changed
		// subset in sparse mode — gathers, updates, and reports
		// (changed, digest).
		payloads := make([][]byte, len(co.clients))
		for p := range co.clients {
			if co.sparse {
				payloads[p] = co.sparseDeliverPayload(round, p)
			} else {
				payloads[p] = encodeDeliver(round, co.table.need[p], co.channels, func(c int) []uint64 { return co.merged[c] })
			}
			co.res.WireBytes += int64(len(payloads[p]))
		}
		errs = co.broadcast(nil, fDeliver, fDeliverOK, func(p int) []byte { return payloads[p] })
		if err := co.classify(errs); err != nil {
			if retried, rerr := rewind(err); rerr != nil {
				return rerr
			} else if retried {
				continue
			}
			return err
		}
		anyChanged := false
		for p := range co.clients {
			gotRound, changed, d, err := decodeDeliverOK(co.replies[p])
			if err != nil {
				return &WorkerError{Part: p, Msg: err.Error()}
			}
			if gotRound != round {
				return &WorkerError{Part: p, Msg: fmt.Sprintf("deliver reply for round %d, want %d", gotRound, round)}
			}
			anyChanged = anyChanged || changed
			digests[p] = d
		}
		if co.sparse {
			// Every worker consumed this round's deltas; the merged words
			// are the new shared baseline.
			for c := 0; c < co.channels; c++ {
				for i := range co.dirty[c] {
					co.dirty[c][i] = 0
				}
			}
		}
		hash := CombineDigests(round, digests)
		if idx := round - startRound - 1; idx == len(co.res.RoundHashes) {
			co.res.RoundHashes = append(co.res.RoundHashes, hash)
		} else {
			// A recovered round re-executes; determinism makes the
			// digest identical, but record what actually ran.
			co.res.RoundHashes[idx] = hash
		}
		if cfg.Observer != nil {
			cfg.Observer(round, hash)
		}
		r = round

		// Synchronized checkpoint cadence: the recovery anchor.
		if cfg.CheckpointEvery > 0 && (round-startRound)%cfg.CheckpointEvery == 0 {
			if err := co.checkpointNow(round); err != nil {
				if retried, rerr := rewind(err); rerr != nil {
					return rerr
				} else if retried {
					continue
				}
				return err
			}
		}

		// Stop detection: a round in which nobody drew and nobody
		// changed means the previous configuration is a fixed point;
		// probe it for MIS legality. (A non-legal fixed point keeps
		// looping and falls to the budget.)
		if cfg.FixedRounds == 0 && !anyDrew && !anyChanged {
			states, err := co.collectStates(round)
			if err != nil {
				if retried, rerr := rewind(err); rerr != nil {
					return rerr
				} else if retried {
					continue
				}
				return err
			}
			probe := co.buildProbe(states)
			if probe.Stabilized() {
				if err := probe.VerifyMIS(); err != nil {
					return fmt.Errorf("dist: stabilized configuration failed verification: %w", err)
				}
				co.res.Stabilized = true
				co.res.StabilizedRound = round - 1
				co.res.MIS = probe.MISMask()
				for _, in := range co.res.MIS {
					if in {
						co.res.MISSize++
					}
				}
				co.finalCheckpoint(round, states)
				break
			}
		}
	}
	co.res.Rounds = r

	if co.cfg.FixedRounds > 0 {
		// Fixed-round runs still report legality and state at the end.
		states, err := co.collectStates(r)
		if err != nil {
			if errors.Is(err, errNeedRecovery) {
				// Workers died after the last round completed; the run's
				// results are already determined, so don't revive anyone
				// just for the export.
				return fmt.Errorf("%w: worker died during final state collection", ErrWorkerLost)
			}
			return err
		}
		probe := co.buildProbe(states)
		if probe.Stabilized() && probe.VerifyMIS() == nil {
			co.res.Stabilized = true
			co.res.MIS = probe.MISMask()
			for _, in := range co.res.MIS {
				if in {
					co.res.MISSize++
				}
			}
		}
		co.finalCheckpoint(r, states)
	}
	co.sealLastCP()
	co.res.LastCheckpoint = co.lastCP
	return nil
}

// sparseDeliverPayload builds partition p's deliver delta: the dirty
// merged words intersected with p's need set, as per-channel (index,
// value) pairs. The scratch lists are reused across partitions — the
// encoder copies them into the payload before the next call.
func (co *coordinator) sparseDeliverPayload(round, p int) []byte {
	ns := co.needSet[p]
	return encodeDeliverSparse(round, co.channels, func(c int) ([]int32, []uint64) {
		wis, vals := co.downWi[c][:0], co.downVal[c][:0]
		d := co.dirty[c]
		for i, dw := range d {
			m := dw & ns[i]
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				wi := i<<6 + b
				wis = append(wis, int32(wi))
				vals = append(vals, co.merged[c][wi])
			}
		}
		co.downWi[c], co.downVal[c] = wis, vals
		return wis, vals
	})
}

// collectStates gathers every worker's range state at the given round.
func (co *coordinator) collectStates(round int) ([]stateMsg, error) {
	errs := co.broadcast(nil, fState, fStateOK, func(int) []byte { return encodeRound(round) })
	if err := co.classify(errs); err != nil {
		return nil, err
	}
	states := make([]stateMsg, len(co.clients))
	for p := range co.clients {
		var st stateMsg
		if err := json.Unmarshal(co.replies[p], &st); err != nil {
			return nil, &WorkerError{Part: p, Msg: fmt.Sprintf("state reply: %v", err)}
		}
		r := co.table.ranges[p]
		span := r[1] - r[0]
		if st.Round != round || len(st.Machines) != span || len(st.Streams) != span ||
			len(st.Levels) != span || len(st.Caps) != span {
			return nil, &WorkerError{Part: p, Msg: fmt.Sprintf(
				"state reply shape: round %d (want %d), %d/%d/%d/%d entries (want %d)",
				st.Round, round, len(st.Machines), len(st.Streams), len(st.Levels), len(st.Caps), span)}
		}
		states[p] = st
	}
	return states, nil
}

// buildProbe assembles the workers' level exports into a legality
// checker over the full graph.
func (co *coordinator) buildProbe(states []stateMsg) *core.State {
	n := co.g.N()
	levels := make([]int32, n)
	caps := make([]int32, n)
	for p, st := range states {
		r := co.table.ranges[p]
		copy(levels[r[0]:r[1]], st.Levels)
		copy(caps[r[0]:r[1]], st.Caps)
	}
	return core.NewStateWith(co.g, levels, caps, co.two)
}

// assembleCheckpoint splices the workers' range states into a sealed
// full checkpoint. The identity header and allocator/fault stream
// fields are invariant across rounds, so the previous checkpoint is the
// template.
func (co *coordinator) assembleCheckpoint(round int, states []stateMsg) *beep.Checkpoint {
	cp := *co.lastCP
	cp.Round = round
	cp.Machines = make([][]int64, cp.GraphN)
	cp.Streams = make([][4]uint64, cp.GraphN)
	for p, st := range states {
		r := co.table.ranges[p]
		copy(cp.Machines[r[0]:r[1]], st.Machines)
		copy(cp.Streams[r[0]:r[1]], st.Streams)
	}
	cp.Seal()
	return &cp
}

// checkpointNow advances the recovery anchor incrementally: every
// worker uploads the state of exactly the slab words its range dirtied
// since the previous collection (its full range right after a restore),
// the coordinator patches the anchor vertex-granularly, and — when a
// checkpoint path is configured — persists either a base snapshot or a
// delta link chained to it, per the chain writer's compaction policy.
// Collection is all-or-nothing: a dead worker surfaces before the first
// patch, and the recovery it triggers restores every worker (marking
// everything dirty again), so a partially collected tick can never leak
// into the chain.
func (co *coordinator) checkpointNow(round int) error {
	deltas, err := co.collectStateDeltas(round)
	if err != nil {
		return err
	}
	dirtyWords := make(map[int32]struct{})
	cp := co.lastCP
	for _, sd := range deltas {
		for i, v := range sd.Verts {
			cp.Machines[v] = sd.Machines[i]
			cp.Streams[v] = sd.Streams[i]
			dirtyWords[v>>6] = struct{}{}
		}
	}
	cp.Round = round
	co.lastCPSealed = false
	co.lastCPBytes = nil

	kind := "memory"
	nbytes := 0
	if co.cfg.CheckpointPath != "" {
		if co.chain == nil {
			co.chain = ckpt.NewWriter(co.cfg.CheckpointPath)
		}
		if co.chain.NeedsBase(false, len(dirtyWords), co.totalWords) {
			co.sealLastCP()
			if nbytes, err = co.chain.WriteBase(cp); err != nil {
				return fmt.Errorf("dist: persist checkpoint: %w", err)
			}
			kind = "base"
		} else {
			d := co.buildDelta(round, dirtyWords)
			if nbytes, err = co.chain.AppendDelta(d); err != nil {
				return fmt.Errorf("dist: persist checkpoint: %w", err)
			}
			kind = "delta"
		}
	}
	co.logf("checkpoint at round %d (%d workers, %d dirty words, %s, %d bytes)",
		round, len(co.clients), len(dirtyWords), kind, nbytes)
	return nil
}

// collectStateDeltas gathers every worker's incremental range state at
// the given round, validating all replies before returning any.
func (co *coordinator) collectStateDeltas(round int) ([]stateDeltaMsg, error) {
	errs := co.broadcast(nil, fStateDelta, fStateDeltaOK, func(int) []byte { return encodeRound(round) })
	if err := co.classify(errs); err != nil {
		return nil, err
	}
	n := co.g.N()
	deltas := make([]stateDeltaMsg, len(co.clients))
	for p := range co.clients {
		var sd stateDeltaMsg
		if err := json.Unmarshal(co.replies[p], &sd); err != nil {
			return nil, &WorkerError{Part: p, Msg: fmt.Sprintf("state delta reply: %v", err)}
		}
		r := co.table.ranges[p]
		if sd.Round != round || len(sd.Machines) != len(sd.Verts) || len(sd.Streams) != len(sd.Verts) {
			return nil, &WorkerError{Part: p, Msg: fmt.Sprintf(
				"state delta shape: round %d (want %d), %d verts / %d machines / %d streams",
				sd.Round, round, len(sd.Verts), len(sd.Machines), len(sd.Streams))}
		}
		prev := int32(-1)
		for _, v := range sd.Verts {
			if v <= prev || int(v) < r[0] || int(v) >= r[1] || int(v) >= n {
				return nil, &WorkerError{Part: p, Msg: fmt.Sprintf(
					"state delta vertex %d outside ascending range [%d, %d)", v, r[0], r[1])}
			}
			prev = v
		}
		deltas[p] = sd
	}
	return deltas, nil
}

// buildDelta assembles the persistable delta link for the given dirty
// word set, reading the word-complete vertex states from the freshly
// patched anchor (vertices of a dirty word that no worker re-uploaded
// are unchanged, so the anchor's rows are exact). The auxiliary RNG and
// allocator fields are invariant in a partitioned run (Partition
// rejects the fault models that would advance them).
func (co *coordinator) buildDelta(round int, dirtyWords map[int32]struct{}) *beep.Delta {
	cp := co.lastCP
	wis := make([]int32, 0, len(dirtyWords))
	for wi := range dirtyWords {
		wis = append(wis, wi)
	}
	sort.Slice(wis, func(i, j int) bool { return wis[i] < wis[j] })
	d := &beep.Delta{
		GraphFingerprint: cp.GraphFingerprint,
		Protocol:         cp.Protocol,
		Round:            round,
		ParentHash:       co.chain.ParentHash(),
		Words:            wis,
		NoiseRNG:         cp.NoiseRNG,
		SleepRNG:         cp.SleepRNG,
		AdvRNG:           cp.AdvRNG,
		RootRNG:          cp.RootRNG,
		NextStream:       cp.NextStream,
		AdvEpoch:         cp.AdvEpoch,
	}
	n := cp.GraphN
	for _, wi := range wis {
		lo, hi := int(wi)*64, int(wi)*64+64
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			d.Machines = append(d.Machines, cp.Machines[v])
			d.Streams = append(d.Streams, cp.Streams[v])
		}
	}
	d.Seal()
	return d
}

// finalCheckpoint installs an assembled checkpoint as the current
// anchor without persisting it.
func (co *coordinator) finalCheckpoint(round int, states []stateMsg) {
	cp := co.assembleCheckpoint(round, states)
	co.lastCP = cp
	co.lastCPSealed = true
	co.lastCPBytes = nil
}

// encodeCheckpoint serializes a sealed checkpoint into the fRestore
// payload (the v3 binary snapshot; workers auto-detect the format).
func encodeCheckpoint(cp *beep.Checkpoint) ([]byte, error) {
	b, err := beep.EncodeSnapshot(cp)
	if err != nil {
		return nil, fmt.Errorf("dist: encode checkpoint: %w", err)
	}
	return b, nil
}
