package dist

import (
	"context"
	"hash/fnv"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/beep"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The golden execution every engine in the repo must reproduce
// (see internal/core/golden_test.go).
const (
	goldenStabRound = 39
	goldenMISSize   = 20
	goldenMaskHash  = uint64(0xc3308e69f7440ccb)
)

func goldenGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.GNPAvgDegree(64, 6, rng.New(42))
	if g.N() != 64 || g.M() != 189 {
		t.Fatalf("golden generator changed: n=%d m=%d", g.N(), g.M())
	}
	return g
}

func maskHash(mask []bool) uint64 {
	h := fnv.New64a()
	for _, in := range mask {
		if in {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// flatReference executes `rounds` rounds on the single-process Flat
// engine and returns the per-round combined digests over the given
// partition ranges — the trace a distributed run with those ranges must
// reproduce hash for hash.
func flatReference(t *testing.T, g *graph.Graph, protoName string, seed uint64, ranges [][2]int, rounds int) []uint64 {
	t.Helper()
	proto, err := core.ProtocolByName(protoName)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []uint64
	parts := make([]uint64, len(ranges))
	net, err := beep.NewNetwork(g, proto, seed, beep.WithEngine(beep.Flat),
		beep.WithObserver(func(round int, sent, heard []beep.Signal) {
			for p, r := range ranges {
				parts[p] = RangeDigest(round, r[0], sent[r[0]:r[1]], heard[r[0]:r[1]])
			}
			hashes = append(hashes, CombineDigests(round, parts))
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := core.ApplyInit(net, core.InitRandom); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if err := net.TryStep(); err != nil {
			t.Fatal(err)
		}
	}
	return hashes
}

// TestPartTable pins the exchange-plan invariants: the ranges tile
// [0, n), every word a partition needs is uploaded by someone (the send
// union covers the need union), and uploads are restricted to words a
// partition actually owns.
func TestPartTable(t *testing.T) {
	g := graph.GNPAvgDegree(200, 8, rng.New(5))
	for _, parts := range []int{1, 2, 3, 5, 8} {
		ranges := computeRanges(g.N(), parts)
		if ranges[0][0] != 0 || ranges[len(ranges)-1][1] != g.N() {
			t.Fatalf("parts=%d: ranges do not span [0, n): %v", parts, ranges)
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i][0] != ranges[i-1][1] {
				t.Fatalf("parts=%d: gap between ranges %v", parts, ranges)
			}
		}
		table := buildPartTable(g, ranges)
		sent := map[int32]bool{}
		for p, send := range table.send {
			lo, hi := ranges[p][0], ranges[p][1]
			for _, wi := range send {
				sent[wi] = true
				if int(wi) < lo>>6 || int(wi) > (hi-1)>>6 {
					t.Fatalf("parts=%d: partition %d uploads foreign word %d", parts, p, wi)
				}
			}
		}
		needAny := map[int32]bool{}
		for _, need := range table.need {
			for _, wi := range need {
				needAny[wi] = true
				if !sent[wi] {
					t.Fatalf("parts=%d: needed word %d uploaded by nobody", parts, wi)
				}
			}
		}
		if len(needAny) != len(table.neededAny) {
			t.Fatalf("parts=%d: neededAny has %d words, union of need sets %d", parts, len(table.neededAny), len(needAny))
		}
	}
}

func distConfig(g *graph.Graph, parts int) Config {
	return Config{
		Graph:      g,
		Protocol:   "alg1-known-delta",
		Seed:       7,
		Init:       core.InitRandom,
		Partitions: parts,
		Spawner:    InProcessSpawner(nil),
	}
}

// TestDistGoldenEquivalence is the N-partition trace-equivalence
// matrix: at every partition count the distributed engine must
// reproduce the golden execution — stabilization round, MIS, mask hash
// — and every per-round combined digest of the single-process Flat
// reference over the same ranges.
func TestDistGoldenEquivalence(t *testing.T) {
	g := goldenGraph(t)
	for parts := 1; parts <= 4; parts++ {
		res, err := Run(context.Background(), distConfig(g, parts))
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !res.Stabilized || res.StabilizedRound != goldenStabRound || res.MISSize != goldenMISSize {
			t.Fatalf("parts=%d: stabilized=%v round=%d |MIS|=%d, want true/%d/%d",
				parts, res.Stabilized, res.StabilizedRound, res.MISSize, goldenStabRound, goldenMISSize)
		}
		if h := maskHash(res.MIS); h != goldenMaskHash {
			t.Fatalf("parts=%d: mask hash %#x, want %#x", parts, h, goldenMaskHash)
		}
		if res.Respawns != 0 {
			t.Fatalf("parts=%d: %d respawns in a fault-free run", parts, res.Respawns)
		}
		ranges := computeRanges(g.N(), parts)
		ref := flatReference(t, g, "alg1-known-delta", 7, ranges, res.Rounds)
		if len(res.RoundHashes) != len(ref) {
			t.Fatalf("parts=%d: %d round hashes, reference has %d", parts, len(res.RoundHashes), len(ref))
		}
		for i := range ref {
			if res.RoundHashes[i] != ref[i] {
				t.Fatalf("parts=%d: round %d hash %#x, reference %#x", parts, i+1, res.RoundHashes[i], ref[i])
			}
		}
	}
}

// TestDistTwoChannel runs the two-channel Algorithm 2 distributed: the
// second sender bitset rides the same exchange, and the legality probe
// must apply Algorithm 2 membership semantics.
func TestDistTwoChannel(t *testing.T) {
	g := graph.GNPAvgDegree(96, 5, rng.New(11))
	cfg := distConfig(g, 3)
	cfg.Protocol = "alg2-two-channel"
	cfg.Seed = 13
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized || res.MISSize == 0 {
		t.Fatalf("two-channel run did not stabilize: %+v", res)
	}
	ranges := computeRanges(g.N(), 3)
	ref := flatReference(t, g, "alg2-two-channel", 13, ranges, res.Rounds)
	for i := range ref {
		if res.RoundHashes[i] != ref[i] {
			t.Fatalf("round %d hash %#x, reference %#x", i+1, res.RoundHashes[i], ref[i])
		}
	}
}

// TestDistFaultInjectionEquivalence turns on every wire fault at once —
// drops, duplicates, corruption, receive loss — on both sides of every
// connection. The retransmission ladder and idempotent workers must
// absorb all of it: the result is still bit-identical to the golden
// execution.
func TestDistFaultInjectionEquivalence(t *testing.T) {
	g := goldenGraph(t)
	plan := FaultPlan{Seed: 99, Drop: 0.05, Dup: 0.05, Corrupt: 0.03, DropRecv: 0.03}
	cfg := distConfig(g, 3)
	cfg.Fault = plan
	cfg.Spawner = SpawnerFunc(func(ctx context.Context, part int, addr, token string) error {
		go func() {
			_ = RunWorker(ctx, WorkerConfig{Addr: addr, Part: part, Token: token, Fault: plan})
		}()
		return nil
	})
	cfg.PhaseTimeout = 50 * time.Millisecond
	cfg.MaxAttempts = 10
	cfg.HeartbeatEvery = -1 // the per-round RPCs are the liveness probe here
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized || res.StabilizedRound != goldenStabRound || res.MISSize != goldenMISSize || maskHash(res.MIS) != goldenMaskHash {
		t.Fatalf("faulty-wire run diverged: stabilized=%v round=%d |MIS|=%d hash=%#x",
			res.Stabilized, res.StabilizedRound, res.MISSize, maskHash(res.MIS))
	}
	ranges := computeRanges(g.N(), 3)
	ref := flatReference(t, g, "alg1-known-delta", 7, ranges, res.Rounds)
	for i := range ref {
		if res.RoundHashes[i] != ref[i] {
			t.Fatalf("round %d hash %#x, reference %#x", i+1, res.RoundHashes[i], ref[i])
		}
	}
}

// TestDistSparseDenseEquivalence pins the delta boundary exchange
// against the dense wire: at every partition count, forced-sparse and
// forced-dense runs must produce identical per-round combined digests
// and the golden result, and on a graph with enough sender words the
// sparse run must move fewer logical payload bytes.
func TestDistSparseDenseEquivalence(t *testing.T) {
	g := goldenGraph(t)
	for parts := 1; parts <= 4; parts++ {
		dcfg := distConfig(g, parts)
		dcfg.Sparse = beep.SparseOff
		dres, err := Run(context.Background(), dcfg)
		if err != nil {
			t.Fatalf("parts=%d dense: %v", parts, err)
		}
		scfg := distConfig(g, parts)
		scfg.Sparse = beep.SparseOn
		sres, err := Run(context.Background(), scfg)
		if err != nil {
			t.Fatalf("parts=%d sparse: %v", parts, err)
		}
		if dres.Sparse || !sres.Sparse {
			t.Fatalf("parts=%d: Sparse flags dense=%v sparse=%v", parts, dres.Sparse, sres.Sparse)
		}
		for _, res := range []*Result{dres, sres} {
			if !res.Stabilized || res.StabilizedRound != goldenStabRound ||
				res.MISSize != goldenMISSize || maskHash(res.MIS) != goldenMaskHash {
				t.Fatalf("parts=%d sparse=%v diverged from golden: stabilized=%v round=%d |MIS|=%d hash=%#x",
					parts, res.Sparse, res.Stabilized, res.StabilizedRound, res.MISSize, maskHash(res.MIS))
			}
		}
		if len(dres.RoundHashes) != len(sres.RoundHashes) {
			t.Fatalf("parts=%d: dense %d rounds, sparse %d", parts, len(dres.RoundHashes), len(sres.RoundHashes))
		}
		for i := range dres.RoundHashes {
			if dres.RoundHashes[i] != sres.RoundHashes[i] {
				t.Fatalf("parts=%d: round %d dense hash %#x, sparse %#x",
					parts, i+1, dres.RoundHashes[i], sres.RoundHashes[i])
			}
		}
	}

	// Byte savings need more than one word per range: on a 2048-vertex
	// graph most words stop changing well before stabilization, so the
	// delta wire must be strictly smaller than re-sending every word.
	big := graph.GNPAvgDegree(2048, 6, rng.New(5))
	bd := distConfig(big, 4)
	bd.Sparse = beep.SparseOff
	dres, err := Run(context.Background(), bd)
	if err != nil {
		t.Fatal(err)
	}
	bs := distConfig(big, 4)
	bs.Sparse = beep.SparseOn
	sres, err := Run(context.Background(), bs)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Stabilized || !sres.Stabilized || maskHash(dres.MIS) != maskHash(sres.MIS) {
		t.Fatalf("big-graph runs diverged: dense=%+v sparse=%+v", dres, sres)
	}
	if sres.WireBytes <= 0 || dres.WireBytes <= 0 {
		t.Fatalf("WireBytes not recorded: dense=%d sparse=%d", dres.WireBytes, sres.WireBytes)
	}
	if sres.WireBytes >= dres.WireBytes {
		t.Fatalf("sparse exchange moved %d bytes, dense %d — no reduction", sres.WireBytes, dres.WireBytes)
	}
	t.Logf("n=2048 parts=4: dense %d bytes, sparse %d bytes (%.1f%%)",
		dres.WireBytes, sres.WireBytes, 100*float64(sres.WireBytes)/float64(dres.WireBytes))
}

// TestDistCheckpointResume pins the checkpoint interop: a run persists
// its synchronized checkpoints; resuming a fresh distributed run (with
// a different partition count) from the persisted file must land on the
// same stabilized configuration as the uninterrupted golden run.
func TestDistCheckpointResume(t *testing.T) {
	g := goldenGraph(t)
	path := filepath.Join(t.TempDir(), "cp.json")

	cfg := distConfig(g, 2)
	cfg.FixedRounds = 16
	cfg.CheckpointEvery = 8
	cfg.CheckpointPath = path
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	cp, info, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Round != 16 {
		t.Fatalf("persisted checkpoint at round %d, want 16", cp.Round)
	}
	if info.BaseFormat != "v3-binary" {
		t.Fatalf("persisted base format %q, want v3-binary", info.BaseFormat)
	}
	// n=64 is a single slab word, so every tick crosses the half-dirty
	// threshold and compacts into a fresh base (see TestDistDeltaChain
	// for the incremental path).
	if info.Deltas != 0 {
		t.Fatalf("single-word graph persisted %d delta links, want compacted bases", info.Deltas)
	}

	resumed := distConfig(g, 3)
	resumed.Resume = cp
	res, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized || res.StabilizedRound != goldenStabRound || maskHash(res.MIS) != goldenMaskHash {
		t.Fatalf("resumed run diverged: stabilized=%v round=%d hash=%#x",
			res.Stabilized, res.StabilizedRound, maskHash(res.MIS))
	}
}

// TestDistDeltaChain pins the incremental persistence path: on a graph
// with many slab words, the sparse run's late cadence ticks dirty only
// the shrinking frontier, so the chain file must accumulate delta links
// after its base — and loading the chain must reproduce the anchor the
// coordinator held, bit-exact, as proven by resuming from it.
func TestDistDeltaChain(t *testing.T) {
	g := graph.GNPAvgDegree(2048, 6, rng.New(5))
	path := filepath.Join(t.TempDir(), "chain.ckpt")

	cfg := distConfig(g, 4)
	cfg.Sparse = beep.SparseOn
	cfg.CheckpointEvery = 4
	cfg.CheckpointPath = path
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized {
		t.Fatalf("run did not stabilize: %+v", res)
	}

	cp, info, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Deltas == 0 {
		t.Fatalf("sparse run persisted no delta links (base %d bytes, format %s)", info.BaseBytes, info.BaseFormat)
	}
	if info.TornTail {
		t.Fatal("clean shutdown left a torn delta tail")
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("loaded chain checkpoint invalid: %v", err)
	}

	// A run resumed from the loaded chain is already at (or near) the
	// fixed point and must stabilize onto the same MIS.
	resumed := distConfig(g, 3)
	resumed.Sparse = beep.SparseOn
	resumed.Resume = cp
	rres, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Stabilized || maskHash(rres.MIS) != maskHash(res.MIS) {
		t.Fatalf("chain-resumed run diverged: stabilized=%v hash=%#x want %#x",
			rres.Stabilized, maskHash(rres.MIS), maskHash(res.MIS))
	}
	t.Logf("chain: base %d bytes (%s), %d deltas / %d bytes, loaded round %d",
		info.BaseBytes, info.BaseFormat, info.Deltas, info.DeltaBytes, cp.Round)
}
