package dist

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// FaultPlan is a deterministic frame-fault schedule: each frame event
// draws from a seeded stream, so a given (plan, traffic order) produces
// the same drop/duplicate/corrupt/delay decisions every run. The
// injected faults exercise exactly the failure modes the wire layer is
// built to absorb: drops and swallowed frames surface as RPC timeouts
// (retransmission), corruption as CRC failures (resync + retransmit),
// duplicates as stale-seq or replayed-idempotent requests.
type FaultPlan struct {
	// Seed keys the fault stream (combined with a per-connection salt).
	Seed uint64
	// Drop, Dup and Corrupt are per-frame probabilities on the send
	// path; DropRecv discards received frames after decoding, modeling
	// loss of the peer's sends.
	Drop     float64
	Dup      float64
	Corrupt  float64
	DropRecv float64
	// Delay is the probability of delaying a send by a uniform duration
	// in (0, MaxDelay].
	Delay    float64
	MaxDelay time.Duration
}

// enabled reports whether the plan injects anything.
func (p FaultPlan) enabled() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Corrupt > 0 || p.DropRecv > 0 || (p.Delay > 0 && p.MaxDelay > 0)
}

// faultConn injects FaultPlan faults around a frameConn. Sends are
// serialized by the RPC layer; the mutex keeps the draw sequence
// deterministic if a caller ever overlaps them.
type faultConn struct {
	fc   *frameConn
	plan FaultPlan

	mu  sync.Mutex
	src *rng.Source
	buf []byte
}

// wrapFaults wraps fc with the plan's fault injection; a disabled plan
// returns fc unchanged. salt decorrelates connections sharing a plan.
func wrapFaults(fc *frameConn, plan FaultPlan, salt uint64) transport {
	if !plan.enabled() {
		return fc
	}
	return &faultConn{fc: fc, plan: plan, src: rng.New(plan.Seed ^ (salt * 0x9e3779b97f4a7c15))}
}

func (f *faultConn) send(fr frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	copies := 1
	if f.plan.Dup > 0 && f.src.Float64() < f.plan.Dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		if f.plan.Drop > 0 && f.src.Float64() < f.plan.Drop {
			continue // lost on the wire; the sender cannot tell
		}
		if f.plan.Delay > 0 && f.src.Float64() < f.plan.Delay {
			time.Sleep(time.Duration(f.src.Float64() * float64(f.plan.MaxDelay)))
		}
		if f.plan.Corrupt > 0 && f.src.Float64() < f.plan.Corrupt {
			f.buf = appendFrame(f.buf[:0], fr)
			f.buf[int(f.src.Uint64()%uint64(len(f.buf)))] ^= 1 << (f.src.Uint64() % 8)
			if err := f.fc.sendRaw(f.buf); err != nil {
				return err
			}
			continue
		}
		if err := f.fc.send(fr); err != nil {
			return err
		}
	}
	return nil
}

func (f *faultConn) recv(deadline time.Time) (frame, error) {
	for {
		fr, err := f.fc.recv(deadline)
		if err != nil {
			return fr, err
		}
		f.mu.Lock()
		drop := f.plan.DropRecv > 0 && f.src.Float64() < f.plan.DropRecv
		f.mu.Unlock()
		if drop {
			continue
		}
		return fr, nil
	}
}

func (f *faultConn) close() error { return f.fc.close() }
