package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/beep"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/graph"
)

// Typed failure modes, distinguishable with errors.Is/As. The
// coordinator never hangs: every wait is bounded by a timeout, and
// every unbounded condition (a worker that cannot be revived, a budget
// that runs out) surfaces as one of these.
var (
	// ErrWorkerLost reports a partition that could not be revived:
	// respawn budget exhausted, the spawner failed, or a respawned
	// worker never joined.
	ErrWorkerLost = errors.New("dist: worker lost permanently")
	// ErrBudget reports a stabilization run that exhausted its round
	// budget.
	ErrBudget = errors.New("dist: round budget exhausted without stabilization")
	// ErrCanceled reports a run stopped by its context.
	ErrCanceled = errors.New("dist: run canceled")
)

// WorkerError is a worker-reported protocol or execution fault (a
// contained kernel panic, a desynchronized request, a malformed
// payload). It is deterministic — replaying from a checkpoint would
// reproduce it — so the coordinator fails the run instead of respawning
// into the same fault.
type WorkerError struct {
	Part int
	Msg  string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dist: worker %d fault: %s", e.Part, e.Msg)
}

// Config describes one distributed run.
type Config struct {
	Graph    *graph.Graph
	Protocol string // core registry name, e.g. "alg1-known-delta"
	Seed     uint64
	Init     core.InitMode // default InitRandom; ignored with Resume
	// Partitions is the worker count (clamped to [1, n]).
	Partitions int
	// FixedRounds > 0 runs to exactly that round instead of to
	// stabilization.
	FixedRounds int
	// MaxRounds bounds a stabilization run (0 = default budget).
	MaxRounds int
	// CheckpointEvery is the synchronized-checkpoint cadence in rounds
	// (0 = every 8: recovery needs a checkpoint to rewind to).
	CheckpointEvery int
	// CheckpointPath, when set, persists each assembled checkpoint
	// atomically.
	CheckpointPath string
	// Resume restores this checkpoint instead of applying Init.
	Resume *beep.Checkpoint
	// Sparse selects the round exchange. SparseAuto (the default) uses
	// the delta protocol whenever the protocol's kernels support it;
	// SparseOn fails setup if they don't; SparseOff forces the dense
	// position-implicit word tables.
	Sparse beep.SparseMode

	// Spawner launches partition workers; required.
	Spawner Spawner
	// Listen is the coordinator's listen address (default 127.0.0.1:0).
	Listen string

	// PhaseTimeout is the initial per-RPC reply window (default 2s);
	// each retransmission doubles it up to MaxBackoff (default 8s),
	// bounded by MaxAttempts (default 4) — the capped-exponential-
	// backoff retransmission ladder. JoinTimeout bounds waiting for a
	// (re)spawned worker's join (default 10s). HeartbeatEvery paces
	// idle-connection pings (default 1s; negative disables).
	PhaseTimeout   time.Duration
	MaxBackoff     time.Duration
	MaxAttempts    int
	JoinTimeout    time.Duration
	HeartbeatEvery time.Duration
	// MaxRespawns bounds worker revivals across the run (0 = 3 per
	// partition); exceeding it fails the run with ErrWorkerLost.
	MaxRespawns int
	// RoundDelay paces the round loop (smoke tests and demos widen the
	// kill window with it).
	RoundDelay time.Duration

	// Fault injects the plan on the coordinator's side of every worker
	// connection.
	Fault FaultPlan

	// Observer, when set, receives each completed round's combined
	// trace hash (re-executed rounds fire again with identical hashes).
	Observer func(round int, hash uint64)
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Result reports a distributed run.
type Result struct {
	// Rounds is the number of executed rounds reflected in the final
	// state. A stabilization run detects legality via the quiescent
	// round that follows it, so Rounds == StabilizedRound + 1 there.
	Rounds int
	// StabilizedRound is the first round after which the configuration
	// is a verified MIS (-1 if the run did not stabilize).
	StabilizedRound int
	Stabilized      bool
	MIS             []bool
	MISSize         int
	// Respawns counts worker revivals (0 in a fault-free run).
	Respawns int
	// RoundHashes[i] is the combined per-partition trace digest of
	// round initialRound+1+i (see CombineDigests); recovered rounds
	// overwrite their slot with — by determinism — the same value.
	RoundHashes []uint64
	// LastCheckpoint is the most recent synchronized checkpoint.
	LastCheckpoint *beep.Checkpoint
	// Sparse reports whether the run used the delta exchange.
	Sparse bool
	// WireBytes totals the logical payload bytes of the per-round signal
	// exchange (emit replies + deliver requests, the two directions that
	// scale with the graph); retransmissions are not counted. The delta
	// exchange shrinks this to the changed-word traffic.
	WireBytes int64
}

// client is the coordinator's handle on one worker connection: the RPC
// retransmission ladder, the heartbeat, and the death record.
type client struct {
	part int
	t    transport

	phaseTimeout time.Duration
	maxBackoff   time.Duration
	maxAttempts  int

	mu   sync.Mutex // serializes RPCs (phases vs heartbeat)
	seq  uint32
	dead atomic.Bool

	causeMu sync.Mutex
	cause   error

	stopHB chan struct{}
}

func (c *client) markDead(err error) {
	c.causeMu.Lock()
	if c.cause == nil {
		c.cause = err
	}
	c.causeMu.Unlock()
	if c.dead.CompareAndSwap(false, true) {
		c.t.close() // wake any blocked read
	}
}

func (c *client) deadCause() error {
	c.causeMu.Lock()
	defer c.causeMu.Unlock()
	if c.cause == nil {
		return fmt.Errorf("dist: worker %d dead", c.part)
	}
	return c.cause
}

// rpc sends a request and waits for the matching reply, retransmitting
// under the capped exponential backoff ladder. Replies are matched by
// sequence number against every attempt of this call, so a late reply
// to an earlier retransmission still completes the RPC. A worker fault
// frame surfaces as *WorkerError; anything else that exhausts the
// ladder (or breaks the connection) marks the client dead.
func (c *client) rpc(req, want frameType, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpcLocked(req, want, payload, c.maxAttempts)
}

func (c *client) rpcLocked(req, want frameType, payload []byte, attempts int) ([]byte, error) {
	if c.dead.Load() {
		return nil, c.deadCause()
	}
	timeout := c.phaseTimeout
	seqs := make(map[uint32]bool, attempts)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		c.seq++
		seq := c.seq
		seqs[seq] = true
		if err := c.t.send(frame{Type: req, Seq: seq, Payload: payload}); err != nil {
			err = fmt.Errorf("dist: worker %d: send: %w", c.part, err)
			c.markDead(err)
			return nil, err
		}
		deadline := time.Now().Add(timeout)
		for {
			f, err := c.t.recv(deadline)
			if err != nil {
				if isTimeout(err) {
					lastErr = err
					break // retransmit with a wider window
				}
				err = fmt.Errorf("dist: worker %d: recv: %w", c.part, err)
				c.markDead(err)
				return nil, err
			}
			if !seqs[f.Seq] {
				continue // stale reply from an older RPC
			}
			if f.Type == fErr {
				return nil, &WorkerError{Part: c.part, Msg: string(f.Payload)}
			}
			if f.Type != want {
				continue
			}
			return f.Payload, nil
		}
		timeout *= 2
		if timeout > c.maxBackoff {
			timeout = c.maxBackoff
		}
	}
	err := fmt.Errorf("dist: worker %d: no reply after %d attempts (last: %v)", c.part, attempts, lastErr)
	c.markDead(err)
	return nil, err
}

// heartbeat pings the worker whenever the connection is idle, so death
// between rounds (or during round pacing) is detected before the next
// phase blocks on it.
func (c *client) heartbeat(every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-ticker.C:
			if c.dead.Load() {
				return
			}
			if !c.mu.TryLock() {
				continue // an RPC is in flight; it is the liveness probe
			}
			_, err := c.rpcLocked(fPing, fPong, nil, 2)
			c.mu.Unlock()
			if err != nil {
				var wf *WorkerError
				if !errors.As(err, &wf) {
					return // markDead already recorded the cause
				}
			}
		}
	}
}

func (c *client) close() {
	if c.stopHB != nil {
		select {
		case <-c.stopHB:
		default:
			close(c.stopHB)
		}
	}
	c.t.close()
}

// joinEvent is one accepted worker handshake.
type joinEvent struct {
	part int
	fc   *frameConn
}

// coordinator is the per-run state of Run.
type coordinator struct {
	cfg      Config
	logf     func(string, ...any)
	g        *graph.Graph
	table    *partTable
	channels int
	two      bool
	token    string
	addr     string

	ln      net.Listener
	joinCh  chan joinEvent
	clients []*client
	// replies holds the current broadcast's per-partition payloads.
	replies [][]byte

	cfgMsgs [][]byte // per-partition fConfig payloads

	// merged per-channel sender word arrays of the current round.
	merged [2][]uint64

	// Sparse-exchange state (nil/false in dense mode). cur[p][c] is
	// partition p's last-uploaded value of every word; owners[wi] lists
	// the partitions whose range overlaps word wi (2 on unaligned
	// boundaries), so a changed upload re-merges the word by OR over
	// owners; dirty[c] is the bitset of merged words changed since the
	// last deliver; needSet[p] is partition p's need set as a bitset for
	// the dirty ∩ need filtering of its deliver delta.
	sparse  bool
	cur     [][2][]uint64
	owners  [][]int32
	dirty   [2][]uint64
	needSet [][]uint64
	// downWi/downVal are the deliver-payload scratch lists, reused
	// across partitions and rounds.
	downWi  [2][]int32
	downVal [2][]uint64

	// lastCP is the recovery anchor. Between checkpoint-cadence ticks
	// it is patched vertex-granularly from worker state deltas and left
	// UNSEALED (lastCPSealed false) — resealing is an O(n) pass the
	// delta path exists to avoid — and sealed lazily wherever the
	// checkpoint escapes: the fRestore payload, a base write, and the
	// final Result. lastCPBytes caches the encoded fRestore payload
	// (nil after a patch; regenerated on demand).
	lastCP       *beep.Checkpoint
	lastCPBytes  []byte
	lastCPSealed bool
	// chain persists the checkpoint to cfg.CheckpointPath as a base
	// snapshot plus delta links (lazily created on the first cadence
	// tick); totalWords feeds its base-vs-delta policy.
	chain      *ckpt.Writer
	totalWords int

	res *Result
}

// Run executes one distributed simulation: spawns the partition
// workers, drives the per-round emit/deliver exchange, detects
// stabilization, and survives worker crashes by respawning and
// restoring everyone from the last synchronized checkpoint (bit-exact
// by determinism). See Config for the failure-handling knobs.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("dist: nil graph")
	}
	if cfg.Spawner == nil {
		return nil, fmt.Errorf("dist: no spawner configured")
	}
	n := cfg.Graph.N()
	if n == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	if cfg.FixedRounds < 0 || cfg.MaxRounds < 0 || cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("dist: negative budget (fixedRounds=%d maxRounds=%d checkpointEvery=%d)",
			cfg.FixedRounds, cfg.MaxRounds, cfg.CheckpointEvery)
	}
	applyDefaults(&cfg)
	co := &coordinator{cfg: cfg, g: cfg.Graph, res: &Result{StabilizedRound: -1}}
	co.logf = cfg.Logf
	if co.logf == nil {
		co.logf = func(string, ...any) {}
	}
	if err := co.setup(ctx); err != nil {
		return nil, err
	}
	defer co.shutdown()
	if err := co.loop(ctx); err != nil {
		return nil, err
	}
	return co.res, nil
}

func applyDefaults(cfg *Config) {
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.PhaseTimeout <= 0 {
		cfg.PhaseTimeout = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 4 * cfg.PhaseTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 10 * time.Second
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.MaxRespawns == 0 {
		cfg.MaxRespawns = 3 * cfg.Partitions
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Init == 0 {
		cfg.Init = core.InitRandom
	}
}

// setup validates the run against a local reference network, captures
// the initial checkpoint, builds the partition table, starts the
// listener, and brings every worker to the restored start state.
func (co *coordinator) setup(ctx context.Context) error {
	cfg := &co.cfg
	proto, err := core.ProtocolByName(cfg.Protocol)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	co.channels = proto.Channels()
	// The reference network exists only to validate the configuration
	// (the Flat engine requires the kernels Partition needs) and to
	// capture the initial checkpoint, whose auxiliary stream states
	// seed every later assembled checkpoint. It never steps.
	refNet, err := beep.NewNetwork(cfg.Graph, proto, cfg.Seed, beep.WithEngine(beep.Flat))
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	le, ok := refNet.BulkState().(core.LevelExporter)
	if !ok {
		refNet.Close()
		return fmt.Errorf("dist: protocol %s does not export levels", cfg.Protocol)
	}
	co.two = le.TwoChannel()
	// Sparse probe: the delta exchange needs the activity-gated kernels
	// on every worker, which a throwaway partition of the reference
	// network detects. (EnableSparse resets heard values the reference
	// never reads; the checkpoint below carries machines and streams
	// only.)
	if cfg.Sparse != beep.SparseOff {
		probe, perr := refNet.Partition(0, co.g.N())
		if perr == nil {
			perr = probe.EnableSparse()
		}
		if perr != nil {
			if cfg.Sparse == beep.SparseOn {
				refNet.Close()
				return fmt.Errorf("dist: sparse exchange forced but unavailable: %w", perr)
			}
			co.logf("sparse exchange unavailable, falling back to dense rounds: %v", perr)
		} else {
			co.sparse = true
		}
	}
	co.res.Sparse = co.sparse
	if cfg.Resume != nil {
		if len(cfg.Resume.Adversaries) > 0 || cfg.Resume.NoiseLoss != 0 || cfg.Resume.NoiseFalse != 0 || cfg.Resume.SleepP != 0 {
			refNet.Close()
			return fmt.Errorf("dist: checkpoint carries fault models (noise/sleep/adversaries), which the distributed engine does not run")
		}
		if err := refNet.Restore(cfg.Resume); err != nil {
			refNet.Close()
			return fmt.Errorf("dist: resume: %w", err)
		}
		// Clone: the anchor is patched in place between checkpoints and
		// must never mutate the caller's checkpoint.
		co.lastCP = cloneCheckpoint(cfg.Resume)
	} else {
		if err := core.ApplyInit(refNet, cfg.Init); err != nil {
			refNet.Close()
			return fmt.Errorf("dist: %w", err)
		}
		cp, err := refNet.Checkpoint()
		if err != nil {
			refNet.Close()
			return fmt.Errorf("dist: initial checkpoint: %w", err)
		}
		co.lastCP = cp
	}
	refNet.Close()
	co.lastCPSealed = true
	co.totalWords = (co.g.N() + 63) / 64
	co.lastCPBytes, err = encodeCheckpoint(co.lastCP)
	if err != nil {
		return err
	}

	parts := cfg.Partitions
	if parts > co.g.N() {
		parts = co.g.N()
	}
	co.table = buildPartTable(co.g, computeRanges(co.g.N(), parts))
	cfg.Partitions = len(co.table.ranges)
	for c := 0; c < co.channels; c++ {
		co.merged[c] = make([]uint64, co.table.words)
	}
	if co.sparse {
		words := co.table.words
		mw := (words + 63) / 64
		co.cur = make([][2][]uint64, len(co.table.ranges))
		for p := range co.cur {
			for c := 0; c < co.channels; c++ {
				co.cur[p][c] = make([]uint64, words)
			}
		}
		co.owners = make([][]int32, words)
		for p, r := range co.table.ranges {
			if r[0] >= r[1] {
				continue
			}
			for wi := r[0] >> 6; wi <= (r[1]-1)>>6; wi++ {
				co.owners[wi] = append(co.owners[wi], int32(p))
			}
		}
		co.needSet = make([][]uint64, len(co.table.ranges))
		for p, need := range co.table.need {
			ns := make([]uint64, mw)
			for _, wi := range need {
				ns[wi>>6] |= 1 << uint(wi&63)
			}
			co.needSet[p] = ns
		}
		for c := 0; c < co.channels; c++ {
			co.dirty[c] = make([]uint64, mw)
		}
	}

	var gbuf bytes.Buffer
	if err := graph.WriteEdgeList(&gbuf, co.g); err != nil {
		return fmt.Errorf("dist: serialize graph: %w", err)
	}
	co.token = fmt.Sprintf("run-%x", cfg.Seed*0x9e3779b97f4a7c15+uint64(co.g.N()))
	co.cfgMsgs = make([][]byte, len(co.table.ranges))
	for p, r := range co.table.ranges {
		msg, err := json.Marshal(configMsg{
			Protocol: cfg.Protocol, Seed: cfg.Seed, Channels: co.channels,
			Graph: gbuf.Bytes(), Lo: r[0], Hi: r[1],
			Send: co.table.send[p], Need: co.table.need[p],
			Sparse: co.sparse,
		})
		if err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		co.cfgMsgs[p] = msg
	}

	co.ln, err = net.Listen("tcp", cfg.Listen)
	if err != nil {
		return fmt.Errorf("dist: listen: %w", err)
	}
	co.addr = co.ln.Addr().String()
	co.joinCh = make(chan joinEvent, 4*len(co.table.ranges))
	go co.acceptLoop()

	co.clients = make([]*client, len(co.table.ranges))
	want := make(map[int]bool, len(co.clients))
	for p := range co.clients {
		want[p] = true
		if err := cfg.Spawner.Spawn(ctx, p, co.addr, co.token); err != nil {
			return fmt.Errorf("%w: partition %d: spawn: %v", ErrWorkerLost, p, err)
		}
	}
	err = co.connectParts(want)
	if err == nil {
		err = co.restoreAll()
	}
	if err == nil {
		return nil
	}
	if !errors.Is(err, errNeedRecovery) {
		return err
	}
	// A worker died during initial config/restore: the recovery path
	// handles it like any later death (it re-runs both steps).
	return co.recoverWorkers(ctx)
}

// acceptLoop admits worker connections: each must lead with a valid
// join within the handshake window or is dropped.
func (co *coordinator) acceptLoop() {
	for {
		conn, err := co.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			fc := newFrameConn(conn)
			f, err := fc.recv(time.Now().Add(co.cfg.JoinTimeout))
			if err != nil || f.Type != fJoin {
				conn.Close()
				return
			}
			var jm joinMsg
			if json.Unmarshal(f.Payload, &jm) != nil || jm.Token != co.token ||
				jm.Part < 0 || jm.Part >= len(co.table.ranges) {
				conn.Close()
				return
			}
			co.joinCh <- joinEvent{part: jm.Part, fc: fc}
		}()
	}
}

// connectParts waits for the wanted partitions to join, builds their
// clients, and configures them. Joins for unwanted partitions (stale
// duplicates) are dropped.
func (co *coordinator) connectParts(want map[int]bool) error {
	deadline := time.After(co.cfg.JoinTimeout)
	pending := make(map[int]bool, len(want))
	for p := range want {
		pending[p] = true
	}
	for len(pending) > 0 {
		select {
		case ev := <-co.joinCh:
			if !pending[ev.part] {
				ev.fc.close()
				continue
			}
			delete(pending, ev.part)
			c := &client{
				part:         ev.part,
				t:            wrapFaults(ev.fc, co.cfg.Fault, uint64(ev.part)+1),
				phaseTimeout: co.cfg.PhaseTimeout,
				maxBackoff:   co.cfg.MaxBackoff,
				maxAttempts:  co.cfg.MaxAttempts,
				stopHB:       make(chan struct{}),
			}
			co.clients[ev.part] = c
			if co.cfg.HeartbeatEvery > 0 {
				go c.heartbeat(co.cfg.HeartbeatEvery)
			}
		case <-deadline:
			for p := range pending {
				return fmt.Errorf("%w: partition %d never joined within %v", ErrWorkerLost, p, co.cfg.JoinTimeout)
			}
		}
	}
	// Configure the fresh joins.
	errs := co.broadcast(want, fConfig, fConfigOK, func(p int) []byte { return co.cfgMsgs[p] })
	return co.classify(errs)
}

// broadcast runs one RPC against the selected partitions concurrently
// and returns the per-partition errors (nil entries for the rest).
// Replies land in the out slice when non-nil.
func (co *coordinator) broadcast(sel map[int]bool, req, want frameType, payload func(p int) []byte) []error {
	errs := make([]error, len(co.clients))
	co.replies = make([][]byte, len(co.clients))
	var wg sync.WaitGroup
	for p, c := range co.clients {
		if sel != nil && !sel[p] {
			continue
		}
		wg.Add(1)
		go func(p int, c *client) {
			defer wg.Done()
			if c == nil {
				errs[p] = fmt.Errorf("dist: worker %d has no connection", p)
				return
			}
			out, err := c.rpc(req, want, payload(p))
			if err != nil {
				errs[p] = err
				return
			}
			co.replies[p] = out
		}(p, c)
	}
	wg.Wait()
	return errs
}

// classify folds per-partition RPC errors: a worker fault aborts the
// run (deterministic — a respawn would replay into it); dead workers
// surface as errNeedRecovery for the caller's recovery path.
func (co *coordinator) classify(errs []error) error {
	var deadParts []int
	for p, err := range errs {
		if err == nil {
			continue
		}
		var wf *WorkerError
		if errors.As(err, &wf) {
			return wf
		}
		deadParts = append(deadParts, p)
	}
	if deadParts != nil {
		return errNeedRecovery
	}
	return nil
}

// errNeedRecovery is the internal signal that ≥1 worker died and the
// round loop must run the recovery path. Never returned from Run.
var errNeedRecovery = errors.New("dist: worker death, recovery required")

// restoreAll rewinds every worker to the last synchronized checkpoint.
// The coordinator's exchange baselines are zeroed in the same breath:
// every worker's fRestore handler runs ResetSparse, so both sides of
// the delta protocol restart from the all-zero word state.
func (co *coordinator) restoreAll() error {
	co.resetExchange()
	payload, err := co.restorePayload()
	if err != nil {
		return err
	}
	errs := co.broadcast(nil, fRestore, fRestoreOK, func(int) []byte { return payload })
	return co.classify(errs)
}

// restorePayload returns the encoded fRestore payload of the current
// anchor, sealing and re-encoding it if delta patches invalidated the
// cache.
func (co *coordinator) restorePayload() ([]byte, error) {
	if co.lastCPBytes == nil {
		co.sealLastCP()
		b, err := encodeCheckpoint(co.lastCP)
		if err != nil {
			return nil, err
		}
		co.lastCPBytes = b
	}
	return co.lastCPBytes, nil
}

// sealLastCP reseals the anchor after delta patches (no-op when already
// sealed).
func (co *coordinator) sealLastCP() {
	if !co.lastCPSealed {
		co.lastCP.Seal()
		co.lastCPSealed = true
	}
}

// cloneCheckpoint copies a checkpoint so in-place anchor patches never
// touch the source. Machine rows are shared: patches replace rows, they
// never mutate one.
func cloneCheckpoint(cp *beep.Checkpoint) *beep.Checkpoint {
	c := *cp
	c.Machines = append([][]int64(nil), cp.Machines...)
	c.Streams = append([][4]uint64(nil), cp.Streams...)
	c.Adversaries = append([]uint8(nil), cp.Adversaries...)
	return &c
}

// resetExchange zeroes the merged words and, in sparse mode, every
// per-partition upload baseline and the dirty set.
func (co *coordinator) resetExchange() {
	for c := 0; c < co.channels; c++ {
		for i := range co.merged[c] {
			co.merged[c][i] = 0
		}
		if co.sparse {
			for i := range co.dirty[c] {
				co.dirty[c][i] = 0
			}
			for p := range co.cur {
				cw := co.cur[p][c]
				for i := range cw {
					cw[i] = 0
				}
			}
		}
	}
}

// recoverWorkers revives every dead partition and rewinds the run to
// the last synchronized checkpoint. Bounded: each revival consumes the
// respawn budget, and a partition that cannot come back (spawn failure,
// join timeout, budget exhausted) fails the run with ErrWorkerLost.
func (co *coordinator) recoverWorkers(ctx context.Context) error {
	for {
		want := make(map[int]bool)
		for p, c := range co.clients {
			if c == nil || c.dead.Load() {
				want[p] = true
			}
		}
		if len(want) == 0 {
			return nil
		}
		for p := range want {
			co.res.Respawns++
			cause := error(nil)
			if c := co.clients[p]; c != nil {
				cause = c.deadCause()
				c.close()
				co.clients[p] = nil
			}
			if co.res.Respawns > co.cfg.MaxRespawns {
				return fmt.Errorf("%w: partition %d: respawn budget (%d) exhausted; last cause: %v",
					ErrWorkerLost, p, co.cfg.MaxRespawns, cause)
			}
			co.logf("recovering partition %d (respawn %d, cause: %v)", p, co.res.Respawns, cause)
			if err := co.cfg.Spawner.Spawn(ctx, p, co.addr, co.token); err != nil {
				return fmt.Errorf("%w: partition %d: respawn: %v", ErrWorkerLost, p, err)
			}
		}
		if err := co.connectParts(want); err != nil {
			if errors.Is(err, errNeedRecovery) {
				continue // a fresh join died during config: go again
			}
			return err
		}
		if err := co.restoreAll(); err != nil {
			if errors.Is(err, errNeedRecovery) {
				continue // a survivor died during restore: go again
			}
			return err
		}
		co.logf("recovered: all %d workers restored at round %d", len(co.clients), co.lastCP.Round)
		return nil
	}
}

// shutdown tears the run down: best-effort byes, then close everything.
func (co *coordinator) shutdown() {
	for _, c := range co.clients {
		if c == nil || c.dead.Load() {
			continue
		}
		c.mu.Lock()
		c.seq++
		c.t.send(frame{Type: fShutdown, Seq: c.seq})
		c.mu.Unlock()
	}
	for _, c := range co.clients {
		if c != nil {
			c.close()
		}
	}
	if co.ln != nil {
		co.ln.Close()
	}
	if co.chain != nil {
		co.chain.Close()
	}
}
