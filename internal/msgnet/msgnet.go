// Package msgnet implements a synchronous message-passing network in the
// style of the LOCAL/CONGEST models referenced by the paper's
// introduction: in each round every vertex broadcasts one small message
// to all neighbors and then receives the multiset of its neighbors'
// messages.
//
// It exists as the substrate for the Luby baseline, which needs to
// exchange O(log n)-bit values — strictly more communication per round
// than a beep — so that the experiment tables can put the beeping
// algorithms' round counts next to a classical message-passing MIS
// algorithm on the same topologies.
package msgnet

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Msg is one broadcast message: a small tagged value, matching the
// CONGEST restriction of O(log n) bits per edge per round.
type Msg struct {
	Kind uint8
	Val  uint64
}

// None is the absent message: vertices broadcasting None stay silent
// this round and do not appear in neighbors' inboxes.
var None = Msg{}

// IsNone reports whether m is the absent message.
func (m Msg) IsNone() bool { return m == None }

// Node is the per-vertex state machine of a message-passing protocol.
type Node interface {
	// Broadcast returns the message to send to all neighbors this round
	// (None for silence), consuming randomness only from src.
	Broadcast(src *rng.Source) Msg
	// Receive delivers this round's own message and the messages of the
	// neighbors that spoke, in neighbor order. The slice is reused and
	// must not be retained.
	Receive(own Msg, inbox []Msg)
}

// Protocol creates the node for each vertex.
type Protocol interface {
	NewNode(v int, g *graph.Graph) Node
}

// Network executes a protocol on a graph, mirroring the structure of
// the beeping simulator (per-vertex split streams, synchronous rounds).
type Network struct {
	g     *graph.Graph
	nodes []Node
	srcs  []*rng.Source
	sent  []Msg
	round int
	inbox []Msg
}

// NewNetwork instantiates proto on every vertex of g with per-vertex
// streams derived from seed.
func NewNetwork(g *graph.Graph, proto Protocol, seed uint64) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("msgnet: nil graph")
	}
	n := g.N()
	net := &Network{
		g:     g,
		nodes: make([]Node, n),
		srcs:  make([]*rng.Source, n),
		sent:  make([]Msg, n),
	}
	root := rng.New(seed)
	for v := 0; v < n; v++ {
		net.nodes[v] = proto.NewNode(v, g)
		net.srcs[v] = root.Split(uint64(v))
	}
	return net, nil
}

// Graph returns the topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Round returns the number of completed rounds.
func (n *Network) Round() int { return n.round }

// Node returns the state machine of vertex v for harness inspection.
func (n *Network) Node(v int) Node { return n.nodes[v] }

// N returns the number of vertices.
func (n *Network) N() int { return len(n.nodes) }

// Step executes one synchronous round.
func (n *Network) Step() {
	for v, node := range n.nodes {
		n.sent[v] = node.Broadcast(n.srcs[v])
	}
	for v, node := range n.nodes {
		n.inbox = n.inbox[:0]
		for _, u := range n.g.Neighbors(v) {
			if !n.sent[u].IsNone() {
				n.inbox = append(n.inbox, n.sent[u])
			}
		}
		node.Receive(n.sent[v], n.inbox)
	}
	n.round++
}

// Run executes rounds until stop returns true or maxRounds have passed,
// with the same contract as beep.Network.Run.
func (n *Network) Run(maxRounds int, stop func() bool) (rounds int, ok bool) {
	if stop != nil && stop() {
		return 0, true
	}
	for r := 0; r < maxRounds; r++ {
		n.Step()
		if stop != nil && stop() {
			return r + 1, true
		}
	}
	return maxRounds, stop == nil
}
