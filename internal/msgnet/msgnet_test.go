package msgnet

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// echoProtocol broadcasts a constant and records its inbox sizes.
type echoProtocol struct{ value uint64 }

func (p echoProtocol) NewNode(int, *graph.Graph) Node {
	return &echoNode{value: p.value}
}

type echoNode struct {
	value     uint64
	inboxLens []int
	heardVals []uint64
	silent    bool
}

func (n *echoNode) Broadcast(*rng.Source) Msg {
	if n.silent {
		return None
	}
	return Msg{Kind: 1, Val: n.value}
}

func (n *echoNode) Receive(_ Msg, inbox []Msg) {
	n.inboxLens = append(n.inboxLens, len(inbox))
	for _, m := range inbox {
		n.heardVals = append(n.heardVals, m.Val)
	}
}

func TestNewNetworkNilGraph(t *testing.T) {
	if _, err := NewNetwork(nil, echoProtocol{}, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestBroadcastReachesExactlyNeighbors(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1..3
	net, err := NewNetwork(g, echoProtocol{value: 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.Step()
	center := net.Node(0).(*echoNode)
	if center.inboxLens[0] != 3 {
		t.Fatalf("center inbox %d, want 3", center.inboxLens[0])
	}
	leaf := net.Node(2).(*echoNode)
	if leaf.inboxLens[0] != 1 {
		t.Fatalf("leaf inbox %d, want 1", leaf.inboxLens[0])
	}
	for _, v := range leaf.heardVals {
		if v != 7 {
			t.Fatalf("leaf heard %d", v)
		}
	}
}

func TestNoneIsInvisible(t *testing.T) {
	g := graph.Path(3)
	net, err := NewNetwork(g, echoProtocol{value: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.Node(1).(*echoNode).silent = true
	net.Step()
	end := net.Node(0).(*echoNode)
	if end.inboxLens[0] != 0 {
		t.Fatalf("silent neighbor delivered %d messages", end.inboxLens[0])
	}
	mid := net.Node(1).(*echoNode)
	if mid.inboxLens[0] != 2 {
		t.Fatalf("silent vertex still hears: got %d, want 2", mid.inboxLens[0])
	}
}

func TestRunContract(t *testing.T) {
	g := graph.Cycle(5)
	net, err := NewNetwork(g, echoProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rounds, ok := net.Run(4, nil)
	if rounds != 4 || !ok || net.Round() != 4 {
		t.Fatalf("Run: %d %v %d", rounds, ok, net.Round())
	}
	rounds, ok = net.Run(4, func() bool { return true })
	if rounds != 0 || !ok {
		t.Fatalf("pre-satisfied: %d %v", rounds, ok)
	}
	rounds, ok = net.Run(3, func() bool { return false })
	if rounds != 3 || ok {
		t.Fatalf("exhausted: %d %v", rounds, ok)
	}
}

func TestIsNone(t *testing.T) {
	if !None.IsNone() || (Msg{Kind: 1}).IsNone() {
		t.Fatal("IsNone wrong")
	}
}
