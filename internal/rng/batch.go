package rng

// Batch is an amortized sampler of Bernoulli(2^-l) trials, the only
// distribution the paper's algorithms draw from. A single uniform
// 64-bit word contains ⌊64/l⌋ independent l-bit fields, and each field
// is all-zero with probability exactly 2^-l — so one generator call can
// service up to ⌊64/l⌋ trials at level l instead of one. The sampler
// keeps one partially consumed word per level, refilled on demand from
// its backing stream.
//
// Every trial drawn from a Batch has exactly the distribution of
// Source.Bernoulli2Pow (see TestBatchChiSquared, which certifies this
// against both the analytic probability and the per-vertex path).
// What a Batch does NOT preserve is the *draw sequence*: trials at
// different levels interleave on one shared stream instead of each
// vertex consuming its private stream, so executions sampled through a
// Batch are statistically — not bit-for-bit — equivalent to exact ones.
// The flat engine therefore uses a Batch only when explicitly enabled
// (beep.WithBatchedSampling), never on the default trace-equivalent
// path.
//
// The zero value is not usable; construct with NewBatch.
type Batch struct {
	src Source
	// word[l] holds the unconsumed bits of the current 64-bit draw for
	// level l; rem[l] counts the l-bit trial fields still available in
	// it. Index 0 is unused (l <= 0 succeeds with probability 1 and
	// consumes no randomness), indexes beyond 64 take the multi-word
	// slow path.
	word [65]uint64
	rem  [65]uint8
}

// NewBatch returns a sampler backed by a dedicated stream seeded from
// seed (via the same splitmix64 procedure as New).
func NewBatch(seed uint64) *Batch {
	b := &Batch{}
	b.Reseed(seed)
	return b
}

// Reseed resets the sampler to its initial state for the given seed,
// discarding all partially consumed words; equivalent to NewBatch(seed)
// but allocation-free.
func (b *Batch) Reseed(seed uint64) {
	b.src.Reseed(seed)
	for i := range b.word {
		b.word[i] = 0
		b.rem[i] = 0
	}
}

// Bernoulli2Pow reports a Bernoulli trial succeeding with probability
// exactly min(2^-l, 1), amortizing ⌊64/l⌋ trials per generator call for
// 1 <= l <= 64. Levels above 64 fall back to the exact multi-word scan
// of Source.Bernoulli2Pow on the sampler's stream (they cannot share a
// word, and at probability <= 2^-65 they are vanishingly rare anyway).
func (b *Batch) Bernoulli2Pow(l int) bool {
	if l <= 0 {
		return true
	}
	if l > 64 {
		return b.src.Bernoulli2Pow(l)
	}
	if b.rem[l] == 0 {
		b.word[l] = b.src.Uint64()
		b.rem[l] = uint8(64 / l)
	}
	b.rem[l]--
	var field uint64
	if l == 64 {
		field = b.word[l]
		b.word[l] = 0
	} else {
		field = b.word[l] & (1<<uint(l) - 1)
		b.word[l] >>= uint(l)
	}
	return field == 0
}
