// Package rng provides deterministic, splittable pseudo-random number
// generation for the beeping-model simulator.
//
// Every vertex in a simulated network owns an independent stream derived
// from a single root seed, so executions are exactly reproducible across
// runs and across execution engines (sequential and concurrent), and two
// engines given the same seed consume the same random words per vertex.
//
// The generator is xoshiro256** seeded via splitmix64, a widely used
// combination with good statistical quality and a tiny state. The package
// also provides exact sampling of Bernoulli(2^-l) events, which is the
// only distribution the paper's algorithms draw from.
package rng

import "math/bits"

// splitMix64 advances a splitmix64 state and returns the next output.
// It is used for seeding and for deriving independent child streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo-random generator.
//
// The zero value is NOT a valid source; construct with New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, following the
// reference seeding procedure recommended by the xoshiro authors.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initializes the receiver exactly as New(seed) would,
// without allocating: after the call the receiver's stream is
// indistinguishable from a freshly constructed Source. It is the
// building block of allocation-free network re-seeding (replication
// pools reuse one Source value per vertex across trials).
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = splitMix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which
	// is the one fixed point of the generator.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives the i-th child stream of s without perturbing s.
// Children with distinct indices have (with overwhelming probability)
// non-overlapping streams because each is re-seeded through splitmix64
// with a distinct derived seed.
func (s *Source) Split(i uint64) *Source {
	child := &Source{}
	s.SplitInto(i, child)
	return child
}

// SplitInto seeds dst with the i-th child stream of s, the
// allocation-free form of Split: dst ends in exactly the state
// Split(i) would have returned.
func (s *Source) SplitInto(i uint64, dst *Source) {
	// Mix the parent state and the child index into a fresh seed.
	seed := s.s[0] ^ bits.RotateLeft64(s.s[2], 17) ^ (i * 0xd1342543de82ef95)
	dst.Reseed(seed)
}

// State returns the generator's internal state for checkpointing.
func (s *Source) State() [4]uint64 { return s.s }

// SetState restores a state captured with State. Restoring the state of
// another Source makes the two streams identical from that point on.
func (s *Source) SetState(state [4]uint64) { s.s = state }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9

	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)

	return result
}

// Int63 returns a non-negative 63-bit integer. It exists so a Source can
// back a math/rand.Rand where convenient in tests and tools.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed is a no-op; Source is seeded at construction. It is provided so a
// *Source satisfies math/rand.Source64 in tests and tools.
func (s *Source) Seed(int64) {}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// the contract of math/rand.Intn; callers in this module only pass
// positive n derived from validated graph sizes.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless method with a rejection step to remove modulo bias.
func (s *Source) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), bound)
		}
	}
	return hi
}

// Bernoulli2Pow reports a Bernoulli trial that succeeds with probability
// exactly min(2^-l, 1).
//
// For l <= 0 it always returns true (probability clamped to 1), matching
// the beeping probability p_t(v) = min{2^-l, 1} of Algorithm 1. For
// 1 <= l it consumes ceil(l/64) words in the worst case: success requires
// l consecutive uniform bits to all be zero.
func (s *Source) Bernoulli2Pow(l int) bool {
	if l <= 0 {
		return true
	}
	for l > 64 {
		if s.Uint64() != 0 {
			return false
		}
		l -= 64
	}
	// Success iff the top l bits of a uniform word are all zero, an event
	// of probability exactly 2^-l.
	return s.Uint64()>>(64-uint(l)) == 0
}

// Coin reports a fair coin flip (probability 1/2).
func (s *Source) Coin() bool {
	return s.Uint64()>>63 == 0
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
