package rng

import (
	"testing"
)

// TestBatchChiSquared certifies the amortized sampler against the
// analytic success probability 2^-l AND against the exact per-vertex
// path, level by level: both samplers' success counts must pass a
// two-bin chi-squared test at a threshold far beyond any plausible
// sampling fluctuation (χ² ≥ 28 has p < 1e-7 at 1 degree of freedom,
// and the seeds are fixed, so the test is deterministic).
func TestBatchChiSquared(t *testing.T) {
	const draws = 400_000
	const chiLimit = 28.0
	for _, l := range []int{1, 2, 3, 4, 6, 8, 10, 12} {
		p := 1.0
		for i := 0; i < l; i++ {
			p /= 2
		}
		expSucc := p * draws
		expFail := (1 - p) * draws
		chi := func(succ int) float64 {
			ds := float64(succ) - expSucc
			df := float64(draws-succ) - expFail
			return ds*ds/expSucc + df*df/expFail
		}

		batch := NewBatch(uint64(1000 + l))
		bSucc := 0
		for i := 0; i < draws; i++ {
			if batch.Bernoulli2Pow(l) {
				bSucc++
			}
		}
		exact := New(uint64(2000 + l))
		eSucc := 0
		for i := 0; i < draws; i++ {
			if exact.Bernoulli2Pow(l) {
				eSucc++
			}
		}
		if c := chi(bSucc); c > chiLimit {
			t.Errorf("l=%d: batch sampler χ²=%.1f (successes %d, expected %.1f)", l, c, bSucc, expSucc)
		}
		if c := chi(eSucc); c > chiLimit {
			t.Errorf("l=%d: exact sampler χ²=%.1f (successes %d, expected %.1f)", l, c, eSucc, expSucc)
		}
	}
}

// TestBatchInterleavedLevels checks that interleaving levels on one
// sampler (the access pattern of a real emit pass over mixed-level
// vertices) keeps every level's marginal frequency correct.
func TestBatchInterleavedLevels(t *testing.T) {
	const rounds = 120_000
	levels := []int{1, 3, 3, 7, 2, 5, 1, 9}
	b := NewBatch(77)
	succ := make(map[int]int)
	count := make(map[int]int)
	for r := 0; r < rounds; r++ {
		for _, l := range levels {
			count[l]++
			if b.Bernoulli2Pow(l) {
				succ[l]++
			}
		}
	}
	for _, l := range []int{1, 2, 3, 5, 7, 9} {
		p := 1.0
		for i := 0; i < l; i++ {
			p /= 2
		}
		n := float64(count[l])
		exp := p * n
		dev := float64(succ[l]) - exp
		// 6 standard deviations of the binomial: far beyond noise,
		// deterministic under the fixed seed.
		limit := 6 * sqrtApprox(n*p*(1-p))
		if dev < -limit || dev > limit {
			t.Errorf("l=%d: %d/%d successes, expected %.1f ± %.1f", l, succ[l], count[l], exp, limit)
		}
	}
}

// sqrtApprox is a dependency-free Newton sqrt (avoids importing math in
// a package that deliberately has no dependencies).
func sqrtApprox(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestBatchEdgeLevels pins the degenerate levels: l <= 0 always
// succeeds without consuming randomness, l > 64 takes the multi-word
// path and essentially never succeeds.
func TestBatchEdgeLevels(t *testing.T) {
	b := NewBatch(5)
	before := b.src
	for i := 0; i < 100; i++ {
		if !b.Bernoulli2Pow(0) || !b.Bernoulli2Pow(-3) {
			t.Fatal("l <= 0 must always succeed")
		}
	}
	if b.src != before {
		t.Fatal("l <= 0 consumed randomness")
	}
	for i := 0; i < 1000; i++ {
		if b.Bernoulli2Pow(80) {
			t.Fatal("a 2^-80 event fired in 1000 draws: the multi-word path is broken")
		}
	}
}

// TestBatchReseedDeterminism checks Reseed discards partial words and
// restores the exact draw sequence of a fresh sampler.
func TestBatchReseedDeterminism(t *testing.T) {
	a := NewBatch(9)
	for i := 0; i < 37; i++ { // leave partially consumed words behind
		a.Bernoulli2Pow(3)
		a.Bernoulli2Pow(5)
	}
	a.Reseed(123)
	b := NewBatch(123)
	for i := 0; i < 500; i++ {
		l := 1 + i%13
		if a.Bernoulli2Pow(l) != b.Bernoulli2Pow(l) {
			t.Fatalf("draw %d (l=%d) diverged after Reseed", i, l)
		}
	}
}
