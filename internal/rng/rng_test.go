package rng

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// A Source must be usable as a math/rand source in tools and tests.
var _ rand.Source64 = (*Source)(nil)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sources with different seeds produced %d identical words out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= s.Uint64()
	}
	if acc == 0 {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c0 := root.Split(0)
	c1 := root.Split(1)
	c0again := root.Split(0)

	for i := 0; i < 100; i++ {
		v0, v0b := c0.Uint64(), c0again.Uint64()
		if v0 != v0b {
			t.Fatalf("Split(0) not reproducible at draw %d", i)
		}
		if v0 == c1.Uint64() {
			t.Fatalf("Split(0) and Split(1) coincided at draw %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(3)
	_ = a.Split(4)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-square over 16 buckets of the top 4 bits; loose bound.
	s := New(13)
	const n = 1 << 16
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[s.Uint64()>>60]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 45 {
		t.Fatalf("chi-square too large: %v (buckets %v)", chi2, buckets)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(19)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Intn(%d): value %d count %d deviates from expected %v", n, v, c, expected)
		}
	}
}

func TestBernoulli2PowClampedToOne(t *testing.T) {
	s := New(23)
	for _, l := range []int{0, -1, -5, -100} {
		for i := 0; i < 100; i++ {
			if !s.Bernoulli2Pow(l) {
				t.Fatalf("Bernoulli2Pow(%d) returned false; probability must be 1", l)
			}
		}
	}
}

func TestBernoulli2PowRates(t *testing.T) {
	s := New(29)
	for _, l := range []int{1, 2, 3, 5, 8} {
		const trials = 200000
		hits := 0
		for i := 0; i < trials; i++ {
			if s.Bernoulli2Pow(l) {
				hits++
			}
		}
		p := math.Pow(2, -float64(l))
		mean := p * trials
		sd := math.Sqrt(trials * p * (1 - p))
		if math.Abs(float64(hits)-mean) > 6*sd {
			t.Fatalf("Bernoulli2Pow(%d): %d hits, expected %v±%v", l, hits, mean, 6*sd)
		}
	}
}

func TestBernoulli2PowLargeL(t *testing.T) {
	// Probability 2^-100 should essentially never fire but must not hang
	// or mis-handle the multi-word path.
	s := New(31)
	for i := 0; i < 10000; i++ {
		if s.Bernoulli2Pow(100) {
			t.Fatal("Bernoulli2Pow(100) fired; probability ~7.9e-31")
		}
	}
	// l = 64 and l = 65 exercise the word boundary.
	for i := 0; i < 1000; i++ {
		s.Bernoulli2Pow(64)
		s.Bernoulli2Pow(65)
	}
}

func TestCoinRate(t *testing.T) {
	s := New(37)
	const trials = 100000
	heads := 0
	for i := 0; i < trials; i++ {
		if s.Coin() {
			heads++
		}
	}
	if math.Abs(float64(heads)-trials/2) > 5*math.Sqrt(trials/4) {
		t.Fatalf("Coin heads = %d out of %d", heads, trials)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(43)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(47)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	expected := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("Perm first element %d count %d, expected %v", v, c, expected)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkBernoulli2Pow8(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Bernoulli2Pow(8)
	}
}

func TestStateRoundTrip(t *testing.T) {
	a := New(5)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	saved := a.State()
	want := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}

	b := New(12345)
	b.SetState(saved)
	for i, w := range want {
		if got := b.Uint64(); got != w {
			t.Fatalf("draw %d after restore: %d != %d", i, got, w)
		}
	}
}

func TestMathRandAdapter(t *testing.T) {
	// Int63 and Seed exist so a Source can back math/rand.
	s := New(3)
	r := rand.New(s)
	for i := 0; i < 100; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
	s.Seed(99) // no-op by contract
	if r.Intn(10) < 0 {
		t.Fatal("adapter broken after Seed")
	}
}

func TestBoundedUint64NearMaxBound(t *testing.T) {
	// A bound just below a power of two exercises the rejection branch.
	s := New(5)
	const bound = (1 << 62) + 3
	for i := 0; i < 1000; i++ {
		if v := s.boundedUint64(bound); v >= bound {
			t.Fatalf("bounded draw %d >= %d", v, bound)
		}
	}
}
