package beep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Network is one executable instance of a protocol on a graph: the
// machines, their private random streams, and double-buffered signal
// arrays. A Network is not safe for concurrent use by multiple callers;
// the concurrent engines synchronize internally.
type Network struct {
	g        *graph.Graph
	machines []Machine
	srcs     []*rng.Source
	engine   Engine

	sent  []Signal
	heard []Signal
	round int

	channels int
	fullMask Signal
	noise    Noise
	noiseSrc *rng.Source
	sleep    Sleep
	sleepSrc *rng.Source
	asleep   []bool

	observer func(round int, sent, heard []Signal)

	workers *workerPool
}

// Option configures a Network.
type Option func(*Network)

// WithEngine selects the execution engine (default Sequential).
func WithEngine(e Engine) Option {
	return func(n *Network) { n.engine = e }
}

// WithObserver installs a callback invoked after every round with the
// signals of that round. The slices are reused across rounds and must not
// be retained.
func WithObserver(fn func(round int, sent, heard []Signal)) Option {
	return func(n *Network) { n.observer = fn }
}

// NewNetwork instantiates proto on every vertex of g. Each vertex gets
// the child stream Split(v) of the root stream derived from seed, so an
// execution is a pure function of (g, proto, seed, engine) and engines
// are trace-equivalent.
func NewNetwork(g *graph.Graph, proto Protocol, seed uint64, opts ...Option) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("beep: nil graph")
	}
	if c := proto.Channels(); c < 1 || c > 2 {
		return nil, fmt.Errorf("beep: protocol uses %d channels, model supports 1 or 2", c)
	}
	n := g.N()
	net := &Network{
		g:        g,
		machines: make([]Machine, n),
		srcs:     make([]*rng.Source, n),
		engine:   Sequential,
		sent:     make([]Signal, n),
		heard:    make([]Signal, n),
		channels: proto.Channels(),
		fullMask: Signal(1<<uint(proto.Channels())) - 1,
		noiseSrc: noiseSeed(seed),
		sleepSrc: rng.New(seed ^ 0x736c656570), // "sleep"
	}
	root := rng.New(seed)
	for v := 0; v < n; v++ {
		net.machines[v] = proto.NewMachine(v, g)
		net.srcs[v] = root.Split(uint64(v))
	}
	for _, opt := range opts {
		opt(net)
	}
	if err := net.noise.validate(); err != nil {
		return nil, err
	}
	if err := net.sleep.validate(); err != nil {
		return nil, err
	}
	if net.engine != Sequential {
		net.workers = newWorkerPool(net, net.poolSize())
	}
	return net, nil
}

// poolSize returns the number of worker goroutines for the configured
// engine: one per vertex for PerVertex, one per available CPU for
// Parallel.
func (n *Network) poolSize() int {
	if n.engine == PerVertex {
		if n.N() < 1 {
			return 1
		}
		return n.N()
	}
	return workerCount(n.N())
}

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Graph returns the topology the network runs on.
func (n *Network) Graph() *graph.Graph { return n.g }

// Round returns the number of completed rounds.
func (n *Network) Round() int { return n.round }

// Machine returns the state machine of vertex v, for inspection by the
// harness (legality checks) and the fault injector.
func (n *Network) Machine(v int) Machine { return n.machines[v] }

// N returns the number of vertices.
func (n *Network) N() int { return len(n.machines) }

// RandomizeAll sets every machine to a uniformly random state, using the
// vertices' own streams: the "arbitrary initial configuration" of the
// self-stabilization model.
func (n *Network) RandomizeAll() {
	for v, m := range n.machines {
		m.Randomize(n.srcs[v])
	}
}

// Corrupt randomizes the states of the given vertices, modeling a
// transient fault hitting exactly those RAMs.
func (n *Network) Corrupt(vertices []int) error {
	for _, v := range vertices {
		if v < 0 || v >= n.N() {
			return fmt.Errorf("beep: corrupt vertex %d out of range", v)
		}
		n.machines[v].Randomize(n.srcs[v])
	}
	return nil
}

// Step executes one synchronous round on the configured engine.
func (n *Network) Step() {
	switch n.engine {
	case Parallel, PerVertex:
		n.stepParallel()
	default:
		n.stepSequential()
	}
	n.round++
	if n.observer != nil {
		n.observer(n.round, n.sent, n.heard)
	}
}

// Run executes rounds until stop returns true or maxRounds rounds have
// completed, returning the number of rounds executed and whether stop was
// satisfied. stop is evaluated after each round (and once before the
// first, so an already-satisfied condition costs zero rounds).
func (n *Network) Run(maxRounds int, stop func() bool) (rounds int, ok bool) {
	if stop != nil && stop() {
		return 0, true
	}
	for r := 0; r < maxRounds; r++ {
		n.Step()
		if stop != nil && stop() {
			return r + 1, true
		}
	}
	return maxRounds, stop == nil
}

func (n *Network) stepSequential() {
	n.drawSleep()
	for v, m := range n.machines {
		if n.sleeping(v) {
			n.sent[v] = Silent
			continue
		}
		n.sent[v] = m.Emit(n.srcs[v])
	}
	n.deliverRange(0, n.N())
	n.applyNoise()
	for v, m := range n.machines {
		if n.sleeping(v) {
			continue
		}
		m.Update(n.sent[v], n.heard[v])
	}
}

// deliverRange computes heard[v] for v in [lo, hi): the OR of neighbor
// signals. Once every channel the protocol uses has been heard, the
// remaining neighbors cannot change the result, so the scan stops —
// on dense graphs with many beeping vertices this turns the O(deg)
// per-vertex scan into an O(1) expected one.
func (n *Network) deliverRange(lo, hi int) {
	full := n.fullMask
	for v := lo; v < hi; v++ {
		var h Signal
		for _, u := range n.g.Neighbors(v) {
			h |= n.sent[u]
			if h == full {
				break
			}
		}
		n.heard[v] = h
	}
}

// Close releases the worker goroutines of the concurrent engines. It is
// a no-op for the sequential engine and safe to call multiple times.
func (n *Network) Close() {
	if n.workers != nil {
		n.workers.close()
		n.workers = nil
	}
}

// workerPool runs the three phases of a round (emit, deliver, update)
// over vertex shards with persistent goroutines and a barrier between
// phases (the start/done channel pattern). The Parallel engine uses one
// shard per CPU; the PerVertex engine uses one single-vertex shard per
// vertex, i.e. a long-lived goroutine per simulated processor, the direct
// Go realization of the model. Because every vertex consumes only its own
// random stream and phases are barrier-separated, all engines produce
// identical traces for a fixed seed.
type workerPool struct {
	net    *Network
	shards [][2]int
	start  []chan int // phase number
	wg     sync.WaitGroup
}

const (
	phaseEmit = iota
	phaseDeliver
	phaseUpdate
	phaseExit
)

func newWorkerPool(net *Network, workers int) *workerPool {
	p := &workerPool{net: net}
	n := net.N()
	per := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		p.shards = append(p.shards, [2]int{lo, hi})
	}
	p.start = make([]chan int, len(p.shards))
	for i := range p.shards {
		p.start[i] = make(chan int)
		go p.worker(i)
	}
	return p
}

func (p *workerPool) worker(i int) {
	lo, hi := p.shards[i][0], p.shards[i][1]
	net := p.net
	for phase := range p.start[i] {
		switch phase {
		case phaseEmit:
			for v := lo; v < hi; v++ {
				if net.sleeping(v) {
					net.sent[v] = Silent
					continue
				}
				net.sent[v] = net.machines[v].Emit(net.srcs[v])
			}
		case phaseDeliver:
			net.deliverRange(lo, hi)
		case phaseUpdate:
			for v := lo; v < hi; v++ {
				if net.sleeping(v) {
					continue
				}
				net.machines[v].Update(net.sent[v], net.heard[v])
			}
		case phaseExit:
			p.wg.Done()
			return
		}
		p.wg.Done()
	}
}

// runPhase dispatches one phase to all workers and waits for the barrier.
func (p *workerPool) runPhase(phase int) {
	p.wg.Add(len(p.start))
	for _, ch := range p.start {
		ch <- phase
	}
	p.wg.Wait()
}

func (p *workerPool) close() {
	p.runPhase(phaseExit)
	for _, ch := range p.start {
		close(ch)
	}
}

func (n *Network) stepParallel() {
	if n.workers == nil {
		n.workers = newWorkerPool(n, n.poolSize())
	}
	n.drawSleep()
	n.workers.runPhase(phaseEmit)
	n.workers.runPhase(phaseDeliver)
	n.applyNoise()
	n.workers.runPhase(phaseUpdate)
}
