package beep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Network is one executable instance of a protocol on a graph: the
// machines, their private random streams, and double-buffered signal
// arrays. A Network is not safe for concurrent use by multiple callers;
// the concurrent engines synchronize internally.
type Network struct {
	g graph.Topology
	// csr is the materialized fast path: non-nil iff g is a
	// *graph.Graph, in which case neighbor rows are aliased CSR slices.
	// Synthesizing backends (implicit, compact) leave it nil and the
	// delivery paths decode rows into scratch buffers instead.
	csr *graph.Graph
	// rowBuf is the sequential-path neighbor scratch for synthesizing
	// backends (len = g.MaxDegree()); nil when csr is set. The worker
	// pool carries per-shard scratch instead (workerPool.rowBuf).
	rowBuf   []int32
	proto    Protocol
	machines []Machine
	srcs     []*rng.Source
	engine   Engine

	// root is the stream the per-vertex streams were split from;
	// nextStream is the next unused child index. Vertices that join
	// through Rewire draw fresh child streams from here, so joiner
	// streams never collide with any stream handed out before.
	root       *rng.Source
	nextStream uint64

	sent  []Signal
	heard []Signal
	round int

	channels int
	fullMask Signal
	noise    Noise
	noiseSrc *rng.Source
	sleep    Sleep
	sleepSrc *rng.Source
	asleep   []bool

	// Adversary state (see adversary.go): per-vertex policy byte
	// (advNone = cooperating), the pre-drawn signals of the coming
	// round, the babbler indices, the dedicated stream, and a counter
	// bumped whenever the adversary set or the topology changes so
	// observers (core.State) know to re-capture the mask.
	adv         []uint8
	advSent     []Signal
	advBabblers []int32
	advSrc      *rng.Source
	advCount    int
	advEpoch    uint64
	advPending  []advSpec

	observer func(round int, sent, heard []Signal)

	// bulk is the opaque bulk-state handle returned by a BatchProtocol,
	// nil otherwise. See BulkState.
	bulk any

	// Flat-engine state (see flat.go): flatOps is the bound kernel
	// handle (nil when the protocol has none or WithFlatKernels(false)
	// was given), sampler the optional amortized Bernoulli sampler, and
	// the bitsets are the reusable buffers of the delivery kernel.
	flatOps      FlatProtocol
	flatQuiescer FlatQuiescer
	// flatParOps is the kernel handle the FlatParallel workers invoke;
	// set by the coordinator before the first flat phase of each round
	// (every publication is ordered by the pool's phase barrier).
	flatParOps FlatProtocol
	flatEnv    FlatEnv
	quiet      bool
	noFlat     bool
	batched    bool
	sampler    *rng.Batch
	flatSkip   bitset.Set
	sendBits   [2]bitset.Set
	heardBits  [2]bitset.Set

	// Sparse activity-gated round state (see sparse.go): the mode,
	// the word-activity masks and their bookkeeping, the parallel
	// kernel handle published before sparse phases (barrier-ordered
	// like flatParOps), and the per-round activity statistics exposed
	// to WithStatsObserver.
	sparseMode    SparseMode
	sparse        sparseState
	flatParSparse SparseFlatProtocol
	statsObs      func(round, active, frontierWords int)
	roundActive   int
	roundFrontier int

	// Incremental-checkpoint dirty tracking (see delta.go): ckDirty
	// accumulates the slab words dirtied since the last checkpoint
	// baseline; ckRoundSparse is set by the sparse step paths whose
	// end-of-round masks describe the round exactly — any round that
	// completes without setting it is conservatively marked all-dirty.
	ckDirty       dirtyState
	ckRoundSparse bool

	// gfp caches graph.FingerprintOf(n.g), the topology identity
	// stamped into every checkpoint and delta. The generic Topology
	// path costs O(n·deg) to hash — paid per capture it would dwarf a
	// dirty-word delta — so it is computed once on first use and
	// invalidated only by Rewire, the sole operation that replaces the
	// graph.
	gfp   uint64
	gfpOK bool

	// seed is the root seed the network was constructed with, recorded
	// in checkpoints for provenance.
	seed uint64
	// failed poisons the network after a contained machine panic: the
	// step that produced it stopped mid-phase, so the state is not a
	// valid round boundary and every later TryStep returns this error.
	failed *RunError

	workers *workerPool
	// reqWorkers is the WithWorkers override for the sharded engines
	// (0 = GOMAXPROCS; validated non-negative at construction).
	reqWorkers int
	closed     bool
}

// Option configures a Network.
type Option func(*Network)

// WithEngine selects the execution engine (default Sequential).
func WithEngine(e Engine) Option {
	return func(n *Network) { n.engine = e }
}

// WithObserver installs a callback invoked after every round with the
// signals of that round. The slices are reused across rounds and must not
// be retained.
func WithObserver(fn func(round int, sent, heard []Signal)) Option {
	return func(n *Network) { n.observer = fn }
}

// WithWorkers sets the worker-goroutine count of the sharded engines
// (Parallel and FlatParallel); 0, the default, means GOMAXPROCS. The
// count is capped at the vertex count. Negative values are a
// construction error. Sequential and Flat run no pool and ignore the
// option; PerVertex always runs one goroutine per vertex (that IS the
// engine) and ignores it too. Because every engine is trace-equivalent
// by construction, the worker count never changes results — only
// wall-clock time (see BENCH_parflat.json for the scaling table).
func WithWorkers(k int) Option {
	return func(n *Network) { n.reqWorkers = k }
}

// NewNetwork instantiates proto on every vertex of g. Each vertex gets
// the child stream Split(v) of the root stream derived from seed, so an
// execution is a pure function of (g, proto, seed, engine) and engines
// are trace-equivalent. g may be any graph.Topology backend —
// materialized CSR, compact varint, or implicit generator — and because
// every backend presents the same canonical neighbor rows, the executed
// trace is independent of the backend choice (pinned by
// TestEngineTraceEquivalenceBackends).
func NewNetwork(g graph.Topology, proto Protocol, seed uint64, opts ...Option) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("beep: nil graph")
	}
	csr, isCSR := g.(*graph.Graph)
	if isCSR && csr == nil {
		return nil, fmt.Errorf("beep: nil graph")
	}
	if c := proto.Channels(); c < 1 || c > 2 {
		return nil, fmt.Errorf("beep: protocol uses %d channels, model supports 1 or 2", c)
	}
	n := g.N()
	net := &Network{
		g:          g,
		csr:        csr,
		seed:       seed,
		proto:      proto,
		machines:   make([]Machine, n),
		srcs:       make([]*rng.Source, n),
		engine:     Sequential,
		nextStream: uint64(n),
		sent:       make([]Signal, n),
		heard:      make([]Signal, n),
		channels:   proto.Channels(),
		fullMask:   Signal(1<<uint(proto.Channels())) - 1,
		noiseSrc:   noiseSeed(seed),
		sleepSrc:   rng.New(seed ^ sleepSalt),
		advSrc:     rng.New(seed ^ advSalt),
	}
	root := rng.New(seed)
	net.root = root
	if bp, ok := proto.(BatchProtocol); ok {
		ms, bulk := bp.NewMachines(g)
		if len(ms) != n {
			return nil, fmt.Errorf("beep: BatchProtocol %T built %d machines for %d vertices", proto, len(ms), n)
		}
		net.machines = ms
		net.bulk = bulk
	} else {
		for v := 0; v < n; v++ {
			net.machines[v] = proto.NewMachine(v, g)
		}
	}
	// One contiguous slab for the per-vertex streams: at n = 10⁸ this is
	// a single allocation of 32-byte states instead of 10⁸ separate heap
	// objects (and their pointer-chasing during emit).
	slab := make([]rng.Source, n)
	for v := 0; v < n; v++ {
		root.SplitInto(uint64(v), &slab[v])
		net.srcs[v] = &slab[v]
	}
	if csr == nil {
		net.rowBuf = make([]int32, g.MaxDegree())
	}
	for _, opt := range opts {
		opt(net)
	}
	if net.reqWorkers < 0 {
		return nil, fmt.Errorf("beep: WithWorkers(%d): worker count must be non-negative (0 = GOMAXPROCS)", net.reqWorkers)
	}
	if err := net.noise.validate(); err != nil {
		return nil, err
	}
	if err := net.sleep.validate(); err != nil {
		return nil, err
	}
	if err := net.installAdversaries(); err != nil {
		return nil, err
	}
	if err := net.finishFlatSetup(proto, seed); err != nil {
		return nil, err
	}
	if net.usesPool() {
		net.workers = newWorkerPool(net, net.poolSize())
	}
	return net, nil
}

// usesPool reports whether the configured engine runs on the worker
// pool (and therefore whether Rewire must rebuild it).
func (n *Network) usesPool() bool {
	return n.engine == Parallel || n.engine == PerVertex || n.engine == FlatParallel
}

// poolSize returns the number of worker goroutines for the configured
// engine: one per vertex for PerVertex, and for the sharded engines the
// WithWorkers override when given, one per available CPU otherwise.
func (n *Network) poolSize() int {
	if n.engine == PerVertex {
		if n.N() < 1 {
			return 1
		}
		return n.N()
	}
	if n.reqWorkers > 0 {
		w := n.reqWorkers
		if w > n.N() {
			w = n.N()
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	return workerCount(n.N())
}

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Graph returns the topology the network runs on.
func (n *Network) Graph() graph.Topology { return n.g }

// Round returns the number of completed rounds.
func (n *Network) Round() int { return n.round }

// Machine returns the state machine of vertex v, for inspection by the
// harness (legality checks) and the fault injector. A retained handle
// can mutate state behind the engine's back, so the vertex is
// conservatively marked active for the sparse path (bulk read paths —
// core.LevelExporter — bypass this accessor and stay mark-free).
func (n *Network) Machine(v int) Machine {
	n.sparse.markVertex(v)
	n.ckDirty.markVertex(v)
	return n.machines[v]
}

// BulkState returns the opaque bulk-state handle provided by a
// BatchProtocol, or nil. Callers type-assert it to the protocol's bulk
// accessor (for example core.LevelExporter) to read whole-network state
// without n interface dispatches.
func (n *Network) BulkState() any { return n.bulk }

// N returns the number of vertices.
func (n *Network) N() int { return len(n.machines) }

// RandomizeAll sets every machine to a uniformly random state, using the
// vertices' own streams: the "arbitrary initial configuration" of the
// self-stabilization model.
func (n *Network) RandomizeAll() {
	n.sparse.markAll()
	n.ckDirty.markAll()
	for v, m := range n.machines {
		m.Randomize(n.srcs[v])
	}
}

// Corrupt randomizes the states of the given vertices, modeling a
// transient fault hitting exactly those RAMs. The injection is atomic:
// every index is validated before any machine is touched, so an
// out-of-range entry can never leave a half-injected fault behind.
func (n *Network) Corrupt(vertices []int) error {
	for _, v := range vertices {
		if v < 0 || v >= n.N() {
			return fmt.Errorf("beep: corrupt vertex %d out of range (no state modified)", v)
		}
	}
	for _, v := range vertices {
		n.sparse.markVertex(v)
		n.ckDirty.markVertex(v)
		n.machines[v].Randomize(n.srcs[v])
	}
	return nil
}

// Step executes one synchronous round on the configured engine. It
// panics if the network has been closed: Close is terminal (it tears
// down the worker goroutines of the concurrent engines), and silently
// resurrecting a pool after Close hid lifecycle bugs in callers. If a
// machine panics inside the round, Step re-panics with the typed
// *RunError that TryStep would have returned — the barrier and the
// worker goroutines are already safely parked at that point, so callers
// that recover the panic keep a functioning process.
func (n *Network) Step() {
	if n.closed {
		panic("beep: Step on closed Network (Close is terminal)")
	}
	if err := n.TryStep(); err != nil {
		panic(err)
	}
}

// TryStep executes one synchronous round like Step but converts machine
// panics into a typed *RunError instead of unwinding: the supervised
// execution path of stab.Supervisor. It returns ErrClosed on a closed
// network and the original *RunError on every call after a contained
// panic (the network is poisoned: the failing phase stopped mid-shard,
// so the state is not a valid round boundary).
func (n *Network) TryStep() error {
	if n.closed {
		return ErrClosed
	}
	if n.failed != nil {
		return n.failed
	}
	// Dense rounds report full activity; the sparse and elided paths
	// overwrite these with the round's real frontier.
	n.roundActive, n.roundFrontier = n.N(), (n.N()+63)>>6
	n.ckRoundSparse = false
	var rerr *RunError
	switch n.engine {
	case Parallel, PerVertex:
		rerr = n.stepParallel()
	case FlatParallel:
		// Construction requires the kernels, but a Rewire can drop the
		// bulk handle (non-codec machine cohorts); the interface-loop
		// pool remains trace-equivalent, so fall back to it.
		if so := n.sparseOps(); so != nil {
			rerr = n.stepFlatParallelSparse(so)
		} else if n.flatOps != nil {
			rerr = n.stepFlatParallel(n.flatOps)
		} else {
			rerr = n.stepParallel()
		}
	default:
		// Sequential and Flat: the flat kernels are the sequential
		// semantics without per-vertex dispatch, so Sequential upgrades
		// transparently whenever the protocol provides them (traces are
		// bit-identical; see flat.go), and both run the activity-gated
		// sparse path on top unless WithSparse(SparseOff) was given
		// (also bit-identical; see sparse.go).
		if so := n.sparseOps(); so != nil {
			rerr = n.stepFlatSparse(so)
		} else if n.flatOps != nil {
			rerr = n.stepFlat(n.flatOps)
		} else {
			rerr = n.stepSequential()
		}
	}
	if rerr != nil {
		n.failed = rerr
		return rerr
	}
	if !n.ckRoundSparse {
		// The round ran a path whose effects the activity masks do not
		// describe (dense kernels, fault-model fallback): conservatively
		// dirty everything for the incremental-checkpoint baseline. The
		// sparse paths accumulate their exact end-of-round union instead.
		n.ckDirty.markAll()
	}
	n.round++
	if n.statsObs != nil {
		n.statsObs(n.round, n.roundActive, n.roundFrontier)
	}
	if n.observer != nil {
		n.observer(n.round, n.sent, n.heard)
	}
	return nil
}

// Failed returns the contained machine panic that poisoned the network,
// or nil if every round so far completed.
func (n *Network) Failed() *RunError { return n.failed }

// emitRange runs the emit phase for vertices [lo, hi), containing
// machine panics: a panicking Emit is converted into a *RunError naming
// the vertex and the remaining vertices of the range are skipped. The
// recovery happens inside this frame, so concurrent-engine workers
// return normally and still join their barrier.
func (n *Network) emitRange(lo, hi int) (rerr *RunError) {
	v := lo
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: v, Round: n.round + 1, Phase: "emit",
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	for ; v < hi; v++ {
		if n.adversarial(v) {
			n.sent[v] = n.advSent[v]
			continue
		}
		if n.sleeping(v) {
			n.sent[v] = Silent
			continue
		}
		n.sent[v] = n.machines[v].Emit(n.srcs[v])
	}
	return nil
}

// updateRange runs the update phase for vertices [lo, hi) with the same
// panic containment as emitRange.
func (n *Network) updateRange(lo, hi int) (rerr *RunError) {
	v := lo
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: v, Round: n.round + 1, Phase: "update",
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	for ; v < hi; v++ {
		if n.adversarial(v) || n.sleeping(v) {
			continue
		}
		n.machines[v].Update(n.sent[v], n.heard[v])
	}
	return nil
}

// Run executes rounds until stop returns true or maxRounds rounds have
// completed, returning the number of rounds executed and whether stop was
// satisfied. stop is evaluated after each round (and once before the
// first, so an already-satisfied condition costs zero rounds).
func (n *Network) Run(maxRounds int, stop func() bool) (rounds int, ok bool) {
	if stop != nil && stop() {
		return 0, true
	}
	for r := 0; r < maxRounds; r++ {
		n.Step()
		if stop != nil && stop() {
			return r + 1, true
		}
	}
	return maxRounds, stop == nil
}

func (n *Network) stepSequential() *RunError {
	n.drawSleep()
	n.drawAdversaries()
	if err := n.emitRange(0, n.N()); err != nil {
		return err
	}
	n.deliverRange(0, n.N(), n.rowBuf)
	n.applyNoise()
	return n.updateRange(0, n.N())
}

// deliverRange computes heard[v] for v in [lo, hi): the OR of neighbor
// signals. Once every channel the protocol uses has been heard, the
// remaining neighbors cannot change the result, so the scan stops —
// on dense graphs with many beeping vertices this turns the O(deg)
// per-vertex scan into an O(1) expected one.
//
// buf is the neighbor scratch for synthesizing backends (caller-owned,
// len ≥ MaxDegree); it is ignored on the materialized fast path, where
// rows are aliased CSR slices. The early exit makes the synthesizing
// path stop decoding mid-row too: NeighborsInto fills buf eagerly, so
// the exit only skips the OR scan, but that is where the branches are.
func (n *Network) deliverRange(lo, hi int, buf []int32) {
	full := n.fullMask
	sent, heard := n.sent, n.heard
	if g := n.csr; g != nil {
		for v := lo; v < hi; v++ {
			var h Signal
			for _, u := range g.Neighbors(v) {
				h |= sent[u]
				if h == full {
					break
				}
			}
			heard[v] = h
		}
		return
	}
	for v := lo; v < hi; v++ {
		var h Signal
		for _, u := range n.g.NeighborsInto(v, buf) {
			h |= sent[u]
			if h == full {
				break
			}
		}
		heard[v] = h
	}
}

// Close releases the worker goroutines of the concurrent engines and
// makes the network terminal: any subsequent Step panics. It is safe to
// call multiple times (later calls are no-ops); for the sequential
// engine it only marks the network closed.
func (n *Network) Close() {
	if n.workers != nil {
		n.workers.close()
		n.workers = nil
	}
	n.closed = true
}

// Closed reports whether Close has been called.
func (n *Network) Closed() bool { return n.closed }

// workerPool runs the three phases of a round (emit, deliver, update)
// over vertex shards with persistent goroutines and a generation-based
// (sense-reversing) barrier between phases: the coordinator publishes
// each phase by bumping a generation counter and broadcasting once, and
// each worker joins the barrier with a single atomic decrement — the
// last one signals completion. That is one wakeup plus one atomic join
// per worker per phase, replacing the previous three channel operations
// per shard per phase, which dominated round cost for fine shards.
//
// The Parallel engine uses one shard per CPU; the PerVertex engine uses
// one single-vertex shard per vertex, i.e. a long-lived goroutine per
// simulated processor, the direct Go realization of the model. Because
// every vertex consumes only its own random stream and phases are
// barrier-separated, all engines produce identical traces for a fixed
// seed.
type workerPool struct {
	net    *Network
	shards [][2]int

	mu    sync.Mutex
	cond  *sync.Cond
	gen   uint64 // generation: incremented to publish the next phase
	phase int32  // phase command of the current generation

	pending atomic.Int32  // workers that have not yet joined the barrier
	done    chan struct{} // signaled by the last worker to join

	// failed records the first contained machine panic of the current
	// phase. Workers recover before joining the barrier, so a panicking
	// vertex never orphans the barrier; the coordinator collects the
	// error after the phase completes on every shard.
	failed atomic.Pointer[RunError]

	// flat holds the per-worker state of the FlatParallel engine (one
	// entry per shard, nil for the other engines): the worker's private
	// FlatEnv, its scatter scratch masks and its pack count. See
	// flatparallel.go.
	flat []flatWorker

	// bufs are the per-shard neighbor scratch rows for synthesizing
	// backends, allocated lazily on first use (nil entries on the
	// materialized fast path, which never consults them). Each worker
	// touches only its own index, so no synchronization is needed.
	bufs [][]int32
}

// rowBuf returns shard i's neighbor scratch, or nil on the materialized
// fast path.
func (p *workerPool) rowBuf(i int) []int32 {
	if p.net.csr != nil {
		return nil
	}
	if p.bufs[i] == nil {
		p.bufs[i] = make([]int32, p.net.g.MaxDegree())
	}
	return p.bufs[i]
}

const (
	phaseEmit = iota
	phaseDeliver
	phaseUpdate
	phaseExit
	// Flat-parallel phases (see flatparallel.go): cohort-kernel stripes
	// for emit/update, word-range sender packing, per-worker scatter,
	// word-range-ownership merge + compose, and the dense gather
	// fallback.
	phaseFlatEmit
	phaseFlatPack
	phaseFlatScatter
	phaseFlatMerge
	phaseFlatGather
	phaseFlatUpdate
	// Sparse-path phases (see sparse.go): activity-gated kernel
	// stripes writing per-worker drew/changed word masks.
	phaseFlatSparseEmit
	phaseFlatSparseUpdate
)

func newWorkerPool(net *Network, workers int) *workerPool {
	p := &workerPool{net: net, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	n := net.N()
	per := (n + workers - 1) / workers
	// Pad shard boundaries to cache-line multiples (64 signals = 64
	// bytes) so adjacent shards never write the same line of the
	// sent/heard arrays. Single-vertex shards (PerVertex) are left
	// alone: padding them would collapse the per-vertex model. The
	// flat-parallel engine additionally NEEDS 64-alignment — its pack
	// and merge phases own whole 64-bit words of the sender/heard
	// bitsets per stripe — so its shards are padded even when a shard
	// would cover fewer than 64 vertices.
	if per > 1 || net.engine == FlatParallel {
		per = (per + 63) &^ 63
	}
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		p.shards = append(p.shards, [2]int{lo, hi})
	}
	if net.engine == FlatParallel {
		p.flat = make([]flatWorker, len(p.shards))
	}
	p.bufs = make([][]int32, len(p.shards))
	for i := range p.shards {
		go p.worker(i)
	}
	return p
}

// worker waits (blocking, not spinning — the PerVertex engine runs far
// more shards than CPUs) for each new generation, executes its shard's
// slice of the published phase, and joins the barrier.
func (p *workerPool) worker(i int) {
	lo, hi := p.shards[i][0], p.shards[i][1]
	net := p.net
	var seen uint64
	for {
		p.mu.Lock()
		for p.gen == seen {
			p.cond.Wait()
		}
		seen = p.gen
		phase := p.phase
		p.mu.Unlock()

		switch phase {
		case phaseEmit:
			if err := net.emitRange(lo, hi); err != nil {
				p.failed.CompareAndSwap(nil, err)
			}
		case phaseDeliver:
			net.deliverRange(lo, hi, p.rowBuf(i))
		case phaseUpdate:
			if err := net.updateRange(lo, hi); err != nil {
				p.failed.CompareAndSwap(nil, err)
			}
		case phaseFlatEmit:
			if err := net.flatKernelRange("emit", &p.flat[i], lo, hi); err != nil {
				p.failed.CompareAndSwap(nil, err)
			}
		case phaseFlatPack:
			net.flatPackRange(&p.flat[i], lo, hi)
		case phaseFlatScatter:
			net.flatScatterRange(&p.flat[i], lo, hi)
		case phaseFlatMerge:
			net.flatMergeRange(p, lo, hi)
		case phaseFlatGather:
			net.deliverRange(lo, hi, p.rowBuf(i))
		case phaseFlatUpdate:
			if err := net.flatKernelRange("update", &p.flat[i], lo, hi); err != nil {
				p.failed.CompareAndSwap(nil, err)
			}
		case phaseFlatSparseEmit:
			if err := net.flatSparseKernelRange("emit", &p.flat[i], lo, hi); err != nil {
				p.failed.CompareAndSwap(nil, err)
			}
		case phaseFlatSparseUpdate:
			if err := net.flatSparseKernelRange("update", &p.flat[i], lo, hi); err != nil {
				p.failed.CompareAndSwap(nil, err)
			}
		}

		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
		if phase == phaseExit {
			return
		}
	}
}

// runPhase publishes one phase to all workers (one broadcast) and waits
// for the barrier. The atomic join chain plus the done send establish
// the happens-before edge from every worker's writes back to the
// coordinator, so the next phase observes all shard results.
func (p *workerPool) runPhase(phase int) {
	if len(p.shards) == 0 {
		return
	}
	p.pending.Store(int32(len(p.shards)))
	p.mu.Lock()
	p.phase = int32(phase)
	p.gen++
	p.mu.Unlock()
	p.cond.Broadcast()
	<-p.done
}

func (p *workerPool) close() {
	p.runPhase(phaseExit)
}

// takeError collects (and clears) the first contained panic of the
// phase that just completed.
func (p *workerPool) takeError() *RunError {
	return p.failed.Swap(nil)
}

func (n *Network) stepParallel() *RunError {
	n.drawSleep()
	n.drawAdversaries()
	n.workers.runPhase(phaseEmit)
	if err := n.workers.takeError(); err != nil {
		return err
	}
	n.workers.runPhase(phaseDeliver)
	n.applyNoise()
	n.workers.runPhase(phaseUpdate)
	return n.workers.takeError()
}
