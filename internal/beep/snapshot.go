package beep

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
)

// Checkpoint format v3: the binary snapshot codec. A v3 snapshot holds
// exactly the same logical payload as the v2 JSON encoding — the
// identity header, the per-vertex machine and stream states, the
// fault-model and allocator RNGs, the adversary table, and the
// canonical FNV-1a payload hash (the Hash field is bit-identical
// between the two encodings, so chains and wire messages can reference
// a checkpoint's hash without caring how it was serialized). The
// difference is layout: fixed-width little-endian sections whose
// offsets are computable from the header, so encode and decode
// parallelize over 64-aligned vertex ranges (the same ownership
// discipline the FlatParallel engine uses for its slab stripes) and
// the hot sections are straight memory copies instead of text.
//
// Readers auto-detect the format: DecodeCheckpointAuto (and
// ReadSnapshot) sniff the 4-byte magic and fall back to the v2 JSON
// decoder, so every consumer keeps reading checkpoints written by
// older builds.

// snapshotMagic opens every binary snapshot. The JSON encoding can
// never collide with it: a JSON checkpoint starts with '{'.
var snapshotMagic = [4]byte{'B', 'C', 'S', '3'}

const (
	// snapFlagAdv marks an adversary table section present.
	snapFlagAdv = 1 << 0
	// snapFlagVals32 marks machine values stored as int32 (every state
	// integer of every vertex fits; the level-slab protocols always
	// do). Otherwise values are int64.
	snapFlagVals32 = 1 << 1
	// snapFlagRagged marks per-vertex varint machine sections: the
	// fallback for protocols whose EncodeState length varies by vertex.
	// Ragged bodies encode and decode sequentially.
	snapFlagRagged = 1 << 2
)

// snapHeaderFixed is the byte size of the header before the
// variable-length protocol string: magic + 11 u64 fields + flags +
// stride + protoLen + the four aux RNG states.
const snapHeaderFixed = 4 + 11*8 + 1 + 4 + 4 + 4*32

// snapMaxProto bounds the protocol-identity string a decoder will
// allocate for; real identities are tens of bytes.
const snapMaxProto = 4096

// machineLayout inspects the machine section shape: uniform stride
// (with 0 for an empty network), whether every value fits in int32,
// and whether the ragged fallback is required.
func machineLayout(machines [][]int64) (stride int, vals32, ragged bool) {
	vals32 = true
	if len(machines) == 0 {
		return 0, true, false
	}
	stride = len(machines[0])
	for _, m := range machines {
		if len(m) != stride {
			ragged = true
		}
		for _, v := range m {
			if v < math.MinInt32 || v > math.MaxInt32 {
				vals32 = false
			}
		}
	}
	if ragged {
		stride = 0
	}
	return stride, vals32, ragged
}

// snapshotRanges splits n vertices into 64-aligned chunks for the
// parallel section codecs. The output is deterministic; only the
// wall-clock depends on GOMAXPROCS.
func snapshotRanges(n int) [][2]int {
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	chunk := (n/workers + 63) &^ 63
	if chunk < 4096 {
		chunk = 4096
	}
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	if out == nil {
		out = [][2]int{{0, 0}}
	}
	return out
}

// EncodeSnapshot serializes a sealed checkpoint in the v3 binary
// format. Like WriteCheckpoint it refuses a checkpoint whose integrity
// hash does not match its payload.
func EncodeSnapshot(c *Checkpoint) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("beep: encode snapshot: %w", err)
	}
	n := len(c.Machines)
	stride, vals32, ragged := machineLayout(c.Machines)
	if len(c.Protocol) > snapMaxProto {
		return nil, fmt.Errorf("beep: encode snapshot: protocol identity %d bytes exceeds %d", len(c.Protocol), snapMaxProto)
	}
	var flags byte
	if c.Adversaries != nil {
		flags |= snapFlagAdv
	}
	if vals32 {
		flags |= snapFlagVals32
	}
	if ragged {
		flags |= snapFlagRagged
	}
	valSize := 8
	if vals32 {
		valSize = 4
	}

	headerLen := snapHeaderFixed + len(c.Protocol)
	size := headerLen + n*32
	if !ragged {
		size += n * stride * valSize
	}
	if c.Adversaries != nil {
		size += n
	}

	var buf []byte
	if ragged {
		buf = make([]byte, headerLen, size+n*binary.MaxVarintLen64)
	} else {
		buf = make([]byte, size)
	}

	le := binary.LittleEndian
	copy(buf[0:4], snapshotMagic[:])
	le.PutUint64(buf[4:], c.GraphFingerprint)
	le.PutUint64(buf[12:], uint64(c.GraphN))
	le.PutUint64(buf[20:], uint64(c.GraphM))
	le.PutUint64(buf[28:], c.Seed)
	le.PutUint64(buf[36:], math.Float64bits(c.NoiseLoss))
	le.PutUint64(buf[44:], math.Float64bits(c.NoiseFalse))
	le.PutUint64(buf[52:], math.Float64bits(c.SleepP))
	le.PutUint64(buf[60:], uint64(c.Round))
	le.PutUint64(buf[68:], c.NextStream)
	le.PutUint64(buf[76:], c.AdvEpoch)
	le.PutUint64(buf[84:], c.Hash)
	buf[92] = flags
	le.PutUint32(buf[93:], uint32(stride))
	le.PutUint32(buf[97:], uint32(len(c.Protocol)))
	off := 101
	for i, rng := range [][4]uint64{c.NoiseRNG, c.SleepRNG, c.AdvRNG, c.RootRNG} {
		base := off + i*32
		for k, w := range rng {
			le.PutUint64(buf[base+k*8:], w)
		}
	}
	off += 4 * 32
	copy(buf[off:], c.Protocol)
	off += len(c.Protocol)

	if ragged {
		// Ragged fallback: streams fixed-width, machines as
		// uvarint-length + zigzag-varint values, sequential.
		streamOff := off
		buf = buf[:streamOff+n*32]
		encodeStreamsRange(buf[streamOff:], c.Streams, 0, n)
		var tmp [binary.MaxVarintLen64]byte
		for _, m := range c.Machines {
			k := binary.PutUvarint(tmp[:], uint64(len(m)))
			buf = append(buf, tmp[:k]...)
			for _, v := range m {
				k = binary.PutVarint(tmp[:], v)
				buf = append(buf, tmp[:k]...)
			}
		}
		if c.Adversaries != nil {
			buf = append(buf, c.Adversaries...)
		}
		return buf, nil
	}

	streamOff := off
	machineOff := streamOff + n*32
	ranges := snapshotRanges(n)
	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			encodeStreamsRange(buf[streamOff:], c.Streams, lo, hi)
			encodeMachinesRange(buf[machineOff:], c.Machines, stride, vals32, lo, hi)
		}(r[0], r[1])
	}
	wg.Wait()
	if c.Adversaries != nil {
		copy(buf[machineOff+n*stride*valSize:], c.Adversaries)
	}
	return buf, nil
}

func encodeStreamsRange(dst []byte, streams [][4]uint64, lo, hi int) {
	le := binary.LittleEndian
	for v := lo; v < hi; v++ {
		base := v * 32
		s := &streams[v]
		le.PutUint64(dst[base:], s[0])
		le.PutUint64(dst[base+8:], s[1])
		le.PutUint64(dst[base+16:], s[2])
		le.PutUint64(dst[base+24:], s[3])
	}
}

func encodeMachinesRange(dst []byte, machines [][]int64, stride int, vals32 bool, lo, hi int) {
	le := binary.LittleEndian
	if vals32 {
		for v := lo; v < hi; v++ {
			base := v * stride * 4
			for i, x := range machines[v] {
				le.PutUint32(dst[base+i*4:], uint32(int32(x)))
			}
		}
		return
	}
	for v := lo; v < hi; v++ {
		base := v * stride * 8
		for i, x := range machines[v] {
			le.PutUint64(dst[base+i*8:], uint64(x))
		}
	}
}

// DecodeSnapshot parses a v3 binary snapshot. Malformed, truncated or
// corrupted input — including any header claiming more data than the
// buffer holds — surfaces as an error, never a panic, and every
// payload is re-verified against the canonical FNV-1a hash before
// being returned.
func DecodeSnapshot(data []byte) (*Checkpoint, error) {
	if len(data) < snapHeaderFixed {
		return nil, fmt.Errorf("beep: snapshot truncated: %d bytes, header needs %d", len(data), snapHeaderFixed)
	}
	if !bytes.Equal(data[0:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("beep: not a binary snapshot (magic %q)", data[0:4])
	}
	le := binary.LittleEndian
	c := &Checkpoint{FormatVersion: CheckpointFormatVersion}
	c.GraphFingerprint = le.Uint64(data[4:])
	graphN := le.Uint64(data[12:])
	graphM := le.Uint64(data[20:])
	c.Seed = le.Uint64(data[28:])
	c.NoiseLoss = math.Float64frombits(le.Uint64(data[36:]))
	c.NoiseFalse = math.Float64frombits(le.Uint64(data[44:]))
	c.SleepP = math.Float64frombits(le.Uint64(data[52:]))
	round := le.Uint64(data[60:])
	c.NextStream = le.Uint64(data[68:])
	c.AdvEpoch = le.Uint64(data[76:])
	c.Hash = le.Uint64(data[84:])
	flags := data[92]
	stride := int(le.Uint32(data[93:]))
	protoLen := int(le.Uint32(data[97:]))
	off := 101
	rngs := [4]*[4]uint64{&c.NoiseRNG, &c.SleepRNG, &c.AdvRNG, &c.RootRNG}
	for i, rng := range rngs {
		base := off + i*32
		for k := range rng {
			rng[k] = le.Uint64(data[base+k*8:])
		}
		_ = i
	}
	off += 4 * 32
	if protoLen < 0 || protoLen > snapMaxProto || off+protoLen > len(data) {
		return nil, fmt.Errorf("beep: snapshot protocol length %d out of range", protoLen)
	}
	c.Protocol = string(data[off : off+protoLen])
	off += protoLen
	if round > math.MaxInt64/2 || graphN > math.MaxInt64/2 || graphM > math.MaxInt64/2 {
		return nil, fmt.Errorf("beep: snapshot header out of range (n=%d m=%d round=%d)", graphN, graphM, round)
	}
	c.Round = int(round)
	c.GraphN = int(graphN)
	c.GraphM = int(graphM)

	// Section sizes are bounded by the buffer before anything is
	// allocated: n costs 32 bytes of stream state per vertex no matter
	// what the header claims.
	rest := data[off:]
	n := c.GraphN
	if n < 0 || n > len(rest)/32 {
		return nil, fmt.Errorf("beep: snapshot claims %d vertices, %d payload bytes cannot hold them", n, len(rest))
	}
	ragged := flags&snapFlagRagged != 0
	vals32 := flags&snapFlagVals32 != 0
	hasAdv := flags&snapFlagAdv != 0
	valSize := 8
	if vals32 {
		valSize = 4
	}

	c.Streams = make([][4]uint64, n)
	decodeStreamsRange(rest, c.Streams, 0, n)
	rest = rest[n*32:]

	if ragged {
		var err error
		if rest, err = decodeRaggedMachines(c, rest, n); err != nil {
			return nil, err
		}
	} else {
		if stride < 0 || stride > snapMaxProto {
			return nil, fmt.Errorf("beep: snapshot machine stride %d out of range", stride)
		}
		need := n * stride * valSize
		if stride != 0 && need/(stride*valSize) != n {
			return nil, fmt.Errorf("beep: snapshot machine section overflows (n=%d stride=%d)", n, stride)
		}
		if need > len(rest) {
			return nil, fmt.Errorf("beep: snapshot machine section truncated: need %d bytes, have %d", need, len(rest))
		}
		c.Machines = make([][]int64, n)
		backing := make([]int64, n*stride)
		for v := 0; v < n; v++ {
			c.Machines[v] = backing[v*stride : (v+1)*stride : (v+1)*stride]
		}
		ranges := snapshotRanges(n)
		var wg sync.WaitGroup
		for _, r := range ranges {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				decodeMachinesRange(rest, c.Machines, stride, vals32, lo, hi)
			}(r[0], r[1])
		}
		wg.Wait()
		rest = rest[need:]
	}

	if hasAdv {
		if n > len(rest) {
			return nil, fmt.Errorf("beep: snapshot adversary table truncated: need %d bytes, have %d", n, len(rest))
		}
		c.Adversaries = append([]uint8(nil), rest[:n]...)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("beep: snapshot has %d trailing bytes", len(rest))
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("beep: read snapshot: %w", err)
	}
	return c, nil
}

func decodeStreamsRange(src []byte, streams [][4]uint64, lo, hi int) {
	le := binary.LittleEndian
	for v := lo; v < hi; v++ {
		base := v * 32
		streams[v] = [4]uint64{
			le.Uint64(src[base:]),
			le.Uint64(src[base+8:]),
			le.Uint64(src[base+16:]),
			le.Uint64(src[base+24:]),
		}
	}
}

func decodeMachinesRange(src []byte, machines [][]int64, stride int, vals32 bool, lo, hi int) {
	le := binary.LittleEndian
	if vals32 {
		for v := lo; v < hi; v++ {
			base := v * stride * 4
			m := machines[v]
			for i := range m {
				m[i] = int64(int32(le.Uint32(src[base+i*4:])))
			}
		}
		return
	}
	for v := lo; v < hi; v++ {
		base := v * stride * 8
		m := machines[v]
		for i := range m {
			m[i] = int64(le.Uint64(src[base+i*8:]))
		}
	}
}

func decodeRaggedMachines(c *Checkpoint, rest []byte, n int) ([]byte, error) {
	c.Machines = make([][]int64, n)
	for v := 0; v < n; v++ {
		l, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("beep: snapshot vertex %d: truncated machine length", v)
		}
		rest = rest[k:]
		if l > uint64(len(rest)) {
			// Each varint value costs at least one byte, so a length
			// beyond the remaining bytes can never decode.
			return nil, fmt.Errorf("beep: snapshot vertex %d: machine length %d exceeds remaining payload", v, l)
		}
		m := make([]int64, int(l))
		for i := range m {
			x, k := binary.Varint(rest)
			if k <= 0 {
				return nil, fmt.Errorf("beep: snapshot vertex %d: truncated machine value %d", v, i)
			}
			m[i] = x
			rest = rest[k:]
		}
		c.Machines[v] = m
	}
	return rest, nil
}

// DecodeCheckpointAuto parses a checkpoint in either supported
// encoding, sniffing the leading bytes: the v3 binary magic selects
// DecodeSnapshot, anything else falls back to the v2 JSON decoder.
func DecodeCheckpointAuto(data []byte) (*Checkpoint, error) {
	if len(data) >= 4 && bytes.Equal(data[0:4], snapshotMagic[:]) {
		return DecodeSnapshot(data)
	}
	return ReadCheckpoint(bytes.NewReader(data))
}

// WriteSnapshot serializes a checkpoint in the v3 binary format.
func WriteSnapshot(w io.Writer, c *Checkpoint) error {
	buf, err := EncodeSnapshot(c)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("beep: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot reads a checkpoint in either format (v3 binary or v2
// JSON, auto-detected) from r.
func ReadSnapshot(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("beep: read snapshot: %w", err)
	}
	return DecodeCheckpointAuto(data)
}
