package beep

import (
	"testing"

	"repro/internal/graph"
)

// TestWithWorkersValidation covers the WithWorkers option contract:
// negative counts are a construction error, zero means "pick for me",
// explicit counts are honored by the pooled engines (up to the 64-
// vertex stripe granularity) and ignored by the single-threaded ones.
func TestWithWorkersValidation(t *testing.T) {
	g := graph.Cycle(200)

	if _, err := NewNetwork(g, xoverProtocol{channels: 1}, 1, WithWorkers(-1)); err == nil {
		t.Fatal("negative WithWorkers accepted")
	}

	// kernels is a protocol with flat cohort kernels (required by the
	// Flat/FlatParallel engines) that never injects a fault.
	kernels := flatPanicProtocol{round: -1}

	// Sequential engines: no pool regardless of the requested count.
	for _, e := range []Engine{Sequential, Flat} {
		net, err := NewNetwork(g, kernels, 1, WithEngine(e), WithWorkers(8))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if net.workers != nil {
			t.Fatalf("%v: sequential engine built a worker pool", e)
		}
		net.Close()
	}

	// Pooled engines: the pool exists and never exceeds the request.
	for _, e := range []Engine{Parallel, FlatParallel} {
		for _, want := range []int{1, 2, 3, 999} {
			net, err := NewNetwork(g, kernels, 1, WithEngine(e), WithWorkers(want))
			if err != nil {
				t.Fatalf("%v/w%d: %v", e, want, err)
			}
			if net.workers == nil {
				t.Fatalf("%v/w%d: no worker pool", e, want)
			}
			if got := len(net.workers.shards); got > want {
				t.Fatalf("%v/w%d: %d shards exceed the requested worker count", e, want, got)
			}
			if e == FlatParallel {
				if len(net.workers.flat) != len(net.workers.shards) {
					t.Fatalf("flat worker state count %d != shard count %d",
						len(net.workers.flat), len(net.workers.shards))
				}
				// Stripe ownership: every shard boundary except the last
				// must be 64-aligned, the word-disjointness contract of
				// the pack and merge phases.
				for i, sh := range net.workers.shards {
					if sh[0]&63 != 0 {
						t.Fatalf("shard %d starts at unaligned vertex %d", i, sh[0])
					}
					if i < len(net.workers.shards)-1 && sh[1]&63 != 0 {
						t.Fatalf("shard %d ends at unaligned vertex %d", i, sh[1])
					}
				}
			}
			net.Close()
		}
	}

	// PerVertex keeps its one-goroutine-per-vertex model: the request is
	// ignored rather than silently resharding the engine's semantics.
	net, err := NewNetwork(graph.Cycle(16), xoverProtocol{channels: 1}, 1, WithEngine(PerVertex), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.workers.shards); got != 16 {
		t.Fatalf("PerVertex with WithWorkers(2) built %d shards, want 16", got)
	}
	net.Close()
}
