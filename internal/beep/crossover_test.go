package beep

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// xoverProtocol is a do-nothing protocol used to build networks whose
// sent arrays the delivery tests fill by hand.
type xoverProtocol struct{ channels int }

func (p xoverProtocol) Channels() int                          { return p.channels }
func (p xoverProtocol) NewMachine(int, graph.Topology) Machine { return xoverMachine{} }

type xoverMachine struct{}

func (xoverMachine) Emit(*rng.Source) Signal { return Silent }
func (xoverMachine) Update(_, _ Signal)      {}
func (xoverMachine) Randomize(*rng.Source)   {}

// deliverScatter computes heard via the sparse path (pack → scatter →
// compose), regardless of the cost model.
func deliverScatter(n *Network) []Signal {
	N := n.N()
	for c := 0; c < n.channels; c++ {
		n.sizeSendBits(c)
		n.packSendersRange(c, 0, N)
		n.scatterChannel(c)
	}
	n.composeHeard()
	return append([]Signal(nil), n.heard...)
}

// deliverGather computes heard via the dense path (reference early-exit
// neighbor scan), regardless of the cost model.
func deliverGather(n *Network) []Signal {
	n.deliverRange(0, n.N(), n.rowBuf)
	return append([]Signal(nil), n.heard...)
}

// TestDeliverCrossoverBoundary pins two properties of the sparse/dense
// delivery crossover:
//
//  1. The cost model (deliveryWantsGather) flips exactly where
//     GatherCrossoverFactor says it must: at senders × (avgDeg+1) ==
//     GatherCrossoverFactor × N the scatter path is still taken (the
//     comparison is strict), one more sender selects gather.
//  2. Both paths produce bit-identical heard signals at and around the
//     boundary (and at the extremes), on one- and two-channel networks
//     — the crossover is a pure cost decision, invisible to traces.
func TestDeliverCrossoverBoundary(t *testing.T) {
	// Cycle(240): avgDeg = 2, so the model compares senders×3 against
	// 2×240 = 480 — senders = 160 sits exactly ON the boundary.
	const N = 240
	boundary := GatherCrossoverFactor * N / (2 + 1) // 160
	if deliveryWantsGather(boundary, 2, N) {
		t.Fatalf("cost model not strict: %d senders on the boundary chose gather", boundary)
	}
	if !deliveryWantsGather(boundary+1, 2, N) {
		t.Fatalf("cost model did not flip one sender past the boundary")
	}

	g := graph.Cycle(N)
	src := rng.New(91)
	for _, channels := range []int{1, 2} {
		for _, senders := range []int{0, 1, boundary - 1, boundary, boundary + 1, N} {
			t.Run(fmt.Sprintf("ch%d/senders%d", channels, senders), func(t *testing.T) {
				net, err := NewNetwork(g, xoverProtocol{channels: channels}, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer net.Close()
				// A random sender set of the requested size, with random
				// channel choices on two-channel networks.
				for v := range net.sent {
					net.sent[v] = Silent
				}
				for _, v := range src.Perm(N)[:senders] {
					sig := Chan1
					if channels == 2 && src.Coin() {
						sig = Chan2
					}
					net.sent[v] = sig
				}
				sc := deliverScatter(net)
				ga := deliverGather(net)
				for v := range sc {
					if sc[v] != ga[v] {
						t.Fatalf("paths diverge at vertex %d: scatter %v, gather %v", v, sc[v], ga[v])
					}
				}
			})
		}
	}
}

// BenchmarkDeliverCrossover measures both delivery paths across sender
// fractions on an avg-degree-8 G(n,p) graph — the measurement behind
// the GatherCrossoverFactor default. The crossover model predicts
// scatter wins below senders ≈ 2N/9 (fraction ≈ 0.22 here) and gather
// above; the recorded curves should cross near that fraction.
func BenchmarkDeliverCrossover(b *testing.B) {
	const N = 1 << 16
	g := graph.GNPAvgDegree(N, 8, rng.New(5))
	src := rng.New(17)
	for _, fracPct := range []int{1, 5, 10, 22, 40, 80} {
		senders := N * fracPct / 100
		net, err := NewNetwork(g, xoverProtocol{channels: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for v := range net.sent {
			net.sent[v] = Silent
		}
		for _, v := range src.Perm(N)[:senders] {
			net.sent[v] = Chan1
		}
		b.Run(fmt.Sprintf("scatter/frac%02d", fracPct), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net.sizeSendBits(0)
				net.packSendersRange(0, 0, N)
				net.scatterChannel(0)
				net.composeHeard()
			}
		})
		b.Run(fmt.Sprintf("gather/frac%02d", fracPct), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net.deliverRange(0, N, net.rowBuf)
			}
		})
		net.Close()
	}
}
