package beep

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// codecProtocol is a checkpointable test protocol: beeps with
// probability 1/2 and counts rounds.
type codecProtocol struct{}

func (codecProtocol) Channels() int { return 1 }
func (codecProtocol) NewMachine(int, *graph.Graph) Machine {
	return &codecMachine{}
}

type codecMachine struct {
	rounds int64
	beeped int64
}

func (m *codecMachine) Emit(src *rng.Source) Signal {
	if src.Coin() {
		return Chan1
	}
	return Silent
}

func (m *codecMachine) Update(sent, _ Signal) {
	m.rounds++
	if sent.Has(Chan1) {
		m.beeped++
	}
}

func (m *codecMachine) Randomize(src *rng.Source) {
	m.rounds = int64(src.Intn(10))
}

func (m *codecMachine) EncodeState() []int64 { return []int64{m.rounds, m.beeped} }

func (m *codecMachine) DecodeState(state []int64) error {
	m.rounds, m.beeped = state[0], state[1]
	return nil
}

func traceOf(t *testing.T, net *Network, steps int) [][]Signal {
	t.Helper()
	var tr [][]Signal
	for i := 0; i < steps; i++ {
		net.Step()
		row := make([]Signal, net.N())
		copy(row, net.sent)
		tr = append(tr, row)
	}
	return tr
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	g := graph.GNP(40, 0.1, rng.New(3))

	// Straight-through run: 60 rounds.
	netA, err := NewNetwork(g, codecProtocol{}, 7, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	full := traceOf(t, netA, 60)

	// Checkpointed run: 30 rounds, checkpoint, restore onto a FRESH
	// network, 30 more rounds.
	netB, err := NewNetwork(g, codecProtocol{}, 7, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()
	_ = traceOf(t, netB, 30)
	cp, err := netB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize and parse the checkpoint to exercise the JSON round trip.
	var sb strings.Builder
	if err := WriteCheckpoint(&sb, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	netC, err := NewNetwork(g, codecProtocol{}, 999 /* different seed */, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netC.Close()
	if err := netC.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	if netC.Round() != 30 {
		t.Fatalf("restored round %d, want 30", netC.Round())
	}
	tail := traceOf(t, netC, 30)

	for r := 0; r < 30; r++ {
		for v := range tail[r] {
			if tail[r][v] != full[30+r][v] {
				t.Fatalf("resumed trace diverged at round %d vertex %d", 31+r, v)
			}
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	g := graph.Path(3)
	// counterProtocol machines do not implement StateCodec.
	net, err := NewNetwork(g, counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := net.Checkpoint(); err == nil {
		t.Fatal("checkpoint of non-codec machines accepted")
	}
	if err := net.Restore(&Checkpoint{Machines: make([][]int64, 3), Streams: make([][4]uint64, 3)}); err == nil {
		t.Fatal("restore onto non-codec machines accepted")
	}

	netC, err := NewNetwork(g, codecProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer netC.Close()
	if err := netC.Restore(nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	if err := netC.Restore(&Checkpoint{Machines: make([][]int64, 1), Streams: make([][4]uint64, 1)}); err == nil {
		t.Fatal("size-mismatched checkpoint accepted")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
