package beep

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// codecProtocol is a checkpointable test protocol: beeps with
// probability 1/2 and counts rounds.
type codecProtocol struct{}

func (codecProtocol) Channels() int { return 1 }
func (codecProtocol) NewMachine(int, graph.Topology) Machine {
	return &codecMachine{}
}

type codecMachine struct {
	rounds int64
	beeped int64
}

func (m *codecMachine) Emit(src *rng.Source) Signal {
	if src.Coin() {
		return Chan1
	}
	return Silent
}

func (m *codecMachine) Update(sent, _ Signal) {
	m.rounds++
	if sent.Has(Chan1) {
		m.beeped++
	}
}

func (m *codecMachine) Randomize(src *rng.Source) {
	m.rounds = int64(src.Intn(10))
}

func (m *codecMachine) EncodeState() []int64 { return []int64{m.rounds, m.beeped} }

func (m *codecMachine) DecodeState(state []int64) error {
	m.rounds, m.beeped = state[0], state[1]
	return nil
}

func traceOf(t *testing.T, net *Network, steps int) [][]Signal {
	t.Helper()
	var tr [][]Signal
	for i := 0; i < steps; i++ {
		net.Step()
		row := make([]Signal, net.N())
		copy(row, net.sent)
		tr = append(tr, row)
	}
	return tr
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	g := graph.GNP(40, 0.1, rng.New(3))

	// Straight-through run: 60 rounds.
	netA, err := NewNetwork(g, codecProtocol{}, 7, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	full := traceOf(t, netA, 60)

	// Checkpointed run: 30 rounds, checkpoint, restore onto a FRESH
	// network, 30 more rounds.
	netB, err := NewNetwork(g, codecProtocol{}, 7, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()
	_ = traceOf(t, netB, 30)
	cp, err := netB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize and parse the checkpoint to exercise the JSON round trip.
	var sb strings.Builder
	if err := WriteCheckpoint(&sb, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	netC, err := NewNetwork(g, codecProtocol{}, 999 /* different seed */, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netC.Close()
	if err := netC.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	if netC.Round() != 30 {
		t.Fatalf("restored round %d, want 30", netC.Round())
	}
	tail := traceOf(t, netC, 30)

	for r := 0; r < 30; r++ {
		for v := range tail[r] {
			if tail[r][v] != full[30+r][v] {
				t.Fatalf("resumed trace diverged at round %d vertex %d", 31+r, v)
			}
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	g := graph.Path(3)
	// counterProtocol machines do not implement StateCodec.
	net, err := NewNetwork(g, counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := net.Checkpoint(); err == nil {
		t.Fatal("checkpoint of non-codec machines accepted")
	}
	if err := net.Restore(&Checkpoint{Machines: make([][]int64, 3), Streams: make([][4]uint64, 3)}); err == nil {
		t.Fatal("restore onto non-codec machines accepted")
	}

	netC, err := NewNetwork(g, codecProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer netC.Close()
	if err := netC.Restore(nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	if err := netC.Restore(&Checkpoint{Machines: make([][]int64, 1), Streams: make([][4]uint64, 1)}); err == nil {
		t.Fatal("size-mismatched checkpoint accepted")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestCheckpointAdversaryDivergenceRegression is the regression test for
// the pre-v2 checkpoint format, which omitted the adversary stream
// state, the adversary epoch and the per-vertex policy array: a resumed
// adversarial run silently diverged from the uninterrupted one. The v2
// format carries all three, and Restore installs them even onto a
// network constructed with *no* adversaries — proving the checkpoint,
// not the constructor, is the source of truth.
func TestCheckpointAdversaryDivergenceRegression(t *testing.T) {
	g := graph.GNP(30, 0.15, rng.New(11))
	babblers := []int{2, 7, 19}
	opts := []Option{
		WithNoise(Noise{PLoss: 0.03, PFalse: 0.01}),
		WithSleep(Sleep{P: 0.05}),
	}

	// Uninterrupted adversarial run: 50 rounds.
	netA, err := NewNetwork(g, codecProtocol{}, 5, append(opts, WithAdversaries(AdvBabbler, babblers))...)
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	full := traceOf(t, netA, 50)

	// Interrupted run: 20 rounds, checkpoint (through the JSON round
	// trip), resume onto a fresh network built WITHOUT adversaries and
	// with a different seed.
	netB, err := NewNetwork(g, codecProtocol{}, 5, append(opts, WithAdversaries(AdvBabbler, babblers))...)
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()
	_ = traceOf(t, netB, 20)
	cp, err := netB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Adversaries == nil || cp.AdvRNG == ([4]uint64{}) {
		t.Fatal("checkpoint did not capture adversary state (the pre-v2 bug)")
	}
	var sb strings.Builder
	if err := WriteCheckpoint(&sb, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	netC, err := NewNetwork(g, codecProtocol{}, 999, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer netC.Close()
	if err := netC.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	if netC.AdversaryCount() != len(babblers) {
		t.Fatalf("restore installed %d adversaries, want %d", netC.AdversaryCount(), len(babblers))
	}
	for _, v := range babblers {
		if netC.AdversaryOf(v) != AdvBabbler {
			t.Fatalf("vertex %d restored as %v, want babbler", v, netC.AdversaryOf(v))
		}
	}
	if netC.AdversaryEpoch() != netB.AdversaryEpoch() {
		t.Fatalf("adversary epoch %d after restore, want %d", netC.AdversaryEpoch(), netB.AdversaryEpoch())
	}
	tail := traceOf(t, netC, 30)
	for r := 0; r < 30; r++ {
		for v := range tail[r] {
			if tail[r][v] != full[20+r][v] {
				t.Fatalf("resumed adversarial trace diverged at round %d vertex %d", 21+r, v)
			}
		}
	}
}

// TestCheckpointGraphMismatchRegression pins the fingerprint check:
// before v2, Restore accepted a checkpoint from ANY graph with a
// matching vertex count and silently produced a different execution.
func TestCheckpointGraphMismatchRegression(t *testing.T) {
	gA := graph.GNP(24, 0.2, rng.New(1)).WithName("A")
	gB := graph.GNP(24, 0.2, rng.New(2)).WithName("B") // same n, different edges
	if gA.N() != gB.N() {
		t.Fatalf("test setup: graphs must share n, got %d vs %d", gA.N(), gB.N())
	}
	netA, err := NewNetwork(gA, codecProtocol{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	_ = traceOf(t, netA, 10)
	cp, err := netA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	netB, err := NewNetwork(gB, codecProtocol{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()
	if err := netB.Restore(cp); err == nil {
		t.Fatal("checkpoint from a different graph with matching n accepted (the pre-v2 bug)")
	} else if !strings.Contains(err.Error(), "topologies differ") {
		t.Fatalf("wrong rejection: %v", err)
	}
	// Same structure, different name: accepted (fingerprints ignore names).
	gA2 := graph.GNP(24, 0.2, rng.New(1)).WithName("A-renamed")
	netA2, err := NewNetwork(gA2, codecProtocol{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer netA2.Close()
	if err := netA2.Restore(cp); err != nil {
		t.Fatalf("structurally identical renamed graph rejected: %v", err)
	}
}

// TestCheckpointIdentityRejections covers the remaining header checks:
// protocol mismatch, fault-model mismatch, integrity-hash tampering and
// unsupported format versions.
func TestCheckpointIdentityRejections(t *testing.T) {
	g := graph.Path(6)
	net, err := NewNetwork(g, codecProtocol{}, 1, WithNoise(Noise{PLoss: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	_ = traceOf(t, net, 5)
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Fault-model mismatch: same protocol, no noise.
	plain, err := NewNetwork(g, codecProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Restore(cp); err == nil {
		t.Fatal("checkpoint of a noisy run restored onto a noiseless network")
	}

	// Tampered payload: flip one machine word without re-sealing.
	cp.Machines[0][0]++
	if err := net.Restore(cp); err == nil {
		t.Fatal("tampered checkpoint accepted by Restore")
	}
	var sb strings.Builder
	if err := WriteCheckpoint(&sb, cp); err == nil {
		t.Fatal("tampered checkpoint accepted by WriteCheckpoint")
	}
	cp.Machines[0][0]--

	// Old format version.
	cp.FormatVersion = 1
	cp.Seal()
	if err := net.Restore(cp); err == nil {
		t.Fatal("format-version-1 checkpoint accepted")
	}
	cp.FormatVersion = CheckpointFormatVersion
	cp.Seal()
	if err := net.Restore(cp); err != nil {
		t.Fatalf("re-sealed checkpoint rejected: %v", err)
	}
}

// TestCheckpointRewireResume verifies the root-stream/next-stream
// capture: a Rewire executed after a resume must hand joiners exactly
// the random streams the uninterrupted run would have handed them.
func TestCheckpointRewireResume(t *testing.T) {
	g := graph.Cycle(12)
	edits := []graph.Edit{
		{Kind: graph.EditAddVertex},
		{Kind: graph.EditAddVertex},
		{Kind: graph.EditAddEdge, U: 12, V: 0},
		{Kind: graph.EditAddEdge, U: 13, V: 6},
		{Kind: graph.EditDelVertex, U: 3},
	}

	run := func(resumeAt int) [][]Signal {
		net, err := NewNetwork(g, codecProtocol{}, 77)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		var tr [][]Signal
		step := func() {
			net.Step()
			row := make([]Signal, net.N())
			copy(row, net.sent)
			tr = append(tr, row)
		}
		for r := 1; r <= 10; r++ {
			step()
			if r == resumeAt {
				cp, err := net.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				net.Close()
				net2, err := NewNetwork(g, codecProtocol{}, 1234)
				if err != nil {
					t.Fatal(err)
				}
				if err := net2.Restore(cp); err != nil {
					t.Fatal(err)
				}
				net = net2
			}
		}
		g2, mapping, err := graph.ApplyEdits(g, edits)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Rewire(g2, mapping[:12]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 10; r++ {
			step()
		}
		return tr
	}

	ref := run(-1)    // uninterrupted
	resumed := run(6) // killed and resumed before the rewire
	if len(ref) != len(resumed) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ref), len(resumed))
	}
	for r := range ref {
		for v := range ref[r] {
			if ref[r][v] != resumed[r][v] {
				t.Fatalf("post-rewire resumed trace diverged at round %d vertex %d", r+1, v)
			}
		}
	}
}
