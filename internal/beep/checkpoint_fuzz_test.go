package beep

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// FuzzReadCheckpoint asserts the hard-constraint of the checkpoint
// reader: whatever bytes arrive — malformed JSON, truncated payloads,
// wrong-length state vectors, corrupted integrity hashes — the reader
// returns an error or a checkpoint that Validate and Restore accept
// or reject cleanly. It must never panic. The corpus seeds a genuine
// checkpoint (captured from a live adversarial + noisy network) plus
// targeted corruptions of it.
func FuzzReadCheckpoint(f *testing.F) {
	// A real checkpoint as the structural seed.
	g := graph.GNP(12, 0.3, rng.New(9))
	net, err := NewNetwork(g, codecProtocol{}, 4,
		WithNoise(Noise{PLoss: 0.02, PFalse: 0.01}),
		WithAdversaries(AdvJammer, []int{1, 5}))
	if err != nil {
		f.Fatal(err)
	}
	defer net.Close()
	for i := 0; i < 8; i++ {
		net.Step()
	}
	cp, err := net.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCheckpoint(&sb, cp); err != nil {
		f.Fatal(err)
	}
	valid := sb.String()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                 // truncated payload
	f.Add(strings.Replace(valid, `"hash":`, `"hash":1`, 1))     // corrupted hash
	f.Add(strings.Replace(valid, `"round":8`, `"round":-3`, 1)) // negative round
	f.Add(strings.Replace(valid, `"formatVersion":2`, `"formatVersion":1`, 1))
	f.Add(strings.Replace(valid, `"machines":[[`, `"machines":[[9,9,9,9,`, 1)) // wrong-length state vector
	f.Add(strings.Replace(valid, `"streams":[[`, `"streams":[[`, 1))
	f.Add(`{}`)
	f.Add(`{"formatVersion":2,"machines":[[1]],"streams":[]}`)
	f.Add(`{"formatVersion":2,"graphN":1,"machines":[[1,2]],"streams":[[1,2,3,4]],"adversaries":"AA=="}`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`[1,2,3]`)

	f.Fuzz(func(t *testing.T, data string) {
		c, err := ReadCheckpoint(strings.NewReader(data))
		if err != nil {
			return // rejection is always fine; panics are not
		}
		// Anything the reader accepts must be internally consistent…
		if err := c.Validate(); err != nil {
			t.Fatalf("ReadCheckpoint accepted a checkpoint Validate rejects: %v", err)
		}
		// …and survive a restore attempt (success or clean error) onto a
		// live network without panicking.
		target, err := NewNetwork(g, codecProtocol{}, 4,
			WithNoise(Noise{PLoss: 0.02, PFalse: 0.01}))
		if err != nil {
			t.Fatal(err)
		}
		defer target.Close()
		_ = target.Restore(c)
	})
}
