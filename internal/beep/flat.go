package beep

import (
	"fmt"
	"math/bits"
	"runtime/debug"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/rng"
)

// This file implements the flat execution engine: rounds executed over
// structure-of-arrays machine slabs with zero per-vertex virtual
// dispatch. Protocols opt in by returning a bulk-state handle (see
// BatchProtocol) that implements FlatProtocol; the engine then replaces
// the per-machine Emit/Update interface calls with two whole-cohort
// kernel calls, and replaces the per-edge signal scatter with a
// bitset-based delivery kernel (deliverFlat below).
//
// The flat path is observationally identical to the reference engines:
// each vertex consumes exactly the draws its Machine.Emit would have
// consumed from its private stream, so traces are bit-for-bit equal
// (enforced by TestEngineTraceEquivalence and FuzzFlatEmitDrawEquivalence).
// Because of that, the Sequential engine transparently upgrades to the
// flat kernels whenever the protocol provides them; the explicit Flat
// engine additionally *requires* them (construction fails otherwise,
// making performance predictable) and is the only engine on which the
// amortized Bernoulli sampler (WithBatchedSampling) may be enabled.

// FlatEnv is the execution environment the flat engine passes to a
// FlatProtocol's kernels for one round phase. The slices alias network
// storage and must not be retained.
type FlatEnv struct {
	// Sent is the per-vertex signal array of the round. EmitAll must
	// fill Sent[v] for every vertex whose Skip bit is clear and leave
	// skipped entries untouched (the engine pre-fills those).
	Sent []Signal
	// Heard is the OR of neighbor signals, valid during UpdateAll.
	Heard []Signal
	// Srcs are the private per-vertex random streams. On the exact path
	// (Sampler == nil) kernels must consume them exactly as the
	// corresponding Machine.Emit would, so traces stay bit-identical.
	Srcs []*rng.Source
	// Skip marks the vertices the kernel must not touch this round
	// (sleeping or adversarial); nil when every vertex participates.
	Skip *bitset.Set
	// Sampler, when non-nil, replaces the per-vertex Bernoulli(2^-ℓ)
	// draws with the amortized batch sampler. Distribution-exact,
	// sequence-divergent; enabled only via WithBatchedSampling.
	Sampler *rng.Batch

	// Drew must be set true by EmitAll if it consumed any randomness
	// (from Srcs or Sampler) this round. Drawless rounds are candidates
	// for quiescence elision (see FlatQuiescer); a kernel that forgets
	// to set Drew breaks trace exactness, which the engine equivalence
	// tests would catch.
	Drew bool
	// Changed must be set true by UpdateAll if it mutated any machine
	// state this round (level, cap, or auxiliary counters). A round
	// that neither drew nor changed is a fixed point of the dynamics.
	Changed bool
}

// Skipped reports whether vertex v must be left untouched this round.
func (e *FlatEnv) Skipped(v int) bool {
	return e.Skip != nil && e.Skip.Get(v)
}

// FlatProtocol is the optional extension implemented by the bulk-state
// handles of protocols that support the flat engines (for the paper's
// protocols these are the contiguous int32 level/cap slabs introduced
// with BatchProtocol). EmitAll and UpdateAll must be observationally
// identical to calling Emit/Update on every non-skipped machine in
// vertex order.
//
// The range forms are the unit of work of the FlatParallel engine: each
// worker runs one contiguous slab stripe [lo, hi). EmitRange(env, lo,
// hi) must behave exactly like the [lo, hi) sub-loop of EmitAll —
// touching only Sent[lo:hi] and the streams of vertices in [lo, hi), so
// disjoint stripes never write shared state — and EmitAll(env) must be
// equivalent to EmitRange(env, 0, len(Sent)) (same for UpdateAll /
// UpdateRange). Because each vertex consumes randomness only from its
// own private stream, stripes can execute in any order or concurrently
// without perturbing any vertex's draw sequence: that is the whole
// determinism argument of the parallel flat engine.
//
// Each worker passes its own FlatEnv, so the Drew/Changed flags are
// per-stripe and race-free; the engine ORs them after the barrier.
type FlatProtocol interface {
	// EmitAll decides every non-skipped vertex's signal for the round.
	EmitAll(env *FlatEnv)
	// UpdateAll applies every non-skipped vertex's state transition
	// given the round's Sent and Heard signals.
	UpdateAll(env *FlatEnv)
	// EmitRange is the [lo, hi) stripe of EmitAll.
	EmitRange(env *FlatEnv, lo, hi int)
	// UpdateRange is the [lo, hi) stripe of UpdateAll.
	UpdateRange(env *FlatEnv, lo, hi int)
}

// FlatQuiescer is the optional extension that enables quiescence
// elision. A stabilized configuration of the paper's protocols is a
// literal fixed point of the round function: MIS members (ℓ ≤ 0) beep
// surely without consulting their stream, everyone else sits at ℓmax in
// silence, and no Update moves — so the round neither draws randomness
// nor changes state, and every subsequent round is byte-identical until
// something external (Corrupt, a targeted SetLevel, Restore, Rewire)
// perturbs the state. The engine exploits this exactly: after a round
// with !Drew && !Changed it calls SnapshotState, and while the snapshot
// verifies (StateUnchanged) it elides whole rounds in one O(n) slab
// compare instead of an O(n + m) simulation. The compare makes the
// optimization sound with no invalidation hooks: any mutation of
// machine state — through the Network or through a retained Machine
// pointer — fails the verify and drops back to full simulation.
type FlatQuiescer interface {
	// SnapshotState records the complete mutable machine state of the
	// cohort for later comparison.
	SnapshotState()
	// StateUnchanged reports whether the cohort state is byte-identical
	// to the last snapshot; it must return false if no snapshot exists.
	StateUnchanged() bool
}

// FlatReiniter is the optional extension implemented by bulk-state
// handles that can restore their machine cohort to the protocol's
// initial configuration for the current graph, enabling the
// allocation-free Network.Reseed used by replication pools
// (exp.RunReplicated).
type FlatReiniter interface {
	// ReinitAll re-initializes every machine exactly as NewMachines
	// would have built it for g.
	ReinitAll(g graph.Topology)
}

// WithFlatKernels enables or disables the flat fast path on the
// Sequential engine (default: enabled when the protocol provides it).
// Disabling forces the reference per-machine loop; the engine
// trace-equivalence tests use this to pin the flat kernels against the
// reference semantics. It has no effect on the Parallel and PerVertex
// engines, and the explicit Flat engine rejects it.
func WithFlatKernels(enabled bool) Option {
	return func(n *Network) { n.noFlat = !enabled }
}

// WithBatchedSampling replaces the per-vertex Bernoulli(2^-ℓ) draws of
// the flat kernels with the amortized rng.Batch sampler (one 64-bit
// draw services up to ⌊64/ℓ⌋ same-level trials). The sampled execution
// is distribution-identical but not bit-identical to the exact path, so
// the option is only accepted on the explicit Flat engine, and networks
// using it refuse to checkpoint (the sampler's residual words are not
// part of checkpoint format v2).
func WithBatchedSampling() Option {
	return func(n *Network) { n.batched = true }
}

// Dedicated-stream salts (see NewNetwork): each auxiliary randomness
// consumer derives its stream from the root seed XOR an ASCII salt so
// executions stay reproducible and engine-independent.
const (
	noiseSalt = 0x6e6f697365 // "noise"
	sleepSalt = 0x736c656570 // "sleep"
	advSalt   = 0x61647673   // "advs"
	batchSalt = 0x6261746368 // "batch"
)

// finishFlatSetup resolves the flat configuration after all options
// have been applied: binds the flat kernels (unless disabled), enforces
// the Flat engine's requirement for them, and constructs the batch
// sampler when requested.
func (n *Network) finishFlatSetup(proto Protocol, seed uint64) error {
	n.bindFlatOps()
	if n.engine == Flat || n.engine == FlatParallel {
		if n.noFlat {
			return fmt.Errorf("beep: WithFlatKernels(false) conflicts with the %v engine", n.engine)
		}
		if n.flatOps == nil {
			return fmt.Errorf("beep: %v engine requires flat kernels, but %T's bulk state (%T) does not implement FlatProtocol", n.engine, proto, n.bulk)
		}
	}
	if n.sparseMode == SparseOn {
		if n.flatOps == nil || n.engine == Parallel || n.engine == PerVertex {
			return fmt.Errorf("beep: WithSparse(on) requires a flat-kernel engine (Sequential with kernels, Flat, or FlatParallel); got %v", n.engine)
		}
		if _, ok := n.flatOps.(SparseFlatProtocol); !ok {
			return fmt.Errorf("beep: WithSparse(on): %T's bulk state (%T) does not implement SparseFlatProtocol", proto, n.bulk)
		}
	}
	if n.batched {
		if n.engine != Flat {
			// FlatParallel is also excluded: the amortized sampler is one
			// shared sequential stream, which worker stripes cannot share
			// without serializing (or re-ordering) draws.
			return fmt.Errorf("beep: WithBatchedSampling requires the flat engine (got %v): only the explicitly non-trace-equivalent engine may re-order draws", n.engine)
		}
		n.sampler = rng.NewBatch(seed ^ batchSalt)
	}
	return nil
}

// bindFlatOps (re)derives the flat kernel and quiescer bindings from
// the current bulk-state handle; called at construction and after
// Rewire (which rebuilds the slab, or drops it for non-codec machine
// cohorts). Any rebind discards quiescence: the snapshot, if any, was
// taken of the previous slab.
func (n *Network) bindFlatOps() {
	n.flatOps = nil
	n.flatQuiescer = nil
	n.quiet = false
	// Whatever triggered the rebind (construction, Rewire) changed the
	// cohort or topology: the sparse path must restart from an
	// all-active frontier and rebuild its delivery invariants densely,
	// and any incremental-checkpoint baseline is void.
	n.sparse.markAll()
	n.ckDirty.markAll()
	n.ckDirty.adv = true
	if n.noFlat {
		return
	}
	if fp, ok := n.bulk.(FlatProtocol); ok {
		n.flatOps = fp
	}
	if q, ok := n.bulk.(FlatQuiescer); ok {
		n.flatQuiescer = q
	}
}

// stepFlat executes one synchronous round through the flat kernels:
// sequential pre-phases (sleep/adversary draws) exactly as the other
// engines run them, whole-cohort emit, bitset delivery, the sequential
// noise pass, and whole-cohort update. Machine panics inside a kernel
// are contained into a *RunError like every other engine; the flat
// kernels process the cohort as a whole, so the error cannot name the
// vertex (Vertex is -1).
func (n *Network) stepFlat(ops FlatProtocol) *RunError {
	if n.quiet {
		// Quiescence elision: the previous round was a fixed point
		// (no draws, no state change, no fault models enabled). If the
		// state still matches the snapshot — i.e. nothing mutated it
		// between rounds — this round is byte-identical to the last:
		// sent and heard already hold its signals, no stream moves, no
		// state moves. One O(n) compare replaces the O(n + m) round.
		if n.flatQuiescer.StateUnchanged() {
			n.roundActive, n.roundFrontier = 0, 0
			return nil
		}
		n.quiet = false
	}
	n.drawSleep()
	n.drawAdversaries()
	env := &n.flatEnv
	env.Sent, env.Heard, env.Srcs = n.sent, n.heard, n.srcs
	env.Skip = n.buildFlatSkip()
	env.Sampler = n.sampler
	env.Drew, env.Changed = false, false
	if err := n.runFlatKernel("emit", ops, env); err != nil {
		return err
	}
	n.deliverFlat()
	n.applyNoise()
	if err := n.runFlatKernel("update", ops, env); err != nil {
		return err
	}
	if !env.Drew && !env.Changed && n.flatQuiescer != nil &&
		env.Skip == nil && !n.noise.enabled() {
		// Fixed point reached (fault models that consume per-round
		// randomness — sleep, adversaries, noise — disqualify the
		// round; a skip mask implies the former two were active).
		n.flatQuiescer.SnapshotState()
		n.quiet = true
	}
	return nil
}

// runFlatKernel invokes one cohort kernel (phase "emit" or "update")
// with the same panic containment contract as emitRange/updateRange.
func (n *Network) runFlatKernel(phase string, ops FlatProtocol, env *FlatEnv) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: -1, Round: n.round + 1, Phase: phase,
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	if phase == "emit" {
		ops.EmitAll(env)
	} else {
		ops.UpdateAll(env)
	}
	return nil
}

// buildFlatSkip assembles the per-round skip mask (sleeping and
// adversarial vertices) and pre-fills their sent signals with exactly
// the values emitRange would have produced: adversaries transmit their
// policy signal regardless of sleep (adversary-before-sleep semantics),
// sleepers transmit nothing. Returns nil when every vertex
// participates, the common case, so the kernels' fast loops carry no
// per-vertex mask test.
func (n *Network) buildFlatSkip() *bitset.Set {
	sleeping := n.sleep.enabled() && n.asleep != nil
	if n.advCount == 0 && !sleeping {
		return nil
	}
	N := n.N()
	skip := &n.flatSkip
	if skip.Len() != N {
		skip.Resize(N)
	} else {
		skip.Reset()
	}
	if n.advCount > 0 {
		for v, p := range n.adv {
			if p != 0 {
				skip.Set1(v)
				n.sent[v] = n.advSent[v]
			}
		}
	}
	if sleeping {
		for v, z := range n.asleep {
			if z && !(n.adv != nil && n.adv[v] != 0) {
				skip.Set1(v)
				n.sent[v] = Silent
			}
		}
	}
	return skip
}

// zeroSignals is a reusable all-silent block for word-granular clears
// of the heard array.
var zeroSignals [64]Signal

// GatherCrossoverFactor is the sparse/dense crossover of the flat
// delivery kernel: the scatter path (OR each sender's CSR row into a
// heard bitset) is taken while its estimated cost, senders × (avgDeg +
// 1), stays at or below GatherCrossoverFactor × N; beyond that the
// per-vertex gather scan wins, because it costs at most O(N · channels)
// probes with early exit once every channel has been heard, while the
// scatter cost keeps growing with the number of senders.
//
// The default of 2 ("scatter until it would touch more than ~2 words
// per vertex") was chosen by measurement: BenchmarkDeliverCrossover
// sweeps the sender fraction on an avg-degree-8 G(n,p) graph and the
// scatter/gather cost curves cross within a factor of ~1.5 of this
// setting, with both paths within noise of each other at the boundary
// itself — so the exact constant is uncritical, which is what a
// hard-coded crossover needs to be. Both paths produce the exact same
// heard masks (pinned by TestDeliverCrossoverBoundary), so the choice
// is invisible to traces.
const GatherCrossoverFactor = 2

// deliveryWantsGather applies the crossover cost model shared by the
// sequential flat engine and the parallel one (where senders is the sum
// of the per-worker pack counts).
func deliveryWantsGather(senders, avgDeg, N int) bool {
	return senders*(avgDeg+1) > GatherCrossoverFactor*N
}

// avgDegree returns the integer average degree ⌊2M/N⌋ used by the
// delivery cost model.
func (n *Network) avgDegree() int {
	N := n.N()
	if N == 0 {
		return 0
	}
	return 2 * n.g.M() / N
}

// deliverFlat computes heard[v] for every vertex with word-level bitset
// operations: per channel, the senders are packed into a bitset, and
// the neighborhood OR is produced either by *scattering* each sender's
// CSR row into a heard bitset (cost Σ_{senders} deg, the win whenever
// few vertices beep — the steady state of a stabilized MIS) or, when
// the estimated scatter cost exceeds the early-exit gather bound (see
// GatherCrossoverFactor), by the reference per-vertex scan. Both
// produce the exact OR, so the choice is invisible to traces.
func (n *Network) deliverFlat() {
	N := n.N()
	if N == 0 {
		return
	}
	senders := 0
	for c := 0; c < n.channels; c++ {
		n.sizeSendBits(c)
		senders += n.packSendersRange(c, 0, N)
	}
	if deliveryWantsGather(senders, n.avgDegree(), N) {
		n.deliverRange(0, N, n.rowBuf)
		return
	}
	for c := 0; c < n.channels; c++ {
		n.scatterChannel(c)
	}
	n.composeHeard()
}

// sizeSendBits makes the channel-c sender bitset match the current
// vertex count. Sizing is separated from packing so the parallel engine
// can resize once, sequentially, before the pack phase fans out.
func (n *Network) sizeSendBits(c int) {
	if sb := &n.sendBits[c]; sb.Len() != n.N() {
		sb.Resize(n.N())
	}
}

// packSendersRange builds the channel-c sender bits for the vertex
// range [lo, hi) and returns the number of senders in the range. lo
// must be 64-aligned and hi either 64-aligned or N, so distinct ranges
// own disjoint words of the bitset — the property that lets the
// parallel engine pack stripes concurrently with no atomics.
func (n *Network) packSendersRange(c, lo, hi int) int {
	mask := Signal(1) << uint(c)
	words := n.sendBits[c].Words()
	sent := n.sent
	count := 0
	var w uint64
	wi := lo >> 6
	for v := lo; v < hi; v++ {
		if sent[v]&mask != 0 {
			w |= 1 << uint(v&63)
		}
		if v&63 == 63 {
			words[wi] = w
			count += bits.OnesCount64(w)
			w = 0
			wi++
		}
	}
	if hi&63 != 0 {
		words[wi] = w
		count += bits.OnesCount64(w)
	}
	return count
}

// scatterChannel ORs each channel-c sender's CSR neighborhood into the
// channel's heard bitset.
func (n *Network) scatterChannel(c int) {
	N := n.N()
	hb := &n.heardBits[c]
	if hb.Len() != N {
		hb.Resize(N)
	} else {
		hb.Reset()
	}
	n.scatterWordsInto(c, hb.Words(), 0, len(n.sendBits[c].Words()), n.rowBuf)
}

// scatterWordsInto ORs the neighbor rows of the channel-c senders found
// in sender-bitset words [wlo, whi) into hw, a full-length heard word
// array. The *reads* are word-range-partitioned; the *writes* land
// anywhere in hw (a sender's neighbors are arbitrary), which is why the
// parallel engine hands each worker a private hw and merges afterwards.
// buf is the neighbor scratch for synthesizing backends, ignored on the
// materialized fast path.
func (n *Network) scatterWordsInto(c int, hw []uint64, wlo, whi int, buf []int32) {
	sw := n.sendBits[c].Words()
	g := n.csr
	for wi := wlo; wi < whi; wi++ {
		w := sw[wi]
		base := wi * 64
		for w != 0 {
			u := base + bits.TrailingZeros64(w)
			w &= w - 1
			var row []int32
			if g != nil {
				row = g.Neighbors(u)
			} else {
				row = n.g.NeighborsInto(u, buf)
			}
			for _, x := range row {
				hw[x>>6] |= 1 << (uint(x) & 63)
			}
		}
	}
}

// composeHeard expands the per-channel heard bitsets into the heard
// signal array.
func (n *Network) composeHeard() {
	n.composeHeardRange(0, n.N())
}

// composeHeardRange expands vertices [lo, hi) of the per-channel heard
// bitsets into the heard signal array, clearing 64 vertices at a time
// in the silent common case. lo must be 64-aligned (hi either
// 64-aligned or N) so parallel stripes touch disjoint words.
func (n *Network) composeHeardRange(lo, hi int) {
	h1 := n.heardBits[0].Words()
	var h2 []uint64
	if n.channels == 2 {
		h2 = n.heardBits[1].Words()
	}
	heard := n.heard
	for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
		base := wi * 64
		end := base + 64
		if end > hi {
			end = hi
		}
		w1 := h1[wi]
		var w2 uint64
		if h2 != nil {
			w2 = h2[wi]
		}
		if w1|w2 == 0 {
			copy(heard[base:end], zeroSignals[:end-base])
			continue
		}
		for v := base; v < end; v++ {
			sh := uint(v & 63)
			heard[v] = Signal((w1>>sh)&1) | Signal((w2>>sh)&1)<<1
		}
	}
}

// Reseed resets the network to the exact state NewNetwork(g, proto,
// seed, opts...) would have produced, without reallocating any slab:
// machine states are re-initialized in place (via the bulk handle's
// FlatReiniter), every random stream is re-derived from the new seed,
// and the round counter, failure poison and child-stream allocator are
// cleared. Installed adversary policies and the noise/sleep parameters
// are construction-time configuration and are kept.
//
// Reseed is the amortization primitive of replication sweeps
// (exp.RunReplicated): one network per worker, re-seeded per trial,
// replaces per-trial graph/CSR re-validation and slab allocation.
// Executions after a Reseed are bit-identical to freshly constructed
// ones (property-tested by TestReseedMatchesFreshNetwork).
func (n *Network) Reseed(seed uint64) error {
	if n.closed {
		return fmt.Errorf("beep: Reseed on closed Network")
	}
	ri, ok := n.bulk.(FlatReiniter)
	if !ok {
		return fmt.Errorf("beep: Reseed requires a protocol whose bulk state supports re-initialization; %T's bulk state (%T) does not implement FlatReiniter", n.proto, n.bulk)
	}
	ri.ReinitAll(n.g)
	n.seed = seed
	n.root.Reseed(seed)
	for v := range n.srcs {
		n.root.SplitInto(uint64(v), n.srcs[v])
	}
	n.nextStream = uint64(n.N())
	n.noiseSrc.Reseed(seed ^ noiseSalt)
	n.sleepSrc.Reseed(seed ^ sleepSalt)
	n.advSrc.Reseed(seed ^ advSalt)
	if n.sampler != nil {
		n.sampler.Reseed(seed ^ batchSalt)
	}
	for v := range n.sent {
		n.sent[v] = Silent
		n.heard[v] = Silent
	}
	n.round = 0
	n.failed = nil
	n.quiet = false // sent/heard were cleared: a stale snapshot must not elide
	// The sender bitsets still hold the previous execution's bits while
	// sent was just cleared: force the sparse path to restart all-active
	// and rebuild its delivery invariants densely. Every vertex state
	// and stream was rewritten, so the dirty baseline is void too.
	n.sparse.markAll()
	n.ckDirty.markAll()
	n.ckDirty.adv = true
	n.advEpoch++ // new execution: legality observers must re-key
	if n.workers != nil {
		// Flat-parallel stripe state is per-round (reset by every
		// stepFlatParallel), but a reseed starts a NEW execution on the
		// same pool: clear the pack counters, activity flags and
		// environments eagerly so nothing from the previous trial can
		// leak into round 1 — the property the replication pools
		// (exp.RunReplicated) and the post-Rewire regression test
		// (TestFlatParallelRewireReseedBitExact) rely on.
		for i := range n.workers.flat {
			w := &n.workers.flat[i]
			w.env = FlatEnv{}
			w.senders = 0
			w.active = false
		}
	}
	return nil
}
