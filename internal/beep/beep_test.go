package beep

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// counterProtocol is a deterministic test protocol: every machine beeps
// on rounds where its hit counter is even and counts beeps heard.
type counterProtocol struct{}

func (counterProtocol) Channels() int { return 1 }
func (counterProtocol) NewMachine(int, graph.Topology) Machine {
	return &counterMachine{}
}

type counterMachine struct {
	round int
	heard int
}

func (m *counterMachine) Emit(*rng.Source) Signal {
	if m.round%2 == 0 {
		return Chan1
	}
	return Silent
}

func (m *counterMachine) Update(_, heard Signal) {
	m.round++
	if heard.Has(Chan1) {
		m.heard++
	}
}

func (m *counterMachine) Randomize(src *rng.Source) {
	m.round = src.Intn(2)
}

// probeProtocol beeps with probability 1/2 using the vertex stream; used
// for engine-equivalence checks where randomness matters.
type probeProtocol struct{}

func (probeProtocol) Channels() int { return 1 }
func (probeProtocol) NewMachine(int, graph.Topology) Machine {
	return &probeMachine{}
}

type probeMachine struct {
	beeps  int
	heards int
}

func (m *probeMachine) Emit(src *rng.Source) Signal {
	if src.Coin() {
		return Chan1
	}
	return Silent
}

func (m *probeMachine) Update(sent, heard Signal) {
	if sent.Has(Chan1) {
		m.beeps++
	}
	if heard.Has(Chan1) {
		m.heards++
	}
}

func (m *probeMachine) Randomize(src *rng.Source) {
	m.beeps = src.Intn(3)
}

func TestSignalString(t *testing.T) {
	cases := map[Signal]string{
		Silent: "-", Chan1: "1", Chan2: "2", Chan1 | Chan2: "12",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Signal(%d).String()=%q want %q", s, got, want)
		}
	}
}

func TestSignalHas(t *testing.T) {
	if !Chan1.Has(Chan1) || Chan1.Has(Chan2) || Silent.Has(Chan1) {
		t.Fatal("Has wrong")
	}
	if !(Chan1 | Chan2).Has(Chan2) {
		t.Fatal("Has on combined signal wrong")
	}
}

func TestEngineString(t *testing.T) {
	if Sequential.String() != "sequential" || Parallel.String() != "parallel" || PerVertex.String() != "pervertex" {
		t.Fatal("engine names wrong")
	}
	if Engine(42).String() != "engine(42)" {
		t.Fatal("unknown engine name wrong")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, counterProtocol{}, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := badChannelsProtocol{}
	if _, err := NewNetwork(graph.Path(2), bad, 1); err == nil {
		t.Fatal("3-channel protocol accepted")
	}
}

type badChannelsProtocol struct{}

func (badChannelsProtocol) Channels() int                          { return 3 }
func (badChannelsProtocol) NewMachine(int, graph.Topology) Machine { return &counterMachine{} }

func TestHearingIsNeighborORNotSelf(t *testing.T) {
	// Star with center 0: all beep in round 0 (counterProtocol).
	g := graph.Star(5)
	net, err := NewNetwork(g, counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.Step()
	for v := 0; v < g.N(); v++ {
		m := net.Machine(v).(*counterMachine)
		if m.heard != 1 {
			t.Fatalf("vertex %d heard %d, want 1 (all neighbors beeped)", v, m.heard)
		}
	}
	// Isolated vertex never hears anything, even while beeping itself.
	g2 := graph.Empty(1)
	net2, err := NewNetwork(g2, counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net2.Close()
	for i := 0; i < 10; i++ {
		net2.Step()
	}
	if m := net2.Machine(0).(*counterMachine); m.heard != 0 {
		t.Fatalf("isolated vertex heard %d beeps; must never hear its own", m.heard)
	}
}

func TestRoundCountsAndRun(t *testing.T) {
	g := graph.Cycle(6)
	net, err := NewNetwork(g, counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if net.Round() != 0 {
		t.Fatal("fresh network has rounds")
	}
	rounds, ok := net.Run(5, nil)
	if rounds != 5 || !ok || net.Round() != 5 {
		t.Fatalf("Run(5) = %d,%v round=%d", rounds, ok, net.Round())
	}
	// Stop condition satisfied immediately costs zero rounds.
	rounds, ok = net.Run(5, func() bool { return true })
	if rounds != 0 || !ok {
		t.Fatalf("pre-satisfied stop: %d,%v", rounds, ok)
	}
	// Stop after two more rounds.
	target := net.Round() + 2
	rounds, ok = net.Run(100, func() bool { return net.Round() >= target })
	if rounds != 2 || !ok {
		t.Fatalf("conditional stop: %d,%v", rounds, ok)
	}
	// Budget exhaustion without stop satisfied.
	rounds, ok = net.Run(3, func() bool { return false })
	if rounds != 3 || ok {
		t.Fatalf("budget exhaustion: %d,%v", rounds, ok)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	g := graph.Path(4)
	var rounds []int
	var lastSent []Signal
	net, err := NewNetwork(g, counterProtocol{}, 1, WithObserver(func(r int, sent, heard []Signal) {
		rounds = append(rounds, r)
		lastSent = append(lastSent[:0], sent...)
		if len(heard) != g.N() {
			t.Errorf("observer heard slice length %d", len(heard))
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.Step()
	net.Step()
	if len(rounds) != 2 || rounds[0] != 1 || rounds[1] != 2 {
		t.Fatalf("observer rounds %v", rounds)
	}
	// Round 2: counter machines are at round 1 → silent.
	for v, s := range lastSent {
		if s != Silent {
			t.Fatalf("round 2 vertex %d sent %v, want silence", v, s)
		}
	}
}

func TestEnginesProduceIdenticalTraces(t *testing.T) {
	src := rng.New(77)
	graphs := []*graph.Graph{
		graph.Empty(3),
		graph.Path(17),
		graph.Complete(9),
		graph.GNP(60, 0.1, src),
	}
	const seed, steps = 12345, 50
	for _, g := range graphs {
		var ref [][]Signal
		for _, engine := range []Engine{Sequential, Parallel, PerVertex} {
			var trace [][]Signal
			net, err := NewNetwork(g, probeProtocol{}, seed,
				WithEngine(engine),
				WithObserver(func(_ int, sent, _ []Signal) {
					row := make([]Signal, len(sent))
					copy(row, sent)
					trace = append(trace, row)
				}))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				net.Step()
			}
			net.Close()
			if ref == nil {
				ref = trace
				continue
			}
			for r := range ref {
				for v := range ref[r] {
					if ref[r][v] != trace[r][v] {
						t.Fatalf("%s: engine %v diverged from sequential at round %d vertex %d", g.Name(), engine, r+1, v)
					}
				}
			}
		}
	}
}

func TestCloseIdempotentAndSequentialNoop(t *testing.T) {
	net, err := NewNetwork(graph.Path(3), counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close()

	netP, err := NewNetwork(graph.Path(3), counterProtocol{}, 1, WithEngine(Parallel))
	if err != nil {
		t.Fatal(err)
	}
	netP.Step()
	netP.Close()
	netP.Close()
}

// TestStepAfterCloseIsTerminal pins the lifecycle contract: Close is
// terminal, and Step on a closed network panics instead of silently
// re-spawning a worker pool (the old behavior leaked goroutine pools
// whenever a caller stepped a closed network). Regression test for the
// concurrent and sequential engines alike.
func TestStepAfterCloseIsTerminal(t *testing.T) {
	for _, engine := range []Engine{Sequential, Parallel, PerVertex} {
		net, err := NewNetwork(graph.Cycle(8), probeProtocol{}, 3, WithEngine(engine))
		if err != nil {
			t.Fatal(err)
		}
		net.Step()
		if net.Closed() {
			t.Fatalf("%v: network reports closed before Close", engine)
		}
		net.Close()
		if !net.Closed() {
			t.Fatalf("%v: network not closed after Close", engine)
		}
		net.Close() // idempotent
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: Step after Close did not panic", engine)
				}
			}()
			net.Step()
		}()
		if net.Round() != 1 {
			t.Fatalf("%v: rounds %d, want 1", engine, net.Round())
		}
	}
}

func TestCorrupt(t *testing.T) {
	net, err := NewNetwork(graph.Path(5), counterProtocol{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.Corrupt([]int{0, 4}); err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt([]int{5}); err == nil {
		t.Fatal("out-of-range corruption accepted")
	}
	if err := net.Corrupt([]int{-1}); err == nil {
		t.Fatal("negative corruption accepted")
	}
}

func TestRandomizeAllReachesMachines(t *testing.T) {
	net, err := NewNetwork(graph.Path(40), probeProtocol{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	nonZero := 0
	for v := 0; v < net.N(); v++ {
		if net.Machine(v).(*probeMachine).beeps != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("RandomizeAll had no visible effect")
	}
}

func TestPerVertexPoolHasOneShardPerVertex(t *testing.T) {
	net, err := NewNetwork(graph.Path(7), counterProtocol{}, 1, WithEngine(PerVertex))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if got := len(net.workers.shards); got != 7 {
		t.Fatalf("PerVertex shards = %d, want 7", got)
	}
	for i, sh := range net.workers.shards {
		if sh[1]-sh[0] != 1 {
			t.Fatalf("shard %d spans %v, want single vertex", i, sh)
		}
	}
}

func TestEmptyNetworkSteps(t *testing.T) {
	net, err := NewNetwork(graph.Empty(0), counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.Step() // must not panic
	if net.Round() != 1 {
		t.Fatal("round not counted")
	}
}

func TestNetworkGraphAccessor(t *testing.T) {
	g := graph.Path(3)
	net, err := NewNetwork(g, counterProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if net.Graph() != g {
		t.Fatal("Graph accessor does not return the topology")
	}
}
