package beep

import (
	"fmt"
	"sort"
)

// AdversaryPolicy selects how a non-cooperating vertex misuses the
// channel. Adversarial vertices do not run the protocol at all: their
// machines are frozen (never Emit, never Update), and what they
// transmit is dictated by the policy. They model compromised or
// malfunctioning radios — the regime the self-stabilization guarantee
// says nothing about, which is exactly why the harness measures the
// behavior of the *correct* induced subgraph around them (see
// core.State, which masks adversaries out of the legality predicate).
type AdversaryPolicy uint8

const (
	// advNone marks a cooperating vertex in the per-vertex policy array.
	advNone AdversaryPolicy = 0
	// AdvJammer beeps on every channel in every round, the strongest
	// channel-misuse an adversary can mount: its neighbors never observe
	// a silent round and can therefore never commit to MIS membership.
	AdvJammer AdversaryPolicy = iota
	// AdvBabbler beeps a uniformly random signal each round, drawn from
	// the network's dedicated adversary stream (like Noise and Sleep),
	// so babbling executions stay reproducible and engine-independent.
	AdvBabbler
	// AdvMute never beeps and never updates: a crashed-silent vertex.
	// Its correct neighbors simply observe its absence.
	AdvMute
)

// String names the policy for tables and flags.
func (p AdversaryPolicy) String() string {
	switch p {
	case advNone:
		return "none"
	case AdvJammer:
		return "jammer"
	case AdvBabbler:
		return "babbler"
	case AdvMute:
		return "mute"
	default:
		return fmt.Sprintf("adversary(%d)", int(p))
	}
}

// ParseAdversaryPolicy parses the CLI spelling of a policy.
func ParseAdversaryPolicy(s string) (AdversaryPolicy, error) {
	switch s {
	case "jammer":
		return AdvJammer, nil
	case "babbler":
		return AdvBabbler, nil
	case "mute":
		return AdvMute, nil
	default:
		return advNone, fmt.Errorf("beep: unknown adversary policy %q (want jammer | babbler | mute)", s)
	}
}

// advSpec is one pending WithAdversaries request, validated and
// installed by NewNetwork after all options have been applied.
type advSpec struct {
	policy   AdversaryPolicy
	vertices []int
}

// WithAdversaries installs the given policy on the listed vertices.
// The option may be repeated with different policies; the sets must be
// disjoint. Invalid vertices or policies surface as a NewNetwork error.
func WithAdversaries(policy AdversaryPolicy, vertices []int) Option {
	vs := append([]int(nil), vertices...)
	return func(n *Network) {
		n.advPending = append(n.advPending, advSpec{policy: policy, vertices: vs})
	}
}

// installAdversaries validates and applies the pending WithAdversaries
// options. All indices are range-checked before any state is written,
// mirroring the atomicity contract of Corrupt.
func (n *Network) installAdversaries() error {
	if len(n.advPending) == 0 {
		return nil
	}
	for _, spec := range n.advPending {
		switch spec.policy {
		case AdvJammer, AdvBabbler, AdvMute:
		default:
			return fmt.Errorf("beep: invalid adversary policy %v", spec.policy)
		}
		for _, v := range spec.vertices {
			if v < 0 || v >= n.N() {
				return fmt.Errorf("beep: adversary vertex %d out of range [0,%d)", v, n.N())
			}
		}
	}
	adv := make([]uint8, n.N())
	for _, spec := range n.advPending {
		for _, v := range spec.vertices {
			if adv[v] != 0 && adv[v] != uint8(spec.policy) {
				return fmt.Errorf("beep: vertex %d assigned two adversary policies (%v and %v)",
					v, AdversaryPolicy(adv[v]), spec.policy)
			}
			adv[v] = uint8(spec.policy)
		}
	}
	n.advPending = nil
	n.setAdversaries(adv)
	return nil
}

// setAdversaries commits a per-vertex policy array (length N), deriving
// the constant pre-drawn signals, the babbler index list, and the count,
// and bumps the epoch so legality observers re-capture the mask.
func (n *Network) setAdversaries(adv []uint8) {
	// Adversaries transmit regardless of machine state, so a quiescence
	// snapshot taken under the previous adversary set must not elide
	// rounds under the new one.
	n.quiet = false
	// The policy table is checkpointed state: the next incremental
	// checkpoint must carry the full table (see Delta.Adversaries).
	n.ckDirty.adv = true
	count := 0
	for _, p := range adv {
		if p != 0 {
			count++
		}
	}
	if count == 0 {
		n.adv, n.advSent, n.advBabblers, n.advCount = nil, nil, nil, 0
		n.advEpoch++
		return
	}
	n.adv = adv
	n.advCount = count
	n.advSent = make([]Signal, len(adv))
	n.advBabblers = n.advBabblers[:0]
	for v, p := range adv {
		switch AdversaryPolicy(p) {
		case AdvJammer:
			n.advSent[v] = n.fullMask
		case AdvBabbler:
			n.advBabblers = append(n.advBabblers, int32(v))
		case AdvMute:
			n.advSent[v] = Silent
		}
	}
	n.advEpoch++
}

// adversarial reports whether v is a non-cooperating vertex.
func (n *Network) adversarial(v int) bool {
	return n.adv != nil && n.adv[v] != 0
}

// drawAdversaries pre-draws the babblers' signals for the coming round
// from the dedicated adversary stream. Like drawSleep it runs as a
// sequential pass before the emit phase in every engine, so the
// consumed stream order — and hence the whole execution — is
// engine-independent.
func (n *Network) drawAdversaries() {
	for _, vi := range n.advBabblers {
		n.advSent[vi] = Signal(n.advSrc.Uint64()) & n.fullMask
	}
}

// AdversaryCount returns the number of installed adversaries.
func (n *Network) AdversaryCount() int { return n.advCount }

// AdversaryOf returns the policy of vertex v ("none" for cooperating
// vertices).
func (n *Network) AdversaryOf(v int) AdversaryPolicy {
	if n.adv == nil {
		return advNone
	}
	return AdversaryPolicy(n.adv[v])
}

// Adversaries returns the sorted list of adversary vertices.
func (n *Network) Adversaries() []int {
	out := make([]int, 0, n.advCount)
	for v, p := range n.adv {
		if p != 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// FillAdversaryMask writes the adversary membership mask into dst
// (length ≥ N), the allocation-free capture used by core.State.
func (n *Network) FillAdversaryMask(dst []bool) {
	for v := 0; v < n.N(); v++ {
		dst[v] = n.adv != nil && n.adv[v] != 0
	}
}

// AdversaryEpoch returns a counter that changes whenever the adversary
// set or the topology changes (Rewire). Legality observers compare it
// to decide when to re-capture the adversary mask.
func (n *Network) AdversaryEpoch() uint64 { return n.advEpoch }
