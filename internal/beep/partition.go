package beep

import (
	"fmt"
	"math/bits"
	"runtime/debug"
)

// This file exports the partition hooks of the distributed engine
// (internal/dist): a Partition executes the flat kernels for one
// contiguous vertex range [lo, hi) of a full Network, with the signal
// exchange between ranges left to the caller. A distributed worker
// constructs the complete network (graph, machines, streams — state is
// cheap, the rounds are the cost), then steps only its own range; the
// per-vertex private streams guarantee that the union of the ranges
// reproduces the single-process execution bit for bit, exactly the
// determinism argument of the FlatParallel engine (see flat.go).
//
// A round of a partitioned execution is:
//
//	drew := p.EmitLocal()            // kernels fill sent[lo:hi), pack sender words
//	words := p.SenderWords(c)        // upload: bits of [lo, hi) only
//	p.SetSenderWord(c, wi, merged)   // download: coordinator-merged words
//	changed := p.UpdateLocal()       // gather heard[lo:hi), kernels update, round++
//
// Ranges need not be 64-aligned: each partition packs only its own
// vertices' bits (foreign bits of shared edge words stay zero), so the
// coordinator can OR word uploads from adjacent partitions into the
// exact global sender bitset.
//
// Partitioned execution excludes the fault models that consume shared
// sequential randomness (noise, sleep, adversaries) and the batched
// sampler: their draw order is a whole-network sequence that vertex
// ranges cannot consume independently. Partition refuses to construct
// when any of them is enabled.

// Partition is a [lo, hi) execution window over a Network, created by
// Network.Partition. It is not safe for concurrent use.
type Partition struct {
	net    *Network
	lo, hi int
	// words are the per-channel sender bitsets of the round, full
	// word-length arrays: EmitLocal packs the partition's own bits,
	// SetSenderWord installs coordinator-merged words, and UpdateLocal
	// gathers heard signals from them.
	words  [2][]uint64
	env    FlatEnv
	rowBuf []int32
	// sparse, when non-nil, holds the delta-round state installed by
	// EnableSparse (see partition_sparse.go).
	sparse *partSparse
	// ckDirty marks the slab words of [lo, hi) whose vertex state
	// (machine or stream) may have moved since the last
	// ExportStateDelta: one bit per slab word over the global word
	// index space, the same shape as the sparse masks. ckDirtyAll is
	// the conservative everything-dirty flag, set at creation, by every
	// dense round, and by any restore (see MarkAllStateDirty) — the
	// partition-side twin of the Network's dirtyState invariant.
	ckDirty    []uint64
	ckDirtyAll bool
}

// Partition creates the execution window for vertices [lo, hi). It
// requires the flat kernels (like the Flat engine) and rejects networks
// with noise, sleep, adversaries or batched sampling enabled: those
// draw from shared sequential streams that partitions cannot split.
func (n *Network) Partition(lo, hi int) (*Partition, error) {
	if n.closed {
		return nil, fmt.Errorf("beep: Partition on closed Network")
	}
	if lo < 0 || hi < lo || hi > n.N() {
		return nil, fmt.Errorf("beep: partition range [%d, %d) out of [0, %d)", lo, hi, n.N())
	}
	if n.flatOps == nil {
		return nil, fmt.Errorf("beep: Partition requires flat kernels, but %T's bulk state (%T) does not implement FlatProtocol", n.proto, n.bulk)
	}
	if n.sampler != nil {
		return nil, fmt.Errorf("beep: Partition with batched sampling enabled: the sampler is one shared sequential stream")
	}
	if n.noise.enabled() || n.sleep.enabled() || n.advCount > 0 {
		return nil, fmt.Errorf("beep: Partition with noise/sleep/adversaries enabled: fault-model draws are a whole-network sequence")
	}
	p := &Partition{net: n, lo: lo, hi: hi, ckDirtyAll: true}
	nw := (n.N() + 63) / 64
	p.ckDirty = make([]uint64, (nw+63)>>6)
	for c := 0; c < n.channels; c++ {
		p.words[c] = make([]uint64, nw)
	}
	if n.csr == nil {
		p.rowBuf = make([]int32, n.g.MaxDegree())
	}
	return p, nil
}

// Range returns the partition's vertex window.
func (p *Partition) Range() (lo, hi int) { return p.lo, p.hi }

// Channels returns the protocol's channel count (1 or 2).
func (p *Partition) Channels() int { return p.net.channels }

// EmitLocal runs the emit kernel for the partition's range and packs
// the resulting sender bits into the partition's word arrays. It
// reports whether the kernel consumed randomness. A kernel panic is
// contained into a *RunError and poisons the network like TryStep.
func (p *Partition) EmitLocal() (drew bool, err error) {
	n := p.net
	if n.closed {
		return false, ErrClosed
	}
	if n.failed != nil {
		return false, n.failed
	}
	env := &p.env
	env.Sent, env.Heard, env.Srcs = n.sent, n.heard, n.srcs
	env.Skip, env.Sampler = nil, nil
	env.Drew, env.Changed = false, false
	if rerr := p.runKernel("emit"); rerr != nil {
		n.failed = rerr
		return false, rerr
	}
	for c := 0; c < n.channels; c++ {
		p.packRange(c)
	}
	return env.Drew, nil
}

// packRange writes the channel-c sender bits of [lo, hi) into the
// partition's word array, zeroing every other bit of the touched words
// so adjacent partitions' uploads OR cleanly at the coordinator.
func (p *Partition) packRange(c int) {
	if p.lo == p.hi {
		return
	}
	words := p.words[c]
	for wi := p.lo >> 6; wi <= (p.hi-1)>>6; wi++ {
		words[wi] = 0
	}
	mask := Signal(1) << uint(c)
	sent := p.net.sent
	for v := p.lo; v < p.hi; v++ {
		if sent[v]&mask != 0 {
			words[v>>6] |= 1 << uint(v&63)
		}
	}
}

// SenderWords returns the partition's channel-c sender word array (full
// word length; only bits of [lo, hi) are set by EmitLocal). The slice
// aliases partition storage and is overwritten by SetSenderWord and the
// next EmitLocal.
func (p *Partition) SenderWords(c int) []uint64 { return p.words[c] }

// SetSenderWord installs a coordinator-merged sender word. UpdateLocal
// reads whatever the words hold, so the caller must install every word
// that contains a neighbor of the range before updating.
func (p *Partition) SetSenderWord(c, wi int, w uint64) { p.words[c][wi] = w }

// UpdateLocal gathers heard[lo:hi) from the installed sender words,
// runs the update kernel for the range, and advances the network's
// round counter. It reports whether any machine state changed. Kernel
// panics are contained like EmitLocal.
func (p *Partition) UpdateLocal() (changed bool, err error) {
	n := p.net
	if n.closed {
		return false, ErrClosed
	}
	if n.failed != nil {
		return false, n.failed
	}
	p.gatherHeard()
	if rerr := p.runKernel("update"); rerr != nil {
		n.failed = rerr
		return false, rerr
	}
	// A dense round runs the kernels over the whole range: every own
	// word may have drawn or changed.
	p.ckDirtyAll = true
	n.round++
	return p.env.Changed, nil
}

// gatherHeard computes heard[v] for v in [lo, hi) by testing neighbor
// bits in the installed sender words — the word-level sibling of
// Network.deliverRange, with the same early exit once every channel has
// been heard.
func (p *Partition) gatherHeard() {
	n := p.net
	full := n.fullMask
	heard := n.heard
	w0 := p.words[0]
	var w1 []uint64
	if n.channels == 2 {
		w1 = p.words[1]
	}
	for v := p.lo; v < p.hi; v++ {
		var row []int32
		if n.csr != nil {
			row = n.csr.Neighbors(v)
		} else {
			row = n.g.NeighborsInto(v, p.rowBuf)
		}
		var h Signal
		for _, u := range row {
			sh := uint(u) & 63
			h |= Signal((w0[u>>6] >> sh) & 1)
			if w1 != nil {
				h |= Signal((w1[u>>6]>>sh)&1) << 1
			}
			if h == full {
				break
			}
		}
		heard[v] = h
	}
}

// runKernel invokes one cohort kernel over the partition's range with
// the same panic containment contract as the engines. The kernels
// process the range as a whole, so the error cannot name the vertex.
func (p *Partition) runKernel(phase string) (rerr *RunError) {
	n := p.net
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: -1, Round: n.round + 1, Phase: phase,
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	if phase == "emit" {
		n.flatOps.EmitRange(&p.env, p.lo, p.hi)
	} else {
		n.flatOps.UpdateRange(&p.env, p.lo, p.hi)
	}
	return nil
}

// Signals returns the network's sent and heard arrays. Only the
// partition's own range is maintained by EmitLocal/UpdateLocal; foreign
// entries are stale. The slices alias network storage.
func (p *Partition) Signals() (sent, heard []Signal) { return p.net.sent, p.net.heard }

// ExportRangeState returns the machine and stream states of vertices
// [lo, hi), the per-partition slice of a Checkpoint: a distributed
// coordinator assembles the full checkpoint from these. It fails on a
// poisoned network (the state is not a round boundary) or machines
// without StateCodec.
func (n *Network) ExportRangeState(lo, hi int) (machines [][]int64, streams [][4]uint64, err error) {
	if n.failed != nil {
		return nil, nil, fmt.Errorf("beep: state export of failed network: %w", n.failed)
	}
	if lo < 0 || hi < lo || hi > n.N() {
		return nil, nil, fmt.Errorf("beep: state export range [%d, %d) out of [0, %d)", lo, hi, n.N())
	}
	machines = make([][]int64, hi-lo)
	streams = make([][4]uint64, hi-lo)
	for v := lo; v < hi; v++ {
		codec, ok := n.machines[v].(StateCodec)
		if !ok {
			return nil, nil, fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", n.machines[v], v)
		}
		machines[v-lo] = codec.EncodeState()
		streams[v-lo] = n.srcs[v].State()
	}
	return machines, streams, nil
}

// MarkAllStateDirty saturates the partition's state-delta baseline:
// the next ExportStateDelta exports the whole range. Callers invoke it
// after Network.Restore (the restored state invalidates the
// incremental baseline), mirroring the ResetSparse contract for the
// signal exchange.
func (p *Partition) MarkAllStateDirty() { p.ckDirtyAll = true }

// DirtyStateAll reports whether the next ExportStateDelta would cover
// the whole range.
func (p *Partition) DirtyStateAll() bool { return p.ckDirtyAll }

// DirtyStateWords returns the number of own slab words the next
// ExportStateDelta would cover.
func (p *Partition) DirtyStateWords() int {
	if p.lo == p.hi {
		return 0
	}
	if p.ckDirtyAll {
		return (p.hi-1)>>6 - p.lo>>6 + 1
	}
	cnt := 0
	for _, m := range p.ckDirty {
		cnt += bits.OnesCount64(m)
	}
	return cnt
}

// ExportStateDelta exports the machine and stream states of every
// vertex whose slab word was dirtied since the previous export (the
// whole range after creation, a dense round, or MarkAllStateDirty),
// then rebaselines: the next export accumulates from here. Verts is
// ascending and bounded to [lo, hi) — boundary words shared with an
// adjacent partition export disjoint vertex sets, so a coordinator can
// splice deltas from all partitions without ownership conflicts. On
// error (poisoned network, non-checkpointable machine) the baseline is
// left untouched.
func (p *Partition) ExportStateDelta() (verts []int32, machines [][]int64, streams [][4]uint64, err error) {
	n := p.net
	if n.failed != nil {
		return nil, nil, nil, fmt.Errorf("beep: state export of failed network: %w", n.failed)
	}
	appendWord := func(wi int) error {
		lo, hi := wi<<6, wi<<6+64
		if lo < p.lo {
			lo = p.lo
		}
		if hi > p.hi {
			hi = p.hi
		}
		for v := lo; v < hi; v++ {
			codec, ok := n.machines[v].(StateCodec)
			if !ok {
				return fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", n.machines[v], v)
			}
			verts = append(verts, int32(v))
			machines = append(machines, codec.EncodeState())
			streams = append(streams, n.srcs[v].State())
		}
		return nil
	}
	if p.ckDirtyAll {
		if p.lo < p.hi {
			for wi := p.lo >> 6; wi <= (p.hi-1)>>6; wi++ {
				if err := appendWord(wi); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	} else {
		for mi, m := range p.ckDirty {
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				if err := appendWord(mi<<6 + b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	clearMask(p.ckDirty)
	p.ckDirtyAll = false
	return verts, machines, streams, nil
}
