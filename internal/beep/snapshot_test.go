package beep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// raggedProtocol exercises the snapshot codec's variable-stride
// fallback: even vertices carry one state integer, odd vertices three
// (one of which exceeds int32).
type raggedProtocol struct{}

func (raggedProtocol) Channels() int { return 1 }
func (raggedProtocol) NewMachine(v int, _ graph.Topology) Machine {
	return &raggedMachine{wide: v%2 == 1}
}

type raggedMachine struct {
	wide   bool
	rounds int64
}

func (m *raggedMachine) Emit(src *rng.Source) Signal {
	if src.Coin() {
		return Chan1
	}
	return Silent
}
func (m *raggedMachine) Update(_, _ Signal)        { m.rounds++ }
func (m *raggedMachine) Randomize(src *rng.Source) { m.rounds = int64(src.Intn(5)) }
func (m *raggedMachine) EncodeState() []int64 {
	if m.wide {
		return []int64{m.rounds, -m.rounds, int64(1) << 40}
	}
	return []int64{m.rounds}
}
func (m *raggedMachine) DecodeState(state []int64) error {
	m.rounds = state[0]
	return nil
}

// snapshotTestCheckpoint captures a checkpoint from a live noisy +
// adversarial network so every optional section (aux RNGs, adversary
// table) is populated.
func snapshotTestCheckpoint(t testing.TB, proto Protocol) *Checkpoint {
	t.Helper()
	g := graph.GNP(37, 0.2, rng.New(9))
	net, err := NewNetwork(g, proto, 4,
		WithNoise(Noise{PLoss: 0.02, PFalse: 0.01}),
		WithAdversaries(AdvJammer, []int{1, 5, 20}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	for i := 0; i < 9; i++ {
		net.Step()
	}
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto Protocol
	}{
		{"uniform", codecProtocol{}},
		{"ragged", raggedProtocol{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cp := snapshotTestCheckpoint(t, tc.proto)
			buf, err := EncodeSnapshot(cp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSnapshot(buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, cp) {
				t.Fatalf("binary round trip not identical:\n got %+v\nwant %+v", got, cp)
			}
			// The Hash field must be bit-identical to the v2 JSON
			// encoding of the same state: chains and wire messages
			// reference it across formats.
			var sb strings.Builder
			if err := WriteCheckpoint(&sb, cp); err != nil {
				t.Fatal(err)
			}
			viaJSON, err := ReadCheckpoint(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatal(err)
			}
			if viaJSON.Hash != got.Hash {
				t.Fatalf("hash differs across formats: json %#x binary %#x", viaJSON.Hash, got.Hash)
			}
		})
	}
}

func TestSnapshotWideValues(t *testing.T) {
	cp := snapshotTestCheckpoint(t, codecProtocol{})
	// Push one state value outside int32 so the encoder must take the
	// 64-bit uniform path, then reseal.
	cp.Machines[3][1] = int64(1)<<40 + 17
	cp.Machines[3][0] = -(int64(1)<<35 + 5)
	cp.Seal()
	buf, err := EncodeSnapshot(cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatal("64-bit value round trip not identical")
	}
}

func TestSnapshotAutoDetect(t *testing.T) {
	cp := snapshotTestCheckpoint(t, codecProtocol{})

	var jsonBuf bytes.Buffer
	if err := WriteCheckpoint(&jsonBuf, cp); err != nil {
		t.Fatal(err)
	}
	binBuf, err := EncodeSnapshot(cp)
	if err != nil {
		t.Fatal(err)
	}

	fromJSON, err := DecodeCheckpointAuto(jsonBuf.Bytes())
	if err != nil {
		t.Fatalf("auto-detect rejected v2 JSON: %v", err)
	}
	fromBin, err := ReadSnapshot(bytes.NewReader(binBuf))
	if err != nil {
		t.Fatalf("auto-detect rejected v3 binary: %v", err)
	}
	if fromJSON.Hash != cp.Hash || fromBin.Hash != cp.Hash {
		t.Fatalf("auto-detected hashes diverge: json %#x bin %#x want %#x",
			fromJSON.Hash, fromBin.Hash, cp.Hash)
	}
	if !reflect.DeepEqual(fromBin, fromJSON) {
		t.Fatal("auto-detected decodings differ between formats")
	}
}

func TestSnapshotResumeEquivalence(t *testing.T) {
	g := graph.GNP(40, 0.1, rng.New(3))
	netA, err := NewNetwork(g, codecProtocol{}, 7, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	full := traceOf(t, netA, 60)

	netB, err := NewNetwork(g, codecProtocol{}, 7, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()
	_ = traceOf(t, netB, 30)
	cp, err := netB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	netC, err := NewNetwork(g, codecProtocol{}, 999, WithNoise(Noise{PLoss: 0.05, PFalse: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	defer netC.Close()
	if err := netC.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	tail := traceOf(t, netC, 30)
	for r := 0; r < 30; r++ {
		for v := range tail[r] {
			if tail[r][v] != full[30+r][v] {
				t.Fatalf("binary-snapshot resume diverged at round %d vertex %d", 31+r, v)
			}
		}
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	cp := snapshotTestCheckpoint(t, codecProtocol{})
	buf, err := EncodeSnapshot(cp)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:50] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-7] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xAA) }},
		{"flipped state bit", func(b []byte) []byte { b[len(b)-20] ^= 0x40; return b }},
		{"flipped hash", func(b []byte) []byte { b[84] ^= 0x01; return b }},
		{"wrong magic", func(b []byte) []byte { b[3] = '9'; return b }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), buf...))
			if _, err := DecodeSnapshot(mut); err == nil {
				t.Fatal("corrupted snapshot accepted")
			}
		})
	}
}

// FuzzReadSnapshot is the binary-format analogue of FuzzReadCheckpoint:
// whatever bytes arrive, DecodeCheckpointAuto returns an error or a
// checkpoint that Validate accepts and Restore handles cleanly — never
// a panic, and never an allocation sized by an unvalidated header
// field.
func FuzzReadSnapshot(f *testing.F) {
	g := graph.GNP(12, 0.3, rng.New(9))
	net, err := NewNetwork(g, codecProtocol{}, 4,
		WithNoise(Noise{PLoss: 0.02, PFalse: 0.01}),
		WithAdversaries(AdvJammer, []int{1, 5}))
	if err != nil {
		f.Fatal(err)
	}
	defer net.Close()
	for i := 0; i < 8; i++ {
		net.Step()
	}
	cp, err := net.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeSnapshot(cp)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:snapHeaderFixed])
	f.Add([]byte("BCS3"))
	f.Add([]byte{})
	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), valid...)
		c[off] ^= b
		return c
	}
	f.Add(corrupt(12, 0xFF))        // graphN
	f.Add(corrupt(84, 0x01))        // hash
	f.Add(corrupt(92, 0x07))        // flags
	f.Add(corrupt(93, 0xFF))        // stride
	f.Add(corrupt(97, 0xFF))        // protoLen
	f.Add(corrupt(len(valid)-1, 1)) // last adversary byte
	f.Add(append(valid, 0))         // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpointAuto(data)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("DecodeCheckpointAuto accepted a checkpoint Validate rejects: %v", err)
		}
		target, err := NewNetwork(g, codecProtocol{}, 4,
			WithNoise(Noise{PLoss: 0.02, PFalse: 0.01}))
		if err != nil {
			t.Fatal(err)
		}
		defer target.Close()
		_ = target.Restore(c)
	})
}
