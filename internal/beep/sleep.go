package beep

import "fmt"

// Sleep models duty-cycling or crash-recovery vertices, a second
// harshening of the model alongside Noise: independently per round,
// each vertex sleeps with probability P. A sleeping vertex transmits
// nothing, hears nothing and does not update its state that round —
// it simply misses the round, as a radio in a sleep slot or a briefly
// crashed processor would.
//
// The zero value never sleeps.
type Sleep struct {
	P float64
}

// enabled reports whether the model perturbs anything.
func (s Sleep) enabled() bool { return s.P > 0 }

// validate checks the probability.
func (s Sleep) validate() error {
	if s.P < 0 || s.P >= 1 {
		return fmt.Errorf("beep: sleep probability must be in [0,1), got %v", s.P)
	}
	return nil
}

// WithSleep installs the sleeping model, driven by its own
// deterministic stream so executions stay reproducible and
// engine-independent.
func WithSleep(s Sleep) Option {
	return func(net *Network) { net.sleep = s }
}

// drawSleep fills the asleep mask for the coming round. It runs as a
// sequential pass before the emit phase in every engine.
func (n *Network) drawSleep() {
	if !n.sleep.enabled() {
		return
	}
	if n.asleep == nil {
		n.asleep = make([]bool, n.N())
	}
	for v := range n.asleep {
		n.asleep[v] = n.sleepSrc.Float64() < n.sleep.P
	}
}

// sleeping reports whether v misses the current round.
func (n *Network) sleeping(v int) bool {
	return n.asleep != nil && n.asleep[v]
}
