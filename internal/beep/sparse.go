package beep

import (
	"fmt"
	"math/bits"
	"runtime/debug"
)

// This file implements the sparse activity-gated round path of the flat
// engines. After the transient phase of a self-stabilizing execution,
// almost all vertices sit at a fixed point and only a small *frontier*
// still draws randomness or moves state; the dense kernels nevertheless
// walk all n vertices every round. The sparse path tracks activity at
// slab-word granularity (64 vertices per word, one mask bit per word)
// and runs the emit/update kernels only over marked words.
//
// Soundness. The frontier propagation rule is
//
//	act(r) = drewW(r-1) | changedW(r-1)   ∪ external marks,
//
// with act(0) = all words. Skipping an unmarked word is exact: a word
// that neither drew nor changed last round emitted deterministically
// from unchanged state, so this round's emit reproduces the identical
// Sent values without advancing any stream — Sent is already correct.
// The update set is act(r) ∪ the words whose heard values changed this
// round (computed from the sender-bit *flips* of the emit: XOR of
// consecutive sender bitsets, OR-folded over the flipped vertices'
// neighbor rows). An update word outside that set sees the identical
// (state, sent, heard) triple as last round, where the transition
// changed nothing — an identity. External state mutations (Machine
// handles, Corrupt, Restore, Rewire, Reseed) mark their vertices — or
// conservatively everything — active, re-establishing the base case.
//
// Delivery. The emit repack maintains the per-channel sender bitsets
// *incrementally* over active words, recording flipped words. When few
// vertices flipped, delivery is a *delta*: only the neighbors of
// flipped senders can hear something new, so the engine re-gathers
// exactly the touched words and leaves every other heard value in
// place. When many flipped (the transient phase), it falls back to the
// dense scatter/gather kernel, which rewrites heard completely — the
// measured crossover below mirrors GatherCrossoverFactor. Both paths
// produce bit-identical heard arrays (pinned by the forced-sparse
// equivalence matrices), so the choice is invisible to traces.
//
// Quiescence. An empty frontier is a proven fixed point, so the round
// is elided in O(1) — replacing the FlatQuiescer's O(n) shadow
// compare on this path. Fault models that perturb rounds externally
// (sleep, adversaries, noise) disable the sparse path for the round:
// the engine marks everything active and falls back to the dense step,
// whose next sparse round then re-packs and re-delivers densely
// (forceDense), restoring the heard/sender-bit invariants no matter
// what the fault rounds did to them.

// SparseMode selects how the flat engines use the sparse round path.
type SparseMode uint8

const (
	// SparseAuto (the default) runs the sparse path whenever the
	// protocol's kernels support it, choosing delta vs dense delivery
	// per round by the measured crossover.
	SparseAuto SparseMode = iota
	// SparseOn forces delta delivery on every eligible round (dense
	// only where correctness requires it); construction fails if the
	// engine or protocol cannot run sparse. Used by the equivalence
	// matrices to pin the delta path against the dense reference.
	SparseOn
	// SparseOff disables the sparse path entirely (legacy dense
	// rounds).
	SparseOff
)

// String returns the flag spelling of the mode.
func (m SparseMode) String() string {
	switch m {
	case SparseAuto:
		return "auto"
	case SparseOn:
		return "on"
	case SparseOff:
		return "off"
	}
	return fmt.Sprintf("SparseMode(%d)", uint8(m))
}

// ParseSparseMode parses the -sparse flag spellings.
func ParseSparseMode(s string) (SparseMode, error) {
	switch s {
	case "auto":
		return SparseAuto, nil
	case "on":
		return SparseOn, nil
	case "off":
		return SparseOff, nil
	}
	return SparseAuto, fmt.Errorf("beep: unknown sparse mode %q (want auto, on or off)", s)
}

// WithSparse selects the sparse-path mode (default SparseAuto).
func WithSparse(m SparseMode) Option {
	return func(n *Network) { n.sparseMode = m }
}

// WithStatsObserver installs a callback invoked after every round with
// the round's activity statistics: the number of vertices the emit
// kernel visited and the number of active slab words (the frontier).
// Dense rounds report full activity (n vertices, all words); elided
// fixed-point rounds report zero.
func WithStatsObserver(fn func(round, active, frontierWords int)) Option {
	return func(n *Network) { n.statsObs = fn }
}

// SparseFlatProtocol is the optional extension of FlatProtocol whose
// kernels can run activity-gated. act and upd are word-activity masks:
// bit wi of act[wi/64] gates slab word wi (vertices [wi*64, wi*64+64)).
// EmitSparse must behave exactly like EmitRange restricted to the
// vertices of marked words, additionally setting the word's bit in
// drewW iff any of its vertices consumed randomness; UpdateSparse
// likewise, setting changedW word bits iff state moved. Both run only
// on the fault-free path (env.Skip is nil by contract), and both must
// leave unmarked words' bits in the output masks untouched beyond
// never setting them (the engine clears the masks).
type SparseFlatProtocol interface {
	FlatProtocol
	EmitSparse(env *FlatEnv, act, drewW []uint64, lo, hi int)
	UpdateSparse(env *FlatEnv, upd, changedW []uint64, lo, hi int)
}

// SparseCrossoverFactor is the delta/dense crossover of the sparse
// delivery: the delta path (re-gather only the words touched by
// flipped senders) is taken while its measured cost — 64 × touched
// words × (avgDeg + 1), a row scan per vertex of each touched word —
// stays at or below SparseCrossoverFactor × the estimated cost of the
// dense delivery that would otherwise run: senders × (avgDeg + 1) for
// the scatter, capped at the gather's GatherCrossoverFactor × N
// bound. Two asymmetries the old flipped-count estimate missed, both
// punishing small n (BenchmarkWholeRunFlat4k, BENCH_sparse.json):
// the touched-word count must be measured, because a few dozen
// flipped senders on a scattered graph touch nearly every slab word,
// degenerating the "delta" re-gather into a full gather while the
// dense scatter is far cheaper (sparseMarkTouched computes the exact
// count from the flip records before the decision — work the delta
// path needs anyway); and the delta re-gather gets no early-exit
// discount, because it runs precisely in regimes where few vertices
// beep, so the per-vertex scan usually walks the whole row — unlike
// the dense gather, whose GatherCrossoverFactor × N bound already
// prices in the fast exits of a sender-rich round. Chosen by
// measurement like GatherCrossoverFactor: the activity-decay bench
// (BenchmarkSparseRound, exp E21) shows the two paths within noise of
// each other at the boundary, so the constant is uncritical; both
// produce identical heard arrays.
const SparseCrossoverFactor = 1

// deltaWantsDense applies the sparse-delivery crossover cost model.
func deltaWantsDense(touched, senders, avgDeg, N int) bool {
	deltaCost := touched * 64 * (avgDeg + 1)
	denseCost := senders * (avgDeg + 1)
	if bound := GatherCrossoverFactor * N; denseCost > bound {
		denseCost = bound
	}
	return deltaCost > SparseCrossoverFactor*denseCost
}

// sparseState is the per-network state of the sparse path. All masks
// have one bit per slab word (ceil(words/64) uint64s, words =
// ceil(n/64)); clears are O(n/4096) and thus free at any scale.
type sparseState struct {
	// n is the vertex count the buffers are sized for (0 = never
	// sized); a mismatch triggers a full re-size + markAll.
	n int
	// act gates the emit kernel; actCount is its popcount (frontier
	// word count), giving O(1) empty-frontier detection.
	act      []uint64
	actCount int
	// drewW / changedW are the kernels' per-word output masks; updW
	// gates the update kernel (act ∪ touched); touchW marks the words
	// whose heard values delta delivery recomputed this round.
	drewW, changedW, updW, touchW []uint64
	// allActive defers materializing a full act mask (initial state,
	// and after any markAll); forceDense additionally forces the next
	// sparse round to deliver densely and recount senders absolutely,
	// re-establishing the sender-bit/heard invariants after external
	// perturbations (fault rounds, Restore, Reseed, Rewire).
	allActive  bool
	forceDense bool
	// senders[c] is the incrementally maintained popcount of the
	// channel-c sender bitset, feeding the dense scatter/gather
	// crossover without a full recount.
	senders [2]int
	// flipWi/flipBits record the emit repack's flipped words: slab
	// word index plus per-channel XOR of old and new sender bits.
	// Capacity is pre-allocated to the full word count, so steady
	// rounds never allocate.
	flipWi   []int32
	flipBits [2][]uint64
}

// markAll conservatively marks every vertex active and forces the next
// sparse round to rebuild the delivery invariants densely.
func (s *sparseState) markAll() {
	s.allActive = true
	s.forceDense = true
}

// markVertex marks vertex v's slab word active (out-of-range or
// never-sized falls back to markAll).
func (s *sparseState) markVertex(v int) {
	if s.allActive {
		return
	}
	if s.n == 0 || v < 0 || v >= s.n {
		s.markAll()
		return
	}
	wi := v >> 6
	mi, b := wi>>6, uint64(1)<<uint(wi&63)
	if s.act[mi]&b == 0 {
		s.act[mi] |= b
		s.actCount++
	}
}

// ensure sizes the sparse buffers for the network's current vertex
// count. A resize zeroes the sender bitsets and their counts so the
// incremental repack restarts from a consistent (empty) baseline.
func (s *sparseState) ensure(n *Network) {
	N := n.N()
	if s.n == N {
		return
	}
	words := (N + 63) >> 6
	mw := (words + 63) >> 6
	s.act = make([]uint64, mw)
	s.drewW = make([]uint64, mw)
	s.changedW = make([]uint64, mw)
	s.updW = make([]uint64, mw)
	s.touchW = make([]uint64, mw)
	s.flipWi = make([]int32, 0, words)
	for c := 0; c < n.channels; c++ {
		s.flipBits[c] = make([]uint64, 0, words)
		n.sizeSendBits(c)
		n.sendBits[c].Reset()
	}
	s.senders = [2]int{}
	s.n = N
	s.markAll()
}

// materializeAll writes the deferred all-active state into the mask.
func (s *sparseState) materializeAll() {
	words := (s.n + 63) >> 6
	maskSetAll(s.act, words)
	s.actCount = words
	s.allActive = false
}

// clearMask zeroes an activity mask.
func clearMask(m []uint64) {
	for i := range m {
		m[i] = 0
	}
}

// maskSetAll sets the first words bits of m and clears the rest.
func maskSetAll(m []uint64, words int) {
	full := words >> 6
	for i := 0; i < full; i++ {
		m[i] = ^uint64(0)
	}
	for i := full; i < len(m); i++ {
		m[i] = 0
	}
	if r := words & 63; r != 0 {
		m[full] = uint64(1)<<uint(r) - 1
	}
}

// sparseOps returns the sparse kernel handle when the configured mode
// and bound kernels allow the sparse path, nil otherwise.
func (n *Network) sparseOps() SparseFlatProtocol {
	if n.sparseMode == SparseOff || n.flatOps == nil {
		return nil
	}
	so, _ := n.flatOps.(SparseFlatProtocol)
	return so
}

// sparseFaulty reports whether a fault model perturbs rounds this
// round, in which case the engine falls back to the dense step (after
// conservatively invalidating the sparse state).
func (n *Network) sparseFaulty() bool {
	return n.advCount > 0 || n.sleep.enabled() || n.noise.enabled()
}

// sparseUseDense decides this round's delivery: forced dense after an
// invalidation, forced delta under SparseOn, crossover otherwise. On
// every non-forced round it first materializes the touched-word mask
// (the delta path's own first step), so the crossover compares the
// delta re-gather's exact word count, not an estimate.
func (n *Network) sparseUseDense() bool {
	s := &n.sparse
	if s.forceDense {
		return true
	}
	touched := n.sparseMarkTouched()
	if n.sparseMode == SparseOn {
		return false
	}
	return deltaWantsDense(touched, s.senders[0]+s.senders[1], n.avgDegree(), n.N())
}

// stepFlatSparse executes one activity-gated round on the sequential
// flat engine. It is bit-identical to stepFlat for every round (pinned
// by the forced-sparse equivalence matrices).
func (n *Network) stepFlatSparse(ops SparseFlatProtocol) *RunError {
	if n.sparseFaulty() {
		n.sparse.markAll()
		return n.stepFlat(ops)
	}
	n.quiet = false
	n.ckRoundSparse = true
	N := n.N()
	s := &n.sparse
	s.ensure(n)
	recount := s.allActive
	if s.allActive {
		s.materializeAll()
	}
	if s.actCount == 0 {
		// Empty frontier: a proven fixed point. Sent and heard already
		// hold this round's signals; no stream or state moves.
		n.roundActive, n.roundFrontier = 0, 0
		return nil
	}
	actEntry := s.actCount
	env := &n.flatEnv
	env.Sent, env.Heard, env.Srcs = n.sent, n.heard, n.srcs
	env.Skip = nil
	env.Sampler = n.sampler
	env.Drew, env.Changed = false, false
	clearMask(s.drewW)
	if err := n.runSparseKernel("emit", ops, env); err != nil {
		return err
	}
	n.sparseRepack(recount)
	forced := s.forceDense
	if n.sparseUseDense() {
		if deliveryWantsGather(s.senders[0]+s.senders[1], n.avgDegree(), N) {
			n.deliverRange(0, N, n.rowBuf)
		} else {
			for c := 0; c < n.channels; c++ {
				n.scatterChannel(c)
			}
			n.composeHeard()
		}
		if forced {
			// After an invalidation the flip records don't bound which
			// heard values the dense delivery rewrote; update everywhere
			// (exactly the dense round's update set).
			maskSetAll(s.updW, (N+63)>>6)
		} else {
			// Invariants intact: the rewrite changed heard only inside
			// the touched words, so the delta path's update set is
			// exact here too.
			for mi := range s.updW {
				s.updW[mi] = s.act[mi] | s.touchW[mi]
			}
		}
	} else {
		n.sparseGatherWords(s.touchW)
		for mi := range s.updW {
			s.updW[mi] = s.act[mi] | s.touchW[mi]
		}
	}
	s.forceDense = false
	clearMask(s.changedW)
	if err := n.runSparseKernel("update", ops, env); err != nil {
		return err
	}
	cnt := 0
	dirty := n.ckDirty.accum(len(s.act))
	for mi := range s.act {
		a := s.drewW[mi] | s.changedW[mi]
		s.act[mi] = a
		if dirty != nil {
			dirty[mi] |= a
		}
		cnt += bits.OnesCount64(a)
	}
	s.actCount = cnt
	n.roundActive = actEntry * 64
	if n.roundActive > N {
		n.roundActive = N
	}
	n.roundFrontier = actEntry
	return nil
}

// runSparseKernel invokes one sparse cohort kernel with the same panic
// containment contract as runFlatKernel.
func (n *Network) runSparseKernel(phase string, ops SparseFlatProtocol, env *FlatEnv) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: -1, Round: n.round + 1, Phase: phase,
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	s := &n.sparse
	if phase == "emit" {
		ops.EmitSparse(env, s.act, s.drewW, 0, n.N())
	} else {
		ops.UpdateSparse(env, s.updW, s.changedW, 0, n.N())
	}
	return nil
}

// sparseRepack maintains the per-channel sender bitsets incrementally
// over the active words, recording each word whose bits flipped (with
// the per-channel XOR masks) and returning the number of flipped
// vertices. When recount is set (the round runs with everything
// active, after an invalidation), the sender counts are recomputed
// absolutely — a dense fallback round may have repacked the bitsets
// without maintaining the counts.
func (n *Network) sparseRepack(recount bool) int {
	s := &n.sparse
	s.flipWi = s.flipWi[:0]
	s.flipBits[0] = s.flipBits[0][:0]
	two := n.channels == 2
	if two {
		s.flipBits[1] = s.flipBits[1][:0]
	}
	if recount {
		s.senders = [2]int{}
	}
	w0s := n.sendBits[0].Words()
	var w1s []uint64
	if two {
		w1s = n.sendBits[1].Words()
	}
	sent := n.sent
	N := n.N()
	flipped := 0
	for mi, m := range s.act {
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			wi := mi<<6 + b
			base := wi << 6
			end := base + 64
			if end > N {
				end = N
			}
			var v0, v1 uint64
			for v := base; v < end; v++ {
				bit := uint64(1) << uint(v&63)
				sv := sent[v]
				if sv&Chan1 != 0 {
					v0 |= bit
				}
				if two && sv&Chan2 != 0 {
					v1 |= bit
				}
			}
			f0 := w0s[wi] ^ v0
			var f1 uint64
			if two {
				f1 = w1s[wi] ^ v1
			}
			if recount {
				s.senders[0] += bits.OnesCount64(v0)
				if two {
					s.senders[1] += bits.OnesCount64(v1)
				}
			} else {
				s.senders[0] += bits.OnesCount64(v0) - bits.OnesCount64(w0s[wi])
				if two {
					s.senders[1] += bits.OnesCount64(v1) - bits.OnesCount64(w1s[wi])
				}
			}
			if f0|f1 != 0 {
				w0s[wi] = v0
				if two {
					w1s[wi] = v1
				}
				s.flipWi = append(s.flipWi, int32(wi))
				s.flipBits[0] = append(s.flipBits[0], f0)
				if two {
					s.flipBits[1] = append(s.flipBits[1], f1)
				}
				flipped += bits.OnesCount64(f0 | f1)
			}
		}
	}
	return flipped
}

// sparseMarkTouched rebuilds s.touchW — the mask of slab words
// containing a neighbor of a flipped sender, the only words that can
// hear something new this round — from the repack's flip records, and
// returns its popcount. Delta-delivery rounds re-gather exactly these
// words (leaving every other heard value untouched); the count also
// feeds the crossover decision, and the mask the update-set union, on
// every non-forced round regardless of which delivery runs.
func (n *Network) sparseMarkTouched() int {
	s := &n.sparse
	clearMask(s.touchW)
	g := n.csr
	for i, wi := range s.flipWi {
		f := s.flipBits[0][i]
		if n.channels == 2 {
			f |= s.flipBits[1][i]
		}
		base := int(wi) << 6
		for f != 0 {
			u := base + bits.TrailingZeros64(f)
			f &= f - 1
			var row []int32
			if g != nil {
				row = g.Neighbors(u)
			} else {
				row = n.g.NeighborsInto(u, n.rowBuf)
			}
			for _, x := range row {
				sw := int(x) >> 6
				s.touchW[sw>>6] |= 1 << uint(sw&63)
			}
		}
	}
	touched := 0
	for _, m := range s.touchW {
		touched += bits.OnesCount64(m)
	}
	return touched
}

// sparseGatherWords recomputes heard[v] for every vertex of every slab
// word marked in mask, by probing the neighbor bits of the per-channel
// sender bitsets (with the same full-mask early exit as the dense
// gather). The sender bitsets are exact after sparseRepack, so the
// recomputed values equal the dense delivery's.
func (n *Network) sparseGatherWords(mask []uint64) {
	w0 := n.sendBits[0].Words()
	var w1 []uint64
	if n.channels == 2 {
		w1 = n.sendBits[1].Words()
	}
	full := n.fullMask
	heard := n.heard
	g := n.csr
	N := n.N()
	for mi, m := range mask {
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			base := (mi<<6 + b) << 6
			end := base + 64
			if end > N {
				end = N
			}
			for v := base; v < end; v++ {
				var row []int32
				if g != nil {
					row = g.Neighbors(v)
				} else {
					row = n.g.NeighborsInto(v, n.rowBuf)
				}
				var h Signal
				for _, u := range row {
					sh := uint(u) & 63
					h |= Signal((w0[u>>6] >> sh) & 1)
					if w1 != nil {
						h |= Signal((w1[u>>6]>>sh)&1) << 1
					}
					if h == full {
						break
					}
				}
				heard[v] = h
			}
		}
	}
}

// stepFlatParallelSparse executes one activity-gated round on the
// sharded flat engine: the emit/update kernels fan out over the worker
// stripes (each worker writing a private drew/changed mask, OR-folded
// after the barrier), while the frontier-sized bookkeeping — repack,
// flip scatter, delta re-gather — runs on the coordinator, where it is
// cheaper than two more barriers. Dense-delivery rounds reuse the
// dense engine's pack/scatter/merge/gather phases unchanged.
func (n *Network) stepFlatParallelSparse(ops SparseFlatProtocol) *RunError {
	if n.sparseFaulty() {
		n.sparse.markAll()
		return n.stepFlatParallel(ops)
	}
	n.quiet = false
	n.ckRoundSparse = true
	N := n.N()
	s := &n.sparse
	s.ensure(n)
	recount := s.allActive
	if s.allActive {
		s.materializeAll()
	}
	if s.actCount == 0 {
		n.roundActive, n.roundFrontier = 0, 0
		return nil
	}
	actEntry := s.actCount
	mw := len(s.act)
	p := n.workers
	for i := range p.flat {
		w := &p.flat[i]
		w.env.Sent, w.env.Heard, w.env.Srcs = n.sent, n.heard, n.srcs
		w.env.Skip = nil
		w.env.Sampler = nil // FlatParallel never batches (see finishFlatSetup)
		w.env.Drew, w.env.Changed = false, false
		w.senders = 0
		w.active = false
		if len(w.drewW) != mw {
			w.drewW = make([]uint64, mw)
			w.changedW = make([]uint64, mw)
		}
	}
	n.flatParOps = ops
	n.flatParSparse = ops
	p.runPhase(phaseFlatSparseEmit)
	if err := p.takeError(); err != nil {
		return err
	}
	n.sparseRepack(recount)
	forced := s.forceDense
	if n.sparseUseDense() {
		for c := 0; c < n.channels; c++ {
			if hb := &n.heardBits[c]; hb.Len() != N {
				hb.Resize(N)
			}
		}
		// The pack phase rewrites the sender words the repack just
		// wrote (same values) to recover the per-worker sender counts
		// that drive the scatter skip and the gather crossover.
		p.runPhase(phaseFlatPack)
		senders := 0
		for i := range p.flat {
			senders += p.flat[i].senders
		}
		if deliveryWantsGather(senders, n.avgDegree(), N) {
			p.runPhase(phaseFlatGather)
		} else {
			p.runPhase(phaseFlatScatter)
			p.runPhase(phaseFlatMerge)
		}
		if forced {
			// See stepFlatSparse: only invalidation rounds lose the
			// touched-word bound on the dense delivery's rewrites.
			maskSetAll(s.updW, (N+63)>>6)
		} else {
			for mi := range s.updW {
				s.updW[mi] = s.act[mi] | s.touchW[mi]
			}
		}
	} else {
		n.sparseGatherWords(s.touchW)
		for mi := range s.updW {
			s.updW[mi] = s.act[mi] | s.touchW[mi]
		}
	}
	s.forceDense = false
	p.runPhase(phaseFlatSparseUpdate)
	if err := p.takeError(); err != nil {
		return err
	}
	cnt := 0
	dirty := n.ckDirty.accum(len(s.act))
	for mi := range s.act {
		var a uint64
		for i := range p.flat {
			a |= p.flat[i].drewW[mi] | p.flat[i].changedW[mi]
		}
		s.act[mi] = a
		if dirty != nil {
			dirty[mi] |= a
		}
		cnt += bits.OnesCount64(a)
	}
	s.actCount = cnt
	n.roundActive = actEntry * 64
	if n.roundActive > N {
		n.roundActive = N
	}
	n.roundFrontier = actEntry
	return nil
}

// flatSparseKernelRange invokes one sparse cohort-kernel stripe on the
// worker's private environment and output mask, with the same panic
// containment contract as flatKernelRange. The shared activity masks
// are read-only during the phase; each worker's output bits land only
// in its private mask (word-range ownership makes even the bit ranges
// disjoint, but privacy makes that irrelevant).
func (n *Network) flatSparseKernelRange(phase string, w *flatWorker, lo, hi int) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: -1, Round: n.round + 1, Phase: phase,
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	s := &n.sparse
	if phase == "emit" {
		clearMask(w.drewW)
		n.flatParSparse.EmitSparse(&w.env, s.act, w.drewW, lo, hi)
	} else {
		clearMask(w.changedW)
		n.flatParSparse.UpdateSparse(&w.env, s.updW, w.changedW, lo, hi)
	}
	return nil
}
