package beep

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// deltaTestNet builds a checkpointable network without fault models
// (the delta path's steady regime).
func deltaTestNet(t *testing.T) *Network {
	t.Helper()
	g := graph.GNP(130, 0.08, rng.New(5))
	net, err := NewNetwork(g, codecProtocol{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	net.RandomizeAll()
	return net
}

// TestCheckpointDeltaBitExact: base checkpoint, targeted mutations,
// delta, apply — the assembled checkpoint must be bit-identical
// (including the resealed hash) to a full checkpoint of the live
// network.
func TestCheckpointDeltaBitExact(t *testing.T) {
	net := deltaTestNet(t)
	for i := 0; i < 5; i++ {
		net.Step()
	}
	base, err := net.Checkpoint() // arms the dirty baseline
	if err != nil {
		t.Fatal(err)
	}
	if net.DirtyAll() {
		t.Fatal("baseline not armed by Checkpoint")
	}
	// Mutate a handful of vertices across different slab words.
	if err := net.Corrupt([]int{3, 64, 65, 129}); err != nil {
		t.Fatal(err)
	}
	if net.DirtyAll() {
		t.Fatal("targeted corruption saturated the dirty mask")
	}
	if w := net.DirtyWords(); w != 3 {
		t.Fatalf("dirty words = %d, want 3 (words 0, 1, 2)", w)
	}
	d, err := net.CheckpointDelta(base.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if d.ParentHash != base.Hash {
		t.Fatalf("delta parent %#x, want %#x", d.ParentHash, base.Hash)
	}
	if err := ApplyDelta(base, d); err != nil {
		t.Fatal(err)
	}
	base.Seal()
	full, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, full) {
		t.Fatal("base+delta does not reproduce the full checkpoint")
	}
	if base.Hash != full.Hash {
		t.Fatalf("assembled hash %#x, full hash %#x", base.Hash, full.Hash)
	}
}

// TestCheckpointDeltaChain: several deltas chained across corrupt
// bursts, applied in order, equal the final full checkpoint.
func TestCheckpointDeltaChain(t *testing.T) {
	net := deltaTestNet(t)
	base, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cur := base.Hash
	var chain []*Delta
	faults := rng.New(99)
	for i := 0; i < 4; i++ {
		verts := []int{faults.Intn(net.N()), faults.Intn(net.N())}
		if err := net.Corrupt(verts); err != nil {
			t.Fatal(err)
		}
		d, err := net.CheckpointDelta(cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = d.Hash
		chain = append(chain, d)
	}
	for _, d := range chain {
		if err := ApplyDelta(base, d); err != nil {
			t.Fatal(err)
		}
	}
	base.Seal()
	full, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, full) {
		t.Fatal("chained deltas do not reproduce the full checkpoint")
	}
}

// TestCheckpointDeltaRefusals: the delta capture fails without a
// baseline, after dense rounds (everything dirty), and after Restore.
func TestCheckpointDeltaRefusals(t *testing.T) {
	net := deltaTestNet(t)
	if _, err := net.CheckpointDelta(0); err == nil {
		t.Fatal("delta with no baseline accepted")
	}
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// codecProtocol has no flat kernels, so every round is dense and
	// must saturate the mask.
	net.Step()
	if !net.DirtyAll() {
		t.Fatal("dense round did not mark everything dirty")
	}
	if _, err := net.CheckpointDelta(cp.Hash); err == nil {
		t.Fatal("delta with everything dirty accepted")
	}
	// Re-arm, then Restore: the baseline must be void again.
	if _, err := net.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if net.DirtyAll() {
		t.Fatal("baseline not re-armed")
	}
	if err := net.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if !net.DirtyAll() {
		t.Fatal("Restore did not void the delta baseline")
	}
}

// TestCheckpointDeltaAdversaryTable: an adversary-set change rides the
// next delta as a full table; unchanged sets are omitted.
func TestCheckpointDeltaAdversaryTable(t *testing.T) {
	g := graph.GNP(70, 0.1, rng.New(5))
	net, err := NewNetwork(g, codecProtocol{}, 11, WithAdversaries(AdvJammer, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	base, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt([]int{5}); err != nil {
		t.Fatal(err)
	}
	d1, err := net.CheckpointDelta(base.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Adversaries != nil {
		t.Fatal("unchanged adversary set carried in delta")
	}
	net.setAdversaries(make([]uint8, net.N())) // drop all adversaries
	d2, err := net.CheckpointDelta(d1.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Adversaries == nil {
		t.Fatal("adversary-set change not carried in delta")
	}
	if err := ApplyDelta(base, d1); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDelta(base, d2); err != nil {
		t.Fatal(err)
	}
	base.Seal()
	full, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, full) {
		t.Fatal("adversary-table delta does not reproduce the full checkpoint")
	}
	if full.Adversaries != nil {
		t.Fatal("dropped adversary set still in full checkpoint")
	}
}

// TestDeltaFrameRoundTrip: the binary frame codec reproduces the delta
// exactly and streams frames back to back.
func TestDeltaFrameRoundTrip(t *testing.T) {
	net := deltaTestNet(t)
	base, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt([]int{1, 100}); err != nil {
		t.Fatal(err)
	}
	d1, err := net.CheckpointDelta(base.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt([]int{64}); err != nil {
		t.Fatal(err)
	}
	d2, err := net.CheckpointDelta(d1.Hash)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := EncodeDelta(d1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := EncodeDelta(d2)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append([]byte(nil), f1...), f2...)
	g1, rest, err := DecodeDeltaFrame(stream)
	if err != nil {
		t.Fatal(err)
	}
	g2, rest, err := DecodeDeltaFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after two frames", len(rest))
	}
	if !reflect.DeepEqual(g1, d1) || !reflect.DeepEqual(g2, d2) {
		t.Fatal("frame round trip not identical")
	}
}

// TestDeltaFrameErrors: torn tails are distinguishable from
// corruption, and every corruption is an error, never a panic.
func TestDeltaFrameErrors(t *testing.T) {
	net := deltaTestNet(t)
	base, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt([]int{1}); err != nil {
		t.Fatal(err)
	}
	d, err := net.CheckpointDelta(base.Hash)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(frame); cut++ {
		_, _, err := DecodeDeltaFrame(frame[:cut])
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// A tail cut is a torn frame (recoverable); anything with bad magic
	// is not.
	if _, _, err := DecodeDeltaFrame(frame[:len(frame)-1]); !errorsIsTorn(err) {
		t.Fatalf("tail truncation not reported as torn frame: %v", err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, _, err := DecodeDeltaFrame(bad); err == nil || errorsIsTorn(err) {
		t.Fatalf("bad magic not a hard error: %v", err)
	}
	// Flip a payload byte: complete frame, failed hash — hard error.
	tam := append([]byte(nil), frame...)
	tam[len(tam)-3] ^= 0x10
	if _, _, err := DecodeDeltaFrame(tam); err == nil || errorsIsTorn(err) {
		t.Fatalf("tampered payload not a hard error: %v", err)
	}
}

func errorsIsTorn(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("torn delta frame"))
}

// TestApplyDeltaRejections: identity and shape violations leave the
// checkpoint untouched.
func TestApplyDeltaRejections(t *testing.T) {
	net := deltaTestNet(t)
	base, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt([]int{1}); err != nil {
		t.Fatal(err)
	}
	d, err := net.CheckpointDelta(base.Hash)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := ReadCheckpoint(bytes.NewReader(mustJSON(t, base)))
	if err != nil {
		t.Fatal(err)
	}

	wrongProto := *d
	wrongProto.Protocol = "other/1ch"
	wrongProto.Seal()
	if err := ApplyDelta(base, &wrongProto); err == nil {
		t.Fatal("protocol mismatch accepted")
	}
	wrongGraph := *d
	wrongGraph.GraphFingerprint ^= 1
	wrongGraph.Seal()
	if err := ApplyDelta(base, &wrongGraph); err == nil {
		t.Fatal("graph mismatch accepted")
	}
	outOfRange := *d
	outOfRange.Words = append([]int32(nil), d.Words...)
	outOfRange.Words[0] = 1 << 20
	outOfRange.Seal()
	if err := ApplyDelta(base, &outOfRange); err == nil {
		t.Fatal("out-of-range word accepted")
	}
	unsealed := *d
	unsealed.Round++
	if err := ApplyDelta(base, &unsealed); err == nil {
		t.Fatal("unsealed delta accepted")
	}
	if !reflect.DeepEqual(base, pristine) {
		t.Fatal("rejected deltas mutated the checkpoint")
	}
}

func mustJSON(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
