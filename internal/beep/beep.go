// Package beep implements the full-duplex beeping communication model of
// Cornejo and Kuhn (DISC 2010), the substrate of the paper: an anonymous
// network with synchronous rounds in which, each round, every vertex may
// transmit a signal (beep) on one or more channels and then learns, per
// channel, only whether at least one neighbor beeped on it.
//
// Properties of the model as implemented here:
//
//   - Full duplex (collision detection): a beeping vertex still listens in
//     the same round. A vertex never hears its own beep, only neighbors'.
//   - Collisions are invisible: hearing is the OR over neighbors, with no
//     count and no sender identity.
//   - Anonymous: protocols receive no vertex identifier; the integer ids
//     used by the simulator are bookkeeping only.
//   - One or two channels (Signal bits), for Algorithm 1 and Algorithm 2
//     of the paper respectively.
//
// Protocols are per-vertex state machines (Machine) created by a Protocol
// factory, executed by interchangeable engines (sequential, sharded
// parallel, and goroutine-per-vertex) that are trace-equivalent for a
// fixed seed.
package beep

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Signal is the set of channels beeped in a round, as a bitmask.
// The zero Signal is silence.
type Signal uint8

const (
	// Silent is the empty signal.
	Silent Signal = 0
	// Chan1 is the first (and in Algorithm 1, only) beeping channel.
	Chan1 Signal = 1 << 0
	// Chan2 is the second beeping channel used by Algorithm 2.
	Chan2 Signal = 1 << 1
)

// Has reports whether s includes channel c.
func (s Signal) Has(c Signal) bool { return s&c != 0 }

// String renders a signal for traces: "-", "1", "2" or "12".
func (s Signal) String() string {
	switch s & (Chan1 | Chan2) {
	case Silent:
		return "-"
	case Chan1:
		return "1"
	case Chan2:
		return "2"
	default:
		return "12"
	}
}

// Machine is the per-vertex state machine of a beeping protocol. A round
// proceeds as Emit on every vertex, signal delivery, then Update on every
// vertex. Machines must not retain or inspect anything about the network
// beyond what Update delivers: that is the anonymity of the model.
type Machine interface {
	// Emit decides the signal to transmit this round, consuming
	// randomness only from src (the vertex's private stream).
	Emit(src *rng.Source) Signal

	// Update applies the state transition given the signal this vertex
	// sent and the OR of the signals its neighbors sent.
	Update(sent, heard Signal)

	// Randomize sets the machine to a uniformly random state of its state
	// space. It models a transient RAM fault (adversarial corruption) and
	// arbitrary initialization: self-stabilizing protocols must converge
	// from any reachable assignment of Randomize.
	Randomize(src *rng.Source)
}

// Protocol creates the machine for each vertex. NewMachine may read the
// graph to derive the vertex's *knowledge* (for example an upper bound on
// its own degree) — exactly the per-vertex topology knowledge the paper's
// variants grant — but the machine itself never sees the graph. The
// graph arrives as the backend-agnostic graph.Topology, so protocols
// instantiate identically on materialized, compact and implicit graphs.
type Protocol interface {
	// NewMachine returns the initial machine for vertex v of g.
	NewMachine(v int, g graph.Topology) Machine
	// Channels returns the number of beeping channels the protocol uses
	// (1 or 2).
	Channels() int
}

// BatchProtocol is an optional Protocol extension for protocols that can
// build all machines of a network in one call. Implementations may back
// the machines with shared flat storage and return an opaque bulk-state
// handle, which the Network exposes via BulkState; analysts (e.g. the
// stabilization detector in internal/core) type-assert the handle to a
// bulk accessor and read whole-network state without per-vertex
// interface dispatch. Machines returned by NewMachines must behave
// exactly like the ones NewMachine would build, so the fast path is
// observationally identical.
type BatchProtocol interface {
	Protocol
	// NewMachines returns one machine per vertex of g (in vertex order)
	// and an optional bulk-state handle (may be nil).
	NewMachines(g graph.Topology) (ms []Machine, bulk any)
}

// Engine selects the execution strategy for rounds.
type Engine int

const (
	// Sequential executes vertices one after another in a single
	// goroutine. It is the fastest engine for small graphs and the
	// reference semantics.
	Sequential Engine = iota + 1
	// Parallel shards vertices over worker goroutines with two barriers
	// per round (emit barrier, update barrier).
	Parallel
	// PerVertex runs one goroutine per vertex, the direct Go realization
	// of the model's "every vertex is an independent processor".
	PerVertex
	// Flat executes rounds over structure-of-arrays slabs with
	// whole-cohort kernels and bitset beep delivery (see flat.go). It
	// requires the protocol's bulk state to implement FlatProtocol and
	// is the only engine that accepts WithBatchedSampling.
	Flat
	// FlatParallel shards the flat cohort kernels over the
	// sense-reversing worker pool: contiguous 64-vertex-aligned slab
	// stripes per worker for emit/update, word-range-partitioned sender
	// packing, per-worker scatter masks merged by word-range ownership
	// for delivery (see flatparallel.go). Like Flat it requires
	// FlatProtocol kernels, and like every other engine it is
	// trace-equivalent to the sequential reference for a fixed seed.
	FlatParallel
)

// String names the engine for tables and errors.
func (e Engine) String() string {
	switch e {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case PerVertex:
		return "pervertex"
	case Flat:
		return "flat"
	case FlatParallel:
		return "flatparallel"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine maps an engine name (as produced by Engine.String) back to
// the Engine value, for command-line flags.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "sequential":
		return Sequential, nil
	case "parallel":
		return Parallel, nil
	case "pervertex":
		return PerVertex, nil
	case "flat":
		return Flat, nil
	case "flatparallel":
		return FlatParallel, nil
	default:
		return 0, fmt.Errorf("beep: unknown engine %q (want sequential, parallel, pervertex, flat or flatparallel)", name)
	}
}
