package beep

import (
	"fmt"

	"repro/internal/rng"
)

// Noise models unreliable listening, a standard harshening of the
// beeping model: independently per vertex, per round and per channel,
// a genuinely heard channel is dropped with probability PLoss (false
// negative) and a silent channel is spuriously heard with probability
// PFalse (false positive). Senders are unaffected — only reception is
// noisy, matching radio interference models.
//
// The zero value is noiseless.
type Noise struct {
	PLoss  float64
	PFalse float64
}

// enabled reports whether the noise model perturbs anything.
func (n Noise) enabled() bool { return n.PLoss > 0 || n.PFalse > 0 }

// validate checks the probabilities.
func (n Noise) validate() error {
	if n.PLoss < 0 || n.PLoss > 1 || n.PFalse < 0 || n.PFalse > 1 {
		return fmt.Errorf("beep: noise probabilities must be in [0,1], got loss=%v false=%v", n.PLoss, n.PFalse)
	}
	return nil
}

// WithNoise installs the listening-noise model, driven by its own
// deterministic stream derived from the network seed so noisy
// executions stay reproducible and engine-independent.
func WithNoise(n Noise) Option {
	return func(net *Network) { net.noise = n }
}

// applyNoise perturbs the heard array in place. It runs as a
// sequential pass between delivery and update (in every engine), so
// the consumed noise-stream order is engine-independent.
func (n *Network) applyNoise() {
	if !n.noise.enabled() {
		return
	}
	channels := []Signal{Chan1, Chan2}[:n.channels]
	for v := range n.heard {
		for _, c := range channels {
			if n.heard[v].Has(c) {
				if n.noise.PLoss > 0 && n.noiseSrc.Float64() < n.noise.PLoss {
					n.heard[v] &^= c
				}
			} else if n.noise.PFalse > 0 && n.noiseSrc.Float64() < n.noise.PFalse {
				n.heard[v] |= c
			}
		}
	}
}

// noiseSeed derives the dedicated noise stream for a network seed.
func noiseSeed(seed uint64) *rng.Source {
	return rng.New(seed ^ noiseSalt)
}
