package beep

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestAdversaryJammer checks the strongest misuse policy end to end on a
// path 0-1-2 with the jammer in the middle: the jammer transmits the
// full mask every round, its machine is completely frozen, and both
// neighbors hear a beep in every round.
func TestAdversaryJammer(t *testing.T) {
	net, err := NewNetwork(graph.Path(3), counterProtocol{}, 11,
		WithAdversaries(AdvJammer, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	const rounds = 20
	jamSent := 0
	net.observer = func(_ int, sent, heard []Signal) {
		if sent[1] == net.fullMask {
			jamSent++
		}
		for _, v := range []int{0, 2} {
			if !heard[v].Has(Chan1) {
				t.Fatalf("neighbor %d of jammer heard silence", v)
			}
		}
	}
	for r := 0; r < rounds; r++ {
		net.Step()
	}
	if jamSent != rounds {
		t.Fatalf("jammer transmitted full mask in %d/%d rounds", jamSent, rounds)
	}
	m := net.Machine(1).(*counterMachine)
	if m.round != 0 || m.heard != 0 {
		t.Fatalf("jammer machine not frozen: round=%d heard=%d", m.round, m.heard)
	}
}

// TestAdversaryMute checks the crashed-silent policy: the mute vertex
// never transmits, never updates, and its path neighbors — whose only
// neighbor it is — hear unbroken silence.
func TestAdversaryMute(t *testing.T) {
	net, err := NewNetwork(graph.Path(3), counterProtocol{}, 11,
		WithAdversaries(AdvMute, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.observer = func(_ int, sent, heard []Signal) {
		if sent[1] != Silent {
			t.Fatalf("mute vertex transmitted %v", sent[1])
		}
	}
	for r := 0; r < 20; r++ {
		net.Step()
	}
	if m := net.Machine(1).(*counterMachine); m.round != 0 {
		t.Fatalf("mute machine not frozen: round=%d", m.round)
	}
	for _, v := range []int{0, 2} {
		if m := net.Machine(v).(*counterMachine); m.heard != 0 {
			t.Fatalf("vertex %d heard %d beeps from a mute-only neighborhood", v, m.heard)
		}
	}
}

// TestAdversaryBabblerDeterministic runs two identically seeded networks
// with a babbler and requires signal-identical executions — the babbler
// draws from the dedicated adversary stream, so babbling is as
// reproducible as everything else. It also checks the babbler actually
// varies its output (it is not a constant-policy adversary) and that its
// machine stays frozen.
func TestAdversaryBabblerDeterministic(t *testing.T) {
	const rounds = 64
	run := func() []Signal {
		net, err := NewNetwork(graph.Cycle(5), counterProtocol{}, 42,
			WithAdversaries(AdvBabbler, []int{3}))
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		var out []Signal
		net.observer = func(_ int, sent, _ []Signal) { out = append(out, sent[3]) }
		for r := 0; r < rounds; r++ {
			net.Step()
		}
		if m := net.Machine(3).(*counterMachine); m.round != 0 {
			t.Fatalf("babbler machine not frozen: round=%d", m.round)
		}
		return out
	}
	a, b := run(), run()
	beeps, silences := 0, 0
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("babbler output diverged at round %d: %v vs %v", r, a[r], b[r])
		}
		if a[r] == Silent {
			silences++
		} else {
			beeps++
		}
	}
	if beeps == 0 || silences == 0 {
		t.Fatalf("babbler output is constant over %d rounds (beeps=%d silences=%d)",
			rounds, beeps, silences)
	}
}

// TestAdversaryOverridesSleep pins the documented precedence: an
// adversary transmits per its policy even in rounds the sleep model
// would have put it to bed.
func TestAdversaryOverridesSleep(t *testing.T) {
	net, err := NewNetwork(graph.Path(2), counterProtocol{}, 5,
		WithSleep(Sleep{P: 0.9}),
		WithAdversaries(AdvJammer, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.observer = func(r int, sent, _ []Signal) {
		if sent[0] != net.fullMask {
			t.Fatalf("round %d: jammer slept (sent %v)", r, sent[0])
		}
	}
	for r := 0; r < 100; r++ {
		net.Step()
	}
}

// TestWithAdversariesValidation exercises every NewNetwork-time
// rejection path of the option.
func TestWithAdversariesValidation(t *testing.T) {
	g := graph.Path(4)
	cases := []struct {
		name string
		opts []Option
	}{
		{"out-of-range", []Option{WithAdversaries(AdvJammer, []int{4})}},
		{"negative", []Option{WithAdversaries(AdvMute, []int{-1})}},
		{"invalid-policy", []Option{WithAdversaries(AdversaryPolicy(99), []int{0})}},
		{"none-policy", []Option{WithAdversaries(advNone, []int{0})}},
		{"conflict", []Option{
			WithAdversaries(AdvJammer, []int{1}),
			WithAdversaries(AdvMute, []int{1}),
		}},
	}
	for _, c := range cases {
		if _, err := NewNetwork(g, counterProtocol{}, 1, c.opts...); err == nil {
			t.Fatalf("%s: invalid adversary spec accepted", c.name)
		}
	}
	// Repeating the same policy on the same vertex is harmless.
	net, err := NewNetwork(g, counterProtocol{}, 1,
		WithAdversaries(AdvJammer, []int{1}),
		WithAdversaries(AdvJammer, []int{1, 2}))
	if err != nil {
		t.Fatalf("idempotent re-assignment rejected: %v", err)
	}
	net.Close()
}

// TestAdversaryAccessors covers the query surface: count, per-vertex
// policy, the sorted vertex list, the mask capture, and the string
// round trip through ParseAdversaryPolicy.
func TestAdversaryAccessors(t *testing.T) {
	net, err := NewNetwork(graph.Cycle(6), counterProtocol{}, 9,
		WithAdversaries(AdvMute, []int{5, 0}),
		WithAdversaries(AdvBabbler, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if got := net.AdversaryCount(); got != 3 {
		t.Fatalf("AdversaryCount = %d, want 3", got)
	}
	wantPolicies := map[int]AdversaryPolicy{0: AdvMute, 1: advNone, 2: AdvBabbler, 5: AdvMute}
	for v, want := range wantPolicies {
		if got := net.AdversaryOf(v); got != want {
			t.Fatalf("AdversaryOf(%d) = %v, want %v", v, got, want)
		}
	}
	vs := net.Adversaries()
	if len(vs) != 3 || vs[0] != 0 || vs[1] != 2 || vs[2] != 5 {
		t.Fatalf("Adversaries() = %v, want [0 2 5]", vs)
	}
	mask := make([]bool, net.N())
	net.FillAdversaryMask(mask)
	for v := 0; v < net.N(); v++ {
		want := wantPolicies[v] != advNone
		if mask[v] != want {
			t.Fatalf("mask[%d] = %v, want %v", v, mask[v], want)
		}
	}
	for _, p := range []AdversaryPolicy{AdvJammer, AdvBabbler, AdvMute} {
		got, err := ParseAdversaryPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseAdversaryPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseAdversaryPolicy("gossip"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestAdversaryFollowsRewire checks that policies travel with surviving
// vertices through a renumbering rewire, that joiners arrive
// cooperating, and that the epoch counter moves so legality observers
// re-capture their masks.
func TestAdversaryFollowsRewire(t *testing.T) {
	net, err := NewNetwork(graph.Path(4), rwProtocol{}, 13,
		WithAdversaries(AdvJammer, []int{3}),
		WithAdversaries(AdvMute, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	epoch := net.AdversaryEpoch()
	// Drop vertex 0; survivors 1,2,3 -> 0,1,2; joiners 3,4.
	if err := net.Rewire(graph.Cycle(5), []int{-1, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if net.AdversaryEpoch() == epoch {
		t.Fatal("adversary epoch unchanged across Rewire")
	}
	want := map[int]AdversaryPolicy{0: AdvMute, 1: advNone, 2: AdvJammer, 3: advNone, 4: advNone}
	for v, p := range want {
		if got := net.AdversaryOf(v); got != p {
			t.Fatalf("after rewire AdversaryOf(%d) = %v, want %v", v, got, p)
		}
	}
	if got := net.AdversaryCount(); got != 2 {
		t.Fatalf("AdversaryCount = %d after rewire, want 2", got)
	}
	// Dropping the last adversaries through a rewire clears the set.
	if err := net.Rewire(graph.Path(2), []int{-1, 0, -1, 1, -1}); err != nil {
		t.Fatal(err)
	}
	if got := net.AdversaryCount(); got != 0 {
		t.Fatalf("AdversaryCount = %d after dropping all adversaries, want 0", got)
	}
	if net.Adversaries() != nil && len(net.Adversaries()) != 0 {
		t.Fatalf("Adversaries() = %v, want empty", net.Adversaries())
	}
}

// TestAdversaryEngineEquivalence is the focused engine contract for the
// adversary layer alone (the rewire test covers the combined case): all
// three engines must agree on executions with every policy installed,
// under noise and sleep, because babbler draws are pre-drawn
// sequentially.
func TestAdversaryEngineEquivalence(t *testing.T) {
	g := graph.GNPAvgDegree(30, 5, rng.New(8))
	const seed, rounds = 77, 25
	run := func(engine Engine) [][]Signal {
		var trace [][]Signal
		net, err := NewNetwork(g, probeProtocol{}, seed,
			WithEngine(engine),
			WithNoise(Noise{PLoss: 0.1, PFalse: 0.05}),
			WithSleep(Sleep{P: 0.1}),
			WithAdversaries(AdvJammer, []int{0}),
			WithAdversaries(AdvBabbler, []int{7, 11, 19}),
			WithAdversaries(AdvMute, []int{4}),
			WithObserver(func(_ int, sent, heard []Signal) {
				row := make([]Signal, 0, 2*len(sent))
				row = append(row, sent...)
				row = append(row, heard...)
				trace = append(trace, row)
			}))
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		net.RandomizeAll()
		for r := 0; r < rounds; r++ {
			net.Step()
		}
		return trace
	}
	ref := run(Sequential)
	for _, engine := range []Engine{Parallel, PerVertex} {
		got := run(engine)
		for r := range ref {
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("engine %v diverged at round %d slot %d", engine, r, i)
				}
			}
		}
	}
}
