package beep

import (
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// panicProtocol builds machines that run normally except for one vertex
// whose chosen phase panics at a chosen round: the fault-injection
// vehicle for the engine-containment tests.
type panicProtocol struct {
	vertex int
	round  int64
	phase  string // "emit" or "update"
}

func (p panicProtocol) Channels() int { return 1 }
func (p panicProtocol) NewMachine(v int, _ graph.Topology) Machine {
	return &panicMachine{proto: p, vertex: v}
}

type panicMachine struct {
	proto  panicProtocol
	vertex int
	rounds int64
}

func (m *panicMachine) Emit(src *rng.Source) Signal {
	if m.proto.phase == "emit" && m.vertex == m.proto.vertex && m.rounds+1 == m.proto.round {
		panic("injected emit fault")
	}
	if src.Coin() {
		return Chan1
	}
	return Silent
}

func (m *panicMachine) Update(sent, _ Signal) {
	m.rounds++
	if m.proto.phase == "update" && m.vertex == m.proto.vertex && m.rounds == m.proto.round {
		panic("injected update fault")
	}
}

func (m *panicMachine) Randomize(src *rng.Source) { m.rounds = int64(src.Intn(3)) }

func (m *panicMachine) EncodeState() []int64 { return []int64{m.rounds} }
func (m *panicMachine) DecodeState(s []int64) error {
	if len(s) != 1 {
		return errors.New("bad state")
	}
	m.rounds = s[0]
	return nil
}

// TestEnginePanicContainment injects a machine whose Step panics at a
// known (vertex, round, phase) on each engine and asserts: TryStep
// returns a typed *RunError naming the failure, the error is sticky,
// Close neither deadlocks nor panics (the sense-reversing barrier was
// not orphaned), and a subsequent network on the same protocol value
// runs unaffected.
func TestEnginePanicContainment(t *testing.T) {
	g := graph.GNP(25, 0.2, rng.New(6))
	for _, engine := range []Engine{Sequential, Parallel, PerVertex} {
		for _, phase := range []string{"emit", "update"} {
			t.Run(engine.String()+"/"+phase, func(t *testing.T) {
				proto := panicProtocol{vertex: 13, round: 4, phase: phase}
				net, err := NewNetwork(g, proto, 1, WithEngine(engine))
				if err != nil {
					t.Fatal(err)
				}

				var stepErr error
				for r := 1; r <= 10; r++ {
					if stepErr = net.TryStep(); stepErr != nil {
						break
					}
				}
				var rerr *RunError
				if !errors.As(stepErr, &rerr) {
					t.Fatalf("%v: got %v, want *RunError", engine, stepErr)
				}
				if rerr.Vertex != 13 || rerr.Round != 4 || rerr.Phase != phase || rerr.Engine != engine {
					t.Fatalf("RunError = vertex %d round %d phase %q engine %v, want 13/4/%q/%v",
						rerr.Vertex, rerr.Round, rerr.Phase, rerr.Engine, phase, engine)
				}
				if rerr.Recovered != "injected "+phase+" fault" {
					t.Fatalf("recovered value %v", rerr.Recovered)
				}
				if len(rerr.Stack) == 0 {
					t.Fatal("no stack captured")
				}

				// Sticky: the poisoned network refuses further rounds.
				if err := net.TryStep(); err != rerr {
					t.Fatalf("second TryStep returned %v, want the original *RunError", err)
				}
				if net.Failed() != rerr {
					t.Fatalf("Failed() = %v, want the original *RunError", net.Failed())
				}
				// Checkpointing a mid-phase torso is refused.
				if _, err := net.Checkpoint(); err == nil {
					t.Fatal("checkpoint of a failed network accepted")
				}

				// Close must return promptly: the panicking worker joined
				// the barrier before unwinding, so the pool is intact.
				closed := make(chan struct{})
				go func() { net.Close(); close(closed) }()
				select {
				case <-closed:
				case <-time.After(5 * time.Second):
					t.Fatalf("%v: Close deadlocked after a contained panic", engine)
				}

				// A fresh network on a healthy configuration of the same
				// shape is unaffected by the earlier failure.
				clean, err := NewNetwork(g, panicProtocol{vertex: -1}, 2, WithEngine(engine))
				if err != nil {
					t.Fatal(err)
				}
				defer clean.Close()
				for r := 0; r < 10; r++ {
					if err := clean.TryStep(); err != nil {
						t.Fatalf("clean network failed: %v", err)
					}
				}
			})
		}
	}
}

// TestStepPanicsTyped pins the legacy Step contract: a machine panic
// propagates, but as the typed *RunError, after the barrier has safely
// completed.
func TestStepPanicsTyped(t *testing.T) {
	g := graph.Path(4)
	net, err := NewNetwork(g, panicProtocol{vertex: 2, round: 1, phase: "emit"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	defer func() {
		r := recover()
		rerr, ok := r.(*RunError)
		if !ok {
			t.Fatalf("Step panicked with %T (%v), want *RunError", r, r)
		}
		if rerr.Vertex != 2 || rerr.Phase != "emit" {
			t.Fatalf("unexpected RunError %v", rerr)
		}
	}()
	net.Step()
	t.Fatal("Step did not panic")
}

// TestTryStepClosed pins the TryStep error on a closed network (Step
// keeps its terminal panic).
func TestTryStepClosed(t *testing.T) {
	net, err := NewNetwork(graph.Path(3), panicProtocol{vertex: -1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	if err := net.TryStep(); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryStep on closed network: %v, want ErrClosed", err)
	}
}

// flatPanicProtocol is panicProtocol's flat-kernel sibling: its bulk
// handle implements FlatProtocol and panics inside the chosen cohort
// pass (EmitAll or UpdateAll) at the chosen round, so the containment
// contract can be pinned on the Flat engine too, where the panic has no
// owning vertex (RunError.Vertex == -1).
type flatPanicProtocol struct {
	round int64
	phase string // "emit" or "update"
}

func (p flatPanicProtocol) Channels() int { return 1 }
func (p flatPanicProtocol) NewMachine(v int, _ graph.Topology) Machine {
	return &flatPanicMachine{}
}
func (p flatPanicProtocol) NewMachines(g graph.Topology) ([]Machine, any) {
	ms := make([]Machine, g.N())
	for v := range ms {
		ms[v] = &flatPanicMachine{}
	}
	return ms, &flatPanicOps{proto: p}
}

type flatPanicMachine struct{}

func (m *flatPanicMachine) Emit(src *rng.Source) Signal {
	if src.Coin() {
		return Chan1
	}
	return Silent
}
func (m *flatPanicMachine) Update(sent, heard Signal) {}
func (m *flatPanicMachine) Randomize(src *rng.Source) {}

type flatPanicOps struct {
	proto flatPanicProtocol
	round int64
}

func (o *flatPanicOps) EmitAll(env *FlatEnv) {
	o.round++
	o.EmitRange(env, 0, len(env.Sent))
}

func (o *flatPanicOps) EmitRange(env *FlatEnv, lo, hi int) {
	if o.proto.phase == "emit" && o.round == o.proto.round {
		panic("injected emit fault")
	}
	env.Drew = true
	for v := lo; v < hi; v++ {
		if env.Skip != nil && env.Skip.Get(v) {
			continue
		}
		if env.Srcs[v].Coin() {
			env.Sent[v] = Chan1
		} else {
			env.Sent[v] = Silent
		}
	}
}

func (o *flatPanicOps) UpdateAll(env *FlatEnv) { o.UpdateRange(env, 0, len(env.Sent)) }

func (o *flatPanicOps) UpdateRange(env *FlatEnv, lo, hi int) {
	if o.proto.phase == "update" && o.round == o.proto.round {
		panic("injected update fault")
	}
}

// TestFlatEnginePanicContainment mirrors TestEnginePanicContainment for
// the Flat engine's cohort kernels: a panic inside EmitAll/UpdateAll
// surfaces as a typed, sticky *RunError with Vertex == -1 (a cohort
// pass has no single owning vertex), the poisoned network refuses
// checkpoints, and Close returns promptly.
func TestFlatEnginePanicContainment(t *testing.T) {
	g := graph.GNP(25, 0.2, rng.New(6))
	for _, phase := range []string{"emit", "update"} {
		t.Run(phase, func(t *testing.T) {
			net, err := NewNetwork(g, flatPanicProtocol{round: 4, phase: phase}, 1, WithEngine(Flat))
			if err != nil {
				t.Fatal(err)
			}
			var stepErr error
			for r := 1; r <= 10; r++ {
				if stepErr = net.TryStep(); stepErr != nil {
					break
				}
			}
			var rerr *RunError
			if !errors.As(stepErr, &rerr) {
				t.Fatalf("got %v, want *RunError", stepErr)
			}
			if rerr.Vertex != -1 || rerr.Round != 4 || rerr.Phase != phase || rerr.Engine != Flat {
				t.Fatalf("RunError = vertex %d round %d phase %q engine %v, want -1/4/%q/Flat",
					rerr.Vertex, rerr.Round, rerr.Phase, rerr.Engine, phase)
			}
			if len(rerr.Stack) == 0 {
				t.Fatal("no stack captured")
			}
			if err := net.TryStep(); err != rerr {
				t.Fatalf("second TryStep returned %v, want the original *RunError", err)
			}
			if _, err := net.Checkpoint(); err == nil {
				t.Fatal("checkpoint of a failed network accepted")
			}
			closed := make(chan struct{})
			go func() { net.Close(); close(closed) }()
			select {
			case <-closed:
			case <-time.After(5 * time.Second):
				t.Fatal("Close deadlocked after a contained kernel panic")
			}
		})
	}
}

// TestFlatParallelEnginePanicContainment mirrors the Flat containment
// test for the sharded kernels: a panic inside a worker's
// EmitRange/UpdateRange stripe is recovered BEFORE the barrier join (so
// the pool is never orphaned — Close must return promptly), surfaces as
// the same typed sticky *RunError with Vertex == -1, and poisons the
// network against checkpoints. With several workers every stripe may
// panic in the same round; the pool keeps the first error.
func TestFlatParallelEnginePanicContainment(t *testing.T) {
	g := graph.GNP(130, 0.05, rng.New(8))
	for _, phase := range []string{"emit", "update"} {
		t.Run(phase, func(t *testing.T) {
			// round 0 == counter start: the stripe kernels (which do not
			// advance the per-cohort round counter — that is EmitAll's
			// job, and the sharded engine never calls EmitAll) panic on
			// their very first invocation.
			net, err := NewNetwork(g, flatPanicProtocol{round: 0, phase: phase}, 1,
				WithEngine(FlatParallel), WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			stepErr := net.TryStep()
			var rerr *RunError
			if !errors.As(stepErr, &rerr) {
				t.Fatalf("got %v, want *RunError", stepErr)
			}
			if rerr.Vertex != -1 || rerr.Round != 1 || rerr.Phase != phase || rerr.Engine != FlatParallel {
				t.Fatalf("RunError = vertex %d round %d phase %q engine %v, want -1/1/%q/FlatParallel",
					rerr.Vertex, rerr.Round, rerr.Phase, rerr.Engine, phase)
			}
			if len(rerr.Stack) == 0 {
				t.Fatal("no stack captured")
			}
			if err := net.TryStep(); err != rerr {
				t.Fatalf("second TryStep returned %v, want the original *RunError", err)
			}
			if _, err := net.Checkpoint(); err == nil {
				t.Fatal("checkpoint of a failed network accepted")
			}
			closed := make(chan struct{})
			go func() { net.Close(); close(closed) }()
			select {
			case <-closed:
			case <-time.After(5 * time.Second):
				t.Fatal("Close deadlocked after a contained stripe panic")
			}
		})
	}
}
