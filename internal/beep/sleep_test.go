package beep

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSleepValidation(t *testing.T) {
	for _, bad := range []Sleep{{P: -0.1}, {P: 1}, {P: 1.5}} {
		if _, err := NewNetwork(graph.Path(2), counterProtocol{}, 1, WithSleep(bad)); err == nil {
			t.Errorf("sleep %+v accepted", bad)
		}
	}
	if _, err := NewNetwork(graph.Path(2), counterProtocol{}, 1, WithSleep(Sleep{P: 0.5})); err != nil {
		t.Fatal(err)
	}
}

func TestSleepZeroIsTransparent(t *testing.T) {
	g := graph.GNP(30, 0.1, rng.New(7))
	run := func(opts ...Option) []Signal {
		var last []Signal
		net, err := NewNetwork(g, probeProtocol{}, 5, append(opts,
			WithObserver(func(_ int, sent, _ []Signal) {
				last = append(last[:0], sent...)
			}))...)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		for i := 0; i < 25; i++ {
			net.Step()
		}
		return append([]Signal(nil), last...)
	}
	a := run()
	b := run(WithSleep(Sleep{}))
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("zero sleep changed the execution")
		}
	}
}

func TestSleepRateAndSemantics(t *testing.T) {
	// alwaysBeep machines: a silent vertex in a round must be asleep,
	// and its Update must be skipped (round counter freezes).
	g := graph.Empty(300)
	silentRounds := 0
	const rounds = 200
	net, err := NewNetwork(g, alwaysBeepProtocol{}, 3, WithSleep(Sleep{P: 0.3}),
		WithObserver(func(_ int, sent, _ []Signal) {
			for _, s := range sent {
				if s == Silent {
					silentRounds++
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	rate := float64(silentRounds) / float64(300*rounds)
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("sleep rate %v, want ~0.3", rate)
	}
}

func TestSleepSkipsUpdate(t *testing.T) {
	g := graph.Empty(200)
	net, err := NewNetwork(g, counterProtocol{}, 5, WithSleep(Sleep{P: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	const rounds = 100
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	// counterMachine increments `round` only when Update runs; with
	// P=0.5 the counters should sit near rounds/2, far from rounds.
	total := 0
	for v := 0; v < net.N(); v++ {
		total += net.Machine(v).(*counterMachine).round
	}
	mean := float64(total) / float64(net.N())
	if math.Abs(mean-rounds/2) > 5 {
		t.Fatalf("mean updates %v, want ~%d (updates not skipped?)", mean, rounds/2)
	}
}

func TestSleepDeterministicAcrossEngines(t *testing.T) {
	g := graph.GNP(40, 0.1, rng.New(9))
	var ref [][]Signal
	for _, engine := range []Engine{Sequential, Parallel, PerVertex} {
		var tr [][]Signal
		net, err := NewNetwork(g, probeProtocol{}, 11,
			WithEngine(engine), WithSleep(Sleep{P: 0.2}),
			WithObserver(func(_ int, sent, _ []Signal) {
				row := make([]Signal, len(sent))
				copy(row, sent)
				tr = append(tr, row)
			}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			net.Step()
		}
		net.Close()
		if ref == nil {
			ref = tr
			continue
		}
		for r := range ref {
			for v := range ref[r] {
				if ref[r][v] != tr[r][v] {
					t.Fatalf("engine %v diverged under sleep at round %d vertex %d", engine, r+1, v)
				}
			}
		}
	}
}

func TestSleepCheckpointResume(t *testing.T) {
	g := graph.GNP(30, 0.15, rng.New(13))
	mk := func(seed uint64) *Network {
		net, err := NewNetwork(g, codecProtocol{}, seed, WithSleep(Sleep{P: 0.25}))
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	ref := mk(7)
	defer ref.Close()
	full := traceOf(t, ref, 40)

	a := mk(7)
	defer a.Close()
	_ = traceOf(t, a, 20)
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b := mk(42)
	defer b.Close()
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	tail := traceOf(t, b, 20)
	for r := 0; r < 20; r++ {
		for v := range tail[r] {
			if tail[r][v] != full[20+r][v] {
				t.Fatalf("sleep-resumed trace diverged at round %d vertex %d", 21+r, v)
			}
		}
	}
}
