package beep

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Rewire swaps the network's topology for g2 while it is live — the
// simulator's model of churn: links flap, vertices crash away, fresh
// vertices join, and the protocol must re-stabilize from whatever state
// survives (exactly the regime Theorem 2.1's "from any configuration"
// guarantee covers).
//
// mapping has one entry per *current* vertex: its index in g2, or -1 if
// it leaves the network. graph.ApplyEdits produces such a mapping (its
// first N entries). Vertices of g2 not hit by the mapping are joiners.
//
// Semantics:
//
//   - Surviving vertices keep their complete machine state — including
//     whatever topology knowledge (ℓmax) they were constructed with; a
//     deployed radio does not magically re-learn Δ when a link flaps —
//     via the StateCodec round-trip when available, or by carrying the
//     machine value itself otherwise. They also keep their private
//     random streams, so the randomness they consume is independent of
//     the renumbering.
//   - Joiners get machines built by the protocol for g2 (fresh
//     knowledge), then a uniformly random state drawn from a fresh
//     child stream — the "arbitrary initial configuration" a newly
//     powered-on radio contributes. Fresh streams never collide with
//     existing ones (they advance the network's child-stream counter).
//   - Adversary policies follow the surviving vertices through the
//     mapping; joiners are always cooperating.
//   - All three engines are supported: the worker pool is rebuilt for
//     the new vertex count, and because Rewire itself runs sequentially
//     between rounds, executions remain engine-independent.
//
// The operation is atomic: every validation failure leaves the network
// untouched. The round counter continues across the rewire.
func (n *Network) Rewire(g2 *graph.Graph, mapping []int) error {
	if n.closed {
		return fmt.Errorf("beep: Rewire on closed Network")
	}
	if g2 == nil {
		return fmt.Errorf("beep: Rewire with nil graph")
	}
	oldN, newN := n.N(), g2.N()
	if len(mapping) != oldN {
		return fmt.Errorf("beep: Rewire mapping covers %d vertices, network has %d", len(mapping), oldN)
	}
	taken := make([]bool, newN)
	for old, w := range mapping {
		if w < 0 {
			continue
		}
		if w >= newN {
			return fmt.Errorf("beep: Rewire maps vertex %d to %d, new graph has %d vertices", old, w, newN)
		}
		if taken[w] {
			return fmt.Errorf("beep: Rewire maps two vertices to %d", w)
		}
		taken[w] = true
	}

	// Build the machine cohort for the new topology. The batch path
	// keeps the bulk-state handle (and with it the fast level-export
	// path) valid across the rewire.
	machines := make([]Machine, newN)
	var bulk any
	if bp, ok := n.proto.(BatchProtocol); ok {
		ms, b := bp.NewMachines(g2)
		if len(ms) != newN {
			return fmt.Errorf("beep: BatchProtocol %T built %d machines for %d vertices", n.proto, len(ms), newN)
		}
		copy(machines, ms)
		bulk = b
	} else {
		for v := 0; v < newN; v++ {
			machines[v] = n.proto.NewMachine(v, g2)
		}
	}

	// Transfer the survivors. Everything below mutates only freshly
	// allocated storage (or the new cohort), so an encode/decode
	// failure still leaves the live network untouched.
	srcs := make([]*rng.Source, newN)
	var adv2 []uint8
	if n.adv != nil {
		adv2 = make([]uint8, newN)
	}
	for old, w := range mapping {
		if w < 0 {
			continue
		}
		srcs[w] = n.srcs[old]
		if adv2 != nil {
			adv2[w] = n.adv[old]
		}
		oldM := n.machines[old]
		enc, okEnc := oldM.(StateCodec)
		dec, okDec := machines[w].(StateCodec)
		if okEnc && okDec {
			if err := dec.DecodeState(enc.EncodeState()); err != nil {
				return fmt.Errorf("beep: Rewire state transfer of vertex %d→%d: %w", old, w, err)
			}
			continue
		}
		// Machines without checkpoint support: carry the machine value
		// itself. The bulk handle would no longer describe the cohort,
		// so it is dropped and analysts fall back to per-machine reads.
		machines[w] = oldM
		bulk = nil
	}

	// Joiners: fresh streams, randomized state (drawn sequentially here,
	// so the consumed order is engine-independent).
	joinerStream := n.nextStream
	for v := 0; v < newN; v++ {
		if srcs[v] != nil {
			continue
		}
		srcs[v] = n.root.Split(joinerStream)
		joinerStream++
		machines[v].Randomize(srcs[v])
	}

	// Commit. Churn always rewires onto a materialized graph (ApplyEdits
	// builds one), so the CSR fast path stays live across the rewire.
	n.nextStream = joinerStream
	n.g = g2
	n.csr = g2
	n.gfpOK = false // new topology: the cached fingerprint is stale
	n.rowBuf = nil
	n.machines = machines
	n.srcs = srcs
	n.bulk = bulk
	n.sent = make([]Signal, newN)
	n.heard = make([]Signal, newN)
	n.asleep = nil // re-sized lazily by the next drawSleep
	if adv2 != nil {
		n.setAdversaries(adv2)
	} else {
		n.advEpoch++ // topology changed: observers re-key their masks
	}
	n.bindFlatOps() // the slab was rebuilt (or dropped): re-derive the kernels
	n.flatParOps = nil
	if n.workers != nil {
		n.workers.close()
		n.workers = nil
	}
	if n.usesPool() {
		// The pool is rebuilt for the new vertex count. For the
		// flat-parallel engine this also rebuilds the per-worker stripe
		// state (scatter masks, pack counters, kernel environments):
		// stripe boundaries are a function of N, so stale stripes from
		// the pre-churn topology must never survive a Rewire
		// (regression-tested by TestFlatParallelRewireReseedBitExact).
		n.workers = newWorkerPool(n, n.poolSize())
	}
	return nil
}
