package beep

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/graph"
)

// StateCodec is implemented by machines that support checkpointing:
// EncodeState serializes the complete mutable state, DecodeState
// restores it. Together with the per-vertex random-stream states this
// makes executions exactly resumable.
type StateCodec interface {
	// EncodeState returns the machine's mutable state as integers.
	EncodeState() []int64
	// DecodeState restores a state produced by EncodeState; it returns
	// an error for malformed input.
	DecodeState(state []int64) error
}

// CheckpointFormatVersion is the current on-disk checkpoint format.
// Version 2 added the identity header (graph fingerprint, protocol,
// seed, noise/sleep parameters), the adversary state (policy array,
// dedicated stream, epoch), the root-stream/next-stream state needed
// for exact joiner randomness after a resumed Rewire, and the FNV-1a
// integrity hash. Version-1 checkpoints (which silently dropped all of
// that and could diverge on resume) are rejected.
const CheckpointFormatVersion = 2

// Checkpoint is a serializable snapshot of a running network: an
// identity header binding it to the (graph, protocol, seed, fault
// model) it was captured from, the full execution state (round counter,
// every machine's state, every random stream), and an integrity hash
// over the payload. It is JSON-encodable for storage; WriteCheckpoint
// and ReadCheckpoint enforce the hash at the serialization boundary and
// Network.Restore enforces the identity header, so a checkpoint can
// neither be corrupted in flight nor restored onto the wrong run
// without an error.
type Checkpoint struct {
	// FormatVersion is CheckpointFormatVersion at capture time.
	FormatVersion int `json:"formatVersion"`

	// GraphFingerprint, GraphN and GraphM identify the topology the
	// checkpoint was captured on (see graph.Graph.Fingerprint). Restore
	// rejects a checkpoint whose fingerprint does not match the target
	// network's graph: machine states are positional, so restoring onto
	// any other topology — even one with the same vertex count — would
	// silently produce a different execution.
	GraphFingerprint uint64 `json:"graphFingerprint"`
	GraphN           int    `json:"graphN"`
	GraphM           int    `json:"graphM"`
	// Protocol is the protocol's type identity (including channel
	// count); Restore rejects mismatches.
	Protocol string `json:"protocol"`
	// Seed is the root seed of the captured network, recorded for
	// provenance. Restore does not require the target network to share
	// it: the checkpoint carries every stream state, including the root
	// stream joiner randomness is drawn from, so it overrides the
	// target's seed entirely.
	Seed uint64 `json:"seed"`
	// NoiseLoss, NoiseFalse and SleepP are the fault-model parameters
	// of the captured network. They are construction-time options, not
	// state, so Restore validates that the target network was built
	// with the same values — resuming a noisy run on a noiseless
	// network would diverge immediately.
	NoiseLoss  float64 `json:"noiseLoss,omitempty"`
	NoiseFalse float64 `json:"noiseFalse,omitempty"`
	SleepP     float64 `json:"sleepP,omitempty"`

	// Round is the number of completed rounds.
	Round int `json:"round"`
	// Machines and Streams hold, per vertex, the machine state and the
	// private random-stream state.
	Machines [][]int64   `json:"machines"`
	Streams  [][4]uint64 `json:"streams"`
	// NoiseRNG, SleepRNG and AdvRNG are the dedicated fault-model
	// stream states.
	NoiseRNG [4]uint64 `json:"noiseRng"`
	SleepRNG [4]uint64 `json:"sleepRng"`
	AdvRNG   [4]uint64 `json:"advRng"`
	// RootRNG and NextStream capture the child-stream allocator:
	// RootRNG is the (never-advanced) root stream and NextStream the
	// next unused child index, so vertices joining through Rewire after
	// a resume draw exactly the streams they would have drawn in the
	// uninterrupted run.
	RootRNG    [4]uint64 `json:"rootRng"`
	NextStream uint64    `json:"nextStream"`
	// Adversaries is the per-vertex policy array (one byte per vertex,
	// 0 = cooperating; see AdversaryPolicy), nil when no adversaries
	// are installed. AdvEpoch is the epoch counter legality observers
	// key their masks on.
	Adversaries []uint8 `json:"adversaries,omitempty"`
	AdvEpoch    uint64  `json:"advEpoch"`

	// Hash is the FNV-1a digest of every field above, in canonical
	// order. WriteCheckpoint refuses to persist a checkpoint whose hash
	// does not match its payload, and ReadCheckpoint / Restore reject
	// one whose payload does not match its hash.
	Hash uint64 `json:"hash"`
}

// protocolID derives the protocol identity recorded in checkpoints.
func protocolID(p Protocol) string {
	return fmt.Sprintf("%T/%dch", p, p.Channels())
}

// payloadHash computes the canonical FNV-1a digest of the checkpoint's
// payload (everything except Hash itself).
func (c *Checkpoint) payloadHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(c.FormatVersion))
	put(c.GraphFingerprint)
	put(uint64(c.GraphN))
	put(uint64(c.GraphM))
	put(uint64(len(c.Protocol)))
	io.WriteString(h, c.Protocol)
	put(c.Seed)
	put(math.Float64bits(c.NoiseLoss))
	put(math.Float64bits(c.NoiseFalse))
	put(math.Float64bits(c.SleepP))
	put(uint64(c.Round))
	put(uint64(len(c.Machines)))
	for _, m := range c.Machines {
		put(uint64(len(m)))
		for _, s := range m {
			put(uint64(s))
		}
	}
	put(uint64(len(c.Streams)))
	for _, s := range c.Streams {
		for _, w := range s {
			put(w)
		}
	}
	for _, w := range c.NoiseRNG {
		put(w)
	}
	for _, w := range c.SleepRNG {
		put(w)
	}
	for _, w := range c.AdvRNG {
		put(w)
	}
	for _, w := range c.RootRNG {
		put(w)
	}
	put(c.NextStream)
	put(uint64(len(c.Adversaries)))
	h.Write(c.Adversaries)
	put(c.AdvEpoch)
	return h.Sum64()
}

// Seal (re)computes the integrity hash over the current payload. It is
// called by Network.Checkpoint; callers that build or mutate a
// Checkpoint by hand must re-seal it or Write/Restore will reject it.
func (c *Checkpoint) Seal() { c.Hash = c.payloadHash() }

// Validate checks the checkpoint's internal consistency: format
// version, non-negative round, matching vector lengths and integrity
// hash. It never panics, whatever the contents.
func (c *Checkpoint) Validate() error {
	if c == nil {
		return fmt.Errorf("beep: nil checkpoint")
	}
	if c.FormatVersion != CheckpointFormatVersion {
		return fmt.Errorf("beep: checkpoint format version %d, this build reads only version %d",
			c.FormatVersion, CheckpointFormatVersion)
	}
	if c.Round < 0 {
		return fmt.Errorf("beep: checkpoint with negative round %d", c.Round)
	}
	if c.GraphN != len(c.Machines) {
		return fmt.Errorf("beep: checkpoint header says %d vertices, payload has %d machine states",
			c.GraphN, len(c.Machines))
	}
	if len(c.Machines) != len(c.Streams) {
		return fmt.Errorf("beep: checkpoint has %d machine states but %d stream states",
			len(c.Machines), len(c.Streams))
	}
	if c.Adversaries != nil && len(c.Adversaries) != len(c.Machines) {
		return fmt.Errorf("beep: checkpoint adversary mask covers %d vertices, payload has %d",
			len(c.Adversaries), len(c.Machines))
	}
	if got := c.payloadHash(); got != c.Hash {
		return fmt.Errorf("beep: checkpoint integrity hash mismatch (payload %#x, header %#x): corrupted or tampered",
			got, c.Hash)
	}
	return nil
}

// graphFingerprint returns the topology fingerprint stamped into
// checkpoints and deltas, computing it on first use and caching it
// until Rewire replaces the graph (the hash walks every edge — at
// delta-checkpoint cadence an uncached recompute would cost more than
// the delta itself).
func (n *Network) graphFingerprint() uint64 {
	if !n.gfpOK {
		n.gfp = graph.FingerprintOf(n.g)
		n.gfpOK = true
	}
	return n.gfp
}

// Checkpoint captures the current state of the network, sealed with the
// integrity hash. It returns an error if any machine does not implement
// StateCodec, or if the network is poisoned by a contained machine
// panic (the state would be a mid-phase torso, not a round boundary).
func (n *Network) Checkpoint() (*Checkpoint, error) {
	if n.failed != nil {
		return nil, fmt.Errorf("beep: checkpoint of failed network: %w", n.failed)
	}
	if n.sampler != nil {
		return nil, fmt.Errorf("beep: checkpoint with batched sampling enabled: the sampler's residual words are not part of checkpoint format v%d, so a resumed run would diverge", CheckpointFormatVersion)
	}
	c := &Checkpoint{
		FormatVersion:    CheckpointFormatVersion,
		GraphFingerprint: n.graphFingerprint(),
		GraphN:           n.N(),
		GraphM:           n.g.M(),
		Protocol:         protocolID(n.proto),
		Seed:             n.seed,
		NoiseLoss:        n.noise.PLoss,
		NoiseFalse:       n.noise.PFalse,
		SleepP:           n.sleep.P,
		Round:            n.round,
		Machines:         make([][]int64, n.N()),
		Streams:          make([][4]uint64, n.N()),
		NoiseRNG:         n.noiseSrc.State(),
		SleepRNG:         n.sleepSrc.State(),
		AdvRNG:           n.advSrc.State(),
		RootRNG:          n.root.State(),
		NextStream:       n.nextStream,
		AdvEpoch:         n.advEpoch,
	}
	if n.adv != nil {
		c.Adversaries = append([]uint8(nil), n.adv...)
	}
	for v, m := range n.machines {
		codec, ok := m.(StateCodec)
		if !ok {
			return nil, fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", m, v)
		}
		c.Machines[v] = codec.EncodeState()
		c.Streams[v] = n.srcs[v].State()
	}
	c.Seal()
	// This checkpoint is a complete baseline: dirty tracking restarts
	// from it, so a later CheckpointDelta captures exactly the words
	// that moved since this call (see delta.go).
	n.ckDirty.rebaseline(n.N())
	n.ckDirty.adv = false
	return c, nil
}

// Restore installs a checkpoint captured on a network with the same
// graph (validated by fingerprint), protocol and fault-model
// parameters. Subsequent rounds reproduce the original execution
// exactly — including adversary behavior and post-resume Rewire joiner
// randomness, which the pre-v2 format silently lost. The seed of the
// target network need not match: the checkpoint carries every stream
// state. On any validation or decode error the network is left in its
// prior state (machine decodes are rolled back).
func (n *Network) Restore(c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(c.Machines) != n.N() {
		return fmt.Errorf("beep: checkpoint for %d vertices restored onto %d", len(c.Machines), n.N())
	}
	if got := n.graphFingerprint(); got != c.GraphFingerprint {
		return fmt.Errorf("beep: checkpoint captured on graph %#x (n=%d m=%d), target network runs %#x (n=%d m=%d): topologies differ",
			c.GraphFingerprint, c.GraphN, c.GraphM, got, n.N(), n.g.M())
	}
	if got := protocolID(n.proto); got != c.Protocol {
		return fmt.Errorf("beep: checkpoint captured under protocol %s, target network runs %s", c.Protocol, got)
	}
	if c.NoiseLoss != n.noise.PLoss || c.NoiseFalse != n.noise.PFalse || c.SleepP != n.sleep.P {
		return fmt.Errorf("beep: checkpoint fault model (loss=%v false=%v sleep=%v) does not match target network (loss=%v false=%v sleep=%v)",
			c.NoiseLoss, c.NoiseFalse, c.SleepP, n.noise.PLoss, n.noise.PFalse, n.sleep.P)
	}
	for v, m := range n.machines {
		if _, ok := m.(StateCodec); !ok {
			return fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", m, v)
		}
	}

	// Decode machine states with rollback: a failure at vertex v undoes
	// the decodes of vertices [0, v) so a rejected checkpoint leaves
	// the live network untouched.
	saved := make([][]int64, n.N())
	for v, m := range n.machines {
		codec := m.(StateCodec)
		saved[v] = codec.EncodeState()
		if err := codec.DecodeState(c.Machines[v]); err != nil {
			for u := 0; u <= v; u++ {
				// Re-decoding a state just produced by EncodeState
				// cannot fail for a law-abiding codec; ignore errors to
				// keep the original failure primary.
				_ = n.machines[u].(StateCodec).DecodeState(saved[u])
			}
			return fmt.Errorf("beep: vertex %d: %w", v, err)
		}
	}

	for v := range n.machines {
		n.srcs[v].SetState(c.Streams[v])
	}
	n.noiseSrc.SetState(c.NoiseRNG)
	n.sleepSrc.SetState(c.SleepRNG)
	n.advSrc.SetState(c.AdvRNG)
	n.root.SetState(c.RootRNG)
	n.nextStream = c.NextStream
	n.seed = c.Seed
	if c.Adversaries != nil {
		n.setAdversaries(append([]uint8(nil), c.Adversaries...))
	} else if n.adv != nil {
		n.setAdversaries(make([]uint8, n.N()))
	}
	n.advEpoch = c.AdvEpoch
	n.round = c.Round
	// The sent/heard arrays still describe the pre-restore execution, so
	// a quiescence snapshot (if any) must not elide the next round even
	// if the restored state happens to match it. The same staleness
	// invalidates the sparse path's frontier and sender-bit baselines.
	n.quiet = false
	n.sparse.markAll()
	// The restored state shares nothing with whatever baseline the
	// dirty tracker held; the next checkpoint must be a full base.
	n.ckDirty.markAll()
	n.ckDirty.adv = true
	return nil
}

// WriteCheckpoint serializes a checkpoint as JSON. It refuses to
// persist a checkpoint whose integrity hash does not match its payload,
// so corruption is caught at write time instead of resume time.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("beep: write checkpoint: %w", err)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("beep: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint parses and validates a JSON checkpoint: malformed
// JSON, unsupported format versions, inconsistent vector lengths and
// integrity-hash mismatches all surface as errors, never panics.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("beep: read checkpoint: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("beep: read checkpoint: %w", err)
	}
	return &c, nil
}
