package beep

import (
	"encoding/json"
	"fmt"
	"io"
)

// StateCodec is implemented by machines that support checkpointing:
// EncodeState serializes the complete mutable state, DecodeState
// restores it. Together with the per-vertex random-stream states this
// makes executions exactly resumable.
type StateCodec interface {
	// EncodeState returns the machine's mutable state as integers.
	EncodeState() []int64
	// DecodeState restores a state produced by EncodeState; it returns
	// an error for malformed input.
	DecodeState(state []int64) error
}

// Checkpoint is a serializable snapshot of a running network: the round
// counter, every machine's state and every random stream's state. It is
// JSON-encodable for storage.
type Checkpoint struct {
	Round    int         `json:"round"`
	Machines [][]int64   `json:"machines"`
	Streams  [][4]uint64 `json:"streams"`
	NoiseRNG [4]uint64   `json:"noiseRng"`
	SleepRNG [4]uint64   `json:"sleepRng"`
}

// Checkpoint captures the current state of the network. It returns an
// error if any machine does not implement StateCodec.
func (n *Network) Checkpoint() (*Checkpoint, error) {
	c := &Checkpoint{
		Round:    n.round,
		Machines: make([][]int64, n.N()),
		Streams:  make([][4]uint64, n.N()),
		NoiseRNG: n.noiseSrc.State(),
		SleepRNG: n.sleepSrc.State(),
	}
	for v, m := range n.machines {
		codec, ok := m.(StateCodec)
		if !ok {
			return nil, fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", m, v)
		}
		c.Machines[v] = codec.EncodeState()
		c.Streams[v] = n.srcs[v].State()
	}
	return c, nil
}

// Restore installs a checkpoint captured on a network with the same
// graph and protocol. Subsequent rounds reproduce the original
// execution exactly.
func (n *Network) Restore(c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("beep: nil checkpoint")
	}
	if len(c.Machines) != n.N() || len(c.Streams) != n.N() {
		return fmt.Errorf("beep: checkpoint for %d vertices restored onto %d", len(c.Machines), n.N())
	}
	for v, m := range n.machines {
		codec, ok := m.(StateCodec)
		if !ok {
			return fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", m, v)
		}
		if err := codec.DecodeState(c.Machines[v]); err != nil {
			return fmt.Errorf("beep: vertex %d: %w", v, err)
		}
		n.srcs[v].SetState(c.Streams[v])
	}
	n.noiseSrc.SetState(c.NoiseRNG)
	n.sleepSrc.SetState(c.SleepRNG)
	n.round = c.Round
	return nil
}

// WriteCheckpoint serializes a checkpoint as JSON.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("beep: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint parses a JSON checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("beep: read checkpoint: %w", err)
	}
	return &c, nil
}
