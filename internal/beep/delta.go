package beep

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/bits"
)

// Incremental delta checkpoints. A Delta carries the state of exactly
// the slab words (64-vertex groups, the same granularity as the sparse
// path's activity masks) dirtied since the parent checkpoint, plus the
// always-tiny global fields (round counter, aux RNG states, stream
// allocator, adversary epoch). Applied on top of its parent it
// reproduces the full checkpoint bit-exactly, so a base snapshot plus
// a chain of deltas is equivalent to a chain of full snapshots at a
// cost proportional to the words that actually moved — in a
// stabilized self-stabilizing execution, near zero.
//
// Chain discipline. Every delta records ParentHash — the hash of the
// chain tip it extends (the base checkpoint's for the first link, the
// previous delta's for later ones) — and seals its own payload with
// the same FNV-1a construction, so each link costs O(its own size) to
// seal and verify, never O(n). Loaders (internal/ckpt) verify
// every link's hash and parentage before mutating any state; ApplyDelta
// itself only patches and deliberately does not reseal — rebuilding
// the O(n) checkpoint hash once after the last link is the loader's
// job, not a per-link cost.
//
// Dirty accumulation invariant. The engine marks a slab word dirty
// when any of its vertices advances its random stream or changes
// machine state (the sparse path's end-of-round drewW|changedW union
// is exactly that set), and marks everything dirty on any round or
// mutation the masks do not describe: dense rounds, fault-model
// rounds, Corrupt, RandomizeAll, Restore, Reseed, Rewire, retained
// Machine handles, adversary-set changes. Sent/heard arrays are not
// checkpointed state — Restore rebuilds delivery invariants densely —
// so word-level stream+machine coverage is complete.

// Delta is an incremental checkpoint: the dirty-word state patch from
// a parent checkpoint to the capture round.
type Delta struct {
	// GraphFingerprint and Protocol pin the identity like a full
	// checkpoint; ApplyDelta rejects mismatches.
	GraphFingerprint uint64 `json:"graphFingerprint"`
	Protocol         string `json:"protocol"`
	// Round is the completed-round counter at capture.
	Round int `json:"round"`
	// ParentHash is the integrity hash of the chain tip this delta was
	// captured against: the base checkpoint's Hash for the first link,
	// the previous delta's Hash for later links. Chain loaders refuse a
	// link whose ParentHash does not match the tip they assembled.
	ParentHash uint64 `json:"parentHash"`
	// Words lists the dirty slab words in ascending order; word wi
	// covers vertices [wi*64, min(n, (wi+1)*64)). Machines and Streams
	// hold the state of exactly those vertices, in word order.
	Words    []int32     `json:"words"`
	Machines [][]int64   `json:"machines"`
	Streams  [][4]uint64 `json:"streams"`
	// The global fields below are tiny and always carried.
	NoiseRNG   [4]uint64 `json:"noiseRng"`
	SleepRNG   [4]uint64 `json:"sleepRng"`
	AdvRNG     [4]uint64 `json:"advRng"`
	RootRNG    [4]uint64 `json:"rootRng"`
	NextStream uint64    `json:"nextStream"`
	AdvEpoch   uint64    `json:"advEpoch"`
	// Adversaries is the full policy table when the adversary set
	// changed since the parent, nil when unchanged. The empty non-nil
	// table means "all cooperating now".
	Adversaries []uint8 `json:"adversaries,omitempty"`
	// Hash seals the delta's own payload (everything above).
	Hash uint64 `json:"hash"`
}

// payloadHash computes the canonical FNV-1a digest of the delta's
// payload (everything except Hash itself).
func (d *Delta) payloadHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(d.GraphFingerprint)
	put(uint64(len(d.Protocol)))
	h.Write([]byte(d.Protocol))
	put(uint64(d.Round))
	put(d.ParentHash)
	put(uint64(len(d.Words)))
	for _, w := range d.Words {
		put(uint64(uint32(w)))
	}
	put(uint64(len(d.Machines)))
	for _, m := range d.Machines {
		put(uint64(len(m)))
		for _, s := range m {
			put(uint64(s))
		}
	}
	put(uint64(len(d.Streams)))
	for _, s := range d.Streams {
		for _, w := range s {
			put(w)
		}
	}
	for _, w := range d.NoiseRNG {
		put(w)
	}
	for _, w := range d.SleepRNG {
		put(w)
	}
	for _, w := range d.AdvRNG {
		put(w)
	}
	for _, w := range d.RootRNG {
		put(w)
	}
	put(d.NextStream)
	put(uint64(len(d.Adversaries)))
	h.Write(d.Adversaries)
	put(d.AdvEpoch)
	return h.Sum64()
}

// Seal (re)computes the delta's integrity hash.
func (d *Delta) Seal() { d.Hash = d.payloadHash() }

// Validate checks internal consistency and the integrity hash. It
// never panics, whatever the contents.
func (d *Delta) Validate() error {
	if d == nil {
		return errors.New("beep: nil delta")
	}
	if d.Round < 0 {
		return fmt.Errorf("beep: delta with negative round %d", d.Round)
	}
	if len(d.Machines) != len(d.Streams) {
		return fmt.Errorf("beep: delta has %d machine states but %d stream states", len(d.Machines), len(d.Streams))
	}
	prev := int32(-1)
	for _, w := range d.Words {
		if w <= prev {
			return fmt.Errorf("beep: delta word list not strictly ascending at word %d", w)
		}
		prev = w
	}
	// The covered vertex count is between 64·(words-1)+1 and 64·words
	// (the last word may be partial); exact sizing is validated against
	// the parent in ApplyDelta.
	if len(d.Words) > 0 {
		max := len(d.Words) * 64
		min := (len(d.Words)-1)*64 + 1
		if len(d.Machines) > max || len(d.Machines) < min {
			return fmt.Errorf("beep: delta covers %d words but carries %d vertex states", len(d.Words), len(d.Machines))
		}
	} else if len(d.Machines) != 0 {
		return fmt.Errorf("beep: delta carries %d vertex states with no dirty words", len(d.Machines))
	}
	if got := d.payloadHash(); got != d.Hash {
		return fmt.Errorf("beep: delta integrity hash mismatch (payload %#x, header %#x): corrupted or tampered", got, d.Hash)
	}
	return nil
}

// ApplyDelta patches c in place with the delta's dirty-word state.
// The caller is responsible for chain order (ParentHash checking) and
// for resealing c after the last delta of a chain; ApplyDelta verifies
// identity and shape but deliberately neither checks c.Hash nor
// recomputes it — both are O(n) and belong at the chain boundary, not
// per link.
func ApplyDelta(c *Checkpoint, d *Delta) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if c == nil {
		return errors.New("beep: apply delta to nil checkpoint")
	}
	if c.GraphFingerprint != d.GraphFingerprint {
		return fmt.Errorf("beep: delta captured on graph %#x, checkpoint holds %#x", d.GraphFingerprint, c.GraphFingerprint)
	}
	if c.Protocol != d.Protocol {
		return fmt.Errorf("beep: delta captured under protocol %s, checkpoint holds %s", d.Protocol, c.Protocol)
	}
	n := len(c.Machines)
	// Validate every word index before the first write: a bad delta
	// must leave the checkpoint untouched.
	i := 0
	for _, w := range d.Words {
		lo := int(w) * 64
		hi := lo + 64
		if hi > n {
			hi = n
		}
		if lo < 0 || lo >= n {
			return fmt.Errorf("beep: delta word %d out of range for %d vertices", w, n)
		}
		i += hi - lo
	}
	if i != len(d.Machines) {
		return fmt.Errorf("beep: delta words cover %d vertices but carry %d states", i, len(d.Machines))
	}
	if d.Adversaries != nil && len(d.Adversaries) != 0 && len(d.Adversaries) != n {
		return fmt.Errorf("beep: delta adversary table covers %d vertices, checkpoint has %d", len(d.Adversaries), n)
	}
	i = 0
	for _, w := range d.Words {
		lo := int(w) * 64
		hi := lo + 64
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			c.Machines[v] = d.Machines[i]
			c.Streams[v] = d.Streams[i]
			i++
		}
	}
	c.Round = d.Round
	c.NoiseRNG = d.NoiseRNG
	c.SleepRNG = d.SleepRNG
	c.AdvRNG = d.AdvRNG
	c.RootRNG = d.RootRNG
	c.NextStream = d.NextStream
	c.AdvEpoch = d.AdvEpoch
	if d.Adversaries != nil {
		if len(d.Adversaries) == 0 {
			c.Adversaries = nil
		} else {
			c.Adversaries = append([]uint8(nil), d.Adversaries...)
		}
	}
	return nil
}

// ---- Dirty-word tracking (the engine side) ----

// dirtyState accumulates the slab words dirtied since the last
// checkpoint baseline. It starts conservative (everything dirty,
// tracking disarmed) and is armed by the first baseline capture;
// per-round accumulation is a fused OR into the sparse path's
// end-of-round activity union and costs nothing on elided rounds.
type dirtyState struct {
	// enabled is set by the first baseline; until then no accumulation
	// happens (all stays true).
	enabled bool
	// all conservatively marks everything dirty: initial state, dense
	// or fault-model rounds, and every external mutation without a
	// per-vertex mark.
	all bool
	// adv is set when the adversary policy table changed since the
	// baseline; the next delta then carries the full table.
	adv bool
	// n is the vertex count mask is sized for; mask has one bit per
	// slab word, same shape as sparseState.act.
	n    int
	mask []uint64
}

func (d *dirtyState) markAll() { d.all = true }

// accum returns the mask the round loop should OR its end-of-round
// activity union into, or nil when tracking is disarmed, saturated, or
// sized for a different network (then saturate: a resize means the
// topology changed under the baseline). mw is the caller's mask length.
func (d *dirtyState) accum(mw int) []uint64 {
	if !d.enabled || d.all {
		return nil
	}
	if len(d.mask) != mw {
		d.all = true
		return nil
	}
	return d.mask
}

func (d *dirtyState) markVertex(v int) {
	if d.all || !d.enabled {
		d.all = true
		return
	}
	if v < 0 || v >= d.n {
		d.all = true
		return
	}
	wi := v >> 6
	d.mask[wi>>6] |= 1 << uint(wi&63)
}

// rebaseline arms tracking with a clean mask sized for n vertices:
// everything from here on accumulates relative to the checkpoint the
// caller just captured.
func (d *dirtyState) rebaseline(n int) {
	mw := ((n+63)>>6 + 63) >> 6
	if d.n != n || len(d.mask) != mw {
		d.mask = make([]uint64, mw)
		d.n = n
	} else {
		clearMask(d.mask)
	}
	d.all = false
	d.enabled = true
}

// DirtyAll reports whether the state dirtied since the last checkpoint
// baseline covers everything (or tracking has no baseline yet), in
// which case a delta would be a full snapshot and the caller should
// write a base instead.
func (n *Network) DirtyAll() bool { return n.ckDirty.all || !n.ckDirty.enabled }

// DirtyWords returns the number of slab words dirtied since the last
// checkpoint baseline (the full word count when DirtyAll).
func (n *Network) DirtyWords() int {
	if n.DirtyAll() {
		return (n.N() + 63) >> 6
	}
	cnt := 0
	for _, m := range n.ckDirty.mask {
		cnt += bits.OnesCount64(m)
	}
	return cnt
}

// CheckpointDelta captures an incremental checkpoint: the state of
// exactly the slab words dirtied since the last baseline (a Checkpoint
// or CheckpointDelta call), chained to the parent by parentHash. It
// fails when no baseline is armed or everything is dirty — the caller
// must write a base snapshot then (see DirtyAll) — and on the same
// conditions that fail Checkpoint. On success the dirty baseline
// resets: the next delta accumulates from this one.
func (n *Network) CheckpointDelta(parentHash uint64) (*Delta, error) {
	if n.failed != nil {
		return nil, fmt.Errorf("beep: delta checkpoint of failed network: %w", n.failed)
	}
	if n.sampler != nil {
		return nil, errors.New("beep: delta checkpoint with batched sampling enabled: the sampler's residual words are not checkpointable")
	}
	if n.DirtyAll() {
		return nil, errors.New("beep: delta checkpoint with everything dirty: write a base snapshot instead (see DirtyAll)")
	}
	d := &Delta{
		GraphFingerprint: n.graphFingerprint(),
		Protocol:         protocolID(n.proto),
		Round:            n.round,
		ParentHash:       parentHash,
		NoiseRNG:         n.noiseSrc.State(),
		SleepRNG:         n.sleepSrc.State(),
		AdvRNG:           n.advSrc.State(),
		RootRNG:          n.root.State(),
		NextStream:       n.nextStream,
		AdvEpoch:         n.advEpoch,
	}
	if n.ckDirty.adv {
		if n.adv != nil {
			d.Adversaries = append([]uint8(nil), n.adv...)
		} else {
			d.Adversaries = []uint8{}
		}
	}
	N := n.N()
	verts := 0
	for _, m := range n.ckDirty.mask {
		verts += bits.OnesCount64(m) * 64
	}
	d.Words = make([]int32, 0, (verts+63)/64)
	d.Machines = make([][]int64, 0, verts)
	d.Streams = make([][4]uint64, 0, verts)
	for mi, m := range n.ckDirty.mask {
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			wi := mi<<6 + b
			lo := wi << 6
			hi := lo + 64
			if hi > N {
				hi = N
			}
			if lo >= N {
				continue
			}
			d.Words = append(d.Words, int32(wi))
			for v := lo; v < hi; v++ {
				codec, ok := n.machines[v].(StateCodec)
				if !ok {
					return nil, fmt.Errorf("beep: machine %T of vertex %d does not support checkpointing", n.machines[v], v)
				}
				d.Machines = append(d.Machines, codec.EncodeState())
				d.Streams = append(d.Streams, n.srcs[v].State())
			}
		}
	}
	d.Seal()
	n.ckDirty.rebaseline(N)
	n.ckDirty.adv = false
	return d, nil
}

// ---- Delta frame codec ----

// deltaMagic opens every framed binary delta.
var deltaMagic = [4]byte{'B', 'C', 'D', '3'}

// ErrTornFrame reports a delta frame cut short at the end of the
// input: the signature of a crash mid-append, recoverable by
// truncating the tail. Any other malformation — bad magic, a complete
// frame whose payload does not parse or hash — is a hard error.
var ErrTornFrame = errors.New("beep: torn delta frame (truncated tail)")

// EncodeDelta serializes a sealed delta as one self-delimiting binary
// frame: magic, u32 payload length, payload. Appending frames to a
// file yields a chain readable by DecodeDeltaFrame.
func EncodeDelta(d *Delta) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("beep: encode delta: %w", err)
	}
	payload := encodeDeltaPayload(d)
	frame := make([]byte, 0, 8+len(payload))
	frame = append(frame, deltaMagic[:]...)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(payload)))
	frame = append(frame, l[:]...)
	return append(frame, payload...), nil
}

func encodeDeltaPayload(d *Delta) []byte {
	var buf bytes.Buffer
	var b8 [8]byte
	le := binary.LittleEndian
	put := func(x uint64) {
		le.PutUint64(b8[:], x)
		buf.Write(b8[:])
	}
	put(d.GraphFingerprint)
	put(uint64(d.Round))
	put(d.ParentHash)
	put(d.NextStream)
	put(d.AdvEpoch)
	put(d.Hash)
	for _, rng := range [][4]uint64{d.NoiseRNG, d.SleepRNG, d.AdvRNG, d.RootRNG} {
		for _, w := range rng {
			put(w)
		}
	}
	var b4 [4]byte
	put32 := func(x uint32) {
		le.PutUint32(b4[:], x)
		buf.Write(b4[:])
	}
	put32(uint32(len(d.Protocol)))
	buf.WriteString(d.Protocol)
	hasAdv := byte(0)
	if d.Adversaries != nil {
		hasAdv = 1
	}
	buf.WriteByte(hasAdv)
	put32(uint32(len(d.Words)))
	for _, w := range d.Words {
		put32(uint32(w))
	}
	put32(uint32(len(d.Machines)))
	for _, s := range d.Streams {
		for _, w := range s {
			put(w)
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	for _, m := range d.Machines {
		k := binary.PutUvarint(tmp[:], uint64(len(m)))
		buf.Write(tmp[:k])
		for _, v := range m {
			k = binary.PutVarint(tmp[:], v)
			buf.Write(tmp[:k])
		}
	}
	if hasAdv == 1 {
		put32(uint32(len(d.Adversaries)))
		buf.Write(d.Adversaries)
	}
	return buf.Bytes()
}

// DecodeDeltaFrame parses one delta frame from the front of data,
// returning the delta and the remaining bytes. A frame cut short by
// the end of input returns ErrTornFrame (recoverable tail truncation);
// every other malformation is a hard error. The returned delta has
// passed Validate (its own hash verified).
func DecodeDeltaFrame(data []byte) (*Delta, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("%w: %d bytes of header", ErrTornFrame, len(data))
	}
	if !bytes.Equal(data[0:4], deltaMagic[:]) {
		return nil, nil, fmt.Errorf("beep: bad delta frame magic %q", data[0:4])
	}
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("%w: %d bytes of header", ErrTornFrame, len(data))
	}
	plen := int(binary.LittleEndian.Uint32(data[4:8]))
	if plen < 0 || 8+plen > len(data) {
		return nil, nil, fmt.Errorf("%w: frame claims %d payload bytes, %d remain", ErrTornFrame, plen, len(data)-8)
	}
	d, err := decodeDeltaPayload(data[8 : 8+plen])
	if err != nil {
		return nil, nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	return d, data[8+plen:], nil
}

func decodeDeltaPayload(p []byte) (*Delta, error) {
	le := binary.LittleEndian
	const fixed = 6*8 + 4*32 + 4
	if len(p) < fixed {
		return nil, fmt.Errorf("beep: delta payload truncated: %d bytes", len(p))
	}
	d := &Delta{}
	d.GraphFingerprint = le.Uint64(p[0:])
	round := le.Uint64(p[8:])
	d.ParentHash = le.Uint64(p[16:])
	d.NextStream = le.Uint64(p[24:])
	d.AdvEpoch = le.Uint64(p[32:])
	d.Hash = le.Uint64(p[40:])
	off := 48
	rngs := [4]*[4]uint64{&d.NoiseRNG, &d.SleepRNG, &d.AdvRNG, &d.RootRNG}
	for i, rng := range rngs {
		base := off + i*32
		for k := range rng {
			rng[k] = le.Uint64(p[base+k*8:])
		}
	}
	off += 4 * 32
	if round > uint64(1)<<62 {
		return nil, fmt.Errorf("beep: delta round %d out of range", round)
	}
	d.Round = int(round)
	protoLen := int(le.Uint32(p[off:]))
	off += 4
	if protoLen < 0 || protoLen > snapMaxProto || off+protoLen+1+4 > len(p) {
		return nil, fmt.Errorf("beep: delta protocol length %d out of range", protoLen)
	}
	d.Protocol = string(p[off : off+protoLen])
	off += protoLen
	hasAdv := p[off]
	off++
	nw := int(le.Uint32(p[off:]))
	off += 4
	if nw < 0 || off+nw*4+4 > len(p) {
		return nil, fmt.Errorf("beep: delta word list of %d entries exceeds payload", nw)
	}
	d.Words = make([]int32, nw)
	for i := range d.Words {
		d.Words[i] = int32(le.Uint32(p[off+i*4:]))
	}
	off += nw * 4
	nv := int(le.Uint32(p[off:]))
	off += 4
	if nv < 0 || nv > (len(p)-off)/32 {
		return nil, fmt.Errorf("beep: delta claims %d vertex states, %d payload bytes cannot hold them", nv, len(p)-off)
	}
	d.Streams = make([][4]uint64, nv)
	for i := range d.Streams {
		base := off + i*32
		d.Streams[i] = [4]uint64{
			le.Uint64(p[base:]), le.Uint64(p[base+8:]),
			le.Uint64(p[base+16:]), le.Uint64(p[base+24:]),
		}
	}
	off += nv * 32
	rest := p[off:]
	d.Machines = make([][]int64, nv)
	for i := 0; i < nv; i++ {
		l, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("beep: delta vertex state %d: truncated length", i)
		}
		rest = rest[k:]
		if l > uint64(len(rest)) {
			return nil, fmt.Errorf("beep: delta vertex state %d: length %d exceeds remaining payload", i, l)
		}
		m := make([]int64, int(l))
		for j := range m {
			x, k := binary.Varint(rest)
			if k <= 0 {
				return nil, fmt.Errorf("beep: delta vertex state %d: truncated value %d", i, j)
			}
			m[j] = x
			rest = rest[k:]
		}
		d.Machines[i] = m
	}
	if hasAdv == 1 {
		if len(rest) < 4 {
			return nil, fmt.Errorf("beep: delta adversary table truncated")
		}
		na := int(le.Uint32(rest))
		rest = rest[4:]
		if na < 0 || na > len(rest) {
			return nil, fmt.Errorf("beep: delta adversary table of %d entries exceeds payload", na)
		}
		d.Adversaries = append([]uint8{}, rest[:na]...)
		rest = rest[na:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("beep: delta payload has %d trailing bytes", len(rest))
	}
	return d, nil
}
