package beep

import (
	"errors"
	"fmt"
)

// RunError is the typed, contained form of a machine panic: when a
// vertex's Emit or Update panics inside an engine, the engine recovers,
// records which vertex blew up in which phase of which round, and
// surfaces this error instead of tearing down the process. The worker
// goroutines of the concurrent engines recover *before* joining the
// sense-reversing barrier, so a panicking vertex can never orphan the
// barrier or deadlock its sibling shards — the coordinator observes the
// error after the phase completes on every shard.
//
// A network that produced a RunError is poisoned: its state is
// partially updated (the panicking phase stopped mid-shard), so every
// subsequent TryStep returns the same error and Step panics with it.
// Close remains safe. Other networks in the process — including ones
// sharing the protocol value — are unaffected.
type RunError struct {
	// Vertex is the vertex whose machine panicked, or -1 when the panic
	// escaped a whole-cohort flat kernel, which processes the cohort as
	// one slab and cannot attribute the failure to a single vertex.
	Vertex int
	// Round is the 1-based round that was being executed.
	Round int
	// Phase names the engine phase ("emit" or "update").
	Phase string
	// Engine is the engine that contained the panic.
	Engine Engine
	// Recovered is the value the machine panicked with.
	Recovered any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

// Error formats the failure; the stack is available via the field for
// callers that want to log it.
func (e *RunError) Error() string {
	if e.Vertex < 0 {
		return fmt.Sprintf("beep: flat %s kernel panicked in round %d on %s engine: %v",
			e.Phase, e.Round, e.Engine, e.Recovered)
	}
	return fmt.Sprintf("beep: machine of vertex %d panicked in %s phase of round %d on %s engine: %v",
		e.Vertex, e.Phase, e.Round, e.Engine, e.Recovered)
}

// ErrClosed reports a TryStep on a network after Close.
var ErrClosed = errors.New("beep: Step on closed Network (Close is terminal)")
