package beep

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNoiseValidation(t *testing.T) {
	for _, bad := range []Noise{
		{PLoss: -0.1}, {PLoss: 1.1}, {PFalse: -0.1}, {PFalse: 2},
	} {
		if _, err := NewNetwork(graph.Path(2), counterProtocol{}, 1, WithNoise(bad)); err == nil {
			t.Errorf("noise %+v accepted", bad)
		}
	}
	if _, err := NewNetwork(graph.Path(2), counterProtocol{}, 1, WithNoise(Noise{PLoss: 0.5, PFalse: 0.5})); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseZeroIsNoiseless(t *testing.T) {
	g := graph.GNP(40, 0.1, nil2src(7))
	run := func(opts ...Option) []Signal {
		var last []Signal
		net, err := NewNetwork(g, probeProtocol{}, 5, append(opts,
			WithObserver(func(_ int, _, heard []Signal) {
				last = append(last[:0], heard...)
			}))...)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		for i := 0; i < 30; i++ {
			net.Step()
		}
		return append([]Signal(nil), last...)
	}
	clean := run()
	zeroNoise := run(WithNoise(Noise{}))
	for v := range clean {
		if clean[v] != zeroNoise[v] {
			t.Fatal("zero noise changed the execution")
		}
	}
}

func TestNoiseFalsePositiveRate(t *testing.T) {
	// On an empty graph nothing is ever genuinely heard, so the heard
	// rate equals the false-positive rate.
	g := graph.Empty(200)
	heardRounds := 0
	const rounds = 500
	pFalse := 0.1
	net, err := NewNetwork(g, counterProtocol{}, 3,
		WithNoise(Noise{PFalse: pFalse}),
		WithObserver(func(_ int, _, heard []Signal) {
			for _, h := range heard {
				if h.Has(Chan1) {
					heardRounds++
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	total := float64(200 * rounds)
	rate := float64(heardRounds) / total
	if math.Abs(rate-pFalse) > 0.01 {
		t.Fatalf("false positive rate %v, want ~%v", rate, pFalse)
	}
}

func TestNoiseLossRate(t *testing.T) {
	// On a complete graph with the always-beeping counter machines in
	// round 1, everyone genuinely hears; losses show as silence.
	g := graph.Complete(100)
	lost := 0
	net, err := NewNetwork(g, alwaysBeepProtocol{}, 3,
		WithNoise(Noise{PLoss: 0.2}),
		WithObserver(func(_ int, _, heard []Signal) {
			for _, h := range heard {
				if !h.Has(Chan1) {
					lost++
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	const rounds = 200
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	rate := float64(lost) / float64(100*rounds)
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("loss rate %v, want ~0.2", rate)
	}
}

func TestNoiseDeterministicAcrossEngines(t *testing.T) {
	g := graph.GNP(50, 0.1, nil2src(9))
	noise := Noise{PLoss: 0.1, PFalse: 0.05}
	var ref [][]Signal
	for _, engine := range []Engine{Sequential, Parallel, PerVertex} {
		var tr [][]Signal
		net, err := NewNetwork(g, probeProtocol{}, 11,
			WithEngine(engine), WithNoise(noise),
			WithObserver(func(_ int, _, heard []Signal) {
				row := make([]Signal, len(heard))
				copy(row, heard)
				tr = append(tr, row)
			}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			net.Step()
		}
		net.Close()
		if ref == nil {
			ref = tr
			continue
		}
		for r := range ref {
			for v := range ref[r] {
				if ref[r][v] != tr[r][v] {
					t.Fatalf("engine %v diverged under noise at round %d vertex %d", engine, r+1, v)
				}
			}
		}
	}
}

// alwaysBeepProtocol beeps on channel 1 every round.
type alwaysBeepProtocol struct{}

func (alwaysBeepProtocol) Channels() int { return 1 }
func (alwaysBeepProtocol) NewMachine(int, graph.Topology) Machine {
	return &alwaysBeepMachine{}
}

type alwaysBeepMachine struct{}

func (*alwaysBeepMachine) Emit(*rng.Source) Signal { return Chan1 }
func (*alwaysBeepMachine) Update(_, _ Signal)      {}
func (*alwaysBeepMachine) Randomize(*rng.Source)   {}

// nil2src builds an rng source for test graph generation.
func nil2src(seed uint64) *rng.Source { return rng.New(seed) }
