package beep

import (
	"fmt"
	"math/bits"
	"runtime/debug"
)

// This file adds the sparse (delta) round path to Partition, the
// distributed engine's execution window. The single-process sparse
// engine (sparse.go) gates the kernels on per-word activity masks and
// delivers heard deltas by re-gathering only the words touched by
// flipped senders; here the same invariants are split across the
// coordinator exchange:
//
//	drew := p.EmitLocalSparse()          // kernels over active own words,
//	                                     // pack + diff vs the own baseline
//	wis, vals := p.SparseUpload(c)       // upload: only CHANGED own words
//	p.ApplyDeltaWord(c, wi, merged)      // download: only changed merged
//	                                     // words; flips mark touched words
//	changed := p.UpdateLocalSparse()     // re-gather touched, update
//	                                     // act ∪ touched, advance frontier
//
// Soundness is the single-process argument verbatim: a word outside the
// frontier emitted deterministically from unchanged state, so its sent
// values and packed sender bits are already correct; a word the
// coordinator did not send back has an unchanged merged value, so every
// heard value it feeds is already correct; an update word outside
// act ∪ touched sees the identical (state, sent, heard) triple as last
// round. The partition path has no dense fallback and no crossover —
// the delta is always exact, and the fault models that would perturb it
// are rejected at Partition construction already.
//
// ResetSparse re-establishes the base case after any restore: all own
// words active, zeroed upload/download baselines on both sides of the
// wire, and heard reset to Silent (matching the all-zero sender words),
// so the first round after a rewind repacks and re-exchanges everything
// that beeps.

// partSparse is the sparse-round state of one Partition. All masks have
// one bit per slab word over the GLOBAL word index space (so delta
// downloads can mark foreign-edge words directly); only bits of the
// partition's own words [wlo, whi] are ever set.
type partSparse struct {
	ops SparseFlatProtocol
	// wlo/whi bound the partition's slab words (inclusive; whi < wlo for
	// an empty range) and ownWords counts them.
	wlo, whi, ownWords int
	// act gates the emit kernel; actCount is its popcount (the range's
	// frontier word count).
	act      []uint64
	actCount int
	// allActive defers materializing the all-own-words mask (after
	// ResetSparse).
	allActive bool
	// drewW / changedW are the kernels' output masks; updW gates the
	// update kernel (act ∪ touched); touchW accumulates the words whose
	// heard values the downloaded deltas touched.
	drewW, changedW, updW, touchW []uint64
	// own[c] holds the partition's packed channel-c sender words of the
	// previous round (foreign bits zero) — the upload-delta baseline.
	// Distinct from Partition.words, which holds the coordinator-merged
	// GLOBAL bitset maintained by ApplyDeltaWord.
	own [2][]uint64
	// upWi/upVal[c] list the own words whose packed value changed this
	// round — the upload. Capacity is the own word count, so steady
	// rounds never allocate.
	upWi  [2][]int32
	upVal [2][]uint64
}

// EnableSparse switches the partition to the sparse round protocol
// (EmitLocalSparse / SparseUpload / ApplyDeltaWord / UpdateLocalSparse).
// It fails when the bound kernels do not implement SparseFlatProtocol.
// The initial state is fully reset (see ResetSparse).
func (p *Partition) EnableSparse() error {
	n := p.net
	so, ok := n.flatOps.(SparseFlatProtocol)
	if !ok {
		return fmt.Errorf("beep: sparse partition rounds need sparse kernels, but %T does not implement SparseFlatProtocol", n.flatOps)
	}
	words := (n.N() + 63) >> 6
	mw := (words + 63) >> 6
	sp := &partSparse{ops: so, wlo: 0, whi: -1}
	if p.lo < p.hi {
		sp.wlo, sp.whi = p.lo>>6, (p.hi-1)>>6
		sp.ownWords = sp.whi - sp.wlo + 1
	}
	sp.act = make([]uint64, mw)
	sp.drewW = make([]uint64, mw)
	sp.changedW = make([]uint64, mw)
	sp.updW = make([]uint64, mw)
	sp.touchW = make([]uint64, mw)
	for c := 0; c < n.channels; c++ {
		sp.own[c] = make([]uint64, words)
		sp.upWi[c] = make([]int32, 0, sp.ownWords)
		sp.upVal[c] = make([]uint64, 0, sp.ownWords)
	}
	p.sparse = sp
	p.ResetSparse()
	return nil
}

// ResetSparse rewinds the sparse state to the base case: every own word
// active, upload and download baselines zeroed, heard[lo:hi) Silent.
// Callers invoke it after Network.Restore — the restored machine state
// invalidates every incremental baseline — and the coordinator must
// zero its side of the exchange in the same breath.
func (p *Partition) ResetSparse() {
	sp := p.sparse
	if sp == nil {
		return
	}
	n := p.net
	for c := 0; c < n.channels; c++ {
		clearMask(p.words[c])
		clearMask(sp.own[c])
		sp.upWi[c] = sp.upWi[c][:0]
		sp.upVal[c] = sp.upVal[c][:0]
	}
	clearMask(sp.touchW)
	sp.allActive = true
	// The restore that triggered the reset replaced the machine and
	// stream state wholesale; the state-delta baseline is stale too.
	p.ckDirtyAll = true
	for v := p.lo; v < p.hi; v++ {
		n.heard[v] = Silent
	}
}

// materializeAll writes the deferred all-own-words state into the mask.
func (sp *partSparse) materializeAll() {
	clearMask(sp.act)
	for wi := sp.wlo; wi <= sp.whi; wi++ {
		sp.act[wi>>6] |= 1 << uint(wi&63)
	}
	sp.actCount = sp.ownWords
	sp.allActive = false
}

// EmitLocalSparse runs the emit kernel over the partition's active
// words, re-packs them, and records the upload delta (the own words
// whose packed sender bits changed). An empty frontier is a local fixed
// point: no kernel runs, no stream moves, and the upload is empty. It
// reports whether the kernel consumed randomness, with the same panic
// containment as EmitLocal.
func (p *Partition) EmitLocalSparse() (drew bool, err error) {
	n := p.net
	if n.closed {
		return false, ErrClosed
	}
	if n.failed != nil {
		return false, n.failed
	}
	sp := p.sparse
	if sp == nil {
		return false, fmt.Errorf("beep: EmitLocalSparse before EnableSparse")
	}
	if sp.allActive {
		sp.materializeAll()
	}
	env := &p.env
	env.Sent, env.Heard, env.Srcs = n.sent, n.heard, n.srcs
	env.Skip, env.Sampler = nil, nil
	env.Drew, env.Changed = false, false
	clearMask(sp.drewW)
	for c := 0; c < n.channels; c++ {
		sp.upWi[c] = sp.upWi[c][:0]
		sp.upVal[c] = sp.upVal[c][:0]
	}
	if sp.actCount == 0 {
		return false, nil
	}
	if rerr := p.runSparseKernel("emit"); rerr != nil {
		n.failed = rerr
		return false, rerr
	}
	p.sparsePack()
	return env.Drew, nil
}

// sparsePack re-packs the active own words from sent and diffs them
// against the own baseline, appending changed words to the upload
// lists. Boundary words are clamped to the partition's own vertices
// (foreign bits stay zero), so coordinator-side per-partition values
// OR cleanly across adjacent owners.
func (p *Partition) sparsePack() {
	n := p.net
	sp := p.sparse
	two := n.channels == 2
	sent := n.sent
	for mi, m := range sp.act {
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			wi := mi<<6 + b
			base := wi << 6
			lo, hi := base, base+64
			if lo < p.lo {
				lo = p.lo
			}
			if hi > p.hi {
				hi = p.hi
			}
			var v0, v1 uint64
			for v := lo; v < hi; v++ {
				bit := uint64(1) << uint(v&63)
				sv := sent[v]
				if sv&Chan1 != 0 {
					v0 |= bit
				}
				if two && sv&Chan2 != 0 {
					v1 |= bit
				}
			}
			if sp.own[0][wi] != v0 {
				sp.own[0][wi] = v0
				sp.upWi[0] = append(sp.upWi[0], int32(wi))
				sp.upVal[0] = append(sp.upVal[0], v0)
			}
			if two && sp.own[1][wi] != v1 {
				sp.own[1][wi] = v1
				sp.upWi[1] = append(sp.upWi[1], int32(wi))
				sp.upVal[1] = append(sp.upVal[1], v1)
			}
		}
	}
}

// SparseUpload returns the channel-c upload delta recorded by the last
// EmitLocalSparse: the own word indices whose packed value changed,
// with the new values, in ascending order. The slices alias partition
// storage and are overwritten by the next EmitLocalSparse.
func (p *Partition) SparseUpload(c int) (wis []int32, vals []uint64) {
	return p.sparse.upWi[c], p.sparse.upVal[c]
}

// ApplyDeltaWord installs one coordinator-merged sender word that
// changed since the last round, and marks the own slab words containing
// a neighbor of any flipped bit as touched — exactly the vertices whose
// heard value can have changed. Unchanged installs are no-ops, so
// replayed deltas are idempotent.
func (p *Partition) ApplyDeltaWord(c, wi int, w uint64) {
	sp := p.sparse
	n := p.net
	old := p.words[c][wi]
	if old == w {
		return
	}
	p.words[c][wi] = w
	f := old ^ w
	base := wi << 6
	for f != 0 {
		u := base + bits.TrailingZeros64(f)
		f &= f - 1
		var row []int32
		if n.csr != nil {
			row = n.csr.Neighbors(u)
		} else {
			row = n.g.NeighborsInto(u, p.rowBuf)
		}
		for _, x := range row {
			if int(x) < p.lo || int(x) >= p.hi {
				continue
			}
			sw := int(x) >> 6
			sp.touchW[sw>>6] |= 1 << uint(sw&63)
		}
	}
}

// UpdateLocalSparse re-gathers heard for the touched words, runs the
// update kernel over act ∪ touched, advances the frontier to
// drewW | changedW, and increments the round counter. It reports
// whether any machine state changed, with the same panic containment as
// UpdateLocal.
func (p *Partition) UpdateLocalSparse() (changed bool, err error) {
	n := p.net
	if n.closed {
		return false, ErrClosed
	}
	if n.failed != nil {
		return false, n.failed
	}
	sp := p.sparse
	if sp == nil {
		return false, fmt.Errorf("beep: UpdateLocalSparse before EnableSparse")
	}
	p.gatherHeardWords(sp.touchW)
	for mi := range sp.updW {
		sp.updW[mi] = sp.act[mi] | sp.touchW[mi]
	}
	clearMask(sp.changedW)
	if rerr := p.runSparseKernel("update"); rerr != nil {
		n.failed = rerr
		return false, rerr
	}
	// The end-of-round activity union is exactly the set of own words
	// that drew a stream or changed machine state this round (the
	// dirty-accumulation invariant, see delta.go); fuse the state-delta
	// accumulation into the same pass.
	dirty := p.ckDirty
	if p.ckDirtyAll {
		dirty = nil
	}
	cnt := 0
	for mi := range sp.act {
		a := sp.drewW[mi] | sp.changedW[mi]
		sp.act[mi] = a
		cnt += bits.OnesCount64(a)
		if dirty != nil {
			dirty[mi] |= a
		}
	}
	sp.actCount = cnt
	clearMask(sp.touchW)
	n.round++
	return p.env.Changed, nil
}

// FrontierWords returns the partition's current frontier word count
// (0 = local fixed point).
func (p *Partition) FrontierWords() int {
	if p.sparse == nil {
		return 0
	}
	if p.sparse.allActive {
		return p.sparse.ownWords
	}
	return p.sparse.actCount
}

// gatherHeardWords recomputes heard[v] for every own vertex of every
// marked slab word by probing neighbor bits in the merged sender words
// — the word-gated sibling of gatherHeard, with the same full-mask
// early exit.
func (p *Partition) gatherHeardWords(mask []uint64) {
	n := p.net
	full := n.fullMask
	heard := n.heard
	w0 := p.words[0]
	var w1 []uint64
	if n.channels == 2 {
		w1 = p.words[1]
	}
	for mi, m := range mask {
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			base := (mi<<6 + b) << 6
			lo, hi := base, base+64
			if lo < p.lo {
				lo = p.lo
			}
			if hi > p.hi {
				hi = p.hi
			}
			for v := lo; v < hi; v++ {
				var row []int32
				if n.csr != nil {
					row = n.csr.Neighbors(v)
				} else {
					row = n.g.NeighborsInto(v, p.rowBuf)
				}
				var h Signal
				for _, u := range row {
					sh := uint(u) & 63
					h |= Signal((w0[u>>6] >> sh) & 1)
					if w1 != nil {
						h |= Signal((w1[u>>6]>>sh)&1) << 1
					}
					if h == full {
						break
					}
				}
				heard[v] = h
			}
		}
	}
}

// runSparseKernel invokes one sparse cohort kernel over the partition's
// range with the same panic containment contract as runKernel.
func (p *Partition) runSparseKernel(phase string) (rerr *RunError) {
	n := p.net
	sp := p.sparse
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: -1, Round: n.round + 1, Phase: phase,
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	if phase == "emit" {
		sp.ops.EmitSparse(&p.env, sp.act, sp.drewW, p.lo, p.hi)
	} else {
		sp.ops.UpdateSparse(&p.env, sp.updW, sp.changedW, p.lo, p.hi)
	}
	return nil
}
