package beep

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// rwProtocol is a test protocol whose machines support StateCodec,
// so Rewire can transfer survivor state. Each machine holds a level
// that decays by one per silent round and resets on hearing a beep,
// and beeps with probability 1/2 from its private stream.
type rwProtocol struct{}

func (rwProtocol) Channels() int { return 1 }
func (rwProtocol) NewMachine(int, graph.Topology) Machine {
	return &rwMachine{level: 100}
}

type rwMachine struct{ level int64 }

func (m *rwMachine) Emit(src *rng.Source) Signal {
	if src.Coin() {
		return Chan1
	}
	return Silent
}

func (m *rwMachine) Update(_, heard Signal) {
	if heard.Has(Chan1) {
		m.level = 100
	} else {
		m.level--
	}
}

func (m *rwMachine) Randomize(src *rng.Source) { m.level = int64(src.Intn(1000)) }

func (m *rwMachine) EncodeState() []int64 { return []int64{m.level} }
func (m *rwMachine) DecodeState(st []int64) error {
	if len(st) != 1 {
		return fmt.Errorf("bad state")
	}
	m.level = st[0]
	return nil
}

// TestCorruptAtomicity is the regression test for the half-injected
// fault bug: an out-of-range index anywhere in the batch must leave
// every machine untouched, including those listed before it.
func TestCorruptAtomicity(t *testing.T) {
	net, err := NewNetwork(graph.Path(4), rwProtocol{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	before := make([]int64, net.N())
	for v := 0; v < net.N(); v++ {
		before[v] = net.Machine(v).(*rwMachine).level
	}
	if err := net.Corrupt([]int{0, 2, 99}); err == nil {
		t.Fatal("out-of-range corruption accepted")
	}
	for v := 0; v < net.N(); v++ {
		if got := net.Machine(v).(*rwMachine).level; got != before[v] {
			t.Fatalf("vertex %d state changed by rejected Corrupt: %d -> %d", v, before[v], got)
		}
	}
	if err := net.Corrupt([]int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := net.Corrupt([]int{1, 3}); err != nil {
		t.Fatalf("valid corruption rejected: %v", err)
	}
}

func TestRewireValidation(t *testing.T) {
	net, err := NewNetwork(graph.Path(4), rwProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	g2 := graph.Cycle(3)
	cases := []struct {
		name    string
		g       *graph.Graph
		mapping []int
	}{
		{"nil-graph", nil, []int{0, 1, 2, -1}},
		{"short-mapping", g2, []int{0, 1}},
		{"out-of-range", g2, []int{0, 1, 3, -1}},
		{"duplicate", g2, []int{0, 1, 1, -1}},
	}
	for _, c := range cases {
		if err := net.Rewire(c.g, c.mapping); err == nil {
			t.Fatalf("%s: invalid rewire accepted", c.name)
		}
		if net.N() != 4 || net.Graph().N() != 4 {
			t.Fatalf("%s: rejected rewire mutated the network", c.name)
		}
	}
	closed, err := NewNetwork(graph.Path(2), rwProtocol{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	if err := closed.Rewire(g2, []int{0, 1}); err == nil {
		t.Fatal("rewire on closed network accepted")
	}
}

// TestRewireSurvivorsAndJoiners applies a rewire that renumbers, drops,
// and joins vertices, and checks that survivors carry their exact
// machine state to their new ids while joiners arrive randomized.
func TestRewireSurvivorsAndJoiners(t *testing.T) {
	net, err := NewNetwork(graph.Path(4), rwProtocol{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for v := 0; v < 4; v++ {
		net.Machine(v).(*rwMachine).level = int64(1000 + v)
	}
	// Drop vertex 1; survivors 0,2,3 -> 0,1,2; joiners 3,4 on a 5-cycle.
	g2 := graph.Cycle(5)
	if err := net.Rewire(g2, []int{0, -1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if net.N() != 5 || net.Graph() != g2 {
		t.Fatalf("network not on the new topology: n=%d", net.N())
	}
	wants := map[int]int64{0: 1000, 1: 1002, 2: 1003}
	for v, want := range wants {
		if got := net.Machine(v).(*rwMachine).level; got != want {
			t.Fatalf("survivor %d has level %d, want %d", v, got, want)
		}
	}
	// Joiners are randomized into [0,1000), so they cannot carry the
	// survivors' sentinel values.
	for _, v := range []int{3, 4} {
		if got := net.Machine(v).(*rwMachine).level; got >= 1000 {
			t.Fatalf("joiner %d not randomized: level %d", v, got)
		}
	}
	// The network must keep stepping on the new topology.
	net.Step()
	if net.Round() != 1 {
		t.Fatalf("round counter %d after one post-rewire step", net.Round())
	}
}

// TestRewireStreamStabilityUnderRenumbering runs two identical networks
// and rewires one of them onto the same topology with reversed vertex
// ids. Because survivors keep their private streams and the reversed
// path is isomorphic through the same mapping, the executions must stay
// signal-identical modulo the renumbering.
func TestRewireStreamStabilityUnderRenumbering(t *testing.T) {
	const seed, n, pre, post = 99, 6, 5, 40
	ref, err := NewNetwork(graph.Path(n), rwProtocol{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	rw, err := NewNetwork(graph.Path(n), rwProtocol{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	for r := 0; r < pre; r++ {
		ref.Step()
		rw.Step()
	}
	mapping := make([]int, n)
	for v := range mapping {
		mapping[v] = n - 1 - v // reversal is an automorphism of the path
	}
	if err := rw.Rewire(graph.Path(n), mapping); err != nil {
		t.Fatal(err)
	}
	refObs := make([]Signal, n)
	rwObs := make([]Signal, n)
	ref.observer = func(_ int, sent, _ []Signal) { copy(refObs, sent) }
	rw.observer = func(_ int, sent, _ []Signal) { copy(rwObs, sent) }
	for r := 0; r < post; r++ {
		ref.Step()
		rw.Step()
		for v := 0; v < n; v++ {
			if refObs[v] != rwObs[mapping[v]] {
				t.Fatalf("round %d: vertex %d sent %v, renumbered twin sent %v",
					r, v, refObs[v], rwObs[mapping[v]])
			}
		}
	}
}

// TestRewireEngineTraceEquivalence is the engine contract through a
// scripted rewire with adversaries installed: all three engines must
// produce identical signal traces before and after the topology swap.
func TestRewireEngineTraceEquivalence(t *testing.T) {
	g1 := graph.GNPAvgDegree(24, 4, rng.New(5))
	g2, mapping, err := graph.ApplyEdits(g1, []graph.Edit{
		{Kind: graph.EditDelVertex, U: 3},
		{Kind: graph.EditAddVertex},
		{Kind: graph.EditAddVertex},
		{Kind: graph.EditAddEdge, U: 24, V: 0},
		{Kind: graph.EditAddEdge, U: 25, V: 7},
		{Kind: graph.EditAddEdge, U: 24, V: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	const seed, pre, post = 1234, 7, 9
	run := func(engine Engine) [][]Signal {
		var trace [][]Signal
		net, err := NewNetwork(g1, rwProtocol{}, seed,
			WithEngine(engine),
			WithAdversaries(AdvBabbler, []int{2, 9}),
			WithAdversaries(AdvJammer, []int{5}),
			WithObserver(func(_ int, sent, heard []Signal) {
				row := make([]Signal, 0, 2*len(sent))
				row = append(row, sent...)
				row = append(row, heard...)
				trace = append(trace, row)
			}))
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		net.RandomizeAll()
		for r := 0; r < pre; r++ {
			net.Step()
		}
		if err := net.Rewire(g2, mapping[:g1.N()]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < post; r++ {
			net.Step()
		}
		return trace
	}
	ref := run(Sequential)
	for _, engine := range []Engine{Parallel, PerVertex} {
		got := run(engine)
		if len(got) != len(ref) {
			t.Fatalf("engine %v recorded %d rounds, sequential %d", engine, len(got), len(ref))
		}
		for r := range ref {
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("engine %v diverged at round %d slot %d", engine, r, i)
				}
			}
		}
	}
}
